#ifndef PEERCACHE_PEERCACHE_H_
#define PEERCACHE_PEERCACHE_H_

/// \mainpage peercache
///
/// C++20 implementation of "Accelerating Lookups in P2P Systems using Peer
/// Caching" (Deb, Linga, Rastogi, Srinivasan — ICDE 2008): frequency-aware
/// selection of k auxiliary neighbor pointers that minimizes average lookup
/// hops in Pastry and Chord, plus the overlay simulators and experiment
/// harnesses that reproduce the paper's evaluation.
///
/// Umbrella header: includes the whole public API. Fine for applications;
/// library code should include the specific headers it uses.
///
/// Layering (each layer only depends on the ones above it):
///   - common/    ids, RNG, zipf, streaming top-n, stats, Status/Result
///   - trie/      path-compressed binary id trie (Pastry selection substrate)
///   - auxsel/    the paper's selection algorithms (the core contribution)
///   - chord/     event-simulable Chord overlay (paper's variant)
///   - pastry/    event-simulable Pastry overlay (FreePastry-style locality)
///   - sim/       deterministic discrete-event engine
///   - workload/  items, zipf popularity lists, query generation
///   - experiments/ stable & churn experiment harnesses (Sec. VI)

#include "auxsel/chord_dp.h"
#include "auxsel/chord_fast.h"
#include "auxsel/chord_qos.h"
#include "auxsel/frequency_table.h"
#include "auxsel/oblivious.h"
#include "auxsel/pastry_dp.h"
#include "auxsel/pastry_greedy.h"
#include "auxsel/pastry_qos.h"
#include "auxsel/selection_types.h"
#include "chord/chord_network.h"
#include "common/bits.h"
#include "common/logging.h"
#include "common/node_store.h"
#include "common/overlay.h"
#include "common/random.h"
#include "common/ring_id.h"
#include "common/route_result.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/top_n.h"
#include "common/zipf.h"
#include "experiments/experiment_config.h"
#include "experiments/generic_experiment.h"
#include "experiments/overlay_policy.h"
#include "pastry/pastry_network.h"
#include "sim/event_queue.h"
#include "trie/binary_trie.h"
#include "itemcache/item_cache.h"
#include "itemcache/strategy_compare.h"
#include "workload/workload.h"

#endif  // PEERCACHE_PEERCACHE_H_
