#ifndef PEERCACHE_TRIE_BINARY_TRIE_H_
#define PEERCACHE_TRIE_BINARY_TRIE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace peercache::trie {

/// Payload carried by each leaf of the trie. A leaf is a peer the selecting
/// node has seen queries for (the set V of the paper), or one of the
/// selecting node's core neighbors.
struct LeafInfo {
  uint64_t id = 0;
  /// Observed access frequency f_v (any nonnegative scale: counts or rates).
  double frequency = 0.0;
  /// True if this peer is a core neighbor of the selecting node. Core leaves
  /// are never candidates for auxiliary selection and their subtrees always
  /// count as "containing a neighbor".
  bool is_core = false;
  /// True if this peer has already been picked (e.g., by a QoS forcing pass)
  /// and therefore counts as a neighbor but is no longer a candidate.
  bool preselected = false;
  /// QoS delay bound in hops (paper Sec. IV-D): a neighbor must exist within
  /// hop-estimate <= delay_bound of this peer. Negative means unconstrained.
  int delay_bound = -1;
};

/// Path-compressed binary trie over `bits`-bit peer ids, with subtree
/// aggregates maintained on every mutation.
///
/// This is the data structure of paper Sec. IV (Fig. 1): each peer in V is a
/// leaf; the Pastry hop-distance between two peers equals `bits` minus the
/// depth of their lowest common ancestor. Internal (non-root) vertices always
/// have exactly two children; edges carry lengths (the number of id bits they
/// compress). The root always sits at depth 0.
///
/// Vertex handles are stable small integers; removed vertices are recycled
/// through a free list. Selectors attach their per-vertex state in parallel
/// arrays indexed by these handles.
class BinaryTrie {
 public:
  static constexpr int kNil = -1;

  /// Creates an empty trie over `bits`-bit ids (1..64).
  explicit BinaryTrie(int bits);

  int bits() const { return bits_; }
  size_t leaf_count() const { return leaves_.size(); }

  /// Root vertex handle, or kNil when the trie is empty.
  int root() const { return root_; }

  /// Inserts a new leaf. Fails with InvalidArgument if the id is already
  /// present or out of range. Returns the new leaf's vertex handle.
  Result<int> Insert(const LeafInfo& leaf);

  /// Removes the leaf with the given id. Returns the handle of the deepest
  /// surviving ancestor of the removed leaf (kNil if the trie became empty).
  /// Fails with NotFound if absent.
  Result<int> Remove(uint64_t id);

  /// Updates the frequency of an existing leaf and refreshes aggregates.
  /// Returns the leaf's vertex handle.
  Result<int> UpdateFrequency(uint64_t id, double frequency);

  /// Flags/unflags a leaf as a core neighbor. Returns the leaf handle.
  Result<int> SetCore(uint64_t id, bool is_core);

  /// Flags/unflags a leaf as preselected. Returns the leaf handle.
  Result<int> SetPreselected(uint64_t id, bool preselected);

  /// Sets a leaf's QoS delay bound (negative clears it). Returns the handle.
  Result<int> SetDelayBound(uint64_t id, int delay_bound);

  bool Contains(uint64_t id) const { return leaves_.count(id) > 0; }

  /// Finds the leaf vertex for an id, or kNil.
  int FindLeaf(uint64_t id) const;

  // ---- Vertex accessors (valid handles only) ----

  bool IsLeaf(int v) const { return vertices_[v].depth == bits_; }
  int Depth(int v) const { return vertices_[v].depth; }
  int Parent(int v) const { return vertices_[v].parent; }
  /// Child on the 0- or 1-branch; kNil if absent (root may have 0/1 child).
  int Child(int v, int bit) const { return vertices_[v].child[bit]; }
  /// Length in bits of the edge from Parent(v) to v (depth difference).
  /// The root has no incoming edge; returns Depth(v) for the root, which is
  /// always 0 by construction.
  int EdgeLength(int v) const;
  /// Total frequency of all leaves under v (F(T_v) of the paper).
  double SubtreeFrequency(int v) const { return vertices_[v].subtree_freq; }
  /// True iff the subtree under v contains a core or preselected leaf.
  bool SubtreeHasNeighbor(int v) const {
    return vertices_[v].neighbor_leaves > 0;
  }
  /// Number of candidate leaves (non-core, non-preselected) under v.
  int CandidateCount(int v) const { return vertices_[v].candidate_leaves; }
  /// Leaf payload; v must be a leaf.
  const LeafInfo& LeafAt(int v) const { return vertices_[v].leaf; }

  /// Number of live vertices (leaves + internal + root).
  size_t vertex_count() const { return live_vertices_; }

  /// Upper bound (exclusive) on vertex handles ever issued. Selectors size
  /// their parallel per-vertex arrays with this.
  int vertex_capacity() const { return static_cast<int>(vertices_.size()); }

  /// Monotone counter bumped on every successful mutation. Selectors use it
  /// to detect staleness of cached per-vertex state.
  uint64_t version() const { return version_; }

  /// Returns all leaf handles (unordered).
  std::vector<int> AllLeaves() const;

  /// Validates every structural invariant (parent/child symmetry, aggregate
  /// correctness, path compression, prefix consistency). Test helper; O(n·b).
  Status CheckInvariants() const;

 private:
  struct Vertex {
    int depth = 0;          // number of id bits this vertex represents
    uint64_t prefix = 0;    // the represented bits, right-aligned in `depth`
    int parent = kNil;
    int child[2] = {kNil, kNil};
    double subtree_freq = 0.0;
    int neighbor_leaves = 0;   // # core-or-preselected leaves in subtree
    int candidate_leaves = 0;  // # candidate leaves in subtree
    LeafInfo leaf;             // meaningful only when depth == bits
    bool in_use = false;
  };

  int AllocVertex();
  void FreeVertex(int v);
  /// Recomputes one vertex's aggregates from its children (or its own leaf
  /// payload) without recursing.
  void RefreshAggregates(int v);
  /// Refreshes aggregates from v up to the root.
  void PullUpAggregates(int v);
  /// The i-th most significant bit (0-indexed) of a full id.
  int BitAt(uint64_t id, int i) const;
  /// First `len` most-significant bits of a full id, right-aligned.
  uint64_t PrefixOf(uint64_t id, int len) const;

  int bits_;
  int root_ = kNil;
  std::vector<Vertex> vertices_;
  std::vector<int> free_list_;
  std::unordered_map<uint64_t, int> leaves_;  // id -> leaf vertex
  size_t live_vertices_ = 0;
  uint64_t version_ = 0;
};

}  // namespace peercache::trie

#endif  // PEERCACHE_TRIE_BINARY_TRIE_H_
