#include "trie/binary_trie.h"

#include <cassert>
#include <cmath>

#include "common/bits.h"

namespace peercache::trie {

BinaryTrie::BinaryTrie(int bits) : bits_(bits) {
  assert(bits >= 1 && bits <= 64);
}

int BinaryTrie::BitAt(uint64_t id, int i) const { return IdBit(id, bits_, i); }

uint64_t BinaryTrie::PrefixOf(uint64_t id, int len) const {
  if (len == 0) return 0;
  return id >> (bits_ - len);
}

int BinaryTrie::AllocVertex() {
  int v;
  if (!free_list_.empty()) {
    v = free_list_.back();
    free_list_.pop_back();
  } else {
    v = static_cast<int>(vertices_.size());
    vertices_.emplace_back();
  }
  vertices_[v] = Vertex{};
  vertices_[v].in_use = true;
  ++live_vertices_;
  return v;
}

void BinaryTrie::FreeVertex(int v) {
  vertices_[v].in_use = false;
  free_list_.push_back(v);
  --live_vertices_;
}

void BinaryTrie::RefreshAggregates(int v) {
  Vertex& vx = vertices_[v];
  if (vx.depth == bits_) {
    vx.subtree_freq = vx.leaf.frequency;
    bool neigh = vx.leaf.is_core || vx.leaf.preselected;
    vx.neighbor_leaves = neigh ? 1 : 0;
    vx.candidate_leaves = neigh ? 0 : 1;
    return;
  }
  vx.subtree_freq = 0.0;
  vx.neighbor_leaves = 0;
  vx.candidate_leaves = 0;
  for (int b = 0; b < 2; ++b) {
    int c = vx.child[b];
    if (c == kNil) continue;
    vx.subtree_freq += vertices_[c].subtree_freq;
    vx.neighbor_leaves += vertices_[c].neighbor_leaves;
    vx.candidate_leaves += vertices_[c].candidate_leaves;
  }
}

void BinaryTrie::PullUpAggregates(int v) {
  while (v != kNil) {
    RefreshAggregates(v);
    v = vertices_[v].parent;
  }
}

int BinaryTrie::EdgeLength(int v) const {
  int p = vertices_[v].parent;
  if (p == kNil) return vertices_[v].depth;  // root: depth 0 => length 0
  return vertices_[v].depth - vertices_[p].depth;
}

int BinaryTrie::FindLeaf(uint64_t id) const {
  auto it = leaves_.find(id);
  return it == leaves_.end() ? kNil : it->second;
}

Result<int> BinaryTrie::Insert(const LeafInfo& leaf) {
  if ((leaf.id & ~LowBitMask(bits_)) != 0) {
    return Status::InvalidArgument("id out of range for id space");
  }
  if (leaves_.count(leaf.id)) {
    return Status::InvalidArgument("duplicate id");
  }
  if (leaf.frequency < 0 || !std::isfinite(leaf.frequency)) {
    return Status::InvalidArgument("frequency must be finite and >= 0");
  }
  ++version_;

  int leaf_v = AllocVertex();
  {
    Vertex& lv = vertices_[leaf_v];
    lv.depth = bits_;
    lv.prefix = leaf.id;
    lv.leaf = leaf;
  }
  leaves_.emplace(leaf.id, leaf_v);

  if (root_ == kNil) {
    root_ = AllocVertex();
    vertices_[root_].depth = 0;
    vertices_[root_].prefix = 0;
  }

  int v = root_;
  while (true) {
    int bit = BitAt(leaf.id, vertices_[v].depth);
    int c = vertices_[v].child[bit];
    if (c == kNil) {
      vertices_[v].child[bit] = leaf_v;
      vertices_[leaf_v].parent = v;
      break;
    }
    const int child_depth = vertices_[c].depth;
    uint64_t id_prefix = PrefixOf(leaf.id, child_depth);
    if (id_prefix == vertices_[c].prefix) {
      // Full match with the child's prefix: descend. The child cannot be a
      // leaf here because duplicate ids were rejected above.
      assert(child_depth < bits_);
      v = c;
      continue;
    }
    // Partial match: split the edge v -> c at the first disagreeing bit.
    int match =
        CommonPrefixLength(id_prefix, vertices_[c].prefix, child_depth);
    assert(match > vertices_[v].depth && match < child_depth);
    int split = AllocVertex();
    Vertex& sv = vertices_[split];
    sv.depth = match;
    sv.prefix = PrefixOf(leaf.id, match);
    sv.parent = v;
    vertices_[v].child[bit] = split;
    int c_bit = static_cast<int>(
        (vertices_[c].prefix >> (child_depth - match - 1)) & 1u);
    int id_bit = BitAt(leaf.id, match);
    assert(c_bit != id_bit);
    sv.child[c_bit] = c;
    vertices_[c].parent = split;
    sv.child[id_bit] = leaf_v;
    vertices_[leaf_v].parent = split;
    break;
  }
  PullUpAggregates(leaf_v);
  return leaf_v;
}

Result<int> BinaryTrie::Remove(uint64_t id) {
  auto it = leaves_.find(id);
  if (it == leaves_.end()) return Status::NotFound("id not in trie");
  ++version_;
  int leaf_v = it->second;
  leaves_.erase(it);
  int p = vertices_[leaf_v].parent;
  FreeVertex(leaf_v);

  if (p == kNil) {
    // Single-vertex degenerate case cannot occur: the root is always a
    // separate depth-0 vertex.
    root_ = kNil;
    return kNil;
  }
  Vertex& pv = vertices_[p];
  int leaf_slot = (pv.child[0] == leaf_v) ? 0 : 1;
  assert(pv.child[leaf_slot] == leaf_v);
  pv.child[leaf_slot] = kNil;

  if (p == root_) {
    if (leaves_.empty()) {
      FreeVertex(root_);
      root_ = kNil;
      return kNil;
    }
    PullUpAggregates(p);
    return p;
  }

  // Non-root internal vertex now has one child: splice it out.
  int sibling = pv.child[leaf_slot ^ 1];
  assert(sibling != kNil);
  int g = pv.parent;
  Vertex& gv = vertices_[g];
  int p_slot = (gv.child[0] == p) ? 0 : 1;
  assert(gv.child[p_slot] == p);
  gv.child[p_slot] = sibling;
  vertices_[sibling].parent = g;
  FreeVertex(p);
  PullUpAggregates(g);
  return g;
}

Result<int> BinaryTrie::UpdateFrequency(uint64_t id, double frequency) {
  if (frequency < 0 || !std::isfinite(frequency)) {
    return Status::InvalidArgument("frequency must be finite and >= 0");
  }
  int v = FindLeaf(id);
  if (v == kNil) return Status::NotFound("id not in trie");
  ++version_;
  vertices_[v].leaf.frequency = frequency;
  PullUpAggregates(v);
  return v;
}

Result<int> BinaryTrie::SetCore(uint64_t id, bool is_core) {
  int v = FindLeaf(id);
  if (v == kNil) return Status::NotFound("id not in trie");
  ++version_;
  vertices_[v].leaf.is_core = is_core;
  PullUpAggregates(v);
  return v;
}

Result<int> BinaryTrie::SetPreselected(uint64_t id, bool preselected) {
  int v = FindLeaf(id);
  if (v == kNil) return Status::NotFound("id not in trie");
  ++version_;
  vertices_[v].leaf.preselected = preselected;
  PullUpAggregates(v);
  return v;
}

Result<int> BinaryTrie::SetDelayBound(uint64_t id, int delay_bound) {
  int v = FindLeaf(id);
  if (v == kNil) return Status::NotFound("id not in trie");
  ++version_;
  vertices_[v].leaf.delay_bound = delay_bound;
  // Delay bounds do not feed subtree aggregates; no pull-up needed, but the
  // version bump invalidates selector caches that depend on bounds.
  return v;
}

std::vector<int> BinaryTrie::AllLeaves() const {
  std::vector<int> out;
  out.reserve(leaves_.size());
  for (const auto& [id, v] : leaves_) out.push_back(v);
  return out;
}

Status BinaryTrie::CheckInvariants() const {
  if (root_ == kNil) {
    if (!leaves_.empty()) return Status::Internal("empty root, leaves present");
    if (live_vertices_ != 0) return Status::Internal("leaked vertices");
    return Status::Ok();
  }
  if (vertices_[root_].depth != 0) return Status::Internal("root depth != 0");
  if (vertices_[root_].parent != kNil) {
    return Status::Internal("root has parent");
  }

  size_t seen_leaves = 0;
  size_t seen_vertices = 0;
  // Iterative DFS; checks each vertex against its children.
  std::vector<int> stack{root_};
  while (!stack.empty()) {
    int v = stack.back();
    stack.pop_back();
    ++seen_vertices;
    const Vertex& vx = vertices_[v];
    if (!vx.in_use) return Status::Internal("freed vertex reachable");

    if (vx.depth == bits_) {
      ++seen_leaves;
      if (vx.child[0] != kNil || vx.child[1] != kNil) {
        return Status::Internal("leaf with children");
      }
      if (vx.prefix != vx.leaf.id) return Status::Internal("leaf prefix != id");
      auto it = leaves_.find(vx.leaf.id);
      if (it == leaves_.end() || it->second != v) {
        return Status::Internal("leaf map inconsistent");
      }
      bool neigh = vx.leaf.is_core || vx.leaf.preselected;
      if (vx.neighbor_leaves != (neigh ? 1 : 0) ||
          vx.candidate_leaves != (neigh ? 0 : 1) ||
          vx.subtree_freq != vx.leaf.frequency) {
        return Status::Internal("leaf aggregates wrong");
      }
      continue;
    }

    int n_children = 0;
    double freq = 0;
    int neigh = 0, cand = 0;
    for (int b = 0; b < 2; ++b) {
      int c = vx.child[b];
      if (c == kNil) continue;
      ++n_children;
      const Vertex& cx = vertices_[c];
      if (cx.parent != v) return Status::Internal("parent link broken");
      if (cx.depth <= vx.depth) return Status::Internal("depth not increasing");
      // Child's prefix must extend the parent's and branch on bit b.
      uint64_t cp_top = cx.prefix >> (cx.depth - vx.depth);
      if (cp_top != vx.prefix) return Status::Internal("prefix mismatch");
      int branch_bit = static_cast<int>(
          (cx.prefix >> (cx.depth - vx.depth - 1)) & 1u);
      if (branch_bit != b) return Status::Internal("branch bit mismatch");
      freq += cx.subtree_freq;
      neigh += cx.neighbor_leaves;
      cand += cx.candidate_leaves;
      stack.push_back(c);
    }
    if (v != root_ && n_children != 2) {
      return Status::Internal("non-root internal vertex without 2 children");
    }
    if (vx.neighbor_leaves != neigh || vx.candidate_leaves != cand ||
        std::abs(vx.subtree_freq - freq) > 1e-9 * (1.0 + std::abs(freq))) {
      return Status::Internal("internal aggregates wrong");
    }
  }
  if (seen_leaves != leaves_.size()) {
    return Status::Internal("leaf count mismatch");
  }
  if (seen_vertices != live_vertices_) {
    return Status::Internal("vertex count mismatch");
  }
  return Status::Ok();
}

}  // namespace peercache::trie
