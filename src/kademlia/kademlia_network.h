#ifndef PEERCACHE_KADEMLIA_KADEMLIA_NETWORK_H_
#define PEERCACHE_KADEMLIA_KADEMLIA_NETWORK_H_

#include <cstdint>
#include <span>
#include <vector>

#include "auxsel/frequency_table.h"
#include "common/fault.h"
#include "common/flat_table_arena.h"
#include "common/latency.h"
#include "common/node_store.h"
#include "common/ring_id.h"
#include "common/route_result.h"
#include "common/status.h"
#include "common/trace.h"

namespace peercache::kademlia {

/// Kademlia simulator parameters. Real deployments use 160-bit ids; the
/// simulator truncates to the repo-wide id width so workloads, telemetry,
/// and the selection trie are shared with the other backends.
struct KademliaParams {
  /// Id length b; the paper's experiments use 32-bit ids.
  int bits = 32;
  /// Capacity of each k-bucket (Kademlia's `k` parameter, renamed to avoid
  /// colliding with the paper's auxiliary budget k). Bucket i keeps at most
  /// this many live nodes sharing exactly i prefix bits with the owner,
  /// preferring the XOR-closest ones.
  int bucket_size = 8;
  /// Capacity of each node's frequency table; 0 = unbounded exact counts.
  size_t frequency_capacity = 0;
  /// Bounded-memory sketch mode for per-node frequency tables
  /// (auxsel::FreqSketchParams); disabled by default.
  auxsel::FreqSketchParams freq_sketch;
  /// Safety cap on route length before a lookup is declared failed.
  int max_route_hops = 256;
  /// Total bucket entries materialized per node across every distance
  /// class; 0 (the default) keeps each class at bucket_size — the
  /// historical tables. When positive, stabilization sizes every class's
  /// candidate range first without copying (lazy materialization), floors
  /// each non-empty class at one entry — the truncation-safety argument
  /// below needs a representative per useful distance class, never a
  /// particular one, so stable-mode routing stays exact — and spends the
  /// remaining budget on the longest-shared-prefix (XOR-closest) classes
  /// first. Shrinks the ~4.4 KB/node footprint at n = 2^20 (ROADMAP
  /// scale-frontier headroom).
  int bucket_capacity = 0;
};

/// Outcome of one simulated lookup — the shared overlay type
/// (common/route_result.h).
using RouteResult = overlay::RouteResult;

/// Per-node protocol state. Bucket snapshots are ids captured at the
/// node's last stabilization and go stale under churn, exactly like the
/// Chord finger tables and Pastry routing rows.
///
/// The buckets are flattened into one arena slice: `bucket_entries` holds
/// every member cpl-major (bucket 0 first, id-sorted within a bucket) and
/// `bucket_ends[i]` is the end offset of bucket i within it, so the hot
/// routing scan walks one contiguous span. Read through
/// KademliaNetwork::Bucket/BucketCount/BucketEntries. Trailing empty
/// buckets are not materialized (bucket_ends stops at the last non-empty
/// class), matching the historical vector-of-vectors shape.
struct KademliaNode {
  uint64_t id = 0;
  bool alive = false;
  /// Core neighbors: bucket i holds up to bucket_size live nodes w with
  /// lcp(id, w) == i (equivalently: the top set bit of id XOR w is bit
  /// bits-1-i), XOR-closest to `id` first retained, stored id-sorted.
  overlay::FlatList bucket_entries;
  overlay::FlatList bucket_ends;
  /// Auxiliary neighbors installed by an auxiliary-selection algorithm.
  overlay::FlatList auxiliaries;
  /// Access frequencies of responsible peers for queries this node
  /// originated (feeds auxiliary selection).
  auxsel::FrequencyTable frequencies;

  explicit KademliaNode(size_t freq_capacity,
                     const auxsel::FreqSketchParams& sketch = {})
      : frequencies(freq_capacity, sketch) {}
};

/// God's-eye iterative Kademlia overlay: nodes, XOR routing, stabilization.
///
/// Routing is greedy in the XOR metric: the next hop is the live table
/// entry (bucket or auxiliary) minimizing `entry XOR key`, and the query
/// is answered once no entry is strictly closer than the current node.
/// Dead entries are skipped at use time ("ping before forwarding"), so
/// stale buckets degrade routes rather than black-holing them. Keys are
/// owned by the live node XOR-closest to them.
///
/// Capacity-truncated buckets cannot stall a fresh-table route: at node f,
/// every entry of bucket m is of the form "agrees with f above bit
/// bits-1-m, differs there", so all of bucket m's entries are XOR-closer
/// to the key exactly when f disagrees with the key at that bit — the
/// retention policy may drop individual nodes but never an entire useful
/// distance class. Greedy descent therefore strictly shrinks the XOR
/// distance each hop and terminates at the global minimizer, which is why
/// stable-mode delivery is exact (see docs/ALGORITHMS.md).
class KademliaNetwork {
 public:
  using NodeType = KademliaNode;

  explicit KademliaNetwork(const KademliaParams& params);

  const KademliaParams& params() const { return params_; }
  const IdSpace& space() const { return space_; }

  /// Adds a live node with the given id and builds its buckets from the
  /// current live membership. Other nodes learn of it only when they next
  /// stabilize. Fails on duplicate live id.
  Status AddNode(uint64_t id);

  /// Bulk join for large builds: inserts every id as a live node WITHOUT
  /// stabilizing (callers run StabilizeAll once after). Fails before any
  /// mutation on invalid ids.
  Status BulkAdd(const std::vector<uint64_t>& ids);

  /// Crashes a node: it disappears immediately; other nodes' bucket
  /// entries pointing at it become stale until their next stabilization.
  /// Node state (frequency history) is retained for a later rejoin unless
  /// `forget_state` is set.
  Status RemoveNode(uint64_t id, bool forget_state = false);

  /// Rejoins a previously crashed node: fresh buckets, empty auxiliaries,
  /// retained frequency history.
  Status RejoinNode(uint64_t id);

  bool IsAlive(uint64_t id) const { return store_.IsAlive(id); }
  size_t live_count() const { return store_.live_count(); }
  std::vector<uint64_t> LiveNodeIds() const;

  /// Mutable node state (must exist). Nullptr if unknown.
  KademliaNode* GetNode(uint64_t id) { return store_.Get(id); }
  const KademliaNode* GetNode(uint64_t id) const { return store_.Get(id); }

  /// Bucket views: `BucketCount` is the number of materialized distance
  /// classes (trailing empty classes absent), `Bucket(node, i)` the
  /// id-sorted members of class i, `BucketEntries` the whole flattened
  /// cpl-major span the routing loop walks.
  size_t BucketCount(const KademliaNode& node) const {
    return node.bucket_ends.size;
  }
  std::span<const uint64_t> BucketEntries(const KademliaNode& node) const {
    return store_.tables().View(node.bucket_entries);
  }
  std::span<const uint64_t> Bucket(const KademliaNode& node, size_t i) const {
    const auto ends = store_.tables().View(node.bucket_ends);
    const size_t begin = i == 0 ? 0 : static_cast<size_t>(ends[i - 1]);
    return BucketEntries(node).subspan(begin,
                                       static_cast<size_t>(ends[i]) - begin);
  }
  std::span<const uint64_t> Auxiliaries(const KademliaNode& node) const {
    return store_.tables().View(node.auxiliaries);
  }

  /// Auxiliary list of `id` (empty when the node is unknown).
  std::span<const uint64_t> AuxiliarySpan(uint64_t id) const {
    const KademliaNode* node = store_.Get(id);
    return node == nullptr ? std::span<const uint64_t>{} : Auxiliaries(*node);
  }

  /// Removes every occurrence of `entry` from `id`'s auxiliary list.
  void EraseAuxiliary(uint64_t id, uint64_t entry) {
    if (KademliaNode* node = store_.Get(id)) {
      store_.tables().EraseValue(node->auxiliaries, entry);
    }
  }

  /// Footprint accounting (node records + indices + routing arena).
  overlay::StoreMemoryStats MemoryUsage() const {
    return store_.MemoryUsage();
  }

  /// Ground truth: the live node XOR-closest to `key`. Found by a bit
  /// descent over the sorted live-id array (the XOR minimizer is not a
  /// numeric neighbor in general), O(bits · log n). Fails if the overlay
  /// is empty.
  Result<uint64_t> ResponsibleNode(uint64_t key) const;

  /// Routes a lookup for `key` from `origin` over current (possibly stale)
  /// tables into a caller-owned result. Does not record frequencies;
  /// callers decide what to observe. `out` is cleared first but keeps its
  /// path capacity, so a reused RouteResult makes the steady-state lookup
  /// path allocation-free. When `trace` is non-null the route's per-hop
  /// records (source, next hop, bucket-vs-auxiliary entry, XOR distance
  /// remaining) are appended to it.
  ///
  /// When `faults` names an enabled fault::FaultPlan the route runs the
  /// resilient policy instead: every forwarding attempt passes the plan's
  /// deterministic drop / fail-stop / stale gates, a failed attempt is
  /// retried against the next-best live entry (bounded per visit by
  /// max_retries, globally by the hop budget), and failure bookkeeping
  /// lands in the RouteResult's resilience fields. A null or disabled plan
  /// takes the fault-free path bit-for-bit.
  ///
  /// When `latency` names an enabled latency::LatencyModel every delivered
  /// forward accrues its deterministic hop span (base RTT + jitter) and
  /// every failed attempt accrues the model's timeout, summed into
  /// RouteResult::latency_ms and tagged per hop on the trace. A null or
  /// disabled model leaves every latency field 0 and the route unchanged.
  Status LookupInto(uint64_t origin, uint64_t key, RouteResult& out,
                    RouteTrace* trace = nullptr,
                    const fault::FaultPlan* faults = nullptr,
                    const latency::LatencyModel* latency = nullptr) const;

  /// By-value convenience form of LookupInto.
  Result<RouteResult> Lookup(
      uint64_t origin, uint64_t key, RouteTrace* trace = nullptr,
      const fault::FaultPlan* faults = nullptr,
      const latency::LatencyModel* latency = nullptr) const;

  /// One suspended fault-free lookup for the batched engine (same next-hop
  /// policy as LookupInto via a shared helper).
  struct LookupCursor {
    uint64_t current = 0;
    uint64_t key = 0;
    uint64_t truth = 0;
    const KademliaNode* node = nullptr;
    int hops = 0;
    int aux_hops = 0;
    bool done = true;
    bool success = false;
    uint64_t destination = 0;
  };

  Status BeginLookup(uint64_t origin, uint64_t key, LookupCursor& cursor)
      const;
  void StepLookup(LookupCursor& cursor) const;

  void PrefetchNode(const LookupCursor& cursor) const {
    __builtin_prefetch(cursor.node, 0, 1);
  }
  void PrefetchTables(const LookupCursor& cursor) const {
    const overlay::FlatTableArena& tables = store_.tables();
    tables.Prefetch(cursor.node->bucket_entries);
    tables.Prefetch(cursor.node->auxiliaries);
  }

  /// One suspended lookup at node-visit granularity for the message-driven
  /// runtime (src/net) — plain data only, so an in-flight route serializes
  /// into a LOOKUP_STEP wire message and resumes at the next node's actor.
  /// Covers both the fault-free and the resilient (FaultPlan) policies; one
  /// StepRoute call performs exactly one node visit. See
  /// chord::ChordNetwork::RouteCursor for the shared contract.
  struct RouteCursor {
    uint64_t current = 0;
    uint64_t key = 0;
    uint64_t truth = 0;
    int hops_taken = 0;  ///< successful forwards (delivered path length)
    int spent = 0;  ///< resilient hop budget: successful + failed attempts
    int attempt = 0;  ///< resilient retransmission-decorrelation counter
    bool resilient = false;
    bool done = true;
  };

  /// Starts a route at `origin`: clears `out`, resolves ground truth, and
  /// seeds the trace header. Same preconditions and statuses as LookupInto.
  Status BeginRoute(uint64_t origin, uint64_t key, RouteCursor& cursor,
                    RouteResult& out, RouteTrace* trace = nullptr,
                    const fault::FaultPlan* faults = nullptr,
                    const latency::LatencyModel* latency = nullptr) const;

  /// Performs one node visit, accumulating into `out`. LookupInto is
  /// implemented as BeginRoute + StepRoute-until-done, so the stepwise
  /// route is byte-for-byte the direct one.
  void StepRoute(RouteCursor& cursor, RouteResult& out,
                 RouteTrace* trace = nullptr,
                 const fault::FaultPlan* faults = nullptr,
                 const latency::LatencyModel* latency = nullptr) const;

  /// Step-wise ground-truth resolution for batched warmup: the same bit
  /// descent as ResponsibleNode over the sorted live array, advanced one
  /// outer bit level per step. Identical answer by construction.
  struct ResponsibleCursor {
    uint64_t key = 0;
    size_t lo = 0;  ///< candidate range sharing the prefix fixed so far
    size_t hi = 0;
    uint64_t prefix = 0;
    int bit = -1;  ///< next bit level to resolve
    bool done = true;
    uint64_t result = 0;
  };

  /// Positions `cursor` for `key`. Fails (cursor stays done) only when the
  /// overlay is empty — the same precondition as ResponsibleNode.
  Status BeginResponsible(uint64_t key, ResponsibleCursor& cursor) const;

  /// Resolves one bit level; finishes when the range collapses or the bits
  /// run out. No-op when the cursor is done.
  void StepResponsible(ResponsibleCursor& cursor) const;

  /// Prefetches the next level's boundary search region.
  void PrefetchResponsible(const ResponsibleCursor& cursor) const {
    const std::vector<uint64_t>& live = store_.live_ids();
    if (cursor.lo < cursor.hi) {
      __builtin_prefetch(&live[cursor.lo + (cursor.hi - cursor.lo) / 2], 0,
                         1);
    }
  }

  /// Rebuilds `id`'s buckets from live membership (periodic
  /// stabilization). Dead auxiliaries are pruned (the paper's "stale
  /// auxiliary entries are marked/removed; fixed at the next selection").
  Status StabilizeNode(uint64_t id);

  /// Stabilizes every live node.
  void StabilizeAll();

  /// Installs auxiliary neighbors on a node (ids need not be alive; dead
  /// ones are simply useless until pruned). Serial-only: writes the arena.
  Status SetAuxiliaries(uint64_t id, std::vector<uint64_t> auxiliaries);

  /// Builds the core-neighbor list (all bucket entries, deduplicated) used
  /// as N_s for auxiliary selection at this node.
  std::vector<uint64_t> CoreNeighborIds(uint64_t id) const;

 private:
  /// Best next hop (greedy XOR descent) from `current` toward `key` —
  /// shared by LookupInto and StepLookup. `next == current` means deliver.
  struct NextHop {
    uint64_t next;
    uint64_t best_remaining;
    HopEntryKind kind;
  };
  NextHop SelectNextHop(const KademliaNode& node, uint64_t current,
                        uint64_t key) const;

  /// One resilient node visit (the fault-gated retry loop of the classic
  /// LookupResilient body), shared by StepRoute's resilient branch.
  void StepResilient(RouteCursor& cursor, RouteResult& out, RouteTrace* trace,
                     const fault::FaultPlan& faults,
                     const latency::LatencyModel* latency) const;

  KademliaParams params_;
  IdSpace space_;
  overlay::NodeStore<KademliaNode> store_;  // all nodes ever seen
  std::vector<uint64_t> scratch_entries_;   // stabilize buffers (serial)
  std::vector<uint64_t> scratch_ends_;
  std::vector<uint64_t> scratch_bucket_;
};

}  // namespace peercache::kademlia

#endif  // PEERCACHE_KADEMLIA_KADEMLIA_NETWORK_H_
