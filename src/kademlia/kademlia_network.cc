#include "kademlia/kademlia_network.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/bits.h"
#include "common/overlay.h"

namespace peercache::kademlia {

static_assert(overlay::Overlay<KademliaNetwork>,
              "KademliaNetwork must satisfy the Overlay concept");

namespace {

/// Appends the `k - out.size()` ids of live[lo, hi) XOR-closest to `self`
/// to `out`, in XOR-ascending order, by descending the implicit binary trie
/// of the sorted range. Precondition: every id in [lo, hi) agrees with
/// every other above `bit`. At a split, the half agreeing with `self` at
/// `bit` is uniformly XOR-closer than the other half, so visiting it first
/// and stopping once `k` ids are collected yields exactly the XOR-closest
/// set — the same set the historical sort-by-XOR-then-truncate produced,
/// in O(k + log^2 range) instead of O(range log range).
void CollectXorClosest(const std::vector<uint64_t>& live, size_t lo,
                       size_t hi, int bit, uint64_t self, size_t k,
                       std::vector<uint64_t>& out) {
  if (lo >= hi || out.size() >= k) return;
  if (hi - lo <= k - out.size()) {
    out.insert(out.end(),
               live.begin() + static_cast<std::ptrdiff_t>(lo),
               live.begin() + static_cast<std::ptrdiff_t>(hi));
    return;
  }
  assert(bit >= 0);  // distinct ids agreeing above `bit` must split by it
  const uint64_t prefix = live[lo] & ~LowBitMask(bit + 1);
  const uint64_t boundary = prefix | (uint64_t{1} << bit);
  const size_t mid = static_cast<size_t>(
      std::lower_bound(live.begin() + static_cast<std::ptrdiff_t>(lo),
                       live.begin() + static_cast<std::ptrdiff_t>(hi),
                       boundary) -
      live.begin());
  if (((self >> bit) & 1) != 0) {
    CollectXorClosest(live, mid, hi, bit - 1, self, k, out);
    CollectXorClosest(live, lo, mid, bit - 1, self, k, out);
  } else {
    CollectXorClosest(live, lo, mid, bit - 1, self, k, out);
    CollectXorClosest(live, mid, hi, bit - 1, self, k, out);
  }
}

}  // namespace

KademliaNetwork::KademliaNetwork(const KademliaParams& params)
    : params_(params), space_(params.bits) {}

Status KademliaNetwork::AddNode(uint64_t id) {
  if (!space_.Contains(id)) return Status::InvalidArgument("id out of range");
  if (store_.IsAlive(id)) {
    return Status::InvalidArgument("live id already used");
  }
  auto [node, inserted] = store_.Emplace(id, params_.frequency_capacity, params_.freq_sketch);
  node->id = id;
  node->alive = true;
  store_.tables().Clear(node->auxiliaries);
  store_.MarkAlive(id);
  return StabilizeNode(id);
}

Status KademliaNetwork::BulkAdd(const std::vector<uint64_t>& ids) {
  for (uint64_t id : ids) {
    if (!space_.Contains(id)) {
      return Status::InvalidArgument("id out of range");
    }
    if (store_.IsAlive(id)) {
      return Status::InvalidArgument("live id already used");
    }
  }
  store_.Reserve(store_.size() + ids.size());
  for (uint64_t id : ids) {
    auto [node, inserted] = store_.Emplace(id, params_.frequency_capacity, params_.freq_sketch);
    node->id = id;
    node->alive = true;
    store_.tables().Clear(node->auxiliaries);
  }
  store_.BulkMarkAlive(ids);
  return Status::Ok();
}

Status KademliaNetwork::RemoveNode(uint64_t id, bool forget_state) {
  KademliaNode* node = store_.Get(id);
  if (node == nullptr || !node->alive) {
    return Status::NotFound("node not alive");
  }
  node->alive = false;
  store_.MarkDead(id);
  if (forget_state) {
    node->frequencies.Clear();
    store_.tables().Release(node->bucket_entries);
    store_.tables().Release(node->bucket_ends);
    store_.tables().Release(node->auxiliaries);
  }
  return Status::Ok();
}

Status KademliaNetwork::RejoinNode(uint64_t id) {
  KademliaNode* node = store_.Get(id);
  if (node == nullptr) return Status::NotFound("unknown node");
  if (node->alive) return Status::FailedPrecondition("already alive");
  node->alive = true;
  // Auxiliaries are lost on crash; rebuilt at the next selection.
  store_.tables().Clear(node->auxiliaries);
  store_.MarkAlive(id);
  return StabilizeNode(id);
}

std::vector<uint64_t> KademliaNetwork::LiveNodeIds() const {
  return store_.live_ids();
}

Result<uint64_t> KademliaNetwork::ResponsibleNode(uint64_t key) const {
  const std::vector<uint64_t>& live = store_.live_ids();
  if (live.empty()) return Status::FailedPrecondition("empty overlay");
  // Bit descent over the sorted live array: the candidates form a range
  // sharing the prefix fixed so far; at each bit prefer the half agreeing
  // with the key (ids with that bit set sort above the half-boundary).
  size_t lo = 0, hi = live.size();
  uint64_t prefix = 0;
  for (int i = params_.bits - 1; i >= 0 && hi - lo > 1; --i) {
    const uint64_t boundary = prefix | (uint64_t{1} << i);
    const size_t mid = static_cast<size_t>(
        std::lower_bound(live.begin() + static_cast<std::ptrdiff_t>(lo),
                         live.begin() + static_cast<std::ptrdiff_t>(hi),
                         boundary) -
        live.begin());
    const bool key_bit = ((key >> i) & 1) != 0;
    if (key_bit ? mid < hi : mid == lo) {
      lo = mid;  // take the upper (bit-set) half
      prefix = boundary;
    } else {
      hi = mid;  // take the lower (bit-clear) half
    }
  }
  return live[lo];
}

Status KademliaNetwork::BeginResponsible(uint64_t key,
                                         ResponsibleCursor& cursor) const {
  cursor = ResponsibleCursor{};
  const std::vector<uint64_t>& live = store_.live_ids();
  if (live.empty()) return Status::FailedPrecondition("empty overlay");
  cursor.key = key;
  cursor.lo = 0;
  cursor.hi = live.size();
  cursor.prefix = 0;
  cursor.bit = params_.bits - 1;
  cursor.done = false;
  return Status::Ok();
}

void KademliaNetwork::StepResponsible(ResponsibleCursor& cursor) const {
  if (cursor.done) return;
  const std::vector<uint64_t>& live = store_.live_ids();
  // One level of ResponsibleNode's bit descent: split the candidate range
  // at the half-boundary for this bit and keep the half agreeing with the
  // key (ids with the bit set sort above the boundary).
  if (cursor.bit >= 0 && cursor.hi - cursor.lo > 1) {
    const uint64_t boundary = cursor.prefix | (uint64_t{1} << cursor.bit);
    const size_t mid = static_cast<size_t>(
        std::lower_bound(
            live.begin() + static_cast<std::ptrdiff_t>(cursor.lo),
            live.begin() + static_cast<std::ptrdiff_t>(cursor.hi),
            boundary) -
        live.begin());
    const bool key_bit = ((cursor.key >> cursor.bit) & 1) != 0;
    if (key_bit ? mid < cursor.hi : mid == cursor.lo) {
      cursor.lo = mid;  // take the upper (bit-set) half
      cursor.prefix = boundary;
    } else {
      cursor.hi = mid;  // take the lower (bit-clear) half
    }
    --cursor.bit;
    if (cursor.bit >= 0 && cursor.hi - cursor.lo > 1) return;
  }
  cursor.result = live[cursor.lo];
  cursor.done = true;
}

Status KademliaNetwork::StabilizeNode(uint64_t id) {
  KademliaNode* node_ptr = store_.Get(id);
  if (node_ptr == nullptr || !node_ptr->alive) {
    return Status::NotFound("node not alive");
  }
  KademliaNode& node = *node_ptr;
  const std::vector<uint64_t>& live = store_.live_ids();

  // Buckets: class c's candidates are exactly the live ids sharing the
  // first c bits with `id` and differing at bit c — a contiguous range of
  // the sorted live array (two binary searches). A range that fits keeps
  // every member (already id-sorted); an over-full range keeps the
  // bucket_size XOR-closest via trie descent, re-sorted by id — the same
  // retained set as the historical global sort-by-XOR-then-truncate, found
  // without touching the other n - range ids. Trailing empty classes are
  // not materialized.
  scratch_entries_.clear();
  scratch_ends_.clear();
  const size_t bucket_size = static_cast<size_t>(params_.bucket_size);

  // Pass 1 (lazy): size every class's candidate range — two binary
  // searches each, no copying — and fix the per-class retention target.
  // With bucket_capacity unset every target is bucket_size (the historical
  // tables, bit for bit); with it set, each non-empty class keeps at least
  // one entry and the leftover budget goes to the XOR-closest classes.
  size_t los[64], his[64], keep[64];
  for (int c = 0; c < params_.bits; ++c) {
    const int flip = params_.bits - 1 - c;  // bit position that differs
    const uint64_t flipped = id ^ (uint64_t{1} << flip);
    los[c] = store_.LowerBoundLive(flipped & ~LowBitMask(flip));
    his[c] = store_.UpperBoundLive(flipped | LowBitMask(flip));
    keep[c] = bucket_size;
  }
  if (params_.bucket_capacity > 0) {
    size_t floor_total = 0;
    for (int c = 0; c < params_.bits; ++c) {
      keep[c] = los[c] < his[c] ? 1 : 0;
      floor_total += keep[c];
    }
    const size_t capacity = static_cast<size_t>(params_.bucket_capacity);
    size_t extra = capacity > floor_total ? capacity - floor_total : 0;
    for (int c = params_.bits - 1; c >= 0 && extra > 0; --c) {
      if (los[c] >= his[c]) continue;
      const size_t want = std::min(his[c] - los[c], bucket_size);
      const size_t add = std::min(extra, want - keep[c]);
      keep[c] += add;
      extra -= add;
    }
  }

  size_t last_nonempty = 0;
  bool any = false;
  for (int c = 0; c < params_.bits; ++c) {
    const int flip = params_.bits - 1 - c;  // bit position that differs
    const size_t lo = los[c];
    const size_t hi = his[c];
    if (lo < hi) {
      if (hi - lo <= keep[c]) {
        scratch_entries_.insert(
            scratch_entries_.end(),
            live.begin() + static_cast<std::ptrdiff_t>(lo),
            live.begin() + static_cast<std::ptrdiff_t>(hi));
      } else {
        scratch_bucket_.clear();
        CollectXorClosest(live, lo, hi, flip - 1, id, keep[c],
                          scratch_bucket_);
        std::sort(scratch_bucket_.begin(), scratch_bucket_.end());
        scratch_entries_.insert(scratch_entries_.end(),
                                scratch_bucket_.begin(),
                                scratch_bucket_.end());
      }
      last_nonempty = static_cast<size_t>(c);
      any = true;
    }
    scratch_ends_.push_back(scratch_entries_.size());
  }
  scratch_ends_.resize(any ? last_nonempty + 1 : 0);
  store_.tables().Assign(node.bucket_entries, scratch_entries_);
  store_.tables().Assign(node.bucket_ends, scratch_ends_);

  // Prune dead auxiliaries (stale-entry removal).
  store_.tables().EraseIf(node.auxiliaries,
                          [this](uint64_t a) { return !IsAlive(a); });
  return Status::Ok();
}

void KademliaNetwork::StabilizeAll() {
  for (uint64_t id : LiveNodeIds()) {
    (void)StabilizeNode(id);
  }
}

Status KademliaNetwork::SetAuxiliaries(uint64_t id,
                                       std::vector<uint64_t> auxiliaries) {
  KademliaNode* node = store_.Get(id);
  if (node == nullptr || !node->alive) {
    return Status::NotFound("node not alive");
  }
  store_.tables().Assign(node->auxiliaries, auxiliaries);
  return Status::Ok();
}

std::vector<uint64_t> KademliaNetwork::CoreNeighborIds(uint64_t id) const {
  const KademliaNode* node = GetNode(id);
  if (node == nullptr) return {};
  const auto entries = BucketEntries(*node);
  std::vector<uint64_t> out(entries.begin(), entries.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

KademliaNetwork::NextHop KademliaNetwork::SelectNextHop(
    const KademliaNode& node, uint64_t current, uint64_t key) const {
  // Greedy XOR descent: among live table entries strictly closer to the
  // key than the current node, pick the closest. Dead entries are skipped
  // ("ping before forwarding").
  NextHop best{current, current ^ key, HopEntryKind::kBucket};
  auto consider = [&](uint64_t w, HopEntryKind kind) {
    if (w == current || !IsAlive(w)) return;
    const uint64_t remaining = w ^ key;
    if (remaining < best.best_remaining) {
      best.best_remaining = remaining;
      best.next = w;
      best.kind = kind;
    }
  };
  for (uint64_t w : BucketEntries(node)) consider(w, HopEntryKind::kBucket);
  for (uint64_t w : Auxiliaries(node)) consider(w, HopEntryKind::kAuxiliary);
  return best;
}

Status KademliaNetwork::LookupInto(uint64_t origin, uint64_t key,
                                   RouteResult& out, RouteTrace* trace,
                                   const fault::FaultPlan* faults,
                                   const latency::LatencyModel* latency) const {
  RouteCursor cursor;
  if (Status s = BeginRoute(origin, key, cursor, out, trace, faults, latency);
      !s.ok()) {
    return s;
  }
  while (!cursor.done) StepRoute(cursor, out, trace, faults, latency);
  return Status::Ok();
}

Status KademliaNetwork::BeginRoute(uint64_t origin, uint64_t key,
                                   RouteCursor& cursor, RouteResult& out,
                                   RouteTrace* trace,
                                   const fault::FaultPlan* faults,
                                   const latency::LatencyModel* latency) const {
  (void)latency;
  cursor = RouteCursor{};
  out.Clear();
  if (!IsAlive(origin)) return Status::Unavailable("origin not alive");
  auto truth = ResponsibleNode(key);
  if (!truth.ok()) return truth.status();
  cursor.current = origin;
  cursor.key = key;
  cursor.truth = truth.value();
  cursor.resilient = faults != nullptr && faults->enabled();
  cursor.done = false;
  if (trace != nullptr) {
    trace->origin = origin;
    trace->key = key;
  }
  return Status::Ok();
}

void KademliaNetwork::StepRoute(RouteCursor& cursor, RouteResult& out,
                                RouteTrace* trace,
                                const fault::FaultPlan* faults,
                                const latency::LatencyModel* latency) const {
  if (cursor.done) return;
  if (cursor.resilient) {
    assert(faults != nullptr && faults->enabled());
    StepResilient(cursor, out, trace, *faults, latency);
    return;
  }

  const bool timed = latency != nullptr && latency->enabled();
  auto finish = [&](uint64_t destination, int hops, bool delivered) {
    out.destination = destination;
    out.hops = hops;
    out.success = delivered && destination == cursor.truth;
    if (trace != nullptr) {
      trace->destination = out.destination;
      trace->success = out.success;
      trace->hops = out.hops;
      trace->latency_ms = out.latency_ms;
    }
    cursor.done = true;
  };

  const KademliaNode* node = GetNode(cursor.current);
  assert(node != nullptr);
  const NextHop sel = SelectNextHop(*node, cursor.current, cursor.key);
  if (sel.next == cursor.current) {
    // No live entry XOR-closer to the key: to this node's knowledge it
    // is the key's closest node, so it answers.
    finish(cursor.current, cursor.hops_taken, /*delivered=*/true);
    return;
  }
  if (sel.kind == HopEntryKind::kAuxiliary) ++out.aux_hops;
  if (trace != nullptr) {
    trace->path.push_back({cursor.current, sel.next, sel.kind,
                           sel.best_remaining});
  }
  if (timed) {
    const double ms = latency->HopLatencyMs(cursor.key, cursor.current,
                                            sel.next, cursor.hops_taken);
    out.latency_ms += ms;
    if (trace != nullptr) trace->path.back().latency_ms = ms;
  }
  out.path.push_back(cursor.current);
  cursor.current = sel.next;
  ++cursor.hops_taken;
  if (cursor.hops_taken > params_.max_route_hops) {
    // Same hop-budget failure the classic loop reports.
    finish(cursor.current, params_.max_route_hops, /*delivered=*/false);
  }
}

Status KademliaNetwork::BeginLookup(uint64_t origin, uint64_t key,
                                    LookupCursor& cursor) const {
  cursor = LookupCursor{};
  if (!IsAlive(origin)) return Status::Unavailable("origin not alive");
  auto truth = ResponsibleNode(key);
  if (!truth.ok()) return truth.status();
  cursor.current = origin;
  cursor.key = key;
  cursor.truth = truth.value();
  cursor.node = GetNode(origin);
  cursor.done = false;
  return Status::Ok();
}

void KademliaNetwork::StepLookup(LookupCursor& cursor) const {
  if (cursor.done) return;
  const NextHop sel = SelectNextHop(*cursor.node, cursor.current, cursor.key);
  if (sel.next == cursor.current) {
    cursor.destination = cursor.current;
    cursor.success = (cursor.current == cursor.truth);
    cursor.done = true;
    return;
  }
  if (sel.kind == HopEntryKind::kAuxiliary) ++cursor.aux_hops;
  cursor.current = sel.next;
  cursor.node = GetNode(sel.next);
  ++cursor.hops;
  if (cursor.hops > params_.max_route_hops) {
    // Same hop-budget failure LookupInto reports.
    cursor.destination = cursor.current;
    cursor.hops = params_.max_route_hops;
    cursor.success = false;
    cursor.done = true;
  }
}

void KademliaNetwork::StepResilient(RouteCursor& cursor, RouteResult& out,
                                    RouteTrace* trace,
                                    const fault::FaultPlan& faults,
                                    const latency::LatencyModel* latency)
    const {
  const bool timed = latency != nullptr && latency->enabled();
  auto finish = [&](uint64_t destination, int hops, bool delivered) {
    out.destination = destination;
    out.hops = hops;
    out.success = delivered && destination == cursor.truth;
    if (trace != nullptr) {
      trace->destination = out.destination;
      trace->success = out.success;
      trace->hops = out.hops;
      trace->latency_ms = out.latency_ms;
    }
    cursor.done = true;
  };

  // Classic outer-loop guard: a previous visit may have spent the budget.
  if (cursor.spent > params_.max_route_hops) {
    out.budget_exhausted = true;
    finish(cursor.current, params_.max_route_hops, /*delivered=*/false);
    return;
  }

  const uint64_t key = cursor.key;
  const uint64_t current = cursor.current;
  const KademliaNode* node = GetNode(current);
  assert(node != nullptr);
  // Per-visit exclusion sets. Entries that turned out dead (fail-stop or
  // stale) are never retried; drop-excluded entries become eligible again
  // only when no alternative makes progress (retransmission). Visit-local,
  // so they never cross a message boundary.
  std::vector<uint64_t> dead_here;
  std::vector<uint64_t> dropped_here;
  int retries_here = 0;

  // Per-visit retry loop: select the best non-excluded entry, run it
  // through the fault gates, and either forward or exclude and retry.
  while (true) {
    uint64_t next = current;
    uint64_t best_remaining = current ^ key;
    HopEntryKind next_kind = HopEntryKind::kBucket;
    bool next_is_dead = false;

    auto excluded = [](const std::vector<uint64_t>& set, uint64_t w) {
      return std::find(set.begin(), set.end(), w) != set.end();
    };
    auto scan = [&](bool allow_retransmit) {
      next = current;
      best_remaining = current ^ key;
      auto consider = [&](uint64_t w, HopEntryKind kind) {
        if (w == current || excluded(dead_here, w)) return;
        if (!allow_retransmit && excluded(dropped_here, w)) return;
        const bool alive = IsAlive(w);
        // Ping-before-forward still skips known-dead entries — unless
        // this lookup falls inside the entry's stale window, in which
        // case the holder believes the ping and forwards into the void.
        if (!alive && !faults.StaleBelievedAlive(key, current, w)) return;
        const uint64_t remaining = w ^ key;
        if (remaining < best_remaining) {
          best_remaining = remaining;
          next = w;
          next_kind = kind;
          next_is_dead = !alive;
        }
      };
      for (uint64_t w : BucketEntries(*node)) {
        consider(w, HopEntryKind::kBucket);
      }
      for (uint64_t w : Auxiliaries(*node)) {
        consider(w, HopEntryKind::kAuxiliary);
      }
    };
    scan(/*allow_retransmit=*/false);
    if (next == current && !dropped_here.empty()) {
      scan(/*allow_retransmit=*/true);
    }

    if (next == current) {
      // No believed-live entry XOR-closer to the key: to this node's
      // knowledge it is the key's closest node, so it answers.
      finish(current, cursor.hops_taken, /*delivered=*/true);
      return;
    }

    // Fault gates, in failure-cause order: a dead entry can never
    // receive, a fail-stopped target is down for this whole lookup, and
    // an otherwise-healthy forward can still lose its message.
    bool failed = false;
    if (next_is_dead) {
      ++out.stale_forwards;
      out.dead_evictions.emplace_back(current, next);
      dead_here.push_back(next);
      failed = true;
    } else if (faults.FailStopped(key, next)) {
      ++out.failstop_skips;
      dead_here.push_back(next);
      failed = true;
    } else if (faults.DropForward(key, current, next, cursor.attempt++)) {
      ++out.dropped_forwards;
      dropped_here.push_back(next);
      failed = true;
    }

    if (!failed) {
      if (next_kind == HopEntryKind::kAuxiliary) ++out.aux_hops;
      if (trace != nullptr) {
        trace->path.push_back({current, next, next_kind, best_remaining,
                               /*dropped=*/false,
                               /*retried=*/retries_here > 0});
      }
      if (timed) {
        const double ms =
            latency->HopLatencyMs(key, current, next, cursor.spent);
        out.latency_ms += ms;
        if (trace != nullptr) trace->path.back().latency_ms = ms;
      }
      out.path.push_back(current);
      cursor.current = next;
      ++cursor.hops_taken;
      ++cursor.spent;
      return;  // next node visit = next StepRoute
    }

    // Failed attempt: charge budgets, honor the retry policy.
    ++out.retries;
    ++retries_here;
    ++cursor.spent;
    if (trace != nullptr) {
      trace->path.push_back({current, next, next_kind, best_remaining,
                             /*dropped=*/true, /*retried=*/false});
    }
    if (timed) {
      const double ms = latency->FailedAttemptMs();
      out.latency_ms += ms;
      if (trace != nullptr) trace->path.back().latency_ms = ms;
    }
    if (!faults.config().retry) {
      finish(current, cursor.hops_taken, /*delivered=*/false);
      return;
    }
    if (retries_here > faults.config().max_retries ||
        cursor.spent > params_.max_route_hops) {
      out.budget_exhausted = true;
      finish(current, cursor.hops_taken, /*delivered=*/false);
      return;
    }
  }
}

Result<RouteResult> KademliaNetwork::Lookup(
    uint64_t origin, uint64_t key, RouteTrace* trace,
    const fault::FaultPlan* faults,
    const latency::LatencyModel* latency) const {
  RouteResult result;
  if (Status s = LookupInto(origin, key, result, trace, faults, latency);
      !s.ok()) {
    return s;
  }
  return result;
}

}  // namespace peercache::kademlia
