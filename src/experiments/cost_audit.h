#ifndef PEERCACHE_EXPERIMENTS_COST_AUDIT_H_
#define PEERCACHE_EXPERIMENTS_COST_AUDIT_H_

#include <cstdint>
#include <vector>

#include "common/stats.h"

namespace peercache::experiments {

/// Per-node audit of the selection cost model: the selector's Eq. 1
/// prediction against reality. `predicted_hops` is the selector's Eq. 1
/// cost normalized by the node's total observed frequency — the
/// frequency-weighted route length the cost model promises after
/// installing the chosen auxiliaries. `measured_hops` is the mean hop
/// count actually measured for lookups originated by this node over the
/// same (frequency-weighted, Zipf) workload. The residual distribution is
/// a live correctness check on the DP/greedy/fast selectors: a systematic
/// bias means the distance estimate d(v, N ∪ A) has drifted from what the
/// router does.
struct CostAuditEntry {
  uint64_t node_id = 0;
  double predicted_hops = 0.0;
  double measured_hops = 0.0;
  uint64_t measured_queries = 0;  ///< Successful measured lookups averaged.
};

/// Residual distribution over all audited nodes.
struct CostAuditSummary {
  uint64_t nodes = 0;
  /// measured - predicted, one sample per audited node. Positive mean =
  /// the model is optimistic (real routes are longer than Eq. 1 promises).
  OnlineStats residual;
  OnlineStats abs_residual;
};

/// Summarizes entries in their stored order (callers keep them sorted by
/// node id, so the floating-point accumulation order is deterministic).
/// Entries with no measured queries are skipped.
CostAuditSummary SummarizeCostAudit(const std::vector<CostAuditEntry>& entries);

}  // namespace peercache::experiments

#endif  // PEERCACHE_EXPERIMENTS_COST_AUDIT_H_
