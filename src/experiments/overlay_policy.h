#ifndef PEERCACHE_EXPERIMENTS_OVERLAY_POLICY_H_
#define PEERCACHE_EXPERIMENTS_OVERLAY_POLICY_H_

#include <cstdint>

#include "auxsel/chord_maintainer.h"
#include "auxsel/kademlia_maintainer.h"
#include "auxsel/maintainer.h"
#include "auxsel/pastry_maintainer.h"
#include "auxsel/selection_types.h"
#include "chord/chord_network.h"
#include "common/overlay.h"
#include "common/random.h"
#include "common/status.h"
#include "experiments/experiment_config.h"
#include "kademlia/kademlia_network.h"
#include "pastry/pastry_network.h"

namespace peercache::experiments {

/// Per-phase RNG stream bases derived from the experiment seed, so runs
/// with different selector policies see identical membership, workload,
/// and query sequences. The warmup/measure/selection entries are *stream
/// bases*: each node splits its own stream off them (SplitSeed), which is
/// what lets the per-node loops run in parallel without reordering
/// anyone's draws. The churn/query_times/origins bases drive the
/// event-driven churn simulation's three independent processes.
///
/// Each policy derives these with its own historical constants — the
/// committed results/ figures depend on them, so they are part of each
/// overlay's telemetry contract, not free to unify.
struct SeedPlan {
  uint64_t ids = 0;
  uint64_t coords = 0;  ///< Underlay coordinates (Pastry only).
  uint64_t items = 0;
  uint64_t lists = 0;
  uint64_t assign = 0;
  uint64_t warmup = 0;
  uint64_t measure = 0;
  uint64_t selection = 0;
  uint64_t churn = 0;
  uint64_t query_times = 0;
  uint64_t origins = 0;
};

/// The compile-time contract between an overlay backend and the generic
/// experiment engine (generic_experiment.h). A policy binds together:
///
///   * `Network`      — a type satisfying overlay::Overlay;
///   * `kName`        — the system label used in telemetry documents;
///   * `MakeSeedPlan` — the backend's historical seed-derivation constants;
///   * `MakeNetwork`  — network construction from the experiment config
///                      (which config knob feeds which protocol parameter);
///   * `SelectOptimal` / `SelectOblivious` / `SelectQos` — the backend's
///                      auxiliary-selection algorithms (paper Sec. IV/V;
///                      SelectQos honors per-peer delay bounds and returns
///                      kInfeasible when they cannot be met);
///   * `Maintainer` / `MakeMaintainer` — the backend's persistent
///                      incremental selector state (auxsel/maintainer.h),
///                      one instance per node, surviving churn rounds.
///
/// Everything else — node-id sampling, workload setup, warmup, selection,
/// measurement, and the churn event loop — is overlay-independent and
/// lives once in the generic engine.
struct ChordPolicy {
  using Network = chord::ChordNetwork;
  using Maintainer = auxsel::ChordAuxMaintainer;
  static constexpr const char* kName = "chord";

  static SeedPlan MakeSeedPlan(uint64_t seed);
  static Network MakeNetwork(const ExperimentConfig& config,
                             const SeedPlan& seeds);
  static Maintainer MakeMaintainer(const ExperimentConfig& config,
                                   uint64_t self_id);
  static Result<auxsel::Selection> SelectOptimal(
      const auxsel::SelectionInput& input);
  static Result<auxsel::Selection> SelectOblivious(
      const auxsel::SelectionInput& input, Rng& rng);
  static Result<auxsel::Selection> SelectQos(
      const auxsel::SelectionInput& input);
};

struct PastryPolicy {
  using Network = pastry::PastryNetwork;
  using Maintainer = auxsel::PastryAuxMaintainer;
  static constexpr const char* kName = "pastry";

  static SeedPlan MakeSeedPlan(uint64_t seed);
  static Network MakeNetwork(const ExperimentConfig& config,
                             const SeedPlan& seeds);
  static Maintainer MakeMaintainer(const ExperimentConfig& config,
                                   uint64_t self_id);
  static Result<auxsel::Selection> SelectOptimal(
      const auxsel::SelectionInput& input);
  static Result<auxsel::Selection> SelectOblivious(
      const auxsel::SelectionInput& input, Rng& rng);
  static Result<auxsel::Selection> SelectQos(
      const auxsel::SelectionInput& input);
};

struct KademliaPolicy {
  using Network = kademlia::KademliaNetwork;
  using Maintainer = auxsel::KademliaAuxMaintainer;
  static constexpr const char* kName = "kademlia";

  static SeedPlan MakeSeedPlan(uint64_t seed);
  static Network MakeNetwork(const ExperimentConfig& config,
                             const SeedPlan& seeds);
  static Maintainer MakeMaintainer(const ExperimentConfig& config,
                                   uint64_t self_id);
  static Result<auxsel::Selection> SelectOptimal(
      const auxsel::SelectionInput& input);
  static Result<auxsel::Selection> SelectOblivious(
      const auxsel::SelectionInput& input, Rng& rng);
  static Result<auxsel::Selection> SelectQos(
      const auxsel::SelectionInput& input);
};

static_assert(overlay::Overlay<ChordPolicy::Network>);
static_assert(overlay::Overlay<PastryPolicy::Network>);
static_assert(overlay::Overlay<KademliaPolicy::Network>);
static_assert(auxsel::Maintainer<ChordPolicy::Maintainer>);
static_assert(auxsel::Maintainer<PastryPolicy::Maintainer>);
static_assert(auxsel::Maintainer<KademliaPolicy::Maintainer>);

}  // namespace peercache::experiments

#endif  // PEERCACHE_EXPERIMENTS_OVERLAY_POLICY_H_
