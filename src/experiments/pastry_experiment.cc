#include "experiments/pastry_experiment.h"

#include <cmath>
#include <functional>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "auxsel/oblivious.h"
#include "auxsel/pastry_greedy.h"
#include "auxsel/selection_types.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "experiments/parallel_engine.h"
#include "pastry/pastry_network.h"
#include "sim/event_queue.h"
#include "workload/workload.h"

namespace peercache::experiments {

namespace {

using auxsel::SelectionInput;
using internal::ObliviousPool;
using internal::PhaseTimer;
using internal::PoolWithoutSelf;
using pastry::PastryNetwork;
using pastry::PastryNode;
using pastry::PastryParams;

/// Stream bases per phase; each node splits its own stream off the phase
/// base (see chord_experiment.cc for the full rationale).
struct SeedPlan {
  explicit SeedPlan(uint64_t seed)
      : ids(MixHash64(seed ^ 0xb11)),
        coords(MixHash64(seed ^ 0xc22)),
        items(MixHash64(seed ^ 0xd33)),
        lists(MixHash64(seed ^ 0xe44)),
        assign(MixHash64(seed ^ 0xf55)),
        warmup(MixHash64(seed ^ 0x166)),
        measure(MixHash64(seed ^ 0x277)),
        selection(MixHash64(seed ^ 0x388)) {}
  uint64_t ids, coords, items, lists, assign, warmup, measure, selection;
};

/// See chord_experiment.cc: same contract, Pastry selectors. Safe to run
/// concurrently for distinct nodes. `predicted_hops` (if non-null)
/// receives the selector's Eq. 1 cost / total observed frequency for the
/// cost-model audit (NaN when no prediction exists).
Status InstallAuxiliaries(PastryNetwork& net, uint64_t node_id,
                          SelectorKind selector, int k, Rng& selection_rng,
                          const std::vector<auxsel::PeerFreq>& peer_pool,
                          double* predicted_hops = nullptr) {
  if (predicted_hops != nullptr) {
    *predicted_hops = std::numeric_limits<double>::quiet_NaN();
  }
  if (selector == SelectorKind::kNone) {
    return net.SetAuxiliaries(node_id, {});
  }
  PastryNode* node = net.GetNode(node_id);
  if (node == nullptr) return Status::NotFound("node");

  SelectionInput input;
  input.bits = net.params().bits;
  input.self_id = node_id;
  input.k = k;
  input.core_ids = net.CoreNeighborIds(node_id);

  Result<auxsel::Selection> sel = [&]() -> Result<auxsel::Selection> {
    if (selector == SelectorKind::kOptimal) {
      input.peers = node->frequencies.Snapshot(node_id);
      return auxsel::SelectPastryGreedy(input);
    }
    input.peers = PoolWithoutSelf(peer_pool, node_id);
    return auxsel::SelectPastryOblivious(input, selection_rng);
  }();
  if (!sel.ok()) return sel.status();

  if (predicted_hops != nullptr && selector == SelectorKind::kOptimal) {
    double total_freq = 0.0;
    for (const auxsel::PeerFreq& p : input.peers) total_freq += p.frequency;
    if (total_freq > 0.0) *predicted_hops = sel->cost / total_freq;
  }

  // Pad a too-small optimal selection with oblivious picks so both policies
  // install exactly k pointers (see chord_experiment.cc).
  if (selector == SelectorKind::kOptimal &&
      static_cast<int>(sel->chosen.size()) < input.k) {
    SelectionInput pad = input;
    pad.peers = PoolWithoutSelf(peer_pool, node_id);
    pad.core_ids.insert(pad.core_ids.end(), sel->chosen.begin(),
                        sel->chosen.end());
    pad.k = input.k - static_cast<int>(sel->chosen.size());
    auto extra = auxsel::SelectPastryOblivious(pad, selection_rng);
    if (extra.ok()) {
      sel->chosen.insert(sel->chosen.end(), extra->chosen.begin(),
                         extra->chosen.end());
    }
  }
  return net.SetAuxiliaries(node_id, std::move(sel->chosen));
}

}  // namespace

Result<RunResult> RunPastryStable(const ExperimentConfig& config,
                                  SelectorKind selector) {
  const SeedPlan seeds(config.seed);
  PastryParams params;
  params.bits = config.bits;
  params.frequency_capacity = config.frequency_capacity;
  params.leaf_set_half = config.leaf_set_half;
  PastryNetwork net(params, seeds.coords);

  Rng ids_rng(seeds.ids);
  const uint64_t space =
      config.bits == 64 ? ~uint64_t{0} : (uint64_t{1} << config.bits);
  std::vector<uint64_t> node_ids =
      ids_rng.SampleDistinct(space, static_cast<size_t>(config.n_nodes));
  for (uint64_t id : node_ids) {
    if (Status s = net.AddNode(id); !s.ok()) return s;
  }
  net.StabilizeAll();

  workload::ItemSpace items(config.bits, config.n_items, seeds.items);
  workload::PopularityModel popularity(config.n_items, config.alpha,
                                       config.n_popularity_lists, seeds.lists);
  workload::QueryWorkload queries(items, popularity, seeds.assign);
  queries.AssignLists(node_ids);  // read-only afterwards (parallel loops)

  ThreadPool pool(config.threads);
  RunResult result;

  PhaseTimer warmup_timer;
  if (Status s =
          internal::ParallelWarmup(pool, net, node_ids, queries, seeds.warmup,
                                   config.warmup_queries_per_node);
      !s.ok()) {
    return s;
  }
  result.warmup_seconds = warmup_timer.Seconds();

  PhaseTimer selection_timer;
  const std::vector<auxsel::PeerFreq> peer_pool = ObliviousPool(node_ids);
  std::vector<double> predicted(node_ids.size(),
                                std::numeric_limits<double>::quiet_NaN());
  if (Status s = internal::ParallelInstall(
          pool, node_ids, seeds.selection,
          [&](size_t i, uint64_t id, Rng& rng) {
            return InstallAuxiliaries(net, id, selector, config.k, rng,
                                      peer_pool, &predicted[i]);
          });
      !s.ok()) {
    return s;
  }
  result.selection_seconds = selection_timer.Seconds();
  internal::CollectAuxiliaries(net, node_ids, result);

  PhaseTimer measure_timer;
  if (Status s = internal::ParallelMeasure(
          pool, net, node_ids, queries, seeds.measure,
          config.measure_queries_per_node, config.trace_sample_period,
          predicted, result);
      !s.ok()) {
    return s;
  }
  result.measure_seconds = measure_timer.Seconds();
  internal::RecordPhaseTimers(result);
  return result;
}

Result<RunResult> RunPastryChurn(const ExperimentConfig& config,
                                 const ChurnConfig& churn,
                                 SelectorKind selector) {
  const SeedPlan seeds(config.seed);
  PastryParams params;
  params.bits = config.bits;
  params.frequency_capacity = config.frequency_capacity;
  params.leaf_set_half = config.leaf_set_half;
  PastryNetwork net(params, seeds.coords);

  Rng ids_rng(seeds.ids);
  const uint64_t space =
      config.bits == 64 ? ~uint64_t{0} : (uint64_t{1} << config.bits);
  std::vector<uint64_t> node_ids =
      ids_rng.SampleDistinct(space, static_cast<size_t>(config.n_nodes));
  for (uint64_t id : node_ids) {
    if (Status s = net.AddNode(id); !s.ok()) return s;
  }
  net.StabilizeAll();

  workload::ItemSpace items(config.bits, config.n_items, seeds.items);
  workload::PopularityModel popularity(config.n_items, config.alpha,
                                       config.n_popularity_lists, seeds.lists);
  workload::QueryWorkload queries(items, popularity, seeds.assign);
  queries.AssignLists(node_ids);

  ThreadPool pool(config.threads);
  sim::EventQueue eq;
  Rng churn_rng(MixHash64(config.seed ^ 0xc0ffee));
  Rng query_time_rng(MixHash64(config.seed ^ 0xbeef01));
  Rng origin_rng(MixHash64(config.seed ^ 0xbeef02));
  Rng query_key_rng(seeds.measure);

  const double t_end = churn.warmup_s + churn.measure_s;
  RunResult result;
  uint64_t successes = 0;
  internal::ChurnObservability obs(config.trace_sample_period);

  std::function<void(uint64_t)> schedule_leave;
  std::function<void(uint64_t)> schedule_rejoin;
  schedule_leave = [&](uint64_t id) {
    eq.ScheduleAfter(churn_rng.Exponential(churn.mean_lifetime_s), [&, id] {
      if (net.live_count() <= 2 || !net.IsAlive(id)) {
        schedule_leave(id);
        return;
      }
      (void)net.RemoveNode(id);
      schedule_rejoin(id);
    });
  };
  schedule_rejoin = [&](uint64_t id) {
    eq.ScheduleAfter(churn_rng.Exponential(churn.mean_lifetime_s), [&, id] {
      (void)net.RejoinNode(id);
      schedule_leave(id);
    });
  };
  for (uint64_t id : node_ids) schedule_leave(id);

  std::function<void()> stabilize_tick = [&] {
    net.StabilizeAll();
    if (eq.now() + churn.stabilize_interval_s <= t_end) {
      eq.ScheduleAfter(churn.stabilize_interval_s, stabilize_tick);
    }
  };
  eq.ScheduleAfter(churn.stabilize_interval_s, stabilize_tick);

  // Parallel per-round recomputation; see chord_experiment.cc.
  uint64_t recompute_round = 0;
  std::function<void()> recompute_tick = [&] {
    PhaseTimer selection_timer;
    std::vector<uint64_t> live = net.LiveNodeIds();
    const std::vector<auxsel::PeerFreq> peer_pool = ObliviousPool(live);
    const uint64_t round_seed = SplitSeed(seeds.selection, recompute_round++);
    std::vector<double> predicted(live.size(),
                                  std::numeric_limits<double>::quiet_NaN());
    (void)internal::ParallelInstall(
        pool, live, round_seed, [&](size_t i, uint64_t id, Rng& rng) {
          return InstallAuxiliaries(net, id, selector, config.k, rng,
                                    peer_pool, &predicted[i]);
        });
    for (size_t i = 0; i < live.size(); ++i) {
      if (std::isfinite(predicted[i])) obs.predicted[live[i]] = predicted[i];
    }
    result.selection_seconds += selection_timer.Seconds();
    if (eq.now() + churn.recompute_interval_s <= t_end) {
      eq.ScheduleAfter(churn.recompute_interval_s, recompute_tick);
    }
  };
  eq.ScheduleAfter(churn.recompute_interval_s, recompute_tick);

  std::function<void()> query_event = [&] {
    std::vector<uint64_t> live = net.LiveNodeIds();
    if (!live.empty()) {
      const uint64_t origin =
          live[static_cast<size_t>(origin_rng.UniformU64(live.size()))];
      const uint64_t key = queries.SampleKey(origin, query_key_rng);
      const bool in_window = eq.now() >= churn.warmup_s;
      const bool trace_this = in_window && obs.ShouldTraceNext();
      RouteTrace trace;
      auto route = net.Lookup(origin, key, trace_this ? &trace : nullptr);
      if (route.ok()) {
        if (in_window) {
          ++result.queries;
          obs.OnMeasuredQuery();
          if (trace_this) result.traces.push_back(std::move(trace));
        }
        if (route->success) {
          if (in_window) {
            ++successes;
            result.hop_histogram.Add(route->hops);
            obs.OnMeasuredSuccess(origin, route->hops, route->aux_hops);
          }
          for (uint64_t seen_by : route->path) {
            if (PastryNode* n = net.GetNode(seen_by); n != nullptr) {
              n->frequencies.Record(route->destination);
            }
          }
        }
      }
    }
    const double dt = query_time_rng.Exponential(1.0 / churn.queries_per_s);
    if (eq.now() + dt <= t_end) eq.ScheduleAfter(dt, query_event);
  };
  eq.ScheduleAfter(query_time_rng.Exponential(1.0 / churn.queries_per_s),
                   query_event);

  eq.RunUntil(t_end);

  result.success_rate = result.queries == 0
                            ? 1.0
                            : static_cast<double>(successes) /
                                  static_cast<double>(result.queries);
  result.avg_hops = result.hop_histogram.Mean();
  internal::CollectAuxiliaries(net, net.LiveNodeIds(), result);
  obs.Finalize(result);
  return result;
}

Result<Comparison> ComparePastryChurn(const ExperimentConfig& config,
                                      const ChurnConfig& churn) {
  auto none = RunPastryChurn(config, churn, SelectorKind::kNone);
  if (!none.ok()) return none.status();
  auto oblivious = RunPastryChurn(config, churn, SelectorKind::kOblivious);
  if (!oblivious.ok()) return oblivious.status();
  auto optimal = RunPastryChurn(config, churn, SelectorKind::kOptimal);
  if (!optimal.ok()) return optimal.status();
  Comparison cmp;
  cmp.none = std::move(none).value();
  cmp.oblivious = std::move(oblivious).value();
  cmp.optimal = std::move(optimal).value();
  cmp.improvement_pct =
      ImprovementPct(cmp.oblivious.avg_hops, cmp.optimal.avg_hops);
  cmp.improvement_vs_none_pct =
      ImprovementPct(cmp.none.avg_hops, cmp.optimal.avg_hops);
  return cmp;
}

Result<Comparison> ComparePastryStable(const ExperimentConfig& config) {
  auto none = RunPastryStable(config, SelectorKind::kNone);
  if (!none.ok()) return none.status();
  auto oblivious = RunPastryStable(config, SelectorKind::kOblivious);
  if (!oblivious.ok()) return oblivious.status();
  auto optimal = RunPastryStable(config, SelectorKind::kOptimal);
  if (!optimal.ok()) return optimal.status();
  Comparison cmp;
  cmp.none = std::move(none).value();
  cmp.oblivious = std::move(oblivious).value();
  cmp.optimal = std::move(optimal).value();
  cmp.improvement_pct =
      ImprovementPct(cmp.oblivious.avg_hops, cmp.optimal.avg_hops);
  cmp.improvement_vs_none_pct =
      ImprovementPct(cmp.none.avg_hops, cmp.optimal.avg_hops);
  return cmp;
}

}  // namespace peercache::experiments
