#include "experiments/json_report.h"

#include <cstdio>

#include "common/profiler.h"
#include "experiments/cost_audit.h"

namespace peercache::experiments {

namespace {

void WriteOnlineStatsJson(JsonWriter& w, const OnlineStats& s) {
  w.BeginObject();
  w.Key("count");
  w.UInt(s.count());
  w.Key("mean");
  w.Double(s.mean());
  w.Key("stddev");
  w.Double(s.stddev());
  w.Key("min");
  w.Double(s.min());
  w.Key("max");
  w.Double(s.max());
  w.EndObject();
}

void WriteHistogramJson(JsonWriter& w, const Histogram& h) {
  w.BeginObject();
  w.Key("count");
  w.UInt(h.count());
  w.Key("mean");
  w.Double(h.Mean());
  // Nearest-rank percentiles: the interpolated Histogram::Percentile would
  // change every committed hop_histogram byte-for-byte.
  w.Key("p50");
  w.Int(h.PercentileRank(0.50));
  w.Key("p95");
  w.Int(h.PercentileRank(0.95));
  w.Key("p99");
  w.Int(h.PercentileRank(0.99));
  w.Key("overflow");
  w.UInt(h.overflow());
  // Per-bucket counts up to the last nonzero bucket: enough to rebuild the
  // full distribution without padding every document to max_value entries.
  int last = -1;
  for (int v = 0; v <= h.max_value(); ++v) {
    if (h.BucketCount(v) > 0) last = v;
  }
  w.Key("buckets");
  w.BeginArray();
  for (int v = 0; v <= last; ++v) w.UInt(h.BucketCount(v));
  w.EndArray();
  w.EndObject();
}

}  // namespace

void WriteConfigJson(JsonWriter& w, const ExperimentConfig& config) {
  w.BeginObject();
  w.Key("bits");
  w.Int(config.bits);
  w.Key("n_nodes");
  w.Int(config.n_nodes);
  w.Key("k");
  w.Int(config.k);
  w.Key("alpha");
  w.Double(config.alpha);
  w.Key("n_items");
  w.UInt(config.n_items);
  w.Key("n_popularity_lists");
  w.Int(config.n_popularity_lists);
  w.Key("seed");
  w.UInt(config.seed);
  w.Key("warmup_queries_per_node");
  w.Int(config.warmup_queries_per_node);
  w.Key("measure_queries_per_node");
  w.Int(config.measure_queries_per_node);
  w.Key("frequency_capacity");
  w.UInt(config.frequency_capacity);
  w.Key("successor_list_size");
  w.Int(config.successor_list_size);
  w.Key("leaf_set_half");
  w.Int(config.leaf_set_half);
  w.Key("threads");
  w.Int(config.threads);
  w.Key("trace_sample_period");
  w.Int(config.trace_sample_period);
  w.Key("freq_mode");
  w.String(FreqModeName(config.freq_mode));
  w.Key("maintenance_audit_period");
  w.Int(config.maintenance_audit_period);
  // Fault-injection knobs appear only when injection is enabled: fault-free
  // documents must stay byte-identical to the committed figures.
  if (config.faults.enabled()) {
    w.Key("fault_drop");
    w.Double(config.faults.drop_prob);
    w.Key("fault_fail");
    w.Double(config.faults.fail_prob);
    w.Key("fault_stale");
    w.Double(config.faults.stale_prob);
    w.Key("fault_seed");
    w.UInt(config.faults.seed);
    w.Key("fault_max_retries");
    w.Int(config.faults.max_retries);
    w.Key("fault_retry");
    w.Bool(config.faults.retry);
  }
  // Sketch-mode knobs appear only when the bounded-memory frequency mode is
  // on: exact-mode documents must stay byte-identical to the committed
  // figures.
  if (config.freq_sketch.enabled()) {
    w.Key("freq_sketch_top_capacity");
    w.UInt(config.freq_sketch.top_capacity);
    w.Key("freq_sketch_cm_width");
    w.UInt(config.freq_sketch.cm_width);
    w.Key("freq_sketch_cm_depth");
    w.Int(config.freq_sketch.cm_depth);
    w.Key("freq_sketch_seed");
    w.UInt(config.freq_sketch.seed);
  }
  // Popularity-drift knobs follow the same rule: absent for the stationary
  // workload.
  if (config.drift.enabled()) {
    w.Key("drift_kind");
    w.String(workload::DriftKindName(config.drift.kind));
    w.Key("drift_period");
    w.Int(config.drift.period);
    w.Key("drift_shuffle_fraction");
    w.Double(config.drift.shuffle_fraction);
    w.Key("drift_flash_boost");
    w.Double(config.drift.flash_boost);
    w.Key("drift_max_epochs");
    w.Int(config.drift.max_epochs);
    w.Key("drift_seed");
    w.UInt(config.drift.seed);
  }
  // Heterogeneous-budget knobs: absent for uniform per-node budgets.
  if (config.budget_gamma > 0.0) {
    w.Key("budget_gamma");
    w.Double(config.budget_gamma);
    w.Key("budget_seed");
    w.UInt(config.budget_seed);
  }
  // Latency-model knobs follow the same rule: absent unless the model is
  // enabled, so latency-off documents keep their historical shape.
  if (config.latency.enabled()) {
    w.Key("latency_base_rtt_ms");
    w.Double(config.latency.base_rtt_ms);
    w.Key("latency_coord_scale_ms");
    w.Double(config.latency.coord_scale_ms);
    w.Key("latency_jitter_ms");
    w.Double(config.latency.jitter_ms);
    w.Key("latency_timeout_ms");
    w.Double(config.latency.timeout_ms);
    w.Key("latency_seed");
    w.UInt(config.latency.seed);
    if (!config.latency_matrix.empty()) {
      w.Key("latency_matrix_nodes");
      w.UInt(config.latency_matrix.ids.size());
    }
    if (config.qos_rtt_threshold_ms > 0.0) {
      w.Key("qos_rtt_threshold_ms");
      w.Double(config.qos_rtt_threshold_ms);
      w.Key("qos_delay_bound");
      w.Int(config.qos_delay_bound);
    }
  }
  w.EndObject();
}

void WriteLatencyJson(JsonWriter& w, const LogHistogram& h) {
  w.BeginObject();
  w.Key("count");
  w.UInt(h.count());
  w.Key("mean_ms");
  w.Double(h.Mean());
  w.Key("min_ms");
  w.Double(h.min());
  w.Key("max_ms");
  w.Double(h.max());
  w.Key("p50_ms");
  w.Double(h.Percentile(0.50));
  w.Key("p90_ms");
  w.Double(h.Percentile(0.90));
  w.Key("p99_ms");
  w.Double(h.Percentile(0.99));
  w.Key("p999_ms");
  w.Double(h.Percentile(0.999));
  w.EndObject();
}

void WriteResilienceJson(JsonWriter& w, const ResilienceStats& r) {
  w.BeginObject();
  w.Key("lookups");
  w.UInt(r.lookups);
  w.Key("delivered");
  w.UInt(r.delivered);
  w.Key("success_rate");
  w.Double(r.SuccessRate());
  w.Key("retried_lookups");
  w.UInt(r.retried_lookups);
  w.Key("retries");
  w.UInt(r.retries);
  w.Key("dropped_forwards");
  w.UInt(r.dropped_forwards);
  w.Key("failstop_skips");
  w.UInt(r.failstop_skips);
  w.Key("stale_forwards");
  w.UInt(r.stale_forwards);
  w.Key("budget_exhausted");
  w.UInt(r.budget_exhausted);
  w.Key("dead_entry_evictions");
  w.UInt(r.dead_entry_evictions);
  w.EndObject();
}

void WriteRunResultJson(JsonWriter& w, const RunResult& result) {
  w.BeginObject();
  w.Key("avg_hops");
  w.Double(result.avg_hops);
  w.Key("success_rate");
  w.Double(result.success_rate);
  w.Key("queries");
  w.UInt(result.queries);
  w.Key("phase_seconds");
  w.BeginObject();
  w.Key("warmup");
  w.Double(result.warmup_seconds);
  w.Key("selection");
  w.Double(result.selection_seconds);
  w.Key("measure");
  w.Double(result.measure_seconds);
  w.EndObject();
  w.Key("hop_histogram");
  WriteHistogramJson(w, result.hop_histogram);
  w.Key("aux_hit_rate");
  w.Double(result.aux_hit_rate);
  w.Key("aux_route_hops");
  w.UInt(result.aux_route_hops);
  w.Key("total_route_hops");
  w.UInt(result.total_route_hops);
  w.Key("cost_audit");
  {
    const CostAuditSummary audit = SummarizeCostAudit(result.cost_audit);
    w.BeginObject();
    w.Key("nodes");
    w.UInt(audit.nodes);
    w.Key("residual");
    WriteOnlineStatsJson(w, audit.residual);
    w.Key("abs_residual");
    WriteOnlineStatsJson(w, audit.abs_residual);
    w.EndObject();
  }
  w.Key("sampled_traces");
  w.UInt(result.traces.size());
  // Incremental churn-maintenance telemetry (FreqMode::kObserved runs
  // only; empty otherwise). Per-round "seconds" is the single wall-clock
  // field — determinism comparisons must strip it, like phase_seconds.
  w.Key("maintenance");
  {
    MaintenanceRoundStats total;
    for (const MaintenanceRoundStats& r : result.maintenance_rounds) {
      total.peer_joins += r.peer_joins;
      total.peer_leaves += r.peer_leaves;
      total.freq_deltas += r.freq_deltas;
      total.core_deltas += r.core_deltas;
      total.audited_nodes += r.audited_nodes;
      total.seconds += r.seconds;
    }
    w.BeginObject();
    w.Key("rounds");
    w.UInt(result.maintenance_rounds.size());
    w.Key("peer_joins");
    w.UInt(total.peer_joins);
    w.Key("peer_leaves");
    w.UInt(total.peer_leaves);
    w.Key("freq_deltas");
    w.UInt(total.freq_deltas);
    w.Key("core_deltas");
    w.UInt(total.core_deltas);
    w.Key("audited_nodes");
    w.UInt(total.audited_nodes);
    w.Key("seconds");
    w.Double(total.seconds);
    w.Key("per_round");
    w.BeginArray();
    for (const MaintenanceRoundStats& r : result.maintenance_rounds) {
      w.BeginObject();
      w.Key("sim_time_s");
      w.Double(r.sim_time_s);
      w.Key("live_nodes");
      w.UInt(r.live_nodes);
      w.Key("bootstrapped");
      w.UInt(r.bootstrapped);
      w.Key("peer_joins");
      w.UInt(r.peer_joins);
      w.Key("peer_leaves");
      w.UInt(r.peer_leaves);
      w.Key("freq_deltas");
      w.UInt(r.freq_deltas);
      w.Key("core_deltas");
      w.UInt(r.core_deltas);
      w.Key("audited_nodes");
      w.UInt(r.audited_nodes);
      w.Key("seconds");
      w.Double(r.seconds);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  // Resilience telemetry (docs/RESILIENCE.md), present only for runs that
  // routed under an enabled fault plan — fault-free documents carry no
  // "resilience" key and replay byte-identical to the committed figures.
  if (result.fault_injection) {
    w.Key("resilience");
    WriteResilienceJson(w, result.resilience);
  }
  // Latency percentiles appear only when the run routed under an enabled
  // latency model, mirroring the resilience rule above.
  if (result.latency_enabled) {
    w.Key("latency");
    WriteLatencyJson(w, result.latency_histogram);
  }
  // Sketch-mode frequency summary footprint (docs/OBSERVABILITY.md),
  // present only for runs whose frequency tables ran in sketch mode —
  // exact-mode documents carry no "freq_sketch" key and replay
  // byte-identical to the committed figures. All figures are modeled bytes
  // accumulated serially in node-id order: thread-count and platform
  // invariant.
  if (result.freq_sketch_enabled) {
    w.Key("freq_sketch");
    w.BeginObject();
    w.Key("top_capacity");
    w.UInt(result.freq_sketch_params.top_capacity);
    w.Key("cm_width");
    w.UInt(result.freq_sketch_params.cm_width);
    w.Key("cm_depth");
    w.Int(result.freq_sketch_params.cm_depth);
    w.Key("summary_bytes_per_node");
    w.Double(result.freq_summary_bytes_mean);
    w.Key("tracked_per_node");
    w.Double(result.freq_tracked_mean);
    w.EndObject();
  }
  // Memory footprint (config.report_memory only — docs/OBSERVABILITY.md).
  // Arena mutations are serial, so these bytes are thread-count invariant;
  // bytes_per_node folds in hash-index overhead, which varies across
  // standard libraries, so cross-toolchain comparisons should prefer
  // table_bytes/arena_bytes.
  if (result.memory_enabled) {
    w.Key("memory");
    w.BeginObject();
    w.Key("bytes_per_node");
    w.Double(result.memory.bytes_per_node);
    w.Key("table_bytes");
    w.UInt(result.memory.table_bytes);
    w.Key("arena_bytes");
    w.UInt(result.memory.arena_bytes);
    w.EndObject();
  }
  w.Key("metrics");
  result.metrics.WriteJson(w);
  w.EndObject();
}

void WriteComparisonJson(JsonWriter& w, const Comparison& cmp) {
  w.BeginObject();
  w.Key("runs");
  w.BeginObject();
  w.Key("none");
  WriteRunResultJson(w, cmp.none);
  w.Key("oblivious");
  WriteRunResultJson(w, cmp.oblivious);
  w.Key("optimal");
  WriteRunResultJson(w, cmp.optimal);
  w.EndObject();
  w.Key("improvement_pct");
  w.Double(cmp.improvement_pct);
  w.Key("improvement_vs_none_pct");
  w.Double(cmp.improvement_vs_none_pct);
  w.EndObject();
}

std::string ComparisonDocument(const std::string& generator,
                               const std::string& system,
                               const std::string& mode,
                               const ExperimentConfig& config,
                               const Comparison& cmp) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema_version");
  w.Int(kTelemetrySchemaVersion);
  w.Key("generator");
  w.String(generator);
  w.Key("kind");
  w.String("comparison");
  w.Key("system");
  w.String(system);
  w.Key("mode");
  w.String(mode);
  w.Key("config");
  WriteConfigJson(w, config);
  w.Key("comparison");
  WriteComparisonJson(w, cmp);
  // Phase-profiler report, present only when profiling was switched on for
  // this process (--profile): default documents are unaffected.
  if (Profiler::Global().enabled()) {
    w.Key("profile");
    Profiler::Global().WriteJson(w);
  }
  w.EndObject();
  return w.TakeString();
}

std::string TraceJsonLine(const std::string& system, const char* policy,
                          const RouteTrace& trace) {
  JsonWriter w;
  w.BeginObject();
  w.Key("system");
  w.String(system);
  w.Key("policy");
  w.String(policy);
  w.Key("origin");
  w.UInt(trace.origin);
  w.Key("key");
  w.UInt(trace.key);
  w.Key("destination");
  w.UInt(trace.destination);
  w.Key("success");
  w.Bool(trace.success);
  w.Key("hops");
  w.Int(trace.hops);
  // Modeled end-to-end latency, emitted only when a latency model ran —
  // latency-off trace lines keep their historical shape exactly.
  if (trace.latency_ms > 0.0) {
    w.Key("latency_ms");
    w.Double(trace.latency_ms);
  }
  w.Key("path");
  w.BeginArray();
  for (const HopRecord& hop : trace.path) {
    w.BeginObject();
    w.Key("from");
    w.UInt(hop.from);
    w.Key("to");
    w.UInt(hop.to);
    w.Key("entry");
    w.String(HopEntryKindName(hop.kind));
    w.Key("remaining");
    w.UInt(hop.remaining);
    // Fault tags are emitted only when set: fault-free trace lines keep
    // their historical shape exactly.
    if (hop.dropped) {
      w.Key("dropped");
      w.Bool(true);
    }
    if (hop.retried) {
      w.Key("retried");
      w.Bool(true);
    }
    if (hop.latency_ms > 0.0) {
      w.Key("latency_ms");
      w.Double(hop.latency_ms);
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

Status WriteStringToFile(const std::string& path,
                         const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Unavailable("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool flushed = std::fclose(f) == 0;
  if (written != content.size() || !flushed) {
    return Status::Unavailable("short write to " + path);
  }
  return Status::Ok();
}

}  // namespace peercache::experiments
