#include "experiments/generic_experiment.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <iterator>
#include <limits>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "auxsel/selection_types.h"
#include "common/profiler.h"
#include "common/random.h"
#include "common/route_result.h"
#include "common/thread_pool.h"
#include "experiments/parallel_engine.h"
#include "sim/event_queue.h"
#include "workload/workload.h"

namespace peercache::experiments {

namespace {

using auxsel::SelectionInput;
using internal::ObliviousPool;
using internal::PhaseTimer;
using internal::PoolWithoutSelf;

/// True for the selectors that optimize over the node's observed
/// frequencies (kQos is kOptimal plus RTT-derived delay bounds).
bool FrequencyAware(SelectorKind selector) {
  return selector == SelectorKind::kOptimal || selector == SelectorKind::kQos;
}

/// Builds the SelectionInput for one node and computes the chosen
/// auxiliaries into `chosen_out` (the caller installs them serially after
/// the parallel round — SetAuxiliaries writes the shared table arena, which
/// has a single-writer contract). The frequency-aware policies optimize
/// over the node's observed frequencies; the oblivious policy draws from
/// `peer_pool`, the shared snapshot of the full live membership built once
/// per selection round (it needs no query history, matching the paper's
/// baseline). Runs concurrently for distinct nodes: it reads the overlay,
/// reads its own node's frequency table, and writes only its own slots.
///
/// SelectorKind::kQos additionally consults `latency`: observed peers whose
/// base RTT from this node exceeds `config.qos_rtt_threshold_ms` get
/// `config.qos_delay_bound` as their delay bound, and the policy's QoS
/// selector must place pointers meeting them. Infeasible bounds fall back
/// to the unconstrained optimal selection for that node.
///
/// For frequency-aware policies, `predicted_hops` (if non-null) receives
/// the selector's Eq. 1 cost normalized by the node's total observed
/// frequency — the cost model's promised frequency-weighted route length,
/// audited against measured hops (experiments/cost_audit.h). NaN when no
/// prediction exists (non-frequency-aware policies, or no observed peers).
/// `k_budget` is this node's auxiliary budget — config.k everywhere except
/// the heterogeneous-budget sweep (config.budget_gamma > 0), where
/// ComputeAuxiliaryBudgets redistributes the global budget across nodes.
template <typename Policy>
Status InstallAuxiliaries(typename Policy::Network& net, uint64_t node_id,
                          SelectorKind selector, const ExperimentConfig& config,
                          const latency::LatencyModel* latency,
                          Rng& selection_rng,
                          const std::vector<auxsel::PeerFreq>& peer_pool,
                          int k_budget, std::vector<uint64_t>& chosen_out,
                          double* predicted_hops = nullptr) {
  chosen_out.clear();
  if (predicted_hops != nullptr) {
    *predicted_hops = std::numeric_limits<double>::quiet_NaN();
  }
  if (selector == SelectorKind::kNone) {
    return Status::Ok();
  }
  auto* node = net.GetNode(node_id);
  if (node == nullptr) return Status::NotFound("node");

  SelectionInput input;
  input.bits = net.params().bits;
  input.self_id = node_id;
  input.k = k_budget;
  input.core_ids = net.CoreNeighborIds(node_id);

  Result<auxsel::Selection> sel = [&]() -> Result<auxsel::Selection> {
    if (FrequencyAware(selector)) {
      input.peers = node->frequencies.Snapshot(node_id);
      if (selector == SelectorKind::kQos && latency != nullptr &&
          config.qos_rtt_threshold_ms > 0.0) {
        for (auxsel::PeerFreq& p : input.peers) {
          if (latency->BaseRttMs(node_id, p.id) > config.qos_rtt_threshold_ms) {
            p.delay_bound = config.qos_delay_bound;
          }
        }
        Result<auxsel::Selection> qos = Policy::SelectQos(input);
        if (qos.ok() || qos.status().code() != StatusCode::kInfeasible) {
          return qos;
        }
        // Bounds unmeetable with k pointers at this node: route the
        // latency-heavy peers like everyone else rather than failing the
        // whole run.
        for (auxsel::PeerFreq& p : input.peers) p.delay_bound = -1;
      }
      return Policy::SelectOptimal(input);
    }
    input.peers = PoolWithoutSelf(peer_pool, node_id);
    return Policy::SelectOblivious(input, selection_rng);
  }();
  if (!sel.ok()) return sel.status();

  if (predicted_hops != nullptr && FrequencyAware(selector)) {
    double total_freq = 0.0;
    for (const auxsel::PeerFreq& p : input.peers) total_freq += p.frequency;
    if (total_freq > 0.0) *predicted_hops = sel->cost / total_freq;
  }

  // A node whose observed peer set is smaller than k (common early under
  // churn, where few queries have been seen between recomputations) fills
  // the remaining budget with oblivious picks: both policies then install
  // exactly k pointers, which is what the paper's comparison assumes.
  if (FrequencyAware(selector) &&
      static_cast<int>(sel->chosen.size()) < input.k) {
    SelectionInput pad = input;
    pad.peers = PoolWithoutSelf(peer_pool, node_id);
    pad.core_ids.insert(pad.core_ids.end(), sel->chosen.begin(),
                        sel->chosen.end());
    pad.k = input.k - static_cast<int>(sel->chosen.size());
    auto extra = Policy::SelectOblivious(pad, selection_rng);
    if (extra.ok()) {
      sel->chosen.insert(sel->chosen.end(), extra->chosen.begin(),
                         extra->chosen.end());
    }
  }
  chosen_out = std::move(sel->chosen);
  return Status::Ok();
}

/// One full-rebuild selection round over `ids`: builds the shared
/// frequency-oblivious pool once, sizes the per-node prediction slots,
/// computes every node's selection in parallel into index-addressed slots,
/// then installs them serially in node order (the table arena's
/// single-writer contract — and serial installs make arena layout, hence
/// memory telemetry, independent of thread count). Shared by the stable
/// path's single selection pass and the legacy (FreqMode::kPool) churn
/// recompute rounds — they were the same code copied twice before this
/// helper existed.
template <typename Policy>
Status InstallRound(ThreadPool& pool, typename Policy::Network& net,
                    const std::vector<uint64_t>& ids, SelectorKind selector,
                    const ExperimentConfig& config,
                    const latency::LatencyModel* latency, uint64_t round_seed,
                    std::vector<double>& predicted) {
  const std::vector<auxsel::PeerFreq> peer_pool = ObliviousPool(ids);
  const std::vector<int> budgets = ComputeAuxiliaryBudgets(config, ids);
  predicted.assign(ids.size(), std::numeric_limits<double>::quiet_NaN());
  std::vector<std::vector<uint64_t>> chosen(ids.size());
  if (Status s = internal::ParallelInstall(
          pool, ids, round_seed, [&](size_t i, uint64_t id, Rng& rng) {
            return InstallAuxiliaries<Policy>(net, id, selector, config,
                                              latency, rng, peer_pool,
                                              budgets[i], chosen[i],
                                              &predicted[i]);
          });
      !s.ok()) {
    return s;
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    if (Status s = net.SetAuxiliaries(ids[i], std::move(chosen[i])); !s.ok()) {
      return s;
    }
  }
  return Status::Ok();
}

/// Builds the run's latency model from the experiment config (synthetic
/// coordinates, optionally overridden by a loaded ping matrix). Callers
/// pass the model only when enabled so disabled configs take the historical
/// untimed routing path bit-for-bit, mirroring the FaultPlan convention.
latency::LatencyModel MakeLatencyModel(const ExperimentConfig& config) {
  if (!config.latency_matrix.empty()) {
    return latency::LatencyModel(config.latency, config.latency_matrix);
  }
  return latency::LatencyModel(config.latency);
}

/// Persistent per-node maintenance state of the FreqMode::kObserved churn
/// path: one Policy::Maintainer per node ever seen live, surviving across
/// recompute rounds, plus the global departure log nodes catch up on.
/// Entries are created in a serial pre-pass before each round's parallel
/// loop, which only looks them up — rehashing can never run under the
/// worker threads, so entry references stay valid.
template <typename Policy>
struct MaintenanceState {
  struct Entry {
    explicit Entry(typename Policy::Maintainer m)
        : maintainer(std::move(m)) {}
    typename Policy::Maintainer maintainer;
    /// First departure batch this node has not applied yet. A node that
    /// spends several rounds dead replays the missed batches when it next
    /// reselects instead of carrying ghost frequencies forever.
    size_t next_batch = 0;
    /// Set until the node's first reselection, which seeds the maintainer
    /// from a full frequency-table snapshot instead of replaying deltas.
    bool fresh = true;
  };
  std::unordered_map<uint64_t, Entry> entries;
  /// One sorted batch per recompute round: who left the overlay since the
  /// previous round (difference of consecutive live sets). A peer that
  /// leaves and rejoins within one interval produces no event — its
  /// retained frequency history is still valid.
  std::vector<std::vector<uint64_t>> departures;
  std::vector<uint64_t> prev_live;  ///< Sorted live set at the last round.
};

/// Per-node delta tallies of one maintenance round, written into an
/// index-addressed slot by the parallel loop and summed serially after.
struct NodeDeltaCounts {
  bool bootstrapped = false;
  uint64_t peer_joins = 0;
  uint64_t peer_leaves = 0;
  uint64_t freq_deltas = 0;
  uint64_t core_deltas = 0;
  bool audited = false;
};

/// Applies one recompute round's deltas to one node's persistent
/// maintainer and computes the reselected auxiliaries into `chosen_out`
/// (installed serially by the caller — arena single-writer contract). Safe
/// to run concurrently for distinct nodes: it reads the overlay, mutates
/// only its own node's frequency table and maintainer entry, and writes
/// its tallies into caller-provided slots.
template <typename Policy>
Status MaintainNode(typename Policy::Network& net,
                    MaintenanceState<Policy>& maint, uint64_t node_id,
                    int k, bool audit_round,
                    const std::vector<auxsel::PeerFreq>& peer_pool, Rng& rng,
                    std::vector<uint64_t>& chosen_out, double* predicted_hops,
                    NodeDeltaCounts& counts) {
  chosen_out.clear();
  *predicted_hops = std::numeric_limits<double>::quiet_NaN();
  auto* node = net.GetNode(node_id);
  if (node == nullptr) return Status::NotFound("node");
  auto it = maint.entries.find(node_id);
  if (it == maint.entries.end()) {
    return Status::Internal("no maintainer for live node");
  }
  typename MaintenanceState<Policy>::Entry& entry = it->second;
  typename Policy::Maintainer& m = entry.maintainer;

  if (entry.fresh) {
    // Bootstrap: seed the maintainer from everything observed so far,
    // dropping peers that are already dead (and Forgetting them so the
    // table stops counting ghosts). The drain below would replay the same
    // weights, so it is discarded.
    std::vector<auxsel::PeerFreq> snap = node->frequencies.Snapshot(node_id);
    std::sort(snap.begin(), snap.end(),
              [](const auxsel::PeerFreq& a, const auxsel::PeerFreq& b) {
                return a.id < b.id;
              });
    for (const auxsel::PeerFreq& p : snap) {
      if (net.IsAlive(p.id)) {
        if (Status s = m.OnPeerJoin(p.id, p.frequency); !s.ok()) return s;
        ++counts.peer_joins;
      } else {
        (void)node->frequencies.Forget(p.id);
      }
    }
    (void)node->frequencies.DrainDirty();
    entry.fresh = false;
    counts.bootstrapped = true;
  } else {
    // 1. Departures since this node's last reselection (possibly several
    //    rounds ago, if it was dead in between). Peers alive again by now
    //    are skipped wholesale: their observed history is still valid.
    for (; entry.next_batch < maint.departures.size(); ++entry.next_batch) {
      for (uint64_t gone : maint.departures[entry.next_batch]) {
        if (gone == node_id || net.IsAlive(gone)) continue;
        if (Status s = m.OnPeerLeave(gone); !s.ok()) return s;
        if (!node->frequencies.Forget(gone)) {
          // Bounded table: Forget only zeroed the Space-Saving slot. Push
          // the zero weight explicitly so maintainer and table agree.
          if (Status s = m.OnFrequencyDelta(
                  gone, node->frequencies.ObservedWeight(gone));
              !s.ok()) {
            return s;
          }
        }
        ++counts.peer_leaves;
      }
    }
    // 2. Frequency deltas observed since the last visit. Dead dirty peers
    //    were either just forgotten (weight now zero) or died after their
    //    last record without a departure event covering them — in both
    //    cases their weight must not re-enter the maintainer.
    for (uint64_t dirty_id : node->frequencies.DrainDirty()) {
      if (dirty_id == node_id || !net.IsAlive(dirty_id)) continue;
      if (Status s = m.OnFrequencyDelta(
              dirty_id, node->frequencies.ObservedWeight(dirty_id));
          !s.ok()) {
        return s;
      }
      ++counts.freq_deltas;
    }
  }
  entry.next_batch = maint.departures.size();

  // 3. Core-neighbor set as of the last stabilization: the DHT's tables,
  //    not the selector, decide core membership.
  Result<size_t> changed = m.SetCores(net.CoreNeighborIds(node_id));
  if (!changed.ok()) return changed.status();
  counts.core_deltas += changed.value();

  // 4. Reselect from persistent state (cached when nothing changed).
  Result<auxsel::Selection> sel = m.Reselect();
  if (!sel.ok()) return sel.status();
  const double total_freq = m.total_frequency();
  if (total_freq > 0.0) *predicted_hops = sel->cost / total_freq;

  // 5. Periodic audit: the incremental selection must be cost-equal to a
  //    from-scratch run of the one-shot selector on the same input.
  if (audit_round) {
    Result<auxsel::Selection> fresh = Policy::SelectOptimal(m.FreshInput());
    if (!fresh.ok()) return fresh.status();
    const double tol = 1e-7 * (1.0 + std::abs(fresh->cost));
    if (std::abs(sel->cost - fresh->cost) > tol) {
      return Status::Internal(
          "maintenance audit failed at node " + std::to_string(node_id) +
          ": incremental cost " + std::to_string(sel->cost) +
          " != fresh cost " + std::to_string(fresh->cost));
    }
    counts.audited = true;
  }

  // 6. Pad to k with oblivious picks, exactly like the one-shot path: both
  //    policies install k pointers, which the paper's comparison assumes.
  chosen_out = sel->chosen;
  if (static_cast<int>(chosen_out.size()) < k) {
    SelectionInput pad;
    pad.bits = net.params().bits;
    pad.self_id = node_id;
    pad.k = k - static_cast<int>(chosen_out.size());
    pad.core_ids = net.CoreNeighborIds(node_id);
    pad.core_ids.insert(pad.core_ids.end(), chosen_out.begin(),
                        chosen_out.end());
    pad.peers = PoolWithoutSelf(peer_pool, node_id);
    auto extra = Policy::SelectOblivious(pad, rng);
    if (extra.ok()) {
      chosen_out.insert(chosen_out.end(), extra->chosen.begin(),
                        extra->chosen.end());
    }
  }
  return Status::Ok();
}

/// One incremental churn maintenance round: logs the membership delta,
/// creates maintainers for first-seen nodes (serially), then applies each
/// live node's deltas and reselects in parallel. Appends the round's
/// tallies to `result.maintenance_rounds`.
template <typename Policy>
Status MaintainRound(ThreadPool& pool, typename Policy::Network& net,
                     MaintenanceState<Policy>& maint,
                     const std::vector<uint64_t>& live,
                     const ExperimentConfig& config, uint64_t round_seed,
                     uint64_t round_index, double sim_time_s,
                     std::vector<double>& predicted, RunResult& result) {
  PhaseTimer round_timer;

  std::vector<uint64_t> sorted_live = live;
  std::sort(sorted_live.begin(), sorted_live.end());
  std::vector<uint64_t> departed;
  std::set_difference(maint.prev_live.begin(), maint.prev_live.end(),
                      sorted_live.begin(), sorted_live.end(),
                      std::back_inserter(departed));
  maint.departures.push_back(std::move(departed));
  maint.prev_live = std::move(sorted_live);

  for (uint64_t id : live) {
    auto [it, inserted] = maint.entries.try_emplace(
        id, typename MaintenanceState<Policy>::Entry(
                Policy::MakeMaintainer(config, id)));
    if (inserted) it->second.next_batch = maint.departures.size();
  }

  const bool audit_round =
      config.maintenance_audit_period > 0 &&
      round_index % static_cast<uint64_t>(config.maintenance_audit_period) ==
          0;
  const std::vector<auxsel::PeerFreq> peer_pool = ObliviousPool(live);
  predicted.assign(live.size(), std::numeric_limits<double>::quiet_NaN());
  std::vector<NodeDeltaCounts> counts(live.size());
  std::vector<std::vector<uint64_t>> chosen(live.size());
  if (Status s = internal::ParallelInstall(
          pool, live, round_seed,
          [&](size_t i, uint64_t id, Rng& rng) {
            return MaintainNode<Policy>(net, maint, id, config.k, audit_round,
                                        peer_pool, rng, chosen[i],
                                        &predicted[i], counts[i]);
          });
      !s.ok()) {
    return s;
  }
  // Serial install in node order: arena writes have a single-writer
  // contract, and node-order installs keep the arena layout — hence the
  // memory telemetry — independent of thread count.
  for (size_t i = 0; i < live.size(); ++i) {
    if (Status s = net.SetAuxiliaries(live[i], std::move(chosen[i]));
        !s.ok()) {
      return s;
    }
  }

  MaintenanceRoundStats stats;
  stats.sim_time_s = sim_time_s;
  stats.live_nodes = live.size();
  for (const NodeDeltaCounts& c : counts) {
    stats.bootstrapped += c.bootstrapped ? 1 : 0;
    stats.peer_joins += c.peer_joins;
    stats.peer_leaves += c.peer_leaves;
    stats.freq_deltas += c.freq_deltas;
    stats.core_deltas += c.core_deltas;
    stats.audited_nodes += c.audited ? 1 : 0;
  }
  stats.seconds = round_timer.Seconds();
  result.maintenance_rounds.push_back(stats);
  return Status::Ok();
}

/// Folds the per-round maintenance tallies into the run's metric
/// namespace: `maintain.*` counters are deterministic; the wall clock
/// lands under the timers section, which determinism comparisons exclude.
void RecordMaintenanceMetrics(RunResult& result) {
  if (result.maintenance_rounds.empty()) return;
  MaintenanceRoundStats total;
  for (const MaintenanceRoundStats& r : result.maintenance_rounds) {
    total.bootstrapped += r.bootstrapped;
    total.peer_joins += r.peer_joins;
    total.peer_leaves += r.peer_leaves;
    total.freq_deltas += r.freq_deltas;
    total.core_deltas += r.core_deltas;
    total.audited_nodes += r.audited_nodes;
    total.seconds += r.seconds;
  }
  result.metrics.Count("maintain.rounds", result.maintenance_rounds.size());
  result.metrics.Count("maintain.bootstrapped", total.bootstrapped);
  result.metrics.Count("maintain.peer_joins", total.peer_joins);
  result.metrics.Count("maintain.peer_leaves", total.peer_leaves);
  result.metrics.Count("maintain.freq_deltas", total.freq_deltas);
  result.metrics.Count("maintain.core_deltas", total.core_deltas);
  result.metrics.Count("maintain.audited_nodes", total.audited_nodes);
  result.metrics.AddTimerSeconds("maintain.seconds", total.seconds);
}

Comparison MakeComparison(RunResult none, RunResult oblivious,
                          RunResult optimal) {
  Comparison cmp;
  cmp.none = std::move(none);
  cmp.oblivious = std::move(oblivious);
  cmp.optimal = std::move(optimal);
  cmp.improvement_pct =
      ImprovementPct(cmp.oblivious.avg_hops, cmp.optimal.avg_hops);
  cmp.improvement_vs_none_pct =
      ImprovementPct(cmp.none.avg_hops, cmp.optimal.avg_hops);
  return cmp;
}

}  // namespace

std::vector<uint64_t> SampleNodeIds(const ExperimentConfig& config,
                                    uint64_t ids_seed) {
  Rng ids_rng(ids_seed);
  const uint64_t space =
      config.bits == 64 ? ~uint64_t{0} : (uint64_t{1} << config.bits);
  return ids_rng.SampleDistinct(space, static_cast<size_t>(config.n_nodes));
}

template <typename Policy>
Result<RunResult> RunStable(const ExperimentConfig& config,
                            SelectorKind selector) {
  const SeedPlan seeds = Policy::MakeSeedPlan(config.seed);
  typename Policy::Network net = Policy::MakeNetwork(config, seeds);

  const std::vector<uint64_t> node_ids = SampleNodeIds(config, seeds.ids);
  {
    ScopedProfile span("stable.build");
    // Bulk join, then one global stabilization: StabilizeAll rebuilds
    // every table from final membership, so the finished state is
    // identical to the historical AddNode-then-StabilizeAll loop without
    // its per-join table builds.
    if (Status s = net.BulkAdd(node_ids); !s.ok()) return s;
    net.StabilizeAll();  // perfect routing state before the experiment
  }

  WorkloadBundle workload(config, seeds, node_ids);
  ThreadPool pool(config.threads);
  RunResult result;

  // Warmup: every node observes which peer answers each of its queries.
  // In the stable overlay the responsible node is known without routing.
  // With popularity drift enabled, warmup and measurement share one
  // monotone per-node query index so the drift timeline spans both phases.
  const workload::DriftModel* drift = workload.drift();
  PhaseTimer warmup_timer;
  {
    ScopedProfile span("stable.warmup");
    if (Status s = internal::ParallelWarmup(pool, net, node_ids,
                                            workload.queries(), seeds.warmup,
                                            config.warmup_queries_per_node,
                                            drift, 0);
        !s.ok()) {
      return s;
    }
  }
  result.warmup_seconds = warmup_timer.Seconds();

  // Auxiliary selection, one independent RNG stream per node. Each task
  // also records the selector's Eq. 1 prediction into its own slot for the
  // cost-model audit. The latency model (if enabled) is built before
  // selection because the QoS selector derives delay bounds from it.
  const latency::LatencyModel lmodel = MakeLatencyModel(config);
  const latency::LatencyModel* latency =
      lmodel.enabled() ? &lmodel : nullptr;
  PhaseTimer selection_timer;
  std::vector<double> predicted;
  {
    ScopedProfile span("stable.selection");
    if (Status s = InstallRound<Policy>(pool, net, node_ids, selector, config,
                                        latency, seeds.selection, predicted);
        !s.ok()) {
      return s;
    }
  }
  result.selection_seconds = selection_timer.Seconds();
  internal::CollectAuxiliaries(net, node_ids, result);

  // Measurement, optionally under fault injection (config.faults) and an
  // enabled latency model. Both pointers are null when their feature is off
  // so the historical fault-free untimed routing path runs unchanged.
  const fault::FaultPlan plan(config.faults);
  PhaseTimer measure_timer;
  {
    ScopedProfile span("stable.measure");
    if (Status s = internal::ParallelMeasure(
            pool, net, node_ids, workload.queries(), seeds.measure,
            config.measure_queries_per_node, config.trace_sample_period,
            predicted, result, plan.enabled() ? &plan : nullptr, latency,
            drift, config.warmup_queries_per_node);
        !s.ok()) {
      return s;
    }
  }
  result.measure_seconds = measure_timer.Seconds();
  internal::RecordPhaseTimers(result);
  internal::RecordResilienceMetrics(result);
  internal::RecordFrequencySummary(net, node_ids, config, result);
  if (config.report_memory) {
    result.memory = net.MemoryUsage();
    result.memory_enabled = true;
  }
  return result;
}

template <typename Policy>
Result<RunResult> RunChurn(const ExperimentConfig& config,
                           const ChurnConfig& churn, SelectorKind selector) {
  const SeedPlan seeds = Policy::MakeSeedPlan(config.seed);
  typename Policy::Network net = Policy::MakeNetwork(config, seeds);

  const std::vector<uint64_t> node_ids = SampleNodeIds(config, seeds.ids);
  if (Status s = net.BulkAdd(node_ids); !s.ok()) return s;
  net.StabilizeAll();

  WorkloadBundle workload(config, seeds, node_ids);
  ThreadPool pool(config.threads);
  sim::EventQueue eq;
  Rng churn_rng(seeds.churn);
  Rng query_time_rng(seeds.query_times);
  Rng origin_rng(seeds.origins);
  Rng query_key_rng(seeds.measure);

  const double t_end = churn.warmup_s + churn.measure_s;
  RunResult result;
  uint64_t successes = 0;
  internal::ChurnObservability obs(config.trace_sample_period);

  // Latency model shared by the QoS recompute rounds and the query loop;
  // null when disabled so routing takes the historical untimed path.
  const latency::LatencyModel lmodel = MakeLatencyModel(config);
  const latency::LatencyModel* latency =
      lmodel.enabled() ? &lmodel : nullptr;

  // Node life cycle: alternate alive/dead with exp(mean_lifetime) stays.
  // The overlay is never drained below two live nodes.
  std::function<void(uint64_t)> schedule_leave;
  std::function<void(uint64_t)> schedule_rejoin;
  schedule_leave = [&](uint64_t id) {
    eq.ScheduleAfter(churn_rng.Exponential(churn.mean_lifetime_s), [&, id] {
      if (net.live_count() <= 2 || !net.IsAlive(id)) {
        schedule_leave(id);  // keep the overlay populated; try again later
        return;
      }
      (void)net.RemoveNode(id);
      schedule_rejoin(id);
    });
  };
  schedule_rejoin = [&](uint64_t id) {
    eq.ScheduleAfter(churn_rng.Exponential(churn.mean_lifetime_s), [&, id] {
      (void)net.RejoinNode(id);
      schedule_leave(id);
    });
  };
  for (uint64_t id : node_ids) schedule_leave(id);

  // Periodic stabilization.
  std::function<void()> stabilize_tick = [&] {
    ScopedProfile span("churn.stabilize");
    net.StabilizeAll();
    if (eq.now() + churn.stabilize_interval_s <= t_end) {
      eq.ScheduleAfter(churn.stabilize_interval_s, stabilize_tick);
    }
  };
  eq.ScheduleAfter(churn.stabilize_interval_s, stabilize_tick);

  // Periodic auxiliary recomputation: the per-node loop runs on the pool
  // while the event queue is paused. Each round splits a fresh stream base
  // off the selection seed so repeated rounds draw fresh randomness, and
  // each node then splits its own stream off the round base — recomputation
  // results depend on (seed, round, node), never on thread interleaving.
  //
  // Two round implementations share this scheduling shell:
  //  * the incremental maintainer path (optimal policy under
  //    FreqMode::kObserved): persistent per-node selector state updated
  //    with this round's join/leave/frequency deltas only;
  //  * the legacy full-rebuild path (everything else): each node's
  //    selection rebuilt from scratch via InstallRound.
  // A failed round (including a failed maintenance audit) stops further
  // recomputation and fails the run after the event loop drains.
  const bool use_maintainers = selector == SelectorKind::kOptimal &&
                               config.freq_mode == FreqMode::kObserved;
  MaintenanceState<Policy> maint;
  if (use_maintainers) {
    maint.prev_live = net.LiveNodeIds();
    std::sort(maint.prev_live.begin(), maint.prev_live.end());
  }
  Status recompute_status = Status::Ok();
  uint64_t recompute_round = 0;
  std::function<void()> recompute_tick = [&] {
    ScopedProfile span("churn.recompute");
    PhaseTimer selection_timer;
    std::vector<uint64_t> live = net.LiveNodeIds();
    const uint64_t round_seed = SplitSeed(seeds.selection, recompute_round);
    std::vector<double> predicted;
    if (use_maintainers) {
      recompute_status = MaintainRound<Policy>(
          pool, net, maint, live, config, round_seed, recompute_round,
          eq.now(), predicted, result);
    } else {
      recompute_status = InstallRound<Policy>(
          pool, net, live, selector, config, latency, round_seed, predicted);
    }
    ++recompute_round;
    for (size_t i = 0; i < predicted.size(); ++i) {
      if (std::isfinite(predicted[i])) obs.predicted[live[i]] = predicted[i];
    }
    result.selection_seconds += selection_timer.Seconds();
    if (recompute_status.ok() &&
        eq.now() + churn.recompute_interval_s <= t_end) {
      eq.ScheduleAfter(churn.recompute_interval_s, recompute_tick);
    }
  };
  eq.ScheduleAfter(churn.recompute_interval_s, recompute_tick);

  // Poisson query arrivals. One RouteResult serves the whole simulation —
  // the routing loop writes into it without allocating once the path
  // vector's capacity has grown to the longest route seen. With fault
  // injection on, every query routes resiliently; under churn the plan's
  // stale windows can fire too (dead entries linger between a departure and
  // the next stabilization).
  const fault::FaultPlan plan(config.faults);
  const fault::FaultPlan* faults = plan.enabled() ? &plan : nullptr;
  if (faults != nullptr) obs.fault_injection = true;
  overlay::RouteResult route;
  std::function<void()> query_event = [&] {
    std::vector<uint64_t> live = net.LiveNodeIds();
    if (!live.empty()) {
      const uint64_t origin =
          live[static_cast<size_t>(origin_rng.UniformU64(live.size()))];
      const uint64_t key = workload.queries().SampleKey(origin, query_key_rng);
      const bool in_window = eq.now() >= churn.warmup_s;
      const bool trace_this = in_window && obs.ShouldTraceNext();
      RouteTrace trace;
      Status s = net.LookupInto(origin, key, route,
                                trace_this ? &trace : nullptr, faults,
                                latency);
      if (s.ok()) {
        // Dead entries discovered the hard way (stale-window forwards) are
        // evicted from the holder's auxiliary list right away — the
        // timeout is the liveness information. Core entries heal at the
        // holder's next stabilization, as in the fault-free model. The
        // event loop is serial, so mutating tables here is safe.
        for (const auto& [holder, entry] : route.dead_evictions) {
          net.EraseAuxiliary(holder, entry);
        }
        if (in_window) {
          ++result.queries;
          obs.OnMeasuredQuery();
          if (faults != nullptr) obs.OnFaultedLookup(route);
          if (latency != nullptr) obs.OnTimedLookup(route);
          if (trace_this) result.traces.push_back(std::move(trace));
        }
        if (route.success) {
          if (in_window) {
            ++successes;
            result.hop_histogram.Add(route.hops);
            obs.OnMeasuredSuccess(origin, route.hops, route.aux_hops);
          }
          // Every node that saw the query learns which peer answered it
          // (paper Sec. III: "the set of nodes for which s has seen
          // queries"). Under the paper's low global query rate this is what
          // gives nodes usable frequency tables between recomputations.
          for (uint64_t seen_by : route.path) {
            if (auto* n = net.GetNode(seen_by); n != nullptr) {
              n->frequencies.Record(route.destination);
            }
          }
        }
      }
    }
    const double dt = query_time_rng.Exponential(1.0 / churn.queries_per_s);
    if (eq.now() + dt <= t_end) eq.ScheduleAfter(dt, query_event);
  };
  eq.ScheduleAfter(query_time_rng.Exponential(1.0 / churn.queries_per_s),
                   query_event);

  {
    ScopedProfile span("churn.event_loop");
    eq.RunUntil(t_end);
  }
  if (!recompute_status.ok()) return recompute_status;

  result.success_rate = result.queries == 0
                            ? 1.0
                            : static_cast<double>(successes) /
                                  static_cast<double>(result.queries);
  result.avg_hops = result.hop_histogram.Mean();
  internal::CollectAuxiliaries(net, net.LiveNodeIds(), result);
  obs.Finalize(result);
  RecordMaintenanceMetrics(result);
  internal::RecordFrequencySummary(net, net.LiveNodeIds(), config, result);
  if (config.report_memory) {
    result.memory = net.MemoryUsage();
    result.memory_enabled = true;
  }
  return result;
}

template <typename Policy>
Result<Comparison> CompareStable(const ExperimentConfig& config) {
  auto none = RunStable<Policy>(config, SelectorKind::kNone);
  if (!none.ok()) return none.status();
  auto oblivious = RunStable<Policy>(config, SelectorKind::kOblivious);
  if (!oblivious.ok()) return oblivious.status();
  auto optimal = RunStable<Policy>(config, SelectorKind::kOptimal);
  if (!optimal.ok()) return optimal.status();
  return MakeComparison(std::move(none).value(), std::move(oblivious).value(),
                        std::move(optimal).value());
}

template <typename Policy>
Result<Comparison> CompareChurn(const ExperimentConfig& config,
                                const ChurnConfig& churn) {
  auto none = RunChurn<Policy>(config, churn, SelectorKind::kNone);
  if (!none.ok()) return none.status();
  auto oblivious = RunChurn<Policy>(config, churn, SelectorKind::kOblivious);
  if (!oblivious.ok()) return oblivious.status();
  auto optimal = RunChurn<Policy>(config, churn, SelectorKind::kOptimal);
  if (!optimal.ok()) return optimal.status();
  return MakeComparison(std::move(none).value(), std::move(oblivious).value(),
                        std::move(optimal).value());
}

template Result<RunResult> RunStable<ChordPolicy>(const ExperimentConfig&,
                                                  SelectorKind);
template Result<RunResult> RunStable<PastryPolicy>(const ExperimentConfig&,
                                                   SelectorKind);
template Result<RunResult> RunStable<KademliaPolicy>(const ExperimentConfig&,
                                                     SelectorKind);
template Result<RunResult> RunChurn<ChordPolicy>(const ExperimentConfig&,
                                                 const ChurnConfig&,
                                                 SelectorKind);
template Result<RunResult> RunChurn<PastryPolicy>(const ExperimentConfig&,
                                                  const ChurnConfig&,
                                                  SelectorKind);
template Result<RunResult> RunChurn<KademliaPolicy>(const ExperimentConfig&,
                                                    const ChurnConfig&,
                                                    SelectorKind);
template Result<Comparison> CompareStable<ChordPolicy>(
    const ExperimentConfig&);
template Result<Comparison> CompareStable<PastryPolicy>(
    const ExperimentConfig&);
template Result<Comparison> CompareStable<KademliaPolicy>(
    const ExperimentConfig&);
template Result<Comparison> CompareChurn<ChordPolicy>(const ExperimentConfig&,
                                                      const ChurnConfig&);
template Result<Comparison> CompareChurn<PastryPolicy>(const ExperimentConfig&,
                                                       const ChurnConfig&);
template Result<Comparison> CompareChurn<KademliaPolicy>(
    const ExperimentConfig&, const ChurnConfig&);

}  // namespace peercache::experiments
