#include "experiments/generic_experiment.h"

#include <cmath>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

#include "auxsel/selection_types.h"
#include "common/random.h"
#include "common/route_result.h"
#include "common/thread_pool.h"
#include "experiments/parallel_engine.h"
#include "sim/event_queue.h"
#include "workload/workload.h"

namespace peercache::experiments {

namespace {

using auxsel::SelectionInput;
using internal::ObliviousPool;
using internal::PhaseTimer;
using internal::PoolWithoutSelf;

/// Builds the SelectionInput for one node and installs the chosen
/// auxiliaries. The optimal policy optimizes over the node's observed
/// frequencies; the oblivious policy draws from `peer_pool`, the shared
/// snapshot of the full live membership built once per selection round (it
/// needs no query history, matching the paper's baseline). Runs
/// concurrently for distinct nodes: it reads the overlay, reads its own
/// node's frequency table, and writes only its own node's auxiliary list.
///
/// For the optimal policy, `predicted_hops` (if non-null) receives the
/// selector's Eq. 1 cost normalized by the node's total observed frequency
/// — the cost model's promised frequency-weighted route length, audited
/// against measured hops (experiments/cost_audit.h). NaN when no
/// prediction exists (non-optimal policies, or no observed peers).
template <typename Policy>
Status InstallAuxiliaries(typename Policy::Network& net, uint64_t node_id,
                          SelectorKind selector, int k, Rng& selection_rng,
                          const std::vector<auxsel::PeerFreq>& peer_pool,
                          double* predicted_hops = nullptr) {
  if (predicted_hops != nullptr) {
    *predicted_hops = std::numeric_limits<double>::quiet_NaN();
  }
  if (selector == SelectorKind::kNone) {
    return net.SetAuxiliaries(node_id, {});
  }
  auto* node = net.GetNode(node_id);
  if (node == nullptr) return Status::NotFound("node");

  SelectionInput input;
  input.bits = net.params().bits;
  input.self_id = node_id;
  input.k = k;
  input.core_ids = net.CoreNeighborIds(node_id);

  Result<auxsel::Selection> sel = [&]() -> Result<auxsel::Selection> {
    if (selector == SelectorKind::kOptimal) {
      input.peers = node->frequencies.Snapshot(node_id);
      return Policy::SelectOptimal(input);
    }
    input.peers = PoolWithoutSelf(peer_pool, node_id);
    return Policy::SelectOblivious(input, selection_rng);
  }();
  if (!sel.ok()) return sel.status();

  if (predicted_hops != nullptr && selector == SelectorKind::kOptimal) {
    double total_freq = 0.0;
    for (const auxsel::PeerFreq& p : input.peers) total_freq += p.frequency;
    if (total_freq > 0.0) *predicted_hops = sel->cost / total_freq;
  }

  // A node whose observed peer set is smaller than k (common early under
  // churn, where few queries have been seen between recomputations) fills
  // the remaining budget with oblivious picks: both policies then install
  // exactly k pointers, which is what the paper's comparison assumes.
  if (selector == SelectorKind::kOptimal &&
      static_cast<int>(sel->chosen.size()) < input.k) {
    SelectionInput pad = input;
    pad.peers = PoolWithoutSelf(peer_pool, node_id);
    pad.core_ids.insert(pad.core_ids.end(), sel->chosen.begin(),
                        sel->chosen.end());
    pad.k = input.k - static_cast<int>(sel->chosen.size());
    auto extra = Policy::SelectOblivious(pad, selection_rng);
    if (extra.ok()) {
      sel->chosen.insert(sel->chosen.end(), extra->chosen.begin(),
                         extra->chosen.end());
    }
  }
  return net.SetAuxiliaries(node_id, std::move(sel->chosen));
}

Comparison MakeComparison(RunResult none, RunResult oblivious,
                          RunResult optimal) {
  Comparison cmp;
  cmp.none = std::move(none);
  cmp.oblivious = std::move(oblivious);
  cmp.optimal = std::move(optimal);
  cmp.improvement_pct =
      ImprovementPct(cmp.oblivious.avg_hops, cmp.optimal.avg_hops);
  cmp.improvement_vs_none_pct =
      ImprovementPct(cmp.none.avg_hops, cmp.optimal.avg_hops);
  return cmp;
}

}  // namespace

std::vector<uint64_t> SampleNodeIds(const ExperimentConfig& config,
                                    uint64_t ids_seed) {
  Rng ids_rng(ids_seed);
  const uint64_t space =
      config.bits == 64 ? ~uint64_t{0} : (uint64_t{1} << config.bits);
  return ids_rng.SampleDistinct(space, static_cast<size_t>(config.n_nodes));
}

template <typename Policy>
Result<RunResult> RunStable(const ExperimentConfig& config,
                            SelectorKind selector) {
  const SeedPlan seeds = Policy::MakeSeedPlan(config.seed);
  typename Policy::Network net = Policy::MakeNetwork(config, seeds);

  const std::vector<uint64_t> node_ids = SampleNodeIds(config, seeds.ids);
  for (uint64_t id : node_ids) {
    if (Status s = net.AddNode(id); !s.ok()) return s;
  }
  net.StabilizeAll();  // perfect routing state before the experiment

  WorkloadBundle workload(config, seeds, node_ids);
  ThreadPool pool(config.threads);
  RunResult result;

  // Warmup: every node observes which peer answers each of its queries.
  // In the stable overlay the responsible node is known without routing.
  PhaseTimer warmup_timer;
  if (Status s = internal::ParallelWarmup(pool, net, node_ids,
                                          workload.queries(), seeds.warmup,
                                          config.warmup_queries_per_node);
      !s.ok()) {
    return s;
  }
  result.warmup_seconds = warmup_timer.Seconds();

  // Auxiliary selection, one independent RNG stream per node. Each task
  // also records the selector's Eq. 1 prediction into its own slot for the
  // cost-model audit.
  PhaseTimer selection_timer;
  const std::vector<auxsel::PeerFreq> peer_pool = ObliviousPool(node_ids);
  std::vector<double> predicted(node_ids.size(),
                                std::numeric_limits<double>::quiet_NaN());
  if (Status s = internal::ParallelInstall(
          pool, node_ids, seeds.selection,
          [&](size_t i, uint64_t id, Rng& rng) {
            return InstallAuxiliaries<Policy>(net, id, selector, config.k, rng,
                                              peer_pool, &predicted[i]);
          });
      !s.ok()) {
    return s;
  }
  result.selection_seconds = selection_timer.Seconds();
  internal::CollectAuxiliaries(net, node_ids, result);

  // Measurement.
  PhaseTimer measure_timer;
  if (Status s = internal::ParallelMeasure(
          pool, net, node_ids, workload.queries(), seeds.measure,
          config.measure_queries_per_node, config.trace_sample_period,
          predicted, result);
      !s.ok()) {
    return s;
  }
  result.measure_seconds = measure_timer.Seconds();
  internal::RecordPhaseTimers(result);
  return result;
}

template <typename Policy>
Result<RunResult> RunChurn(const ExperimentConfig& config,
                           const ChurnConfig& churn, SelectorKind selector) {
  const SeedPlan seeds = Policy::MakeSeedPlan(config.seed);
  typename Policy::Network net = Policy::MakeNetwork(config, seeds);

  const std::vector<uint64_t> node_ids = SampleNodeIds(config, seeds.ids);
  for (uint64_t id : node_ids) {
    if (Status s = net.AddNode(id); !s.ok()) return s;
  }
  net.StabilizeAll();

  WorkloadBundle workload(config, seeds, node_ids);
  ThreadPool pool(config.threads);
  sim::EventQueue eq;
  Rng churn_rng(seeds.churn);
  Rng query_time_rng(seeds.query_times);
  Rng origin_rng(seeds.origins);
  Rng query_key_rng(seeds.measure);

  const double t_end = churn.warmup_s + churn.measure_s;
  RunResult result;
  uint64_t successes = 0;
  internal::ChurnObservability obs(config.trace_sample_period);

  // Node life cycle: alternate alive/dead with exp(mean_lifetime) stays.
  // The overlay is never drained below two live nodes.
  std::function<void(uint64_t)> schedule_leave;
  std::function<void(uint64_t)> schedule_rejoin;
  schedule_leave = [&](uint64_t id) {
    eq.ScheduleAfter(churn_rng.Exponential(churn.mean_lifetime_s), [&, id] {
      if (net.live_count() <= 2 || !net.IsAlive(id)) {
        schedule_leave(id);  // keep the overlay populated; try again later
        return;
      }
      (void)net.RemoveNode(id);
      schedule_rejoin(id);
    });
  };
  schedule_rejoin = [&](uint64_t id) {
    eq.ScheduleAfter(churn_rng.Exponential(churn.mean_lifetime_s), [&, id] {
      (void)net.RejoinNode(id);
      schedule_leave(id);
    });
  };
  for (uint64_t id : node_ids) schedule_leave(id);

  // Periodic stabilization.
  std::function<void()> stabilize_tick = [&] {
    net.StabilizeAll();
    if (eq.now() + churn.stabilize_interval_s <= t_end) {
      eq.ScheduleAfter(churn.stabilize_interval_s, stabilize_tick);
    }
  };
  eq.ScheduleAfter(churn.stabilize_interval_s, stabilize_tick);

  // Periodic auxiliary recomputation: the per-node loop runs on the pool
  // while the event queue is paused. Each round splits a fresh stream base
  // off the selection seed so repeated rounds draw fresh randomness, and
  // each node then splits its own stream off the round base — recomputation
  // results depend on (seed, round, node), never on thread interleaving.
  uint64_t recompute_round = 0;
  std::function<void()> recompute_tick = [&] {
    PhaseTimer selection_timer;
    std::vector<uint64_t> live = net.LiveNodeIds();
    const std::vector<auxsel::PeerFreq> peer_pool = ObliviousPool(live);
    const uint64_t round_seed = SplitSeed(seeds.selection, recompute_round++);
    std::vector<double> predicted(live.size(),
                                  std::numeric_limits<double>::quiet_NaN());
    (void)internal::ParallelInstall(
        pool, live, round_seed, [&](size_t i, uint64_t id, Rng& rng) {
          return InstallAuxiliaries<Policy>(net, id, selector, config.k, rng,
                                            peer_pool, &predicted[i]);
        });
    for (size_t i = 0; i < live.size(); ++i) {
      if (std::isfinite(predicted[i])) obs.predicted[live[i]] = predicted[i];
    }
    result.selection_seconds += selection_timer.Seconds();
    if (eq.now() + churn.recompute_interval_s <= t_end) {
      eq.ScheduleAfter(churn.recompute_interval_s, recompute_tick);
    }
  };
  eq.ScheduleAfter(churn.recompute_interval_s, recompute_tick);

  // Poisson query arrivals. One RouteResult serves the whole simulation —
  // the routing loop writes into it without allocating once the path
  // vector's capacity has grown to the longest route seen.
  overlay::RouteResult route;
  std::function<void()> query_event = [&] {
    std::vector<uint64_t> live = net.LiveNodeIds();
    if (!live.empty()) {
      const uint64_t origin =
          live[static_cast<size_t>(origin_rng.UniformU64(live.size()))];
      const uint64_t key = workload.queries().SampleKey(origin, query_key_rng);
      const bool in_window = eq.now() >= churn.warmup_s;
      const bool trace_this = in_window && obs.ShouldTraceNext();
      RouteTrace trace;
      Status s =
          net.LookupInto(origin, key, route, trace_this ? &trace : nullptr);
      if (s.ok()) {
        if (in_window) {
          ++result.queries;
          obs.OnMeasuredQuery();
          if (trace_this) result.traces.push_back(std::move(trace));
        }
        if (route.success) {
          if (in_window) {
            ++successes;
            result.hop_histogram.Add(route.hops);
            obs.OnMeasuredSuccess(origin, route.hops, route.aux_hops);
          }
          // Every node that saw the query learns which peer answered it
          // (paper Sec. III: "the set of nodes for which s has seen
          // queries"). Under the paper's low global query rate this is what
          // gives nodes usable frequency tables between recomputations.
          for (uint64_t seen_by : route.path) {
            if (auto* n = net.GetNode(seen_by); n != nullptr) {
              n->frequencies.Record(route.destination);
            }
          }
        }
      }
    }
    const double dt = query_time_rng.Exponential(1.0 / churn.queries_per_s);
    if (eq.now() + dt <= t_end) eq.ScheduleAfter(dt, query_event);
  };
  eq.ScheduleAfter(query_time_rng.Exponential(1.0 / churn.queries_per_s),
                   query_event);

  eq.RunUntil(t_end);

  result.success_rate = result.queries == 0
                            ? 1.0
                            : static_cast<double>(successes) /
                                  static_cast<double>(result.queries);
  result.avg_hops = result.hop_histogram.Mean();
  internal::CollectAuxiliaries(net, net.LiveNodeIds(), result);
  obs.Finalize(result);
  return result;
}

template <typename Policy>
Result<Comparison> CompareStable(const ExperimentConfig& config) {
  auto none = RunStable<Policy>(config, SelectorKind::kNone);
  if (!none.ok()) return none.status();
  auto oblivious = RunStable<Policy>(config, SelectorKind::kOblivious);
  if (!oblivious.ok()) return oblivious.status();
  auto optimal = RunStable<Policy>(config, SelectorKind::kOptimal);
  if (!optimal.ok()) return optimal.status();
  return MakeComparison(std::move(none).value(), std::move(oblivious).value(),
                        std::move(optimal).value());
}

template <typename Policy>
Result<Comparison> CompareChurn(const ExperimentConfig& config,
                                const ChurnConfig& churn) {
  auto none = RunChurn<Policy>(config, churn, SelectorKind::kNone);
  if (!none.ok()) return none.status();
  auto oblivious = RunChurn<Policy>(config, churn, SelectorKind::kOblivious);
  if (!oblivious.ok()) return oblivious.status();
  auto optimal = RunChurn<Policy>(config, churn, SelectorKind::kOptimal);
  if (!optimal.ok()) return optimal.status();
  return MakeComparison(std::move(none).value(), std::move(oblivious).value(),
                        std::move(optimal).value());
}

template Result<RunResult> RunStable<ChordPolicy>(const ExperimentConfig&,
                                                  SelectorKind);
template Result<RunResult> RunStable<PastryPolicy>(const ExperimentConfig&,
                                                   SelectorKind);
template Result<RunResult> RunChurn<ChordPolicy>(const ExperimentConfig&,
                                                 const ChurnConfig&,
                                                 SelectorKind);
template Result<RunResult> RunChurn<PastryPolicy>(const ExperimentConfig&,
                                                  const ChurnConfig&,
                                                  SelectorKind);
template Result<Comparison> CompareStable<ChordPolicy>(
    const ExperimentConfig&);
template Result<Comparison> CompareStable<PastryPolicy>(
    const ExperimentConfig&);
template Result<Comparison> CompareChurn<ChordPolicy>(const ExperimentConfig&,
                                                      const ChurnConfig&);
template Result<Comparison> CompareChurn<PastryPolicy>(const ExperimentConfig&,
                                                       const ChurnConfig&);

}  // namespace peercache::experiments
