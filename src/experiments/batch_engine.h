#ifndef PEERCACHE_EXPERIMENTS_BATCH_ENGINE_H_
#define PEERCACHE_EXPERIMENTS_BATCH_ENGINE_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/thread_pool.h"

/// Batched lookup engine: interleaves a window of W in-flight lookups over
/// one overlay, stepping each suspended route (Network::LookupCursor) one
/// hop per pass and prefetching the next hop's node record and table slice
/// while the other W-1 routes execute. A single lookup chases pointers
/// through a multi-gigabyte table arena at million-node scale — every hop
/// is a dependent cache miss — but the W routes are independent, so the
/// interleaving converts route-latency-bound execution into memory-level
/// parallelism without touching LookupInto's single-lookup semantics
/// (traces, faults, latency models all stay on the unbatched path).
///
/// Determinism: each job's outcome is written to its own index-addressed
/// slot and depends only on (origin, key, overlay state) — the cursor
/// replays LookupInto's exact next-hop policy via the shared selection
/// helpers — so results are independent of the window size, the
/// interleaving, and the thread count. Checksums are folded serially in
/// job order afterwards (FoldChecksum), matching bench/lookup_throughput's
/// per-lookup fold bit for bit.
namespace peercache::experiments {

/// One lookup to route: `origin` must name a node (dead origins fail the
/// job, mirroring LookupInto's Unavailable).
struct LookupJob {
  uint64_t origin = 0;
  uint64_t key = 0;
};

/// Outcome of one batched lookup. `ok` is false when BeginLookup failed
/// (dead origin / empty overlay); such jobs carry zeroed route fields and
/// are skipped by FoldChecksum, exactly as the unbatched measurement loops
/// skip failed LookupInto calls.
struct BatchLookupResult {
  uint64_t destination = 0;
  int hops = 0;
  int aux_hops = 0;
  bool success = false;
  bool ok = false;
};

/// Serial-fold summary over a result span in job order.
struct BatchSummary {
  uint64_t checksum = 0;
  uint64_t lookups = 0;    ///< Jobs with ok == true.
  uint64_t successes = 0;  ///< Delivered at the responsible node.
  uint64_t sum_hops = 0;
  uint64_t sum_aux_hops = 0;
};

/// Folds results in job order with bench/lookup_throughput's checksum
/// recurrence, so a batched run and the unbatched reference loop over the
/// same jobs produce the same checksum.
inline BatchSummary FoldChecksum(std::span<const BatchLookupResult> results) {
  BatchSummary sum;
  for (const BatchLookupResult& r : results) {
    if (!r.ok) continue;
    ++sum.lookups;
    sum.successes += r.success ? 1 : 0;
    sum.sum_hops += static_cast<uint64_t>(r.hops);
    sum.sum_aux_hops += static_cast<uint64_t>(r.aux_hops);
    sum.checksum = MixHash64(sum.checksum ^ r.destination ^
                             (static_cast<uint64_t>(r.hops) << 32));
  }
  return sum;
}

/// Routes `jobs` through `net` with up to `window` lookups in flight,
/// writing each outcome to results[i]. `results.size()` must be >=
/// `jobs.size()`. Single-threaded; see the ThreadPool overload for the
/// sharded form.
template <typename Network>
void RunBatchedLookups(const Network& net, std::span<const LookupJob> jobs,
                       int window, std::span<BatchLookupResult> results) {
  using Cursor = typename Network::LookupCursor;
  if (jobs.empty()) return;
  const size_t w =
      window < 1 ? 1 : std::min<size_t>(jobs.size(),
                                        static_cast<size_t>(window));
  std::vector<Cursor> slots(w);
  std::vector<size_t> slot_job(w, 0);

  size_t next = 0;  // next unstarted job
  // Starts jobs into slot i until one survives BeginLookup (failed jobs
  // are recorded immediately). Returns false when the job list is dry.
  auto refill = [&](size_t i) {
    while (next < jobs.size()) {
      const size_t j = next++;
      results[j] = BatchLookupResult{};
      if (net.BeginLookup(jobs[j].origin, jobs[j].key, slots[i]).ok()) {
        slot_job[i] = j;
        return true;
      }
    }
    return false;
  };

  size_t in_flight = 0;
  for (size_t i = 0; i < w; ++i) {
    if (refill(i)) ++in_flight;
  }
  while (in_flight > 0) {
    for (size_t i = 0; i < w; ++i) {
      Cursor& c = slots[i];
      if (!c.done) {
        net.StepLookup(c);
        if (!c.done) {
          // Stage 1: pull the just-selected node record toward the cache;
          // its table slice is prefetched half a window later (below), by
          // which time the record — holding the slice offsets — is warm.
          net.PrefetchNode(c);
        } else {
          BatchLookupResult& r = results[slot_job[i]];
          r.destination = c.destination;
          r.hops = c.hops;
          r.aux_hops = c.aux_hops;
          r.success = c.success;
          r.ok = true;
          if (!refill(i)) {
            --in_flight;
            continue;
          }
        }
      }
      // Stage 2: table slices for the slot half a window ahead — W/2 steps
      // of other routes hide the miss before that slot is stepped again.
      Cursor& ahead = slots[(i + w / 2) % w];
      if (!ahead.done) net.PrefetchTables(ahead);
    }
  }
}

/// Sharded form: contiguous job shards run on the pool's threads, each
/// interleaving its own `window` lookups. Per-job results land in the
/// same global slots, so output is identical to the single-threaded form
/// (and to the unbatched reference loop) at any thread count.
template <typename Network>
void RunBatchedLookups(ThreadPool& pool, const Network& net,
                       std::span<const LookupJob> jobs, int window,
                       std::span<BatchLookupResult> results) {
  const size_t shards = static_cast<size_t>(pool.num_threads());
  if (shards <= 1 || jobs.size() <= shards) {
    RunBatchedLookups(net, jobs, window, results);
    return;
  }
  pool.ParallelFor(0, shards, 1, [&](size_t s) {
    const size_t begin = jobs.size() * s / shards;
    const size_t end = jobs.size() * (s + 1) / shards;
    RunBatchedLookups(net, jobs.subspan(begin, end - begin), window,
                      results.subspan(begin, end - begin));
  });
}

/// Batched ground-truth resolution (warmup phase): interleaves a window of
/// `window` in-flight ResponsibleCursor bisections, one probe per pass,
/// prefetching each suspended cursor's next probe while the others run.
/// Every cursor reproduces ResponsibleNode's answer exactly (the bisection
/// bound / bit-descent range is unique), so results[i] is byte-identical
/// to calling net.ResponsibleNode(keys[i]) in a loop — independent of the
/// window size and the interleaving. Fails only when the overlay is empty,
/// ResponsibleNode's sole failure mode, in which case no result is written.
template <typename Network>
Status RunBatchedResponsible(const Network& net,
                             std::span<const uint64_t> keys, int window,
                             std::span<uint64_t> results) {
  using Cursor = typename Network::ResponsibleCursor;
  if (keys.empty()) return Status::Ok();
  const size_t w =
      window < 1 ? 1 : std::min<size_t>(keys.size(),
                                        static_cast<size_t>(window));
  std::vector<Cursor> slots(w);
  std::vector<size_t> slot_key(w, 0);

  size_t next = 0;  // next unstarted key
  for (size_t i = 0; i < w; ++i) {
    const size_t j = next++;
    Status st = net.BeginResponsible(keys[j], slots[i]);
    if (!st.ok()) return st;  // empty overlay: fails for every key alike
    slot_key[i] = j;
  }
  size_t in_flight = w;
  while (in_flight > 0) {
    for (size_t i = 0; i < w; ++i) {
      Cursor& c = slots[i];
      if (c.done) continue;
      net.StepResponsible(c);
      if (!c.done) {
        net.PrefetchResponsible(c);
      } else {
        results[slot_key[i]] = c.result;
        if (next < keys.size()) {
          const size_t j = next++;
          // Cannot fail: the overlay was non-empty at the first Begin and
          // the net is const here.
          (void)net.BeginResponsible(keys[j], c);
          slot_key[i] = j;
          net.PrefetchResponsible(c);
        } else {
          --in_flight;
        }
      }
    }
  }
  return Status::Ok();
}

}  // namespace peercache::experiments

#endif  // PEERCACHE_EXPERIMENTS_BATCH_ENGINE_H_
