#include "experiments/experiment_config.h"

namespace peercache::experiments {

const char* SelectorKindName(SelectorKind kind) {
  switch (kind) {
    case SelectorKind::kNone:
      return "none";
    case SelectorKind::kOblivious:
      return "oblivious";
    case SelectorKind::kOptimal:
      return "optimal";
    case SelectorKind::kQos:
      return "qos";
  }
  return "?";
}

const char* FreqModeName(FreqMode mode) {
  switch (mode) {
    case FreqMode::kPool:
      return "pool";
    case FreqMode::kObserved:
      return "observed";
  }
  return "?";
}

double ImprovementPct(double oblivious_hops, double optimal_hops) {
  if (oblivious_hops <= 0) return 0.0;
  return 100.0 * (oblivious_hops - optimal_hops) / oblivious_hops;
}

}  // namespace peercache::experiments
