#include "experiments/experiment_config.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/random.h"

namespace peercache::experiments {

const char* SelectorKindName(SelectorKind kind) {
  switch (kind) {
    case SelectorKind::kNone:
      return "none";
    case SelectorKind::kOblivious:
      return "oblivious";
    case SelectorKind::kOptimal:
      return "optimal";
    case SelectorKind::kQos:
      return "qos";
  }
  return "?";
}

const char* FreqModeName(FreqMode mode) {
  switch (mode) {
    case FreqMode::kPool:
      return "pool";
    case FreqMode::kObserved:
      return "observed";
  }
  return "?";
}

std::vector<int> ComputeAuxiliaryBudgets(const ExperimentConfig& config,
                                         const std::vector<uint64_t>& ids) {
  const size_t n = ids.size();
  std::vector<int> out(n, config.k);
  if (config.budget_gamma <= 0.0 || n == 0 || config.k <= 0) return out;
  const int cap = static_cast<int>(n) - 1;

  // Seeded Pareto(1.5) capacity per node, weighted by gamma. Weights are
  // summed in ascending-id order so the floating-point total — and hence
  // every budget — is independent of the order `ids` arrives in.
  constexpr double kParetoAlpha = 1.5;
  std::vector<size_t> by_id(n);
  std::iota(by_id.begin(), by_id.end(), size_t{0});
  std::sort(by_id.begin(), by_id.end(),
            [&](size_t a, size_t b) { return ids[a] < ids[b]; });
  std::vector<double> weight(n);
  double total_weight = 0.0;
  for (size_t idx : by_id) {
    const uint64_t h = MixHash64(SplitSeed(config.budget_seed, ids[idx]));
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
    const double capacity = std::pow(1.0 - u, -1.0 / kParetoAlpha);  // >= 1
    weight[idx] = std::pow(capacity, config.budget_gamma);
    total_weight += weight[idx];
  }

  // Largest-remainder apportionment of the global budget n * k: floor each
  // proportional share (capped), then hand out the leftover one pointer at
  // a time by descending fractional remainder, ties to the smaller id.
  const int64_t budget =
      static_cast<int64_t>(n) * static_cast<int64_t>(config.k);
  std::vector<double> remainder(n);
  int64_t assigned = 0;
  for (size_t i = 0; i < n; ++i) {
    const double share =
        static_cast<double>(budget) * weight[i] / total_weight;
    const double floored = std::floor(share);
    out[i] = static_cast<int>(std::min<double>(floored, cap));
    remainder[i] = share - floored;
    assigned += out[i];
  }
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (remainder[a] != remainder[b]) return remainder[a] > remainder[b];
    return ids[a] < ids[b];
  });
  int64_t leftover = budget - assigned;
  while (leftover > 0) {
    bool progressed = false;
    for (size_t idx : order) {
      if (leftover == 0) break;
      if (out[idx] >= cap) continue;
      ++out[idx];
      --leftover;
      progressed = true;
    }
    if (!progressed) break;  // every node at cap: budget exceeds n*(n-1)
  }
  return out;
}

double ImprovementPct(double oblivious_hops, double optimal_hops) {
  if (oblivious_hops <= 0) return 0.0;
  return 100.0 * (oblivious_hops - optimal_hops) / oblivious_hops;
}

}  // namespace peercache::experiments
