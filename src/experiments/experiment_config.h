#ifndef PEERCACHE_EXPERIMENTS_EXPERIMENT_CONFIG_H_
#define PEERCACHE_EXPERIMENTS_EXPERIMENT_CONFIG_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "auxsel/frequency_table.h"
#include "common/fault.h"
#include "common/flat_table_arena.h"
#include "common/latency.h"
#include "common/metrics.h"
#include "common/route_result.h"
#include "common/stats.h"
#include "common/trace.h"
#include "experiments/cost_audit.h"
#include "workload/drift.h"

namespace peercache::experiments {

/// Which auxiliary-selection policy a run uses.
enum class SelectorKind {
  kNone,       ///< Core neighbors only (no auxiliary pointers).
  kOblivious,  ///< Paper Sec. VI-A frequency-oblivious baseline.
  kOptimal,    ///< The paper's frequency-aware optimal selection.
  /// QoS-constrained selection (paper Secs. IV-D, V-C): frequency-aware
  /// like kOptimal, but peers whose underlay RTT to the selecting node
  /// exceeds ExperimentConfig::qos_rtt_threshold_ms are constrained to
  /// `qos_delay_bound` overlay hops, forcing near-direct pointers at the
  /// latency-heavy destinations. Requires an enabled latency model; falls
  /// back to kOptimal per node when the bounds are infeasible.
  kQos,
};

const char* SelectorKindName(SelectorKind kind);

/// How the churn-mode recompute rounds obtain the frequency state that
/// drives the optimal policy (stable runs always select once from the
/// warmup snapshot, so the mode only matters under churn).
enum class FreqMode {
  /// Legacy behaviour: every round rebuilds each node's selection from a
  /// full FrequencyTable snapshot (departed peers keep their counts until
  /// the table itself drops them). Reproduces the committed results/
  /// churn figures byte-for-byte.
  kPool,
  /// Persistent per-node maintainers (auxsel/maintainer.h): each round
  /// applies only the join/leave/frequency deltas since the previous one,
  /// departed peers are forgotten, and periodic audits assert the
  /// incremental selection is cost-equal to a from-scratch rebuild.
  kObserved,
};

const char* FreqModeName(FreqMode mode);

/// Parameters shared by every experiment (paper Sec. VI-A defaults).
struct ExperimentConfig {
  int bits = 32;           ///< 32-bit ids, as in the paper.
  int n_nodes = 1024;      ///< Default n.
  int k = 10;              ///< Auxiliary pointers; default log2(1024).
  double alpha = 1.2;      ///< Zipf parameter for item popularity.
  size_t n_items = 4096;   ///< Items hashed into the id space.
  int n_popularity_lists = 1;  ///< 1 = identical ranking everywhere;
                               ///< the paper's Chord runs use 5.
  uint64_t seed = 1;
  /// Stable-mode workload sizing: queries each node originates before
  /// auxiliary selection (frequency learning) and after it (measurement).
  int warmup_queries_per_node = 200;
  int measure_queries_per_node = 200;
  /// Frequency-table capacity (0 = unbounded exact counts).
  size_t frequency_capacity = 0;
  /// Bounded-memory sketch mode for every node's frequency table
  /// (auxsel::FreqSketchParams: space-saving top-k + count-min tail).
  /// Disabled by default; when enabled it takes precedence over
  /// `frequency_capacity` and gates the telemetry document's "freq_sketch"
  /// block. Selection stays bit-identical at any thread count because the
  /// summary's tie-breaking is deterministic.
  auxsel::FreqSketchParams freq_sketch;
  /// Popularity-drift model applied to the stable-mode warmup and
  /// measurement query streams (workload::DriftConfig; docs/ALGORITHMS.md).
  /// Disabled by default, which keeps the stationary workload and its
  /// telemetry byte-identical. The two phases share one monotone per-node
  /// query index, so drift continues across the warmup/measure boundary.
  workload::DriftConfig drift;
  /// Heterogeneous auxiliary budgets (Sarshar & Roychowdhury,
  /// arXiv:cs/0210010): when > 0, the global budget n_nodes * k is
  /// redistributed across nodes proportionally to c_i^budget_gamma, where
  /// c_i is a seeded per-node Pareto capacity — instead of a fixed k per
  /// node. 0 (default) keeps uniform budgets and byte-identical telemetry.
  /// Applies to the stable-mode selection pass and the churn kPool rebuild
  /// path; the incremental maintainers keep uniform k.
  double budget_gamma = 0.0;
  uint64_t budget_seed = 7;
  /// Chord successor-list length. The paper's Chord variant keeps only the
  /// immediate successor besides its fingers; longer lists are a robustness
  /// extension (they also strengthen the oblivious baseline).
  int successor_list_size = 1;
  /// Pastry leaf-set entries per side.
  int leaf_set_half = 4;
  /// Worker threads for the per-node selection / warmup / measurement
  /// loops. 0 = std::thread::hardware_concurrency(), 1 = legacy serial
  /// path. Results are bit-identical for every value (each node draws from
  /// its own RNG stream; see docs/ALGORITHMS.md §4).
  int threads = 0;
  /// Route-trace sampling: record a full per-hop trace for every Nth
  /// measured query per node (0 = tracing off, the default — the untraced
  /// routing path costs one branch per hop). Sampled traces land in
  /// RunResult::traces in node order, so they too are thread-count
  /// invariant. See docs/OBSERVABILITY.md.
  int trace_sample_period = 0;
  /// Churn-mode frequency handling (see FreqMode). The maintainer path is
  /// the default; FreqMode::kPool pins the legacy full-rebuild rounds that
  /// generated the committed churn figures.
  FreqMode freq_mode = FreqMode::kObserved;
  /// Every Nth churn recompute round (round 0 counts) cross-checks each
  /// node's incremental selection against a from-scratch build of the same
  /// input and fails the run on a cost mismatch. kObserved only; 0 = never
  /// audit.
  int maintenance_audit_period = 4;
  /// Fault-injection knobs (common/fault.h). All probabilities default to
  /// zero, which disables injection entirely: the engine then routes over
  /// the historical fault-free path and emits byte-identical telemetry.
  fault::FaultConfig faults;
  /// Link-latency model knobs (common/latency.h). All magnitudes default to
  /// zero, which disables the model entirely: routing then takes the
  /// historical untimed path and telemetry stays byte-identical.
  latency::LatencyConfig latency;
  /// Optional measured RTT matrix overriding the synthetic coordinates for
  /// the node pairs it covers (loaded by the CLI via --latency-matrix).
  latency::PingMatrix latency_matrix;
  /// SelectorKind::kQos knobs: peers whose base RTT from the selecting node
  /// exceeds the threshold get `qos_delay_bound` as their delay bound
  /// (0 = demand a direct pointer). Threshold 0 constrains nothing.
  double qos_rtt_threshold_ms = 0.0;
  int qos_delay_bound = 0;
  /// Capture the overlay's end-of-run memory footprint (NodeStore +
  /// FlatTableArena accounting) into RunResult::memory and emit it as the
  /// telemetry document's "memory" block. Off by default so existing
  /// documents stay byte-identical.
  bool report_memory = false;
  /// Capture every node's end-of-run frequency snapshot and core neighbor
  /// set into RunResult::freq_snapshots (ascending node id). Bench-only
  /// plumbing for bench/freq_sketch's cross-evaluation — an exact run's
  /// captures are the frequency reference that sketch-chosen auxiliary
  /// sets are re-priced against under Eq. 1. Never serialized, so
  /// telemetry is unaffected. Meaningful for exact-mode runs (a sketch
  /// table's snapshot is its truncated summary, not the reference).
  bool capture_freq_snapshots = false;
};

/// Churn-mode parameters (paper Sec. VI-C): nodes alternate between alive
/// and dead states with exponentially distributed durations.
struct ChurnConfig {
  double mean_lifetime_s = 900.0;    ///< Mean alive AND mean dead duration.
  double queries_per_s = 4.0;        ///< Global Poisson query rate.
  double stabilize_interval_s = 25.0;
  double recompute_interval_s = 62.5;
  double warmup_s = 3600.0;          ///< Learning/mixing period.
  double measure_s = 3600.0;         ///< Measurement window.
};

/// Per-round bookkeeping of the incremental churn-maintenance path
/// (FreqMode::kObserved): how many deltas of each kind the round applied
/// and how long the parallel application took. Every field except
/// `seconds` is a pure function of (seed, config) at any thread count.
struct MaintenanceRoundStats {
  double sim_time_s = 0.0;     ///< Event-queue time of the recompute tick.
  uint64_t live_nodes = 0;
  uint64_t bootstrapped = 0;   ///< Maintainers created this round.
  uint64_t peer_joins = 0;     ///< Bootstrap joins of already-observed peers.
  uint64_t peer_leaves = 0;    ///< Departure events applied to maintainers.
  uint64_t freq_deltas = 0;    ///< Dirty frequency updates drained.
  uint64_t core_deltas = 0;    ///< Core flags changed across all SetCores.
  uint64_t audited_nodes = 0;  ///< Nodes cross-checked against fresh builds.
  double seconds = 0.0;        ///< Wall clock (excluded from determinism).
};

/// Aggregated resilience accounting over the measured lookups of one run
/// under fault injection. Every field is a pure function of (seed, config)
/// at any thread count: per-lookup tallies come out of RouteResult and are
/// merged in node/index order.
struct ResilienceStats {
  uint64_t lookups = 0;           ///< Measured lookups routed under the plan.
  uint64_t delivered = 0;         ///< Delivered at the responsible node.
  uint64_t retried_lookups = 0;   ///< Lookups with >= 1 failed attempt.
  uint64_t retries = 0;           ///< Failed forwarding attempts, all causes.
  uint64_t dropped_forwards = 0;  ///< Attempts lost to message drops.
  uint64_t failstop_skips = 0;    ///< Attempts against fail-stopped nodes.
  uint64_t stale_forwards = 0;    ///< Attempts against stale dead entries.
  uint64_t budget_exhausted = 0;  ///< Lookups abandoned on a budget.
  uint64_t dead_entry_evictions = 0;  ///< Stale entries reported for eviction.

  void Accumulate(const overlay::RouteResult& route) {
    ++lookups;
    if (route.success) ++delivered;
    if (route.retries > 0) ++retried_lookups;
    retries += static_cast<uint64_t>(route.retries);
    dropped_forwards += static_cast<uint64_t>(route.dropped_forwards);
    failstop_skips += static_cast<uint64_t>(route.failstop_skips);
    stale_forwards += static_cast<uint64_t>(route.stale_forwards);
    if (route.budget_exhausted) ++budget_exhausted;
    dead_entry_evictions += route.dead_evictions.size();
  }

  void Merge(const ResilienceStats& other) {
    lookups += other.lookups;
    delivered += other.delivered;
    retried_lookups += other.retried_lookups;
    retries += other.retries;
    dropped_forwards += other.dropped_forwards;
    failstop_skips += other.failstop_skips;
    stale_forwards += other.stale_forwards;
    budget_exhausted += other.budget_exhausted;
    dead_entry_evictions += other.dead_entry_evictions;
  }

  double SuccessRate() const {
    return lookups == 0 ? 1.0
                        : static_cast<double>(delivered) /
                              static_cast<double>(lookups);
  }
};

/// One node's end-of-run frequency view, captured when
/// ExperimentConfig::capture_freq_snapshots is set: the exact Snapshot the
/// selector would see plus the node's core neighbor set — everything Eq. 1
/// needs to re-price an arbitrary auxiliary set against this node's
/// observed popularity. Destination frequencies are routing-independent
/// (a lookup's responsible node is a function of the key alone), so an
/// exact run's captures price any same-workload run's selections.
struct FreqSnapshotCapture {
  uint64_t node_id = 0;
  std::vector<auxsel::PeerFreq> peers;
  std::vector<uint64_t> core_ids;
};

/// Result of one run (one selector policy).
struct RunResult {
  double avg_hops = 0.0;
  double success_rate = 1.0;
  uint64_t queries = 0;
  Histogram hop_histogram{64};
  /// Auxiliary set installed on each node after the (last) selection pass,
  /// sorted by node id. Lets tests assert that parallel and serial runs
  /// made identical selections.
  std::vector<std::pair<uint64_t, std::vector<uint64_t>>> node_auxiliaries;
  /// Wall-clock phase timings (seconds); the selection phase is the target
  /// of the parallel engine and is reported by bench/parallel_scaling.
  double warmup_seconds = 0.0;
  double selection_seconds = 0.0;
  double measure_seconds = 0.0;
  /// Observability (docs/OBSERVABILITY.md). Forwarding-hop totals over the
  /// successful measured lookups, split core vs auxiliary: the aux-hit
  /// rate is the fraction of forwarding decisions that went through a
  /// peer-cache auxiliary entry.
  uint64_t total_route_hops = 0;
  uint64_t aux_route_hops = 0;
  double aux_hit_rate = 0.0;
  /// Eq. 1 cost-model audit entries, ascending node id. Populated for
  /// kOptimal runs (the only policy whose selector predicts a cost).
  std::vector<CostAuditEntry> cost_audit;
  /// Sampled per-hop route traces (config.trace_sample_period), merged in
  /// node order so output is identical at every thread count.
  std::vector<RouteTrace> traces;
  /// Merged per-node metric shards from the measurement loop, plus the
  /// phase timers above; serialized into every --json-out document.
  MetricsShard metrics;
  /// One entry per churn recompute round on the incremental maintenance
  /// path (empty for stable runs, non-optimal policies, and
  /// FreqMode::kPool). Totals surface as `maintain.*` counters in
  /// `metrics` and as the telemetry document's "maintenance" block.
  std::vector<MaintenanceRoundStats> maintenance_rounds;
  /// True iff this run routed its measured lookups under an enabled
  /// fault::FaultPlan. Gates `resilience` below, the `resilience.*` metric
  /// counters, and the telemetry document's "resilience" block — with
  /// injection off none of them exist, keeping fault-free output
  /// byte-identical to the committed figures.
  bool fault_injection = false;
  ResilienceStats resilience;
  /// True iff this run routed its measured lookups under an enabled
  /// latency::LatencyModel. Gates `latency_histogram` below, the
  /// `lookup.latency_ms` metric, and the telemetry document's "latency"
  /// block — with the model off none of them exist, keeping untimed output
  /// byte-identical to the committed figures.
  bool latency_enabled = false;
  /// Log-bucketed end-to-end lookup latencies (milliseconds) over every
  /// measured lookup, merged in node/index order so percentiles are
  /// thread-count invariant.
  LogHistogram latency_histogram;
  /// True iff the run captured the overlay's memory footprint
  /// (config.report_memory). Gates `memory` below and the telemetry
  /// document's "memory" block; off keeps output byte-identical to the
  /// committed figures. Arena mutations happen only on serial paths, so
  /// the captured footprint is thread-count invariant.
  bool memory_enabled = false;
  overlay::StoreMemoryStats memory;
  /// True iff the run's frequency tables ran in sketch mode
  /// (config.freq_sketch.enabled()). Gates the telemetry document's
  /// "freq_sketch" block; off keeps output byte-identical to the committed
  /// figures. The means below are ALWAYS computed (serially, over live
  /// nodes in id order — cheap and thread-count invariant) so exact-mode
  /// baselines can read their own footprint programmatically without
  /// emitting it.
  bool freq_sketch_enabled = false;
  auxsel::FreqSketchParams freq_sketch_params;
  /// Mean modeled per-node frequency-summary footprint
  /// (FrequencyTable::SummaryMemoryBytes) and mean tracked-peer count at
  /// the end of the run.
  double freq_summary_bytes_mean = 0.0;
  double freq_tracked_mean = 0.0;
  /// Per-node frequency captures (config.capture_freq_snapshots), ascending
  /// node id. Bench-only; never serialized.
  std::vector<FreqSnapshotCapture> freq_snapshots;
};

/// Side-by-side comparison at identical seeds/workload.
struct Comparison {
  RunResult none;  ///< Core neighbors only (no auxiliary pointers).
  RunResult oblivious;
  RunResult optimal;
  /// The paper's performance metric: percentage reduction in average hops
  /// versus the frequency-oblivious scheme.
  double improvement_pct = 0.0;
  /// Reduction versus core-only routing (context for the metric above: our
  /// oblivious baseline is stronger than the paper's, see EXPERIMENTS.md).
  double improvement_vs_none_pct = 0.0;
};

/// improvement = 100 * (oblivious - optimal) / oblivious.
double ImprovementPct(double oblivious_hops, double optimal_hops);

/// Heterogeneous auxiliary budgets (config.budget_gamma > 0): distributes
/// the global budget ids.size() * config.k across nodes proportionally to
/// c_i^budget_gamma, where c_i is a Pareto(1.5) capacity derived from
/// MixHash64(SplitSeed(budget_seed, id)) — heavier gamma concentrates the
/// budget on the most capable nodes (Sarshar & Roychowdhury,
/// arXiv:cs/0210010). Returns one budget per entry of `ids` (aligned);
/// budgets are non-negative, capped at ids.size() - 1 (a node cannot point
/// at more peers than exist), and apportioned by largest remainder with
/// deterministic id-order tie-breaking, so the result is a pure function of
/// (config, ids) regardless of the order ids arrive in. With
/// budget_gamma == 0 every node gets exactly config.k.
std::vector<int> ComputeAuxiliaryBudgets(const ExperimentConfig& config,
                                         const std::vector<uint64_t>& ids);

}  // namespace peercache::experiments

#endif  // PEERCACHE_EXPERIMENTS_EXPERIMENT_CONFIG_H_
