#ifndef PEERCACHE_EXPERIMENTS_FAULT_CORPUS_H_
#define PEERCACHE_EXPERIMENTS_FAULT_CORPUS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "experiments/experiment_config.h"

namespace peercache::experiments {

/// One committed fault scenario: a small experiment configuration with an
/// enabled fault plan, replayed by both the differential test
/// (tests/experiments/fault_corpus_test.cc) and the bench generator
/// (bench/fault_resilience --corpus-out).
struct FaultCase {
  std::string name;    ///< Stable identifier, unique within the corpus.
  std::string system;  ///< "chord" or "pastry".
  bool churn = false;
  ExperimentConfig config;  ///< Includes the fault knobs (config.faults).
  ChurnConfig churn_config;  ///< Used only when `churn` is set.
};

/// The committed corpus: deterministic fault scenarios covering both
/// overlays, drop / fail-stop / stale faults, retries on and off, and both
/// stable and churn modes. `threads` lands in every case's config so the
/// same corpus can be replayed serially and in parallel.
std::vector<FaultCase> FaultCorpusCases(int threads);

/// Runs every corpus case (optimal policy) and serializes the outcomes as
/// one schema-versioned JSON document with NO wall-clock fields: the bytes
/// are a pure function of the corpus at any thread count. The committed
/// copy lives at results/fault_corpus.json; the differential test replays
/// the corpus at threads 1 and 4 and byte-compares against it.
Result<std::string> FaultCorpusDocument(int threads);

}  // namespace peercache::experiments

#endif  // PEERCACHE_EXPERIMENTS_FAULT_CORPUS_H_
