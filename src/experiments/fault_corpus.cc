#include "experiments/fault_corpus.h"

#include <utility>

#include "common/json_writer.h"
#include "experiments/generic_experiment.h"
#include "experiments/json_report.h"

namespace peercache::experiments {

namespace {

/// Small base configuration shared by every corpus case: big enough for
/// multi-hop routes (and thus real retry chains), small enough that the
/// whole corpus replays in seconds inside ctest.
ExperimentConfig BaseConfig(int threads) {
  ExperimentConfig config;
  config.n_nodes = 128;
  config.k = 7;
  config.warmup_queries_per_node = 50;
  config.measure_queries_per_node = 20;
  config.threads = threads;
  return config;
}

/// Short churn window: a few stabilization and recompute rounds, a few
/// hundred routed queries, and enough departures for stale windows to fire.
ChurnConfig ShortChurn() {
  ChurnConfig churn;
  churn.mean_lifetime_s = 300.0;
  churn.warmup_s = 300.0;
  churn.measure_s = 300.0;
  return churn;
}

FaultCase MakeCase(std::string name, std::string system, bool churn,
                   ExperimentConfig config) {
  FaultCase c;
  c.name = std::move(name);
  c.system = std::move(system);
  c.churn = churn;
  c.config = std::move(config);
  c.churn_config = ShortChurn();
  return c;
}

}  // namespace

std::vector<FaultCase> FaultCorpusCases(int threads) {
  std::vector<FaultCase> cases;

  {  // Headline scenario: moderate drops, retries on.
    ExperimentConfig config = BaseConfig(threads);
    config.faults.drop_prob = 0.2;
    config.faults.seed = 7;
    cases.push_back(MakeCase("chord_stable_drop20", "chord", false, config));
    cases.push_back(MakeCase("pastry_stable_drop20", "pastry", false, config));
    cases.push_back(
        MakeCase("kademlia_stable_drop20", "kademlia", false, config));
  }
  {  // Mixed drop + mid-lookup fail-stop departures.
    ExperimentConfig config = BaseConfig(threads);
    config.faults.drop_prob = 0.1;
    config.faults.fail_prob = 0.02;
    config.faults.seed = 11;
    cases.push_back(
        MakeCase("chord_stable_drop10_fail2", "chord", false, config));
    cases.push_back(
        MakeCase("pastry_stable_drop10_fail2", "pastry", false, config));
  }
  {  // Degraded baseline: first failure aborts the lookup.
    ExperimentConfig config = BaseConfig(threads);
    config.faults.drop_prob = 0.3;
    config.faults.retry = false;
    config.faults.seed = 13;
    cases.push_back(
        MakeCase("chord_stable_drop30_noretry", "chord", false, config));
  }
  {  // Tight retry budget under heavy drops: budget exhaustion fires.
    ExperimentConfig config = BaseConfig(threads);
    config.faults.drop_prob = 0.5;
    config.faults.max_retries = 1;
    config.faults.seed = 17;
    cases.push_back(
        MakeCase("pastry_stable_drop50_retries1", "pastry", false, config));
  }
  {  // Churn with drops and wide stale windows: dead entries linger
     // between a departure and the next stabilization, so stale forwards
     // and the resulting evictions exercise the full pipeline.
    ExperimentConfig config = BaseConfig(threads);
    config.faults.drop_prob = 0.1;
    config.faults.stale_prob = 0.5;
    config.faults.seed = 5;
    cases.push_back(MakeCase("chord_churn_drop10_stale50", "chord", true,
                             config));
    cases.push_back(MakeCase("pastry_churn_drop10_stale50", "pastry", true,
                             config));
    cases.push_back(MakeCase("kademlia_churn_drop10_stale50", "kademlia", true,
                             config));
  }
  return cases;
}

Result<std::string> FaultCorpusDocument(int threads) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema_version");
  w.Int(kTelemetrySchemaVersion);
  w.Key("generator");
  w.String("fault_corpus");
  w.Key("kind");
  w.String("fault_corpus");
  w.Key("cases");
  w.BeginArray();
  for (const FaultCase& c : FaultCorpusCases(threads)) {
    Result<RunResult> run = [&]() -> Result<RunResult> {
      if (c.system == "chord") {
        return c.churn ? RunChurn<ChordPolicy>(c.config, c.churn_config,
                                               SelectorKind::kOptimal)
                       : RunStable<ChordPolicy>(c.config,
                                                SelectorKind::kOptimal);
      }
      if (c.system == "kademlia") {
        return c.churn ? RunChurn<KademliaPolicy>(c.config, c.churn_config,
                                                  SelectorKind::kOptimal)
                       : RunStable<KademliaPolicy>(c.config,
                                                   SelectorKind::kOptimal);
      }
      return c.churn ? RunChurn<PastryPolicy>(c.config, c.churn_config,
                                              SelectorKind::kOptimal)
                     : RunStable<PastryPolicy>(c.config,
                                               SelectorKind::kOptimal);
    }();
    if (!run.ok()) return run.status();
    w.BeginObject();
    w.Key("name");
    w.String(c.name);
    w.Key("system");
    w.String(c.system);
    w.Key("mode");
    w.String(c.churn ? "churn" : "stable");
    w.Key("config");
    // The thread count shapes scheduling, never results; normalize it so
    // the document bytes are identical no matter where it was generated.
    ExperimentConfig doc_config = c.config;
    doc_config.threads = 1;
    WriteConfigJson(w, doc_config);
    // Deterministic headline numbers only — phase timings and any other
    // wall-clock field would break the byte comparison.
    w.Key("avg_hops");
    w.Double(run->avg_hops);
    w.Key("success_rate");
    w.Double(run->success_rate);
    w.Key("queries");
    w.UInt(run->queries);
    w.Key("resilience");
    WriteResilienceJson(w, run->resilience);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

}  // namespace peercache::experiments
