#ifndef PEERCACHE_EXPERIMENTS_CHORD_EXPERIMENT_H_
#define PEERCACHE_EXPERIMENTS_CHORD_EXPERIMENT_H_

#include "common/status.h"
#include "experiments/experiment_config.h"

namespace peercache::experiments {

/// Stable-mode Chord run (paper Sec. VI-C, "stable" series): build the
/// overlay, let every node observe warmup queries, install auxiliary
/// neighbors with the given policy, then measure average lookup hops.
Result<RunResult> RunChordStable(const ExperimentConfig& config,
                                 SelectorKind selector);

/// Churn-mode Chord run (paper Sec. VI-C): event-driven simulation with
/// exponential node lifetimes, periodic stabilization and periodic
/// auxiliary recomputation; hops measured over the post-warmup window.
Result<RunResult> RunChordChurn(const ExperimentConfig& config,
                                const ChurnConfig& churn,
                                SelectorKind selector);

/// Runs oblivious and optimal back-to-back on identical workload seeds and
/// reports the paper's improvement metric.
Result<Comparison> CompareChordStable(const ExperimentConfig& config);
Result<Comparison> CompareChordChurn(const ExperimentConfig& config,
                                     const ChurnConfig& churn);

}  // namespace peercache::experiments

#endif  // PEERCACHE_EXPERIMENTS_CHORD_EXPERIMENT_H_
