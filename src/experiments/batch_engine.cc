#include "experiments/batch_engine.h"

#include "chord/chord_network.h"
#include "kademlia/kademlia_network.h"
#include "pastry/pastry_network.h"

// Explicit instantiations for the three shipped backends: callers linking
// against peercache_experiments get the batched engine without paying its
// template instantiation in every translation unit, and a backend whose
// cursor API drifts from the engine's expectations breaks this file's
// build instead of the first bench that uses it.
namespace peercache::experiments {

template void RunBatchedLookups<chord::ChordNetwork>(
    const chord::ChordNetwork&, std::span<const LookupJob>, int,
    std::span<BatchLookupResult>);
template void RunBatchedLookups<pastry::PastryNetwork>(
    const pastry::PastryNetwork&, std::span<const LookupJob>, int,
    std::span<BatchLookupResult>);
template void RunBatchedLookups<kademlia::KademliaNetwork>(
    const kademlia::KademliaNetwork&, std::span<const LookupJob>, int,
    std::span<BatchLookupResult>);

template void RunBatchedLookups<chord::ChordNetwork>(
    ThreadPool&, const chord::ChordNetwork&, std::span<const LookupJob>, int,
    std::span<BatchLookupResult>);
template void RunBatchedLookups<pastry::PastryNetwork>(
    ThreadPool&, const pastry::PastryNetwork&, std::span<const LookupJob>,
    int, std::span<BatchLookupResult>);
template void RunBatchedLookups<kademlia::KademliaNetwork>(
    ThreadPool&, const kademlia::KademliaNetwork&, std::span<const LookupJob>,
    int, std::span<BatchLookupResult>);

template Status RunBatchedResponsible<chord::ChordNetwork>(
    const chord::ChordNetwork&, std::span<const uint64_t>, int,
    std::span<uint64_t>);
template Status RunBatchedResponsible<pastry::PastryNetwork>(
    const pastry::PastryNetwork&, std::span<const uint64_t>, int,
    std::span<uint64_t>);
template Status RunBatchedResponsible<kademlia::KademliaNetwork>(
    const kademlia::KademliaNetwork&, std::span<const uint64_t>, int,
    std::span<uint64_t>);

}  // namespace peercache::experiments
