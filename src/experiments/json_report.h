#ifndef PEERCACHE_EXPERIMENTS_JSON_REPORT_H_
#define PEERCACHE_EXPERIMENTS_JSON_REPORT_H_

#include <string>

#include "common/json_writer.h"
#include "common/status.h"
#include "common/trace.h"
#include "experiments/experiment_config.h"

namespace peercache::experiments {

/// Version stamped into every machine-readable telemetry document
/// (`schema_version`). Bump when a field is renamed or its meaning
/// changes; adding fields is backward compatible and needs no bump.
/// The schema itself is documented in docs/OBSERVABILITY.md.
inline constexpr int kTelemetrySchemaVersion = 1;

/// Emits the config block shared by every document: one key per
/// ExperimentConfig field, in declaration order. Fault-injection keys
/// (`fault_*`) appear only when injection is enabled, and latency-model
/// keys (`latency_*`, `qos_*`) only when the latency model is enabled.
void WriteConfigJson(JsonWriter& w, const ExperimentConfig& config);

/// Emits one run's aggregated resilience telemetry as a JSON object (the
/// "resilience" block; docs/RESILIENCE.md). Every field is deterministic —
/// a pure function of (seed, config) at any thread count.
void WriteResilienceJson(JsonWriter& w, const ResilienceStats& r);

/// Emits a lookup-latency distribution as a JSON object (the "latency"
/// block): count/mean/min/max plus interpolated p50/p90/p99/p99.9, all in
/// modeled milliseconds. Deterministic at any thread count.
void WriteLatencyJson(JsonWriter& w, const LogHistogram& h);

/// Emits one run's telemetry object: headline numbers, per-phase wall
/// clock, hop histogram with p50/p95/p99 and per-bucket counts, aux-hit
/// rate, the Eq. 1 cost-audit residual distribution, and the merged
/// metrics-registry snapshot. Runs routed under an enabled fault plan
/// additionally carry a "resilience" block (docs/RESILIENCE.md); fault-free
/// runs never do, so their documents stay byte-identical to the committed
/// figures.
void WriteRunResultJson(JsonWriter& w, const RunResult& result);

/// Emits the three-policy comparison: `runs.{none,oblivious,optimal}`
/// plus both improvement metrics.
void WriteComparisonJson(JsonWriter& w, const Comparison& cmp);

/// Builds a complete schema-versioned comparison document.
/// `generator` names the binary ("sim_cli", "fig5_chord_vary_n", ...);
/// `system` is "chord" or "pastry"; `mode` is "stable" or "churn".
std::string ComparisonDocument(const std::string& generator,
                               const std::string& system,
                               const std::string& mode,
                               const ExperimentConfig& config,
                               const Comparison& cmp);

/// One sampled route trace as a single JSONL line (no trailing newline).
/// `policy` labels which run of a comparison produced it.
std::string TraceJsonLine(const std::string& system, const char* policy,
                          const RouteTrace& trace);

/// Writes `content` to `path` (truncating). Status::Unavailable on I/O
/// failure.
Status WriteStringToFile(const std::string& path, const std::string& content);

}  // namespace peercache::experiments

#endif  // PEERCACHE_EXPERIMENTS_JSON_REPORT_H_
