#ifndef PEERCACHE_EXPERIMENTS_PARALLEL_ENGINE_H_
#define PEERCACHE_EXPERIMENTS_PARALLEL_ENGINE_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <utility>
#include <vector>

#include "auxsel/selection_types.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "experiments/experiment_config.h"
#include "workload/workload.h"

/// Shared machinery of the parallel experiment engine: the per-node
/// selection, warmup, and measurement loops of the Chord and Pastry drivers
/// are identical up to the network type, and each parallelizes the same
/// way — every node derives its own RNG stream with SplitSeed, writes only
/// to its own slot (its node state or an index-addressed partial), and the
/// partials are merged in node order afterwards. Serial (`threads = 1`) and
/// parallel runs are therefore bit-identical; the determinism test
/// (tests/experiments/parallel_determinism_test.cc) enforces this.
namespace peercache::experiments::internal {

/// Wall-clock stopwatch for RunResult's phase timings.
class PhaseTimer {
 public:
  PhaseTimer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Builds the frequency-oblivious candidate pool once per selection round:
/// every live id with zero frequency. The pool is shared (read-only) by all
/// per-node selection tasks; each node drops itself via PoolWithoutSelf
/// instead of rebuilding the whole vector element-by-element.
inline std::vector<auxsel::PeerFreq> ObliviousPool(
    const std::vector<uint64_t>& live_ids) {
  std::vector<auxsel::PeerFreq> pool;
  pool.reserve(live_ids.size());
  for (uint64_t id : live_ids) pool.push_back({id, 0.0, -1});
  return pool;
}

/// One bulk copy of the shared pool minus the selecting node.
inline std::vector<auxsel::PeerFreq> PoolWithoutSelf(
    const std::vector<auxsel::PeerFreq>& pool, uint64_t self_id) {
  std::vector<auxsel::PeerFreq> peers = pool;
  auto it = std::find_if(peers.begin(), peers.end(),
                         [self_id](const auxsel::PeerFreq& p) {
                           return p.id == self_id;
                         });
  if (it != peers.end()) peers.erase(it);
  return peers;
}

/// Runs `install(node_id, rng)` for every node with an independent RNG
/// stream per node, and returns the first (lowest-index) failure.
/// `selection_seed` must be fresh per round (churn recomputations split a
/// round counter off the base selection seed) so repeated rounds do not
/// replay identical random draws.
template <typename InstallFn>
Status ParallelInstall(ThreadPool& pool, const std::vector<uint64_t>& ids,
                       uint64_t selection_seed, const InstallFn& install) {
  std::vector<Status> statuses(ids.size());
  pool.ParallelFor(0, ids.size(), 1, [&](size_t i) {
    Rng rng(SplitSeed(selection_seed, ids[i]));
    statuses[i] = install(ids[i], rng);
  });
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

/// Warmup: every node learns which peer answers each of its queries. Each
/// task reads the overlay (const) and writes only its own node's frequency
/// table. `queries` must have all lists pre-assigned (AssignLists).
template <typename Network>
Status ParallelWarmup(ThreadPool& pool, Network& net,
                      const std::vector<uint64_t>& node_ids,
                      workload::QueryWorkload& queries, uint64_t warmup_seed,
                      int queries_per_node) {
  std::vector<Status> statuses(node_ids.size());
  pool.ParallelFor(0, node_ids.size(), 4, [&](size_t i) {
    const uint64_t origin = node_ids[i];
    auto* node = net.GetNode(origin);
    Rng rng(SplitSeed(warmup_seed, origin));
    for (int q = 0; q < queries_per_node; ++q) {
      const uint64_t key = queries.SampleKey(origin, rng);
      auto responsible = net.ResponsibleNode(key);
      if (!responsible.ok()) {
        statuses[i] = responsible.status();
        return;
      }
      if (responsible.value() != origin) {
        node->frequencies.Record(responsible.value());
      }
    }
  });
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

/// Measurement: routes every node's queries over the finished overlay
/// (Lookup is const) into index-addressed partials, then merges them in
/// node order into `result`. Thread count cannot affect the totals.
template <typename Network>
Status ParallelMeasure(ThreadPool& pool, const Network& net,
                       const std::vector<uint64_t>& node_ids,
                       workload::QueryWorkload& queries, uint64_t measure_seed,
                       int queries_per_node, RunResult& result) {
  struct Partial {
    Status status;
    uint64_t queries = 0;
    uint64_t successes = 0;
    Histogram hops{64};
  };
  std::vector<Partial> partials(node_ids.size());
  pool.ParallelFor(0, node_ids.size(), 1, [&](size_t i) {
    const uint64_t origin = node_ids[i];
    Partial& part = partials[i];
    Rng rng(SplitSeed(measure_seed, origin));
    for (int q = 0; q < queries_per_node; ++q) {
      const uint64_t key = queries.SampleKey(origin, rng);
      auto route = net.Lookup(origin, key);
      if (!route.ok()) {
        part.status = route.status();
        return;
      }
      ++part.queries;
      if (route->success) {
        ++part.successes;
        part.hops.Add(route->hops);
      }
    }
  });

  uint64_t successes = 0;
  for (const Partial& part : partials) {
    if (!part.status.ok()) return part.status;
    result.queries += part.queries;
    successes += part.successes;
    result.hop_histogram.Merge(part.hops);
  }
  result.success_rate = result.queries == 0
                            ? 1.0
                            : static_cast<double>(successes) /
                                  static_cast<double>(result.queries);
  result.avg_hops = result.hop_histogram.Mean();
  return Status::Ok();
}

/// Snapshots every listed node's installed auxiliary set, sorted by id,
/// for the determinism test's selection comparison.
template <typename Network>
void CollectAuxiliaries(const Network& net, std::vector<uint64_t> ids,
                        RunResult& result) {
  std::sort(ids.begin(), ids.end());
  result.node_auxiliaries.clear();
  result.node_auxiliaries.reserve(ids.size());
  for (uint64_t id : ids) {
    const auto* node = net.GetNode(id);
    if (node == nullptr) continue;
    result.node_auxiliaries.emplace_back(id, node->auxiliaries);
  }
}

}  // namespace peercache::experiments::internal

#endif  // PEERCACHE_EXPERIMENTS_PARALLEL_ENGINE_H_
