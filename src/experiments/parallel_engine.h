#ifndef PEERCACHE_EXPERIMENTS_PARALLEL_ENGINE_H_
#define PEERCACHE_EXPERIMENTS_PARALLEL_ENGINE_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <span>
#include <utility>
#include <vector>

#include "auxsel/selection_types.h"
#include "common/fault.h"
#include "common/latency.h"
#include "common/random.h"
#include "common/route_result.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "experiments/batch_engine.h"
#include "experiments/experiment_config.h"
#include "workload/drift.h"
#include "workload/workload.h"

/// Shared machinery of the parallel experiment engine: the per-node
/// selection, warmup, and measurement loops of the Chord and Pastry drivers
/// are identical up to the network type, and each parallelizes the same
/// way — every node derives its own RNG stream with SplitSeed, writes only
/// to its own slot (its node state or an index-addressed partial), and the
/// partials are merged in node order afterwards. Serial (`threads = 1`) and
/// parallel runs are therefore bit-identical; the determinism test
/// (tests/experiments/parallel_determinism_test.cc) enforces this.
namespace peercache::experiments::internal {

/// Wall-clock stopwatch for RunResult's phase timings.
class PhaseTimer {
 public:
  PhaseTimer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Builds the frequency-oblivious candidate pool once per selection round:
/// every live id with zero frequency. The pool is shared (read-only) by all
/// per-node selection tasks; each node drops itself via PoolWithoutSelf
/// instead of rebuilding the whole vector element-by-element.
inline std::vector<auxsel::PeerFreq> ObliviousPool(
    const std::vector<uint64_t>& live_ids) {
  std::vector<auxsel::PeerFreq> pool;
  pool.reserve(live_ids.size());
  for (uint64_t id : live_ids) pool.push_back({id, 0.0, -1});
  return pool;
}

/// One bulk copy of the shared pool minus the selecting node.
inline std::vector<auxsel::PeerFreq> PoolWithoutSelf(
    const std::vector<auxsel::PeerFreq>& pool, uint64_t self_id) {
  std::vector<auxsel::PeerFreq> peers = pool;
  auto it = std::find_if(peers.begin(), peers.end(),
                         [self_id](const auxsel::PeerFreq& p) {
                           return p.id == self_id;
                         });
  if (it != peers.end()) peers.erase(it);
  return peers;
}

/// Runs `install(index, node_id, rng)` for every node with an independent
/// RNG stream per node, and returns the first (lowest-index) failure. The
/// index lets callers write per-node side channels (e.g. the predicted
/// Eq. 1 cost for the audit) into index-addressed slots without locking.
/// `selection_seed` must be fresh per round (churn recomputations split a
/// round counter off the base selection seed) so repeated rounds do not
/// replay identical random draws.
template <typename InstallFn>
Status ParallelInstall(ThreadPool& pool, const std::vector<uint64_t>& ids,
                       uint64_t selection_seed, const InstallFn& install) {
  std::vector<Status> statuses(ids.size());
  pool.ParallelFor(0, ids.size(), 1, [&](size_t i) {
    Rng rng(SplitSeed(selection_seed, ids[i]));
    statuses[i] = install(i, ids[i], rng);
  });
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

/// Window of in-flight ground-truth bisections per warmup task. Big enough
/// to cover a live-array binary-search miss chain, small enough that the
/// cursor slots stay L1-resident.
inline constexpr int kWarmupResponsibleWindow = 16;

/// Warmup: every node learns which peer answers each of its queries. Each
/// task reads the overlay (const) and writes only its own node's frequency
/// table. `queries` must have all lists pre-assigned (AssignLists).
///
/// Each task draws all of its keys up front (same RNG stream and draw
/// order as a query-at-a-time loop), resolves them through the batched
/// ResponsibleCursor engine — kWarmupResponsibleWindow bisections in
/// flight, each prefetching its next probe while the others advance — and
/// then records the answers in query order. The cursor reproduces
/// ResponsibleNode's answer exactly and Record order is unchanged, so
/// frequency tables (and everything downstream: selections, telemetry,
/// goldens) are byte-identical to the unbatched loop at any thread count.
///
/// When `drift` names an enabled popularity-drift model each key is drawn
/// from it instead, indexed by the node's monotone query counter offset by
/// `drift_query_base` (so warmup and measure share one drift timeline). A
/// null `drift` reproduces the stationary path byte-for-byte.
template <typename Network>
Status ParallelWarmup(ThreadPool& pool, Network& net,
                      const std::vector<uint64_t>& node_ids,
                      workload::QueryWorkload& queries, uint64_t warmup_seed,
                      int queries_per_node,
                      const workload::DriftModel* drift = nullptr,
                      int64_t drift_query_base = 0) {
  std::vector<Status> statuses(node_ids.size());
  pool.ParallelFor(0, node_ids.size(), 4, [&](size_t i) {
    const uint64_t origin = node_ids[i];
    auto* node = net.GetNode(origin);
    Rng rng(SplitSeed(warmup_seed, origin));
    const int list = drift != nullptr ? queries.ListOf(origin) : 0;
    const size_t n = queries_per_node < 0 ? 0
                                          : static_cast<size_t>(
                                                queries_per_node);
    std::vector<uint64_t> keys(n);
    for (size_t q = 0; q < n; ++q) {
      keys[q] = drift != nullptr
                    ? drift->SampleKey(list,
                                       drift_query_base +
                                           static_cast<int64_t>(q),
                                       rng)
                    : queries.SampleKey(origin, rng);
    }
    std::vector<uint64_t> answers(n);
    Status st = RunBatchedResponsible(net, keys, kWarmupResponsibleWindow,
                                      std::span<uint64_t>(answers));
    if (!st.ok()) {
      statuses[i] = st;
      return;
    }
    for (size_t q = 0; q < n; ++q) {
      if (answers[q] != origin) node->frequencies.Record(answers[q]);
    }
  });
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

/// Measurement: routes every node's queries over the finished overlay
/// (Lookup is const) into index-addressed partials, then merges them in
/// node order into `result`. Thread count cannot affect the totals.
///
/// Observability side channels, all thread-count invariant:
///  * one MetricsRegistry shard per node, merged in index order into
///    `result.metrics`;
///  * every `trace_sample_period`-th query per node is routed with a
///    RouteTrace, collected per node and concatenated in node order;
///  * `predicted_hops[i]` (may be empty, or NaN per slot = no prediction)
///    pairs the selector's Eq. 1 prediction with this node's measured mean
///    to form `result.cost_audit`.
///
/// When `faults` names an enabled plan every lookup is routed resiliently
/// (stale-window faults cannot occur here — stable-mode overlays hold no
/// dead entries) and per-node ResilienceStats partials merge in index order
/// into `result.resilience`.
///
/// When `latency` names an enabled model every lookup's end-to-end latency
/// lands in a per-node LogHistogram partial, merged in index order into
/// `result.latency_histogram` and the `lookup.latency_ms` instrument.
template <typename Network>
Status ParallelMeasure(ThreadPool& pool, const Network& net,
                       const std::vector<uint64_t>& node_ids,
                       workload::QueryWorkload& queries, uint64_t measure_seed,
                       int queries_per_node, int trace_sample_period,
                       const std::vector<double>& predicted_hops,
                       RunResult& result,
                       const fault::FaultPlan* faults = nullptr,
                       const latency::LatencyModel* latency = nullptr,
                       const workload::DriftModel* drift = nullptr,
                       int64_t drift_query_base = 0) {
  struct Partial {
    Status status;
    uint64_t queries = 0;
    uint64_t successes = 0;
    uint64_t sum_hops = 0;      // over successful lookups
    uint64_t aux_hops = 0;      // auxiliary-entry hops over successful lookups
    Histogram hops{64};
    OnlineStats hop_stats;
    std::vector<RouteTrace> traces;
    ResilienceStats resilience;
    LogHistogram latency_ms;    // over all measured lookups
  };
  const bool faulted = faults != nullptr && faults->enabled();
  const bool timed = latency != nullptr && latency->enabled();
  std::vector<Partial> partials(node_ids.size());
  MetricsRegistry registry(node_ids.size());
  pool.ParallelFor(0, node_ids.size(), 1, [&](size_t i) {
    const uint64_t origin = node_ids[i];
    Partial& part = partials[i];
    MetricsShard& shard = registry.shard(i);
    Rng rng(SplitSeed(measure_seed, origin));
    const int list = drift != nullptr ? queries.ListOf(origin) : 0;
    // One RouteResult per task, written into by every lookup: after the
    // path vector's capacity plateaus the measurement loop allocates
    // nothing per query.
    overlay::RouteResult route;
    for (int q = 0; q < queries_per_node; ++q) {
      const uint64_t key =
          drift != nullptr
              ? drift->SampleKey(list, drift_query_base + q, rng)
              : queries.SampleKey(origin, rng);
      const bool trace_this =
          trace_sample_period > 0 && q % trace_sample_period == 0;
      RouteTrace trace;
      Status s = net.LookupInto(origin, key, route,
                                trace_this ? &trace : nullptr, faults,
                                latency);
      if (!s.ok()) {
        part.status = s;
        return;
      }
      ++part.queries;
      if (faulted) part.resilience.Accumulate(route);
      if (timed) part.latency_ms.Add(route.latency_ms);
      if (route.success) {
        ++part.successes;
        part.sum_hops += static_cast<uint64_t>(route.hops);
        part.aux_hops += static_cast<uint64_t>(route.aux_hops);
        part.hops.Add(route.hops);
        part.hop_stats.Add(static_cast<double>(route.hops));
      }
      if (trace_this) part.traces.push_back(std::move(trace));
    }
    // Flush the node's accumulators into its shard once, outside the query
    // loop: a name lookup per sample is measurable at measurement-loop
    // rates, and merging an OnlineStats built in query order is
    // bit-identical to per-sample Observe calls.
    shard.Count("lookup.queries", part.queries);
    shard.Count("lookup.successes", part.successes);
    shard.Count("lookup.route_hops", part.sum_hops);
    shard.Count("lookup.aux_hops", part.aux_hops);
    shard.MergeStats("lookup.hops", part.hop_stats);
    if (timed) shard.MergeLatency("lookup.latency_ms", part.latency_ms);
  });

  uint64_t successes = 0;
  for (size_t i = 0; i < partials.size(); ++i) {
    Partial& part = partials[i];
    if (!part.status.ok()) return part.status;
    result.queries += part.queries;
    successes += part.successes;
    if (faulted) result.resilience.Merge(part.resilience);
    if (timed) result.latency_histogram.Merge(part.latency_ms);
    result.hop_histogram.Merge(part.hops);
    result.total_route_hops += part.sum_hops;
    result.aux_route_hops += part.aux_hops;
    for (RouteTrace& t : part.traces) result.traces.push_back(std::move(t));
    const double predicted = i < predicted_hops.size()
                                 ? predicted_hops[i]
                                 : std::numeric_limits<double>::quiet_NaN();
    if (part.successes > 0 && predicted == predicted) {  // non-NaN
      CostAuditEntry entry;
      entry.node_id = node_ids[i];
      entry.predicted_hops = predicted;
      entry.measured_hops = static_cast<double>(part.sum_hops) /
                            static_cast<double>(part.successes);
      entry.measured_queries = part.successes;
      result.cost_audit.push_back(entry);
    }
  }
  std::sort(result.cost_audit.begin(), result.cost_audit.end(),
            [](const CostAuditEntry& a, const CostAuditEntry& b) {
              return a.node_id < b.node_id;
            });
  result.metrics = registry.Merged();
  result.success_rate = result.queries == 0
                            ? 1.0
                            : static_cast<double>(successes) /
                                  static_cast<double>(result.queries);
  result.avg_hops = result.hop_histogram.Mean();
  result.aux_hit_rate =
      result.total_route_hops == 0
          ? 0.0
          : static_cast<double>(result.aux_route_hops) /
                static_cast<double>(result.total_route_hops);
  if (faulted) result.fault_injection = true;
  if (timed) result.latency_enabled = true;
  return Status::Ok();
}

/// Copies the run's aggregated ResilienceStats into its metrics snapshot as
/// `resilience.*` counters. No-op with injection off, so fault-free metric
/// dumps stay byte-identical to the committed figures.
inline void RecordResilienceMetrics(RunResult& result) {
  if (!result.fault_injection) return;
  const ResilienceStats& r = result.resilience;
  result.metrics.Count("resilience.lookups", r.lookups);
  result.metrics.Count("resilience.delivered", r.delivered);
  result.metrics.Count("resilience.retried_lookups", r.retried_lookups);
  result.metrics.Count("resilience.retries", r.retries);
  result.metrics.Count("resilience.dropped_forwards", r.dropped_forwards);
  result.metrics.Count("resilience.failstop_skips", r.failstop_skips);
  result.metrics.Count("resilience.stale_forwards", r.stale_forwards);
  result.metrics.Count("resilience.budget_exhausted", r.budget_exhausted);
  result.metrics.Count("resilience.dead_entry_evictions",
                       r.dead_entry_evictions);
}

/// Copies the RunResult phase timings into its metrics snapshot so every
/// --json-out document carries them under the registry's timer namespace.
inline void RecordPhaseTimers(RunResult& result) {
  result.metrics.AddTimerSeconds("phase.warmup_seconds",
                                 result.warmup_seconds);
  result.metrics.AddTimerSeconds("phase.selection_seconds",
                                 result.selection_seconds);
  result.metrics.AddTimerSeconds("phase.measure_seconds",
                                 result.measure_seconds);
}

/// Serial observability accumulator for the churn drivers: the event loop
/// routes queries one at a time, so a single metrics shard suffices. It
/// collects the same instruments as ParallelMeasure, plus the per-node
/// measured means the Eq. 1 audit pairs with the *latest* recompute
/// round's predictions (under churn the selector re-predicts every round;
/// auditing the final round against the whole window is the best available
/// comparison and is reported as such in docs/OBSERVABILITY.md).
struct ChurnObservability {
  explicit ChurnObservability(int trace_sample_period)
      : trace_period(trace_sample_period) {}

  /// Whether the *next* in-window query should be routed with a trace.
  bool ShouldTraceNext() const {
    return trace_period > 0 &&
           measured_queries % static_cast<uint64_t>(trace_period) == 0;
  }

  void OnMeasuredQuery() {
    ++measured_queries;
    shard.Count("lookup.queries");
  }

  /// Resilience tally for one in-window lookup routed under an enabled
  /// fault plan (the churn event loop is serial, so plain accumulation is
  /// already deterministic).
  void OnFaultedLookup(const overlay::RouteResult& route) {
    fault_injection = true;
    resilience.Accumulate(route);
  }

  /// Latency tally for one in-window lookup routed under an enabled
  /// latency model.
  void OnTimedLookup(const overlay::RouteResult& route) {
    latency_enabled = true;
    latency_ms.Add(route.latency_ms);
  }

  void OnMeasuredSuccess(uint64_t origin, int hops, int aux_hops) {
    shard.Count("lookup.successes");
    shard.Count("lookup.route_hops", static_cast<uint64_t>(hops));
    shard.Count("lookup.aux_hops", static_cast<uint64_t>(aux_hops));
    shard.Observe("lookup.hops", static_cast<double>(hops));
    total_route_hops += static_cast<uint64_t>(hops);
    aux_route_hops += static_cast<uint64_t>(aux_hops);
    auto& acc = measured[origin];
    acc.first += static_cast<uint64_t>(hops);
    acc.second += 1;
  }

  void Finalize(RunResult& result) {
    result.total_route_hops = total_route_hops;
    result.aux_route_hops = aux_route_hops;
    result.aux_hit_rate = total_route_hops == 0
                              ? 0.0
                              : static_cast<double>(aux_route_hops) /
                                    static_cast<double>(total_route_hops);
    // `measured` is an ordered map: entries come out in ascending node id.
    for (const auto& [node_id, acc] : measured) {
      auto it = predicted.find(node_id);
      if (it == predicted.end() || !(it->second == it->second)) continue;
      CostAuditEntry entry;
      entry.node_id = node_id;
      entry.predicted_hops = it->second;
      entry.measured_hops = static_cast<double>(acc.first) /
                            static_cast<double>(acc.second);
      entry.measured_queries = acc.second;
      result.cost_audit.push_back(entry);
    }
    if (latency_enabled) shard.MergeLatency("lookup.latency_ms", latency_ms);
    result.metrics.Merge(shard);
    if (fault_injection) {
      result.fault_injection = true;
      result.resilience = resilience;
    }
    if (latency_enabled) {
      result.latency_enabled = true;
      result.latency_histogram.Merge(latency_ms);
    }
    RecordPhaseTimers(result);
    RecordResilienceMetrics(result);
  }

  int trace_period;
  uint64_t measured_queries = 0;
  uint64_t total_route_hops = 0;
  uint64_t aux_route_hops = 0;
  MetricsShard shard;
  /// node id -> (sum of measured hops, successful measured lookups).
  std::map<uint64_t, std::pair<uint64_t, uint64_t>> measured;
  /// node id -> latest Eq. 1 predicted mean hops (NaN entries skipped).
  std::map<uint64_t, double> predicted;
  bool fault_injection = false;
  ResilienceStats resilience;
  bool latency_enabled = false;
  LogHistogram latency_ms;
};

/// Snapshots every listed node's installed auxiliary set, sorted by id,
/// for the determinism test's selection comparison.
template <typename Network>
void CollectAuxiliaries(const Network& net, std::vector<uint64_t> ids,
                        RunResult& result) {
  std::sort(ids.begin(), ids.end());
  result.node_auxiliaries.clear();
  result.node_auxiliaries.reserve(ids.size());
  for (uint64_t id : ids) {
    if (net.GetNode(id) == nullptr) continue;
    const auto aux = net.AuxiliarySpan(id);
    result.node_auxiliaries.emplace_back(
        id, std::vector<uint64_t>(aux.begin(), aux.end()));
  }
}

/// Records the run's frequency-summary footprint: mean modeled bytes and
/// mean tracked peers per live node (ascending id — serial, so the figures
/// are thread-count invariant). Always computed; the telemetry "freq_sketch"
/// block only serializes when the run used sketch mode, so exact-mode
/// documents stay byte-identical while baselines can still read their own
/// footprint off the RunResult.
template <typename Network>
void RecordFrequencySummary(const Network& net, std::vector<uint64_t> ids,
                            const ExperimentConfig& config, RunResult& result) {
  std::sort(ids.begin(), ids.end());
  double bytes = 0.0;
  double tracked = 0.0;
  uint64_t nodes = 0;
  for (uint64_t id : ids) {
    const auto* node = net.GetNode(id);
    if (node == nullptr) continue;
    bytes += static_cast<double>(node->frequencies.SummaryMemoryBytes());
    tracked += static_cast<double>(node->frequencies.distinct());
    ++nodes;
    if (config.capture_freq_snapshots) {
      FreqSnapshotCapture capture;
      capture.node_id = id;
      capture.peers = node->frequencies.Snapshot(id);
      capture.core_ids = net.CoreNeighborIds(id);
      result.freq_snapshots.push_back(std::move(capture));
    }
  }
  if (nodes > 0) {
    bytes /= static_cast<double>(nodes);
    tracked /= static_cast<double>(nodes);
  }
  result.freq_sketch_enabled = config.freq_sketch.enabled();
  result.freq_sketch_params = config.freq_sketch;
  result.freq_summary_bytes_mean = bytes;
  result.freq_tracked_mean = tracked;
}

}  // namespace peercache::experiments::internal

#endif  // PEERCACHE_EXPERIMENTS_PARALLEL_ENGINE_H_
