#ifndef PEERCACHE_EXPERIMENTS_PASTRY_EXPERIMENT_H_
#define PEERCACHE_EXPERIMENTS_PASTRY_EXPERIMENT_H_

#include "common/status.h"
#include "experiments/experiment_config.h"

namespace peercache::experiments {

/// Stable-mode Pastry run (paper Sec. VI-B): FreePastry-style overlay with
/// locality-aware routing; identical popularity ranking at all nodes
/// (config.n_popularity_lists is 1 in the paper's Pastry experiments).
Result<RunResult> RunPastryStable(const ExperimentConfig& config,
                                  SelectorKind selector);

/// Churn-mode Pastry run: the paper ran both systems in both modes (its
/// plots show Pastry stable and Chord churn; this completes the matrix).
/// Same churn model as the Chord experiments.
Result<RunResult> RunPastryChurn(const ExperimentConfig& config,
                                 const ChurnConfig& churn,
                                 SelectorKind selector);

/// Runs oblivious and optimal back-to-back on identical workload seeds and
/// reports the paper's improvement metric.
Result<Comparison> ComparePastryStable(const ExperimentConfig& config);
Result<Comparison> ComparePastryChurn(const ExperimentConfig& config,
                                      const ChurnConfig& churn);

}  // namespace peercache::experiments

#endif  // PEERCACHE_EXPERIMENTS_PASTRY_EXPERIMENT_H_
