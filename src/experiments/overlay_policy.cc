#include "experiments/overlay_policy.h"

#include "auxsel/chord_fast.h"
#include "auxsel/chord_qos.h"
#include "auxsel/kademlia_fast.h"
#include "auxsel/oblivious.h"
#include "auxsel/pastry_greedy.h"
#include "auxsel/pastry_qos.h"

namespace peercache::experiments {

// The per-phase XOR constants below are load-bearing: every committed
// results/ figure was generated from these exact streams, and the golden
// differential test (tests/experiments/golden_figures_test.cc) holds the
// engine to them.

SeedPlan ChordPolicy::MakeSeedPlan(uint64_t seed) {
  SeedPlan plan;
  plan.ids = MixHash64(seed ^ 0x1d5);
  plan.items = MixHash64(seed ^ 0x2e6);
  plan.lists = MixHash64(seed ^ 0x3f7);
  plan.assign = MixHash64(seed ^ 0x408);
  plan.warmup = MixHash64(seed ^ 0x519);
  plan.measure = MixHash64(seed ^ 0x62a);
  plan.selection = MixHash64(seed ^ 0x73b);
  plan.churn = MixHash64(seed ^ 0x84c);
  plan.query_times = MixHash64(seed ^ 0x95d);
  plan.origins = MixHash64(seed ^ 0xa6e);
  return plan;
}

ChordPolicy::Network ChordPolicy::MakeNetwork(const ExperimentConfig& config,
                                              const SeedPlan& /*seeds*/) {
  chord::ChordParams params;
  params.bits = config.bits;
  params.frequency_capacity = config.frequency_capacity;
  params.freq_sketch = config.freq_sketch;
  params.successor_list_size = config.successor_list_size;
  return Network(params);
}

ChordPolicy::Maintainer ChordPolicy::MakeMaintainer(
    const ExperimentConfig& config, uint64_t self_id) {
  return Maintainer(config.bits, config.k, self_id);
}

Result<auxsel::Selection> ChordPolicy::SelectOptimal(
    const auxsel::SelectionInput& input) {
  return auxsel::SelectChordFast(input);
}

Result<auxsel::Selection> ChordPolicy::SelectOblivious(
    const auxsel::SelectionInput& input, Rng& rng) {
  return auxsel::SelectChordOblivious(input, rng);
}

Result<auxsel::Selection> ChordPolicy::SelectQos(
    const auxsel::SelectionInput& input) {
  return auxsel::SelectChordDpQos(input);
}

SeedPlan PastryPolicy::MakeSeedPlan(uint64_t seed) {
  SeedPlan plan;
  plan.ids = MixHash64(seed ^ 0xb11);
  plan.coords = MixHash64(seed ^ 0xc22);
  plan.items = MixHash64(seed ^ 0xd33);
  plan.lists = MixHash64(seed ^ 0xe44);
  plan.assign = MixHash64(seed ^ 0xf55);
  plan.warmup = MixHash64(seed ^ 0x166);
  plan.measure = MixHash64(seed ^ 0x277);
  plan.selection = MixHash64(seed ^ 0x388);
  plan.churn = MixHash64(seed ^ 0xc0ffee);
  plan.query_times = MixHash64(seed ^ 0xbeef01);
  plan.origins = MixHash64(seed ^ 0xbeef02);
  return plan;
}

PastryPolicy::Network PastryPolicy::MakeNetwork(const ExperimentConfig& config,
                                                const SeedPlan& seeds) {
  pastry::PastryParams params;
  params.bits = config.bits;
  params.frequency_capacity = config.frequency_capacity;
  params.freq_sketch = config.freq_sketch;
  params.leaf_set_half = config.leaf_set_half;
  return Network(params, seeds.coords);
}

PastryPolicy::Maintainer PastryPolicy::MakeMaintainer(
    const ExperimentConfig& config, uint64_t self_id) {
  return Maintainer(config.bits, config.k, self_id);
}

Result<auxsel::Selection> PastryPolicy::SelectOptimal(
    const auxsel::SelectionInput& input) {
  return auxsel::SelectPastryGreedy(input);
}

Result<auxsel::Selection> PastryPolicy::SelectOblivious(
    const auxsel::SelectionInput& input, Rng& rng) {
  return auxsel::SelectPastryOblivious(input, rng);
}

Result<auxsel::Selection> PastryPolicy::SelectQos(
    const auxsel::SelectionInput& input) {
  return auxsel::SelectPastryGreedyQos(input);
}

SeedPlan KademliaPolicy::MakeSeedPlan(uint64_t seed) {
  SeedPlan plan;
  plan.ids = MixHash64(seed ^ 0x4b11);
  plan.items = MixHash64(seed ^ 0x4b22);
  plan.lists = MixHash64(seed ^ 0x4b33);
  plan.assign = MixHash64(seed ^ 0x4b44);
  plan.warmup = MixHash64(seed ^ 0x4b55);
  plan.measure = MixHash64(seed ^ 0x4b66);
  plan.selection = MixHash64(seed ^ 0x4b77);
  plan.churn = MixHash64(seed ^ 0x4b88);
  plan.query_times = MixHash64(seed ^ 0x4b99);
  plan.origins = MixHash64(seed ^ 0x4baa);
  return plan;
}

KademliaPolicy::Network KademliaPolicy::MakeNetwork(
    const ExperimentConfig& config, const SeedPlan& /*seeds*/) {
  kademlia::KademliaParams params;
  params.bits = config.bits;
  params.frequency_capacity = config.frequency_capacity;
  params.freq_sketch = config.freq_sketch;
  return Network(params);
}

KademliaPolicy::Maintainer KademliaPolicy::MakeMaintainer(
    const ExperimentConfig& config, uint64_t self_id) {
  return Maintainer(config.bits, config.k, self_id);
}

Result<auxsel::Selection> KademliaPolicy::SelectOptimal(
    const auxsel::SelectionInput& input) {
  return auxsel::SelectKademliaFast(input);
}

Result<auxsel::Selection> KademliaPolicy::SelectOblivious(
    const auxsel::SelectionInput& input, Rng& rng) {
  return auxsel::SelectKademliaOblivious(input, rng);
}

Result<auxsel::Selection> KademliaPolicy::SelectQos(
    const auxsel::SelectionInput& input) {
  // The XOR estimate is trie-shaped (bitlen(w ^ v) = b - lcp(w, v)), so the
  // Pastry QoS greedy serves the Kademlia geometry unchanged, exactly like
  // SelectKademliaFast reuses the unconstrained gain tree. Re-price the
  // result in the XOR metric for consistency with the other selectors (the
  // value is equal by the identity; the spelling matches the geometry).
  Result<auxsel::Selection> sel = auxsel::SelectPastryGreedyQos(input);
  if (!sel.ok()) return sel;
  sel->cost = auxsel::EvaluateKademliaCost(input, sel->chosen);
  return sel;
}

}  // namespace peercache::experiments
