#include "experiments/cost_audit.h"

#include <cmath>

namespace peercache::experiments {

CostAuditSummary SummarizeCostAudit(
    const std::vector<CostAuditEntry>& entries) {
  CostAuditSummary summary;
  for (const CostAuditEntry& e : entries) {
    if (e.measured_queries == 0 || !std::isfinite(e.predicted_hops)) continue;
    const double residual = e.measured_hops - e.predicted_hops;
    ++summary.nodes;
    summary.residual.Add(residual);
    summary.abs_residual.Add(std::abs(residual));
  }
  return summary;
}

}  // namespace peercache::experiments
