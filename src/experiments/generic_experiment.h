#ifndef PEERCACHE_EXPERIMENTS_GENERIC_EXPERIMENT_H_
#define PEERCACHE_EXPERIMENTS_GENERIC_EXPERIMENT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "experiments/experiment_config.h"
#include "experiments/overlay_policy.h"
#include "workload/drift.h"
#include "workload/workload.h"

namespace peercache::experiments {

/// Samples the run's distinct node ids from the id space — the shared
/// membership setup every experiment starts from.
std::vector<uint64_t> SampleNodeIds(const ExperimentConfig& config,
                                    uint64_t ids_seed);

/// The Zipf query workload of one run, built in one place for every driver:
/// items hashed into the id space, the per-list Zipf popularity rankings,
/// and each node's list assignment (AssignLists runs here, so the workload
/// is read-only afterwards — the precondition for the parallel per-node
/// loops). Owns the item space and popularity model that QueryWorkload
/// references, hence not movable.
class WorkloadBundle {
 public:
  WorkloadBundle(const ExperimentConfig& config, const SeedPlan& seeds,
                 const std::vector<uint64_t>& node_ids)
      : items_(config.bits, config.n_items, seeds.items),
        popularity_(config.n_items, config.alpha, config.n_popularity_lists,
                    seeds.lists),
        queries_(items_, popularity_, seeds.assign) {
    queries_.AssignLists(node_ids);
    if (config.drift.enabled()) {
      drift_ = std::make_unique<workload::DriftModel>(items_, popularity_,
                                                      config.drift);
    }
  }
  WorkloadBundle(const WorkloadBundle&) = delete;
  WorkloadBundle& operator=(const WorkloadBundle&) = delete;

  workload::QueryWorkload& queries() { return queries_; }

  /// The run's popularity-drift model, or null when config.drift is
  /// disabled (the stationary workload).
  const workload::DriftModel* drift() const { return drift_.get(); }

 private:
  workload::ItemSpace items_;
  workload::PopularityModel popularity_;
  workload::QueryWorkload queries_;
  std::unique_ptr<workload::DriftModel> drift_;
};

/// Stable-mode run (paper Sec. VI-B/VI-C, "stable" series): build the
/// overlay, let every node observe warmup queries, install auxiliary
/// neighbors with the given policy, then measure average lookup hops.
/// Overlay-specific behaviour (network construction, seed constants,
/// selection algorithms) comes from the policy struct (overlay_policy.h);
/// the phase logic lives only here.
template <typename Policy>
Result<RunResult> RunStable(const ExperimentConfig& config,
                            SelectorKind selector);

/// Churn-mode run (paper Sec. VI-C): event-driven simulation with
/// exponential node lifetimes, periodic stabilization and periodic
/// auxiliary recomputation; hops measured over the post-warmup window.
template <typename Policy>
Result<RunResult> RunChurn(const ExperimentConfig& config,
                           const ChurnConfig& churn, SelectorKind selector);

/// Runs none/oblivious/optimal back-to-back on identical workload seeds
/// and reports the paper's improvement metric.
template <typename Policy>
Result<Comparison> CompareStable(const ExperimentConfig& config);
template <typename Policy>
Result<Comparison> CompareChurn(const ExperimentConfig& config,
                                const ChurnConfig& churn);

// The engine is instantiated once per overlay backend in
// generic_experiment.cc; a new backend adds its policy struct there.
extern template Result<RunResult> RunStable<ChordPolicy>(
    const ExperimentConfig&, SelectorKind);
extern template Result<RunResult> RunStable<PastryPolicy>(
    const ExperimentConfig&, SelectorKind);
extern template Result<RunResult> RunStable<KademliaPolicy>(
    const ExperimentConfig&, SelectorKind);
extern template Result<RunResult> RunChurn<ChordPolicy>(
    const ExperimentConfig&, const ChurnConfig&, SelectorKind);
extern template Result<RunResult> RunChurn<PastryPolicy>(
    const ExperimentConfig&, const ChurnConfig&, SelectorKind);
extern template Result<RunResult> RunChurn<KademliaPolicy>(
    const ExperimentConfig&, const ChurnConfig&, SelectorKind);
extern template Result<Comparison> CompareStable<ChordPolicy>(
    const ExperimentConfig&);
extern template Result<Comparison> CompareStable<PastryPolicy>(
    const ExperimentConfig&);
extern template Result<Comparison> CompareStable<KademliaPolicy>(
    const ExperimentConfig&);
extern template Result<Comparison> CompareChurn<ChordPolicy>(
    const ExperimentConfig&, const ChurnConfig&);
extern template Result<Comparison> CompareChurn<PastryPolicy>(
    const ExperimentConfig&, const ChurnConfig&);
extern template Result<Comparison> CompareChurn<KademliaPolicy>(
    const ExperimentConfig&, const ChurnConfig&);

}  // namespace peercache::experiments

#endif  // PEERCACHE_EXPERIMENTS_GENERIC_EXPERIMENT_H_
