#ifndef PEERCACHE_CHORD_CHORD_NETWORK_H_
#define PEERCACHE_CHORD_CHORD_NETWORK_H_

#include <cstdint>
#include <span>
#include <vector>

#include "auxsel/frequency_table.h"
#include "common/fault.h"
#include "common/flat_table_arena.h"
#include "common/latency.h"
#include "common/node_store.h"
#include "common/ring_id.h"
#include "common/route_result.h"
#include "common/status.h"
#include "common/trace.h"

namespace peercache::chord {

/// Chord simulator parameters.
struct ChordParams {
  /// Id length b; the paper's experiments use 32-bit ids.
  int bits = 32;
  /// Length of each node's successor list (robustness under churn).
  int successor_list_size = 8;
  /// Capacity of each node's frequency table; 0 = unbounded exact counts.
  size_t frequency_capacity = 0;
  /// Bounded-memory sketch mode for per-node frequency tables
  /// (auxsel::FreqSketchParams); disabled by default.
  auxsel::FreqSketchParams freq_sketch;
  /// Safety cap on route length before a lookup is declared failed.
  int max_route_hops = 256;
};

/// Outcome of one simulated lookup — the shared overlay type
/// (common/route_result.h).
using RouteResult = overlay::RouteResult;

/// Per-node protocol state. Routing-table snapshots (fingers, successors,
/// auxiliaries) are ids captured at the node's last stabilization /
/// recomputation and go stale under churn — exactly the staleness the
/// paper's churn experiments exercise.
///
/// The tables themselves are FlatList slices into the network's
/// FlatTableArena (store_.tables()); the node record holds only the
/// 12-byte handles. Read them through ChordNetwork::Fingers/Successors/
/// Auxiliaries (or AuxiliarySpan by id).
struct ChordNode {
  uint64_t id = 0;
  bool alive = false;
  /// Core neighbors: the paper's Chord variant keeps, for each i, the
  /// numerically smallest live node in (id + 2^i, id + 2^{i+1}]; empty
  /// ranges contribute no finger.
  overlay::FlatList fingers;
  /// First successor_list_size live successors at last stabilization.
  overlay::FlatList successors;
  /// Auxiliary neighbors installed by an auxiliary-selection algorithm.
  overlay::FlatList auxiliaries;
  /// Access frequencies of responsible peers for queries this node
  /// originated (feeds auxiliary selection).
  auxsel::FrequencyTable frequencies;

  explicit ChordNode(size_t freq_capacity,
                     const auxsel::FreqSketchParams& sketch = {})
      : frequencies(freq_capacity, sketch) {}
};

/// God's-eye event-driven Chord overlay: nodes, routing, stabilization.
///
/// The simulator routes iteratively with the paper's policy — the next hop
/// is the table entry (finger, successor, or auxiliary) closest to the key
/// without passing it clockwise — and models "ping before forwarding": dead
/// entries are skipped at use time, so stale tables degrade routes (longer
/// detours, occasional misdelivery) rather than black-holing them. Keys are
/// owned by their live *predecessor* (the paper's Chord variant).
///
/// Node state lives in an overlay::NodeStore: liveness probes and
/// responsible-node searches on the lookup hot path walk flat id-sorted
/// arrays instead of ordered-set trees, and routing tables are contiguous
/// arena slices (see common/node_store.h and common/flat_table_arena.h).
class ChordNetwork {
 public:
  using NodeType = ChordNode;

  explicit ChordNetwork(const ChordParams& params);

  const ChordParams& params() const { return params_; }
  const IdSpace& space() const { return space_; }

  /// Adds a live node with the given id and builds its tables from the
  /// current live membership. Other nodes learn of it only when they next
  /// stabilize. Fails on duplicate live id.
  Status AddNode(uint64_t id);

  /// Bulk join for large builds: inserts every id as a live node WITHOUT
  /// stabilizing (callers run StabilizeAll once after). O(n log n) total
  /// where the AddNode loop is quadratic. Fails (before any mutation) on
  /// out-of-range or duplicate ids.
  Status BulkAdd(const std::vector<uint64_t>& ids);

  /// Crashes a node: it disappears immediately; other nodes' table entries
  /// pointing at it become stale until their next stabilization. Node state
  /// (frequency history) is retained for a later rejoin unless
  /// `forget_state` is set.
  Status RemoveNode(uint64_t id, bool forget_state = false);

  /// Rejoins a previously crashed node: fresh tables, empty auxiliaries,
  /// retained frequency history.
  Status RejoinNode(uint64_t id);

  bool IsAlive(uint64_t id) const { return store_.IsAlive(id); }
  size_t live_count() const { return store_.live_count(); }
  std::vector<uint64_t> LiveNodeIds() const;

  /// Mutable node state (must exist). Nullptr if unknown.
  ChordNode* GetNode(uint64_t id) { return store_.Get(id); }
  const ChordNode* GetNode(uint64_t id) const { return store_.Get(id); }

  /// Routing-table views: contiguous arena slices, valid until the next
  /// mutation of the same node's tables.
  std::span<const uint64_t> Fingers(const ChordNode& node) const {
    return store_.tables().View(node.fingers);
  }
  std::span<const uint64_t> Successors(const ChordNode& node) const {
    return store_.tables().View(node.successors);
  }
  std::span<const uint64_t> Auxiliaries(const ChordNode& node) const {
    return store_.tables().View(node.auxiliaries);
  }

  /// Auxiliary list of `id` (empty when the node is unknown).
  std::span<const uint64_t> AuxiliarySpan(uint64_t id) const {
    const ChordNode* node = store_.Get(id);
    return node == nullptr ? std::span<const uint64_t>{} : Auxiliaries(*node);
  }

  /// Removes every occurrence of `entry` from `id`'s auxiliary list
  /// (dead-entry eviction). No-op when the node is unknown.
  void EraseAuxiliary(uint64_t id, uint64_t entry) {
    if (ChordNode* node = store_.Get(id)) {
      store_.tables().EraseValue(node->auxiliaries, entry);
    }
  }

  /// Footprint accounting (node records + indices + routing arena).
  overlay::StoreMemoryStats MemoryUsage() const {
    return store_.MemoryUsage();
  }

  /// Ground truth: the live node responsible for `key` (its predecessor on
  /// the ring). Fails if the overlay is empty.
  Result<uint64_t> ResponsibleNode(uint64_t key) const;

  /// Routes a lookup for `key` from `origin` over current (possibly stale)
  /// tables into a caller-owned result. Does not record frequencies;
  /// callers decide what to observe. `out` is cleared first but keeps its
  /// path capacity, so a reused RouteResult makes the steady-state lookup
  /// path allocation-free. When `trace` is non-null the route's per-hop
  /// records (source, next hop, core-vs-auxiliary entry, ring distance
  /// remaining) are appended to it; the default null path adds no per-hop
  /// work beyond one branch.
  ///
  /// When `faults` names an enabled fault::FaultPlan the route runs the
  /// resilient policy instead: every forwarding attempt passes the plan's
  /// deterministic drop / fail-stop / stale gates, a failed attempt is
  /// retried against the next-best live entry (bounded per visit by
  /// max_retries, globally by the hop budget), and failure bookkeeping
  /// lands in the RouteResult's resilience fields. A null or disabled plan
  /// takes the historical fault-free path bit-for-bit.
  ///
  /// When `latency` names an enabled latency::LatencyModel every delivered
  /// forward accrues its deterministic hop span (base RTT + jitter) and
  /// every failed attempt accrues the model's timeout, summed into
  /// RouteResult::latency_ms and tagged per hop on the trace. A null or
  /// disabled model leaves every latency field 0 and the route unchanged.
  Status LookupInto(uint64_t origin, uint64_t key, RouteResult& out,
                    RouteTrace* trace = nullptr,
                    const fault::FaultPlan* faults = nullptr,
                    const latency::LatencyModel* latency = nullptr) const;

  /// By-value convenience form of LookupInto.
  Result<RouteResult> Lookup(
      uint64_t origin, uint64_t key, RouteTrace* trace = nullptr,
      const fault::FaultPlan* faults = nullptr,
      const latency::LatencyModel* latency = nullptr) const;

  /// One suspended fault-free lookup for the batched engine. A cursor
  /// advances one hop per StepLookup using exactly the LookupInto next-hop
  /// policy (shared helper), so a batch of interleaved cursors produces
  /// hop-for-hop identical routes to sequential LookupInto calls.
  struct LookupCursor {
    uint64_t current = 0;
    uint64_t key = 0;
    uint64_t truth = 0;
    const ChordNode* node = nullptr;  // record of `current`
    int hops = 0;
    int aux_hops = 0;
    bool done = true;
    bool success = false;
    uint64_t destination = 0;
  };

  /// Positions `cursor` at `origin`. Fails (cursor stays done) when the
  /// origin is not alive or the overlay is empty — the same preconditions
  /// LookupInto enforces.
  Status BeginLookup(uint64_t origin, uint64_t key, LookupCursor& cursor)
      const;

  /// Advances one hop; no-op when the cursor is done.
  void StepLookup(LookupCursor& cursor) const;

  /// Prefetches the current node's record (stage 1 of the pipeline).
  void PrefetchNode(const LookupCursor& cursor) const {
    __builtin_prefetch(cursor.node, 0, 1);
  }

  /// Prefetches the current node's table slices (stage 2; assumes the
  /// record itself is already cached).
  void PrefetchTables(const LookupCursor& cursor) const {
    const overlay::FlatTableArena& tables = store_.tables();
    tables.Prefetch(cursor.node->fingers);
    tables.Prefetch(cursor.node->successors);
    tables.Prefetch(cursor.node->auxiliaries);
  }

  /// One suspended lookup at node-visit granularity for the message-driven
  /// runtime (src/net). Unlike LookupCursor this carries no pointers — every
  /// field is plain data, so an in-flight route can be serialized into a
  /// LOOKUP_STEP wire message and resumed by the next node's actor. It covers
  /// both the fault-free and the resilient (FaultPlan) policies; one
  /// StepRoute call performs exactly one node visit (next-hop selection plus
  /// the visit-local fault-gated retry loop), which is the boundary at which
  /// the message-driven runtime hands the lookup to the next actor.
  struct RouteCursor {
    uint64_t current = 0;
    uint64_t key = 0;
    uint64_t truth = 0;
    int hops_taken = 0;  ///< successful forwards (delivered path length)
    int spent = 0;  ///< resilient hop budget: successful + failed attempts
    int attempt = 0;  ///< resilient retransmission-decorrelation counter
    bool resilient = false;
    bool done = true;
  };

  /// Starts a route at `origin`: clears `out`, resolves ground truth, and
  /// seeds the trace header. On failure the cursor stays done — the same
  /// preconditions and status codes as LookupInto.
  Status BeginRoute(uint64_t origin, uint64_t key, RouteCursor& cursor,
                    RouteResult& out, RouteTrace* trace = nullptr,
                    const fault::FaultPlan* faults = nullptr,
                    const latency::LatencyModel* latency = nullptr) const;

  /// Performs one node visit, accumulating hops, path, trace records,
  /// latency spans, and resilience counters into `out`. LookupInto is
  /// implemented as BeginRoute + StepRoute-until-done, so the stepwise
  /// route is byte-for-byte the direct one. Pass the same `faults` /
  /// `latency` used at BeginRoute.
  void StepRoute(RouteCursor& cursor, RouteResult& out,
                 RouteTrace* trace = nullptr,
                 const fault::FaultPlan* faults = nullptr,
                 const latency::LatencyModel* latency = nullptr) const;

  /// One suspended ResponsibleNode search for the batched warmup engine: a
  /// bisection over the sorted live array advanced one probe per step. The
  /// upper bound is unique, so the finished cursor equals ResponsibleNode
  /// exactly; interleaving a window of cursors turns the warmup phase's
  /// dependent-miss binary searches into memory-level parallelism, the
  /// same trick LookupCursor plays for routes.
  struct ResponsibleCursor {
    uint64_t key = 0;
    size_t lo = 0;  ///< bisection bounds on the insertion point
    size_t hi = 0;
    bool done = true;
    uint64_t result = 0;
  };

  /// Positions `cursor` for `key`. Fails (cursor stays done) only when the
  /// overlay is empty — the same precondition as ResponsibleNode.
  Status BeginResponsible(uint64_t key, ResponsibleCursor& cursor) const;

  /// One bisection probe; resolves the owner when the bounds meet. No-op
  /// when the cursor is done.
  void StepResponsible(ResponsibleCursor& cursor) const;

  /// Prefetches the next probe's cache line.
  void PrefetchResponsible(const ResponsibleCursor& cursor) const {
    const std::vector<uint64_t>& live = store_.live_ids();
    if (cursor.lo < cursor.hi) {
      __builtin_prefetch(&live[cursor.lo + (cursor.hi - cursor.lo) / 2], 0,
                         1);
    }
  }

  /// Rebuilds `id`'s fingers and successor list from live membership
  /// (periodic stabilization). Dead auxiliaries are pruned (the paper's
  /// "stale auxiliary entries are marked/removed; fixed at the next
  /// selection").
  Status StabilizeNode(uint64_t id);

  /// Stabilizes every live node.
  void StabilizeAll();

  /// Installs auxiliary neighbors on a node (ids need not be alive; dead
  /// ones are simply useless until pruned). Serial-only: writes the arena.
  Status SetAuxiliaries(uint64_t id, std::vector<uint64_t> auxiliaries);

  /// Builds the core-neighbor list (fingers + successors, deduplicated)
  /// used as N_s for auxiliary selection at this node.
  std::vector<uint64_t> CoreNeighborIds(uint64_t id) const;

 private:
  /// Best next hop from `current` toward `key` over `node`'s tables —
  /// the single policy shared by LookupInto and StepLookup. `next ==
  /// current` means deliver here.
  struct NextHop {
    uint64_t next;
    uint64_t best_remaining;
    HopEntryKind kind;
  };
  NextHop SelectNextHop(const ChordNode& node, uint64_t current,
                        uint64_t key) const;

  /// One resilient node visit (the fault-gated retry loop of the classic
  /// LookupResilient body), shared by StepRoute's resilient branch.
  void StepResilient(RouteCursor& cursor, RouteResult& out, RouteTrace* trace,
                     const fault::FaultPlan& faults,
                     const latency::LatencyModel* latency) const;

  ChordParams params_;
  IdSpace space_;
  overlay::NodeStore<ChordNode> store_;  // all nodes ever seen (alive + dead)
  std::vector<uint64_t> scratch_;        // stabilize build buffer (serial)
};

}  // namespace peercache::chord

#endif  // PEERCACHE_CHORD_CHORD_NETWORK_H_
