#include "chord/chord_network.h"

#include <algorithm>
#include <cassert>

#include "common/bits.h"

namespace peercache::chord {

ChordNetwork::ChordNetwork(const ChordParams& params)
    : params_(params), space_(params.bits) {}

Status ChordNetwork::AddNode(uint64_t id) {
  if (!space_.Contains(id)) return Status::InvalidArgument("id out of range");
  if (live_.count(id)) return Status::InvalidArgument("live id already used");
  nodes_.try_emplace(id, params_.frequency_capacity).first->second.id = id;
  live_.insert(id);
  ChordNode& node = nodes_.at(id);
  node.alive = true;
  node.auxiliaries.clear();
  return StabilizeNode(id);
}

Status ChordNetwork::RemoveNode(uint64_t id, bool forget_state) {
  auto it = nodes_.find(id);
  if (it == nodes_.end() || !it->second.alive) {
    return Status::NotFound("node not alive");
  }
  it->second.alive = false;
  live_.erase(id);
  if (forget_state) {
    it->second.frequencies.Clear();
    it->second.fingers.clear();
    it->second.successors.clear();
    it->second.auxiliaries.clear();
  }
  return Status::Ok();
}

Status ChordNetwork::RejoinNode(uint64_t id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return Status::NotFound("unknown node");
  if (it->second.alive) return Status::FailedPrecondition("already alive");
  live_.insert(id);
  it->second.alive = true;
  it->second.auxiliaries.clear();  // lost on crash; rebuilt at next selection
  return StabilizeNode(id);
}

bool ChordNetwork::IsAlive(uint64_t id) const { return live_.count(id) > 0; }

std::vector<uint64_t> ChordNetwork::LiveNodeIds() const {
  return std::vector<uint64_t>(live_.begin(), live_.end());
}

ChordNode* ChordNetwork::GetNode(uint64_t id) {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : &it->second;
}

const ChordNode* ChordNetwork::GetNode(uint64_t id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : &it->second;
}

uint64_t ChordNetwork::FirstLiveAtOrAfter(uint64_t from) const {
  assert(!live_.empty());
  auto it = live_.lower_bound(from);
  if (it == live_.end()) it = live_.begin();
  return *it;
}

Result<uint64_t> ChordNetwork::ResponsibleNode(uint64_t key) const {
  if (live_.empty()) return Status::FailedPrecondition("empty overlay");
  // Predecessor assignment: the last live node at-or-before the key.
  auto it = live_.upper_bound(key);
  if (it == live_.begin()) return *live_.rbegin();  // wrap
  return *std::prev(it);
}

Status ChordNetwork::StabilizeNode(uint64_t id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end() || !it->second.alive) {
    return Status::NotFound("node not alive");
  }
  ChordNode& node = it->second;

  // Fingers (paper's variant): for each i, the numerically smallest live
  // node in (id + 2^i, id + 2^{i+1}].
  node.fingers.clear();
  for (int i = 0; i < params_.bits; ++i) {
    // (id + 2^i, id + 2^{i+1}]: first live node clockwise from id + 2^i + 1.
    const uint64_t start = space_.Add(id, (uint64_t{1} << i) + 1);
    const uint64_t end = space_.Add(id, LowBitMask(i + 1) + 1);  // + 2^{i+1}
    uint64_t candidate = FirstLiveAtOrAfter(start);
    if (candidate == id) continue;  // wrapped all the way around
    // Membership check: candidate within (id + 2^i, id + 2^{i+1}]?
    if (space_.InClockwiseRangeExclIncl(space_.Add(id, uint64_t{1} << i),
                                        candidate, end)) {
      node.fingers.push_back(candidate);
    }
  }

  // Successor list: the next successor_list_size live nodes clockwise.
  node.successors.clear();
  if (live_.size() > 1) {
    uint64_t cursor = FirstLiveAtOrAfter(space_.Add(id, 1));
    for (int i = 0;
         i < params_.successor_list_size && cursor != id;
         ++i) {
      node.successors.push_back(cursor);
      cursor = FirstLiveAtOrAfter(space_.Add(cursor, 1));
    }
  }

  // Prune dead auxiliaries (stale-entry removal).
  auto& aux = node.auxiliaries;
  aux.erase(std::remove_if(aux.begin(), aux.end(),
                           [this](uint64_t a) { return !IsAlive(a); }),
            aux.end());
  return Status::Ok();
}

void ChordNetwork::StabilizeAll() {
  for (uint64_t id : LiveNodeIds()) {
    (void)StabilizeNode(id);
  }
}

Status ChordNetwork::SetAuxiliaries(uint64_t id,
                                    std::vector<uint64_t> auxiliaries) {
  auto it = nodes_.find(id);
  if (it == nodes_.end() || !it->second.alive) {
    return Status::NotFound("node not alive");
  }
  it->second.auxiliaries = std::move(auxiliaries);
  return Status::Ok();
}

std::vector<uint64_t> ChordNetwork::CoreNeighborIds(uint64_t id) const {
  const ChordNode* node = GetNode(id);
  if (node == nullptr) return {};
  std::vector<uint64_t> out = node->fingers;
  out.insert(out.end(), node->successors.begin(), node->successors.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Result<RouteResult> ChordNetwork::Lookup(uint64_t origin, uint64_t key,
                                         RouteTrace* trace) const {
  if (!IsAlive(origin)) return Status::Unavailable("origin not alive");
  auto truth = ResponsibleNode(key);
  if (!truth.ok()) return truth.status();

  if (trace != nullptr) {
    trace->origin = origin;
    trace->key = key;
  }
  RouteResult result;
  uint64_t current = origin;
  for (int hop = 0; hop <= params_.max_route_hops; ++hop) {
    const ChordNode* node = GetNode(current);
    assert(node != nullptr);
    // Paper's policy: among live table entries between current and the key
    // (clockwise), pick the one closest to the key. Dead entries are skipped
    // ("ping before forwarding").
    uint64_t next = current;
    uint64_t best_remaining = space_.ClockwiseDistance(current, key);
    HopEntryKind next_kind = HopEntryKind::kFinger;
    auto consider = [&](uint64_t w, HopEntryKind kind) {
      if (w == current || !IsAlive(w)) return;
      if (!space_.InClockwiseRangeExclIncl(current, w, key)) return;
      uint64_t remaining = space_.ClockwiseDistance(w, key);
      if (remaining < best_remaining) {
        best_remaining = remaining;
        next = w;
        next_kind = kind;
      }
    };
    for (uint64_t w : node->fingers) consider(w, HopEntryKind::kFinger);
    for (uint64_t w : node->successors) consider(w, HopEntryKind::kSuccessor);
    for (uint64_t w : node->auxiliaries) consider(w, HopEntryKind::kAuxiliary);

    if (next == current) {
      // No live entry between here and the key: to this node's knowledge it
      // is the key's predecessor, so it answers.
      result.destination = current;
      result.hops = hop;
      result.success = (current == truth.value());
      if (trace != nullptr) {
        trace->destination = result.destination;
        trace->success = result.success;
        trace->hops = result.hops;
      }
      return result;
    }
    if (next_kind == HopEntryKind::kAuxiliary) ++result.aux_hops;
    if (trace != nullptr) {
      trace->path.push_back({current, next, next_kind, best_remaining});
    }
    result.path.push_back(current);
    current = next;
  }
  result.destination = current;
  result.hops = params_.max_route_hops;
  result.success = false;
  if (trace != nullptr) {
    trace->destination = result.destination;
    trace->success = false;
    trace->hops = result.hops;
  }
  return result;
}

}  // namespace peercache::chord
