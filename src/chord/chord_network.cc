#include "chord/chord_network.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/bits.h"
#include "common/overlay.h"

namespace peercache::chord {

static_assert(overlay::Overlay<ChordNetwork>,
              "ChordNetwork must satisfy the Overlay concept");

ChordNetwork::ChordNetwork(const ChordParams& params)
    : params_(params), space_(params.bits) {}

Status ChordNetwork::AddNode(uint64_t id) {
  if (!space_.Contains(id)) return Status::InvalidArgument("id out of range");
  if (store_.IsAlive(id)) {
    return Status::InvalidArgument("live id already used");
  }
  auto [node, inserted] = store_.Emplace(id, params_.frequency_capacity, params_.freq_sketch);
  node->id = id;
  node->alive = true;
  store_.tables().Clear(node->auxiliaries);
  store_.MarkAlive(id);
  return StabilizeNode(id);
}

Status ChordNetwork::BulkAdd(const std::vector<uint64_t>& ids) {
  for (uint64_t id : ids) {
    if (!space_.Contains(id)) {
      return Status::InvalidArgument("id out of range");
    }
    if (store_.IsAlive(id)) {
      return Status::InvalidArgument("live id already used");
    }
  }
  store_.Reserve(store_.size() + ids.size());
  for (uint64_t id : ids) {
    auto [node, inserted] = store_.Emplace(id, params_.frequency_capacity, params_.freq_sketch);
    node->id = id;
    node->alive = true;
    store_.tables().Clear(node->auxiliaries);
  }
  store_.BulkMarkAlive(ids);
  return Status::Ok();
}

Status ChordNetwork::RemoveNode(uint64_t id, bool forget_state) {
  ChordNode* node = store_.Get(id);
  if (node == nullptr || !node->alive) {
    return Status::NotFound("node not alive");
  }
  node->alive = false;
  store_.MarkDead(id);
  if (forget_state) {
    node->frequencies.Clear();
    store_.tables().Release(node->fingers);
    store_.tables().Release(node->successors);
    store_.tables().Release(node->auxiliaries);
  }
  return Status::Ok();
}

Status ChordNetwork::RejoinNode(uint64_t id) {
  ChordNode* node = store_.Get(id);
  if (node == nullptr) return Status::NotFound("unknown node");
  if (node->alive) return Status::FailedPrecondition("already alive");
  node->alive = true;
  // Auxiliaries are lost on crash; rebuilt at the next selection.
  store_.tables().Clear(node->auxiliaries);
  store_.MarkAlive(id);
  return StabilizeNode(id);
}

std::vector<uint64_t> ChordNetwork::LiveNodeIds() const {
  return store_.live_ids();
}

Result<uint64_t> ChordNetwork::ResponsibleNode(uint64_t key) const {
  const std::vector<uint64_t>& live = store_.live_ids();
  if (live.empty()) return Status::FailedPrecondition("empty overlay");
  // Predecessor assignment: the last live node at-or-before the key.
  const size_t pos = store_.UpperBoundLive(key);
  if (pos == 0) return live.back();  // wrap
  return live[pos - 1];
}

Status ChordNetwork::BeginResponsible(uint64_t key,
                                      ResponsibleCursor& cursor) const {
  cursor = ResponsibleCursor{};
  const std::vector<uint64_t>& live = store_.live_ids();
  if (live.empty()) return Status::FailedPrecondition("empty overlay");
  cursor.key = key;
  cursor.lo = 0;
  cursor.hi = live.size();
  cursor.done = false;
  return Status::Ok();
}

void ChordNetwork::StepResponsible(ResponsibleCursor& cursor) const {
  if (cursor.done) return;
  const std::vector<uint64_t>& live = store_.live_ids();
  // One probe of the upper-bound bisection: first index with id > key.
  const size_t mid = cursor.lo + (cursor.hi - cursor.lo) / 2;
  if (live[mid] <= cursor.key) {
    cursor.lo = mid + 1;
  } else {
    cursor.hi = mid;
  }
  if (cursor.lo < cursor.hi) return;
  // The bounds met at the unique upper bound: the predecessor owns the key
  // (wrapping), exactly ResponsibleNode's answer.
  cursor.result = cursor.lo == 0 ? live.back() : live[cursor.lo - 1];
  cursor.done = true;
}

Status ChordNetwork::StabilizeNode(uint64_t id) {
  ChordNode* node_ptr = store_.Get(id);
  if (node_ptr == nullptr || !node_ptr->alive) {
    return Status::NotFound("node not alive");
  }
  ChordNode& node = *node_ptr;
  overlay::FlatTableArena& tables = store_.tables();

  // Fingers (paper's variant): for each i, the numerically smallest live
  // node in (id + 2^i, id + 2^{i+1}].
  scratch_.clear();
  for (int i = 0; i < params_.bits; ++i) {
    // (id + 2^i, id + 2^{i+1}]: first live node clockwise from id + 2^i + 1.
    const uint64_t start = space_.Add(id, (uint64_t{1} << i) + 1);
    const uint64_t end = space_.Add(id, LowBitMask(i + 1) + 1);  // + 2^{i+1}
    uint64_t candidate = store_.FirstLiveAtOrAfter(start);
    if (candidate == id) continue;  // wrapped all the way around
    // Membership check: candidate within (id + 2^i, id + 2^{i+1}]?
    if (space_.InClockwiseRangeExclIncl(space_.Add(id, uint64_t{1} << i),
                                        candidate, end)) {
      scratch_.push_back(candidate);
    }
  }
  tables.Assign(node.fingers, scratch_);

  // Successor list: the next successor_list_size live nodes clockwise.
  scratch_.clear();
  if (store_.live_count() > 1) {
    uint64_t cursor = store_.FirstLiveAtOrAfter(space_.Add(id, 1));
    for (int i = 0;
         i < params_.successor_list_size && cursor != id;
         ++i) {
      scratch_.push_back(cursor);
      cursor = store_.FirstLiveAtOrAfter(space_.Add(cursor, 1));
    }
  }
  tables.Assign(node.successors, scratch_);

  // Prune dead auxiliaries (stale-entry removal).
  tables.EraseIf(node.auxiliaries,
                 [this](uint64_t a) { return !IsAlive(a); });
  return Status::Ok();
}

void ChordNetwork::StabilizeAll() {
  for (uint64_t id : LiveNodeIds()) {
    (void)StabilizeNode(id);
  }
}

Status ChordNetwork::SetAuxiliaries(uint64_t id,
                                    std::vector<uint64_t> auxiliaries) {
  ChordNode* node = store_.Get(id);
  if (node == nullptr || !node->alive) {
    return Status::NotFound("node not alive");
  }
  store_.tables().Assign(node->auxiliaries, auxiliaries);
  return Status::Ok();
}

std::vector<uint64_t> ChordNetwork::CoreNeighborIds(uint64_t id) const {
  const ChordNode* node = GetNode(id);
  if (node == nullptr) return {};
  const auto fingers = Fingers(*node);
  const auto successors = Successors(*node);
  std::vector<uint64_t> out(fingers.begin(), fingers.end());
  out.insert(out.end(), successors.begin(), successors.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

ChordNetwork::NextHop ChordNetwork::SelectNextHop(const ChordNode& node,
                                                  uint64_t current,
                                                  uint64_t key) const {
  // Paper's policy: among live table entries between current and the key
  // (clockwise), pick the one closest to the key. Dead entries are skipped
  // ("ping before forwarding").
  NextHop best{current, space_.ClockwiseDistance(current, key),
               HopEntryKind::kFinger};
  auto consider = [&](uint64_t w, HopEntryKind kind) {
    if (w == current || !IsAlive(w)) return;
    if (!space_.InClockwiseRangeExclIncl(current, w, key)) return;
    uint64_t remaining = space_.ClockwiseDistance(w, key);
    if (remaining < best.best_remaining) {
      best.best_remaining = remaining;
      best.next = w;
      best.kind = kind;
    }
  };
  for (uint64_t w : Fingers(node)) consider(w, HopEntryKind::kFinger);
  for (uint64_t w : Successors(node)) consider(w, HopEntryKind::kSuccessor);
  for (uint64_t w : Auxiliaries(node)) consider(w, HopEntryKind::kAuxiliary);
  return best;
}

Status ChordNetwork::LookupInto(uint64_t origin, uint64_t key,
                                RouteResult& out, RouteTrace* trace,
                                const fault::FaultPlan* faults,
                                const latency::LatencyModel* latency) const {
  RouteCursor cursor;
  if (Status s = BeginRoute(origin, key, cursor, out, trace, faults, latency);
      !s.ok()) {
    return s;
  }
  while (!cursor.done) StepRoute(cursor, out, trace, faults, latency);
  return Status::Ok();
}

Status ChordNetwork::BeginRoute(uint64_t origin, uint64_t key,
                                RouteCursor& cursor, RouteResult& out,
                                RouteTrace* trace,
                                const fault::FaultPlan* faults,
                                const latency::LatencyModel* latency) const {
  (void)latency;
  cursor = RouteCursor{};
  out.Clear();
  if (!IsAlive(origin)) return Status::Unavailable("origin not alive");
  auto truth = ResponsibleNode(key);
  if (!truth.ok()) return truth.status();
  cursor.current = origin;
  cursor.key = key;
  cursor.truth = truth.value();
  cursor.resilient = faults != nullptr && faults->enabled();
  cursor.done = false;
  if (trace != nullptr) {
    trace->origin = origin;
    trace->key = key;
  }
  return Status::Ok();
}

void ChordNetwork::StepRoute(RouteCursor& cursor, RouteResult& out,
                             RouteTrace* trace,
                             const fault::FaultPlan* faults,
                             const latency::LatencyModel* latency) const {
  if (cursor.done) return;
  if (cursor.resilient) {
    assert(faults != nullptr && faults->enabled());
    StepResilient(cursor, out, trace, *faults, latency);
    return;
  }

  const bool timed = latency != nullptr && latency->enabled();
  auto finish = [&](uint64_t destination, int hops, bool delivered) {
    out.destination = destination;
    out.hops = hops;
    out.success = delivered && destination == cursor.truth;
    if (trace != nullptr) {
      trace->destination = out.destination;
      trace->success = out.success;
      trace->hops = out.hops;
      trace->latency_ms = out.latency_ms;
    }
    cursor.done = true;
  };

  const ChordNode* node = GetNode(cursor.current);
  assert(node != nullptr);
  const NextHop sel = SelectNextHop(*node, cursor.current, cursor.key);
  if (sel.next == cursor.current) {
    // No live entry between here and the key: to this node's knowledge it
    // is the key's predecessor, so it answers.
    finish(cursor.current, cursor.hops_taken, /*delivered=*/true);
    return;
  }
  if (sel.kind == HopEntryKind::kAuxiliary) ++out.aux_hops;
  if (trace != nullptr) {
    trace->path.push_back({cursor.current, sel.next, sel.kind,
                           sel.best_remaining});
  }
  if (timed) {
    const double ms = latency->HopLatencyMs(cursor.key, cursor.current,
                                            sel.next, cursor.hops_taken);
    out.latency_ms += ms;
    if (trace != nullptr) trace->path.back().latency_ms = ms;
  }
  out.path.push_back(cursor.current);
  cursor.current = sel.next;
  ++cursor.hops_taken;
  if (cursor.hops_taken > params_.max_route_hops) {
    // Same hop-budget failure the classic loop reports.
    finish(cursor.current, params_.max_route_hops, /*delivered=*/false);
  }
}

Status ChordNetwork::BeginLookup(uint64_t origin, uint64_t key,
                                 LookupCursor& cursor) const {
  cursor = LookupCursor{};
  if (!IsAlive(origin)) return Status::Unavailable("origin not alive");
  auto truth = ResponsibleNode(key);
  if (!truth.ok()) return truth.status();
  cursor.current = origin;
  cursor.key = key;
  cursor.truth = truth.value();
  cursor.node = GetNode(origin);
  cursor.done = false;
  return Status::Ok();
}

void ChordNetwork::StepLookup(LookupCursor& cursor) const {
  if (cursor.done) return;
  const NextHop sel = SelectNextHop(*cursor.node, cursor.current, cursor.key);
  if (sel.next == cursor.current) {
    cursor.destination = cursor.current;
    cursor.success = (cursor.current == cursor.truth);
    cursor.done = true;
    return;
  }
  if (sel.kind == HopEntryKind::kAuxiliary) ++cursor.aux_hops;
  cursor.current = sel.next;
  cursor.node = GetNode(sel.next);
  ++cursor.hops;
  if (cursor.hops > params_.max_route_hops) {
    // Same hop-budget failure LookupInto reports.
    cursor.destination = cursor.current;
    cursor.hops = params_.max_route_hops;
    cursor.success = false;
    cursor.done = true;
  }
}

void ChordNetwork::StepResilient(RouteCursor& cursor, RouteResult& out,
                                 RouteTrace* trace,
                                 const fault::FaultPlan& faults,
                                 const latency::LatencyModel* latency) const {
  const bool timed = latency != nullptr && latency->enabled();
  auto finish = [&](uint64_t destination, int hops, bool delivered) {
    out.destination = destination;
    out.hops = hops;
    out.success = delivered && destination == cursor.truth;
    if (trace != nullptr) {
      trace->destination = out.destination;
      trace->success = out.success;
      trace->hops = out.hops;
      trace->latency_ms = out.latency_ms;
    }
    cursor.done = true;
  };

  // Classic outer-loop guard: a previous visit may have spent the budget.
  if (cursor.spent > params_.max_route_hops) {
    out.budget_exhausted = true;
    finish(cursor.current, params_.max_route_hops, /*delivered=*/false);
    return;
  }

  const uint64_t key = cursor.key;
  const uint64_t current = cursor.current;
  const ChordNode* node = GetNode(current);
  assert(node != nullptr);
  // Per-visit exclusion sets. Entries that turned out dead (fail-stop or
  // stale) are never retried; drop-excluded entries become eligible again
  // only when no alternative makes progress (retransmission). These are
  // visit-local, which is why a resilient route serializes across messages
  // with nothing but the RouteCursor's plain fields.
  std::vector<uint64_t> dead_here;
  std::vector<uint64_t> dropped_here;
  int retries_here = 0;

  // Per-visit retry loop: select the best non-excluded entry, run it
  // through the fault gates, and either forward or exclude and retry.
  while (true) {
    uint64_t next = current;
    uint64_t best_remaining = space_.ClockwiseDistance(current, key);
    HopEntryKind next_kind = HopEntryKind::kFinger;
    bool next_is_dead = false;

    auto excluded = [](const std::vector<uint64_t>& set, uint64_t w) {
      return std::find(set.begin(), set.end(), w) != set.end();
    };
    auto scan = [&](bool allow_retransmit) {
      next = current;
      best_remaining = space_.ClockwiseDistance(current, key);
      auto consider = [&](uint64_t w, HopEntryKind kind) {
        if (w == current || excluded(dead_here, w)) return;
        if (!allow_retransmit && excluded(dropped_here, w)) return;
        const bool alive = IsAlive(w);
        // Ping-before-forward still skips known-dead entries — unless
        // this lookup falls inside the entry's stale window, in which
        // case the holder believes the ping and forwards into the void.
        if (!alive && !faults.StaleBelievedAlive(key, current, w)) return;
        if (!space_.InClockwiseRangeExclIncl(current, w, key)) return;
        const uint64_t remaining = space_.ClockwiseDistance(w, key);
        if (remaining < best_remaining) {
          best_remaining = remaining;
          next = w;
          next_kind = kind;
          next_is_dead = !alive;
        }
      };
      for (uint64_t w : Fingers(*node)) consider(w, HopEntryKind::kFinger);
      for (uint64_t w : Successors(*node)) {
        consider(w, HopEntryKind::kSuccessor);
      }
      for (uint64_t w : Auxiliaries(*node)) {
        consider(w, HopEntryKind::kAuxiliary);
      }
    };
    scan(/*allow_retransmit=*/false);
    if (next == current && !dropped_here.empty()) {
      scan(/*allow_retransmit=*/true);
    }

    if (next == current) {
      // No believed-live entry between here and the key: to this node's
      // knowledge it is the key's predecessor, so it answers.
      finish(current, cursor.hops_taken, /*delivered=*/true);
      return;
    }

    // Fault gates, in failure-cause order: a dead entry can never
    // receive, a fail-stopped target is down for this whole lookup, and
    // an otherwise-healthy forward can still lose its message.
    bool failed = false;
    if (next_is_dead) {
      ++out.stale_forwards;
      out.dead_evictions.emplace_back(current, next);
      dead_here.push_back(next);
      failed = true;
    } else if (faults.FailStopped(key, next)) {
      ++out.failstop_skips;
      dead_here.push_back(next);
      failed = true;
    } else if (faults.DropForward(key, current, next, cursor.attempt++)) {
      ++out.dropped_forwards;
      dropped_here.push_back(next);
      failed = true;
    }

    if (!failed) {
      if (next_kind == HopEntryKind::kAuxiliary) ++out.aux_hops;
      if (trace != nullptr) {
        trace->path.push_back({current, next, next_kind, best_remaining,
                               /*dropped=*/false,
                               /*retried=*/retries_here > 0});
      }
      if (timed) {
        const double ms =
            latency->HopLatencyMs(key, current, next, cursor.spent);
        out.latency_ms += ms;
        if (trace != nullptr) trace->path.back().latency_ms = ms;
      }
      out.path.push_back(current);
      cursor.current = next;
      ++cursor.hops_taken;
      ++cursor.spent;
      return;  // next node visit = next StepRoute
    }

    // Failed attempt: charge budgets, honor the retry policy.
    ++out.retries;
    ++retries_here;
    ++cursor.spent;
    if (trace != nullptr) {
      trace->path.push_back({current, next, next_kind, best_remaining,
                             /*dropped=*/true, /*retried=*/false});
    }
    if (timed) {
      const double ms = latency->FailedAttemptMs();
      out.latency_ms += ms;
      if (trace != nullptr) trace->path.back().latency_ms = ms;
    }
    if (!faults.config().retry) {
      finish(current, cursor.hops_taken, /*delivered=*/false);
      return;
    }
    if (retries_here > faults.config().max_retries ||
        cursor.spent > params_.max_route_hops) {
      out.budget_exhausted = true;
      finish(current, cursor.hops_taken, /*delivered=*/false);
      return;
    }
  }
}

Result<RouteResult> ChordNetwork::Lookup(
    uint64_t origin, uint64_t key, RouteTrace* trace,
    const fault::FaultPlan* faults,
    const latency::LatencyModel* latency) const {
  RouteResult result;
  if (Status s = LookupInto(origin, key, result, trace, faults, latency);
      !s.ok()) {
    return s;
  }
  return result;
}

}  // namespace peercache::chord
