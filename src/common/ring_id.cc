#include "common/ring_id.h"

namespace peercache {

std::string IdSpace::ToBinaryString(uint64_t id) const {
  std::string out(static_cast<size_t>(bits_), '0');
  for (int i = 0; i < bits_; ++i) {
    if (IdBit(id, bits_, i)) out[static_cast<size_t>(i)] = '1';
  }
  return out;
}

}  // namespace peercache
