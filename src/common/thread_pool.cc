#include "common/thread_pool.h"

#include <atomic>
#include <exception>
#include <limits>
#include <utility>

namespace peercache {

namespace {

/// Shared state of one ParallelFor call. Workers pull chunk indices from
/// `next_chunk`; the lowest-chunk exception wins so reruns of a failing
/// loop rethrow the same error regardless of thread timing.
struct LoopState {
  size_t begin = 0;
  size_t end = 0;
  size_t grain = 1;
  size_t n_chunks = 0;
  const std::function<void(size_t)>* fn = nullptr;

  std::atomic<size_t> next_chunk{0};

  std::mutex mutex;
  std::condition_variable done_cv;
  int pending_runners = 0;
  size_t error_chunk = std::numeric_limits<size_t>::max();
  std::exception_ptr error;

  void RunChunks() {
    for (;;) {
      const size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= n_chunks) return;
      const size_t chunk_begin = begin + c * grain;
      const size_t chunk_end = std::min(end, chunk_begin + grain);
      try {
        for (size_t i = chunk_begin; i < chunk_end; ++i) (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (c < error_chunk) {
          error_chunk = c;
          error = std::current_exception();
        }
      }
    }
  }
};

}  // namespace

int ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int ResolveThreads(int configured) {
  return configured <= 0 ? ThreadPool::DefaultThreads() : configured;
}

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads <= 0 ? DefaultThreads() : num_threads) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int t = 1; t < num_threads_; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with no work left
      task = std::move(queue_.back());
      queue_.pop_back();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const std::function<void(size_t)>& fn) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;

  const size_t range = end - begin;
  const size_t n_chunks = (range + grain - 1) / grain;
  // Serial path: one worker, one chunk, or nothing to share — run inline
  // with no synchronization so `threads = 1` reproduces the legacy loop.
  if (num_threads_ == 1 || n_chunks == 1) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  LoopState state;
  state.begin = begin;
  state.end = end;
  state.grain = grain;
  state.n_chunks = n_chunks;
  state.fn = &fn;

  // Enqueue one runner per helper thread (capped by chunk count); the
  // caller is itself a runner, so the pool's thread budget is respected.
  const size_t helpers =
      std::min(static_cast<size_t>(num_threads_ - 1), n_chunks - 1);
  state.pending_runners = static_cast<int>(helpers);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (size_t t = 0; t < helpers; ++t) {
      queue_.emplace_back([&state] {
        state.RunChunks();
        std::lock_guard<std::mutex> state_lock(state.mutex);
        if (--state.pending_runners == 0) state.done_cv.notify_one();
      });
    }
  }
  work_cv_.notify_all();

  state.RunChunks();
  {
    std::unique_lock<std::mutex> lock(state.mutex);
    state.done_cv.wait(lock, [&state] { return state.pending_runners == 0; });
    if (state.error) std::rethrow_exception(state.error);
  }
}

}  // namespace peercache
