#ifndef PEERCACHE_COMMON_STATUS_H_
#define PEERCACHE_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace peercache {

/// Canonical error codes, modeled after absl::StatusCode / RocksDB Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInfeasible,   ///< A constrained optimization has no feasible solution.
  kUnavailable,  ///< A peer required for the operation is offline.
  kInternal,
};

/// Returns a stable human-readable name for a status code.
const char* StatusCodeName(StatusCode code);

/// Lightweight status object used instead of exceptions across the library
/// boundary. Cheap to copy in the OK case (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// A value-or-status holder (minimal absl::StatusOr equivalent).
///
/// Accessing `value()` on a non-OK result is a programming error and asserts
/// in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return value;` in functions returning
  /// Result<T>.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status: allows `return Status::NotFound(...);`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace peercache

#endif  // PEERCACHE_COMMON_STATUS_H_
