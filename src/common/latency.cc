#include "common/latency.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/json_writer.h"
#include "common/random.h"

namespace peercache::latency {

namespace {

/// Domain-separation salts: coordinates and jitter draw from unrelated
/// hash streams, and both are unrelated to the fault plan's salts even
/// under an identical seed.
constexpr uint64_t kCoordXSalt = 0x636f6f72'64207821ULL;  // "coord x!"
constexpr uint64_t kCoordYSalt = 0x636f6f72'64207921ULL;  // "coord y!"
constexpr uint64_t kJitterSalt = 0x6a697474'65726d73ULL;  // "jitterms"

/// Chains the SplitMix64 finalizer over a tuple of words (same construction
/// as fault::FaultPlan and SplitSeed).
uint64_t MixChain(uint64_t h, uint64_t word) {
  return MixHash64(h ^ MixHash64(word));
}

/// Uniform double in [0, 1) from a hash value.
double UnitFromHash(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

LatencyModel::LatencyModel(const LatencyConfig& config) : config_(config) {}

LatencyModel::LatencyModel(const LatencyConfig& config, PingMatrix matrix)
    : config_(config), matrix_(std::move(matrix)) {
  matrix_index_.reserve(matrix_.ids.size());
  for (size_t i = 0; i < matrix_.ids.size(); ++i) {
    matrix_index_.emplace_back(matrix_.ids[i], i);
  }
  std::sort(matrix_index_.begin(), matrix_index_.end());
}

std::pair<double, double> LatencyModel::Coordinate(uint64_t node) const {
  const uint64_t hx = MixChain(MixChain(config_.seed, kCoordXSalt), node);
  const uint64_t hy = MixChain(MixChain(config_.seed, kCoordYSalt), node);
  return {UnitFromHash(hx), UnitFromHash(hy)};
}

size_t LatencyModel::MatrixIndex(uint64_t id) const {
  const auto it = std::lower_bound(
      matrix_index_.begin(), matrix_index_.end(),
      std::make_pair(id, size_t{0}),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  if (it == matrix_index_.end() || it->first != id) {
    return static_cast<size_t>(-1);
  }
  return it->second;
}

double LatencyModel::BaseRttMs(uint64_t from, uint64_t to) const {
  if (from == to) return 0.0;
  if (!matrix_.empty()) {
    const size_t i = MatrixIndex(from);
    const size_t j = MatrixIndex(to);
    if (i != static_cast<size_t>(-1) && j != static_cast<size_t>(-1)) {
      return matrix_.rtt_ms[i * matrix_.ids.size() + j];
    }
  }
  const auto [fx, fy] = Coordinate(from);
  const auto [tx, ty] = Coordinate(to);
  const double dx = fx - tx;
  const double dy = fy - ty;
  // std::sqrt is correctly rounded per IEEE 754, so the distance — unlike a
  // log/exp-based formula — is bit-identical on every platform.
  return config_.base_rtt_ms +
         config_.coord_scale_ms * std::sqrt(dx * dx + dy * dy);
}

double LatencyModel::HopLatencyMs(uint64_t key, uint64_t from, uint64_t to,
                                  int attempt) const {
  double ms = BaseRttMs(from, to);
  if (config_.jitter_ms > 0.0) {
    uint64_t h = MixChain(config_.seed, kJitterSalt);
    h = MixChain(h, key);
    h = MixChain(h, from);
    h = MixChain(h, to);
    h = MixChain(h, static_cast<uint64_t>(attempt));
    ms += config_.jitter_ms * UnitFromHash(h);
  }
  return ms;
}

Result<PingMatrix> LoadPingMatrix(const std::string& text) {
  std::istringstream in(text);
  std::string header;
  if (!std::getline(in, header) || header != "peercache-ping-matrix v1") {
    return Status::InvalidArgument("ping matrix: bad header");
  }
  std::string tag;
  size_t n = 0;
  if (!(in >> tag >> n) || tag != "n") {
    return Status::InvalidArgument("ping matrix: expected 'n <N>'");
  }
  if (n == 0) return Status::InvalidArgument("ping matrix: n must be > 0");
  PingMatrix m;
  if (!(in >> tag) || tag != "ids") {
    return Status::InvalidArgument("ping matrix: expected 'ids ...'");
  }
  m.ids.resize(n);
  for (size_t i = 0; i < n; ++i) {
    if (!(in >> m.ids[i])) {
      return Status::InvalidArgument("ping matrix: truncated id list");
    }
  }
  m.rtt_ms.assign(n * n, 0.0);
  for (size_t r = 0; r < n; ++r) {
    size_t row = 0;
    if (!(in >> tag >> row) || tag != "row" || row != r) {
      return Status::InvalidArgument("ping matrix: expected row " +
                                     std::to_string(r));
    }
    for (size_t c = 0; c < n; ++c) {
      std::string cell;
      if (!(in >> cell)) {
        return Status::InvalidArgument("ping matrix: truncated row " +
                                       std::to_string(r));
      }
      char* end = nullptr;
      m.rtt_ms[r * n + c] = std::strtod(cell.c_str(), &end);
      if (end == cell.c_str() || *end != '\0') {
        return Status::InvalidArgument("ping matrix: bad value '" + cell +
                                       "'");
      }
    }
  }
  return m;
}

std::string EmitPingMatrix(const PingMatrix& matrix) {
  const size_t n = matrix.ids.size();
  std::string out = "peercache-ping-matrix v1\n";
  out += "n ";
  out += std::to_string(n);
  out += "\nids";
  for (uint64_t id : matrix.ids) {
    out += ' ';
    out += std::to_string(id);
  }
  out += "\n";
  for (size_t r = 0; r < n; ++r) {
    out += "row ";
    out += std::to_string(r);
    for (size_t c = 0; c < n; ++c) {
      out += ' ';
      out += JsonWriter::FormatDouble(matrix.rtt_ms[r * n + c]);
    }
    out += "\n";
  }
  return out;
}

Result<PingMatrix> LoadPingMatrixFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    return Status::NotFound("cannot open ping matrix file: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return LoadPingMatrix(buf.str());
}

}  // namespace peercache::latency
