#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace peercache {

namespace {

/// One Neumaier-compensated addition: accumulates the rounding error of
/// `sum += x` into `compensation` so sum+compensation stays exact.
void CompensatedAdd(double& sum, double& compensation, double x) {
  const double t = sum + x;
  if (std::abs(sum) >= std::abs(x)) {
    compensation += (sum - t) + x;
  } else {
    compensation += (x - t) + sum;
  }
  sum = t;
}

/// Log-spaced bucket upper bounds, built by repeated multiplication from
/// literal constants so every platform computes the identical table (libm
/// log/exp are *not* bit-stable across implementations; a plain double
/// multiply is).
const std::vector<double>& LogBucketBounds() {
  static const std::vector<double> bounds = [] {
    constexpr double kFirstBound = 0.1;
    constexpr double kGrowth = 1.189207115002721;  // 2^(1/4)
    constexpr size_t kBuckets = 96;
    std::vector<double> b;
    b.reserve(kBuckets);
    double bound = kFirstBound;
    for (size_t i = 0; i < kBuckets; ++i) {
      b.push_back(bound);
      bound *= kGrowth;
    }
    return b;
  }();
  return bounds;
}

}  // namespace

void OnlineStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  CompensatedAdd(sum_, sum_compensation_, x);
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::Merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  CompensatedAdd(sum_, sum_compensation_, other.sum_);
  CompensatedAdd(sum_, sum_compensation_, other.sum_compensation_);
  uint64_t n = count_ + other.count_;
  double delta = other.mean_ - mean_;
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  mean_ += delta * nb / static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = n;
}

double OnlineStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(int max_value)
    : buckets_(static_cast<size_t>(max_value) + 1, 0) {
  assert(max_value >= 0);
}

void Histogram::Add(int value) {
  assert(value >= 0);
  ++count_;
  sum_ += value;
  if (static_cast<size_t>(value) < buckets_.size()) {
    ++buckets_[static_cast<size_t>(value)];
  } else {
    ++overflow_;
  }
}

void Histogram::Merge(const Histogram& other) {
  assert(buckets_.size() == other.buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  overflow_ += other.overflow_;
  count_ += other.count_;
  sum_ += other.sum_;
}

uint64_t Histogram::BucketCount(int value) const {
  assert(value >= 0 && static_cast<size_t>(value) < buckets_.size());
  return buckets_[static_cast<size_t>(value)];
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

int Histogram::ValueAtRank(uint64_t rank) const {
  uint64_t acc = 0;
  for (size_t v = 0; v < buckets_.size(); ++v) {
    acc += buckets_[v];
    if (acc > rank) return static_cast<int>(v);
  }
  return static_cast<int>(buckets_.size());  // overflow bucket
}

double Histogram::Percentile(double q) const {
  assert(q >= 0.0 && q <= 1.0);
  if (count_ == 0) return 0.0;
  const double rank = q * static_cast<double>(count_ - 1);
  const uint64_t lo_rank = static_cast<uint64_t>(rank);
  const double frac = rank - static_cast<double>(lo_rank);
  const int lo = ValueAtRank(lo_rank);
  if (frac == 0.0) return static_cast<double>(lo);
  const int hi = ValueAtRank(lo_rank + 1);
  return static_cast<double>(lo) + frac * static_cast<double>(hi - lo);
}

int Histogram::PercentileRank(double q) const {
  assert(q >= 0.0 && q <= 1.0);
  if (count_ == 0) return 0;
  uint64_t target = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  if (target == 0) target = 1;
  uint64_t acc = 0;
  for (size_t v = 0; v < buckets_.size(); ++v) {
    acc += buckets_[v];
    if (acc >= target) return static_cast<int>(v);
  }
  return static_cast<int>(buckets_.size());  // overflow bucket
}

std::string Histogram::Summary() const {
  std::ostringstream os;
  os << "count=" << count_ << " mean=" << Mean()
     << " p50=" << PercentileRank(0.5) << " p99=" << PercentileRank(0.99)
     << " overflow=" << overflow_;
  return os.str();
}

LogHistogram::LogHistogram() : counts_(LogBucketBounds().size() + 1, 0) {}

void LogHistogram::Add(double value) {
  if (value < 0.0) value = 0.0;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  CompensatedAdd(sum_, sum_compensation_, value);
  const std::vector<double>& bounds = LogBucketBounds();
  const size_t index = static_cast<size_t>(
      std::upper_bound(bounds.begin(), bounds.end(), value) - bounds.begin());
  ++counts_[index];
}

void LogHistogram::Merge(const LogHistogram& other) {
  assert(counts_.size() == other.counts_.size());
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  CompensatedAdd(sum_, sum_compensation_, other.sum_);
  CompensatedAdd(sum_, sum_compensation_, other.sum_compensation_);
}

double LogHistogram::Mean() const {
  return count_ == 0 ? 0.0 : sum() / static_cast<double>(count_);
}

double LogHistogram::BucketLowerBound(size_t index) const {
  return index == 0 ? 0.0 : LogBucketBounds()[index - 1];
}

double LogHistogram::BucketUpperBound(size_t index) const {
  const std::vector<double>& bounds = LogBucketBounds();
  return index < bounds.size() ? bounds[index] : max_;
}

double LogHistogram::Percentile(double q) const {
  assert(q >= 0.0 && q <= 1.0);
  if (count_ == 0) return 0.0;
  const double target = q * static_cast<double>(count_);
  double acc = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const double c = static_cast<double>(counts_[i]);
    if (c == 0.0) continue;
    if (acc + c >= target) {
      const double lo = BucketLowerBound(i);
      const double hi = std::max(BucketUpperBound(i), lo);
      const double frac =
          std::min(1.0, std::max(0.0, (target - acc) / c));
      const double v = lo + frac * (hi - lo);
      return std::min(std::max(v, min_), max_);
    }
    acc += c;
  }
  return max_;
}

}  // namespace peercache
