#ifndef PEERCACHE_COMMON_PROFILER_H_
#define PEERCACHE_COMMON_PROFILER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/json_writer.h"

namespace peercache {

/// Process-global phase profiler: named scoped timer spans accumulated into
/// one table, reported in sorted-name order so two runs that execute the
/// same phases produce structurally identical reports (call counts are
/// deterministic; the measured seconds are wall clock, like every other
/// timer in the telemetry). Disabled by default — a disabled ScopedProfile
/// costs one relaxed atomic load and no clock read.
class Profiler {
 public:
  struct Span {
    std::string name;
    uint64_t calls = 0;
    double seconds = 0.0;
  };

  static Profiler& Global();

  void Enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Drops every accumulated span (the enabled flag is unaffected).
  void Reset();

  /// Accumulates one completed span. Thread-safe; concurrent spans with the
  /// same name merge by addition.
  void Record(const std::string& name, double seconds);

  /// Snapshot of all spans, sorted by name.
  std::vector<Span> Report() const;

  /// {"<name>": {"calls": N, "seconds": S}, ...} in sorted-name order.
  void WriteJson(JsonWriter& w) const;

 private:
  mutable std::mutex mu_;
  std::atomic<bool> enabled_{false};
  std::map<std::string, Span> spans_;
};

/// RAII span against the global profiler. The name must outlive the scope
/// (string literals do).
class ScopedProfile {
 public:
  explicit ScopedProfile(const char* name)
      : name_(name), active_(Profiler::Global().enabled()) {
    if (active_) start_ = std::chrono::steady_clock::now();
  }

  ScopedProfile(const ScopedProfile&) = delete;
  ScopedProfile& operator=(const ScopedProfile&) = delete;

  ~ScopedProfile() {
    if (!active_) return;
    const auto end = std::chrono::steady_clock::now();
    Profiler::Global().Record(
        name_, std::chrono::duration<double>(end - start_).count());
  }

 private:
  const char* name_;
  bool active_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace peercache

#endif  // PEERCACHE_COMMON_PROFILER_H_
