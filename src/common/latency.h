#ifndef PEERCACHE_COMMON_LATENCY_H_
#define PEERCACHE_COMMON_LATENCY_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace peercache::latency {

/// Link-latency knobs. Like fault injection, the model is deterministic by
/// construction: node coordinates and per-attempt jitter are stateless
/// hashes of (seed, identity), never RNG-stream draws, so a latency-enabled
/// run is a pure function of (latency seed, workload) at any thread count —
/// and routing RNG streams are untouched whether the model is on or off.
struct LatencyConfig {
  /// Per-hop propagation floor in milliseconds.
  double base_rtt_ms = 0.0;
  /// Milliseconds per unit of Euclidean distance between the two endpoint
  /// coordinates in the synthetic unit square (heterogeneity knob: 0 makes
  /// every link cost the same, large values spread the RTT distribution).
  double coord_scale_ms = 0.0;
  /// Upper bound of the uniform per-attempt jitter added on top of the
  /// deterministic base RTT.
  double jitter_ms = 0.0;
  /// Time charged for one *failed* forwarding attempt (drop or dead-entry
  /// timeout) before the router retries — this is how PR 5 retransmissions
  /// accrue real time cost.
  double timeout_ms = 0.0;
  /// Seed of the coordinate/jitter hash space. Independent of both the
  /// experiment seed and the fault seed.
  uint64_t seed = 0;

  bool enabled() const {
    return base_rtt_ms > 0.0 || coord_scale_ms > 0.0 || jitter_ms > 0.0;
  }
};

/// Measured pairwise RTTs for a fixed node set: `rtt_ms[i*n + j]` is the
/// one-way latency estimate between `ids[i]` and `ids[j]`. Loadable from /
/// emittable to a line-based text format that round-trips byte-exactly.
struct PingMatrix {
  std::vector<uint64_t> ids;  ///< Row/column order (need not be sorted).
  std::vector<double> rtt_ms;  ///< ids.size()^2 entries, row-major.

  bool empty() const { return ids.empty(); }
};

/// Parses the text format produced by EmitPingMatrix:
///
///   peercache-ping-matrix v1
///   n <N>
///   ids <id_0> ... <id_{N-1}>
///   row <i> <rtt_i0> ... <rtt_i{N-1}>     (one line per row)
Result<PingMatrix> LoadPingMatrix(const std::string& text);

/// Renders a matrix to the canonical text form (shortest round-trip double
/// formatting, so Load(Emit(m)) reproduces m exactly).
std::string EmitPingMatrix(const PingMatrix& matrix);

Result<PingMatrix> LoadPingMatrixFile(const std::string& path);

/// Deterministic link-latency oracle handed to LookupInto alongside the
/// fault plan. Synthetic mode assigns every node a coordinate in the unit
/// square as a pure hash of (seed, node id) — no per-node state, so the
/// model needs no setup pass and cannot depend on construction order or
/// thread count. When a ping matrix is attached, pairs present in the
/// matrix use the measured RTT and unknown nodes fall back to coordinates.
class LatencyModel {
 public:
  /// Inert model: enabled() is false, every latency is 0.
  LatencyModel() = default;
  explicit LatencyModel(const LatencyConfig& config);
  LatencyModel(const LatencyConfig& config, PingMatrix matrix);

  const LatencyConfig& config() const { return config_; }
  bool enabled() const { return config_.enabled(); }
  const PingMatrix& matrix() const { return matrix_; }

  /// Synthetic coordinate of `node` in [0,1)^2.
  std::pair<double, double> Coordinate(uint64_t node) const;

  /// Deterministic propagation cost of the link from -> to: the matrix RTT
  /// when both endpoints are known, else base + scale * euclidean distance
  /// between the synthetic coordinates. Symmetric; 0 for from == to.
  double BaseRttMs(uint64_t from, uint64_t to) const;

  /// Full cost of one successful forwarding attempt: BaseRttMs plus the
  /// per-attempt jitter hash of (key, from, to, attempt). The attempt
  /// counter decorrelates retransmissions exactly like FaultPlan's.
  double HopLatencyMs(uint64_t key, uint64_t from, uint64_t to,
                      int attempt) const;

  /// Cost charged for one failed forwarding attempt before the retry.
  double FailedAttemptMs() const { return config_.timeout_ms; }

 private:
  /// Matrix index of `id`, or npos when absent.
  size_t MatrixIndex(uint64_t id) const;

  LatencyConfig config_;
  PingMatrix matrix_;
  std::vector<std::pair<uint64_t, size_t>> matrix_index_;  ///< Sorted by id.
};

}  // namespace peercache::latency

#endif  // PEERCACHE_COMMON_LATENCY_H_
