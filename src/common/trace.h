#ifndef PEERCACHE_COMMON_TRACE_H_
#define PEERCACHE_COMMON_TRACE_H_

#include <cstdint>
#include <vector>

namespace peercache {

/// Which routing-table entry a hop was forwarded through. Chord hops use
/// kFinger / kSuccessor / kAuxiliary; Pastry hops use kRoutingRow /
/// kLeafSet / kAuxiliary; Kademlia hops use kBucket / kAuxiliary.
/// Core-vs-auxiliary is the distinction the paper's argument turns on:
/// auxiliary hops are the ones peer caching added.
enum class HopEntryKind : uint8_t {
  kFinger = 0,
  kSuccessor,
  kRoutingRow,
  kLeafSet,
  kAuxiliary,
  kBucket,
};

inline const char* HopEntryKindName(HopEntryKind kind) {
  switch (kind) {
    case HopEntryKind::kFinger:
      return "finger";
    case HopEntryKind::kSuccessor:
      return "successor";
    case HopEntryKind::kRoutingRow:
      return "routing_row";
    case HopEntryKind::kLeafSet:
      return "leaf_set";
    case HopEntryKind::kAuxiliary:
      return "auxiliary";
    case HopEntryKind::kBucket:
      return "bucket";
  }
  return "?";
}

inline bool IsAuxiliaryHop(HopEntryKind kind) {
  return kind == HopEntryKind::kAuxiliary;
}

/// One forwarding step of a traced lookup.
struct HopRecord {
  uint64_t from = 0;          ///< Node that forwarded the query.
  uint64_t to = 0;            ///< Next-hop node id.
  HopEntryKind kind = HopEntryKind::kFinger;  ///< Table entry used.
  /// Distance-to-key remaining *after* the hop, in the overlay's own
  /// metric: clockwise ring distance for Chord, b - lcp(to, key) for
  /// Pastry, to XOR key for Kademlia. Monotone decrease here is what makes
  /// a route auditable.
  uint64_t remaining = 0;
  /// Fault-injection tags. A `dropped` record is a forwarding attempt that
  /// never arrived (message drop, fail-stopped target, or stale dead
  /// entry); it consumed budget but is not part of the delivered path. A
  /// `retried` record is a real forward that succeeded only after one or
  /// more dropped attempts at the same node.
  bool dropped = false;
  bool retried = false;
  /// Time this hop cost, in milliseconds, when the lookup was routed under
  /// an enabled latency::LatencyModel (0 otherwise). For a delivered hop
  /// this includes the failed attempts retried at the same node; for a
  /// dropped record it is the timeout charged for that single attempt.
  double latency_ms = 0.0;
};

/// Full record of one sampled lookup. Collected only when a caller passes a
/// RouteTrace* to Lookup — the untraced path costs one branch per hop.
struct RouteTrace {
  uint64_t origin = 0;
  uint64_t key = 0;
  uint64_t destination = 0;
  bool success = false;
  int hops = 0;
  /// End-to-end lookup latency in milliseconds (0 unless routed under an
  /// enabled latency::LatencyModel) — the sum of the per-hop spans plus
  /// every failed-attempt timeout.
  double latency_ms = 0.0;
  std::vector<HopRecord> path;
};

}  // namespace peercache

#endif  // PEERCACHE_COMMON_TRACE_H_
