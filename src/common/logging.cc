#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace peercache {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

bool ParseLogLevel(std::string_view name, LogLevel* level) {
  if (name == "debug") {
    *level = LogLevel::kDebug;
  } else if (name == "info") {
    *level = LogLevel::kInfo;
  } else if (name == "warning" || name == "warn") {
    *level = LogLevel::kWarning;
  } else if (name == "error") {
    *level = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarning:
      return "warning";
    case LogLevel::kError:
      return "error";
  }
  return "?";
}

namespace internal_logging {

void Emit(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[peercache %s] %s\n", LevelName(level),
               message.c_str());
}

}  // namespace internal_logging
}  // namespace peercache
