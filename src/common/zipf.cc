#include "common/zipf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace peercache {

ZipfDistribution::ZipfDistribution(size_t n, double alpha) : alpha_(alpha) {
  assert(n >= 1);
  assert(alpha >= 0);
  pmf_.resize(n);
  cdf_.resize(n);
  double norm = 0;
  for (size_t r = 1; r <= n; ++r) {
    pmf_[r - 1] = std::pow(static_cast<double>(r), -alpha);
    norm += pmf_[r - 1];
  }
  double acc = 0;
  for (size_t r = 0; r < n; ++r) {
    pmf_[r] /= norm;
    acc += pmf_[r];
    cdf_[r] = acc;
  }
  cdf_.back() = 1.0;  // guard against floating-point shortfall
}

size_t ZipfDistribution::Sample(Rng& rng) const {
  double u = rng.UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<size_t>(it - cdf_.begin()) + 1;
}

}  // namespace peercache
