#ifndef PEERCACHE_COMMON_NODE_STORE_H_
#define PEERCACHE_COMMON_NODE_STORE_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <utility>
#include <vector>

namespace peercache::overlay {

/// Cache-friendly node storage shared by the overlay simulators.
///
/// The seed implementation kept `std::map<uint64_t, Node>` plus a separate
/// `std::set<uint64_t>` of live ids, so every hot-path membership probe
/// (one per routing-table entry considered per hop) chased a red-black
/// tree, and every successor scan walked heap-scattered tree nodes. This
/// container keeps the data the lookup path actually touches in flat,
/// id-sorted arrays:
///
///   * `live_ids_`   — sorted, contiguous live ids: binary searches for
///                     responsible-node / successor queries walk one array;
///   * `live_slots_` — slot of each live id, parallel to `live_ids_`, so a
///                     ring search yields the node without a second lookup;
///   * `alive_`      — one byte per slot: `IsAlive` is a hash probe plus a
///                     flat byte load instead of an ordered-set walk;
///   * `slot_of_`    — id → slot hash index (identity-friendly uint64 keys).
///
/// Node records themselves live in a deque: slots are append-only, and a
/// deque grows without moving existing elements, so `Node*` handed out by
/// `Get` stays valid across later insertions (the stability guarantee the
/// old node map provided). Membership changes (churn) are O(live) array
/// edits — rare next to the millions of lookups they serve.
template <typename Node>
class NodeStore {
 public:
  static constexpr uint32_t kNoSlot = ~uint32_t{0};

  /// Slot of `id`, or kNoSlot when the id has never been added.
  uint32_t SlotOf(uint64_t id) const {
    auto it = slot_of_.find(id);
    return it == slot_of_.end() ? kNoSlot : it->second;
  }

  Node* Get(uint64_t id) {
    const uint32_t slot = SlotOf(id);
    return slot == kNoSlot ? nullptr : &nodes_[slot];
  }
  const Node* Get(uint64_t id) const {
    const uint32_t slot = SlotOf(id);
    return slot == kNoSlot ? nullptr : &nodes_[slot];
  }

  Node& at_slot(uint32_t slot) { return nodes_[slot]; }
  const Node& at_slot(uint32_t slot) const { return nodes_[slot]; }

  size_t size() const { return nodes_.size(); }

  /// True iff the id's node exists and is currently alive. One hash probe
  /// plus one flat byte load — the per-candidate check on the routing hot
  /// path.
  bool IsAlive(uint64_t id) const {
    auto it = slot_of_.find(id);
    return it != slot_of_.end() && alive_[it->second] != 0;
  }

  /// True iff slot `slot` is currently alive (no hash probe).
  bool IsAliveSlot(uint32_t slot) const { return alive_[slot] != 0; }

  /// Creates the node for `id` if absent (constructed from `args`), else
  /// returns the existing record. Second member is true on insertion.
  template <typename... Args>
  std::pair<Node*, bool> Emplace(uint64_t id, Args&&... args) {
    auto it = slot_of_.find(id);
    if (it != slot_of_.end()) return {&nodes_[it->second], false};
    const uint32_t slot = static_cast<uint32_t>(nodes_.size());
    nodes_.emplace_back(std::forward<Args>(args)...);
    alive_.push_back(0);
    slot_of_.emplace(id, slot);
    return {&nodes_[slot], true};
  }

  /// Marks an existing id live and inserts it into the sorted live arrays.
  /// No-op if already live.
  void MarkAlive(uint64_t id) {
    const uint32_t slot = SlotOf(id);
    assert(slot != kNoSlot);
    if (alive_[slot]) return;
    alive_[slot] = 1;
    const size_t pos = static_cast<size_t>(
        std::lower_bound(live_ids_.begin(), live_ids_.end(), id) -
        live_ids_.begin());
    live_ids_.insert(live_ids_.begin() + static_cast<std::ptrdiff_t>(pos), id);
    live_slots_.insert(live_slots_.begin() + static_cast<std::ptrdiff_t>(pos),
                       slot);
  }

  /// Marks a live id dead and removes it from the live arrays. No-op if
  /// not live.
  void MarkDead(uint64_t id) {
    const uint32_t slot = SlotOf(id);
    assert(slot != kNoSlot);
    if (!alive_[slot]) return;
    alive_[slot] = 0;
    const size_t pos = static_cast<size_t>(
        std::lower_bound(live_ids_.begin(), live_ids_.end(), id) -
        live_ids_.begin());
    assert(pos < live_ids_.size() && live_ids_[pos] == id);
    live_ids_.erase(live_ids_.begin() + static_cast<std::ptrdiff_t>(pos));
    live_slots_.erase(live_slots_.begin() + static_cast<std::ptrdiff_t>(pos));
  }

  size_t live_count() const { return live_ids_.size(); }

  /// Sorted live ids — the contiguous array ring searches walk.
  const std::vector<uint64_t>& live_ids() const { return live_ids_; }

  /// Slot of live_ids()[i].
  uint32_t live_slot(size_t i) const { return live_slots_[i]; }

  /// Index of the first live id >= `id` (== live_ids().size() when none).
  size_t LowerBoundLive(uint64_t id) const {
    return static_cast<size_t>(
        std::lower_bound(live_ids_.begin(), live_ids_.end(), id) -
        live_ids_.begin());
  }

  /// Index of the first live id > `id` (== live_ids().size() when none).
  size_t UpperBoundLive(uint64_t id) const {
    return static_cast<size_t>(
        std::upper_bound(live_ids_.begin(), live_ids_.end(), id) -
        live_ids_.begin());
  }

  /// First live id clockwise from `from` (inclusive), wrapping at the top
  /// of the id space. Requires at least one live node.
  uint64_t FirstLiveAtOrAfter(uint64_t from) const {
    assert(!live_ids_.empty());
    size_t pos = LowerBoundLive(from);
    if (pos == live_ids_.size()) pos = 0;  // wrap
    return live_ids_[pos];
  }

 private:
  std::deque<Node> nodes_;       // slot-indexed; references stay valid
  std::vector<uint8_t> alive_;   // slot-indexed liveness flags
  std::vector<uint64_t> live_ids_;    // sorted live ids (contiguous)
  std::vector<uint32_t> live_slots_;  // parallel slots of live_ids_
  std::unordered_map<uint64_t, uint32_t> slot_of_;
};

}  // namespace peercache::overlay

#endif  // PEERCACHE_COMMON_NODE_STORE_H_
