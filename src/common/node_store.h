#ifndef PEERCACHE_COMMON_NODE_STORE_H_
#define PEERCACHE_COMMON_NODE_STORE_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/flat_table_arena.h"

namespace peercache::overlay {

/// Cache-friendly node storage shared by the overlay simulators.
///
/// The seed implementation kept `std::map<uint64_t, Node>` plus a separate
/// `std::set<uint64_t>` of live ids, so every hot-path membership probe
/// (one per routing-table entry considered per hop) chased a red-black
/// tree, and every successor scan walked heap-scattered tree nodes. This
/// container keeps the data the lookup path actually touches in flat,
/// id-sorted arrays:
///
///   * `live_ids_`   — sorted, contiguous live ids: binary searches for
///                     responsible-node / successor queries walk one array;
///   * `live_slots_` — slot of each live id, parallel to `live_ids_`, so a
///                     ring search yields the node without a second lookup;
///   * `alive_`      — one byte per slot: `IsAlive` is a hash probe plus a
///                     flat byte load instead of an ordered-set walk;
///   * `slot_of_`    — id → slot hash index (identity-friendly uint64 keys).
///
/// Node records themselves live in fixed-size slabs (kSlabNodes records
/// each, placement-new constructed): slots are append-only and a slab never
/// moves, so `Node*` handed out by `Get` stays valid across later
/// insertions — the stability guarantee the old deque provided, without the
/// deque's per-block bookkeeping or its small default block size for large
/// Node types. The store also owns the FlatTableArena that backs the node
/// records' FlatList routing slices (`tables()`), which keeps one network's
/// entire routing state in a handful of large allocations and makes
/// `MemoryUsage()` accounting exact.
///
/// Membership changes (churn) are O(live) array edits — rare next to the
/// millions of lookups they serve; bulk construction goes through
/// `BulkMarkAlive` which is O(n log n) total instead of O(n^2).
template <typename Node>
class NodeStore {
 public:
  static constexpr uint32_t kNoSlot = ~uint32_t{0};
  static constexpr uint32_t kSlabShift = 10;
  static constexpr uint32_t kSlabNodes = uint32_t{1} << kSlabShift;

  NodeStore() = default;
  NodeStore(const NodeStore&) = delete;
  NodeStore& operator=(const NodeStore&) = delete;
  NodeStore(NodeStore&& other) noexcept
      : slabs_(std::move(other.slabs_)),
        count_(other.count_),
        alive_(std::move(other.alive_)),
        live_ids_(std::move(other.live_ids_)),
        live_slots_(std::move(other.live_slots_)),
        slot_of_(std::move(other.slot_of_)),
        tables_(std::move(other.tables_)) {
    other.count_ = 0;
    other.slabs_.clear();
  }
  NodeStore& operator=(NodeStore&& other) noexcept {
    if (this != &other) {
      DestroyNodes();
      slabs_ = std::move(other.slabs_);
      count_ = other.count_;
      alive_ = std::move(other.alive_);
      live_ids_ = std::move(other.live_ids_);
      live_slots_ = std::move(other.live_slots_);
      slot_of_ = std::move(other.slot_of_);
      tables_ = std::move(other.tables_);
      other.count_ = 0;
      other.slabs_.clear();
    }
    return *this;
  }
  ~NodeStore() { DestroyNodes(); }

  /// The arena backing this store's FlatList routing slices.
  FlatTableArena& tables() { return tables_; }
  const FlatTableArena& tables() const { return tables_; }

  /// Pre-sizes every index structure for `n` nodes (slab pointers, liveness
  /// flags, live arrays, and the id→slot map) so a bulk build performs no
  /// incremental rehash or reallocation.
  void Reserve(size_t n) {
    slabs_.reserve((n + kSlabNodes - 1) >> kSlabShift);
    alive_.reserve(n);
    live_ids_.reserve(n);
    live_slots_.reserve(n);
    slot_of_.reserve(n);
  }

  /// Slot of `id`, or kNoSlot when the id has never been added.
  uint32_t SlotOf(uint64_t id) const {
    auto it = slot_of_.find(id);
    return it == slot_of_.end() ? kNoSlot : it->second;
  }

  Node* Get(uint64_t id) {
    const uint32_t slot = SlotOf(id);
    return slot == kNoSlot ? nullptr : &at_slot(slot);
  }
  const Node* Get(uint64_t id) const {
    const uint32_t slot = SlotOf(id);
    return slot == kNoSlot ? nullptr : &at_slot(slot);
  }

  Node& at_slot(uint32_t slot) {
    return *(SlabBase(slot >> kSlabShift) + (slot & (kSlabNodes - 1)));
  }
  const Node& at_slot(uint32_t slot) const {
    return *(SlabBase(slot >> kSlabShift) + (slot & (kSlabNodes - 1)));
  }

  size_t size() const { return count_; }

  /// True iff the id's node exists and is currently alive. One hash probe
  /// plus one flat byte load — the per-candidate check on the routing hot
  /// path.
  bool IsAlive(uint64_t id) const {
    auto it = slot_of_.find(id);
    return it != slot_of_.end() && alive_[it->second] != 0;
  }

  /// True iff slot `slot` is currently alive (no hash probe).
  bool IsAliveSlot(uint32_t slot) const { return alive_[slot] != 0; }

  /// Creates the node for `id` if absent (constructed from `args`), else
  /// returns the existing record. Second member is true on insertion.
  template <typename... Args>
  std::pair<Node*, bool> Emplace(uint64_t id, Args&&... args) {
    auto it = slot_of_.find(id);
    if (it != slot_of_.end()) return {&at_slot(it->second), false};
    const uint32_t slot = count_;
    if ((slot >> kSlabShift) >= slabs_.size()) {
      slabs_.emplace_back(new std::byte[sizeof(Node) * kSlabNodes]);
    }
    Node* record = SlabBase(slot >> kSlabShift) + (slot & (kSlabNodes - 1));
    ::new (static_cast<void*>(record)) Node(std::forward<Args>(args)...);
    ++count_;
    alive_.push_back(0);
    slot_of_.emplace(id, slot);
    return {record, true};
  }

  /// Marks an existing id live and inserts it into the sorted live arrays.
  /// No-op if already live.
  void MarkAlive(uint64_t id) {
    const uint32_t slot = SlotOf(id);
    assert(slot != kNoSlot);
    if (alive_[slot]) return;
    alive_[slot] = 1;
    const size_t pos = static_cast<size_t>(
        std::lower_bound(live_ids_.begin(), live_ids_.end(), id) -
        live_ids_.begin());
    live_ids_.insert(live_ids_.begin() + static_cast<std::ptrdiff_t>(pos), id);
    live_slots_.insert(live_slots_.begin() + static_cast<std::ptrdiff_t>(pos),
                       slot);
  }

  /// Marks every id in `ids` live in one pass: O((m + live) log m) instead
  /// of m separate O(live) sorted insertions — the difference between a
  /// quadratic and a linearithmic bulk build at n = 2^20. Ids must already
  /// exist; ids that are already live are skipped.
  void BulkMarkAlive(const std::vector<uint64_t>& ids) {
    std::vector<std::pair<uint64_t, uint32_t>> added;
    added.reserve(ids.size());
    for (uint64_t id : ids) {
      const uint32_t slot = SlotOf(id);
      assert(slot != kNoSlot);
      if (alive_[slot]) continue;
      alive_[slot] = 1;
      added.emplace_back(id, slot);
    }
    if (added.empty()) return;
    std::sort(added.begin(), added.end());
    if (live_ids_.empty()) {
      live_ids_.reserve(added.size());
      live_slots_.reserve(added.size());
      for (const auto& [id, slot] : added) {
        live_ids_.push_back(id);
        live_slots_.push_back(slot);
      }
      return;
    }
    // Merge the sorted batch with the existing sorted live arrays.
    std::vector<uint64_t> merged_ids;
    std::vector<uint32_t> merged_slots;
    merged_ids.reserve(live_ids_.size() + added.size());
    merged_slots.reserve(live_ids_.size() + added.size());
    size_t i = 0, j = 0;
    while (i < live_ids_.size() || j < added.size()) {
      if (j == added.size() ||
          (i < live_ids_.size() && live_ids_[i] < added[j].first)) {
        merged_ids.push_back(live_ids_[i]);
        merged_slots.push_back(live_slots_[i]);
        ++i;
      } else {
        merged_ids.push_back(added[j].first);
        merged_slots.push_back(added[j].second);
        ++j;
      }
    }
    live_ids_ = std::move(merged_ids);
    live_slots_ = std::move(merged_slots);
  }

  /// Marks a live id dead and removes it from the live arrays. No-op if
  /// not live.
  void MarkDead(uint64_t id) {
    const uint32_t slot = SlotOf(id);
    assert(slot != kNoSlot);
    if (!alive_[slot]) return;
    alive_[slot] = 0;
    const size_t pos = static_cast<size_t>(
        std::lower_bound(live_ids_.begin(), live_ids_.end(), id) -
        live_ids_.begin());
    assert(pos < live_ids_.size() && live_ids_[pos] == id);
    live_ids_.erase(live_ids_.begin() + static_cast<std::ptrdiff_t>(pos));
    live_slots_.erase(live_slots_.begin() + static_cast<std::ptrdiff_t>(pos));
  }

  size_t live_count() const { return live_ids_.size(); }

  /// Sorted live ids — the contiguous array ring searches walk.
  const std::vector<uint64_t>& live_ids() const { return live_ids_; }

  /// Slot of live_ids()[i].
  uint32_t live_slot(size_t i) const { return live_slots_[i]; }

  /// Index of the first live id >= `id` (== live_ids().size() when none).
  size_t LowerBoundLive(uint64_t id) const {
    return static_cast<size_t>(
        std::lower_bound(live_ids_.begin(), live_ids_.end(), id) -
        live_ids_.begin());
  }

  /// Index of the first live id > `id` (== live_ids().size() when none).
  size_t UpperBoundLive(uint64_t id) const {
    return static_cast<size_t>(
        std::upper_bound(live_ids_.begin(), live_ids_.end(), id) -
        live_ids_.begin());
  }

  /// First live id clockwise from `from` (inclusive), wrapping at the top
  /// of the id space. Requires at least one live node.
  uint64_t FirstLiveAtOrAfter(uint64_t from) const {
    assert(!live_ids_.empty());
    size_t pos = LowerBoundLive(from);
    if (pos == live_ids_.size()) pos = 0;  // wrap
    return live_ids_[pos];
  }

  /// Deterministic footprint accounting for the scale-frontier telemetry.
  /// `node_bytes`/`table_bytes`/`arena_bytes` are exact; `index_bytes`
  /// estimates the id→slot map at one bucket pointer per bucket plus a
  /// 24-byte chained entry per element (its layout is stdlib-internal).
  StoreMemoryStats MemoryUsage() const {
    StoreMemoryStats s;
    s.node_bytes = slabs_.size() * kSlabNodes * sizeof(Node);
    s.index_bytes = alive_.capacity() * sizeof(uint8_t) +
                    live_ids_.capacity() * sizeof(uint64_t) +
                    live_slots_.capacity() * sizeof(uint32_t) +
                    slot_of_.bucket_count() * sizeof(void*) +
                    slot_of_.size() * 24;
    s.table_bytes = tables_.used_bytes();
    s.arena_bytes = tables_.allocated_bytes();
    const size_t total = s.node_bytes + s.index_bytes + s.arena_bytes;
    s.bytes_per_node =
        count_ == 0 ? 0.0
                    : static_cast<double>(total) / static_cast<double>(count_);
    return s;
  }

 private:
  Node* SlabBase(size_t slab) {
    return std::launder(reinterpret_cast<Node*>(slabs_[slab].get()));
  }
  const Node* SlabBase(size_t slab) const {
    return std::launder(reinterpret_cast<const Node*>(slabs_[slab].get()));
  }

  void DestroyNodes() {
    for (uint32_t slot = 0; slot < count_; ++slot) at_slot(slot).~Node();
    count_ = 0;
  }

  std::vector<std::unique_ptr<std::byte[]>> slabs_;  // kSlabNodes records each
  uint32_t count_ = 0;                               // constructed records
  std::vector<uint8_t> alive_;   // slot-indexed liveness flags
  std::vector<uint64_t> live_ids_;    // sorted live ids (contiguous)
  std::vector<uint32_t> live_slots_;  // parallel slots of live_ids_
  std::unordered_map<uint64_t, uint32_t> slot_of_;
  FlatTableArena tables_;  // backing words for the nodes' FlatList slices
};

}  // namespace peercache::overlay

#endif  // PEERCACHE_COMMON_NODE_STORE_H_
