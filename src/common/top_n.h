#ifndef PEERCACHE_COMMON_TOP_N_H_
#define PEERCACHE_COMMON_TOP_N_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

namespace peercache {

/// An (item, estimated count, overestimation bound) entry reported by
/// SpaceSaving::Entries().
struct TopNEntry {
  uint64_t key = 0;
  uint64_t count = 0;  ///< Estimated frequency (may overestimate).
  uint64_t error = 0;  ///< Upper bound on the overestimation.
};

/// Space-Saving algorithm (Metwally, Agrawal, El Abbadi 2005) for tracking
/// the top-n most frequent keys of a stream in O(n) space.
///
/// The paper (Sec. III, "Implementation Considerations") prescribes exactly
/// this: a node with bounded memory keeps the top-n most frequently queried
/// peers using a standard streaming summary, and runs the auxiliary-neighbor
/// selection over that summary.
///
/// Guarantees (with capacity m over a stream of length N):
///  * every key with true frequency > N/m is present;
///  * for each tracked key, true <= estimated <= true + error, error <= N/m.
///
/// Implementation uses the classic "stream summary" bucket list, giving O(1)
/// amortized updates.
class SpaceSaving {
 public:
  /// Creates a summary tracking at most `capacity` >= 1 distinct keys.
  explicit SpaceSaving(size_t capacity);

  /// Processes one occurrence of `key` (optionally weighted). If admitting
  /// `key` evicted another key's slot, stores the victim in `*evicted_key`
  /// (when non-null) and returns true; the victim's estimate silently drops
  /// to zero, so callers maintaining derived state (dirty sets, selector
  /// deltas) must invalidate it. Returns false when nothing was evicted.
  bool Offer(uint64_t key, uint64_t weight, uint64_t* evicted_key);
  void Offer(uint64_t key, uint64_t weight = 1) { Offer(key, weight, nullptr); }

  /// Number of currently tracked keys (<= capacity).
  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }

  /// Total stream weight observed so far.
  uint64_t stream_length() const { return stream_length_; }

  /// Returns tracked entries sorted by estimated count, descending.
  std::vector<TopNEntry> Entries() const;

  /// Estimated count for `key`, or 0 if not tracked.
  uint64_t EstimatedCount(uint64_t key) const;

  /// Zeroes a tracked key's count and error so it becomes the next eviction
  /// victim. Space-Saving has no true deletion — the slot stays occupied —
  /// but after a reset the key no longer pins the slot: any unseen key
  /// offered next replaces it (and inherits error 0, as if the slot were
  /// empty). Returns false if `key` was not tracked.
  bool Reset(uint64_t key);

  /// Forgets everything.
  void Clear();

 private:
  struct Node {
    uint64_t key;
    uint64_t count;
    uint64_t error;
  };

  // Entries kept sorted ascending by count in a doubly-linked list; the map
  // indexes list nodes by key. A full bucket structure is unnecessary at the
  // capacities used here (hundreds to a few thousand); re-insertion keeps
  // updates O(distance moved), which is near-constant for skewed streams.
  using List = std::list<Node>;
  List entries_;  // ascending count order
  std::unordered_map<uint64_t, List::iterator> index_;
  size_t capacity_;
  uint64_t stream_length_ = 0;

  // Moves `it` toward the tail until the ascending-count order is restored.
  void Resort(List::iterator it);
};

}  // namespace peercache

#endif  // PEERCACHE_COMMON_TOP_N_H_
