#include "common/random.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <unordered_set>

namespace peercache {

double Rng::Exponential(double mean) {
  assert(mean > 0);
  return -mean * std::log(UniformDoublePositive());
}

std::vector<uint64_t> Rng::SampleDistinct(uint64_t bound, size_t count) {
  if (count > bound) {
    // A precondition violation here would otherwise spin forever drawing
    // from an exhausted space; fail loudly in every build mode.
    std::fprintf(stderr,
                 "Rng::SampleDistinct: count %zu exceeds bound %llu\n", count,
                 static_cast<unsigned long long>(bound));
    std::abort();
  }
  std::vector<uint64_t> out;
  out.reserve(count);
  std::unordered_set<uint64_t> seen;
  seen.reserve(count * 2);
  while (out.size() < count) {
    uint64_t v = UniformU64(bound);
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

}  // namespace peercache
