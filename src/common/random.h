#ifndef PEERCACHE_COMMON_RANDOM_H_
#define PEERCACHE_COMMON_RANDOM_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace peercache {

/// SplitMix64: used to seed larger generators and as a cheap mixing hash.
/// Reference: Vigna, "Further scramblings of Marsaglia's xorshift generators".
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Stateless 64-bit mixing hash (SplitMix64 finalizer). Used for item -> id
/// assignment so item placement is deterministic given the item index.
constexpr uint64_t MixHash64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Derives the seed of an independent RNG stream from a base seed and a
/// stream index (node id, round number, ...). Both arguments pass through
/// the SplitMix64 finalizer, so structured inputs (small integers, ids that
/// share low bits) still land in unrelated streams: Rng(SplitSeed(s, id))
/// per node replaces a shared sequential RNG wherever loop iterations must
/// not depend on execution order (the parallel experiment drivers).
constexpr uint64_t SplitSeed(uint64_t base_seed, uint64_t stream) {
  return MixHash64(base_seed ^ MixHash64(~stream));
}

/// xoshiro256++ deterministic PRNG. All randomness in the library flows
/// through explicitly seeded instances of this class; there is no global
/// RNG state, so every simulation is reproducible from its seed.
class Rng {
 public:
  /// Seeds the generator; distinct seeds give independent-looking streams.
  explicit Rng(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  /// Uniform over all 64-bit values.
  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be nonzero. Uses Lemire's
  /// nearly-divisionless method with rejection for exact uniformity.
  uint64_t UniformU64(uint64_t bound) {
    assert(bound != 0);
    uint64_t x = NextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
      uint64_t t = (0 - bound) % bound;
      while (l < t) {
        x = NextU64();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    UniformU64(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1] — safe as a log() argument.
  double UniformDoublePositive() { return 1.0 - UniformDouble(); }

  /// Exponentially distributed value with the given mean (> 0).
  double Exponential(double mean);

  /// Bernoulli trial with success probability p in [0, 1].
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformU64(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Draws `count` distinct uint64 ids, each < bound. count must not exceed
  /// bound. Expected O(count) when count << bound.
  std::vector<uint64_t> SampleDistinct(uint64_t bound, size_t count);

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace peercache

#endif  // PEERCACHE_COMMON_RANDOM_H_
