#ifndef PEERCACHE_COMMON_COUNT_MIN_H_
#define PEERCACHE_COMMON_COUNT_MIN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace peercache {

/// Count-min sketch (Cormode & Muthukrishnan 2005): a depth x width matrix of
/// saturating uint32 counters. Each row hashes the key with an independent
/// salt; Estimate returns the minimum counter across rows, which for an
/// insert-only stream never underestimates the true count.
///
/// All hashing is the stateless SplitMix64 finalizer salted per row, so two
/// sketches built from the same (seed, stream) are bit-identical regardless
/// of thread count or platform — the determinism contract every telemetry
/// path in this repo relies on.
class CountMinSketch {
 public:
  /// `width` is rounded up to a power of two (>= 2); `depth` >= 1 rows.
  CountMinSketch(size_t width, int depth, uint64_t seed);

  /// Adds `weight` occurrences of `key` (saturating at UINT32_MAX).
  void Add(uint64_t key, uint64_t weight = 1);

  /// Upper bound on the number of occurrences of `key` seen so far.
  uint64_t Estimate(uint64_t key) const;

  /// Subtracts `key`'s current estimate from all of its counters. Afterwards
  /// Estimate(key) == 0. Because the estimate is the row-wise minimum, every
  /// counter stays >= 0; keys colliding with `key` may lose up to the
  /// subtracted amount from their own estimates (a documented trade against
  /// retaining departed peers' mass forever — see docs/ALGORITHMS.md).
  void Forget(uint64_t key);

  /// Element-wise saturating sum of `other` into this sketch. Both sketches
  /// must share (width, depth, seed); asserts otherwise. Merging is
  /// commutative and equals sketching the concatenated streams (absent
  /// saturation), which makes distributed aggregation order-independent.
  void Merge(const CountMinSketch& other);

  void Clear();

  size_t width() const { return width_; }
  int depth() const { return depth_; }
  uint64_t seed() const { return seed_; }

  /// Total stream weight added so far (saturating).
  uint64_t stream_length() const { return stream_length_; }

  /// Counter storage footprint (the model excludes the object header).
  size_t MemoryBytes() const { return table_.size() * sizeof(uint32_t); }

 private:
  size_t RowIndex(int row, uint64_t key) const;

  size_t width_;        // power of two
  int depth_;
  uint64_t seed_;
  uint64_t stream_length_ = 0;
  std::vector<uint64_t> row_salts_;
  std::vector<uint32_t> table_;  // depth_ rows of width_ counters
};

/// An (item, estimated count, overestimation bound) slot reported by
/// SpaceSavingFlat::Entries().
struct FlatTopEntry {
  uint64_t key = 0;
  uint64_t count = 0;  ///< Estimated frequency (may overestimate).
  uint64_t error = 0;  ///< Upper bound on the overestimation.
};

/// Space-Saving (Metwally et al. 2005) over a flat slot array instead of the
/// linked-list stream summary in common/top_n.h. At the small capacities a
/// sketch-mode frequency table uses (tens of slots), a linear scan is faster
/// than pointer chasing and the footprint drops from ~88 B to 24 B per slot —
/// which is what lets the sketch mode undercut the exact table's memory by
/// 16x while keeping enough heavy-hitter slots for selection quality.
///
/// Same guarantees as SpaceSaving (capacity m, stream length N): every key
/// with true frequency > N/m is tracked; true <= estimate <= true + error
/// with error <= N/m.
///
/// Tie-breaking is explicit and deterministic: among minimum-count slots the
/// eviction victim is the one with the smallest key, so summary contents are
/// a pure function of the offered stream (never of memory layout).
class SpaceSavingFlat {
 public:
  explicit SpaceSavingFlat(size_t capacity);

  /// Processes one occurrence of `key` (optionally weighted). If a slot was
  /// evicted to admit `key`, returns its former occupant's key so callers
  /// can invalidate state derived from it; returns no value otherwise.
  /// (Offer(k) immediately followed by Offer(k) never evicts twice.)
  bool Offer(uint64_t key, uint64_t weight, uint64_t* evicted_key);
  void Offer(uint64_t key, uint64_t weight = 1) { Offer(key, weight, nullptr); }

  size_t size() const { return slots_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t stream_length() const { return stream_length_; }

  bool Contains(uint64_t key) const { return FindSlot(key) >= 0; }

  /// Estimated count for `key`, or 0 if not tracked.
  uint64_t EstimatedCount(uint64_t key) const;

  /// Tracked entries sorted by count descending, ties by key ascending —
  /// a deterministic order independent of slot layout.
  std::vector<FlatTopEntry> Entries() const;

  /// Zeroes a tracked key's count and error so it becomes the next eviction
  /// victim (same semantics as SpaceSaving::Reset). Returns false if `key`
  /// was not tracked.
  bool Reset(uint64_t key);

  void Clear();

  /// Modeled footprint: one 24-byte slot per capacity unit. Uses capacity,
  /// not size, so the figure reflects the configured budget.
  size_t MemoryBytes() const { return capacity_ * sizeof(Slot); }

 private:
  struct Slot {
    uint64_t key;
    uint64_t count;
    uint64_t error;
  };

  int FindSlot(uint64_t key) const;
  int MinSlot() const;

  size_t capacity_;
  uint64_t stream_length_ = 0;
  std::vector<Slot> slots_;
};

}  // namespace peercache

#endif  // PEERCACHE_COMMON_COUNT_MIN_H_
