#ifndef PEERCACHE_COMMON_ROUTE_RESULT_H_
#define PEERCACHE_COMMON_ROUTE_RESULT_H_

#include <cstdint>
#include <vector>

namespace peercache::overlay {

/// Outcome of one simulated lookup, shared by every overlay backend.
///
/// Both DHT geometries (Chord's ring-greedy routing, Pastry's prefix
/// routing) report the same observables, so the experiment engine, the
/// item-cache comparison, and the benches all consume this one type.
/// The struct is reusable: `Clear()` resets the fields while keeping the
/// path vector's capacity, which is what lets the measurement hot loops
/// route millions of lookups without a single per-lookup allocation
/// (see ChordNetwork::LookupInto / PastryNetwork::LookupInto).
struct RouteResult {
  bool success = false;     ///< Delivered at the truly responsible node.
  uint64_t destination = 0; ///< Node the query was delivered to.
  int hops = 0;             ///< Overlay forwarding hops taken.
  int aux_hops = 0;         ///< Hops forwarded through an auxiliary entry.
  /// Nodes that forwarded the query, in order (origin first, destination
  /// excluded). Every node here "has seen" the query in the paper's sense
  /// and may record the destination in its frequency table.
  std::vector<uint64_t> path;

  /// Resets to the default state, retaining `path`'s capacity.
  void Clear() {
    success = false;
    destination = 0;
    hops = 0;
    aux_hops = 0;
    path.clear();
  }
};

}  // namespace peercache::overlay

#endif  // PEERCACHE_COMMON_ROUTE_RESULT_H_
