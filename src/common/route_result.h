#ifndef PEERCACHE_COMMON_ROUTE_RESULT_H_
#define PEERCACHE_COMMON_ROUTE_RESULT_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace peercache::overlay {

/// Outcome of one simulated lookup, shared by every overlay backend.
///
/// Both DHT geometries (Chord's ring-greedy routing, Pastry's prefix
/// routing) report the same observables, so the experiment engine, the
/// item-cache comparison, and the benches all consume this one type.
/// The struct is reusable: `Clear()` resets the fields while keeping the
/// path vector's capacity, which is what lets the measurement hot loops
/// route millions of lookups without a single per-lookup allocation
/// (see ChordNetwork::LookupInto / PastryNetwork::LookupInto).
struct RouteResult {
  bool success = false;     ///< Delivered at the truly responsible node.
  uint64_t destination = 0; ///< Node the query was delivered to.
  int hops = 0;             ///< Overlay forwarding hops taken.
  int aux_hops = 0;         ///< Hops forwarded through an auxiliary entry.
  /// End-to-end latency in milliseconds. 0 unless the lookup was routed
  /// under an enabled latency::LatencyModel; failed forwarding attempts
  /// contribute their timeout on top of the delivered hops' spans.
  double latency_ms = 0.0;
  /// Nodes that forwarded the query, in order (origin first, destination
  /// excluded). Every node here "has seen" the query in the paper's sense
  /// and may record the destination in its frequency table. Only messages
  /// that arrived count: failed forwarding attempts (fault injection)
  /// appear in the retry tallies below, never in the path.
  std::vector<uint64_t> path;

  // Resilience accounting, nonzero only when a lookup was routed under an
  // enabled fault::FaultPlan. Every failed forwarding attempt consumes one
  // unit of the route's hop budget (max_route_hops) besides its per-visit
  // retry allowance.
  int retries = 0;           ///< Failed forwarding attempts, all causes.
  int dropped_forwards = 0;  ///< Attempts lost to message drops.
  int failstop_skips = 0;    ///< Attempts against fail-stopped nodes.
  int stale_forwards = 0;    ///< Attempts against stale (dead) entries.
  /// The lookup was abandoned because a budget ran out (per-visit retries
  /// or the global hop budget), not because routing converged.
  bool budget_exhausted = false;
  /// Dead entries discovered the hard way: (holder, entry) pairs where
  /// `holder` forwarded to the departed `entry` inside a stale window. The
  /// caller may evict them from the holder's tables (LookupInto is const
  /// and cannot).
  std::vector<std::pair<uint64_t, uint64_t>> dead_evictions;

  /// Resets to the default state, retaining vector capacities.
  void Clear() {
    success = false;
    destination = 0;
    hops = 0;
    aux_hops = 0;
    latency_ms = 0.0;
    path.clear();
    retries = 0;
    dropped_forwards = 0;
    failstop_skips = 0;
    stale_forwards = 0;
    budget_exhausted = false;
    dead_evictions.clear();
  }
};

}  // namespace peercache::overlay

#endif  // PEERCACHE_COMMON_ROUTE_RESULT_H_
