#ifndef PEERCACHE_COMMON_ZIPF_H_
#define PEERCACHE_COMMON_ZIPF_H_

#include <cstddef>
#include <vector>

#include "common/random.h"

namespace peercache {

/// Zipf distribution over ranks 1..n with exponent alpha:
///   P(rank = r) ∝ 1 / r^alpha.
///
/// The paper's workloads draw item queries from zipf with alpha = 1.2 and
/// alpha = 0.91. Sampling is exact via inversion on the precomputed CDF
/// (O(log n) per draw); n in the experiments is small enough (<= a few
/// hundred thousand items) that the O(n) table is cheap.
class ZipfDistribution {
 public:
  /// Creates a zipf distribution over n >= 1 ranks with exponent alpha >= 0.
  /// alpha == 0 degenerates to the uniform distribution.
  ZipfDistribution(size_t n, double alpha);

  size_t n() const { return pmf_.size(); }
  double alpha() const { return alpha_; }

  /// Probability of rank r (1-indexed, 1 <= r <= n).
  double Pmf(size_t rank) const { return pmf_[rank - 1]; }

  /// Draws a rank in [1, n]; the most popular rank is 1.
  size_t Sample(Rng& rng) const;

  /// Expected frequency vector (pmf), index 0 holding rank 1.
  const std::vector<double>& pmf() const { return pmf_; }

 private:
  double alpha_;
  std::vector<double> pmf_;
  std::vector<double> cdf_;
};

}  // namespace peercache

#endif  // PEERCACHE_COMMON_ZIPF_H_
