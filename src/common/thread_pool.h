#ifndef PEERCACHE_COMMON_THREAD_POOL_H_
#define PEERCACHE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace peercache {

/// Fixed-size bounded thread pool for data-parallel loops. Deliberately
/// work-stealing-free: chunks of the index range are handed out through one
/// shared atomic cursor, so scheduling overhead is a single fetch_add per
/// chunk and there are no per-worker deques to balance.
///
/// The pool itself introduces no nondeterminism: which thread runs which
/// index never feeds back into results as long as the loop body writes only
/// to index-addressed slots (the experiment drivers derive one RNG stream
/// per index for exactly this reason; see docs/ALGORITHMS.md §4).
class ThreadPool {
 public:
  /// Creates `num_threads` workers; <= 0 means DefaultThreads(). A pool of
  /// one thread runs every ParallelFor inline on the caller (legacy serial
  /// path, no synchronization at all).
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// std::thread::hardware_concurrency(), never less than 1.
  static int DefaultThreads();

  /// Runs fn(i) for every i in [begin, end), blocking until all indices
  /// complete. Consecutive indices are grouped into chunks of `grain`
  /// (0 is treated as 1; a grain larger than the range yields one chunk,
  /// which runs inline on the caller). fn must be safe to call concurrently
  /// for distinct indices.
  ///
  /// If one or more invocations throw, every chunk still runs (a throw
  /// abandons only the rest of its own chunk) and the exception from the
  /// lowest-numbered throwing chunk is rethrown on the caller — so a
  /// failing loop rethrows the same error no matter the thread timing.
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::vector<std::function<void()>> queue_;
  bool shutdown_ = false;
};

/// Resolves a config-level thread count: <= 0 selects the hardware default,
/// anything else is taken literally.
int ResolveThreads(int configured);

}  // namespace peercache

#endif  // PEERCACHE_COMMON_THREAD_POOL_H_
