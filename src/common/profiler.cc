#include "common/profiler.h"

namespace peercache {

Profiler& Profiler::Global() {
  static Profiler* profiler = new Profiler();
  return *profiler;
}

void Profiler::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
}

void Profiler::Record(const std::string& name, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  Span& span = spans_[name];
  if (span.name.empty()) span.name = name;
  ++span.calls;
  span.seconds += seconds;
}

std::vector<Profiler::Span> Profiler::Report() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Span> out;
  out.reserve(spans_.size());
  for (const auto& [name, span] : spans_) out.push_back(span);
  return out;  // std::map iteration is already sorted by name
}

void Profiler::WriteJson(JsonWriter& w) const {
  w.BeginObject();
  for (const Span& span : Report()) {
    w.Key(span.name);
    w.BeginObject();
    w.Key("calls");
    w.UInt(span.calls);
    w.Key("seconds");
    w.Double(span.seconds);
    w.EndObject();
  }
  w.EndObject();
}

}  // namespace peercache
