#ifndef PEERCACHE_COMMON_OVERLAY_H_
#define PEERCACHE_COMMON_OVERLAY_H_

#include <concepts>
#include <cstdint>
#include <span>
#include <vector>

#include "common/fault.h"
#include "common/flat_table_arena.h"
#include "common/latency.h"
#include "common/ring_id.h"
#include "common/route_result.h"
#include "common/status.h"
#include "common/trace.h"

namespace peercache::overlay {

/// The node contract every overlay backend's per-node record satisfies:
/// identity, liveness, and the observed frequency table that feeds
/// auxiliary selection. Routing tables (fingers/successors for Chord,
/// routing rows/leaf set for Pastry, buckets for Kademlia) and the
/// auxiliary list are FlatList slices into the network's arena — the
/// engine reaches them only through `CoreNeighborIds` / `AuxiliarySpan`.
template <typename N>
concept OverlayNode = requires(N& node, const N& cnode, uint64_t peer) {
  { cnode.id } -> std::convertible_to<uint64_t>;
  { cnode.alive } -> std::convertible_to<bool>;
  { node.frequencies.Record(peer) };
  { node.frequencies.Snapshot(peer) };
};

/// Compile-time contract between an overlay simulator and the generic
/// experiment engine (experiments/generic_experiment.h). A conforming
/// backend provides:
///
///   * membership — AddNode / RemoveNode / RejoinNode / StabilizeNode /
///     StabilizeAll over a circular IdSpace;
///   * god's-eye ground truth — ResponsibleNode;
///   * routing — LookupInto writes into a caller-owned RouteResult (the
///     zero-allocation hot path) with optional per-hop tracing and an
///     optional fault::FaultPlan that switches the route onto the
///     retry-capable resilient policy; Lookup is the by-value convenience
///     form;
///   * auxiliary plumbing — SetAuxiliaries installs the selection result,
///     CoreNeighborIds exposes N_s for the selectors, AuxiliarySpan reads
///     the installed list and EraseAuxiliary evicts one stale entry;
///   * scale plumbing — BulkAdd joins many nodes without intermediate
///     stabilization and MemoryUsage reports the per-node footprint.
///
/// ChordNetwork, PastryNetwork, and KademliaNetwork are statically checked
/// against this concept; a new DHT backend plugs into the whole
/// experiment/bench/telemetry stack by satisfying it plus a small policy
/// struct (see docs/ARCHITECTURE.md).
template <typename N>
concept Overlay = OverlayNode<typename N::NodeType> &&
    requires(N& net, const N& cnet, uint64_t id, std::vector<uint64_t> aux,
             const std::vector<uint64_t>& ids, RouteResult& out,
             RouteTrace* trace, const fault::FaultPlan* faults,
             const latency::LatencyModel* latency) {
  { cnet.space() } -> std::convertible_to<const IdSpace&>;
  // The engine and the invariant harness read these two protocol knobs off
  // every backend's parameter struct; the first two concept instantiations
  // got them for free and never spelled the requirement out.
  { cnet.params().bits } -> std::convertible_to<int>;
  { cnet.params().max_route_hops } -> std::convertible_to<int>;
  { net.AddNode(id) } -> std::same_as<Status>;
  { net.RemoveNode(id) } -> std::same_as<Status>;
  { net.RejoinNode(id) } -> std::same_as<Status>;
  { cnet.IsAlive(id) } -> std::same_as<bool>;
  { cnet.live_count() } -> std::same_as<size_t>;
  { cnet.LiveNodeIds() } -> std::same_as<std::vector<uint64_t>>;
  { net.GetNode(id) } -> std::same_as<typename N::NodeType*>;
  { cnet.GetNode(id) } -> std::same_as<const typename N::NodeType*>;
  { cnet.ResponsibleNode(id) } -> std::same_as<Result<uint64_t>>;
  // Callers rely on the trace/fault arguments being defaultable — require
  // the short forms too, not only the fully-spelled ones.
  { cnet.LookupInto(id, id, out) } -> std::same_as<Status>;
  { cnet.LookupInto(id, id, out, trace) } -> std::same_as<Status>;
  { cnet.LookupInto(id, id, out, trace, faults) } -> std::same_as<Status>;
  { cnet.LookupInto(id, id, out, trace, faults, latency) } ->
      std::same_as<Status>;
  { cnet.Lookup(id, id) } -> std::same_as<Result<RouteResult>>;
  { cnet.Lookup(id, id, trace) } -> std::same_as<Result<RouteResult>>;
  { cnet.Lookup(id, id, trace, faults) } -> std::same_as<Result<RouteResult>>;
  { cnet.Lookup(id, id, trace, faults, latency) } ->
      std::same_as<Result<RouteResult>>;
  { net.StabilizeNode(id) } -> std::same_as<Status>;
  { net.StabilizeAll() };
  { net.SetAuxiliaries(id, std::move(aux)) } -> std::same_as<Status>;
  { cnet.CoreNeighborIds(id) } -> std::same_as<std::vector<uint64_t>>;
  { cnet.AuxiliarySpan(id) } ->
      std::convertible_to<std::span<const uint64_t>>;
  { net.EraseAuxiliary(id, id) };
  { net.BulkAdd(ids) } -> std::same_as<Status>;
  { cnet.MemoryUsage() } -> std::same_as<StoreMemoryStats>;
};

}  // namespace peercache::overlay

#endif  // PEERCACHE_COMMON_OVERLAY_H_
