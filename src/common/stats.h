#ifndef PEERCACHE_COMMON_STATS_H_
#define PEERCACHE_COMMON_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace peercache {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class OnlineStats {
 public:
  void Add(double x);
  void Merge(const OnlineStats& other);

  uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  /// Running sum tracked with Neumaier-Kahan compensation rather than
  /// reconstructed as mean*count (which drifts for large counts).
  double sum() const { return sum_ + sum_compensation_; }

 private:
  uint64_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
  double sum_ = 0;
  double sum_compensation_ = 0;  ///< Kahan carry for sum_.
};

/// Fixed-bucket integer histogram for hop counts: buckets 0..max_value, plus
/// an overflow bucket.
class Histogram {
 public:
  /// Tracks values 0..max_value exactly; larger values land in overflow.
  explicit Histogram(int max_value);

  void Add(int value);
  void Merge(const Histogram& other);

  uint64_t count() const { return count_; }
  uint64_t BucketCount(int value) const;
  uint64_t overflow() const { return overflow_; }
  /// Largest exactly-tracked value (buckets run 0..max_value).
  int max_value() const { return static_cast<int>(buckets_.size()) - 1; }
  int64_t sum() const { return sum_; }
  double Mean() const;
  /// Rank-interpolated quantile (the "linear" convention): the continuous
  /// rank q*(count-1) is split between the two nearest samples. p0 is the
  /// minimum, p100 the maximum, a single sample answers every q, and an
  /// empty histogram reports 0. Overflow mass sits at max_value()+1.
  double Percentile(double q) const;
  /// Legacy nearest-rank quantile: the smallest v such that at least q of
  /// the mass is <= v. Overflow mass reports as max_value()+1. This is the
  /// form serialized into the committed telemetry documents.
  int PercentileRank(double q) const;

  /// One-line textual rendering "mean=… p50=… p99=… max_bucket=…".
  std::string Summary() const;

 private:
  /// Value (bucket index, or max_value()+1 for overflow) holding the
  /// 0-based rank-th sample in sorted order.
  int ValueAtRank(uint64_t rank) const;

  std::vector<uint64_t> buckets_;
  uint64_t overflow_ = 0;
  uint64_t count_ = 0;
  int64_t sum_ = 0;
};

/// Log-spaced histogram for latency-like positive values spanning several
/// orders of magnitude. Bucket bounds are precomputed by repeated
/// multiplication (never via log2 at insert time), so placement and
/// percentiles are bit-identical across platforms and thread counts.
///
/// Buckets: [0, b0), [b0, b1), ..., [b_{N-1}, inf) with b0 = 0.1 and
/// growth 2^(1/4) per bucket (~19% relative resolution), covering
/// 0.1 .. ~1.4e6 before the open-ended tail.
class LogHistogram {
 public:
  LogHistogram();

  void Add(double value);
  void Merge(const LogHistogram& other);

  uint64_t count() const { return count_; }
  double sum() const { return sum_ + sum_compensation_; }
  double Mean() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  /// Within-bucket linearly interpolated quantile, clamped to the exact
  /// observed [min, max] so p0/p100 are sharp and a single sample answers
  /// every q. Empty histogram reports 0.
  double Percentile(double q) const;

 private:
  double BucketLowerBound(size_t index) const;
  double BucketUpperBound(size_t index) const;

  std::vector<uint64_t> counts_;  ///< bounds_.size() + 1 buckets.
  uint64_t count_ = 0;
  double sum_ = 0;
  double sum_compensation_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace peercache

#endif  // PEERCACHE_COMMON_STATS_H_
