#ifndef PEERCACHE_COMMON_STATS_H_
#define PEERCACHE_COMMON_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace peercache {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class OnlineStats {
 public:
  void Add(double x);
  void Merge(const OnlineStats& other);

  uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  /// Running sum tracked with Neumaier-Kahan compensation rather than
  /// reconstructed as mean*count (which drifts for large counts).
  double sum() const { return sum_ + sum_compensation_; }

 private:
  uint64_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
  double sum_ = 0;
  double sum_compensation_ = 0;  ///< Kahan carry for sum_.
};

/// Fixed-bucket integer histogram for hop counts: buckets 0..max_value, plus
/// an overflow bucket.
class Histogram {
 public:
  /// Tracks values 0..max_value exactly; larger values land in overflow.
  explicit Histogram(int max_value);

  void Add(int value);
  void Merge(const Histogram& other);

  uint64_t count() const { return count_; }
  uint64_t BucketCount(int value) const;
  uint64_t overflow() const { return overflow_; }
  /// Largest exactly-tracked value (buckets run 0..max_value).
  int max_value() const { return static_cast<int>(buckets_.size()) - 1; }
  int64_t sum() const { return sum_; }
  double Mean() const;
  /// Smallest v such that at least q (in [0,1]) of the mass is <= v.
  /// Overflow mass reports as max_value()+1.
  int Percentile(double q) const;

  /// One-line textual rendering "mean=… p50=… p99=… max_bucket=…".
  std::string Summary() const;

 private:
  std::vector<uint64_t> buckets_;
  uint64_t overflow_ = 0;
  uint64_t count_ = 0;
  int64_t sum_ = 0;
};

}  // namespace peercache

#endif  // PEERCACHE_COMMON_STATS_H_
