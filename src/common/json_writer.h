#ifndef PEERCACHE_COMMON_JSON_WRITER_H_
#define PEERCACHE_COMMON_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace peercache {

/// Minimal streaming JSON emitter for the observability layer.
///
/// Produces deterministic output: no whitespace beyond what the caller
/// requests via Indent(), doubles rendered with shortest round-trip
/// formatting ("%.17g" trimmed), and keys emitted in the order the caller
/// writes them. Two runs that make the same call sequence produce
/// byte-identical documents — the property the threads=1 vs threads=4
/// telemetry test relies on.
///
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("schema_version"); w.Int(1);
///   w.Key("rows"); w.BeginArray(); ... w.EndArray();
///   w.EndObject();
///   std::string doc = w.TakeString();
class JsonWriter {
 public:
  JsonWriter() = default;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Emits an object key; the next value call provides its value.
  void Key(std::string_view key);

  void String(std::string_view value);
  void Int(int64_t value);
  void UInt(uint64_t value);
  void Double(double value);
  void Bool(bool value);
  void Null();

  /// The document so far. Valid once every Begin* has been closed.
  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

  /// Renders a double exactly as Double() would (shared with tests and
  /// ad-hoc emitters so every JSON file formats numbers identically).
  static std::string FormatDouble(double value);
  /// Escapes a string body (no surrounding quotes).
  static std::string Escape(std::string_view raw);

 private:
  void BeforeValue();

  std::string out_;
  /// One frame per open container: true = object, false = array.
  std::vector<bool> frames_;
  /// Whether the current container already holds a value (comma needed).
  std::vector<bool> has_value_;
  bool pending_key_ = false;
};

}  // namespace peercache

#endif  // PEERCACHE_COMMON_JSON_WRITER_H_
