#include "common/json_writer.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace peercache {

void JsonWriter::BeforeValue() {
  if (frames_.empty()) return;
  if (frames_.back()) {
    // Object scope: a key must have been written for this value.
    assert(pending_key_ && "object values need a Key() first");
    pending_key_ = false;
  } else {
    assert(!pending_key_);
    if (has_value_.back()) out_.push_back(',');
    has_value_.back() = true;
  }
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_.push_back('{');
  frames_.push_back(true);
  has_value_.push_back(false);
}

void JsonWriter::EndObject() {
  assert(!frames_.empty() && frames_.back() && !pending_key_);
  out_.push_back('}');
  frames_.pop_back();
  has_value_.pop_back();
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_.push_back('[');
  frames_.push_back(false);
  has_value_.push_back(false);
}

void JsonWriter::EndArray() {
  assert(!frames_.empty() && !frames_.back());
  out_.push_back(']');
  frames_.pop_back();
  has_value_.pop_back();
}

void JsonWriter::Key(std::string_view key) {
  assert(!frames_.empty() && frames_.back() && !pending_key_);
  if (has_value_.back()) out_.push_back(',');
  has_value_.back() = true;
  out_.push_back('"');
  out_ += Escape(key);
  out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_.push_back('"');
  out_ += Escape(value);
  out_.push_back('"');
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::Double(double value) {
  BeforeValue();
  out_ += FormatDouble(value);
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
}

std::string JsonWriter::FormatDouble(double value) {
  if (!std::isfinite(value)) return "null";  // JSON has no inf/nan
  // Shortest representation that round-trips: try increasing precision.
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    double parsed = 0.0;
    std::sscanf(buf, "%lf", &parsed);
    if (parsed == value) break;
  }
  std::string s(buf);
  // "%g" can yield bare integers ("3"); that is still valid JSON.
  return s;
}

std::string JsonWriter::Escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace peercache
