#ifndef PEERCACHE_COMMON_LOGGING_H_
#define PEERCACHE_COMMON_LOGGING_H_

#include <sstream>
#include <string>
#include <string_view>

namespace peercache {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped. Default is
/// kWarning so library consumers see nothing unless something is wrong.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses a `--log-level` flag value: "debug", "info", "warning" (or
/// "warn"), "error". Returns false and leaves `*level` untouched on an
/// unknown name.
bool ParseLogLevel(std::string_view name, LogLevel* level);
/// Canonical lowercase name for a level ("debug", "info", ...).
const char* LogLevelName(LogLevel level);

namespace internal_logging {

void Emit(LogLevel level, const std::string& message);

/// RAII stream collector: `LOG(kInfo) << "n=" << n;`
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Emit(level_, stream_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace peercache

#define PEERCACHE_LOG(level)                                        \
  if (static_cast<int>(::peercache::LogLevel::level) <              \
      static_cast<int>(::peercache::GetLogLevel())) {               \
  } else                                                            \
    ::peercache::internal_logging::LogMessage(                      \
        ::peercache::LogLevel::level)                               \
        .stream()

#endif  // PEERCACHE_COMMON_LOGGING_H_
