#ifndef PEERCACHE_COMMON_RING_ID_H_
#define PEERCACHE_COMMON_RING_ID_H_

#include <cassert>
#include <cstdint>
#include <string>

#include "common/bits.h"

namespace peercache {

/// Describes a circular identifier space of `bits`-bit ids (1..64 bits).
/// Both Chord and Pastry place node and item ids in such a space; the paper's
/// experiments use 32-bit ids.
class IdSpace {
 public:
  /// Constructs an id space with ids in [0, 2^bits).
  explicit IdSpace(int bits) : bits_(bits) {
    assert(bits >= 1 && bits <= 64);
  }

  int bits() const { return bits_; }

  /// Number of ids in the space; saturates meaningfully only for bits < 64.
  uint64_t size() const { return bits_ == 64 ? 0 : (uint64_t{1} << bits_); }

  /// Mask with exactly `bits` low bits set.
  uint64_t mask() const { return LowBitMask(bits_); }

  /// True iff `id` is a valid id in this space.
  bool Contains(uint64_t id) const { return (id & ~mask()) == 0; }

  /// (a + b) mod 2^bits.
  uint64_t Add(uint64_t a, uint64_t b) const { return (a + b) & mask(); }

  /// Clockwise distance from `from` to `to`: (to - from) mod 2^bits.
  uint64_t ClockwiseDistance(uint64_t from, uint64_t to) const {
    return (to - from) & mask();
  }

  /// The Chord hop-distance estimate of paper Eq. 6: the bit-length of the
  /// clockwise id distance. 0 iff from == to; at most `bits`.
  int ChordHopEstimate(uint64_t from, uint64_t to) const {
    return BitLength(ClockwiseDistance(from, to));
  }

  /// The Pastry hop-distance estimate of Sec. IV: bits - lcp(a, b).
  /// 0 iff a == b; symmetric; at most `bits`.
  int PastryHopEstimate(uint64_t a, uint64_t b) const {
    return bits_ - CommonPrefixLength(a, b, bits_);
  }

  /// True iff `x` lies in the clockwise-open interval (from, to].
  /// When from == to the interval is the whole ring (standard Chord
  /// convention for a ring with a single known node).
  bool InClockwiseRangeExclIncl(uint64_t from, uint64_t x, uint64_t to) const {
    uint64_t dx = ClockwiseDistance(from, x);
    uint64_t dt = ClockwiseDistance(from, to);
    if (dt == 0) return true;
    return dx != 0 && dx <= dt;
  }

  /// True iff `x` lies in the clockwise-open interval (from, to).
  bool InClockwiseRangeExclExcl(uint64_t from, uint64_t x, uint64_t to) const {
    uint64_t dx = ClockwiseDistance(from, x);
    uint64_t dt = ClockwiseDistance(from, to);
    if (dt == 0) return dx != 0;  // whole ring minus `from`
    return dx != 0 && dx < dt;
  }

  /// Renders `id` as a binary string of exactly `bits` characters
  /// (most significant bit first), for debugging and tries.
  std::string ToBinaryString(uint64_t id) const;

 private:
  int bits_;
};

}  // namespace peercache

#endif  // PEERCACHE_COMMON_RING_ID_H_
