#include "common/top_n.h"

#include <algorithm>
#include <cassert>

namespace peercache {

SpaceSaving::SpaceSaving(size_t capacity) : capacity_(capacity) {
  assert(capacity >= 1);
  index_.reserve(capacity * 2);
}

bool SpaceSaving::Offer(uint64_t key, uint64_t weight, uint64_t* evicted_key) {
  stream_length_ += weight;
  auto found = index_.find(key);
  if (found != index_.end()) {
    found->second->count += weight;
    Resort(found->second);
    return false;
  }
  if (entries_.size() < capacity_) {
    auto it = entries_.insert(entries_.begin(), Node{key, weight, 0});
    index_.emplace(key, it);
    Resort(it);
    return false;
  }
  // Evict the minimum-count entry; the newcomer inherits its count as the
  // overestimation error (classic Space-Saving replacement rule).
  auto min_it = entries_.begin();
  if (evicted_key != nullptr) *evicted_key = min_it->key;
  index_.erase(min_it->key);
  uint64_t min_count = min_it->count;
  min_it->key = key;
  min_it->error = min_count;
  min_it->count = min_count + weight;
  index_.emplace(key, min_it);
  Resort(min_it);
  return true;
}

void SpaceSaving::Resort(List::iterator it) {
  auto next = std::next(it);
  while (next != entries_.end() && next->count < it->count) ++next;
  if (next != std::next(it)) {
    entries_.splice(next, entries_, it);  // iterators stay valid
  }
}

std::vector<TopNEntry> SpaceSaving::Entries() const {
  std::vector<TopNEntry> out;
  out.reserve(entries_.size());
  // List is ascending; report descending.
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    out.push_back(TopNEntry{it->key, it->count, it->error});
  }
  return out;
}

uint64_t SpaceSaving::EstimatedCount(uint64_t key) const {
  auto found = index_.find(key);
  return found == index_.end() ? 0 : found->second->count;
}

bool SpaceSaving::Reset(uint64_t key) {
  auto found = index_.find(key);
  if (found == index_.end()) return false;
  auto it = found->second;
  it->count = 0;
  it->error = 0;
  // Count 0 is <= every other count; move to the head (the eviction end).
  entries_.splice(entries_.begin(), entries_, it);
  return true;
}

void SpaceSaving::Clear() {
  entries_.clear();
  index_.clear();
  stream_length_ = 0;
}

}  // namespace peercache
