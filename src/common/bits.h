#ifndef PEERCACHE_COMMON_BITS_H_
#define PEERCACHE_COMMON_BITS_H_

#include <bit>
#include <cassert>
#include <cstdint>

namespace peercache {

/// Number of bits needed to represent `x` (position of the leftmost 1-bit,
/// 1-indexed). BitLength(0) == 0, BitLength(1) == 1, BitLength(5) == 3.
///
/// This is exactly the Chord hop-distance estimate of the paper (Eq. 6's
/// parenthetical: "the position of the leftmost '1' in (v-u) mod 2^b").
constexpr int BitLength(uint64_t x) { return 64 - std::countl_zero(x); }

/// Length of the longest common prefix of two `bits`-bit ids, in bits.
/// Ids are stored right-aligned in a uint64_t; bit (bits-1) is the most
/// significant id bit. Returns `bits` when a == b.
constexpr int CommonPrefixLength(uint64_t a, uint64_t b, int bits) {
  assert(bits >= 1 && bits <= 64);
  uint64_t diff = a ^ b;
  if (diff == 0) return bits;
  int highest_diff_bit = BitLength(diff) - 1;  // 0-indexed from LSB
  // Bits above highest_diff_bit agree. Id bit positions run bits-1 .. 0.
  int lcp = bits - 1 - highest_diff_bit;
  return lcp < 0 ? 0 : lcp;
}

/// Returns the `i`-th most significant bit (0-indexed from the top) of a
/// `bits`-bit id.
constexpr int IdBit(uint64_t id, int bits, int i) {
  assert(i >= 0 && i < bits);
  return static_cast<int>((id >> (bits - 1 - i)) & 1u);
}

/// Mask with the low `bits` bits set. bits == 64 yields all-ones.
constexpr uint64_t LowBitMask(int bits) {
  assert(bits >= 0 && bits <= 64);
  return bits == 64 ? ~uint64_t{0} : ((uint64_t{1} << bits) - 1);
}

/// True iff x is a power of two (and nonzero).
constexpr bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// floor(log2(x)) for x >= 1.
constexpr int FloorLog2(uint64_t x) {
  assert(x >= 1);
  return BitLength(x) - 1;
}

/// ceil(log2(x)) for x >= 1.
constexpr int CeilLog2(uint64_t x) {
  assert(x >= 1);
  return x == 1 ? 0 : BitLength(x - 1);
}

}  // namespace peercache

#endif  // PEERCACHE_COMMON_BITS_H_
