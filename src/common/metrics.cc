#include "common/metrics.h"

#include <cassert>

namespace peercache {

void MetricsShard::Count(std::string_view name, uint64_t delta) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void MetricsShard::SetGauge(std::string_view name, double value) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void MetricsShard::Observe(std::string_view name, double sample) {
  auto it = stats_.find(name);
  if (it == stats_.end()) {
    it = stats_.emplace(std::string(name), OnlineStats{}).first;
  }
  it->second.Add(sample);
}

void MetricsShard::MergeStats(std::string_view name,
                              const OnlineStats& samples) {
  if (samples.count() == 0) return;  // do not create an empty instrument
  auto it = stats_.find(name);
  if (it == stats_.end()) {
    it = stats_.emplace(std::string(name), OnlineStats{}).first;
  }
  it->second.Merge(samples);
}

void MetricsShard::ObserveHistogram(std::string_view name, int value,
                                    int max_value) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram(max_value)).first;
  }
  it->second.Add(value);
}

void MetricsShard::ObserveLatency(std::string_view name, double value) {
  auto it = log_histograms_.find(name);
  if (it == log_histograms_.end()) {
    it = log_histograms_.emplace(std::string(name), LogHistogram{}).first;
  }
  it->second.Add(value);
}

void MetricsShard::MergeLatency(std::string_view name,
                                const LogHistogram& samples) {
  if (samples.count() == 0) return;  // do not create an empty instrument
  auto it = log_histograms_.find(name);
  if (it == log_histograms_.end()) {
    it = log_histograms_.emplace(std::string(name), LogHistogram{}).first;
  }
  it->second.Merge(samples);
}

void MetricsShard::AddTimerSeconds(std::string_view name, double seconds) {
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    timers_.emplace(std::string(name), seconds);
  } else {
    it->second += seconds;
  }
}

uint64_t MetricsShard::counter(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsShard::gauge(std::string_view name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

const OnlineStats* MetricsShard::stats(std::string_view name) const {
  auto it = stats_.find(name);
  return it == stats_.end() ? nullptr : &it->second;
}

const Histogram* MetricsShard::histogram(std::string_view name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

const LogHistogram* MetricsShard::latency_histogram(
    std::string_view name) const {
  auto it = log_histograms_.find(name);
  return it == log_histograms_.end() ? nullptr : &it->second;
}

double MetricsShard::timer_seconds(std::string_view name) const {
  auto it = timers_.find(name);
  return it == timers_.end() ? 0.0 : it->second;
}

bool MetricsShard::empty() const {
  return counters_.empty() && gauges_.empty() && stats_.empty() &&
         histograms_.empty() && log_histograms_.empty() && timers_.empty();
}

void MetricsShard::Merge(const MetricsShard& other) {
  for (const auto& [name, delta] : other.counters_) Count(name, delta);
  for (const auto& [name, value] : other.gauges_) SetGauge(name, value);
  for (const auto& [name, stats] : other.stats_) {
    auto it = stats_.find(name);
    if (it == stats_.end()) {
      stats_.emplace(name, stats);
    } else {
      it->second.Merge(stats);
    }
  }
  for (const auto& [name, hist] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, hist);
    } else {
      it->second.Merge(hist);
    }
  }
  for (const auto& [name, hist] : other.log_histograms_) {
    auto it = log_histograms_.find(name);
    if (it == log_histograms_.end()) {
      log_histograms_.emplace(name, hist);
    } else {
      it->second.Merge(hist);
    }
  }
  for (const auto& [name, seconds] : other.timers_) {
    AddTimerSeconds(name, seconds);
  }
}

void MetricsShard::WriteJson(JsonWriter& w, bool include_timers) const {
  w.BeginObject();
  w.Key("counters");
  w.BeginObject();
  for (const auto& [name, value] : counters_) {
    w.Key(name);
    w.UInt(value);
  }
  w.EndObject();
  w.Key("gauges");
  w.BeginObject();
  for (const auto& [name, value] : gauges_) {
    w.Key(name);
    w.Double(value);
  }
  w.EndObject();
  if (include_timers) {
    w.Key("timers_seconds");
    w.BeginObject();
    for (const auto& [name, value] : timers_) {
      w.Key(name);
      w.Double(value);
    }
    w.EndObject();
  }
  w.Key("stats");
  w.BeginObject();
  for (const auto& [name, s] : stats_) {
    w.Key(name);
    w.BeginObject();
    w.Key("count");
    w.UInt(s.count());
    w.Key("mean");
    w.Double(s.mean());
    w.Key("stddev");
    w.Double(s.stddev());
    w.Key("min");
    w.Double(s.min());
    w.Key("max");
    w.Double(s.max());
    w.Key("sum");
    w.Double(s.sum());
    w.EndObject();
  }
  w.EndObject();
  w.Key("histograms");
  w.BeginObject();
  for (const auto& [name, h] : histograms_) {
    w.Key(name);
    w.BeginObject();
    w.Key("count");
    w.UInt(h.count());
    w.Key("mean");
    w.Double(h.Mean());
    w.Key("p50");
    w.Int(h.PercentileRank(0.50));
    w.Key("p95");
    w.Int(h.PercentileRank(0.95));
    w.Key("p99");
    w.Int(h.PercentileRank(0.99));
    w.Key("overflow");
    w.UInt(h.overflow());
    w.EndObject();
  }
  w.EndObject();
  // Conditionally emitted: latency-off runs register no LogHistogram, and
  // their serialized snapshot must keep its historical bytes.
  if (!log_histograms_.empty()) {
    w.Key("latency_histograms");
    w.BeginObject();
    for (const auto& [name, h] : log_histograms_) {
      w.Key(name);
      w.BeginObject();
      w.Key("count");
      w.UInt(h.count());
      w.Key("mean");
      w.Double(h.Mean());
      w.Key("min");
      w.Double(h.min());
      w.Key("max");
      w.Double(h.max());
      w.Key("p50");
      w.Double(h.Percentile(0.50));
      w.Key("p90");
      w.Double(h.Percentile(0.90));
      w.Key("p99");
      w.Double(h.Percentile(0.99));
      w.Key("p999");
      w.Double(h.Percentile(0.999));
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndObject();
}

MetricsShard MetricsRegistry::Merged() const {
  MetricsShard merged;
  for (const MetricsShard& shard : shards_) merged.Merge(shard);
  return merged;
}

}  // namespace peercache
