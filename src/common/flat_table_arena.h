#ifndef PEERCACHE_COMMON_FLAT_TABLE_ARENA_H_
#define PEERCACHE_COMMON_FLAT_TABLE_ARENA_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/bits.h"

namespace peercache::overlay {

/// Handle to one node-owned slice of a FlatTableArena. A FlatList is a plain
/// value (12 bytes) stored inside the node record; the words live in the
/// arena. A default-constructed list is empty with no backing block.
struct FlatList {
  std::uint32_t offset = 0;    // global word offset of the backing block
  std::uint32_t size = 0;      // live words
  std::uint32_t capacity = 0;  // block words (0 = no block allocated)
};

/// Per-node uint64 routing-table memory for one network: finger tables, leaf
/// sets, routing rows, buckets, and auxiliary lists all live here as
/// contiguous slices instead of per-node std::vectors.
///
/// Layout contract:
///  - storage is a list of fixed-size chunks (kChunkWords words each);
///  - every block's capacity is a power of two (>= kMinCapacity) and blocks
///    are allocated aligned to their own capacity, so a block never straddles
///    a chunk boundary and a slice is always contiguous in memory;
///  - freed blocks go on per-size-class free lists and are reused by later
///    allocations of the same class (slab reuse under churn);
///  - offsets are 32-bit word indices, bounding one arena at 32 GiB.
///
/// The arena is deliberately lock-free and single-writer: all mutation
/// happens on the serial build/stabilize/churn paths. Parallel phases only
/// read (View / routing) — see docs/ARCHITECTURE.md §7.
class FlatTableArena {
 public:
  static constexpr std::uint32_t kChunkShift = 16;
  static constexpr std::uint32_t kChunkWords = std::uint32_t{1} << kChunkShift;
  static constexpr std::uint32_t kMinCapacity = 4;

  FlatTableArena() = default;
  FlatTableArena(const FlatTableArena&) = delete;
  FlatTableArena& operator=(const FlatTableArena&) = delete;
  FlatTableArena(FlatTableArena&&) = default;
  FlatTableArena& operator=(FlatTableArena&&) = default;

  std::span<const std::uint64_t> View(const FlatList& list) const {
    if (list.size == 0) return {};
    return {WordPtr(list.offset), list.size};
  }

  std::span<std::uint64_t> MutableView(const FlatList& list) {
    if (list.size == 0) return {};
    return {WordPtr(list.offset), list.size};
  }

  std::uint64_t At(const FlatList& list, std::size_t i) const {
    assert(i < list.size);
    return *WordPtr(list.offset + static_cast<std::uint32_t>(i));
  }

  /// Replaces the contents of `list` with `n` words, reusing the existing
  /// block when it is large enough.
  void Assign(FlatList& list, const std::uint64_t* data, std::size_t n) {
    if (n == 0) {  // keep any existing block; never touch chunk storage
      list.size = 0;
      return;
    }
    EnsureCapacity(list, n);
    std::uint64_t* dst = WordPtr(list.offset);
    for (std::size_t i = 0; i < n; ++i) dst[i] = data[i];
    list.size = static_cast<std::uint32_t>(n);
  }

  void Assign(FlatList& list, const std::vector<std::uint64_t>& values) {
    Assign(list, values.data(), values.size());
  }

  void PushBack(FlatList& list, std::uint64_t value) {
    if (list.size == list.capacity) {
      EnsureCapacity(list, static_cast<std::size_t>(list.size) + 1);
    }
    *WordPtr(list.offset + list.size) = value;
    ++list.size;
  }

  /// Removes every occurrence of `value`, preserving the order of survivors.
  void EraseValue(FlatList& list, std::uint64_t value) {
    EraseIf(list, [value](std::uint64_t w) { return w == value; });
  }

  /// Removes every word for which `pred` is true, preserving order.
  template <typename Pred>
  void EraseIf(FlatList& list, Pred pred) {
    if (list.size == 0) return;
    std::uint64_t* base = WordPtr(list.offset);
    std::uint32_t out = 0;
    for (std::uint32_t i = 0; i < list.size; ++i) {
      if (!pred(base[i])) base[out++] = base[i];
    }
    list.size = out;
  }

  /// Empties the list but keeps its block for reuse.
  void Clear(FlatList& list) { list.size = 0; }

  /// Returns the list's block to the free list; the list becomes empty.
  void Release(FlatList& list) {
    if (list.capacity != 0) {
      const std::uint32_t cls = SizeClass(list.capacity);
      if (free_.size() <= cls) free_.resize(cls + 1);
      free_[cls].push_back(list.offset);
      used_words_ -= list.capacity;
    }
    list = FlatList{};
  }

  /// Issues software prefetches for the first cache lines of the slice.
  void Prefetch(const FlatList& list) const {
    if (list.size == 0) return;
    const std::uint64_t* p = WordPtr(list.offset);
    __builtin_prefetch(p, 0, 1);
    if (list.size > 8) __builtin_prefetch(p + 8, 0, 1);
    if (list.size > 16) __builtin_prefetch(p + 16, 0, 1);
  }

  /// Words currently held by live blocks (capacity, not size), in bytes.
  std::size_t used_bytes() const { return used_words_ * sizeof(std::uint64_t); }

  /// Total chunk footprint in bytes (what the process actually allocated).
  std::size_t allocated_bytes() const {
    return chunks_.size() * kChunkWords * sizeof(std::uint64_t);
  }

  /// Blocks currently parked on free lists (for tests).
  std::size_t free_blocks() const {
    std::size_t n = 0;
    for (const auto& f : free_) n += f.size();
    return n;
  }

 private:
  static std::uint32_t SizeClass(std::uint32_t capacity) {
    return static_cast<std::uint32_t>(CeilLog2(capacity));
  }

  std::uint64_t* WordPtr(std::uint32_t offset) {
    return chunks_[offset >> kChunkShift].get() +
           (offset & (kChunkWords - 1));
  }
  const std::uint64_t* WordPtr(std::uint32_t offset) const {
    return chunks_[offset >> kChunkShift].get() +
           (offset & (kChunkWords - 1));
  }

  void EnsureCapacity(FlatList& list, std::size_t want) {
    if (want <= list.capacity) return;
    std::uint32_t cap = kMinCapacity;
    while (cap < want) cap <<= 1;
    assert(cap <= kChunkWords && "routing slice exceeds one arena chunk");
    const std::uint32_t offset = AllocateBlock(cap);
    // Migrate live words into the new block, then retire the old one.
    if (list.size != 0) {
      const std::uint64_t* src = WordPtr(list.offset);
      std::uint64_t* dst = WordPtr(offset);
      for (std::uint32_t i = 0; i < list.size; ++i) dst[i] = src[i];
    }
    const std::uint32_t live = list.size;
    Release(list);
    list.offset = offset;
    list.capacity = cap;
    list.size = live;
  }

  std::uint32_t AllocateBlock(std::uint32_t cap) {
    const std::uint32_t cls = SizeClass(cap);
    used_words_ += cap;
    if (cls < free_.size() && !free_[cls].empty()) {
      const std::uint32_t offset = free_[cls].back();
      free_[cls].pop_back();
      return offset;
    }
    // Align the bump pointer to the block size; power-of-two alignment
    // guarantees the block stays inside one chunk.
    tail_ = (tail_ + cap - 1) & ~(cap - 1);
    while ((tail_ >> kChunkShift) >= chunks_.size()) {
      chunks_.emplace_back(new std::uint64_t[kChunkWords]);
    }
    const std::uint32_t offset = tail_;
    tail_ += cap;
    return offset;
  }

  std::vector<std::unique_ptr<std::uint64_t[]>> chunks_;
  std::uint32_t tail_ = 0;
  std::vector<std::vector<std::uint32_t>> free_;
  std::size_t used_words_ = 0;
};

/// Memory accounting for one network's NodeStore (see NodeStore::MemoryUsage).
struct StoreMemoryStats {
  double bytes_per_node = 0.0;   // total footprint / node records
  std::size_t node_bytes = 0;    // node-record slabs
  std::size_t index_bytes = 0;   // alive flags, live arrays, id->slot map
  std::size_t table_bytes = 0;   // live routing-table words (arena blocks)
  std::size_t arena_bytes = 0;   // arena chunk footprint
};

}  // namespace peercache::overlay

#endif  // PEERCACHE_COMMON_FLAT_TABLE_ARENA_H_
