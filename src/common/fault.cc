#include "common/fault.h"

#include "common/random.h"

namespace peercache::fault {

namespace {

/// Domain-separation salts: the three predicates must draw from unrelated
/// streams even for identical (key, node) tuples.
constexpr uint64_t kDropSalt = 0x64726f70'666f7277ULL;
constexpr uint64_t kFailSalt = 0x6661696c'73746f70ULL;
constexpr uint64_t kStaleSalt = 0x7374616c'65656e74ULL;

/// Chains the SplitMix64 finalizer over a tuple of words. Each word is
/// mixed before xor so structured inputs (small ids sharing low bits) land
/// in unrelated points of the hash space — the same construction SplitSeed
/// uses for per-node RNG streams.
uint64_t MixChain(uint64_t h, uint64_t word) {
  return MixHash64(h ^ MixHash64(word));
}

/// Uniform double in [0, 1) from a hash value (the Rng::UniformDouble
/// mapping, applied to a stateless hash instead of a generator draw).
double UnitFromHash(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

bool FaultPlan::DropForward(uint64_t key, uint64_t from, uint64_t to,
                            int attempt) const {
  if (config_.drop_prob <= 0.0) return false;
  uint64_t h = MixChain(config_.seed, kDropSalt);
  h = MixChain(h, key);
  h = MixChain(h, from);
  h = MixChain(h, to);
  h = MixChain(h, static_cast<uint64_t>(attempt));
  return UnitFromHash(h) < config_.drop_prob;
}

bool FaultPlan::FailStopped(uint64_t key, uint64_t node) const {
  if (config_.fail_prob <= 0.0) return false;
  uint64_t h = MixChain(config_.seed, kFailSalt);
  h = MixChain(h, key);
  h = MixChain(h, node);
  return UnitFromHash(h) < config_.fail_prob;
}

bool FaultPlan::StaleBelievedAlive(uint64_t key, uint64_t holder,
                                   uint64_t entry) const {
  if (config_.stale_prob <= 0.0) return false;
  uint64_t h = MixChain(config_.seed, kStaleSalt);
  h = MixChain(h, key);
  h = MixChain(h, holder);
  h = MixChain(h, entry);
  return UnitFromHash(h) < config_.stale_prob;
}

}  // namespace peercache::fault
