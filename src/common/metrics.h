#ifndef PEERCACHE_COMMON_METRICS_H_
#define PEERCACHE_COMMON_METRICS_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/json_writer.h"
#include "common/stats.h"

namespace peercache {

/// One shard of named metric instruments: counters, gauges, wall-clock
/// timers, and the repo's OnlineStats / Histogram accumulators as
/// registrable instruments.
///
/// A shard is single-writer (no internal locking). Concurrent code gives
/// each worker task its own shard — in the experiment engine, one shard per
/// *node index*, not per thread — and merges the shards afterwards in index
/// order. Because the merge order is a property of the data layout rather
/// than the scheduler, merged results are bit-identical at every thread
/// count, matching the determinism contract of the parallel engine
/// (docs/ALGORITHMS.md §4).
class MetricsShard {
 public:
  /// Adds `delta` to a named monotonic counter.
  void Count(std::string_view name, uint64_t delta = 1);
  /// Sets a named point-in-time value (merge: the later shard wins).
  void SetGauge(std::string_view name, double value);
  /// Feeds one sample into a named OnlineStats accumulator.
  void Observe(std::string_view name, double sample);
  /// Folds a locally accumulated OnlineStats into a named accumulator in
  /// one call. Hot loops batch their samples in a stack-local OnlineStats
  /// and flush once, instead of paying a name lookup per sample; merging
  /// into a fresh instrument is an exact copy, so the result is
  /// bit-identical to per-sample Observe calls in the same order.
  void MergeStats(std::string_view name, const OnlineStats& samples);
  /// Feeds one value into a named fixed-bucket Histogram. `max_value` is
  /// used only when the instrument is first created; merging shards whose
  /// same-named histograms disagree on max_value is a programming error.
  void ObserveHistogram(std::string_view name, int value, int max_value = 64);
  /// Feeds one sample into a named log-bucketed LogHistogram (latency-style
  /// values spanning orders of magnitude).
  void ObserveLatency(std::string_view name, double value);
  /// Folds a locally accumulated LogHistogram into a named instrument in
  /// one call (the batching idiom MergeStats documents). A histogram with
  /// no samples creates no instrument.
  void MergeLatency(std::string_view name, const LogHistogram& samples);
  /// Accumulates wall-clock seconds under a named per-phase timer.
  void AddTimerSeconds(std::string_view name, double seconds);

  uint64_t counter(std::string_view name) const;
  double gauge(std::string_view name) const;
  /// Null when the instrument does not exist.
  const OnlineStats* stats(std::string_view name) const;
  const Histogram* histogram(std::string_view name) const;
  const LogHistogram* latency_histogram(std::string_view name) const;
  double timer_seconds(std::string_view name) const;

  bool empty() const;

  /// Folds `other` into this shard. Counters and timers add; gauges take
  /// `other`'s value; OnlineStats and Histograms use their own Merge. Call
  /// in ascending shard-index order for deterministic floating-point
  /// results.
  void Merge(const MetricsShard& other);

  /// Emits `{"counters":{...},"gauges":{...},"timers_seconds":{...},
  /// "stats":{...},"histograms":{...}}` with keys in sorted order.
  /// `include_timers = false` drops the wall-clock section, leaving only
  /// fields that are deterministic across runs and thread counts. A
  /// `latency_histograms` section (p50/p90/p99/p99.9 per instrument) is
  /// appended only when at least one LogHistogram instrument exists, so
  /// latency-off documents keep their historical bytes.
  void WriteJson(JsonWriter& w, bool include_timers = true) const;

 private:
  std::map<std::string, uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, OnlineStats, std::less<>> stats_;
  std::map<std::string, Histogram, std::less<>> histograms_;
  std::map<std::string, LogHistogram, std::less<>> log_histograms_;
  std::map<std::string, double, std::less<>> timers_;
};

/// Registry owning a fixed set of shards. Sized to the parallel loop's
/// iteration count (one shard per node) so that writes need no
/// synchronization and Merged() is deterministic.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(size_t n_shards = 1)
      : shards_(n_shards == 0 ? 1 : n_shards) {}

  size_t shard_count() const { return shards_.size(); }
  MetricsShard& shard(size_t i) { return shards_[i]; }
  const MetricsShard& shard(size_t i) const { return shards_[i]; }

  /// Merges every shard in index order into one snapshot.
  MetricsShard Merged() const;

 private:
  std::vector<MetricsShard> shards_;
};

/// RAII wall-clock timer: accumulates its lifetime into a shard timer.
class ScopedTimer {
 public:
  ScopedTimer(MetricsShard& shard, std::string name)
      : shard_(shard),
        name_(std::move(name)),
        start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    shard_.AddTimerSeconds(
        name_, std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             start_)
                   .count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  MetricsShard& shard_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace peercache

#endif  // PEERCACHE_COMMON_METRICS_H_
