#include "common/count_min.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "common/random.h"

namespace peercache {

namespace {

size_t RoundUpPow2(size_t x) {
  size_t p = 2;
  while (p < x) p <<= 1;
  return p;
}

uint32_t SaturatingAdd32(uint32_t a, uint64_t b) {
  uint64_t sum = static_cast<uint64_t>(a) + b;
  constexpr uint64_t kMax = std::numeric_limits<uint32_t>::max();
  return static_cast<uint32_t>(std::min(sum, kMax));
}

}  // namespace

CountMinSketch::CountMinSketch(size_t width, int depth, uint64_t seed)
    : width_(RoundUpPow2(width)), depth_(depth), seed_(seed) {
  assert(depth >= 1);
  row_salts_.reserve(static_cast<size_t>(depth_));
  for (int row = 0; row < depth_; ++row) {
    row_salts_.push_back(SplitSeed(seed_, static_cast<uint64_t>(row)));
  }
  table_.assign(width_ * static_cast<size_t>(depth_), 0);
}

size_t CountMinSketch::RowIndex(int row, uint64_t key) const {
  const uint64_t h = MixHash64(key ^ row_salts_[static_cast<size_t>(row)]);
  return static_cast<size_t>(row) * width_ + (h & (width_ - 1));
}

void CountMinSketch::Add(uint64_t key, uint64_t weight) {
  stream_length_ += weight;
  for (int row = 0; row < depth_; ++row) {
    uint32_t& cell = table_[RowIndex(row, key)];
    cell = SaturatingAdd32(cell, weight);
  }
}

uint64_t CountMinSketch::Estimate(uint64_t key) const {
  uint32_t est = std::numeric_limits<uint32_t>::max();
  for (int row = 0; row < depth_; ++row) {
    est = std::min(est, table_[RowIndex(row, key)]);
  }
  return est;
}

void CountMinSketch::Forget(uint64_t key) {
  const uint64_t est = Estimate(key);
  if (est == 0) return;
  for (int row = 0; row < depth_; ++row) {
    uint32_t& cell = table_[RowIndex(row, key)];
    // est is the row-wise minimum, so every cell holds at least est.
    cell -= static_cast<uint32_t>(est);
  }
}

void CountMinSketch::Merge(const CountMinSketch& other) {
  assert(width_ == other.width_ && depth_ == other.depth_ &&
         seed_ == other.seed_);
  for (size_t i = 0; i < table_.size(); ++i) {
    table_[i] = SaturatingAdd32(table_[i], other.table_[i]);
  }
  stream_length_ += other.stream_length_;
}

void CountMinSketch::Clear() {
  std::fill(table_.begin(), table_.end(), 0);
  stream_length_ = 0;
}

SpaceSavingFlat::SpaceSavingFlat(size_t capacity) : capacity_(capacity) {
  assert(capacity >= 1);
  slots_.reserve(capacity);
}

int SpaceSavingFlat::FindSlot(uint64_t key) const {
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].key == key) return static_cast<int>(i);
  }
  return -1;
}

int SpaceSavingFlat::MinSlot() const {
  int best = 0;
  for (size_t i = 1; i < slots_.size(); ++i) {
    const Slot& s = slots_[i];
    const Slot& b = slots_[static_cast<size_t>(best)];
    if (s.count < b.count || (s.count == b.count && s.key < b.key)) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

bool SpaceSavingFlat::Offer(uint64_t key, uint64_t weight,
                            uint64_t* evicted_key) {
  stream_length_ += weight;
  int idx = FindSlot(key);
  if (idx >= 0) {
    slots_[static_cast<size_t>(idx)].count += weight;
    return false;
  }
  if (slots_.size() < capacity_) {
    slots_.push_back(Slot{key, weight, 0});
    return false;
  }
  // Evict the minimum-count slot (smallest key among ties); the newcomer
  // inherits its count as the overestimation error.
  Slot& victim = slots_[static_cast<size_t>(MinSlot())];
  if (evicted_key != nullptr) *evicted_key = victim.key;
  const uint64_t min_count = victim.count;
  victim.key = key;
  victim.error = min_count;
  victim.count = min_count + weight;
  return true;
}

uint64_t SpaceSavingFlat::EstimatedCount(uint64_t key) const {
  int idx = FindSlot(key);
  return idx < 0 ? 0 : slots_[static_cast<size_t>(idx)].count;
}

std::vector<FlatTopEntry> SpaceSavingFlat::Entries() const {
  std::vector<FlatTopEntry> out;
  out.reserve(slots_.size());
  for (const Slot& s : slots_) {
    out.push_back(FlatTopEntry{s.key, s.count, s.error});
  }
  std::sort(out.begin(), out.end(),
            [](const FlatTopEntry& a, const FlatTopEntry& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.key < b.key;
            });
  return out;
}

bool SpaceSavingFlat::Reset(uint64_t key) {
  int idx = FindSlot(key);
  if (idx < 0) return false;
  slots_[static_cast<size_t>(idx)].count = 0;
  slots_[static_cast<size_t>(idx)].error = 0;
  return true;
}

void SpaceSavingFlat::Clear() {
  slots_.clear();
  stream_length_ = 0;
}

}  // namespace peercache
