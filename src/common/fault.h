#ifndef PEERCACHE_COMMON_FAULT_H_
#define PEERCACHE_COMMON_FAULT_H_

#include <cstdint>

namespace peercache::fault {

/// Fault-injection knobs for the routing layer. All probabilities are per
/// *decision* (one forwarding attempt, one node per lookup, one dead table
/// entry per lookup), evaluated deterministically from `seed` and the
/// decision's identity — never from an RNG stream — so a faulted run is a
/// pure function of (seed, workload) at any thread count.
struct FaultConfig {
  /// Probability that one forwarding attempt (a message from the current
  /// node to its chosen next hop) is lost. The sender detects the timeout
  /// and retries against its next-best entry.
  double drop_prob = 0.0;
  /// Probability that a given node is fail-stopped for the duration of one
  /// lookup (a mid-lookup departure: the node neither receives nor
  /// forwards). Decided per (lookup key, node), so a lookup routed around
  /// the failure sees the same node down on every table that lists it.
  double fail_prob = 0.0;
  /// Probability that a *dead* table entry still looks alive to the node
  /// holding it (a stale-entry window: the holder's liveness knowledge
  /// predates the departure). The holder forwards into the void, times
  /// out, retries, and reports the entry for eviction.
  double stale_prob = 0.0;
  /// Seed of the deterministic fault process. Independent of the
  /// experiment seed: the same workload can be replayed under different
  /// fault draws and vice versa.
  uint64_t seed = 0;
  /// Failed forwarding attempts tolerated per node visit before the lookup
  /// is abandoned. Each failed attempt also consumes one unit of the
  /// route's global hop budget (max_route_hops).
  int max_retries = 8;
  /// When false, the first failed forwarding attempt aborts the lookup —
  /// the baseline a resilient router is measured against.
  bool retry = true;

  bool enabled() const {
    return drop_prob > 0.0 || fail_prob > 0.0 || stale_prob > 0.0;
  }
};

/// Deterministic fault oracle handed to LookupInto. Every predicate is a
/// stateless hash of (seed, decision identity): concurrent lookups on any
/// thread count, or the same lookup replayed, see identical faults. An
/// `attempt` counter (maintained per lookup by the router) decorrelates
/// retransmissions to the same next hop, so a dropped message is not
/// deterministically dropped forever.
class FaultPlan {
 public:
  /// Inert plan: no faults, every predicate false.
  FaultPlan() = default;
  explicit FaultPlan(const FaultConfig& config) : config_(config) {}

  const FaultConfig& config() const { return config_; }
  bool enabled() const { return config_.enabled(); }

  /// Does the forwarding attempt `from -> to` for `key` get dropped?
  /// `attempt` is the lookup's running attempt counter.
  bool DropForward(uint64_t key, uint64_t from, uint64_t to,
                   int attempt) const;

  /// Is `node` fail-stopped for the whole lookup of `key`?
  bool FailStopped(uint64_t key, uint64_t node) const;

  /// Does `holder` still believe its dead entry `entry` is alive during
  /// the lookup of `key`? Only meaningful for entries that are actually
  /// dead; the router never consults it for live ones.
  bool StaleBelievedAlive(uint64_t key, uint64_t holder,
                          uint64_t entry) const;

 private:
  FaultConfig config_;
};

}  // namespace peercache::fault

#endif  // PEERCACHE_COMMON_FAULT_H_
