#ifndef PEERCACHE_NET_ACTOR_NODE_H_
#define PEERCACHE_NET_ACTOR_NODE_H_

#include <cstdint>
#include <vector>

#include "common/fault.h"
#include "common/latency.h"
#include "common/status.h"
#include "common/trace.h"
#include "net/bus.h"
#include "net/wire.h"

namespace peercache::net {

/// Turns an overlay backend into a set of message-driven actors: every node
/// of `Net` is one bus mailbox, and a lookup is a chain of wire messages
/// instead of one LookupInto call. The per-visit routing logic is the
/// network's own BeginRoute/StepRoute — the actor only suspends the route
/// at hop boundaries into a LOOKUP_STEP message and resumes it at the next
/// node, so the message path is byte-for-byte the direct path by
/// construction (certified by tests/net/actor_differential_test.cc).
///
/// Concurrency contract: HandleMessage is const and touches only const
/// views of the overlay, so the bus may dispatch distinct mailboxes on
/// different threads. Control messages (JOIN / LEAVE / STABILIZE) mutate the
/// overlay and must be applied serially through ApplyControl between bus
/// runs — exactly the "stop-the-world maintenance round" the simulator's
/// churn experiments already model.
template <typename Net>
class ActorHost {
 public:
  struct Config {
    /// Carry per-hop trace records in STEP/DONE messages.
    bool traced = false;
    const fault::FaultPlan* faults = nullptr;
    const latency::LatencyModel* latency = nullptr;
  };

  ActorHost(const Net& net, const Config& config)
      : net_(&net), config_(config) {}

  /// Bus handler for the lookup data plane. Decodes the envelope, performs
  /// one node visit, and emits the follow-up STEP (to the next hop) or DONE
  /// (to the client). A message addressed to a node the route does not stand
  /// at yields a DONE with kProtocolError; an undecodable frame is dropped.
  /// Each outbound message's delay is the latency the visit accrued, which
  /// makes the LatencyModel the bus's delivery clock.
  void HandleMessage(const Envelope& env, std::vector<Outbound>& out) const;

  /// Builds the framed LOOKUP_REQ a client posts to `origin`'s mailbox.
  std::vector<uint8_t> MakeLookupReq(uint64_t lookup_id, uint64_t origin,
                                     uint64_t key) const;

  /// Applies one control-plane message to the overlay (serial only).
  /// JOIN rejoins a known crashed node and adds an unknown one; LEAVE
  /// crashes (forgetting state when the overlay supports it); STABILIZE
  /// targets one node or, with kAllNodes, every live node.
  static Status ApplyControl(Net& net, const AnyMessage& msg);

 private:
  void StartLookup(const LookupReq& req, std::vector<Outbound>& out) const;
  void ContinueLookup(uint64_t at, const LookupStep& step,
                      std::vector<Outbound>& out) const;
  /// Runs one StepRoute visit on a live cursor and emits the follow-up
  /// message, given the route/trace state reconstructed (or created) by the
  /// caller.
  void StepAndEmit(uint64_t lookup_id, uint64_t client, uint64_t origin,
                   typename Net::RouteCursor& cursor,
                   overlay::RouteResult& result, RouteTrace* trace,
                   std::vector<Outbound>& out) const;
  void EmitError(uint64_t lookup_id, uint64_t client, uint64_t origin,
                 uint64_t key, LookupWireStatus status,
                 std::vector<Outbound>& out) const;

  const Net* net_;
  Config config_;
};

/// Reassembles the direct-call outputs from a DONE message: the final
/// RouteResult and, when the lookup was traced, the full RouteTrace. The
/// returned status mirrors what LookupInto would have returned.
Status UnpackDone(const LookupDone& done, overlay::RouteResult& result,
                  RouteTrace* trace);

/// Maps a BeginRoute failure status onto the wire status byte.
LookupWireStatus WireStatusOf(const Status& s);

// Member definitions live in actor_node.cc, which explicitly instantiates
// ActorHost for the three overlay backends (ChordNetwork, PastryNetwork,
// KademliaNetwork); users link against those instantiations.

}  // namespace peercache::net

#endif  // PEERCACHE_NET_ACTOR_NODE_H_
