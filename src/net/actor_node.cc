#include "net/actor_node.h"

#include <span>
#include <variant>

#include "chord/chord_network.h"
#include "common/route_result.h"
#include "kademlia/kademlia_network.h"
#include "pastry/pastry_network.h"

namespace peercache::net {

namespace {

template <typename Cursor>
WireCursor PackCursor(const Cursor& c) {
  WireCursor w;
  w.current = c.current;
  w.key = c.key;
  w.truth = c.truth;
  w.hops_taken = static_cast<uint32_t>(c.hops_taken);
  w.spent = static_cast<uint32_t>(c.spent);
  w.attempt = static_cast<uint32_t>(c.attempt);
  if (c.resilient) w.flags |= WireCursor::kFlagResilient;
  if constexpr (requires { c.numeric_mode; }) {
    if (c.numeric_mode) w.flags |= WireCursor::kFlagNumericMode;
  }
  return w;
}

template <typename Cursor>
void UnpackCursor(const WireCursor& w, Cursor& c) {
  c = Cursor{};
  c.current = w.current;
  c.key = w.key;
  c.truth = w.truth;
  c.hops_taken = static_cast<int>(w.hops_taken);
  c.spent = static_cast<int>(w.spent);
  c.attempt = static_cast<int>(w.attempt);
  c.resilient = (w.flags & WireCursor::kFlagResilient) != 0;
  if constexpr (requires { c.numeric_mode; }) {
    c.numeric_mode = (w.flags & WireCursor::kFlagNumericMode) != 0;
  }
  c.done = false;  // a STEP only travels while the route is live
}

}  // namespace

LookupWireStatus WireStatusOf(const Status& s) {
  if (s.ok()) return LookupWireStatus::kOk;
  if (s.code() == StatusCode::kUnavailable) {
    return LookupWireStatus::kOriginNotAlive;
  }
  return LookupWireStatus::kEmptyOverlay;
}

Status UnpackDone(const LookupDone& done, overlay::RouteResult& result,
                  RouteTrace* trace) {
  result.Clear();
  switch (static_cast<LookupWireStatus>(done.status)) {
    case LookupWireStatus::kOk:
      break;
    case LookupWireStatus::kOriginNotAlive:
      return Status::Unavailable("origin not alive");
    case LookupWireStatus::kEmptyOverlay:
      return Status::FailedPrecondition("empty overlay");
    case LookupWireStatus::kProtocolError:
      return Status::Internal("lookup protocol error");
  }
  UnpackRouteState(done.route, result);
  if (trace != nullptr && done.traced()) {
    trace->origin = done.origin;
    trace->key = done.key;
    trace->destination = result.destination;
    trace->success = result.success;
    trace->hops = result.hops;
    trace->latency_ms = result.latency_ms;
    UnpackHops(done.hops, trace->path);
  }
  return Status::Ok();
}

template <typename Net>
std::vector<uint8_t> ActorHost<Net>::MakeLookupReq(uint64_t lookup_id,
                                                   uint64_t origin,
                                                   uint64_t key) const {
  LookupReq req;
  req.lookup_id = lookup_id;
  req.client = kClientAddress;
  req.origin = origin;
  req.key = key;
  if (config_.traced) req.flags |= LookupReq::kFlagTraced;
  return Encode(req);
}

template <typename Net>
void ActorHost<Net>::EmitError(uint64_t lookup_id, uint64_t client,
                               uint64_t origin, uint64_t key,
                               LookupWireStatus status,
                               std::vector<Outbound>& out) const {
  LookupDone done;
  done.lookup_id = lookup_id;
  done.client = client;
  done.origin = origin;
  done.key = key;
  done.status = static_cast<uint8_t>(status);
  Outbound o;
  o.dst = client;
  o.payload = Encode(done);
  out.push_back(std::move(o));
}

template <typename Net>
void ActorHost<Net>::StepAndEmit(uint64_t lookup_id, uint64_t client,
                                 uint64_t origin,
                                 typename Net::RouteCursor& cursor,
                                 overlay::RouteResult& result,
                                 RouteTrace* trace,
                                 std::vector<Outbound>& out) const {
  const double before = result.latency_ms;
  net_->StepRoute(cursor, result, trace, config_.faults, config_.latency);
  // The visit's latency span is the message's transit time — the
  // LatencyModel is the bus's delivery clock. The full sum still travels
  // bit-exact inside the route state, so telemetry never re-accumulates.
  const double delay = result.latency_ms - before;
  Outbound o;
  o.delay_ms = delay;
  if (cursor.done) {
    LookupDone done;
    done.lookup_id = lookup_id;
    done.client = client;
    done.origin = origin;
    done.key = cursor.key;
    done.status = static_cast<uint8_t>(LookupWireStatus::kOk);
    done.route = PackRouteState(result);
    if (trace != nullptr) {
      done.flags |= LookupDone::kFlagTraced;
      done.hops = PackHops(trace->path);
    }
    o.dst = client;
    o.payload = Encode(done);
  } else {
    LookupStep step;
    step.lookup_id = lookup_id;
    step.client = client;
    step.origin = origin;
    step.cursor = PackCursor(cursor);
    step.route = PackRouteState(result);
    if (trace != nullptr) {
      step.flags |= LookupStep::kFlagTraced;
      step.hops = PackHops(trace->path);
    }
    o.dst = cursor.current;
    o.payload = Encode(step);
  }
  out.push_back(std::move(o));
}

template <typename Net>
void ActorHost<Net>::StartLookup(const LookupReq& req,
                                 std::vector<Outbound>& out) const {
  typename Net::RouteCursor cursor;
  overlay::RouteResult result;
  RouteTrace trace;
  RouteTrace* tp = req.traced() ? &trace : nullptr;
  const Status s = net_->BeginRoute(req.origin, req.key, cursor, result, tp,
                                    config_.faults, config_.latency);
  if (!s.ok()) {
    EmitError(req.lookup_id, req.client, req.origin, req.key, WireStatusOf(s),
              out);
    return;
  }
  StepAndEmit(req.lookup_id, req.client, req.origin, cursor, result, tp, out);
}

template <typename Net>
void ActorHost<Net>::ContinueLookup(uint64_t at, const LookupStep& step,
                                    std::vector<Outbound>& out) const {
  typename Net::RouteCursor cursor;
  UnpackCursor(step.cursor, cursor);
  if (cursor.current != at) {
    EmitError(step.lookup_id, step.client, step.origin, step.cursor.key,
              LookupWireStatus::kProtocolError, out);
    return;
  }
  overlay::RouteResult result;
  UnpackRouteState(step.route, result);
  RouteTrace trace;
  RouteTrace* tp = nullptr;
  if (step.traced()) {
    trace.origin = step.origin;
    trace.key = step.cursor.key;
    UnpackHops(step.hops, trace.path);
    tp = &trace;
  }
  StepAndEmit(step.lookup_id, step.client, step.origin, cursor, result, tp,
              out);
}

template <typename Net>
void ActorHost<Net>::HandleMessage(const Envelope& env,
                                   std::vector<Outbound>& out) const {
  auto decoded = Decode(std::span<const uint8_t>(env.payload));
  if (!decoded.ok()) return;  // undecodable frame: dropped, never UB
  const AnyMessage& msg = decoded.value();
  if (const auto* req = std::get_if<LookupReq>(&msg)) {
    if (req->origin != env.dst) {
      EmitError(req->lookup_id, req->client, req->origin, req->key,
                LookupWireStatus::kProtocolError, out);
      return;
    }
    StartLookup(*req, out);
  } else if (const auto* step = std::get_if<LookupStep>(&msg)) {
    ContinueLookup(env.dst, *step, out);
  }
  // DONE is client-side; control messages go through ApplyControl.
}

template <typename Net>
Status ActorHost<Net>::ApplyControl(Net& net, const AnyMessage& msg) {
  if (const auto* join = std::get_if<Join>(&msg)) {
    const auto* node = net.GetNode(join->node_id);
    if (node != nullptr && !net.IsAlive(join->node_id)) {
      return net.RejoinNode(join->node_id);
    }
    return net.AddNode(join->node_id);
  }
  if (const auto* leave = std::get_if<Leave>(&msg)) {
    if constexpr (requires(Net& n) { n.RemoveNode(uint64_t{0}, true); }) {
      return net.RemoveNode(leave->node_id, leave->forget_state != 0);
    } else {
      // Pastry retains crashed-node state unconditionally.
      return net.RemoveNode(leave->node_id);
    }
  }
  if (const auto* stab = std::get_if<Stabilize>(&msg)) {
    if (stab->node_id == kAllNodes) {
      net.StabilizeAll();
      return Status::Ok();
    }
    return net.StabilizeNode(stab->node_id);
  }
  return Status::InvalidArgument("not a control message");
}

template class ActorHost<chord::ChordNetwork>;
template class ActorHost<pastry::PastryNetwork>;
template class ActorHost<kademlia::KademliaNetwork>;

}  // namespace peercache::net
