#ifndef PEERCACHE_NET_WIRE_H_
#define PEERCACHE_NET_WIRE_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/route_result.h"
#include "common/status.h"
#include "common/trace.h"

/// Compact binary wire protocol for the message-driven runtime (cf.
/// pettycoin's protocol_net.h): fixed-layout little-endian fields behind a
/// versioned, checksummed frame header. The payload vocabulary is exactly
/// the repo's existing telemetry vocabulary — HopEntryKind, RouteResult
/// counters, RouteTrace hop records — so every figure and resilience/latency
/// block is derivable from a message log alone. Encoding writes bytes
/// explicitly (no struct memcpy), so layout is identical on every host;
/// decoding is bounds-checked at each field and rejects truncation, bad
/// magic/version/type, length mismatches, trailing garbage, and checksum
/// failures without ever reading out of bounds. See docs/RUNTIME.md.
namespace peercache::net {

/// Frame magic: "PCW1" read as bytes on the wire.
inline constexpr uint32_t kWireMagic = 0x31574350u;
inline constexpr uint16_t kWireVersion = 1;
/// Frame header size: magic u32, version u16, type u16, payload_len u32,
/// checksum u32.
inline constexpr size_t kWireHeaderSize = 16;
/// Hard payload cap (1 MiB): a length field beyond this is rejected before
/// any allocation, bounding adversarial memory use.
inline constexpr uint32_t kMaxPayloadLen = 1u << 20;

/// Reserved bus address for the runtime's client endpoint (lookup issuer);
/// node ids live in the id space (< 2^bits) and can never collide with it.
inline constexpr uint64_t kClientAddress = ~uint64_t{0};
/// STABILIZE target meaning "every live node".
inline constexpr uint64_t kAllNodes = ~uint64_t{0};

enum class MessageType : uint16_t {
  kLookupReq = 1,
  kLookupStep = 2,
  kLookupDone = 3,
  kJoin = 4,
  kLeave = 5,
  kStabilize = 6,
};

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320), nibble-table driven. `seed`
/// chains incremental updates: Crc32(b, Crc32(a)) == Crc32(a ++ b).
uint32_t Crc32(std::span<const uint8_t> data, uint32_t seed = 0);

/// Appends little-endian primitives to a byte buffer.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<uint8_t>& out) : out_(out) {}

  void U8(uint8_t v) { out_.push_back(v); }
  void U16(uint16_t v) {
    out_.push_back(static_cast<uint8_t>(v));
    out_.push_back(static_cast<uint8_t>(v >> 8));
  }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  /// Doubles travel as their IEEE-754 bit pattern, so a round trip is exact
  /// to the bit (latency sums stay byte-comparable against the direct path).
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }

 private:
  std::vector<uint8_t>& out_;
};

/// Bounds-checked little-endian reader: every accessor reports failure
/// instead of reading past the end, and decode routines require the cursor
/// to land exactly on the payload boundary.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(std::span<const uint8_t> buf)
      : data_(buf.data()), size_(buf.size()) {}

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

  bool U8(uint8_t& v) {
    if (remaining() < 1) return false;
    v = data_[pos_++];
    return true;
  }
  bool U16(uint16_t& v) {
    if (remaining() < 2) return false;
    v = static_cast<uint16_t>(data_[pos_] |
                              (static_cast<uint16_t>(data_[pos_ + 1]) << 8));
    pos_ += 2;
    return true;
  }
  bool U32(uint32_t& v) {
    if (remaining() < 4) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(data_[pos_ + static_cast<size_t>(i)])
           << (8 * i);
    }
    pos_ += 4;
    return true;
  }
  bool U64(uint64_t& v) {
    if (remaining() < 8) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(data_[pos_ + static_cast<size_t>(i)])
           << (8 * i);
    }
    pos_ += 8;
    return true;
  }
  bool F64(double& v) {
    uint64_t bits;
    if (!U64(bits)) return false;
    std::memcpy(&v, &bits, sizeof(v));
    return true;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// LOOKUP_REQ — client asks `origin` to resolve `key`. flags bit 0 requests
/// a per-hop trace to travel with the route.
struct LookupReq {
  uint64_t lookup_id = 0;
  uint64_t client = kClientAddress;
  uint64_t origin = 0;
  uint64_t key = 0;
  uint8_t flags = 0;

  static constexpr uint8_t kFlagTraced = 1u << 0;
  bool traced() const { return (flags & kFlagTraced) != 0; }

  friend bool operator==(const LookupReq&, const LookupReq&) = default;
};

/// The in-flight route cursor — the union of the three overlays'
/// RouteCursor fields (pastry's numeric-mode latch rides in a flag bit).
struct WireCursor {
  uint64_t current = 0;
  uint64_t key = 0;
  uint64_t truth = 0;
  uint32_t hops_taken = 0;
  uint32_t spent = 0;
  uint32_t attempt = 0;
  uint8_t flags = 0;

  static constexpr uint8_t kFlagResilient = 1u << 0;
  static constexpr uint8_t kFlagNumericMode = 1u << 1;

  friend bool operator==(const WireCursor&, const WireCursor&) = default;
};

/// One RouteTrace hop record on the wire: entry kind, remaining-distance
/// metric (overlay-specific), latency span, and fault tags.
struct WireHop {
  uint64_t from = 0;
  uint64_t to = 0;
  uint64_t remaining = 0;
  double latency_ms = 0;
  uint8_t kind = 0;   // HopEntryKind
  uint8_t flags = 0;  // bit 0: dropped, bit 1: retried

  static constexpr uint8_t kFlagDropped = 1u << 0;
  static constexpr uint8_t kFlagRetried = 1u << 1;

  friend bool operator==(const WireHop&, const WireHop&) = default;
};

/// RouteResult state accumulated so far (in a STEP) or final (in a DONE).
struct WireRouteState {
  uint8_t flags = 0;  // bit 0: success, bit 1: budget_exhausted
  uint64_t destination = 0;
  uint32_t hops = 0;
  uint32_t aux_hops = 0;
  uint32_t retries = 0;
  uint32_t dropped_forwards = 0;
  uint32_t failstop_skips = 0;
  uint32_t stale_forwards = 0;
  double latency_ms = 0;
  std::vector<uint64_t> path;
  std::vector<std::pair<uint64_t, uint64_t>> dead_evictions;

  static constexpr uint8_t kFlagSuccess = 1u << 0;
  static constexpr uint8_t kFlagBudgetExhausted = 1u << 1;

  friend bool operator==(const WireRouteState&, const WireRouteState&) =
      default;
};

/// LOOKUP_STEP — a suspended lookup handed to the next node: the resumable
/// cursor plus everything accumulated so far. Self-contained: telemetry for
/// the route needs nothing but this message chain.
struct LookupStep {
  uint64_t lookup_id = 0;
  uint64_t client = kClientAddress;
  uint64_t origin = 0;
  uint8_t flags = 0;  // bit 0: traced (hop log travels)
  WireCursor cursor;
  WireRouteState route;
  std::vector<WireHop> hops;  // present when traced

  static constexpr uint8_t kFlagTraced = 1u << 0;
  bool traced() const { return (flags & kFlagTraced) != 0; }

  friend bool operator==(const LookupStep&, const LookupStep&) = default;
};

/// LOOKUP_DONE — final answer back to the client. status 0 is success-path
/// (route ran to completion; route.flags says whether it delivered);
/// non-zero mirrors the direct call's error statuses.
struct LookupDone {
  uint64_t lookup_id = 0;
  uint64_t client = kClientAddress;
  uint64_t origin = 0;
  uint64_t key = 0;
  uint8_t status = 0;  // LookupWireStatus
  uint8_t flags = 0;   // bit 0: traced
  WireRouteState route;
  std::vector<WireHop> hops;

  static constexpr uint8_t kFlagTraced = 1u << 0;
  bool traced() const { return (flags & kFlagTraced) != 0; }

  friend bool operator==(const LookupDone&, const LookupDone&) = default;
};

enum class LookupWireStatus : uint8_t {
  kOk = 0,
  kOriginNotAlive = 1,
  kEmptyOverlay = 2,
  kProtocolError = 3,
};

struct Join {
  uint64_t node_id = 0;
  friend bool operator==(const Join&, const Join&) = default;
};

struct Leave {
  uint64_t node_id = 0;
  uint8_t forget_state = 0;  // overlays without state-forgetting ignore it
  friend bool operator==(const Leave&, const Leave&) = default;
};

struct Stabilize {
  uint64_t node_id = kAllNodes;  // kAllNodes = every live node
  friend bool operator==(const Stabilize&, const Stabilize&) = default;
};

using AnyMessage =
    std::variant<LookupReq, LookupStep, LookupDone, Join, Leave, Stabilize>;

/// Encodes one message into a framed wire buffer (header + payload).
std::vector<uint8_t> Encode(const LookupReq& msg);
std::vector<uint8_t> Encode(const LookupStep& msg);
std::vector<uint8_t> Encode(const LookupDone& msg);
std::vector<uint8_t> Encode(const Join& msg);
std::vector<uint8_t> Encode(const Leave& msg);
std::vector<uint8_t> Encode(const Stabilize& msg);
std::vector<uint8_t> Encode(const AnyMessage& msg);

/// Validates the frame header (magic, version, known type, exact length,
/// checksum) and returns the message type without touching the payload.
Result<MessageType> PeekType(std::span<const uint8_t> frame);

/// Decodes a full frame. Any malformed input — truncated at any byte,
/// flipped bits, unknown version or type, payload longer or shorter than
/// its fields, trailing bytes — yields a non-OK status, never UB.
Result<AnyMessage> Decode(std::span<const uint8_t> frame);

/// RouteResult <-> wire conversions (exact, including double bit patterns).
WireRouteState PackRouteState(const overlay::RouteResult& r);
void UnpackRouteState(const WireRouteState& w, overlay::RouteResult& out);

/// RouteTrace hop records <-> wire conversions.
std::vector<WireHop> PackHops(const std::vector<HopRecord>& path);
void UnpackHops(const std::vector<WireHop>& hops,
                std::vector<HopRecord>& out);

}  // namespace peercache::net

#endif  // PEERCACHE_NET_WIRE_H_
