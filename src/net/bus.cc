#include "net/bus.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/random.h"

namespace peercache::net {

MessageBus::MessageBus(const BusConfig& config, ThreadPool* pool)
    : config_(config), pool_(pool) {
  if (config_.tick_ms <= 0) config_.tick_ms = 1.0;
}

uint64_t MessageBus::DeliveryTick(uint64_t from_tick, double delay_ms) const {
  double ticks = 0;
  if (delay_ms > 0) ticks = std::ceil(delay_ms / config_.tick_ms);
  // At least one tick after the send: a message is never handled in the
  // tick that produced it (causality / determinism of the tick barrier).
  const auto extra =
      ticks < 1 ? uint64_t{1} : static_cast<uint64_t>(ticks);
  return from_tick + extra;
}

void MessageBus::Enqueue(uint64_t src, uint64_t dst, uint64_t tick,
                         std::vector<uint8_t> payload) {
  Envelope env;
  env.src = src;
  env.dst = dst;
  env.tick = tick;
  env.seq = next_seq_++;
  env.payload = std::move(payload);
  pending_[tick].push_back(std::move(env));
}

void MessageBus::Post(uint64_t src, uint64_t dst, double delay_ms,
                      std::vector<uint8_t> payload) {
  Enqueue(src, dst, DeliveryTick(last_tick_, delay_ms), std::move(payload));
}

size_t MessageBus::pending() const {
  size_t n = 0;
  for (const auto& [tick, batch] : pending_) n += batch.size();
  return n;
}

uint64_t MessageBus::Run(const Handler& handler) {
  uint64_t delivered_here = 0;
  while (!pending_.empty()) {
    auto first = pending_.begin();
    const uint64_t tick = first->first;
    if (tick > config_.max_ticks) break;
    std::vector<Envelope> batch = std::move(first->second);
    pending_.erase(first);
    last_tick_ = tick;

    // Deterministic mailbox order: (dst, seeded tie, seq). The seeded hash
    // shuffles same-mailbox arrivals so no sender order is structurally
    // privileged, while seq keeps the comparator a strict total order.
    std::sort(batch.begin(), batch.end(),
              [this](const Envelope& a, const Envelope& b) {
                if (a.dst != b.dst) return a.dst < b.dst;
                const uint64_t ta = MixHash64(SplitSeed(config_.seed, a.dst) ^
                                              a.seq);
                const uint64_t tb = MixHash64(SplitSeed(config_.seed, b.dst) ^
                                              b.seq);
                if (ta != tb) return ta < tb;
                return a.seq < b.seq;
              });

    // Mailbox boundaries: one contiguous run per destination.
    std::vector<std::pair<size_t, size_t>> groups;
    for (size_t i = 0; i < batch.size();) {
      size_t j = i + 1;
      while (j < batch.size() && batch[j].dst == batch[i].dst) ++j;
      groups.emplace_back(i, j);
      i = j;
    }

    // Parallel dispatch: one task per mailbox, outbound messages collected
    // into index-addressed slots (no cross-task writes).
    std::vector<std::vector<Outbound>> outbound(groups.size());
    pool_->ParallelFor(0, groups.size(), 1, [&](size_t g) {
      const auto [lo, hi] = groups[g];
      for (size_t i = lo; i < hi; ++i) {
        handler(batch[i], outbound[g]);
      }
    });

    // Serial merge in mailbox order: seq assignment (and therefore the next
    // tick's tie-break inputs) is identical at any thread count.
    for (size_t g = 0; g < groups.size(); ++g) {
      const uint64_t src = batch[groups[g].first].dst;
      for (Outbound& o : outbound[g]) {
        Enqueue(src, o.dst, DeliveryTick(tick, o.delay_ms),
                std::move(o.payload));
      }
    }
    delivered_here += batch.size();
    delivered_ += batch.size();
  }
  return delivered_here;
}

}  // namespace peercache::net
