#ifndef PEERCACHE_NET_BUS_H_
#define PEERCACHE_NET_BUS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/thread_pool.h"

namespace peercache::net {

/// Bus parameters. `tick_ms` is the delivery-clock quantum: a message
/// posted with delay d lands ceil(d / tick_ms) ticks after the tick it was
/// sent on, never sooner than the next tick (causality). `seed` drives the
/// deterministic tie-break among messages sharing a (tick, dst) mailbox.
struct BusConfig {
  uint64_t seed = 1;
  double tick_ms = 1.0;
  /// Safety valve: Run aborts (returning what was delivered) if the clock
  /// passes this tick, so a malformed handler cannot spin forever.
  uint64_t max_ticks = ~uint64_t{0};
};

/// One delivered message.
struct Envelope {
  uint64_t src = 0;
  uint64_t dst = 0;
  uint64_t tick = 0;  ///< delivery tick
  uint64_t seq = 0;   ///< global post order (assigned by the bus)
  std::vector<uint8_t> payload;
};

/// One message a handler wants sent: the bus stamps src (the handling
/// mailbox), computes the delivery tick from `delay_ms`, and assigns seq.
struct Outbound {
  uint64_t dst = 0;
  double delay_ms = 0;
  std::vector<uint8_t> payload;
};

/// In-process asynchronous message bus with per-destination mailboxes,
/// dispatched over the shared ThreadPool.
///
/// Determinism rule (docs/RUNTIME.md): delivery order is a pure function of
/// (seed, posted messages) — never of thread timing. Each tick, all due
/// messages are sorted by (dst, tie, seq) where tie = MixHash64(
/// SplitSeed(seed, dst) ^ seq), grouped into per-dst mailboxes, and the
/// groups are handled in parallel (one task per mailbox, messages within a
/// mailbox in sorted order). Handlers' outbound messages are merged in
/// mailbox order after the tick's barrier and given globally increasing
/// seq numbers, so the next tick's order is again thread-independent. A
/// handler must be safe to run concurrently with handlers of OTHER
/// destinations; messages to one destination are always handled serially.
///
/// Loss and delay live in the layers above: actors evaluate the FaultPlan's
/// deterministic drop/fail-stop/stale gates sender-side (a dropped forward
/// is retried by the sender inside its visit and never becomes a message),
/// and the LatencyModel's per-hop spans become `Outbound::delay_ms`, making
/// it the bus's delivery clock.
class MessageBus {
 public:
  using Handler = std::function<void(const Envelope&, std::vector<Outbound>&)>;

  MessageBus(const BusConfig& config, ThreadPool* pool);

  /// Enqueues a message from outside the bus (tick 0 send time).
  void Post(uint64_t src, uint64_t dst, double delay_ms,
            std::vector<uint8_t> payload);

  /// Delivers messages tick by tick until the bus drains (or max_ticks).
  /// Returns the number of messages delivered by this call.
  uint64_t Run(const Handler& handler);

  uint64_t posted() const { return next_seq_; }
  uint64_t delivered() const { return delivered_; }
  uint64_t last_tick() const { return last_tick_; }
  size_t pending() const;

 private:
  /// Delivery tick for a message sent on `from_tick` with delay `delay_ms`.
  uint64_t DeliveryTick(uint64_t from_tick, double delay_ms) const;
  void Enqueue(uint64_t src, uint64_t dst, uint64_t tick,
               std::vector<uint8_t> payload);

  BusConfig config_;
  ThreadPool* pool_;
  std::map<uint64_t, std::vector<Envelope>> pending_;  // tick -> messages
  uint64_t next_seq_ = 0;
  uint64_t delivered_ = 0;
  uint64_t last_tick_ = 0;
};

}  // namespace peercache::net

#endif  // PEERCACHE_NET_BUS_H_
