#ifndef PEERCACHE_NET_PEER_CACHE_H_
#define PEERCACHE_NET_PEER_CACHE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace peercache::net {

/// On-disk layout parameters, fixed at Create time and persisted in the
/// file header. Record payloads are truncated to the capacities, so every
/// record — and therefore the whole file — has a fixed size: slot addressing
/// is pure arithmetic and a crashed writer can only tear the one record it
/// was writing.
struct PeerCacheConfig {
  uint32_t slot_count = 1024;
  /// Auxiliary ids persisted per record (selection order, best first).
  uint32_t aux_capacity = 16;
  /// (peer, count) frequency pairs persisted per record.
  uint32_t freq_capacity = 64;
  /// Placement salt: slots are assigned by a salted hash of the node id, so
  /// two caches with different salts scatter the same peers differently
  /// (cf. pettycoin's peer_cache). Also mixed into every record checksum,
  /// which ties records to their file.
  uint64_t salt = 0x9e3779b97f4a7c15ull;
};

/// What one node persists across a crash: its auxiliary list and the
/// frequency observations that produced it.
struct PeerRecord {
  uint64_t node_id = 0;
  std::vector<uint64_t> auxiliaries;
  std::vector<std::pair<uint64_t, uint64_t>> frequencies;  // (peer, count)

  friend bool operator==(const PeerRecord&, const PeerRecord&) = default;
};

struct PeerCacheStats {
  uint32_t used = 0;      ///< valid records found at Open / live now
  uint32_t rejected = 0;  ///< torn or corrupt records dropped at Open
  uint64_t writes = 0;
  uint64_t evictions = 0;  ///< Put displaced a colliding record
};

/// Crash-safe single-file peer cache: a fixed array of hash-addressed,
/// individually checksummed record slots behind a checksummed header.
///
/// A node id maps to a window of kProbeWindow consecutive slots starting at
/// its salted hash; Put overwrites the node's existing slot, else takes the
/// first empty one, else evicts a hash-chosen victim in the window. Every
/// record carries a CRC over (salt ++ record bytes); a record whose write
/// was torn by a crash fails its CRC at Open and is dropped — the cache
/// never serves partial state, it just forgets what was mid-write. The
/// header is written once at Create and never rewritten, so a crash at any
/// moment leaves a file Open can always read.
///
/// Durability: Put writes with pwrite; call Sync to fsync before a point
/// where a crash must not lose accepted records.
class PeerCache {
 public:
  static constexpr uint32_t kProbeWindow = 8;

  /// Creates (truncating) a cache file with the given geometry.
  static Result<PeerCache> Create(const std::string& path,
                                  const PeerCacheConfig& config);

  /// Opens an existing cache file, validating the header and every used
  /// slot's checksum. Torn/corrupt records are counted in stats().rejected
  /// and treated as empty.
  static Result<PeerCache> Open(const std::string& path);

  PeerCache(PeerCache&& other) noexcept;
  PeerCache& operator=(PeerCache&& other) noexcept;
  PeerCache(const PeerCache&) = delete;
  PeerCache& operator=(const PeerCache&) = delete;
  ~PeerCache();

  /// Persists one node's record (lists truncated to the file's capacities).
  Status Put(const PeerRecord& record);

  /// Loads a node's record. False when the node is not cached.
  bool Get(uint64_t node_id, PeerRecord& out) const;

  /// All cached node ids, in slot order.
  std::vector<uint64_t> Ids() const;

  /// Flushes accepted writes to stable storage.
  Status Sync();

  const PeerCacheConfig& config() const { return config_; }
  const PeerCacheStats& stats() const { return stats_; }
  size_t size() const { return index_.size(); }

 private:
  PeerCache() = default;

  size_t RecordSize() const;
  uint64_t SlotOffset(uint32_t slot) const;
  uint64_t PlacementHash(uint64_t node_id) const;
  std::vector<uint8_t> EncodeRecord(const PeerRecord& record) const;
  bool DecodeRecord(const std::vector<uint8_t>& bytes, PeerRecord& out) const;

  int fd_ = -1;
  PeerCacheConfig config_;
  PeerCacheStats stats_;
  /// node_id -> slot for every valid record (rebuilt at Open).
  std::vector<std::pair<uint64_t, uint32_t>> index_;  // sorted by node_id
  std::vector<uint64_t> slot_ids_;  // slot -> node_id (empty sentinel below)
  static constexpr uint64_t kEmptySlot = ~uint64_t{0};
};

}  // namespace peercache::net

#endif  // PEERCACHE_NET_PEER_CACHE_H_
