#include "net/wire.h"

#include <array>

namespace peercache::net {

namespace {

/// Nibble-driven CRC-32: 16-entry table, two lookups per byte. Small enough
/// to live in cache, fast enough for control-plane framing.
constexpr std::array<uint32_t, 16> kCrcTable = [] {
  std::array<uint32_t, 16> t{};
  for (uint32_t i = 0; i < 16; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 4; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    t[i] = c;
  }
  return t;
}();

void WriteU64Vector(ByteWriter& w, const std::vector<uint64_t>& v) {
  w.U32(static_cast<uint32_t>(v.size()));
  for (uint64_t x : v) w.U64(x);
}

bool ReadU64Vector(ByteReader& r, std::vector<uint64_t>& v) {
  uint32_t count;
  if (!r.U32(count)) return false;
  if (static_cast<size_t>(count) * 8 > r.remaining()) return false;
  v.clear();
  v.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t x;
    if (!r.U64(x)) return false;
    v.push_back(x);
  }
  return true;
}

void WriteRouteState(ByteWriter& w, const WireRouteState& s) {
  w.U8(s.flags);
  w.U64(s.destination);
  w.U32(s.hops);
  w.U32(s.aux_hops);
  w.U32(s.retries);
  w.U32(s.dropped_forwards);
  w.U32(s.failstop_skips);
  w.U32(s.stale_forwards);
  w.F64(s.latency_ms);
  WriteU64Vector(w, s.path);
  w.U32(static_cast<uint32_t>(s.dead_evictions.size()));
  for (const auto& [holder, entry] : s.dead_evictions) {
    w.U64(holder);
    w.U64(entry);
  }
}

bool ReadRouteState(ByteReader& r, WireRouteState& s) {
  if (!r.U8(s.flags) || !r.U64(s.destination) || !r.U32(s.hops) ||
      !r.U32(s.aux_hops) || !r.U32(s.retries) || !r.U32(s.dropped_forwards) ||
      !r.U32(s.failstop_skips) || !r.U32(s.stale_forwards) ||
      !r.F64(s.latency_ms) || !ReadU64Vector(r, s.path)) {
    return false;
  }
  uint32_t count;
  if (!r.U32(count)) return false;
  if (static_cast<size_t>(count) * 16 > r.remaining()) return false;
  s.dead_evictions.clear();
  s.dead_evictions.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t holder, entry;
    if (!r.U64(holder) || !r.U64(entry)) return false;
    s.dead_evictions.emplace_back(holder, entry);
  }
  return true;
}

void WriteCursor(ByteWriter& w, const WireCursor& c) {
  w.U64(c.current);
  w.U64(c.key);
  w.U64(c.truth);
  w.U32(c.hops_taken);
  w.U32(c.spent);
  w.U32(c.attempt);
  w.U8(c.flags);
}

bool ReadCursor(ByteReader& r, WireCursor& c) {
  return r.U64(c.current) && r.U64(c.key) && r.U64(c.truth) &&
         r.U32(c.hops_taken) && r.U32(c.spent) && r.U32(c.attempt) &&
         r.U8(c.flags);
}

void WriteHops(ByteWriter& w, const std::vector<WireHop>& hops) {
  w.U32(static_cast<uint32_t>(hops.size()));
  for (const WireHop& h : hops) {
    w.U64(h.from);
    w.U64(h.to);
    w.U64(h.remaining);
    w.F64(h.latency_ms);
    w.U8(h.kind);
    w.U8(h.flags);
  }
}

bool ReadHops(ByteReader& r, std::vector<WireHop>& hops) {
  uint32_t count;
  if (!r.U32(count)) return false;
  if (static_cast<size_t>(count) * 34 > r.remaining()) return false;
  hops.clear();
  hops.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    WireHop h;
    if (!r.U64(h.from) || !r.U64(h.to) || !r.U64(h.remaining) ||
        !r.F64(h.latency_ms) || !r.U8(h.kind) || !r.U8(h.flags)) {
      return false;
    }
    // Entry kinds are part of the schema: an unknown kind is a corrupt or
    // future frame, not something to propagate into telemetry.
    if (h.kind > static_cast<uint8_t>(HopEntryKind::kBucket)) return false;
    hops.push_back(h);
  }
  return true;
}

/// Frames `payload` under the versioned checksummed header. The checksum
/// covers version, type, payload_len, and the payload (everything after
/// the magic except the checksum field itself).
std::vector<uint8_t> Frame(MessageType type,
                           const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> out;
  out.reserve(kWireHeaderSize + payload.size());
  ByteWriter w(out);
  w.U32(kWireMagic);
  w.U16(kWireVersion);
  w.U16(static_cast<uint16_t>(type));
  w.U32(static_cast<uint32_t>(payload.size()));
  const uint32_t crc =
      Crc32(std::span<const uint8_t>(payload.data(), payload.size()),
            Crc32(std::span<const uint8_t>(out.data() + 4, 8)));
  w.U32(crc);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

bool KnownType(uint16_t t) {
  return t >= static_cast<uint16_t>(MessageType::kLookupReq) &&
         t <= static_cast<uint16_t>(MessageType::kStabilize);
}

/// Header validation shared by PeekType and Decode.
Status CheckFrame(std::span<const uint8_t> frame, MessageType& type) {
  if (frame.size() < kWireHeaderSize) {
    return Status::InvalidArgument("wire: frame shorter than header");
  }
  ByteReader r(frame.data(), kWireHeaderSize);
  uint32_t magic, payload_len, checksum;
  uint16_t version, raw_type;
  (void)r.U32(magic);
  (void)r.U16(version);
  (void)r.U16(raw_type);
  (void)r.U32(payload_len);
  (void)r.U32(checksum);
  if (magic != kWireMagic) return Status::InvalidArgument("wire: bad magic");
  if (version != kWireVersion) {
    return Status::InvalidArgument("wire: unsupported version");
  }
  if (!KnownType(raw_type)) {
    return Status::InvalidArgument("wire: unknown message type");
  }
  if (payload_len > kMaxPayloadLen) {
    return Status::InvalidArgument("wire: payload length over cap");
  }
  if (frame.size() != kWireHeaderSize + payload_len) {
    return Status::InvalidArgument("wire: frame length mismatch");
  }
  const uint32_t expect =
      Crc32(frame.subspan(kWireHeaderSize), Crc32(frame.subspan(4, 8)));
  if (checksum != expect) {
    return Status::InvalidArgument("wire: checksum mismatch");
  }
  type = static_cast<MessageType>(raw_type);
  return Status::Ok();
}

}  // namespace

uint32_t Crc32(std::span<const uint8_t> data, uint32_t seed) {
  uint32_t crc = ~seed;
  for (uint8_t b : data) {
    crc = kCrcTable[(crc ^ b) & 0xF] ^ (crc >> 4);
    crc = kCrcTable[(crc ^ (b >> 4)) & 0xF] ^ (crc >> 4);
  }
  return ~crc;
}

std::vector<uint8_t> Encode(const LookupReq& msg) {
  std::vector<uint8_t> payload;
  ByteWriter w(payload);
  w.U64(msg.lookup_id);
  w.U64(msg.client);
  w.U64(msg.origin);
  w.U64(msg.key);
  w.U8(msg.flags);
  return Frame(MessageType::kLookupReq, payload);
}

std::vector<uint8_t> Encode(const LookupStep& msg) {
  std::vector<uint8_t> payload;
  ByteWriter w(payload);
  w.U64(msg.lookup_id);
  w.U64(msg.client);
  w.U64(msg.origin);
  w.U8(msg.flags);
  WriteCursor(w, msg.cursor);
  WriteRouteState(w, msg.route);
  WriteHops(w, msg.hops);
  return Frame(MessageType::kLookupStep, payload);
}

std::vector<uint8_t> Encode(const LookupDone& msg) {
  std::vector<uint8_t> payload;
  ByteWriter w(payload);
  w.U64(msg.lookup_id);
  w.U64(msg.client);
  w.U64(msg.origin);
  w.U64(msg.key);
  w.U8(msg.status);
  w.U8(msg.flags);
  WriteRouteState(w, msg.route);
  WriteHops(w, msg.hops);
  return Frame(MessageType::kLookupDone, payload);
}

std::vector<uint8_t> Encode(const Join& msg) {
  std::vector<uint8_t> payload;
  ByteWriter w(payload);
  w.U64(msg.node_id);
  return Frame(MessageType::kJoin, payload);
}

std::vector<uint8_t> Encode(const Leave& msg) {
  std::vector<uint8_t> payload;
  ByteWriter w(payload);
  w.U64(msg.node_id);
  w.U8(msg.forget_state);
  return Frame(MessageType::kLeave, payload);
}

std::vector<uint8_t> Encode(const Stabilize& msg) {
  std::vector<uint8_t> payload;
  ByteWriter w(payload);
  w.U64(msg.node_id);
  return Frame(MessageType::kStabilize, payload);
}

std::vector<uint8_t> Encode(const AnyMessage& msg) {
  return std::visit([](const auto& m) { return Encode(m); }, msg);
}

Result<MessageType> PeekType(std::span<const uint8_t> frame) {
  MessageType type;
  if (Status s = CheckFrame(frame, type); !s.ok()) return s;
  return type;
}

Result<AnyMessage> Decode(std::span<const uint8_t> frame) {
  MessageType type;
  if (Status s = CheckFrame(frame, type); !s.ok()) return s;
  ByteReader r(frame.subspan(kWireHeaderSize));
  auto malformed = [] {
    return Status::InvalidArgument("wire: malformed payload");
  };
  switch (type) {
    case MessageType::kLookupReq: {
      LookupReq m;
      if (!r.U64(m.lookup_id) || !r.U64(m.client) || !r.U64(m.origin) ||
          !r.U64(m.key) || !r.U8(m.flags) || !r.AtEnd()) {
        return malformed();
      }
      return AnyMessage{m};
    }
    case MessageType::kLookupStep: {
      LookupStep m;
      if (!r.U64(m.lookup_id) || !r.U64(m.client) || !r.U64(m.origin) ||
          !r.U8(m.flags) || !ReadCursor(r, m.cursor) ||
          !ReadRouteState(r, m.route) || !ReadHops(r, m.hops) || !r.AtEnd()) {
        return malformed();
      }
      return AnyMessage{std::move(m)};
    }
    case MessageType::kLookupDone: {
      LookupDone m;
      if (!r.U64(m.lookup_id) || !r.U64(m.client) || !r.U64(m.origin) ||
          !r.U64(m.key) || !r.U8(m.status) || !r.U8(m.flags) ||
          !ReadRouteState(r, m.route) || !ReadHops(r, m.hops) || !r.AtEnd()) {
        return malformed();
      }
      if (m.status > static_cast<uint8_t>(LookupWireStatus::kProtocolError)) {
        return malformed();
      }
      return AnyMessage{std::move(m)};
    }
    case MessageType::kJoin: {
      Join m;
      if (!r.U64(m.node_id) || !r.AtEnd()) return malformed();
      return AnyMessage{m};
    }
    case MessageType::kLeave: {
      Leave m;
      if (!r.U64(m.node_id) || !r.U8(m.forget_state) || !r.AtEnd()) {
        return malformed();
      }
      return AnyMessage{m};
    }
    case MessageType::kStabilize: {
      Stabilize m;
      if (!r.U64(m.node_id) || !r.AtEnd()) return malformed();
      return AnyMessage{m};
    }
  }
  return Status::Internal("wire: unreachable type");
}

WireRouteState PackRouteState(const overlay::RouteResult& r) {
  WireRouteState s;
  s.flags = static_cast<uint8_t>(
      (r.success ? WireRouteState::kFlagSuccess : 0) |
      (r.budget_exhausted ? WireRouteState::kFlagBudgetExhausted : 0));
  s.destination = r.destination;
  s.hops = static_cast<uint32_t>(r.hops);
  s.aux_hops = static_cast<uint32_t>(r.aux_hops);
  s.retries = static_cast<uint32_t>(r.retries);
  s.dropped_forwards = static_cast<uint32_t>(r.dropped_forwards);
  s.failstop_skips = static_cast<uint32_t>(r.failstop_skips);
  s.stale_forwards = static_cast<uint32_t>(r.stale_forwards);
  s.latency_ms = r.latency_ms;
  s.path = r.path;
  s.dead_evictions = r.dead_evictions;
  return s;
}

void UnpackRouteState(const WireRouteState& w, overlay::RouteResult& out) {
  out.success = (w.flags & WireRouteState::kFlagSuccess) != 0;
  out.budget_exhausted =
      (w.flags & WireRouteState::kFlagBudgetExhausted) != 0;
  out.destination = w.destination;
  out.hops = static_cast<int>(w.hops);
  out.aux_hops = static_cast<int>(w.aux_hops);
  out.retries = static_cast<int>(w.retries);
  out.dropped_forwards = static_cast<int>(w.dropped_forwards);
  out.failstop_skips = static_cast<int>(w.failstop_skips);
  out.stale_forwards = static_cast<int>(w.stale_forwards);
  out.latency_ms = w.latency_ms;
  out.path = w.path;
  out.dead_evictions = w.dead_evictions;
}

std::vector<WireHop> PackHops(const std::vector<HopRecord>& path) {
  std::vector<WireHop> out;
  out.reserve(path.size());
  for (const HopRecord& h : path) {
    WireHop w;
    w.from = h.from;
    w.to = h.to;
    w.remaining = h.remaining;
    w.latency_ms = h.latency_ms;
    w.kind = static_cast<uint8_t>(h.kind);
    w.flags = static_cast<uint8_t>((h.dropped ? WireHop::kFlagDropped : 0) |
                                   (h.retried ? WireHop::kFlagRetried : 0));
    out.push_back(w);
  }
  return out;
}

void UnpackHops(const std::vector<WireHop>& hops,
                std::vector<HopRecord>& out) {
  out.clear();
  out.reserve(hops.size());
  for (const WireHop& w : hops) {
    HopRecord h;
    h.from = w.from;
    h.to = w.to;
    h.kind = static_cast<HopEntryKind>(w.kind);
    h.remaining = w.remaining;
    h.dropped = (w.flags & WireHop::kFlagDropped) != 0;
    h.retried = (w.flags & WireHop::kFlagRetried) != 0;
    h.latency_ms = w.latency_ms;
    out.push_back(h);
  }
}

}  // namespace peercache::net
