#include "net/peer_cache.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <span>
#include <utility>

#include "common/random.h"
#include "net/wire.h"

namespace peercache::net {

namespace {

/// File magic: "PCC1" read as bytes on disk.
constexpr uint32_t kCacheMagic = 0x31434350u;
constexpr uint16_t kCacheVersion = 1;
constexpr size_t kHeaderSize = 40;
constexpr uint32_t kRecordUsed = 1;
constexpr uint32_t kMaxSlotCount = 1u << 24;
constexpr uint32_t kMaxListCapacity = 1u << 16;

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

/// CRC seed that ties record checksums to this file's salt: a record copied
/// between files with different salts fails its checksum.
uint32_t SaltSeed(uint64_t salt) {
  uint8_t bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<uint8_t>(salt >> (8 * i));
  return Crc32(std::span<const uint8_t>(bytes, 8));
}

bool ReadExact(int fd, uint64_t offset, uint8_t* buf, size_t len) {
  size_t got = 0;
  while (got < len) {
    const ssize_t n = ::pread(fd, buf + got, len - got,
                              static_cast<off_t>(offset + got));
    if (n <= 0) return false;
    got += static_cast<size_t>(n);
  }
  return true;
}

bool WriteExact(int fd, uint64_t offset, const uint8_t* buf, size_t len) {
  size_t put = 0;
  while (put < len) {
    const ssize_t n = ::pwrite(fd, buf + put, len - put,
                               static_cast<off_t>(offset + put));
    if (n <= 0) return false;
    put += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

size_t PeerCache::RecordSize() const {
  return 24 + size_t{8} * config_.aux_capacity +
         size_t{16} * config_.freq_capacity;
}

uint64_t PeerCache::SlotOffset(uint32_t slot) const {
  return kHeaderSize + uint64_t{slot} * RecordSize();
}

uint64_t PeerCache::PlacementHash(uint64_t node_id) const {
  return MixHash64(config_.salt ^ MixHash64(node_id));
}

std::vector<uint8_t> PeerCache::EncodeRecord(const PeerRecord& record) const {
  std::vector<uint8_t> bytes;
  bytes.reserve(RecordSize());
  ByteWriter w(bytes);
  const uint32_t aux_count = static_cast<uint32_t>(std::min<size_t>(
      record.auxiliaries.size(), config_.aux_capacity));
  const uint32_t freq_count = static_cast<uint32_t>(std::min<size_t>(
      record.frequencies.size(), config_.freq_capacity));
  w.U32(kRecordUsed);
  w.U64(record.node_id);
  w.U32(aux_count);
  w.U32(freq_count);
  for (uint32_t i = 0; i < config_.aux_capacity; ++i) {
    w.U64(i < aux_count ? record.auxiliaries[i] : 0);
  }
  for (uint32_t i = 0; i < config_.freq_capacity; ++i) {
    w.U64(i < freq_count ? record.frequencies[i].first : 0);
    w.U64(i < freq_count ? record.frequencies[i].second : 0);
  }
  w.U32(Crc32(std::span<const uint8_t>(bytes.data(), bytes.size()),
              SaltSeed(config_.salt)));
  return bytes;
}

bool PeerCache::DecodeRecord(const std::vector<uint8_t>& bytes,
                             PeerRecord& out) const {
  if (bytes.size() != RecordSize()) return false;
  ByteReader r(bytes.data(), bytes.size());
  uint32_t state = 0;
  uint32_t aux_count = 0;
  uint32_t freq_count = 0;
  if (!r.U32(state) || state != kRecordUsed) return false;
  if (!r.U64(out.node_id)) return false;
  if (!r.U32(aux_count) || aux_count > config_.aux_capacity) return false;
  if (!r.U32(freq_count) || freq_count > config_.freq_capacity) return false;
  out.auxiliaries.clear();
  out.frequencies.clear();
  for (uint32_t i = 0; i < config_.aux_capacity; ++i) {
    uint64_t v = 0;
    if (!r.U64(v)) return false;
    if (i < aux_count) out.auxiliaries.push_back(v);
  }
  for (uint32_t i = 0; i < config_.freq_capacity; ++i) {
    uint64_t peer = 0;
    uint64_t count = 0;
    if (!r.U64(peer) || !r.U64(count)) return false;
    if (i < freq_count) out.frequencies.emplace_back(peer, count);
  }
  uint32_t crc = 0;
  if (!r.U32(crc) || !r.AtEnd()) return false;
  const uint32_t want =
      Crc32(std::span<const uint8_t>(bytes.data(), bytes.size() - 4),
            SaltSeed(config_.salt));
  return crc == want;
}

Result<PeerCache> PeerCache::Create(const std::string& path,
                                    const PeerCacheConfig& config) {
  if (config.slot_count == 0 || config.slot_count > kMaxSlotCount) {
    return Status::InvalidArgument("bad slot_count");
  }
  if (config.aux_capacity > kMaxListCapacity ||
      config.freq_capacity > kMaxListCapacity) {
    return Status::InvalidArgument("bad list capacity");
  }
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("open");
  PeerCache cache;
  cache.fd_ = fd;
  cache.config_ = config;
  cache.slot_ids_.assign(config.slot_count, kEmptySlot);
  // ftruncate zero-fills the slot region: state 0 everywhere == all empty.
  const uint64_t file_size =
      kHeaderSize + uint64_t{config.slot_count} * cache.RecordSize();
  if (::ftruncate(fd, static_cast<off_t>(file_size)) != 0) {
    return Errno("ftruncate");
  }
  std::vector<uint8_t> header;
  header.reserve(kHeaderSize);
  ByteWriter w(header);
  w.U32(kCacheMagic);
  w.U16(kCacheVersion);
  w.U16(0);  // reserved
  w.U64(config.salt);
  w.U32(config.slot_count);
  w.U32(config.aux_capacity);
  w.U32(config.freq_capacity);
  w.U32(Crc32(std::span<const uint8_t>(header.data(), header.size())));
  w.U64(0);  // pad to kHeaderSize
  if (!WriteExact(fd, 0, header.data(), header.size())) {
    return Errno("write header");
  }
  if (::fsync(fd) != 0) return Errno("fsync");
  return cache;
}

Result<PeerCache> PeerCache::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) return Errno("open");
  PeerCache cache;
  cache.fd_ = fd;
  std::vector<uint8_t> header(kHeaderSize);
  if (!ReadExact(fd, 0, header.data(), header.size())) {
    return Status::InvalidArgument("peer cache: truncated header");
  }
  ByteReader r(header.data(), header.size());
  uint32_t magic = 0;
  uint16_t version = 0;
  uint16_t reserved = 0;
  uint32_t crc = 0;
  PeerCacheConfig config;
  if (!r.U32(magic) || magic != kCacheMagic) {
    return Status::InvalidArgument("peer cache: bad magic");
  }
  if (!r.U16(version) || version != kCacheVersion) {
    return Status::InvalidArgument("peer cache: unsupported version");
  }
  if (!r.U16(reserved) || !r.U64(config.salt) || !r.U32(config.slot_count) ||
      !r.U32(config.aux_capacity) || !r.U32(config.freq_capacity) ||
      !r.U32(crc)) {
    return Status::InvalidArgument("peer cache: short header");
  }
  if (crc != Crc32(std::span<const uint8_t>(header.data(), 28))) {
    return Status::InvalidArgument("peer cache: header checksum mismatch");
  }
  if (config.slot_count == 0 || config.slot_count > kMaxSlotCount ||
      config.aux_capacity > kMaxListCapacity ||
      config.freq_capacity > kMaxListCapacity) {
    return Status::InvalidArgument("peer cache: bad geometry");
  }
  cache.config_ = config;
  cache.slot_ids_.assign(config.slot_count, kEmptySlot);
  // Scan every slot: a used record with a bad checksum is a torn write —
  // count it and treat the slot as empty.
  std::vector<uint8_t> bytes(cache.RecordSize());
  PeerRecord record;
  for (uint32_t slot = 0; slot < config.slot_count; ++slot) {
    if (!ReadExact(fd, cache.SlotOffset(slot), bytes.data(), bytes.size())) {
      return Status::InvalidArgument("peer cache: truncated slot region");
    }
    uint32_t state = 0;
    std::memcpy(&state, bytes.data(), sizeof(state));
    if (state == 0) continue;
    if (!cache.DecodeRecord(bytes, record) || record.node_id == kEmptySlot) {
      ++cache.stats_.rejected;
      continue;
    }
    cache.slot_ids_[slot] = record.node_id;
    cache.index_.emplace_back(record.node_id, slot);
    ++cache.stats_.used;
  }
  std::sort(cache.index_.begin(), cache.index_.end());
  return cache;
}

PeerCache::PeerCache(PeerCache&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      config_(other.config_),
      stats_(other.stats_),
      index_(std::move(other.index_)),
      slot_ids_(std::move(other.slot_ids_)) {}

PeerCache& PeerCache::operator=(PeerCache&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    config_ = other.config_;
    stats_ = other.stats_;
    index_ = std::move(other.index_);
    slot_ids_ = std::move(other.slot_ids_);
  }
  return *this;
}

PeerCache::~PeerCache() {
  if (fd_ >= 0) ::close(fd_);
}

Status PeerCache::Put(const PeerRecord& record) {
  if (fd_ < 0) return Status::FailedPrecondition("peer cache not open");
  if (record.node_id == kEmptySlot) {
    return Status::InvalidArgument("reserved node id");
  }
  const uint64_t h = PlacementHash(record.node_id);
  const uint32_t start = static_cast<uint32_t>(h % config_.slot_count);
  const uint32_t window = std::min(kProbeWindow, config_.slot_count);
  uint32_t target = config_.slot_count;  // sentinel: not found
  bool have_empty = false;
  for (uint32_t i = 0; i < window; ++i) {
    const uint32_t slot = (start + i) % config_.slot_count;
    if (slot_ids_[slot] == record.node_id) {
      target = slot;  // overwrite in place
      have_empty = true;
      break;
    }
    if (!have_empty && slot_ids_[slot] == kEmptySlot) {
      target = slot;
      have_empty = true;
    }
  }
  if (!have_empty) {
    // Window full of other peers: evict a hash-chosen victim so which record
    // survives a collision storm is a property of the salt, not insert order.
    target = (start + static_cast<uint32_t>((h >> 32) % window)) %
             config_.slot_count;
    const uint64_t victim = slot_ids_[target];
    const auto it = std::lower_bound(index_.begin(), index_.end(),
                                     std::make_pair(victim, uint32_t{0}));
    if (it != index_.end() && it->first == victim) index_.erase(it);
    ++stats_.evictions;
    --stats_.used;
  }
  const std::vector<uint8_t> bytes = EncodeRecord(record);
  if (!WriteExact(fd_, SlotOffset(target), bytes.data(), bytes.size())) {
    return Errno("write record");
  }
  if (slot_ids_[target] != record.node_id) {
    slot_ids_[target] = record.node_id;
    index_.insert(std::lower_bound(index_.begin(), index_.end(),
                                   std::make_pair(record.node_id, uint32_t{0})),
                  {record.node_id, target});
    ++stats_.used;
  }
  ++stats_.writes;
  return Status::Ok();
}

bool PeerCache::Get(uint64_t node_id, PeerRecord& out) const {
  if (fd_ < 0) return false;
  const auto it = std::lower_bound(index_.begin(), index_.end(),
                                   std::make_pair(node_id, uint32_t{0}));
  if (it == index_.end() || it->first != node_id) return false;
  std::vector<uint8_t> bytes(RecordSize());
  if (!ReadExact(fd_, SlotOffset(it->second), bytes.data(), bytes.size())) {
    return false;
  }
  return DecodeRecord(bytes, out) && out.node_id == node_id;
}

std::vector<uint64_t> PeerCache::Ids() const {
  std::vector<uint64_t> ids;
  ids.reserve(index_.size());
  for (uint64_t id : slot_ids_) {
    if (id != kEmptySlot) ids.push_back(id);
  }
  return ids;
}

Status PeerCache::Sync() {
  if (fd_ < 0) return Status::FailedPrecondition("peer cache not open");
  if (::fsync(fd_) != 0) return Errno("fsync");
  return Status::Ok();
}

}  // namespace peercache::net
