#include "workload/workload.h"

#include <cassert>
#include <unordered_set>

#include "common/bits.h"

namespace peercache::workload {

ItemSpace::ItemSpace(int bits, size_t n_items, uint64_t seed) : bits_(bits) {
  assert(bits >= 1 && bits <= 64);
  const uint64_t mask = LowBitMask(bits);
  assert(n_items <= mask);  // distinct keys must fit the id space
  keys_.reserve(n_items);
  std::unordered_set<uint64_t> seen;
  seen.reserve(n_items * 2);
  uint64_t counter = 0;
  while (keys_.size() < n_items) {
    uint64_t key = MixHash64(seed ^ counter++) & mask;
    if (seen.insert(key).second) keys_.push_back(key);
  }
}

PopularityModel::PopularityModel(size_t n_items, double alpha, int n_lists,
                                 uint64_t seed)
    : zipf_(n_items, alpha) {
  assert(n_lists >= 1);
  rank_to_item_.resize(static_cast<size_t>(n_lists));
  Rng rng(seed);
  for (auto& list : rank_to_item_) {
    list.resize(n_items);
    for (size_t i = 0; i < n_items; ++i) list[i] = static_cast<uint32_t>(i);
    rng.Shuffle(list);
  }
}

QueryWorkload::QueryWorkload(const ItemSpace& items,
                             const PopularityModel& popularity, uint64_t seed)
    : items_(items), popularity_(popularity), assign_rng_(seed) {
  assert(items.n_items() == popularity.zipf().n());
}

int QueryWorkload::ListOf(uint64_t node_id) {
  auto it = node_list_.find(node_id);
  if (it != node_list_.end()) return it->second;
  int list = static_cast<int>(assign_rng_.UniformU64(
      static_cast<uint64_t>(popularity_.n_lists())));
  node_list_.emplace(node_id, list);
  return list;
}

void QueryWorkload::AssignLists(const std::vector<uint64_t>& node_ids) {
  for (uint64_t id : node_ids) (void)ListOf(id);
}

uint64_t QueryWorkload::SampleKey(uint64_t node_id, Rng& rng) {
  const size_t item = popularity_.SampleItem(ListOf(node_id), rng);
  return items_.ItemKey(item);
}

}  // namespace peercache::workload
