#ifndef PEERCACHE_WORKLOAD_DRIFT_H_
#define PEERCACHE_WORKLOAD_DRIFT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "workload/workload.h"

namespace peercache::workload {

/// How item popularity evolves over a run (paper workloads are stationary;
/// these model the production reality that popularity is not).
enum class DriftKind {
  kNone,         ///< Stationary zipf (the historical workload).
  kRankShuffle,  ///< A seeded fraction of rank positions re-shuffles each
                 ///< epoch: gradual popularity churn.
  kFlashCrowd,   ///< Alternate epochs divert a fixed probability mass to one
                 ///< previously-cold item: sudden spikes.
};

const char* DriftKindName(DriftKind kind);

/// Parses "none" / "rank-shuffle" / "flash-crowd"; returns false on other
/// input (for CLI flag handling).
bool ParseDriftKind(const std::string& text, DriftKind* out);

/// Popularity-drift knobs. Disabled by default: every experiment keeps the
/// stationary workload (and its byte-identical telemetry) unless a driver
/// opts in.
struct DriftConfig {
  DriftKind kind = DriftKind::kNone;
  /// Queries per node per epoch; 0 disables drift.
  int period = 0;
  /// kRankShuffle: fraction of rank positions re-shuffled entering each
  /// epoch.
  double shuffle_fraction = 0.25;
  /// kFlashCrowd: probability mass diverted to the flash item during a
  /// flash epoch.
  double flash_boost = 0.3;
  /// Epoch tables are precomputed up to this bound; later queries stay in
  /// the final epoch.
  int max_epochs = 32;
  uint64_t seed = 97;

  bool enabled() const { return kind != DriftKind::kNone && period > 0; }
};

/// Deterministic popularity drift over a base PopularityModel. All epoch
/// state is precomputed at construction (serially), after which the model is
/// read-only — the concurrent per-node query loops share one instance and
/// stay bit-identical at any thread count because every sample draws from
/// the caller's per-node RNG stream.
///
/// kRankShuffle: epoch 0 is the base rank->item assignment; epoch e+1 takes
/// epoch e and re-shuffles ceil(shuffle_fraction * n_items) seeded positions
/// among themselves, so popularity migrates gradually while the zipf shape
/// is preserved exactly.
///
/// kFlashCrowd: the base assignment never changes, but during every odd
/// ("flash") epoch a seeded item from the cold half of the ranking receives
/// `flash_boost` of the probability mass; the remaining mass scales the base
/// distribution by (1 - flash_boost), conserving total mass.
class DriftModel {
 public:
  /// Both references must outlive the model. `config.enabled()` must hold.
  DriftModel(const ItemSpace& items, const PopularityModel& base,
             const DriftConfig& config);

  const DriftConfig& config() const { return config_; }

  /// Epoch of a node's query_index-th query (clamped to max_epochs - 1).
  int EpochOf(int64_t query_index) const;

  /// kRankShuffle item at `rank` (1 = hottest) for a list/epoch; for other
  /// kinds this is the base assignment.
  size_t ItemAtRank(int list_index, int epoch, size_t rank) const;

  /// kFlashCrowd: the boosted item index of `epoch` (valid for flash epochs).
  size_t FlashItem(int epoch) const;
  bool IsFlashEpoch(int epoch) const {
    return config_.kind == DriftKind::kFlashCrowd && (epoch % 2) == 1;
  }

  /// Draws a query key for the node's `query_index`-th query (warmup and
  /// measure share one monotone index so drift continues across phases).
  uint64_t SampleKey(int list_index, int64_t query_index, Rng& rng) const;

 private:
  const ItemSpace& items_;
  const PopularityModel& base_;
  DriftConfig config_;
  /// kRankShuffle: per list, per epoch, rank -> item.
  std::vector<std::vector<std::vector<uint32_t>>> epoch_rank_to_item_;
  /// kFlashCrowd: per epoch, the boosted item index.
  std::vector<uint32_t> flash_items_;
};

}  // namespace peercache::workload

#endif  // PEERCACHE_WORKLOAD_DRIFT_H_
