#ifndef PEERCACHE_WORKLOAD_WORKLOAD_H_
#define PEERCACHE_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/zipf.h"

namespace peercache::workload {

/// A set of items with randomly generated `bits`-bit keys (paper Sec. VI-A:
/// "a set of nodes and items with randomly-generated identifiers"). Keys are
/// distinct, derived deterministically from the seed.
class ItemSpace {
 public:
  ItemSpace(int bits, size_t n_items, uint64_t seed);

  int bits() const { return bits_; }
  size_t n_items() const { return keys_.size(); }
  uint64_t ItemKey(size_t item_index) const { return keys_[item_index]; }
  const std::vector<uint64_t>& keys() const { return keys_; }

 private:
  int bits_;
  std::vector<uint64_t> keys_;
};

/// Zipf popularity over item ranks, with `n_lists` distinct rank->item
/// assignments. The paper's Chord experiments use five lists with the same
/// zipf parameter but different item rankings, assigned to nodes at random;
/// the Pastry experiments use a single list shared by all nodes.
class PopularityModel {
 public:
  PopularityModel(size_t n_items, double alpha, int n_lists, uint64_t seed);

  int n_lists() const { return static_cast<int>(rank_to_item_.size()); }
  double alpha() const { return zipf_.alpha(); }
  const ZipfDistribution& zipf() const { return zipf_; }

  /// Item index at popularity rank `rank` (1 = hottest) in a given list.
  size_t ItemAtRank(int list_index, size_t rank) const {
    return rank_to_item_[static_cast<size_t>(list_index)][rank - 1];
  }

  /// Draws an item index according to list `list_index`.
  size_t SampleItem(int list_index, Rng& rng) const {
    return ItemAtRank(list_index, zipf_.Sample(rng));
  }

 private:
  ZipfDistribution zipf_;
  std::vector<std::vector<uint32_t>> rank_to_item_;
};

/// Ties the pieces together per node: each node gets one popularity list
/// (assigned deterministically from the workload seed on first use) and
/// draws query keys from it.
class QueryWorkload {
 public:
  /// Both references must outlive the workload.
  QueryWorkload(const ItemSpace& items, const PopularityModel& popularity,
                uint64_t seed);

  /// The popularity list assigned to this node (assigning it on first use).
  int ListOf(uint64_t node_id);

  /// Assigns lists to all of `node_ids` up front, in the given order.
  /// Assignment normally happens lazily in query order; pre-assigning makes
  /// it a function of the membership alone, and afterwards SampleKey no
  /// longer mutates the workload for these nodes — a requirement for the
  /// concurrent per-node query loops in the experiment drivers.
  void AssignLists(const std::vector<uint64_t>& node_ids);

  /// Draws a query key for a node, using the caller's RNG for the zipf draw
  /// so interleavings stay deterministic.
  uint64_t SampleKey(uint64_t node_id, Rng& rng);

  const ItemSpace& items() const { return items_; }
  const PopularityModel& popularity() const { return popularity_; }

 private:
  const ItemSpace& items_;
  const PopularityModel& popularity_;
  Rng assign_rng_;
  std::unordered_map<uint64_t, int> node_list_;
};

}  // namespace peercache::workload

#endif  // PEERCACHE_WORKLOAD_WORKLOAD_H_
