#include "workload/drift.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace peercache::workload {

const char* DriftKindName(DriftKind kind) {
  switch (kind) {
    case DriftKind::kNone:
      return "none";
    case DriftKind::kRankShuffle:
      return "rank-shuffle";
    case DriftKind::kFlashCrowd:
      return "flash-crowd";
  }
  return "none";  // unreachable
}

bool ParseDriftKind(const std::string& text, DriftKind* out) {
  if (text == "none") {
    *out = DriftKind::kNone;
  } else if (text == "rank-shuffle") {
    *out = DriftKind::kRankShuffle;
  } else if (text == "flash-crowd") {
    *out = DriftKind::kFlashCrowd;
  } else {
    return false;
  }
  return true;
}

DriftModel::DriftModel(const ItemSpace& items, const PopularityModel& base,
                       const DriftConfig& config)
    : items_(items), base_(base), config_(config) {
  assert(config.enabled());
  assert(config.max_epochs >= 1);
  const size_t n = items.n_items();
  const int epochs = config_.max_epochs;
  if (config_.kind == DriftKind::kRankShuffle) {
    const size_t shuffled = std::min(
        n, static_cast<size_t>(
               std::ceil(config_.shuffle_fraction * static_cast<double>(n))));
    epoch_rank_to_item_.resize(static_cast<size_t>(base.n_lists()));
    for (int list = 0; list < base.n_lists(); ++list) {
      auto& per_epoch = epoch_rank_to_item_[static_cast<size_t>(list)];
      per_epoch.resize(static_cast<size_t>(epochs));
      // Epoch 0 is the base assignment.
      per_epoch[0].resize(n);
      for (size_t rank = 1; rank <= n; ++rank) {
        per_epoch[0][rank - 1] =
            static_cast<uint32_t>(base.ItemAtRank(list, rank));
      }
      for (int e = 1; e < epochs; ++e) {
        per_epoch[static_cast<size_t>(e)] =
            per_epoch[static_cast<size_t>(e - 1)];
        auto& table = per_epoch[static_cast<size_t>(e)];
        Rng rng(SplitSeed(config_.seed,
                          static_cast<uint64_t>(list) *
                                  static_cast<uint64_t>(epochs) +
                              static_cast<uint64_t>(e)));
        // Re-shuffle the chosen positions' items among themselves: a
        // permutation of a permutation is a permutation, so every item
        // keeps exactly one rank.
        std::vector<uint64_t> positions = rng.SampleDistinct(n, shuffled);
        std::vector<uint32_t> values;
        values.reserve(shuffled);
        for (uint64_t p : positions) values.push_back(table[p]);
        rng.Shuffle(values);
        for (size_t i = 0; i < positions.size(); ++i) {
          table[positions[i]] = values[i];
        }
      }
    }
  } else if (config_.kind == DriftKind::kFlashCrowd) {
    flash_items_.resize(static_cast<size_t>(epochs));
    for (int e = 0; e < epochs; ++e) {
      // Pick the flash item from the cold half of the ranking so the spike
      // hits a peer the frequency tables have barely seen.
      const size_t cold_ranks = n - n / 2;
      const size_t rank =
          n / 2 + 1 +
          MixHash64(SplitSeed(config_.seed, static_cast<uint64_t>(e))) %
              cold_ranks;
      flash_items_[static_cast<size_t>(e)] =
          static_cast<uint32_t>(base.ItemAtRank(0, rank));
    }
  }
}

int DriftModel::EpochOf(int64_t query_index) const {
  assert(query_index >= 0);
  const int64_t epoch = query_index / config_.period;
  return static_cast<int>(
      std::min<int64_t>(epoch, config_.max_epochs - 1));
}

size_t DriftModel::ItemAtRank(int list_index, int epoch, size_t rank) const {
  if (config_.kind != DriftKind::kRankShuffle) {
    return base_.ItemAtRank(list_index, rank);
  }
  return epoch_rank_to_item_[static_cast<size_t>(list_index)]
                            [static_cast<size_t>(epoch)][rank - 1];
}

size_t DriftModel::FlashItem(int epoch) const {
  return flash_items_[static_cast<size_t>(epoch)];
}

uint64_t DriftModel::SampleKey(int list_index, int64_t query_index,
                               Rng& rng) const {
  const int epoch = EpochOf(query_index);
  size_t item;
  if (IsFlashEpoch(epoch) && rng.Bernoulli(config_.flash_boost)) {
    item = FlashItem(epoch);
  } else {
    const size_t rank = base_.zipf().Sample(rng);
    item = ItemAtRank(list_index, epoch, rank);
  }
  return items_.ItemKey(item);
}

}  // namespace peercache::workload
