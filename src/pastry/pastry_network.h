#ifndef PEERCACHE_PASTRY_PASTRY_NETWORK_H_
#define PEERCACHE_PASTRY_PASTRY_NETWORK_H_

#include <cstdint>
#include <span>
#include <vector>

#include "auxsel/frequency_table.h"
#include "common/fault.h"
#include "common/flat_table_arena.h"
#include "common/latency.h"
#include "common/node_store.h"
#include "common/random.h"
#include "common/ring_id.h"
#include "common/route_result.h"
#include "common/status.h"
#include "common/trace.h"

namespace peercache::pastry {

/// Pastry simulator parameters.
struct PastryParams {
  /// Id length b, with 1-bit digits (the paper's exposition and its 32-bit
  /// binary-id experiments).
  int bits = 32;
  /// Leaf-set entries kept on each side of the node.
  int leaf_set_half = 4;
  /// Capacity of each node's frequency table; 0 = unbounded exact counts.
  size_t frequency_capacity = 0;
  /// Bounded-memory sketch mode for per-node frequency tables
  /// (auxsel::FreqSketchParams); disabled by default.
  auxsel::FreqSketchParams freq_sketch;
  /// Safety cap on route length.
  int max_route_hops = 256;
  /// Routing-row candidate probes per row during stabilization. 0 (the
  /// default) scans every candidate — the exact historical behaviour. A
  /// positive value probes that many evenly spaced candidates per row
  /// instead, turning the O(n) per-node row fill into O(bits * sample) for
  /// million-node builds at the cost of slightly farther row entries.
  int stabilize_sample = 0;
};

/// Outcome of one simulated lookup — the shared overlay type
/// (common/route_result.h).
using RouteResult = overlay::RouteResult;

/// Network-proximity coordinates (FreePastry's locality-aware routing picks
/// the physically closest candidate; we model the underlay as a unit square
/// with Euclidean distance).
struct Coord {
  double x = 0;
  double y = 0;
};

/// Per-node Pastry state. Tables are FlatList slices into the network's
/// FlatTableArena; read them through PastryNetwork::RoutingRows/LeafSucc/
/// LeafPred/Auxiliaries. The historical `leaf_set` vector (succ ++ pred) is
/// gone — iterate the two sides in that order for the same scan.
struct PastryNode {
  uint64_t id = 0;
  bool alive = false;
  Coord coord;
  /// routing_rows[i]: a node sharing exactly the first i bits with `id`
  /// (and thus differing at bit i), or kNoEntry when row i is empty.
  /// Always exactly params().bits entries once stabilized.
  overlay::FlatList routing_rows;
  /// Successor-side leaf members in clockwise order from this node.
  overlay::FlatList leaf_succ;
  /// Predecessor-side leaf members in counterclockwise order.
  overlay::FlatList leaf_pred;
  /// Auxiliary neighbors installed by a selection algorithm.
  overlay::FlatList auxiliaries;
  auxsel::FrequencyTable frequencies;

  explicit PastryNode(size_t freq_capacity,
                     const auxsel::FreqSketchParams& sketch = {})
      : frequencies(freq_capacity, sketch) {}
};

/// God's-eye Pastry overlay simulator with FreePastry-style locality-aware
/// routing.
///
/// Routing policy: forward to the known entry (routing row, leaf set, or
/// auxiliary) whose id shares the longest prefix with the key, provided it
/// is strictly longer than the current node's; ties on prefix length break
/// by underlay proximity to the current node (the FreePastry behaviour the
/// paper credits for Fig. 4's trend). When no entry improves the prefix,
/// fall back to the numerically closest entry that is numerically closer to
/// the key (standard Pastry rule); delivery happens at the numerically
/// closest live node.
///
/// Node state lives in an overlay::NodeStore (common/node_store.h): the
/// liveness probes in the routing loop and the sorted-ring scans in
/// stabilization and delivery walk flat id-sorted arrays, and routing
/// tables are contiguous arena slices (common/flat_table_arena.h).
class PastryNetwork {
 public:
  using NodeType = PastryNode;

  static constexpr uint64_t kNoEntry = ~uint64_t{0};

  /// `seed` drives the underlay coordinate assignment.
  PastryNetwork(const PastryParams& params, uint64_t seed);

  const PastryParams& params() const { return params_; }
  const IdSpace& space() const { return space_; }

  /// Adds a live node (random underlay coordinates) and builds its tables.
  Status AddNode(uint64_t id);

  /// Bulk join for large builds: inserts every id live (drawing underlay
  /// coordinates in `ids` order) WITHOUT stabilizing; callers run
  /// StabilizeAll once after. Fails before any mutation on invalid ids.
  Status BulkAdd(const std::vector<uint64_t>& ids);

  /// Crashes a node (state retained for rejoin).
  Status RemoveNode(uint64_t id);
  /// Rejoins a crashed node with fresh tables and cleared auxiliaries.
  Status RejoinNode(uint64_t id);

  bool IsAlive(uint64_t id) const { return store_.IsAlive(id); }
  size_t live_count() const { return store_.live_count(); }
  std::vector<uint64_t> LiveNodeIds() const;

  PastryNode* GetNode(uint64_t id) { return store_.Get(id); }
  const PastryNode* GetNode(uint64_t id) const { return store_.Get(id); }

  /// Routing-table views: contiguous arena slices, valid until the next
  /// mutation of the same node's tables.
  std::span<const uint64_t> RoutingRows(const PastryNode& node) const {
    return store_.tables().View(node.routing_rows);
  }
  std::span<const uint64_t> LeafSucc(const PastryNode& node) const {
    return store_.tables().View(node.leaf_succ);
  }
  std::span<const uint64_t> LeafPred(const PastryNode& node) const {
    return store_.tables().View(node.leaf_pred);
  }
  std::span<const uint64_t> Auxiliaries(const PastryNode& node) const {
    return store_.tables().View(node.auxiliaries);
  }

  /// Auxiliary list of `id` (empty when the node is unknown).
  std::span<const uint64_t> AuxiliarySpan(uint64_t id) const {
    const PastryNode* node = store_.Get(id);
    return node == nullptr ? std::span<const uint64_t>{} : Auxiliaries(*node);
  }

  /// Removes every occurrence of `entry` from `id`'s auxiliary list.
  void EraseAuxiliary(uint64_t id, uint64_t entry) {
    if (PastryNode* node = store_.Get(id)) {
      store_.tables().EraseValue(node->auxiliaries, entry);
    }
  }

  /// Footprint accounting (node records + indices + routing arena).
  overlay::StoreMemoryStats MemoryUsage() const {
    return store_.MemoryUsage();
  }

  /// Ground truth: numerically closest live node to the key (ring metric;
  /// the lower id wins exact ties). Fails on an empty overlay.
  Result<uint64_t> ResponsibleNode(uint64_t key) const;

  /// Routes a lookup from `origin` over current tables into a caller-owned
  /// result (cleared first, path capacity retained — reuse makes the
  /// steady-state lookup path allocation-free). When `trace` is non-null,
  /// per-hop records (source, next hop, entry used, prefix distance
  /// remaining) are appended; the null path costs one branch.
  ///
  /// When `faults` names an enabled fault::FaultPlan the route runs the
  /// resilient policy: every forwarding attempt (including the final
  /// leaf-set delivery hop) passes the plan's deterministic drop /
  /// fail-stop / stale gates, failed attempts are retried against the
  /// next-best entry under per-visit and global budgets, and failure
  /// bookkeeping lands in the RouteResult's resilience fields. A null or
  /// disabled plan takes the historical fault-free path bit-for-bit.
  ///
  /// When `latency` names an enabled latency::LatencyModel every delivered
  /// forward — including R1's final leaf-set delivery hop — accrues its
  /// deterministic hop span (base RTT + jitter) and every failed attempt
  /// accrues the model's timeout, summed into RouteResult::latency_ms and
  /// tagged per hop on the trace. A null or disabled model leaves every
  /// latency field 0 and the route unchanged.
  Status LookupInto(uint64_t origin, uint64_t key, RouteResult& out,
                    RouteTrace* trace = nullptr,
                    const fault::FaultPlan* faults = nullptr,
                    const latency::LatencyModel* latency = nullptr) const;

  /// By-value convenience form of LookupInto.
  Result<RouteResult> Lookup(
      uint64_t origin, uint64_t key, RouteTrace* trace = nullptr,
      const fault::FaultPlan* faults = nullptr,
      const latency::LatencyModel* latency = nullptr) const;

  /// One suspended fault-free lookup for the batched engine; advances one
  /// hop per StepLookup with exactly the LookupInto routing rules (shared
  /// DecideNext helper), including the R1 delivery hop and the numeric-mode
  /// latch.
  struct LookupCursor {
    uint64_t current = 0;
    uint64_t key = 0;
    uint64_t truth = 0;
    const PastryNode* node = nullptr;
    int hops = 0;
    int aux_hops = 0;
    bool numeric_mode = false;
    bool done = true;
    bool success = false;
    uint64_t destination = 0;
  };

  Status BeginLookup(uint64_t origin, uint64_t key, LookupCursor& cursor)
      const;
  void StepLookup(LookupCursor& cursor) const;

  void PrefetchNode(const LookupCursor& cursor) const {
    __builtin_prefetch(cursor.node, 0, 1);
  }
  void PrefetchTables(const LookupCursor& cursor) const {
    const overlay::FlatTableArena& tables = store_.tables();
    tables.Prefetch(cursor.node->routing_rows);
    tables.Prefetch(cursor.node->leaf_succ);
    tables.Prefetch(cursor.node->leaf_pred);
    tables.Prefetch(cursor.node->auxiliaries);
  }

  /// One suspended lookup at node-visit granularity for the message-driven
  /// runtime (src/net) — plain data only, so an in-flight route serializes
  /// into a LOOKUP_STEP wire message and resumes at the next node's actor.
  /// Covers both the fault-free and the resilient (FaultPlan) policies,
  /// including the R1 delivery hop and the numeric-mode latch; one StepRoute
  /// call performs exactly one node visit. See
  /// chord::ChordNetwork::RouteCursor for the shared contract.
  struct RouteCursor {
    uint64_t current = 0;
    uint64_t key = 0;
    uint64_t truth = 0;
    int hops_taken = 0;  ///< successful forwards (delivered path length)
    int spent = 0;  ///< resilient hop budget: successful + failed attempts
    int attempt = 0;  ///< resilient retransmission-decorrelation counter
    bool numeric_mode = false;  ///< R3 latch (permanent once set)
    bool resilient = false;
    bool done = true;
  };

  /// Starts a route at `origin`: clears `out`, resolves ground truth, and
  /// seeds the trace header. Same preconditions and statuses as LookupInto.
  Status BeginRoute(uint64_t origin, uint64_t key, RouteCursor& cursor,
                    RouteResult& out, RouteTrace* trace = nullptr,
                    const fault::FaultPlan* faults = nullptr,
                    const latency::LatencyModel* latency = nullptr) const;

  /// Performs one node visit, accumulating into `out`. LookupInto is
  /// implemented as BeginRoute + StepRoute-until-done, so the stepwise
  /// route is byte-for-byte the direct one.
  void StepRoute(RouteCursor& cursor, RouteResult& out,
                 RouteTrace* trace = nullptr,
                 const fault::FaultPlan* faults = nullptr,
                 const latency::LatencyModel* latency = nullptr) const;

  /// Step-wise ground-truth resolution for batched warmup: a lower-bound
  /// bisection over the sorted live array, one probe per step. Identical
  /// answer to ResponsibleNode (the insertion point is unique, and the
  /// succ/pred tie-break is replayed verbatim at the end).
  struct ResponsibleCursor {
    uint64_t key = 0;
    size_t lo = 0;  ///< bisection bounds on the insertion point
    size_t hi = 0;
    bool done = true;
    uint64_t result = 0;
  };

  /// Positions `cursor` for `key`. Fails (cursor stays done) only when the
  /// overlay is empty — the same precondition as ResponsibleNode.
  Status BeginResponsible(uint64_t key, ResponsibleCursor& cursor) const;

  /// One bisection probe; resolves the owner when the bounds meet. No-op
  /// when the cursor is done.
  void StepResponsible(ResponsibleCursor& cursor) const;

  /// Prefetches the next probe's cache line.
  void PrefetchResponsible(const ResponsibleCursor& cursor) const {
    const std::vector<uint64_t>& live = store_.live_ids();
    if (cursor.lo < cursor.hi) {
      __builtin_prefetch(&live[cursor.lo + (cursor.hi - cursor.lo) / 2], 0,
                         1);
    }
  }

  /// Rebuilds `id`'s routing rows and leaf set from live membership, with
  /// proximity-aware row filling (closest candidate per row), and prunes
  /// dead auxiliaries.
  Status StabilizeNode(uint64_t id);
  void StabilizeAll();

  /// Serial-only: writes the arena.
  Status SetAuxiliaries(uint64_t id, std::vector<uint64_t> auxiliaries);

  /// Core neighbors for auxiliary selection: routing rows + leaf set.
  std::vector<uint64_t> CoreNeighborIds(uint64_t id) const;

 private:
  double Proximity(uint64_t a, uint64_t b) const;

  /// One fault-free routing decision at `current` — the single policy
  /// shared by LookupInto and StepLookup (exact hit, R1 leaf-set delivery,
  /// R2 prefix, R3 numeric fallback).
  struct Decision {
    enum class Action {
      kDeliverHere,  // this node answers
      kDeliverAt,    // R1: `next` answers (one final hop)
      kForward,      // route continues at `next`
    };
    Action action = Action::kDeliverHere;
    uint64_t next = kNoEntry;
    HopEntryKind kind = HopEntryKind::kRoutingRow;
    bool enters_numeric = false;  // kForward chosen by R3: latch numeric mode
  };
  Decision DecideNext(const PastryNode& node, uint64_t current, uint64_t key,
                      bool numeric_mode) const;

  /// One resilient node visit (the fault-gated retry loop of the classic
  /// LookupResilient body), shared by StepRoute's resilient branch.
  void StepResilient(RouteCursor& cursor, RouteResult& out, RouteTrace* trace,
                     const fault::FaultPlan& faults,
                     const latency::LatencyModel* latency) const;

  PastryParams params_;
  IdSpace space_;
  Rng coord_rng_;
  overlay::NodeStore<PastryNode> store_;
  std::vector<uint64_t> scratch_;  // stabilize build buffer (serial)
};

}  // namespace peercache::pastry

#endif  // PEERCACHE_PASTRY_PASTRY_NETWORK_H_
