#include "pastry/pastry_network.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/bits.h"

namespace peercache::pastry {

namespace {

double EuclideanDistance(const Coord& a, const Coord& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

PastryNetwork::PastryNetwork(const PastryParams& params, uint64_t seed)
    : params_(params), space_(params.bits), coord_rng_(seed) {}

std::vector<uint64_t> PastryNetwork::LiveNodeIds() const {
  return std::vector<uint64_t>(live_.begin(), live_.end());
}

PastryNode* PastryNetwork::GetNode(uint64_t id) {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : &it->second;
}

const PastryNode* PastryNetwork::GetNode(uint64_t id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : &it->second;
}

double PastryNetwork::Proximity(uint64_t a, uint64_t b) const {
  const PastryNode* na = GetNode(a);
  const PastryNode* nb = GetNode(b);
  assert(na != nullptr && nb != nullptr);
  return EuclideanDistance(na->coord, nb->coord);
}

Status PastryNetwork::AddNode(uint64_t id) {
  if (!space_.Contains(id)) return Status::InvalidArgument("id out of range");
  if (live_.count(id)) return Status::InvalidArgument("live id already used");
  auto [it, inserted] = nodes_.try_emplace(id, params_.frequency_capacity);
  it->second.id = id;
  if (inserted) {
    it->second.coord = Coord{coord_rng_.UniformDouble(),
                             coord_rng_.UniformDouble()};
  }
  it->second.alive = true;
  it->second.auxiliaries.clear();
  live_.insert(id);
  return StabilizeNode(id);
}

Status PastryNetwork::RemoveNode(uint64_t id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end() || !it->second.alive) {
    return Status::NotFound("node not alive");
  }
  it->second.alive = false;
  live_.erase(id);
  return Status::Ok();
}

Status PastryNetwork::RejoinNode(uint64_t id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return Status::NotFound("unknown node");
  if (it->second.alive) return Status::FailedPrecondition("already alive");
  it->second.alive = true;
  it->second.auxiliaries.clear();
  live_.insert(id);
  return StabilizeNode(id);
}

Status PastryNetwork::StabilizeNode(uint64_t id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end() || !it->second.alive) {
    return Status::NotFound("node not alive");
  }
  PastryNode& node = it->second;

  // Routing rows with proximity neighbor selection: for every other live
  // node, bucket by shared-prefix length and keep the underlay-closest
  // candidate per row (FreePastry's table construction).
  node.routing_rows.assign(static_cast<size_t>(params_.bits), kNoEntry);
  std::vector<double> best_dist(static_cast<size_t>(params_.bits), 0.0);
  for (uint64_t w : live_) {
    if (w == id) continue;
    const int l = CommonPrefixLength(id, w, params_.bits);
    assert(l < params_.bits);
    const size_t row = static_cast<size_t>(l);
    const double d = Proximity(id, w);
    if (node.routing_rows[row] == kNoEntry || d < best_dist[row]) {
      node.routing_rows[row] = w;
      best_dist[row] = d;
    }
  }

  // Leaf set: numerically nearest live ids, leaf_set_half per side, with
  // the two sides kept separate so the router can compute the contiguous
  // coverage arc exactly.
  node.leaf_set.clear();
  node.leaf_succ.clear();
  node.leaf_pred.clear();
  if (live_.size() > 1) {
    auto succ = live_.upper_bound(id);
    for (int i = 0; i < params_.leaf_set_half; ++i) {
      if (succ == live_.end()) succ = live_.begin();
      if (*succ == id) break;  // wrapped around
      node.leaf_succ.push_back(*succ);
      ++succ;
    }
    auto pred = live_.lower_bound(id);
    for (int i = 0; i < params_.leaf_set_half; ++i) {
      if (pred == live_.begin()) pred = live_.end();
      --pred;
      if (*pred == id) break;
      if (std::find(node.leaf_succ.begin(), node.leaf_succ.end(), *pred) !=
          node.leaf_succ.end()) {
        break;  // small ring: sides met
      }
      node.leaf_pred.push_back(*pred);
    }
    node.leaf_set = node.leaf_succ;
    node.leaf_set.insert(node.leaf_set.end(), node.leaf_pred.begin(),
                         node.leaf_pred.end());
  }

  auto& aux = node.auxiliaries;
  aux.erase(std::remove_if(aux.begin(), aux.end(),
                           [this](uint64_t a) { return !IsAlive(a); }),
            aux.end());
  return Status::Ok();
}

void PastryNetwork::StabilizeAll() {
  for (uint64_t id : LiveNodeIds()) {
    (void)StabilizeNode(id);
  }
}

Status PastryNetwork::SetAuxiliaries(uint64_t id,
                                     std::vector<uint64_t> auxiliaries) {
  auto it = nodes_.find(id);
  if (it == nodes_.end() || !it->second.alive) {
    return Status::NotFound("node not alive");
  }
  it->second.auxiliaries = std::move(auxiliaries);
  return Status::Ok();
}

std::vector<uint64_t> PastryNetwork::CoreNeighborIds(uint64_t id) const {
  const PastryNode* node = GetNode(id);
  if (node == nullptr) return {};
  std::vector<uint64_t> out;
  for (uint64_t w : node->routing_rows) {
    if (w != kNoEntry) out.push_back(w);
  }
  out.insert(out.end(), node->leaf_set.begin(), node->leaf_set.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Result<uint64_t> PastryNetwork::ResponsibleNode(uint64_t key) const {
  if (live_.empty()) return Status::FailedPrecondition("empty overlay");
  // Numerically closest on the ring; the clockwise-nearer (lower distance)
  // wins, exact ties go to the smaller id.
  auto succ_it = live_.lower_bound(key);
  uint64_t succ = (succ_it == live_.end()) ? *live_.begin() : *succ_it;
  uint64_t pred;
  if (succ_it == live_.begin()) {
    pred = *live_.rbegin();
  } else {
    pred = *std::prev(succ_it);
  }
  const uint64_t d_succ = space_.ClockwiseDistance(key, succ);
  const uint64_t d_pred = space_.ClockwiseDistance(pred, key);
  if (d_succ < d_pred) return succ;
  if (d_pred < d_succ) return pred;
  return std::min(pred, succ);
}

Result<RouteResult> PastryNetwork::Lookup(uint64_t origin, uint64_t key,
                                          RouteTrace* trace) const {
  if (!IsAlive(origin)) return Status::Unavailable("origin not alive");
  auto truth = ResponsibleNode(key);
  if (!truth.ok()) return truth.status();

  auto ring_distance = [this](uint64_t a, uint64_t b) {
    return std::min(space_.ClockwiseDistance(a, b),
                    space_.ClockwiseDistance(b, a));
  };
  // Trace metric: prefix digits still to resolve after landing on `w`.
  auto prefix_remaining = [this, key](uint64_t w) {
    return static_cast<uint64_t>(params_.bits -
                                 CommonPrefixLength(w, key, params_.bits));
  };
  if (trace != nullptr) {
    trace->origin = origin;
    trace->key = key;
  }
  auto finish = [&](RouteResult& r) {
    if (trace != nullptr) {
      trace->destination = r.destination;
      trace->success = r.success;
      trace->hops = r.hops;
    }
  };

  RouteResult result;
  uint64_t current = origin;
  // Once prefix routing is exhausted the route switches permanently to
  // numeric (ring-greedy) mode: every subsequent hop must be numerically
  // closer to the key. Ring distance then decreases strictly, so the route
  // terminates, and with accurate leaf sets it converges on the numerically
  // closest node. Allowing prefix hops again after a numeric hop could
  // oscillate around power-of-two id boundaries.
  bool numeric_mode = false;
  for (int hop = 0; hop <= params_.max_route_hops; ++hop) {
    const PastryNode* node = GetNode(current);
    assert(node != nullptr);
    const int current_lcp = CommonPrefixLength(current, key, params_.bits);
    if (current_lcp == params_.bits) {  // exact hit
      result.destination = current;
      result.hops = hop;
      result.success = (current == truth.value());
      finish(result);
      return result;
    }

    // Rule R1 (leaf-set delivery): if the key falls within the span of this
    // node's live leaf set, the numerically closest member (or this node)
    // answers directly. This is Pastry's termination rule and guarantees the
    // route cannot oscillate around power-of-two id boundaries.
    uint64_t cw_span = 0, ccw_span = 0;
    for (uint64_t w : node->leaf_succ) {
      if (!IsAlive(w)) continue;
      cw_span = std::max(cw_span, space_.ClockwiseDistance(current, w));
    }
    for (uint64_t w : node->leaf_pred) {
      if (!IsAlive(w)) continue;
      ccw_span = std::max(ccw_span, space_.ClockwiseDistance(w, current));
    }
    const bool in_leaf_span =
        space_.ClockwiseDistance(current, key) <= cw_span ||
        space_.ClockwiseDistance(key, current) <= ccw_span;
    if (in_leaf_span) {
      uint64_t closest = current;
      uint64_t closest_dist = ring_distance(current, key);
      for (uint64_t w : node->leaf_set) {
        if (!IsAlive(w)) continue;
        const uint64_t d = ring_distance(w, key);
        if (d < closest_dist || (d == closest_dist && w < closest)) {
          closest_dist = d;
          closest = w;
        }
      }
      result.destination = closest;
      result.hops = hop + (closest == current ? 0 : 1);
      if (closest != current) {
        result.path.push_back(current);
        if (trace != nullptr) {
          trace->path.push_back({current, closest, HopEntryKind::kLeafSet,
                                 prefix_remaining(closest)});
        }
      }
      result.success = (closest == truth.value());
      finish(result);
      return result;
    }

    // Rule R2 (prefix routing): best strictly-longer prefix match with the
    // key; ties on prefix length break by underlay proximity to the current
    // node (FreePastry's locality-aware choice among equal-progress
    // candidates).
    uint64_t next = kNoEntry;
    int best_lcp = current_lcp;
    double best_prox = 0;
    HopEntryKind next_kind = HopEntryKind::kRoutingRow;
    if (!numeric_mode) {
      auto consider_prefix = [&](uint64_t w, HopEntryKind kind) {
        if (w == kNoEntry || w == current || !IsAlive(w)) return;
        const int l = CommonPrefixLength(w, key, params_.bits);
        if (l <= current_lcp) return;
        const double d = Proximity(current, w);
        if (next == kNoEntry || l > best_lcp ||
            (l == best_lcp && d < best_prox)) {
          next = w;
          best_lcp = l;
          best_prox = d;
          next_kind = kind;
        }
      };
      for (uint64_t w : node->routing_rows) {
        consider_prefix(w, HopEntryKind::kRoutingRow);
      }
      for (uint64_t w : node->leaf_set) {
        consider_prefix(w, HopEntryKind::kLeafSet);
      }
      for (uint64_t w : node->auxiliaries) {
        consider_prefix(w, HopEntryKind::kAuxiliary);
      }
    }

    if (next == kNoEntry) {
      // Rule R3 ("rare case" fallback): the numerically closest entry that
      // is strictly closer to the key than this node, from here on out.
      numeric_mode = true;
      uint64_t best_dist = ring_distance(current, key);
      auto consider_numeric = [&](uint64_t w, HopEntryKind kind) {
        if (w == kNoEntry || w == current || !IsAlive(w)) return;
        const uint64_t d = ring_distance(w, key);
        if (d < best_dist) {
          best_dist = d;
          next = w;
          next_kind = kind;
        }
      };
      for (uint64_t w : node->routing_rows) {
        consider_numeric(w, HopEntryKind::kRoutingRow);
      }
      for (uint64_t w : node->leaf_set) {
        consider_numeric(w, HopEntryKind::kLeafSet);
      }
      for (uint64_t w : node->auxiliaries) {
        consider_numeric(w, HopEntryKind::kAuxiliary);
      }
    }

    if (next == kNoEntry) {
      // Nothing known makes progress: deliver here.
      result.destination = current;
      result.hops = hop;
      result.success = (current == truth.value());
      finish(result);
      return result;
    }
    if (next_kind == HopEntryKind::kAuxiliary) ++result.aux_hops;
    if (trace != nullptr) {
      trace->path.push_back({current, next, next_kind,
                             prefix_remaining(next)});
    }
    result.path.push_back(current);
    current = next;
  }
  result.destination = current;
  result.hops = params_.max_route_hops;
  result.success = false;
  finish(result);
  return result;
}

}  // namespace peercache::pastry
