#include "pastry/pastry_network.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "common/bits.h"
#include "common/overlay.h"

namespace peercache::pastry {

static_assert(overlay::Overlay<PastryNetwork>,
              "PastryNetwork must satisfy the Overlay concept");

namespace {

double EuclideanDistance(const Coord& a, const Coord& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

PastryNetwork::PastryNetwork(const PastryParams& params, uint64_t seed)
    : params_(params), space_(params.bits), coord_rng_(seed) {}

std::vector<uint64_t> PastryNetwork::LiveNodeIds() const {
  return store_.live_ids();
}

double PastryNetwork::Proximity(uint64_t a, uint64_t b) const {
  const PastryNode* na = GetNode(a);
  const PastryNode* nb = GetNode(b);
  assert(na != nullptr && nb != nullptr);
  return EuclideanDistance(na->coord, nb->coord);
}

Status PastryNetwork::AddNode(uint64_t id) {
  if (!space_.Contains(id)) return Status::InvalidArgument("id out of range");
  if (store_.IsAlive(id)) {
    return Status::InvalidArgument("live id already used");
  }
  auto [node, inserted] = store_.Emplace(id, params_.frequency_capacity, params_.freq_sketch);
  node->id = id;
  if (inserted) {
    node->coord = Coord{coord_rng_.UniformDouble(),
                        coord_rng_.UniformDouble()};
  }
  node->alive = true;
  store_.tables().Clear(node->auxiliaries);
  store_.MarkAlive(id);
  return StabilizeNode(id);
}

Status PastryNetwork::BulkAdd(const std::vector<uint64_t>& ids) {
  for (uint64_t id : ids) {
    if (!space_.Contains(id)) {
      return Status::InvalidArgument("id out of range");
    }
    if (store_.IsAlive(id)) {
      return Status::InvalidArgument("live id already used");
    }
  }
  store_.Reserve(store_.size() + ids.size());
  for (uint64_t id : ids) {
    auto [node, inserted] = store_.Emplace(id, params_.frequency_capacity, params_.freq_sketch);
    node->id = id;
    if (inserted) {
      node->coord = Coord{coord_rng_.UniformDouble(),
                          coord_rng_.UniformDouble()};
    }
    node->alive = true;
    store_.tables().Clear(node->auxiliaries);
  }
  store_.BulkMarkAlive(ids);
  return Status::Ok();
}

Status PastryNetwork::RemoveNode(uint64_t id) {
  PastryNode* node = store_.Get(id);
  if (node == nullptr || !node->alive) {
    return Status::NotFound("node not alive");
  }
  node->alive = false;
  store_.MarkDead(id);
  return Status::Ok();
}

Status PastryNetwork::RejoinNode(uint64_t id) {
  PastryNode* node = store_.Get(id);
  if (node == nullptr) return Status::NotFound("unknown node");
  if (node->alive) return Status::FailedPrecondition("already alive");
  node->alive = true;
  store_.tables().Clear(node->auxiliaries);
  store_.MarkAlive(id);
  return StabilizeNode(id);
}

Status PastryNetwork::StabilizeNode(uint64_t id) {
  PastryNode* node_ptr = store_.Get(id);
  if (node_ptr == nullptr || !node_ptr->alive) {
    return Status::NotFound("node not alive");
  }
  PastryNode& node = *node_ptr;
  overlay::FlatTableArena& tables = store_.tables();
  const std::vector<uint64_t>& live = store_.live_ids();

  // Routing rows with proximity neighbor selection (FreePastry's table
  // construction: the underlay-closest candidate per row). Row r's
  // candidates are exactly the live ids sharing the first r bits with `id`
  // and differing at bit r — a contiguous range of the sorted live array,
  // found with two binary searches instead of a full-membership scan.
  // Scanning the range in ascending id order with a strict `<` keeps the
  // winner identical to the historical scan; a positive stabilize_sample
  // probes evenly spaced candidates instead (large-n builds).
  scratch_.assign(static_cast<size_t>(params_.bits), kNoEntry);
  for (int r = 0; r < params_.bits; ++r) {
    const int flip = params_.bits - 1 - r;  // bit position that differs
    const uint64_t flipped = id ^ (uint64_t{1} << flip);
    const size_t lo = store_.LowerBoundLive(flipped & ~LowBitMask(flip));
    const size_t hi = store_.UpperBoundLive(flipped | LowBitMask(flip));
    if (lo >= hi) continue;
    const size_t len = hi - lo;
    uint64_t best = kNoEntry;
    double best_dist = 0.0;
    auto probe = [&](uint64_t w) {
      const double d = Proximity(id, w);
      if (best == kNoEntry || d < best_dist) {
        best = w;
        best_dist = d;
      }
    };
    if (params_.stabilize_sample <= 0 ||
        len <= static_cast<size_t>(params_.stabilize_sample)) {
      for (size_t i = lo; i < hi; ++i) probe(live[i]);
    } else {
      const size_t sample = static_cast<size_t>(params_.stabilize_sample);
      for (size_t i = 0; i < sample; ++i) {
        probe(live[lo + (i * len) / sample]);
      }
    }
    scratch_[static_cast<size_t>(r)] = best;
  }
  tables.Assign(node.routing_rows, scratch_);

  // Leaf set: numerically nearest live ids, leaf_set_half per side, with
  // the two sides kept separate so the router can compute the contiguous
  // coverage arc exactly.
  scratch_.clear();
  if (live.size() > 1) {
    size_t succ = store_.UpperBoundLive(id);
    for (int i = 0; i < params_.leaf_set_half; ++i) {
      if (succ == live.size()) succ = 0;  // wrap
      if (live[succ] == id) break;        // wrapped around
      scratch_.push_back(live[succ]);
      ++succ;
    }
  }
  tables.Assign(node.leaf_succ, scratch_);

  const auto succ_span = LeafSucc(node);
  scratch_.clear();
  if (live.size() > 1) {
    size_t pred = store_.LowerBoundLive(id);
    for (int i = 0; i < params_.leaf_set_half; ++i) {
      if (pred == 0) pred = live.size();  // wrap
      --pred;
      if (live[pred] == id) break;
      if (std::find(succ_span.begin(), succ_span.end(), live[pred]) !=
          succ_span.end()) {
        break;  // small ring: sides met
      }
      scratch_.push_back(live[pred]);
    }
  }
  tables.Assign(node.leaf_pred, scratch_);

  tables.EraseIf(node.auxiliaries,
                 [this](uint64_t a) { return !IsAlive(a); });
  return Status::Ok();
}

void PastryNetwork::StabilizeAll() {
  for (uint64_t id : LiveNodeIds()) {
    (void)StabilizeNode(id);
  }
}

Status PastryNetwork::SetAuxiliaries(uint64_t id,
                                     std::vector<uint64_t> auxiliaries) {
  PastryNode* node = store_.Get(id);
  if (node == nullptr || !node->alive) {
    return Status::NotFound("node not alive");
  }
  store_.tables().Assign(node->auxiliaries, auxiliaries);
  return Status::Ok();
}

std::vector<uint64_t> PastryNetwork::CoreNeighborIds(uint64_t id) const {
  const PastryNode* node = GetNode(id);
  if (node == nullptr) return {};
  std::vector<uint64_t> out;
  for (uint64_t w : RoutingRows(*node)) {
    if (w != kNoEntry) out.push_back(w);
  }
  const auto succ = LeafSucc(*node);
  const auto pred = LeafPred(*node);
  out.insert(out.end(), succ.begin(), succ.end());
  out.insert(out.end(), pred.begin(), pred.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Result<uint64_t> PastryNetwork::ResponsibleNode(uint64_t key) const {
  const std::vector<uint64_t>& live = store_.live_ids();
  if (live.empty()) return Status::FailedPrecondition("empty overlay");
  // Numerically closest on the ring; the clockwise-nearer (lower distance)
  // wins, exact ties go to the smaller id.
  const size_t pos = store_.LowerBoundLive(key);
  const uint64_t succ = (pos == live.size()) ? live.front() : live[pos];
  const uint64_t pred = (pos == 0) ? live.back() : live[pos - 1];
  const uint64_t d_succ = space_.ClockwiseDistance(key, succ);
  const uint64_t d_pred = space_.ClockwiseDistance(pred, key);
  if (d_succ < d_pred) return succ;
  if (d_pred < d_succ) return pred;
  return std::min(pred, succ);
}

Status PastryNetwork::BeginResponsible(uint64_t key,
                                       ResponsibleCursor& cursor) const {
  cursor = ResponsibleCursor{};
  const std::vector<uint64_t>& live = store_.live_ids();
  if (live.empty()) return Status::FailedPrecondition("empty overlay");
  cursor.key = key;
  cursor.lo = 0;
  cursor.hi = live.size();
  cursor.done = false;
  return Status::Ok();
}

void PastryNetwork::StepResponsible(ResponsibleCursor& cursor) const {
  if (cursor.done) return;
  const std::vector<uint64_t>& live = store_.live_ids();
  // One probe of the lower-bound bisection: first index with id >= key.
  const size_t mid = cursor.lo + (cursor.hi - cursor.lo) / 2;
  if (live[mid] < cursor.key) {
    cursor.lo = mid + 1;
  } else {
    cursor.hi = mid;
  }
  if (cursor.lo < cursor.hi) return;
  // The bounds met at the unique insertion point; replay ResponsibleNode's
  // succ/pred tie-break verbatim.
  const size_t pos = cursor.lo;
  const uint64_t succ = (pos == live.size()) ? live.front() : live[pos];
  const uint64_t pred = (pos == 0) ? live.back() : live[pos - 1];
  const uint64_t d_succ = space_.ClockwiseDistance(cursor.key, succ);
  const uint64_t d_pred = space_.ClockwiseDistance(pred, cursor.key);
  cursor.result = d_succ < d_pred   ? succ
                  : d_pred < d_succ ? pred
                                    : std::min(pred, succ);
  cursor.done = true;
}

PastryNetwork::Decision PastryNetwork::DecideNext(const PastryNode& node,
                                                  uint64_t current,
                                                  uint64_t key,
                                                  bool numeric_mode) const {
  Decision out;
  auto ring_distance = [this](uint64_t a, uint64_t b) {
    return std::min(space_.ClockwiseDistance(a, b),
                    space_.ClockwiseDistance(b, a));
  };
  const int current_lcp = CommonPrefixLength(current, key, params_.bits);
  if (current_lcp == params_.bits) {  // exact hit
    out.action = Decision::Action::kDeliverHere;
    return out;
  }

  const auto rows = RoutingRows(node);
  const auto succ = LeafSucc(node);
  const auto pred = LeafPred(node);
  const auto aux = Auxiliaries(node);

  // Rule R1 (leaf-set delivery): if the key falls within the span of this
  // node's live leaf set, the numerically closest member (or this node)
  // answers directly. This is Pastry's termination rule and guarantees the
  // route cannot oscillate around power-of-two id boundaries.
  uint64_t cw_span = 0, ccw_span = 0;
  for (uint64_t w : succ) {
    if (!IsAlive(w)) continue;
    cw_span = std::max(cw_span, space_.ClockwiseDistance(current, w));
  }
  for (uint64_t w : pred) {
    if (!IsAlive(w)) continue;
    ccw_span = std::max(ccw_span, space_.ClockwiseDistance(w, current));
  }
  const bool in_leaf_span =
      space_.ClockwiseDistance(current, key) <= cw_span ||
      space_.ClockwiseDistance(key, current) <= ccw_span;
  if (in_leaf_span) {
    uint64_t closest = current;
    uint64_t closest_dist = ring_distance(current, key);
    auto consider_leaf = [&](uint64_t w) {
      if (!IsAlive(w)) return;
      const uint64_t d = ring_distance(w, key);
      if (d < closest_dist || (d == closest_dist && w < closest)) {
        closest_dist = d;
        closest = w;
      }
    };
    for (uint64_t w : succ) consider_leaf(w);
    for (uint64_t w : pred) consider_leaf(w);
    if (closest == current) {
      out.action = Decision::Action::kDeliverHere;
    } else {
      out.action = Decision::Action::kDeliverAt;
      out.next = closest;
      out.kind = HopEntryKind::kLeafSet;
    }
    return out;
  }

  // Rule R2 (prefix routing): best strictly-longer prefix match with the
  // key; ties on prefix length break by underlay proximity to the current
  // node (FreePastry's locality-aware choice among equal-progress
  // candidates).
  uint64_t next = kNoEntry;
  int best_lcp = current_lcp;
  double best_prox = 0;
  HopEntryKind next_kind = HopEntryKind::kRoutingRow;
  if (!numeric_mode) {
    auto consider_prefix = [&](uint64_t w, HopEntryKind kind) {
      if (w == kNoEntry || w == current || !IsAlive(w)) return;
      const int l = CommonPrefixLength(w, key, params_.bits);
      if (l <= current_lcp) return;
      const double d = Proximity(current, w);
      if (next == kNoEntry || l > best_lcp ||
          (l == best_lcp && d < best_prox)) {
        next = w;
        best_lcp = l;
        best_prox = d;
        next_kind = kind;
      }
    };
    for (uint64_t w : rows) consider_prefix(w, HopEntryKind::kRoutingRow);
    for (uint64_t w : succ) consider_prefix(w, HopEntryKind::kLeafSet);
    for (uint64_t w : pred) consider_prefix(w, HopEntryKind::kLeafSet);
    for (uint64_t w : aux) consider_prefix(w, HopEntryKind::kAuxiliary);
  }

  if (next == kNoEntry) {
    // Rule R3 ("rare case" fallback): the numerically closest entry that
    // is strictly closer to the key than this node, from here on out.
    out.enters_numeric = true;
    uint64_t best_dist = ring_distance(current, key);
    auto consider_numeric = [&](uint64_t w, HopEntryKind kind) {
      if (w == kNoEntry || w == current || !IsAlive(w)) return;
      const uint64_t d = ring_distance(w, key);
      if (d < best_dist) {
        best_dist = d;
        next = w;
        next_kind = kind;
      }
    };
    for (uint64_t w : rows) consider_numeric(w, HopEntryKind::kRoutingRow);
    for (uint64_t w : succ) consider_numeric(w, HopEntryKind::kLeafSet);
    for (uint64_t w : pred) consider_numeric(w, HopEntryKind::kLeafSet);
    for (uint64_t w : aux) consider_numeric(w, HopEntryKind::kAuxiliary);
  }

  if (next == kNoEntry) {
    // Nothing known makes progress: deliver here.
    out.action = Decision::Action::kDeliverHere;
    return out;
  }
  out.action = Decision::Action::kForward;
  out.next = next;
  out.kind = next_kind;
  return out;
}

Status PastryNetwork::LookupInto(uint64_t origin, uint64_t key,
                                 RouteResult& out, RouteTrace* trace,
                                 const fault::FaultPlan* faults,
                                 const latency::LatencyModel* latency) const {
  RouteCursor cursor;
  if (Status s = BeginRoute(origin, key, cursor, out, trace, faults, latency);
      !s.ok()) {
    return s;
  }
  while (!cursor.done) StepRoute(cursor, out, trace, faults, latency);
  return Status::Ok();
}

Status PastryNetwork::BeginRoute(uint64_t origin, uint64_t key,
                                 RouteCursor& cursor, RouteResult& out,
                                 RouteTrace* trace,
                                 const fault::FaultPlan* faults,
                                 const latency::LatencyModel* latency) const {
  (void)latency;
  cursor = RouteCursor{};
  out.Clear();
  if (!IsAlive(origin)) return Status::Unavailable("origin not alive");
  auto truth = ResponsibleNode(key);
  if (!truth.ok()) return truth.status();
  cursor.current = origin;
  cursor.key = key;
  cursor.truth = truth.value();
  cursor.resilient = faults != nullptr && faults->enabled();
  cursor.done = false;
  if (trace != nullptr) {
    trace->origin = origin;
    trace->key = key;
  }
  return Status::Ok();
}

void PastryNetwork::StepRoute(RouteCursor& cursor, RouteResult& out,
                              RouteTrace* trace,
                              const fault::FaultPlan* faults,
                              const latency::LatencyModel* latency) const {
  if (cursor.done) return;
  if (cursor.resilient) {
    assert(faults != nullptr && faults->enabled());
    StepResilient(cursor, out, trace, *faults, latency);
    return;
  }

  const bool timed = latency != nullptr && latency->enabled();
  const uint64_t key = cursor.key;
  // Trace metric: prefix digits still to resolve after landing on `w`.
  auto prefix_remaining = [this, key](uint64_t w) {
    return static_cast<uint64_t>(params_.bits -
                                 CommonPrefixLength(w, key, params_.bits));
  };
  auto finish = [&](uint64_t destination, int hops, bool success) {
    out.destination = destination;
    out.hops = hops;
    out.success = success;
    if (trace != nullptr) {
      trace->destination = out.destination;
      trace->success = out.success;
      trace->hops = out.hops;
      trace->latency_ms = out.latency_ms;
    }
    cursor.done = true;
  };

  const uint64_t current = cursor.current;
  const PastryNode* node = GetNode(current);
  assert(node != nullptr);
  // Once prefix routing is exhausted the route switches permanently to
  // numeric (ring-greedy) mode — the cursor's latch; see the classic loop's
  // oscillation rationale in DecideNext.
  const Decision d = DecideNext(*node, current, key, cursor.numeric_mode);

  if (d.action == Decision::Action::kDeliverHere) {
    finish(current, cursor.hops_taken, current == cursor.truth);
    return;
  }
  if (d.action == Decision::Action::kDeliverAt) {
    // R1's final leaf-set hop: the chosen member answers directly.
    out.path.push_back(current);
    if (trace != nullptr) {
      trace->path.push_back({current, d.next, HopEntryKind::kLeafSet,
                             prefix_remaining(d.next)});
    }
    if (timed) {
      const double ms =
          latency->HopLatencyMs(key, current, d.next, cursor.hops_taken);
      out.latency_ms += ms;
      if (trace != nullptr) trace->path.back().latency_ms = ms;
    }
    finish(d.next, cursor.hops_taken + 1, d.next == cursor.truth);
    return;
  }

  if (d.enters_numeric) cursor.numeric_mode = true;
  if (d.kind == HopEntryKind::kAuxiliary) ++out.aux_hops;
  if (trace != nullptr) {
    trace->path.push_back({current, d.next, d.kind,
                           prefix_remaining(d.next)});
  }
  if (timed) {
    const double ms =
        latency->HopLatencyMs(key, current, d.next, cursor.hops_taken);
    out.latency_ms += ms;
    if (trace != nullptr) trace->path.back().latency_ms = ms;
  }
  out.path.push_back(current);
  cursor.current = d.next;
  ++cursor.hops_taken;
  if (cursor.hops_taken > params_.max_route_hops) {
    // Same hop-budget failure the classic loop reports.
    finish(cursor.current, params_.max_route_hops, false);
  }
}

Status PastryNetwork::BeginLookup(uint64_t origin, uint64_t key,
                                  LookupCursor& cursor) const {
  cursor = LookupCursor{};
  if (!IsAlive(origin)) return Status::Unavailable("origin not alive");
  auto truth = ResponsibleNode(key);
  if (!truth.ok()) return truth.status();
  cursor.current = origin;
  cursor.key = key;
  cursor.truth = truth.value();
  cursor.node = GetNode(origin);
  cursor.done = false;
  return Status::Ok();
}

void PastryNetwork::StepLookup(LookupCursor& cursor) const {
  if (cursor.done) return;
  const Decision d =
      DecideNext(*cursor.node, cursor.current, cursor.key,
                 cursor.numeric_mode);
  if (d.action == Decision::Action::kDeliverHere) {
    cursor.destination = cursor.current;
    cursor.success = (cursor.current == cursor.truth);
    cursor.done = true;
    return;
  }
  if (d.action == Decision::Action::kDeliverAt) {
    cursor.destination = d.next;
    ++cursor.hops;
    cursor.success = (d.next == cursor.truth);
    cursor.done = true;
    return;
  }
  if (d.enters_numeric) cursor.numeric_mode = true;
  if (d.kind == HopEntryKind::kAuxiliary) ++cursor.aux_hops;
  cursor.current = d.next;
  cursor.node = GetNode(d.next);
  ++cursor.hops;
  if (cursor.hops > params_.max_route_hops) {
    // Same hop-budget failure LookupInto reports.
    cursor.destination = cursor.current;
    cursor.hops = params_.max_route_hops;
    cursor.success = false;
    cursor.done = true;
  }
}

void PastryNetwork::StepResilient(RouteCursor& cursor, RouteResult& out,
                                  RouteTrace* trace,
                                  const fault::FaultPlan& faults,
                                  const latency::LatencyModel* latency) const {
  const bool timed = latency != nullptr && latency->enabled();
  const uint64_t key = cursor.key;
  auto ring_distance = [this](uint64_t a, uint64_t b) {
    return std::min(space_.ClockwiseDistance(a, b),
                    space_.ClockwiseDistance(b, a));
  };
  auto prefix_remaining = [this, key](uint64_t w) {
    return static_cast<uint64_t>(params_.bits -
                                 CommonPrefixLength(w, key, params_.bits));
  };
  auto finish = [&](uint64_t destination, int hops, bool delivered) {
    out.destination = destination;
    out.hops = hops;
    out.success = delivered && destination == cursor.truth;
    if (trace != nullptr) {
      trace->destination = out.destination;
      trace->success = out.success;
      trace->hops = out.hops;
      trace->latency_ms = out.latency_ms;
    }
    cursor.done = true;
  };

  // Classic outer-loop guard: a previous visit may have spent the budget.
  if (cursor.spent > params_.max_route_hops) {
    out.budget_exhausted = true;
    finish(cursor.current, params_.max_route_hops, /*delivered=*/false);
    return;
  }

  const uint64_t current = cursor.current;
  bool numeric_mode = cursor.numeric_mode;
  {
    const PastryNode* node = GetNode(current);
    assert(node != nullptr);
    const auto rows = RoutingRows(*node);
    const auto leaf_succ = LeafSucc(*node);
    const auto leaf_pred = LeafPred(*node);
    const auto auxiliaries = Auxiliaries(*node);
    const int current_lcp = CommonPrefixLength(current, key, params_.bits);
    if (current_lcp == params_.bits) {  // exact hit
      finish(current, cursor.hops_taken, /*delivered=*/true);
      return;
    }
    // Per-visit exclusion sets; see ChordNetwork::StepResilient for the
    // dead-vs-dropped retransmission policy. Visit-local, so they never
    // cross a message boundary.
    std::vector<uint64_t> dead_here;
    std::vector<uint64_t> dropped_here;
    int retries_here = 0;

    while (true) {
      uint64_t next = kNoEntry;
      HopEntryKind next_kind = HopEntryKind::kRoutingRow;
      bool next_is_dead = false;
      bool delivery_hop = false;  // R1's final leaf-set hop terminates
      bool deliver_here = false;

      auto excluded = [](const std::vector<uint64_t>& set, uint64_t w) {
        return std::find(set.begin(), set.end(), w) != set.end();
      };
      // The stale-window twist on "ping before forwarding": a dead entry
      // inside its window is believed alive and stays a candidate.
      auto believed_alive = [&](uint64_t w) {
        return IsAlive(w) || faults.StaleBelievedAlive(key, current, w);
      };
      auto select = [&](bool allow_retransmit) {
        next = kNoEntry;
        next_kind = HopEntryKind::kRoutingRow;
        next_is_dead = false;
        delivery_hop = false;
        deliver_here = false;
        auto usable = [&](uint64_t w) {
          if (w == kNoEntry || w == current || excluded(dead_here, w)) {
            return false;
          }
          if (!allow_retransmit && excluded(dropped_here, w)) return false;
          return believed_alive(w);
        };
        // R1 never honors the drop-exclusion set: its hop is final (the
        // chosen member answers), so settling for the second-closest member
        // after a drop would deliver at the wrong node. A dropped delivery
        // message is retransmitted to the same member instead — each retry
        // is a fresh attempt counter and thus a fresh deterministic draw.
        auto usable_r1 = [&](uint64_t w) {
          return w != kNoEntry && w != current && !excluded(dead_here, w) &&
                 believed_alive(w);
        };

        // Rule R1 (leaf-set delivery), over believed-live usable members.
        uint64_t cw_span = 0, ccw_span = 0;
        for (uint64_t w : leaf_succ) {
          if (!usable_r1(w)) continue;
          cw_span = std::max(cw_span, space_.ClockwiseDistance(current, w));
        }
        for (uint64_t w : leaf_pred) {
          if (!usable_r1(w)) continue;
          ccw_span = std::max(ccw_span, space_.ClockwiseDistance(w, current));
        }
        const bool in_leaf_span =
            space_.ClockwiseDistance(current, key) <= cw_span ||
            space_.ClockwiseDistance(key, current) <= ccw_span;
        if (in_leaf_span) {
          uint64_t closest = current;
          uint64_t closest_dist = ring_distance(current, key);
          auto consider_leaf = [&](uint64_t w) {
            if (!usable_r1(w)) return;
            const uint64_t d = ring_distance(w, key);
            if (d < closest_dist || (d == closest_dist && w < closest)) {
              closest_dist = d;
              closest = w;
            }
          };
          for (uint64_t w : leaf_succ) consider_leaf(w);
          for (uint64_t w : leaf_pred) consider_leaf(w);
          if (closest == current) {
            deliver_here = true;
          } else {
            next = closest;
            next_kind = HopEntryKind::kLeafSet;
            next_is_dead = !IsAlive(closest);
            delivery_hop = true;
          }
          return;
        }

        // Rule R2 (prefix routing).
        int best_lcp = current_lcp;
        double best_prox = 0;
        if (!numeric_mode) {
          auto consider_prefix = [&](uint64_t w, HopEntryKind kind) {
            if (!usable(w)) return;
            const int l = CommonPrefixLength(w, key, params_.bits);
            if (l <= current_lcp) return;
            const double d = Proximity(current, w);
            if (next == kNoEntry || l > best_lcp ||
                (l == best_lcp && d < best_prox)) {
              next = w;
              best_lcp = l;
              best_prox = d;
              next_kind = kind;
            }
          };
          for (uint64_t w : rows) {
            consider_prefix(w, HopEntryKind::kRoutingRow);
          }
          for (uint64_t w : leaf_succ) {
            consider_prefix(w, HopEntryKind::kLeafSet);
          }
          for (uint64_t w : leaf_pred) {
            consider_prefix(w, HopEntryKind::kLeafSet);
          }
          for (uint64_t w : auxiliaries) {
            consider_prefix(w, HopEntryKind::kAuxiliary);
          }
        }

        // Rule R3 ("rare case" numeric fallback).
        if (next == kNoEntry) {
          uint64_t best_dist = ring_distance(current, key);
          auto consider_numeric = [&](uint64_t w, HopEntryKind kind) {
            if (!usable(w)) return;
            const uint64_t d = ring_distance(w, key);
            if (d < best_dist) {
              best_dist = d;
              next = w;
              next_kind = kind;
            }
          };
          for (uint64_t w : rows) {
            consider_numeric(w, HopEntryKind::kRoutingRow);
          }
          for (uint64_t w : leaf_succ) {
            consider_numeric(w, HopEntryKind::kLeafSet);
          }
          for (uint64_t w : leaf_pred) {
            consider_numeric(w, HopEntryKind::kLeafSet);
          }
          for (uint64_t w : auxiliaries) {
            consider_numeric(w, HopEntryKind::kAuxiliary);
          }
        }
        if (next != kNoEntry) next_is_dead = !IsAlive(next);
      };
      select(/*allow_retransmit=*/false);
      if (next == kNoEntry && !deliver_here && !dropped_here.empty()) {
        select(/*allow_retransmit=*/true);
      }

      if (deliver_here || next == kNoEntry) {
        // Key within our own span, or nothing known makes progress.
        finish(current, cursor.hops_taken, /*delivered=*/true);
        return;
      }
      // Entering R3 is a per-lookup latch, but only once the chosen hop
      // actually happens — a failed attempt must not flip the mode the
      // fault-free route never entered.
      const bool numeric_hop =
          !delivery_hop && !numeric_mode &&
          CommonPrefixLength(next, key, params_.bits) <= current_lcp;

      bool failed = false;
      if (next_is_dead) {
        ++out.stale_forwards;
        out.dead_evictions.emplace_back(current, next);
        dead_here.push_back(next);
        failed = true;
      } else if (faults.FailStopped(key, next)) {
        ++out.failstop_skips;
        dead_here.push_back(next);
        failed = true;
      } else if (faults.DropForward(key, current, next, cursor.attempt++)) {
        ++out.dropped_forwards;
        dropped_here.push_back(next);
        failed = true;
      }

      if (!failed) {
        if (numeric_hop) cursor.numeric_mode = true;
        if (next_kind == HopEntryKind::kAuxiliary) ++out.aux_hops;
        if (trace != nullptr) {
          trace->path.push_back({current, next, next_kind,
                                 prefix_remaining(next), /*dropped=*/false,
                                 /*retried=*/retries_here > 0});
        }
        if (timed) {
          const double ms =
              latency->HopLatencyMs(key, current, next, cursor.spent);
          out.latency_ms += ms;
          if (trace != nullptr) trace->path.back().latency_ms = ms;
        }
        out.path.push_back(current);
        ++cursor.hops_taken;
        ++cursor.spent;
        if (delivery_hop) {
          // R1's termination rule: the leaf-set member closest to the key
          // answers directly.
          finish(next, cursor.hops_taken, /*delivered=*/true);
          return;
        }
        cursor.current = next;
        return;  // next node visit = next StepRoute
      }

      ++out.retries;
      ++retries_here;
      ++cursor.spent;
      if (trace != nullptr) {
        trace->path.push_back({current, next, next_kind,
                               prefix_remaining(next), /*dropped=*/true,
                               /*retried=*/false});
      }
      if (timed) {
        const double ms = latency->FailedAttemptMs();
        out.latency_ms += ms;
        if (trace != nullptr) trace->path.back().latency_ms = ms;
      }
      if (!faults.config().retry) {
        finish(current, cursor.hops_taken, /*delivered=*/false);
        return;
      }
      if (retries_here > faults.config().max_retries ||
          cursor.spent > params_.max_route_hops) {
        out.budget_exhausted = true;
        finish(current, cursor.hops_taken, /*delivered=*/false);
        return;
      }
    }
  }
}

Result<RouteResult> PastryNetwork::Lookup(
    uint64_t origin, uint64_t key, RouteTrace* trace,
    const fault::FaultPlan* faults,
    const latency::LatencyModel* latency) const {
  RouteResult result;
  if (Status s = LookupInto(origin, key, result, trace, faults, latency);
      !s.ok()) {
    return s;
  }
  return result;
}

}  // namespace peercache::pastry
