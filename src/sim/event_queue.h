#ifndef PEERCACHE_SIM_EVENT_QUEUE_H_
#define PEERCACHE_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace peercache::sim {

/// Deterministic discrete-event scheduler. Events at equal timestamps fire
/// in scheduling order (FIFO), so a fixed seed reproduces a simulation
/// exactly.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Current virtual time in seconds. 0 before any event has fired.
  double now() const { return now_; }

  /// Number of pending events.
  size_t pending() const { return heap_.size(); }

  /// Schedules `fn` at absolute time `t` (>= now).
  void ScheduleAt(double t, Callback fn);

  /// Schedules `fn` after `delay` seconds.
  void ScheduleAfter(double delay, Callback fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  /// Fires the earliest event. Returns false when the queue is empty.
  bool RunNext();

  /// Runs events until virtual time exceeds `t_end` or the queue drains.
  /// Events scheduled exactly at `t_end` still fire.
  void RunUntil(double t_end);

  /// Drops every pending event.
  void Clear();

 private:
  struct Entry {
    double time;
    uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  double now_ = 0;
  uint64_t next_seq_ = 0;
};

}  // namespace peercache::sim

#endif  // PEERCACHE_SIM_EVENT_QUEUE_H_
