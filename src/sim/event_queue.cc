#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace peercache::sim {

void EventQueue::ScheduleAt(double t, Callback fn) {
  assert(t >= now_);
  heap_.push(Entry{t, next_seq_++, std::move(fn)});
}

bool EventQueue::RunNext() {
  if (heap_.empty()) return false;
  // priority_queue::top returns const&; the callback must be moved out
  // before pop. const_cast is safe because the entry is popped immediately.
  Entry& top = const_cast<Entry&>(heap_.top());
  now_ = top.time;
  Callback fn = std::move(top.fn);
  heap_.pop();
  fn();
  return true;
}

void EventQueue::RunUntil(double t_end) {
  while (!heap_.empty() && heap_.top().time <= t_end) {
    RunNext();
  }
  if (now_ < t_end) now_ = t_end;
}

void EventQueue::Clear() {
  while (!heap_.empty()) heap_.pop();
}

}  // namespace peercache::sim
