#ifndef PEERCACHE_AUXSEL_CHORD_COMMON_H_
#define PEERCACHE_AUXSEL_CHORD_COMMON_H_

#include <cstdint>
#include <vector>

#include "auxsel/selection_types.h"
#include "common/status.h"

namespace peercache::auxsel {

/// Preprocessed Chord selection instance, in the paper's "zero-node" frame
/// (Sec. V): every id is shifted by -self_id so the selecting node sits at 0
/// and peers become successors 1..n sorted by clockwise id distance.
///
/// All arrays are 1-indexed over successor positions; index 0 is the
/// zero-node itself. Core neighbors that are not in V are added as
/// zero-frequency successors (they carry no cost but shorten routes).
struct ChordInstance {
  int bits = 0;
  int n = 0;                      ///< Number of successors.
  std::vector<uint64_t> ids;      ///< ids[1..n]: shifted ids, ascending.
  std::vector<uint64_t> orig_id;  ///< orig_id[1..n]: unshifted ids.
  std::vector<double> freq;       ///< freq[1..n].
  std::vector<int> delay_bound;   ///< delay_bound[1..n]; negative = none.
  std::vector<bool> is_core;      ///< is_core[1..n].
  std::vector<double> F;          ///< F[m] = Σ_{l<=m} freq[l]; F[0] = 0.
  /// core_serve[l]: hop estimate from the nearest core at-or-before l to l
  /// (0 when l itself is core); `bits` when no core precedes l.
  std::vector<int> core_serve;
  /// B[m] = Σ_{l<=m} freq[l]·core_serve[l] — the cost of nodes 1..m served
  /// by core neighbors only (paper's C_0). B[0] = 0.
  std::vector<double> B;
  /// next_core[j] = smallest core index > j, or n+1 if none; j in 0..n.
  std::vector<int> next_core;
  /// Candidate (non-core) successor indices, ascending.
  std::vector<int> candidates;

  /// Clockwise hop estimate from successor j to successor m (j <= m):
  /// bitlen(ids[m] - ids[j]).
  int Hop(int j, int m) const;

  /// Cost s(j, m) of paper Eq. 8/10: total weighted distance of successors
  /// in (j, m] when an auxiliary pointer sits at j and core neighbors are
  /// in place (no other auxiliary pointer in (j, m]). O(m - j).
  double SlowS(int j, int m) const;
};

/// Builds the instance from a validated input. O(n log n).
Result<ChordInstance> BuildChordInstance(const SelectionInput& input);

/// Reconstructs a Selection from chosen successor indices.
Selection MakeChordSelection(const SelectionInput& input,
                             const ChordInstance& inst,
                             const std::vector<int>& chosen_indices);

}  // namespace peercache::auxsel

#endif  // PEERCACHE_AUXSEL_CHORD_COMMON_H_
