#ifndef PEERCACHE_AUXSEL_CHORD_QOS_H_
#define PEERCACHE_AUXSEL_CHORD_QOS_H_

#include "auxsel/selection_types.h"
#include "common/status.h"

namespace peercache::auxsel {

/// QoS-aware Chord selection (paper Sec. V-C): minimizes Eq. 1 subject to
/// every peer with delay_bound x having a neighbor within hop estimate x.
///
/// The constraint threads naturally through recurrence Eq. 7: a transition
/// that makes j the last pointer at-or-before m is admissible only while
/// every constrained successor in (j, m] is served within its bound by j or
/// by a core neighbor; C_0 is infeasible wherever cores alone violate a
/// bound. Exact, O(n²·k); returns kInfeasible when no k-subset meets all
/// bounds.
Result<Selection> SelectChordDpQos(const SelectionInput& input);

}  // namespace peercache::auxsel

#endif  // PEERCACHE_AUXSEL_CHORD_QOS_H_
