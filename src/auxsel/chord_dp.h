#ifndef PEERCACHE_AUXSEL_CHORD_DP_H_
#define PEERCACHE_AUXSEL_CHORD_DP_H_

#include "auxsel/selection_types.h"
#include "common/status.h"

namespace peercache::auxsel {

/// The paper's simple O(n²·k) dynamic program for Chord auxiliary-neighbor
/// selection (Sec. V-A, recurrence Eq. 7):
///
///   C_i(m) = min_{1<=j<=m} [ C_{i-1}(j-1) + s(j, m) ]
///
/// where s(j, m) is the weighted distance of successors (j, m] when the
/// rightmost auxiliary pointer at-or-before m sits at j. Exact; used as the
/// reference the fast algorithm (chord_fast.h) is tested against, and is
/// itself brute-force-verified on small instances.
Result<Selection> SelectChordDp(const SelectionInput& input);

}  // namespace peercache::auxsel

#endif  // PEERCACHE_AUXSEL_CHORD_DP_H_
