#include "auxsel/kademlia_dp.h"

#include <algorithm>
#include <cstddef>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/bits.h"

namespace peercache::auxsel {

namespace {

/// One merged element of the instance: a peer (with its frequency), a core
/// neighbor (possibly with no observed frequency), or both.
struct Element {
  uint64_t id = 0;
  double frequency = 0.0;
  bool is_core = false;
};

/// Per-budget optimum for one trie subtree under *exact*-j semantics:
/// cost[j] is the minimal uncovered-subtree mass at or below this vertex
/// when exactly j candidates are chosen inside it (so j >= 1 implies the
/// subtree is covered), and sets[j] is a witness. Entries exist for
/// j = 0 .. min(k, candidates in range).
struct Table {
  std::vector<double> cost;
  std::vector<std::vector<uint64_t>> sets;
};

class Solver {
 public:
  Solver(std::vector<Element> elements, int bits, int k)
      : elements_(std::move(elements)), bits_(bits), k_(k) {
    const size_t n = elements_.size();
    freq_prefix_.assign(n + 1, 0.0);
    core_prefix_.assign(n + 1, 0);
    cand_prefix_.assign(n + 1, 0);
    for (size_t i = 0; i < n; ++i) {
      freq_prefix_[i + 1] = freq_prefix_[i] + elements_[i].frequency;
      core_prefix_[i + 1] = core_prefix_[i] + (elements_[i].is_core ? 1 : 0);
      cand_prefix_[i + 1] = cand_prefix_[i] + (elements_[i].is_core ? 0 : 1);
    }
  }

  std::vector<uint64_t> Solve() {
    if (elements_.empty()) return {};
    Table root = SolveRange(0, elements_.size(), bits_, /*is_root=*/true);
    size_t best_j = 0;
    for (size_t j = 1; j < root.cost.size(); ++j) {
      if (root.cost[j] < root.cost[best_j]) best_j = j;  // ties: fewer
    }
    std::vector<uint64_t> chosen = std::move(root.sets[best_j]);
    std::sort(chosen.begin(), chosen.end());
    return chosen;
  }

 private:
  /// The subtree spanning elements [lo, hi) whose ids still disagree on
  /// the low `height` bits. `is_root` suppresses the vertex's own
  /// uncovered-mass term (Eq. 1 charges the b levels below the root).
  Table SolveRange(size_t lo, size_t hi, int height, bool is_root) {
    const double freq = freq_prefix_[hi] - freq_prefix_[lo];
    const bool has_core = core_prefix_[hi] > core_prefix_[lo];
    const int cap =
        std::min(k_, static_cast<int>(cand_prefix_[hi] - cand_prefix_[lo]));

    if (hi - lo == 1) {
      // A singleton collapses its whole descending chain: height + 1
      // vertices (this one plus one per remaining bit) all carry the same
      // frequency mass and the same coverage state.
      const int chain = height + (is_root ? 0 : 1);
      Table t;
      t.cost.push_back(has_core ? 0.0 : chain * freq);
      t.sets.emplace_back();
      if (cap >= 1) {
        t.cost.push_back(0.0);
        t.sets.push_back({elements_[lo].id});
      }
      return t;
    }

    // Split at the highest bit the range still disagrees on. Ranges with
    // >= 2 distinct ids always split before height reaches 0.
    const int bit = height - 1;
    const size_t mid = SplitPoint(lo, hi, bit);
    if (mid == lo || mid == hi) {
      // Unary chain vertex: all ids agree on this bit too; descend and
      // charge this vertex's own uncovered mass on the way back up (the
      // root carries no such charge — Eq. 1 counts the b levels below it).
      Table t = SolveRange(lo, hi, bit, /*is_root=*/false);
      if (!is_root && !has_core) t.cost[0] += freq;
      return t;
    }

    Table left = SolveRange(lo, mid, bit, /*is_root=*/false);
    Table right = SolveRange(mid, hi, bit, /*is_root=*/false);
    Table t;
    t.cost.assign(static_cast<size_t>(cap) + 1, 0.0);
    t.sets.assign(static_cast<size_t>(cap) + 1, {});
    for (int j = 0; j <= cap; ++j) {
      bool found = false;
      for (size_t j1 = 0; j1 < left.cost.size(); ++j1) {
        const size_t j2 = static_cast<size_t>(j) - j1;
        if (j1 > static_cast<size_t>(j) || j2 >= right.cost.size()) continue;
        const double cost = left.cost[j1] + right.cost[j2];
        if (!found || cost < t.cost[static_cast<size_t>(j)]) {
          found = true;
          t.cost[static_cast<size_t>(j)] = cost;
          t.sets[static_cast<size_t>(j)] = left.sets[j1];
          t.sets[static_cast<size_t>(j)].insert(
              t.sets[static_cast<size_t>(j)].end(), right.sets[j2].begin(),
              right.sets[j2].end());
        }
      }
    }
    if (!is_root && !has_core) t.cost[0] += freq;  // j = 0 leaves T uncovered
    return t;
  }

  /// First index in [lo, hi) whose id has `bit` set. The range shares all
  /// bits above `bit` and is id-sorted, so this is a clean split point.
  size_t SplitPoint(size_t lo, size_t hi, int bit) const {
    const uint64_t probe = uint64_t{1} << bit;
    size_t a = lo, b = hi;
    while (a < b) {
      const size_t m = a + (b - a) / 2;
      if ((elements_[m].id & probe) != 0) {
        b = m;
      } else {
        a = m + 1;
      }
    }
    return a;
  }

  std::vector<Element> elements_;
  int bits_;
  int k_;
  std::vector<double> freq_prefix_;
  std::vector<size_t> core_prefix_;
  std::vector<size_t> cand_prefix_;
};

}  // namespace

Result<Selection> SelectKademliaDp(const SelectionInput& input) {
  if (Status s = ValidateInput(input); !s.ok()) return s;
  std::unordered_set<uint64_t> cores(input.core_ids.begin(),
                                     input.core_ids.end());
  std::vector<Element> elements;
  elements.reserve(input.peers.size() + cores.size());
  for (const PeerFreq& p : input.peers) {
    elements.push_back({p.id, p.frequency, cores.count(p.id) > 0});
  }
  std::unordered_set<uint64_t> peer_ids;
  peer_ids.reserve(input.peers.size() * 2);
  for (const PeerFreq& p : input.peers) peer_ids.insert(p.id);
  for (uint64_t c : cores) {
    if (c == input.self_id || peer_ids.count(c)) continue;
    elements.push_back({c, 0.0, true});
  }
  std::sort(elements.begin(), elements.end(),
            [](const Element& a, const Element& b) { return a.id < b.id; });

  Selection sel;
  sel.chosen = Solver(std::move(elements), input.bits, input.k).Solve();
  sel.cost = EvaluateKademliaCost(input, sel.chosen);
  return sel;
}

}  // namespace peercache::auxsel
