#include "auxsel/selection_types.h"

#include <cmath>
#include <unordered_set>

#include "common/bits.h"
#include "common/ring_id.h"

namespace peercache::auxsel {

namespace {

/// Shared evaluator skeleton: distance_fn(w, v) estimates hops from neighbor
/// w to destination v; d(v, ∅) = bits.
template <typename DistanceFn>
double EvaluateCost(const SelectionInput& input,
                    const std::vector<uint64_t>& aux, DistanceFn distance) {
  std::vector<uint64_t> neighbors = input.core_ids;
  neighbors.insert(neighbors.end(), aux.begin(), aux.end());
  double total = 0;
  for (const PeerFreq& peer : input.peers) {
    int best = input.bits;
    for (uint64_t w : neighbors) {
      best = std::min(best, distance(w, peer.id));
      if (best == 0) break;
    }
    total += peer.frequency * (1.0 + best);
  }
  return total;
}

template <typename DistanceFn>
bool QosSatisfied(const SelectionInput& input,
                  const std::vector<uint64_t>& aux, DistanceFn distance) {
  std::vector<uint64_t> neighbors = input.core_ids;
  neighbors.insert(neighbors.end(), aux.begin(), aux.end());
  for (const PeerFreq& peer : input.peers) {
    if (peer.delay_bound < 0) continue;
    int best = input.bits;
    for (uint64_t w : neighbors) {
      best = std::min(best, distance(w, peer.id));
    }
    if (best > peer.delay_bound) return false;
  }
  return true;
}

}  // namespace

Status ValidateInput(const SelectionInput& input) {
  if (input.bits < 1 || input.bits > 64) {
    return Status::InvalidArgument("bits must be in [1, 64]");
  }
  if (input.k < 0) return Status::InvalidArgument("k must be >= 0");
  const uint64_t mask = LowBitMask(input.bits);
  if ((input.self_id & ~mask) != 0) {
    return Status::InvalidArgument("self_id out of range");
  }
  std::unordered_set<uint64_t> seen;
  seen.reserve(input.peers.size() * 2);
  for (const PeerFreq& p : input.peers) {
    if ((p.id & ~mask) != 0) {
      return Status::InvalidArgument("peer id out of range");
    }
    if (p.id == input.self_id) {
      return Status::InvalidArgument("peers must not contain self_id");
    }
    if (!seen.insert(p.id).second) {
      return Status::InvalidArgument("duplicate peer id");
    }
    if (p.frequency < 0 || !std::isfinite(p.frequency)) {
      return Status::InvalidArgument("frequency must be finite and >= 0");
    }
  }
  for (uint64_t c : input.core_ids) {
    if ((c & ~mask) != 0) {
      return Status::InvalidArgument("core id out of range");
    }
  }
  return Status::Ok();
}

double EvaluatePastryCost(const SelectionInput& input,
                          const std::vector<uint64_t>& aux) {
  const int bits = input.bits;
  return EvaluateCost(input, aux, [bits](uint64_t w, uint64_t v) {
    return bits - CommonPrefixLength(w, v, bits);
  });
}

double EvaluateChordCost(const SelectionInput& input,
                         const std::vector<uint64_t>& aux) {
  IdSpace space(input.bits);
  // Chord's routing policy only forwards to neighbors between the source
  // and the target (clockwise); a neighbor past the target cannot serve it,
  // so its distance is the no-neighbor cap.
  const uint64_t self = input.self_id;
  const int bits = input.bits;
  return EvaluateCost(input, aux, [&space, self, bits](uint64_t w, uint64_t v) {
    const uint64_t sv = space.ClockwiseDistance(self, v);
    const uint64_t sw = space.ClockwiseDistance(self, w);
    if (sw > sv) return bits;
    return BitLength(sv - sw);
  });
}

double EvaluateKademliaCost(const SelectionInput& input,
                            const std::vector<uint64_t>& aux) {
  // Deliberately phrased in the XOR metric rather than via lcp, so the
  // differential tests pin the bitlen(w ^ v) = b - lcp(w, v) identity
  // instead of assuming it.
  return EvaluateCost(input, aux, [](uint64_t w, uint64_t v) {
    return BitLength(w ^ v);
  });
}

bool PastryQosSatisfied(const SelectionInput& input,
                        const std::vector<uint64_t>& aux) {
  const int bits = input.bits;
  return QosSatisfied(input, aux, [bits](uint64_t w, uint64_t v) {
    return bits - CommonPrefixLength(w, v, bits);
  });
}

bool ChordQosSatisfied(const SelectionInput& input,
                       const std::vector<uint64_t>& aux) {
  IdSpace space(input.bits);
  const uint64_t self = input.self_id;
  const int bits = input.bits;
  return QosSatisfied(input, aux, [&space, self, bits](uint64_t w, uint64_t v) {
    const uint64_t sv = space.ClockwiseDistance(self, v);
    const uint64_t sw = space.ClockwiseDistance(self, w);
    if (sw > sv) return bits;
    return BitLength(sv - sw);
  });
}

bool KademliaQosSatisfied(const SelectionInput& input,
                          const std::vector<uint64_t>& aux) {
  return QosSatisfied(input, aux, [](uint64_t w, uint64_t v) {
    return BitLength(w ^ v);
  });
}

}  // namespace peercache::auxsel
