#ifndef PEERCACHE_AUXSEL_PASTRY_DP_H_
#define PEERCACHE_AUXSEL_PASTRY_DP_H_

#include "auxsel/selection_types.h"
#include "common/status.h"

namespace peercache::auxsel {

/// Exact dynamic program over the id trie for Pastry auxiliary-neighbor
/// selection (paper Sec. IV-A). At every trie vertex it tabulates the
/// optimal cost and pointer set for every budget 0..k, enumerating all
/// budget splits between the two children (paper Eq. 3). Runs in O(n·k²)
/// time on the path-compressed trie (the paper quotes O(n·k²·b) on the
/// uncompressed trie).
///
/// This is the reference implementation: the greedy selector
/// (pastry_greedy.h) must match its cost exactly, and tests enforce that.
Result<Selection> SelectPastryDp(const SelectionInput& input);

/// QoS-constrained variant (paper Sec. IV-D): additionally guarantees that
/// every peer with delay_bound x has a neighbor within hop estimate x, by
/// forbidding zero-pointer allocations in the constrained subtrees. Returns
/// StatusCode::kInfeasible when no subset of size <= k can satisfy all
/// bounds.
Result<Selection> SelectPastryDpQos(const SelectionInput& input);

}  // namespace peercache::auxsel

#endif  // PEERCACHE_AUXSEL_PASTRY_DP_H_
