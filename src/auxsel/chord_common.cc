#include "auxsel/chord_common.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "common/bits.h"
#include "common/ring_id.h"

namespace peercache::auxsel {

int ChordInstance::Hop(int j, int m) const {
  assert(j >= 0 && j <= m && m <= n);
  if (j == 0) return BitLength(ids[static_cast<size_t>(m)]);
  return BitLength(ids[static_cast<size_t>(m)] - ids[static_cast<size_t>(j)]);
}

double ChordInstance::SlowS(int j, int m) const {
  assert(j >= 1 && j <= m && m <= n);
  double total = 0;
  const int nc = next_core[static_cast<size_t>(j)];
  for (int l = j + 1; l <= m; ++l) {
    int d = (l < nc) ? Hop(j, l) : core_serve[static_cast<size_t>(l)];
    total += freq[static_cast<size_t>(l)] * d;
  }
  return total;
}

Result<ChordInstance> BuildChordInstance(const SelectionInput& input) {
  if (Status s = ValidateInput(input); !s.ok()) return s;
  IdSpace space(input.bits);

  // Merge peers and cores into successor records keyed by shifted id.
  struct Rec {
    uint64_t orig;
    double freq = 0;
    int delay_bound = -1;
    bool is_core = false;
  };
  std::unordered_map<uint64_t, Rec> by_shifted;
  by_shifted.reserve(input.peers.size() * 2);
  for (const PeerFreq& p : input.peers) {
    uint64_t sid = space.ClockwiseDistance(input.self_id, p.id);
    by_shifted.emplace(sid, Rec{p.id, p.frequency, p.delay_bound, false});
  }
  for (uint64_t c : input.core_ids) {
    if (c == input.self_id) continue;
    uint64_t sid = space.ClockwiseDistance(input.self_id, c);
    auto [it, inserted] = by_shifted.emplace(sid, Rec{c, 0.0, -1, true});
    if (!inserted) it->second.is_core = true;
  }

  ChordInstance inst;
  inst.bits = input.bits;
  inst.n = static_cast<int>(by_shifted.size());
  const size_t sz = static_cast<size_t>(inst.n) + 1;
  inst.ids.assign(sz, 0);
  inst.orig_id.assign(sz, 0);
  inst.freq.assign(sz, 0);
  inst.delay_bound.assign(sz, -1);
  inst.is_core.assign(sz, false);

  std::vector<uint64_t> order;
  order.reserve(by_shifted.size());
  for (const auto& [sid, rec] : by_shifted) order.push_back(sid);
  std::sort(order.begin(), order.end());

  for (int l = 1; l <= inst.n; ++l) {
    const Rec& rec = by_shifted.at(order[static_cast<size_t>(l - 1)]);
    inst.ids[static_cast<size_t>(l)] = order[static_cast<size_t>(l - 1)];
    inst.orig_id[static_cast<size_t>(l)] = rec.orig;
    inst.freq[static_cast<size_t>(l)] = rec.freq;
    inst.delay_bound[static_cast<size_t>(l)] = rec.delay_bound;
    inst.is_core[static_cast<size_t>(l)] = rec.is_core;
  }

  // Prefix sums and core-service tables.
  inst.F.assign(sz, 0);
  inst.core_serve.assign(sz, 0);
  inst.B.assign(sz, 0);
  inst.next_core.assign(sz + 1, inst.n + 1);
  int last_core = 0;  // 0 = none yet
  for (int l = 1; l <= inst.n; ++l) {
    const size_t ul = static_cast<size_t>(l);
    inst.F[ul] = inst.F[ul - 1] + inst.freq[ul];
    if (inst.is_core[ul]) last_core = l;
    inst.core_serve[ul] =
        (last_core == 0) ? inst.bits : inst.Hop(last_core, l);
    inst.B[ul] = inst.B[ul - 1] + inst.freq[ul] * inst.core_serve[ul];
    if (!inst.is_core[ul]) inst.candidates.push_back(l);
  }
  for (int j = inst.n - 1; j >= 0; --j) {
    const size_t uj = static_cast<size_t>(j);
    inst.next_core[uj] =
        inst.is_core[uj + 1] ? j + 1 : inst.next_core[uj + 1];
  }
  return inst;
}

Selection MakeChordSelection(const SelectionInput& input,
                             const ChordInstance& inst,
                             const std::vector<int>& chosen_indices) {
  Selection sel;
  sel.chosen.reserve(chosen_indices.size());
  for (int idx : chosen_indices) {
    sel.chosen.push_back(inst.orig_id[static_cast<size_t>(idx)]);
  }
  std::sort(sel.chosen.begin(), sel.chosen.end());
  sel.cost = EvaluateChordCost(input, sel.chosen);
  return sel;
}

}  // namespace peercache::auxsel
