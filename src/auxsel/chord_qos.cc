#include "auxsel/chord_qos.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "auxsel/chord_common.h"

namespace peercache::auxsel {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

Result<Selection> SelectChordDpQos(const SelectionInput& input) {
  auto inst_r = BuildChordInstance(input);
  if (!inst_r.ok()) return inst_r.status();
  const ChordInstance& inst = inst_r.value();
  const int n = inst.n;
  const int k = std::min(input.k, static_cast<int>(inst.candidates.size()));

  // True iff successor l's bound (if any) is met by core neighbors alone.
  auto core_ok = [&inst](int l) {
    const int bound = inst.delay_bound[static_cast<size_t>(l)];
    return bound < 0 || inst.core_serve[static_cast<size_t>(l)] <= bound;
  };
  // True iff l's bound is met when j <= l is its nearest auxiliary pointer.
  auto served_ok = [&inst, &core_ok](int j, int l) {
    if (core_ok(l)) return true;
    return inst.Hop(j, l) <= inst.delay_bound[static_cast<size_t>(l)];
  };

  // C_0: cores only; infeasible from the first violated bound onward.
  std::vector<double> prev(static_cast<size_t>(n) + 1, 0.0);
  {
    bool feasible = true;
    for (int m = 1; m <= n; ++m) {
      feasible = feasible && core_ok(m);
      prev[static_cast<size_t>(m)] =
          feasible ? inst.B[static_cast<size_t>(m)] : kInf;
    }
  }

  std::vector<double> cur(static_cast<size_t>(n) + 1, 0.0);
  std::vector<std::vector<int>> choice(
      static_cast<size_t>(k) + 1,
      std::vector<int>(static_cast<size_t>(n) + 1, 0));

  for (int i = 1; i <= k; ++i) {
    cur = prev;
    auto& row = choice[static_cast<size_t>(i)];
    for (int j : inst.candidates) {
      const double base = prev[static_cast<size_t>(j - 1)];
      if (base == kInf) continue;
      const int nc = inst.next_core[static_cast<size_t>(j)];
      double acc = 0;
      for (int m = j; m <= n; ++m) {
        if (m > j) {
          if (!served_ok(j, m)) break;  // j cannot be the last pointer here
          const size_t um = static_cast<size_t>(m);
          int d = (m < nc) ? inst.Hop(j, m) : inst.core_serve[um];
          acc += inst.freq[um] * d;
        }
        if (base + acc < cur[static_cast<size_t>(m)]) {
          cur[static_cast<size_t>(m)] = base + acc;
          row[static_cast<size_t>(m)] = j;
        }
      }
    }
    prev = cur;
  }

  if (prev[static_cast<size_t>(n)] == kInf) {
    return Status::Infeasible("delay bounds cannot be met with k pointers");
  }

  std::vector<int> chosen;
  int m = n;
  for (int i = k; i >= 1 && m >= 1;) {
    int j = choice[static_cast<size_t>(i)][static_cast<size_t>(m)];
    if (j == 0) {
      --i;
      continue;
    }
    chosen.push_back(j);
    m = j - 1;
    --i;
  }
  return MakeChordSelection(input, inst, chosen);
}

}  // namespace peercache::auxsel
