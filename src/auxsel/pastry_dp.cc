#include "auxsel/pastry_dp.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <unordered_set>
#include <vector>

#include "auxsel/pastry_trie_builder.h"
#include "trie/binary_trie.h"

namespace peercache::auxsel {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Per-vertex DP table: cost[j] is the optimal edge-penalty cost within the
/// subtree using exactly j auxiliary pointers (j <= candidate count), with
/// sets[j] the witnessing pointer ids. Costs exclude the vertex's own
/// incoming edge; parents add it via WithEdge.
struct Table {
  std::vector<double> cost;
  std::vector<std::vector<uint64_t>> sets;
};

class PastryDpSolver {
 public:
  PastryDpSolver(const trie::BinaryTrie& trie, int k,
                 const std::vector<int>& marked)
      : trie_(trie), k_(k), marked_(marked.begin(), marked.end()) {}

  /// Solves the subtree rooted at v. Recursion depth is bounded by the
  /// number of bits (compressed-trie path length), so plain recursion is
  /// safe.
  Table Solve(int v) {
    if (trie_.IsLeaf(v)) return SolveLeaf(v);
    const int c0 = trie_.Child(v, 0);
    const int c1 = trie_.Child(v, 1);
    if (c0 == trie::BinaryTrie::kNil || c1 == trie::BinaryTrie::kNil) {
      // Only the root can have a single child.
      int c = (c0 != trie::BinaryTrie::kNil) ? c0 : c1;
      assert(c != trie::BinaryTrie::kNil);
      Table ct = Solve(c);
      return ApplyEdge(c, std::move(ct));
    }
    Table t0 = ApplyEdge(c0, Solve(c0));
    Table t1 = ApplyEdge(c1, Solve(c1));
    const int cap0 = static_cast<int>(t0.cost.size()) - 1;
    const int cap1 = static_cast<int>(t1.cost.size()) - 1;
    const int jmax = std::min(k_, cap0 + cap1);
    Table out;
    out.cost.assign(static_cast<size_t>(jmax) + 1, kInf);
    out.sets.resize(static_cast<size_t>(jmax) + 1);
    for (int j = 0; j <= jmax; ++j) {
      int best_i = -1;
      double best = kInf;
      const int ilo = std::max(0, j - cap1);
      const int ihi = std::min(j, cap0);
      for (int i = ilo; i <= ihi; ++i) {
        double c = t0.cost[i] + t1.cost[j - i];
        if (c < best) {
          best = c;
          best_i = i;
        }
      }
      out.cost[static_cast<size_t>(j)] = best;
      if (best_i >= 0 && best < kInf) {
        auto& set = out.sets[static_cast<size_t>(j)];
        set = t0.sets[static_cast<size_t>(best_i)];
        const auto& other = t1.sets[static_cast<size_t>(j - best_i)];
        set.insert(set.end(), other.begin(), other.end());
      }
    }
    return out;
  }

  /// Adds child c's incoming-edge penalty (paper Eq. 3's indicator term) and
  /// the QoS infeasibility mark to its table, producing the contribution as
  /// seen by the parent.
  Table ApplyEdge(int c, Table t) {
    const bool has_neighbor = trie_.SubtreeHasNeighbor(c);
    if (!has_neighbor && !t.cost.empty()) {
      if (marked_.count(c)) {
        t.cost[0] = kInf;  // QoS: this subtree must receive a pointer
      } else {
        t.cost[0] += trie_.EdgeLength(c) * trie_.SubtreeFrequency(c);
      }
    }
    return t;
  }

 private:
  Table SolveLeaf(int v) {
    const trie::LeafInfo& leaf = trie_.LeafAt(v);
    Table t;
    if (leaf.is_core || leaf.preselected) {
      t.cost = {0.0};
      t.sets = {{}};
    } else if (k_ == 0) {
      t.cost = {0.0};
      t.sets = {{}};
    } else {
      t.cost = {0.0, 0.0};
      t.sets = {{}, {leaf.id}};
    }
    return t;
  }

  const trie::BinaryTrie& trie_;
  const int k_;
  std::unordered_set<int> marked_;
};

Result<Selection> SelectPastryDpImpl(const SelectionInput& input,
                                     bool honor_qos) {
  if (Status s = ValidateInput(input); !s.ok()) return s;
  auto trie_r = BuildSelectionTrie(input);
  if (!trie_r.ok()) return trie_r.status();
  const trie::BinaryTrie& trie = trie_r.value();

  Selection sel;
  if (trie.root() == trie::BinaryTrie::kNil) {
    sel.cost = 0.0;
    return sel;
  }

  std::vector<int> marked;
  if (honor_qos) marked = QosConstraintVertices(trie, input);

  PastryDpSolver solver(trie, input.k, marked);
  Table root = solver.Solve(trie.root());
  // The root itself can be a constraint vertex (delay bound >= bits); its
  // "edge" has length 0 but the infeasibility mark still applies.
  root = solver.ApplyEdge(trie.root(), std::move(root));

  int best_j = -1;
  double best = kInf;
  for (size_t j = 0; j < root.cost.size(); ++j) {
    if (root.cost[j] < best) {  // strict: prefer fewer pointers on ties
      best = root.cost[j];
      best_j = static_cast<int>(j);
    }
  }
  if (best_j < 0 || best == kInf) {
    return Status::Infeasible("QoS delay bounds cannot be met with k pointers");
  }
  sel.chosen = root.sets[static_cast<size_t>(best_j)];
  std::sort(sel.chosen.begin(), sel.chosen.end());
  sel.cost = EvaluatePastryCost(input, sel.chosen);
  return sel;
}

}  // namespace

Result<Selection> SelectPastryDp(const SelectionInput& input) {
  return SelectPastryDpImpl(input, /*honor_qos=*/false);
}

Result<Selection> SelectPastryDpQos(const SelectionInput& input) {
  return SelectPastryDpImpl(input, /*honor_qos=*/true);
}

}  // namespace peercache::auxsel
