#include "auxsel/kademlia_fast.h"

#include <algorithm>

#include "auxsel/pastry_greedy.h"

namespace peercache::auxsel {

Result<Selection> SelectKademliaFast(const SelectionInput& input) {
  Result<PastryGainTree> tree = PastryGainTree::FromInput(input);
  if (!tree.ok()) return tree.status();
  Selection sel;
  sel.chosen = tree->SelectAuxiliary();
  std::sort(sel.chosen.begin(), sel.chosen.end());
  // Price the set in the XOR metric; equal to the prefix-metric cost by
  // the bitlen(w ^ v) = b - lcp(w, v) identity, but spelled in the
  // geometry this selector serves.
  sel.cost = EvaluateKademliaCost(input, sel.chosen);
  return sel;
}

}  // namespace peercache::auxsel
