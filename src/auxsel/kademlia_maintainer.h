#ifndef PEERCACHE_AUXSEL_KADEMLIA_MAINTAINER_H_
#define PEERCACHE_AUXSEL_KADEMLIA_MAINTAINER_H_

#include <cstdint>
#include <vector>

#include "auxsel/maintainer.h"
#include "auxsel/pastry_greedy.h"
#include "auxsel/selection_types.h"
#include "common/status.h"

namespace peercache::auxsel {

/// Persistent Kademlia auxiliary maintainer (paper Sec. IV-C applied to
/// the XOR geometry): a `PastryGainTree` kept alive across churn rounds —
/// legitimate because bitlen(w XOR v) = b - lcp(w, v) makes the XOR cost
/// trie-shaped with the exact same gain structure — with every
/// join/leave/frequency delta applied as an O(b·k) root-path recompute
/// instead of rebuilding the trie per round.
///
/// `Reselect()` reads the root gain list (O(k)) and prices the selection
/// as Cost(N ∪ A) = BaseCost − TotalGain, where BaseCost is the
/// core-neighbors-only Eq. 1 cost in prefix-sum form (an O(|vertices|)
/// trie walk), so a no-churn round never pays the O(|V|·(|N|+k))
/// reference evaluation. Cost equality with a fresh `SelectKademliaFast`
/// over `FreshInput()` — and transitively with the independent range DP —
/// is enforced by the engine's periodic audit and the differential tests.
class KademliaAuxMaintainer {
 public:
  KademliaAuxMaintainer(int bits, int k, uint64_t self_id);

  uint64_t self_id() const { return self_id_; }
  int k() const { return k_; }
  int bits() const { return bits_; }

  Status OnPeerJoin(uint64_t id, double frequency);
  Status OnPeerLeave(uint64_t id);
  Status OnFrequencyDelta(uint64_t id, double frequency);
  Result<size_t> SetCores(std::vector<uint64_t> core_ids);

  Result<Selection> Reselect();

  SelectionInput FreshInput() const;
  double total_frequency() const;

  /// Number of peers currently tracked (candidates + cores).
  size_t tracked_peers() const { return tree_.trie().leaf_count(); }

 private:
  /// Cost of serving V with core neighbors only, via the trie prefix-sum
  /// decomposition. O(|vertices|).
  double BaseCost() const;

  int bits_;
  int k_;
  uint64_t self_id_;
  PastryGainTree tree_;
  std::vector<uint64_t> cores_;  ///< Sorted, self excluded.
  bool dirty_ = true;
  Selection cached_;
};

static_assert(Maintainer<KademliaAuxMaintainer>);

}  // namespace peercache::auxsel

#endif  // PEERCACHE_AUXSEL_KADEMLIA_MAINTAINER_H_
