#ifndef PEERCACHE_AUXSEL_PASTRY_QOS_H_
#define PEERCACHE_AUXSEL_PASTRY_QOS_H_

#include "auxsel/selection_types.h"
#include "common/status.h"

namespace peercache::auxsel {

/// QoS-aware greedy selection for Pastry (paper Sec. IV-D), with no
/// asymptotic overhead versus the unconstrained greedy.
///
/// Peers with delay_bound x translate to marked trie subtrees that must
/// contain a neighbor. The algorithm first forces, deepest-marked-subtree
/// first, the best candidate pointer of each unsatisfied marked subtree
/// (updating gain lists incrementally, O(b·k) per forced pointer), then
/// spends the remaining budget on the globally best candidates. Returns
/// kInfeasible when the bounds cannot be met with k pointers.
Result<Selection> SelectPastryGreedyQos(const SelectionInput& input);

}  // namespace peercache::auxsel

#endif  // PEERCACHE_AUXSEL_PASTRY_QOS_H_
