#ifndef PEERCACHE_AUXSEL_CHORD_FAST_H_
#define PEERCACHE_AUXSEL_CHORD_FAST_H_

#include "auxsel/selection_types.h"
#include "common/status.h"

namespace peercache::auxsel {

/// The paper's accelerated Chord selection (Sec. V-B), O(n·(b + k)·log n)
/// time and O(n·b) space.
///
/// Two ingredients, exactly as the paper prescribes:
///
/// 1. *Jump tables.* For every candidate j, p_j(r) is the farthest successor
///    within hop estimate r of j, and W_j(r) the weighted distance of all
///    successors in (j, p_j(r)] (paper Eq. 9). With the core-split of paper
///    Eq. 10 handled through the cores-only prefix cost B, any s(j, m)
///    evaluates in O(1) after O(n·b·log n) preprocessing.
///
/// 2. *Concave DP.* s(j, m) satisfies the concave (inverse) quadrangle
///    inequality — s(j,m') − s(j,m) = Σ_{l∈(m,m']} f_l·serve(j,l) is
///    nonincreasing in j because serve(j,l) is — so every DP layer of
///    recurrence Eq. 7 is a totally monotone row-minimum problem. We solve
///    each layer with divide-and-conquer argmin monotonicity (O(n log n)
///    evaluations), the standard alternative to the SMAWK/[9] machinery the
///    paper cites.
///
/// Cost-equal to SelectChordDp on every input (enforced by property tests).
Result<Selection> SelectChordFast(const SelectionInput& input);

}  // namespace peercache::auxsel

#endif  // PEERCACHE_AUXSEL_CHORD_FAST_H_
