#ifndef PEERCACHE_AUXSEL_CHORD_FAST_H_
#define PEERCACHE_AUXSEL_CHORD_FAST_H_

#include <cstddef>
#include <vector>

#include "auxsel/chord_common.h"
#include "auxsel/selection_types.h"
#include "common/status.h"

namespace peercache::auxsel {

/// The preprocessed state of the paper's accelerated Chord selection
/// (Sec. V-B): the zero-node-frame ChordInstance plus the jump tables
/// p_j(r) / W_j(r) for every candidate. Building it is the O(n·b·log n)
/// part of SelectChordFast; solving the DP on top is O(n·k·log n).
///
/// The plan is exposed (rather than hidden inside SelectChordFast) so an
/// incremental maintainer can keep it alive across churn rounds:
///
///  * frequency-only deltas leave `ids`, `candidates`, `next_core`,
///    `core_serve`, and every jump pointer p_j(r) untouched — those depend
///    only on membership and core flags. `RefreshWeights` rebuilds just the
///    weight planes (freq/F/B and W_j) in O(n·b) without a single binary
///    search, then `Solve` re-runs the DP;
///  * membership or core-set deltas invalidate the ring geometry, so the
///    maintainer rebuilds the plan with `Build`.
class ChordFastPlan {
 public:
  ChordFastPlan() = default;

  /// Builds instance + jump tables from a validated input. O(n·b·log n).
  static Result<ChordFastPlan> Build(const SelectionInput& input);

  /// Reloads frequencies (and delay bounds) from `input` into the existing
  /// geometry, recomputing F, B, and the W_j planes over the stored jump
  /// pointers. Requires the same membership and core flags the plan was
  /// built with; returns InvalidArgument (leaving the plan unusable for
  /// Solve until rebuilt) when the support set or core flags differ.
  /// O(n·(b + log n)).
  Status RefreshWeights(const SelectionInput& input);

  /// Runs the concave-QI layered DP (paper Eq. 7) and reconstructs the
  /// selection. O(n·k·log n). `input` must be the instance this plan
  /// currently reflects.
  Result<Selection> Solve(const SelectionInput& input) const;

  /// s(j, m) of paper Eq. 8/10 in O(1); j must be a candidate, j <= m.
  double S(int j, int m) const;

  const ChordInstance& instance() const { return inst_; }

 private:
  void BuildRow(size_t row, int j);
  void RefreshRow(size_t row, int j);

  ChordInstance inst_;
  size_t stride_ = 0;          ///< bits + 1 (row width of p_/w_).
  std::vector<int> p_;         ///< p_j(r), rows_ × stride_, row-major.
  std::vector<double> w_;      ///< W_j(r), same layout.
  std::vector<int> cand_row_;  ///< successor index -> row, -1 for cores.
};

/// The paper's accelerated Chord selection (Sec. V-B), O(n·(b + k)·log n)
/// time and O(n·b) space.
///
/// Two ingredients, exactly as the paper prescribes:
///
/// 1. *Jump tables.* For every candidate j, p_j(r) is the farthest successor
///    within hop estimate r of j, and W_j(r) the weighted distance of all
///    successors in (j, p_j(r)] (paper Eq. 9). With the core-split of paper
///    Eq. 10 handled through the cores-only prefix cost B, any s(j, m)
///    evaluates in O(1) after O(n·b·log n) preprocessing.
///
/// 2. *Concave DP.* s(j, m) satisfies the concave (inverse) quadrangle
///    inequality — s(j,m') − s(j,m) = Σ_{l∈(m,m']} f_l·serve(j,l) is
///    nonincreasing in j because serve(j,l) is — so every DP layer of
///    recurrence Eq. 7 is a totally monotone row-minimum problem. We solve
///    each layer with divide-and-conquer argmin monotonicity (O(n log n)
///    evaluations), the standard alternative to the SMAWK/[9] machinery the
///    paper cites.
///
/// Cost-equal to SelectChordDp on every input (enforced by property tests).
/// Equivalent to ChordFastPlan::Build + Solve.
Result<Selection> SelectChordFast(const SelectionInput& input);

}  // namespace peercache::auxsel

#endif  // PEERCACHE_AUXSEL_CHORD_FAST_H_
