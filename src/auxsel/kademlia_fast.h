#ifndef PEERCACHE_AUXSEL_KADEMLIA_FAST_H_
#define PEERCACHE_AUXSEL_KADEMLIA_FAST_H_

#include "auxsel/selection_types.h"
#include "common/status.h"

namespace peercache::auxsel {

/// Fast O(n·k) Kademlia auxiliary selector under the XOR distance estimate
/// d_wv = bitlen(w XOR v).
///
/// The identity bitlen(w XOR v) = b - lcp(w, v) makes the XOR estimate
/// trie-shaped: two ids at XOR distance 2^j .. 2^{j+1}-1 disagree first at
/// bit j, i.e. they branch at trie depth b-1-j. The Kademlia cost is
/// therefore the Pastry prefix cost specialized to one-bit digits (b = 1
/// in Pastry's 2^b-ary digit terminology), and the gain-tree machinery of
/// paper Secs. IV-B/IV-C — nested optimal pointer sets, diminishing
/// marginal gains, O(b·k) incremental updates — applies unchanged. This
/// selector reuses the PastryGainTree and is held cost-equal to the
/// independent range DP (kademlia_dp.h) by the differential tests.
Result<Selection> SelectKademliaFast(const SelectionInput& input);

}  // namespace peercache::auxsel

#endif  // PEERCACHE_AUXSEL_KADEMLIA_FAST_H_
