#ifndef PEERCACHE_AUXSEL_PASTRY_TRIE_BUILDER_H_
#define PEERCACHE_AUXSEL_PASTRY_TRIE_BUILDER_H_

#include "auxsel/selection_types.h"
#include "common/status.h"
#include "trie/binary_trie.h"

namespace peercache::auxsel {

/// Builds the selection trie for a SelectionInput: every peer of V becomes a
/// leaf with its frequency; every core neighbor becomes (or is flagged on) a
/// leaf with is_core set. Core ids equal to self_id are ignored. The input
/// must already have passed ValidateInput.
Result<trie::BinaryTrie> BuildSelectionTrie(const SelectionInput& input);

/// Maps each QoS-constrained peer to its constraint vertex: the shallowest
/// trie vertex on the peer's root path whose depth >= bits - delay_bound
/// (paper Sec. IV-D: "the subtree of height x that contains the leaf must
/// have a neighbor"). Returns the distinct constraint vertex handles; a
/// bound >= bits constrains nothing (any neighbor anywhere satisfies it) and
/// maps to the root.
std::vector<int> QosConstraintVertices(const trie::BinaryTrie& trie,
                                       const SelectionInput& input);

}  // namespace peercache::auxsel

#endif  // PEERCACHE_AUXSEL_PASTRY_TRIE_BUILDER_H_
