#ifndef PEERCACHE_AUXSEL_OBLIVIOUS_H_
#define PEERCACHE_AUXSEL_OBLIVIOUS_H_

#include "auxsel/selection_types.h"
#include "common/random.h"
#include "common/status.h"

namespace peercache::auxsel {

/// The paper's frequency-oblivious baseline for Chord (Sec. VI-A,
/// "Performance Metric"): with k = r·log n, pick r auxiliary neighbors
/// uniformly at random from each nonempty distance slice (2^i, 2^{i+1}]
/// around the selecting node. Implemented as a round-robin draw of one
/// random candidate per nonempty slice until k pointers are placed, which
/// generalizes the prescription to arbitrary k.
Result<Selection> SelectChordOblivious(const SelectionInput& input, Rng& rng);

/// The frequency-oblivious baseline for Pastry (Sec. VI-A): r random
/// auxiliary neighbors per prefix-match length, same round-robin
/// generalization; slices group candidates by lcp(self, candidate).
Result<Selection> SelectPastryOblivious(const SelectionInput& input, Rng& rng);

/// The frequency-oblivious baseline for Kademlia: r random auxiliary
/// neighbors per XOR-distance order of magnitude. The slices group
/// candidates by bitlen(self XOR candidate), which coincides with the
/// Pastry prefix slices (bitlen(u XOR v) = b - lcp(u, v)) — one random
/// draw per nonempty k-bucket-shaped class, round-robin until k picks.
Result<Selection> SelectKademliaOblivious(const SelectionInput& input,
                                          Rng& rng);

}  // namespace peercache::auxsel

#endif  // PEERCACHE_AUXSEL_OBLIVIOUS_H_
