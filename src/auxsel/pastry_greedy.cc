#include "auxsel/pastry_greedy.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "auxsel/pastry_trie_builder.h"

namespace peercache::auxsel {

namespace {
constexpr int kNil = trie::BinaryTrie::kNil;
}  // namespace

PastryGainTree::PastryGainTree(int bits, int k) : trie_(bits), k_(k) {
  assert(k >= 0);
}

Result<PastryGainTree> PastryGainTree::FromInput(const SelectionInput& input) {
  if (Status s = ValidateInput(input); !s.ok()) return s;
  PastryGainTree tree(input.bits, input.k);
  for (const PeerFreq& p : input.peers) {
    if (Status s = tree.AddPeer(p.id, p.frequency); !s.ok()) return s;
  }
  for (uint64_t c : input.core_ids) {
    if (c == input.self_id) continue;
    Status s = tree.trie_.Contains(c) ? tree.SetCore(c, true)
                                      : tree.AddPeer(c, 0.0, /*is_core=*/true);
    if (!s.ok()) return s;
  }
  return tree;
}

void PastryGainTree::EnsureCapacity() {
  if (lists_.size() < static_cast<size_t>(trie_.vertex_capacity())) {
    lists_.resize(static_cast<size_t>(trie_.vertex_capacity()));
  }
}

Status PastryGainTree::AddPeer(uint64_t id, double frequency, bool is_core) {
  trie::LeafInfo leaf;
  leaf.id = id;
  leaf.frequency = frequency;
  leaf.is_core = is_core;
  auto r = trie_.Insert(leaf);
  if (!r.ok()) return r.status();
  EnsureCapacity();
  // Inserting may have split an edge: the displaced sibling was re-parented
  // and its incoming-edge length shrank, so its cached list (which embeds
  // its own-edge credit) is stale. Refresh both children of the new leaf's
  // parent before walking up.
  RefreshChildrenThenPath(trie_.Parent(r.value()), r.value());
  return Status::Ok();
}

Status PastryGainTree::RemovePeer(uint64_t id) {
  auto r = trie_.Remove(id);
  if (!r.ok()) return r.status();
  // Removal splices the old parent out: the surviving sibling hangs off the
  // returned ancestor with a longer incoming edge. Refresh its list first.
  if (r.value() != kNil) RefreshChildrenThenPath(r.value(), kNil);
  return Status::Ok();
}

void PastryGainTree::RefreshChildrenThenPath(int parent, int fallback_leaf) {
  if (parent == kNil) {
    if (fallback_leaf != kNil) RecomputePath(fallback_leaf);
    return;
  }
  for (int b = 0; b < 2; ++b) {
    int c = trie_.Child(parent, b);
    if (c != kNil) RecomputeVertex(c);
  }
  RecomputePath(parent);
}

Status PastryGainTree::UpdateFrequency(uint64_t id, double frequency) {
  auto r = trie_.UpdateFrequency(id, frequency);
  if (!r.ok()) return r.status();
  RecomputePath(r.value());
  return Status::Ok();
}

Status PastryGainTree::SetCore(uint64_t id, bool is_core) {
  auto r = trie_.SetCore(id, is_core);
  if (!r.ok()) return r.status();
  RecomputePath(r.value());
  return Status::Ok();
}

Status PastryGainTree::SetPreselected(uint64_t id, bool preselected) {
  auto r = trie_.SetPreselected(id, preselected);
  if (!r.ok()) return r.status();
  RecomputePath(r.value());
  return Status::Ok();
}

void PastryGainTree::RecomputePath(int v) {
  while (v != kNil) {
    RecomputeVertex(v);
    v = trie_.Parent(v);
  }
}

void PastryGainTree::RecomputeVertex(int v) {
  std::vector<GainEntry>& out = lists_[static_cast<size_t>(v)];
  out.clear();
  if (k_ == 0) return;

  if (trie_.IsLeaf(v)) {
    const trie::LeafInfo& leaf = trie_.LeafAt(v);
    if (!leaf.is_core && !leaf.preselected) {
      // A candidate leaf's first (only) pointer clears its own incoming
      // edge's penalty; there is nothing below a leaf.
      out.push_back(GainEntry{
          static_cast<double>(trie_.EdgeLength(v)) * leaf.frequency, leaf.id});
    }
    return;
  }

  const int c0 = trie_.Child(v, 0);
  const int c1 = trie_.Child(v, 1);
  static const std::vector<GainEntry> kEmpty;
  const std::vector<GainEntry>& a =
      (c0 != kNil) ? lists_[static_cast<size_t>(c0)] : kEmpty;
  const std::vector<GainEntry>& b =
      (c1 != kNil) ? lists_[static_cast<size_t>(c1)] : kEmpty;

  // Merge the two nonincreasing sequences, keeping at most k entries.
  size_t i = 0, j = 0;
  out.reserve(std::min(a.size() + b.size(), static_cast<size_t>(k_)));
  while (out.size() < static_cast<size_t>(k_) &&
         (i < a.size() || j < b.size())) {
    if (j >= b.size() || (i < a.size() && a[i].gain >= b[j].gain)) {
      out.push_back(a[i++]);
    } else {
      out.push_back(b[j++]);
    }
  }

  // Credit this vertex's incoming-edge penalty to the first pointer placed
  // in the subtree, if no core/preselected neighbor already clears it.
  if (!out.empty() && !trie_.SubtreeHasNeighbor(v)) {
    out[0].gain +=
        static_cast<double>(trie_.EdgeLength(v)) * trie_.SubtreeFrequency(v);
  }
}

void PastryGainTree::RecomputeAll() {
  EnsureCapacity();
  if (trie_.root() == kNil) return;
  // Post-order via explicit stack with visit flags.
  std::vector<std::pair<int, bool>> stack{{trie_.root(), false}};
  while (!stack.empty()) {
    auto [v, visited] = stack.back();
    stack.pop_back();
    if (visited) {
      RecomputeVertex(v);
      continue;
    }
    stack.push_back({v, true});
    for (int b = 0; b < 2; ++b) {
      int c = trie_.Child(v, b);
      if (c != kNil) stack.push_back({c, false});
    }
  }
}

std::vector<uint64_t> PastryGainTree::SelectAuxiliary() const {
  std::vector<uint64_t> out;
  if (trie_.root() == kNil) return out;
  const auto& root_list = lists_[static_cast<size_t>(trie_.root())];
  out.reserve(root_list.size());
  for (const GainEntry& e : root_list) out.push_back(e.id);
  return out;
}

double PastryGainTree::TotalGain() const {
  if (trie_.root() == kNil) return 0.0;
  double total = 0.0;
  for (const GainEntry& e : lists_[static_cast<size_t>(trie_.root())]) {
    total += e.gain;
  }
  return total;
}

Status PastryGainTree::CheckConsistency() {
  std::vector<std::vector<GainEntry>> cached = lists_;
  RecomputeAll();
  if (trie_.root() == kNil) return Status::Ok();
  // Compare reachable vertices only; freed slots may hold stale data.
  std::vector<int> stack{trie_.root()};
  while (!stack.empty()) {
    int v = stack.back();
    stack.pop_back();
    const auto& fresh = lists_[static_cast<size_t>(v)];
    const auto& old = cached[static_cast<size_t>(v)];
    if (fresh.size() != old.size()) {
      return Status::Internal("stale gain list size at vertex " +
                              std::to_string(v));
    }
    for (size_t i = 0; i < fresh.size(); ++i) {
      if (std::abs(fresh[i].gain - old[i].gain) >
          1e-9 * (1.0 + std::abs(fresh[i].gain))) {
        return Status::Internal("stale gain value at vertex " +
                                std::to_string(v));
      }
    }
    for (int b = 0; b < 2; ++b) {
      int c = trie_.Child(v, b);
      if (c != kNil) stack.push_back(c);
    }
  }
  return Status::Ok();
}

Result<Selection> SelectPastryGreedy(const SelectionInput& input) {
  auto tree_r = PastryGainTree::FromInput(input);
  if (!tree_r.ok()) return tree_r.status();
  Selection sel;
  sel.chosen = tree_r.value().SelectAuxiliary();
  std::sort(sel.chosen.begin(), sel.chosen.end());
  sel.cost = EvaluatePastryCost(input, sel.chosen);
  return sel;
}

}  // namespace peercache::auxsel
