#include "auxsel/oblivious.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "common/bits.h"
#include "common/ring_id.h"

namespace peercache::auxsel {

namespace {

/// Shared skeleton: buckets candidates with slice_of, shuffles each bucket,
/// then draws round-robin (one per nonempty slice per round) until k picks.
std::vector<uint64_t> RoundRobinPick(const SelectionInput& input,
                                     const std::vector<int>& slice_of_peer,
                                     Rng& rng) {
  std::unordered_set<uint64_t> cores(input.core_ids.begin(),
                                     input.core_ids.end());
  std::vector<std::vector<uint64_t>> buckets(
      static_cast<size_t>(input.bits) + 1);
  for (size_t i = 0; i < input.peers.size(); ++i) {
    const PeerFreq& p = input.peers[i];
    if (cores.count(p.id)) continue;  // cores are already neighbors
    buckets[static_cast<size_t>(slice_of_peer[i])].push_back(p.id);
  }
  for (auto& b : buckets) rng.Shuffle(b);

  std::vector<uint64_t> chosen;
  chosen.reserve(static_cast<size_t>(input.k));
  size_t round = 0;
  bool progressed = true;
  while (static_cast<int>(chosen.size()) < input.k && progressed) {
    progressed = false;
    for (auto& b : buckets) {
      if (static_cast<int>(chosen.size()) >= input.k) break;
      if (round < b.size()) {
        chosen.push_back(b[round]);
        progressed = true;
      }
    }
    ++round;
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

}  // namespace

Result<Selection> SelectChordOblivious(const SelectionInput& input, Rng& rng) {
  if (Status s = ValidateInput(input); !s.ok()) return s;
  IdSpace space(input.bits);
  std::vector<int> slice(input.peers.size(), 0);
  for (size_t i = 0; i < input.peers.size(); ++i) {
    uint64_t d = space.ClockwiseDistance(input.self_id, input.peers[i].id);
    // d >= 1 (self is excluded); slice i holds distances in (2^i, 2^{i+1}].
    slice[i] = BitLength(d) - 1;
  }
  Selection sel;
  sel.chosen = RoundRobinPick(input, slice, rng);
  sel.cost = EvaluateChordCost(input, sel.chosen);
  return sel;
}

Result<Selection> SelectPastryOblivious(const SelectionInput& input,
                                        Rng& rng) {
  if (Status s = ValidateInput(input); !s.ok()) return s;
  std::vector<int> slice(input.peers.size(), 0);
  for (size_t i = 0; i < input.peers.size(); ++i) {
    slice[i] =
        CommonPrefixLength(input.self_id, input.peers[i].id, input.bits);
  }
  Selection sel;
  sel.chosen = RoundRobinPick(input, slice, rng);
  sel.cost = EvaluatePastryCost(input, sel.chosen);
  return sel;
}

Result<Selection> SelectKademliaOblivious(const SelectionInput& input,
                                          Rng& rng) {
  if (Status s = ValidateInput(input); !s.ok()) return s;
  std::vector<int> slice(input.peers.size(), 0);
  for (size_t i = 0; i < input.peers.size(); ++i) {
    // XOR-distance order of magnitude; peers exclude self, so the XOR is
    // nonzero and the slice lands in [0, bits - 1].
    slice[i] = BitLength(input.self_id ^ input.peers[i].id) - 1;
  }
  Selection sel;
  sel.chosen = RoundRobinPick(input, slice, rng);
  sel.cost = EvaluateKademliaCost(input, sel.chosen);
  return sel;
}

}  // namespace peercache::auxsel
