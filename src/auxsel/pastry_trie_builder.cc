#include "auxsel/pastry_trie_builder.h"

#include <algorithm>
#include <unordered_set>

namespace peercache::auxsel {

Result<trie::BinaryTrie> BuildSelectionTrie(const SelectionInput& input) {
  trie::BinaryTrie t(input.bits);
  for (const PeerFreq& p : input.peers) {
    trie::LeafInfo leaf;
    leaf.id = p.id;
    leaf.frequency = p.frequency;
    leaf.delay_bound = p.delay_bound;
    auto r = t.Insert(leaf);
    if (!r.ok()) return r.status();
  }
  for (uint64_t c : input.core_ids) {
    if (c == input.self_id) continue;
    if (t.Contains(c)) {
      auto r = t.SetCore(c, true);
      if (!r.ok()) return r.status();
    } else {
      trie::LeafInfo leaf;
      leaf.id = c;
      leaf.frequency = 0.0;
      leaf.is_core = true;
      auto r = t.Insert(leaf);
      if (!r.ok()) return r.status();
    }
  }
  return t;
}

std::vector<int> QosConstraintVertices(const trie::BinaryTrie& trie,
                                       const SelectionInput& input) {
  std::unordered_set<int> marked;
  for (const PeerFreq& p : input.peers) {
    if (p.delay_bound < 0) continue;
    // The distance estimate is capped at `bits`, so a bound of `bits` or
    // more is satisfied vacuously (even by an empty neighbor set).
    if (p.delay_bound >= trie.bits()) continue;
    int leaf = trie.FindLeaf(p.id);
    if (leaf == trie::BinaryTrie::kNil) continue;
    const int min_depth = trie.bits() - p.delay_bound;
    int v = leaf;
    // Climb to the shallowest vertex still deep enough; a nonpositive
    // min_depth climbs all the way to the root.
    while (trie.Parent(v) != trie::BinaryTrie::kNil &&
           trie.Depth(trie.Parent(v)) >= min_depth) {
      v = trie.Parent(v);
    }
    marked.insert(v);
  }
  std::vector<int> out(marked.begin(), marked.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace peercache::auxsel
