#include "auxsel/chord_fast.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <vector>

#include "auxsel/chord_common.h"
#include "common/bits.h"
#include "common/ring_id.h"

namespace peercache::auxsel {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// One DP layer: row_min[m] = min over candidate positions p in
/// [0, #cands<=m) of prev[cand[p]-1] + S(cand[p], m), exploiting argmin
/// monotonicity (total monotonicity from the concave QI of s).
class LayerSolver {
 public:
  LayerSolver(const ChordFastPlan& plan, const std::vector<double>& prev,
              std::vector<double>& row_min, std::vector<int>& row_arg)
      : inst_(plan.instance()),
        plan_(plan),
        prev_(prev),
        row_min_(row_min),
        row_arg_(row_arg) {}

  void Run() {
    if (inst_.n >= 1) {
      Solve(1, inst_.n, 0, static_cast<int>(inst_.candidates.size()) - 1);
    }
  }

 private:
  void Solve(int mlo, int mhi, int plo, int phi) {
    if (mlo > mhi) return;
    const int mid = mlo + (mhi - mlo) / 2;
    // Eligible candidate positions for row mid: cand[p] <= mid.
    const auto& cand = inst_.candidates;
    int ub = static_cast<int>(
        std::upper_bound(cand.begin(), cand.end(), mid) - cand.begin());
    const int hi = std::min(phi, ub - 1);
    double best = kInf;
    int best_p = -1;
    for (int p = plo; p <= hi; ++p) {
      const int j = cand[static_cast<size_t>(p)];
      const double val =
          prev_[static_cast<size_t>(j - 1)] + plan_.S(j, mid);
      if (val < best) {
        best = val;
        best_p = p;
      }
    }
    row_min_[static_cast<size_t>(mid)] = best;
    row_arg_[static_cast<size_t>(mid)] = best_p < 0 ? 0 : cand[static_cast<size_t>(best_p)];
    const int left_hi = best_p < 0 ? phi : best_p;
    const int right_lo = best_p < 0 ? plo : best_p;
    Solve(mlo, mid - 1, plo, left_hi);
    Solve(mid + 1, mhi, right_lo, phi);
  }

  const ChordInstance& inst_;
  const ChordFastPlan& plan_;
  const std::vector<double>& prev_;
  std::vector<double>& row_min_;
  std::vector<int>& row_arg_;
};

}  // namespace

double ChordFastPlan::S(int j, int m) const {
  assert(j >= 1 && j <= m);
  const int nc = inst_.next_core[static_cast<size_t>(j)];
  const int limit = std::min(m, nc - 1);
  double s = 0;
  if (limit > j) {
    const int row = cand_row_[static_cast<size_t>(j)];
    assert(row >= 0);
    const size_t base = static_cast<size_t>(row) * stride_;
    const int dl = inst_.Hop(j, limit);
    assert(dl >= 1);
    const int pprev = p_[base + static_cast<size_t>(dl - 1)];
    s += w_[base + static_cast<size_t>(dl - 1)] +
         dl * (inst_.F[static_cast<size_t>(limit)] -
               inst_.F[static_cast<size_t>(pprev)]);
  }
  if (m >= nc) {
    s += inst_.B[static_cast<size_t>(m)] - inst_.B[static_cast<size_t>(nc - 1)];
  }
  return s;
}

void ChordFastPlan::BuildRow(size_t row, int j) {
  const size_t base = row * stride_;
  const uint64_t idj = inst_.ids[static_cast<size_t>(j)];
  p_[base] = j;  // p_j(0): only j itself is within hop 0
  w_[base] = 0.0;
  int prev_p = j;
  for (int r = 1; r <= inst_.bits; ++r) {
    // Largest successor index l with ids[l] - idj <= 2^r - 1; ids are
    // ascending so binary search over [prev_p, n].
    const uint64_t limit_id = idj + LowBitMask(r);  // may wrap; see below
    int l;
    if (limit_id < idj) {
      // 2^r - 1 overflows past the top of the id space: everything fits.
      l = inst_.n;
    } else {
      auto first = inst_.ids.begin() + prev_p;
      auto last = inst_.ids.begin() + inst_.n + 1;
      l = static_cast<int>(std::upper_bound(first, last, limit_id) -
                           inst_.ids.begin()) -
          1;
    }
    p_[base + static_cast<size_t>(r)] = l;
    w_[base + static_cast<size_t>(r)] =
        w_[base + static_cast<size_t>(r - 1)] +
        r * (inst_.F[static_cast<size_t>(l)] -
             inst_.F[static_cast<size_t>(prev_p)]);
    prev_p = l;
  }
}

void ChordFastPlan::RefreshRow(size_t row, int j) {
  // Same recurrence as BuildRow, but over the stored jump pointers — no
  // binary searches.
  const size_t base = row * stride_;
  w_[base] = 0.0;
  int prev_p = j;
  for (int r = 1; r <= inst_.bits; ++r) {
    const int l = p_[base + static_cast<size_t>(r)];
    w_[base + static_cast<size_t>(r)] =
        w_[base + static_cast<size_t>(r - 1)] +
        r * (inst_.F[static_cast<size_t>(l)] -
             inst_.F[static_cast<size_t>(prev_p)]);
    prev_p = l;
  }
}

Result<ChordFastPlan> ChordFastPlan::Build(const SelectionInput& input) {
  auto inst_r = BuildChordInstance(input);
  if (!inst_r.ok()) return inst_r.status();
  ChordFastPlan plan;
  plan.inst_ = std::move(inst_r).value();
  const ChordInstance& inst = plan.inst_;
  plan.stride_ = static_cast<size_t>(inst.bits) + 1;
  const size_t rows = inst.candidates.size();
  plan.p_.assign(rows * plan.stride_, 0);
  plan.w_.assign(rows * plan.stride_, 0.0);
  plan.cand_row_.assign(static_cast<size_t>(inst.n) + 1, -1);
  for (size_t row = 0; row < rows; ++row) {
    const int j = inst.candidates[row];
    plan.cand_row_[static_cast<size_t>(j)] = static_cast<int>(row);
    plan.BuildRow(row, j);
  }
  return plan;
}

Status ChordFastPlan::RefreshWeights(const SelectionInput& input) {
  if (Status s = ValidateInput(input); !s.ok()) return s;
  IdSpace space(input.bits);
  if (input.bits != inst_.bits) {
    return Status::InvalidArgument("plan built for different id space");
  }
  const size_t sz = static_cast<size_t>(inst_.n) + 1;
  std::vector<double> freq(sz, 0.0);
  std::vector<int> delay_bound(sz, -1);
  // Every successor must be re-derivable from the input (same support set,
  // same core flags), otherwise the geometry is stale.
  std::vector<char> touched(sz, 0);
  auto position_of = [&](uint64_t orig) -> int {
    const uint64_t sid = space.ClockwiseDistance(input.self_id, orig);
    auto it = std::lower_bound(inst_.ids.begin() + 1, inst_.ids.end(), sid);
    if (it == inst_.ids.end() || *it != sid) return -1;
    return static_cast<int>(it - inst_.ids.begin());
  };
  for (const PeerFreq& p : input.peers) {
    const int pos = position_of(p.id);
    if (pos < 0) return Status::InvalidArgument("peer not in plan membership");
    freq[static_cast<size_t>(pos)] = p.frequency;
    delay_bound[static_cast<size_t>(pos)] = p.delay_bound;
    touched[static_cast<size_t>(pos)] = 1;
  }
  for (uint64_t c : input.core_ids) {
    if (c == input.self_id) continue;
    const int pos = position_of(c);
    if (pos < 0 || !inst_.is_core[static_cast<size_t>(pos)]) {
      return Status::InvalidArgument("core set differs from plan membership");
    }
    touched[static_cast<size_t>(pos)] = 1;
  }
  for (int l = 1; l <= inst_.n; ++l) {
    const size_t ul = static_cast<size_t>(l);
    if (!touched[ul]) {
      return Status::InvalidArgument("successor absent from refresh input");
    }
    // A successor promoted to / demoted from core keeps the same position
    // but changes candidates/next_core — that is a structural rebuild.
    if (!inst_.is_core[ul] && freq[ul] <= 0.0) {
      return Status::InvalidArgument("candidate lost its frequency");
    }
  }

  inst_.freq = std::move(freq);
  inst_.delay_bound = std::move(delay_bound);
  for (int l = 1; l <= inst_.n; ++l) {
    const size_t ul = static_cast<size_t>(l);
    inst_.F[ul] = inst_.F[ul - 1] + inst_.freq[ul];
    inst_.B[ul] = inst_.B[ul - 1] +
                  inst_.freq[ul] * inst_.core_serve[ul];
  }
  for (size_t row = 0; row < inst_.candidates.size(); ++row) {
    RefreshRow(row, inst_.candidates[row]);
  }
  return Status::Ok();
}

Result<Selection> ChordFastPlan::Solve(const SelectionInput& input) const {
  const ChordInstance& inst = inst_;
  const int n = inst.n;
  const int k = std::min(input.k, static_cast<int>(inst.candidates.size()));

  std::vector<double> prev(inst.B.begin(), inst.B.end());  // C_0 = B
  std::vector<double> row_min(static_cast<size_t>(n) + 1, kInf);
  std::vector<int> row_arg(static_cast<size_t>(n) + 1, 0);
  std::vector<std::vector<int>> choice(
      static_cast<size_t>(k) + 1,
      std::vector<int>(static_cast<size_t>(n) + 1, 0));

  for (int i = 1; i <= k; ++i) {
    LayerSolver(*this, prev, row_min, row_arg).Run();
    auto& row = choice[static_cast<size_t>(i)];
    for (int m = 1; m <= n; ++m) {
      const size_t um = static_cast<size_t>(m);
      if (row_min[um] < prev[um]) {  // strict: prefer fewer pointers on ties
        prev[um] = row_min[um];
        row[um] = row_arg[um];
      }
    }
  }

  std::vector<int> chosen;
  int m = n;
  for (int i = k; i >= 1 && m >= 1;) {
    int j = choice[static_cast<size_t>(i)][static_cast<size_t>(m)];
    if (j == 0) {
      --i;
      continue;
    }
    chosen.push_back(j);
    m = j - 1;
    --i;
  }
  return MakeChordSelection(input, inst, chosen);
}

Result<Selection> SelectChordFast(const SelectionInput& input) {
  auto plan_r = ChordFastPlan::Build(input);
  if (!plan_r.ok()) return plan_r.status();
  return plan_r.value().Solve(input);
}

}  // namespace peercache::auxsel
