#include "auxsel/chord_fast.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <vector>

#include "auxsel/chord_common.h"
#include "common/bits.h"

namespace peercache::auxsel {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Jump tables p_j(r) / W_j(r) for all candidates, flattened row-major.
class JumpTables {
 public:
  explicit JumpTables(const ChordInstance& inst)
      : inst_(inst), stride_(static_cast<size_t>(inst.bits) + 1) {
    const size_t rows = inst.candidates.size();
    p_.assign(rows * stride_, 0);
    w_.assign(rows * stride_, 0.0);
    cand_row_.assign(static_cast<size_t>(inst.n) + 1, -1);
    for (size_t row = 0; row < rows; ++row) {
      const int j = inst.candidates[row];
      cand_row_[static_cast<size_t>(j)] = static_cast<int>(row);
      BuildRow(row, j);
    }
  }

  /// s(j, m) in O(1); j must be a candidate, j <= m.
  double S(int j, int m) const {
    assert(j >= 1 && j <= m);
    const int nc = inst_.next_core[static_cast<size_t>(j)];
    const int limit = std::min(m, nc - 1);
    double s = 0;
    if (limit > j) {
      const int row = cand_row_[static_cast<size_t>(j)];
      assert(row >= 0);
      const size_t base = static_cast<size_t>(row) * stride_;
      const int dl = inst_.Hop(j, limit);
      assert(dl >= 1);
      const int pprev = p_[base + static_cast<size_t>(dl - 1)];
      s += w_[base + static_cast<size_t>(dl - 1)] +
           dl * (inst_.F[static_cast<size_t>(limit)] -
                 inst_.F[static_cast<size_t>(pprev)]);
    }
    if (m >= nc) {
      s += inst_.B[static_cast<size_t>(m)] - inst_.B[static_cast<size_t>(nc - 1)];
    }
    return s;
  }

 private:
  void BuildRow(size_t row, int j) {
    const size_t base = row * stride_;
    const uint64_t idj = inst_.ids[static_cast<size_t>(j)];
    p_[base] = j;  // p_j(0): only j itself is within hop 0
    w_[base] = 0.0;
    int prev_p = j;
    for (int r = 1; r <= inst_.bits; ++r) {
      // Largest successor index l with ids[l] - idj <= 2^r - 1; ids are
      // ascending so binary search over [prev_p, n].
      const uint64_t limit_id = idj + LowBitMask(r);  // may wrap; see below
      int l;
      if (limit_id < idj) {
        // 2^r - 1 overflows past the top of the id space: everything fits.
        l = inst_.n;
      } else {
        auto first = inst_.ids.begin() + prev_p;
        auto last = inst_.ids.begin() + inst_.n + 1;
        l = static_cast<int>(std::upper_bound(first, last, limit_id) -
                             inst_.ids.begin()) -
            1;
      }
      p_[base + static_cast<size_t>(r)] = l;
      w_[base + static_cast<size_t>(r)] =
          w_[base + static_cast<size_t>(r - 1)] +
          r * (inst_.F[static_cast<size_t>(l)] -
               inst_.F[static_cast<size_t>(prev_p)]);
      prev_p = l;
    }
  }

  const ChordInstance& inst_;
  size_t stride_;
  std::vector<int> p_;
  std::vector<double> w_;
  std::vector<int> cand_row_;
};

/// One DP layer: row_min[m] = min over candidate positions p in
/// [0, #cands<=m) of prev[cand[p]-1] + S(cand[p], m), exploiting argmin
/// monotonicity (total monotonicity from the concave QI of s).
class LayerSolver {
 public:
  LayerSolver(const ChordInstance& inst, const JumpTables& jumps,
              const std::vector<double>& prev, std::vector<double>& row_min,
              std::vector<int>& row_arg)
      : inst_(inst),
        jumps_(jumps),
        prev_(prev),
        row_min_(row_min),
        row_arg_(row_arg) {}

  void Run() {
    if (inst_.n >= 1) {
      Solve(1, inst_.n, 0, static_cast<int>(inst_.candidates.size()) - 1);
    }
  }

 private:
  void Solve(int mlo, int mhi, int plo, int phi) {
    if (mlo > mhi) return;
    const int mid = mlo + (mhi - mlo) / 2;
    // Eligible candidate positions for row mid: cand[p] <= mid.
    const auto& cand = inst_.candidates;
    int ub = static_cast<int>(
        std::upper_bound(cand.begin(), cand.end(), mid) - cand.begin());
    const int hi = std::min(phi, ub - 1);
    double best = kInf;
    int best_p = -1;
    for (int p = plo; p <= hi; ++p) {
      const int j = cand[static_cast<size_t>(p)];
      const double val =
          prev_[static_cast<size_t>(j - 1)] + jumps_.S(j, mid);
      if (val < best) {
        best = val;
        best_p = p;
      }
    }
    row_min_[static_cast<size_t>(mid)] = best;
    row_arg_[static_cast<size_t>(mid)] = best_p < 0 ? 0 : cand[static_cast<size_t>(best_p)];
    const int left_hi = best_p < 0 ? phi : best_p;
    const int right_lo = best_p < 0 ? plo : best_p;
    Solve(mlo, mid - 1, plo, left_hi);
    Solve(mid + 1, mhi, right_lo, phi);
  }

  const ChordInstance& inst_;
  const JumpTables& jumps_;
  const std::vector<double>& prev_;
  std::vector<double>& row_min_;
  std::vector<int>& row_arg_;
};

}  // namespace

Result<Selection> SelectChordFast(const SelectionInput& input) {
  auto inst_r = BuildChordInstance(input);
  if (!inst_r.ok()) return inst_r.status();
  const ChordInstance& inst = inst_r.value();
  const int n = inst.n;
  const int k = std::min(input.k, static_cast<int>(inst.candidates.size()));

  JumpTables jumps(inst);

  std::vector<double> prev(inst.B.begin(), inst.B.end());  // C_0 = B
  std::vector<double> row_min(static_cast<size_t>(n) + 1, kInf);
  std::vector<int> row_arg(static_cast<size_t>(n) + 1, 0);
  std::vector<std::vector<int>> choice(
      static_cast<size_t>(k) + 1,
      std::vector<int>(static_cast<size_t>(n) + 1, 0));

  for (int i = 1; i <= k; ++i) {
    LayerSolver(inst, jumps, prev, row_min, row_arg).Run();
    auto& row = choice[static_cast<size_t>(i)];
    for (int m = 1; m <= n; ++m) {
      const size_t um = static_cast<size_t>(m);
      if (row_min[um] < prev[um]) {  // strict: prefer fewer pointers on ties
        prev[um] = row_min[um];
        row[um] = row_arg[um];
      }
    }
  }

  std::vector<int> chosen;
  int m = n;
  for (int i = k; i >= 1 && m >= 1;) {
    int j = choice[static_cast<size_t>(i)][static_cast<size_t>(m)];
    if (j == 0) {
      --i;
      continue;
    }
    chosen.push_back(j);
    m = j - 1;
    --i;
  }
  return MakeChordSelection(input, inst, chosen);
}

}  // namespace peercache::auxsel
