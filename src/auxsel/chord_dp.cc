#include "auxsel/chord_dp.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "auxsel/chord_common.h"
#include "common/bits.h"

namespace peercache::auxsel {

Result<Selection> SelectChordDp(const SelectionInput& input) {
  auto inst_r = BuildChordInstance(input);
  if (!inst_r.ok()) return inst_r.status();
  const ChordInstance& inst = inst_r.value();
  const int n = inst.n;
  const int k = std::min(input.k, static_cast<int>(inst.candidates.size()));

  // prev[m] = C_{i-1}(m); cur[m] = C_i(m). choice[i][m] = the pointer index
  // j realizing C_i(m), or 0 when C_i(m) = C_{i-1}(m) (pointer i unused for
  // the first m successors).
  std::vector<double> prev(inst.B.begin(), inst.B.end());  // C_0 = B
  std::vector<double> cur(static_cast<size_t>(n) + 1, 0);
  std::vector<std::vector<int>> choice(
      static_cast<size_t>(k) + 1, std::vector<int>(static_cast<size_t>(n) + 1, 0));

  for (int i = 1; i <= k; ++i) {
    cur = prev;  // the "skip" option, choice stays 0
    auto& row = choice[static_cast<size_t>(i)];
    for (int j : inst.candidates) {
      const double base = prev[static_cast<size_t>(j - 1)];
      const int nc = inst.next_core[static_cast<size_t>(j)];
      double acc = 0;  // s(j, m), extended incrementally over m
      for (int m = j; m <= n; ++m) {
        if (m > j) {
          const size_t um = static_cast<size_t>(m);
          int d = (m < nc) ? inst.Hop(j, m) : inst.core_serve[um];
          acc += inst.freq[um] * d;
        }
        if (base + acc < cur[static_cast<size_t>(m)]) {
          cur[static_cast<size_t>(m)] = base + acc;
          row[static_cast<size_t>(m)] = j;
        }
      }
    }
    prev = cur;
  }

  // Backtrack from (k, n).
  std::vector<int> chosen;
  int m = n;
  for (int i = k; i >= 1 && m >= 1;) {
    int j = choice[static_cast<size_t>(i)][static_cast<size_t>(m)];
    if (j == 0) {
      --i;
      continue;
    }
    chosen.push_back(j);
    m = j - 1;
    --i;
  }
  return MakeChordSelection(input, inst, chosen);
}

}  // namespace peercache::auxsel
