#include "auxsel/kademlia_maintainer.h"

#include <algorithm>

#include "trie/binary_trie.h"

namespace peercache::auxsel {

KademliaAuxMaintainer::KademliaAuxMaintainer(int bits, int k, uint64_t self_id)
    : bits_(bits), k_(k), self_id_(self_id), tree_(bits, k) {}

Status KademliaAuxMaintainer::OnPeerJoin(uint64_t id, double frequency) {
  return OnFrequencyDelta(id, frequency);
}

Status KademliaAuxMaintainer::OnPeerLeave(uint64_t id) {
  if (id == self_id_) return Status::Ok();
  const trie::BinaryTrie& trie = tree_.trie();
  const int leaf = trie.FindLeaf(id);
  if (leaf == trie::BinaryTrie::kNil) return Status::Ok();
  const trie::LeafInfo& info = trie.LeafAt(leaf);
  if (info.is_core) {
    // Core membership outlives the peer's frequency: the DHT drops the
    // entry via SetCores once stabilization notices. Until then the core
    // stays as a zero-frequency neighbor, matching the bucket tables.
    if (info.frequency == 0.0) return Status::Ok();
    dirty_ = true;
    return tree_.UpdateFrequency(id, 0.0);
  }
  dirty_ = true;
  return tree_.RemovePeer(id);
}

Status KademliaAuxMaintainer::OnFrequencyDelta(uint64_t id, double frequency) {
  if (id == self_id_) return Status::Ok();
  const trie::BinaryTrie& trie = tree_.trie();
  const int leaf = trie.FindLeaf(id);
  if (leaf == trie::BinaryTrie::kNil) {
    if (frequency <= 0.0) return Status::Ok();
    dirty_ = true;
    return tree_.AddPeer(id, frequency, /*is_core=*/false);
  }
  const trie::LeafInfo& info = trie.LeafAt(leaf);
  if (frequency > 0.0) {
    if (info.frequency == frequency) return Status::Ok();
    dirty_ = true;
    return tree_.UpdateFrequency(id, frequency);
  }
  if (info.is_core) {
    if (info.frequency == 0.0) return Status::Ok();
    dirty_ = true;
    return tree_.UpdateFrequency(id, 0.0);
  }
  dirty_ = true;
  return tree_.RemovePeer(id);
}

Result<size_t> KademliaAuxMaintainer::SetCores(std::vector<uint64_t> core_ids) {
  std::sort(core_ids.begin(), core_ids.end());
  core_ids.erase(std::unique(core_ids.begin(), core_ids.end()),
                 core_ids.end());
  std::erase(core_ids, self_id_);

  size_t changes = 0;
  const trie::BinaryTrie& trie = tree_.trie();
  // Removed cores: demote to plain candidates (keeping their observed
  // frequency) or drop entirely when they carry none.
  for (uint64_t id : cores_) {
    if (std::binary_search(core_ids.begin(), core_ids.end(), id)) continue;
    const int leaf = trie.FindLeaf(id);
    if (leaf == trie::BinaryTrie::kNil) continue;
    ++changes;
    dirty_ = true;
    Status s = trie.LeafAt(leaf).frequency > 0.0
                   ? tree_.SetCore(id, false)
                   : tree_.RemovePeer(id);
    if (!s.ok()) return s;
  }
  // Added cores: promote tracked peers, insert zero-frequency leaves for
  // cores the node has never seen queries for.
  for (uint64_t id : core_ids) {
    if (std::binary_search(cores_.begin(), cores_.end(), id)) continue;
    ++changes;
    dirty_ = true;
    Status s = trie.Contains(id) ? tree_.SetCore(id, true)
                                 : tree_.AddPeer(id, 0.0, /*is_core=*/true);
    if (!s.ok()) return s;
  }
  cores_ = std::move(core_ids);
  return changes;
}

double KademliaAuxMaintainer::BaseCost() const {
  const trie::BinaryTrie& trie = tree_.trie();
  const int root = trie.root();
  if (root == trie::BinaryTrie::kNil) return 0.0;
  double cost = trie.SubtreeFrequency(root);  // the "+1 per query" term
  std::vector<int> stack{root};
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    if (!trie.SubtreeHasNeighbor(v)) {
      cost += trie.EdgeLength(v) * trie.SubtreeFrequency(v);
    }
    if (trie.IsLeaf(v)) continue;
    for (int bit = 0; bit < 2; ++bit) {
      const int child = trie.Child(v, bit);
      if (child != trie::BinaryTrie::kNil) stack.push_back(child);
    }
  }
  return cost;
}

Result<Selection> KademliaAuxMaintainer::Reselect() {
  if (!dirty_) return cached_;
  Selection sel;
  sel.chosen = tree_.SelectAuxiliary();
  std::sort(sel.chosen.begin(), sel.chosen.end());
  sel.cost = BaseCost() - tree_.TotalGain();
  cached_ = std::move(sel);
  dirty_ = false;
  return cached_;
}

SelectionInput KademliaAuxMaintainer::FreshInput() const {
  SelectionInput input;
  input.bits = bits_;
  input.self_id = self_id_;
  input.k = k_;
  input.core_ids = cores_;
  const trie::BinaryTrie& trie = tree_.trie();
  for (int leaf : trie.AllLeaves()) {
    const trie::LeafInfo& info = trie.LeafAt(leaf);
    if (info.frequency > 0.0) {
      input.peers.push_back(PeerFreq{info.id, info.frequency, -1});
    }
  }
  std::sort(input.peers.begin(), input.peers.end(),
            [](const PeerFreq& a, const PeerFreq& b) { return a.id < b.id; });
  return input;
}

double KademliaAuxMaintainer::total_frequency() const {
  const trie::BinaryTrie& trie = tree_.trie();
  const int root = trie.root();
  return root == trie::BinaryTrie::kNil ? 0.0 : trie.SubtreeFrequency(root);
}

}  // namespace peercache::auxsel
