#include "auxsel/chord_maintainer.h"

#include <algorithm>
#include <utility>

namespace peercache::auxsel {

ChordAuxMaintainer::ChordAuxMaintainer(int bits, int k, uint64_t self_id)
    : bits_(bits), k_(k), self_id_(self_id) {}

bool ChordAuxMaintainer::IsCore(uint64_t id) const {
  return std::binary_search(cores_.begin(), cores_.end(), id);
}

Status ChordAuxMaintainer::OnPeerJoin(uint64_t id, double frequency) {
  return OnFrequencyDelta(id, frequency);
}

Status ChordAuxMaintainer::OnPeerLeave(uint64_t id) {
  return OnFrequencyDelta(id, 0.0);
}

Status ChordAuxMaintainer::OnFrequencyDelta(uint64_t id, double frequency) {
  if (id == self_id_) return Status::Ok();
  auto it = freq_.find(id);
  if (frequency > 0.0) {
    if (it == freq_.end()) {
      freq_.emplace(id, frequency);
      // A core is already a successor (at the same ring position), so only
      // its weight moved; a brand-new candidate changes the ring.
      if (IsCore(id)) {
        weights_dirty_ = true;
      } else {
        structure_dirty_ = true;
      }
    } else if (it->second != frequency) {
      it->second = frequency;
      weights_dirty_ = true;
    }
    return Status::Ok();
  }
  if (it == freq_.end()) return Status::Ok();
  freq_.erase(it);
  if (IsCore(id)) {
    weights_dirty_ = true;  // stays a zero-frequency successor
  } else {
    structure_dirty_ = true;
  }
  return Status::Ok();
}

Result<size_t> ChordAuxMaintainer::SetCores(std::vector<uint64_t> core_ids) {
  std::sort(core_ids.begin(), core_ids.end());
  core_ids.erase(std::unique(core_ids.begin(), core_ids.end()),
                 core_ids.end());
  std::erase(core_ids, self_id_);
  size_t changes = 0;
  // Symmetric difference of two sorted sets.
  size_t a = 0, b = 0;
  while (a < cores_.size() || b < core_ids.size()) {
    if (b == core_ids.size() ||
        (a < cores_.size() && cores_[a] < core_ids[b])) {
      ++changes;  // removed core
      ++a;
    } else if (a == cores_.size() || core_ids[b] < cores_[a]) {
      ++changes;  // added core
      ++b;
    } else {
      ++a;
      ++b;
    }
  }
  if (changes > 0) {
    cores_ = std::move(core_ids);
    structure_dirty_ = true;  // core split / candidacy changed
  }
  return changes;
}

SelectionInput ChordAuxMaintainer::FreshInput() const {
  SelectionInput input;
  input.bits = bits_;
  input.self_id = self_id_;
  input.k = k_;
  input.core_ids = cores_;
  input.peers.reserve(freq_.size());
  for (const auto& [id, f] : freq_) {
    input.peers.push_back(PeerFreq{id, f, -1});
  }
  return input;
}

double ChordAuxMaintainer::total_frequency() const {
  double total = 0.0;
  for (const auto& [id, f] : freq_) total += f;
  return total;
}

Result<Selection> ChordAuxMaintainer::Reselect() {
  if (have_selection_ && !structure_dirty_ && !weights_dirty_) {
    return cached_;
  }
  const SelectionInput input = FreshInput();
  if (structure_dirty_ || !have_plan_) {
    auto plan_r = ChordFastPlan::Build(input);
    if (!plan_r.ok()) return plan_r.status();
    plan_ = std::move(plan_r).value();
    have_plan_ = true;
  } else if (weights_dirty_) {
    if (Status s = plan_.RefreshWeights(input); !s.ok()) {
      // Defensive: a refresh mismatch means our dirty tracking and the plan
      // disagree — rebuild rather than solve on stale geometry.
      auto plan_r = ChordFastPlan::Build(input);
      if (!plan_r.ok()) return plan_r.status();
      plan_ = std::move(plan_r).value();
    }
  }
  auto sel_r = plan_.Solve(input);
  if (!sel_r.ok()) return sel_r.status();
  cached_ = std::move(sel_r).value();
  have_selection_ = true;
  structure_dirty_ = false;
  weights_dirty_ = false;
  return cached_;
}

}  // namespace peercache::auxsel
