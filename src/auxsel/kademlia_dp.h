#ifndef PEERCACHE_AUXSEL_KADEMLIA_DP_H_
#define PEERCACHE_AUXSEL_KADEMLIA_DP_H_

#include "auxsel/selection_types.h"
#include "common/status.h"

namespace peercache::auxsel {

/// Exact dynamic program for Kademlia auxiliary-neighbor selection under
/// the XOR distance estimate d_wv = bitlen(w XOR v) (paper Eq. 1 applied
/// to the Kademlia geometry).
///
/// Because bitlen(w XOR v) = b - lcp(w, v), the cost decomposes over the
/// binary id trie exactly as in the Pastry case: Eq. 1 equals
///
///   F(V) + Σ_u [subtree(u) ∩ (N ∪ A) = ∅] · F(subtree(u))
///
/// summed over all non-root trie vertices u. This implementation exploits
/// the decomposition directly on the id-sorted element array — every trie
/// subtree is a contiguous range, split at each level by one bit — with no
/// materialized trie, so it shares no code with the gain-tree fast path
/// (kademlia_fast.h) it serves as the differential reference for. O(n·k²).
Result<Selection> SelectKademliaDp(const SelectionInput& input);

}  // namespace peercache::auxsel

#endif  // PEERCACHE_AUXSEL_KADEMLIA_DP_H_
