#ifndef PEERCACHE_AUXSEL_SELECTION_TYPES_H_
#define PEERCACHE_AUXSEL_SELECTION_TYPES_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace peercache::auxsel {

/// One peer the selecting node has seen queries for (an element of the
/// paper's set V), with its observed access frequency.
struct PeerFreq {
  uint64_t id = 0;
  double frequency = 0.0;
  /// QoS delay bound in hops (paper Secs. IV-D, V-C): queries to this peer
  /// must be answerable within this many hops. Negative = unconstrained.
  int delay_bound = -1;
};

/// Input to every auxiliary-neighbor selection algorithm.
///
/// `peers` is V: it must not contain `self_id`, and ids must be distinct.
/// `core_ids` is N_s, the core neighbors installed by the underlying DHT;
/// core ids may or may not also appear in `peers` (a core neighbor the node
/// has seen queries for carries a frequency; one it hasn't contributes no
/// cost but still shortens other peers' routes).
struct SelectionInput {
  int bits = 32;                   ///< Id length b.
  uint64_t self_id = 0;            ///< The node running the selection (s).
  std::vector<PeerFreq> peers;     ///< V with frequencies.
  std::vector<uint64_t> core_ids;  ///< N_s.
  int k = 0;                       ///< Number of auxiliary pointers to pick.
};

/// Output of a selection algorithm.
struct Selection {
  /// Chosen auxiliary neighbor ids, |chosen| <= k (fewer only when V has
  /// fewer than k eligible candidates).
  std::vector<uint64_t> chosen;
  /// Paper Eq. 1 cost of N_s ∪ chosen over V: Σ_v f_v (1 + d(v, N ∪ A)).
  double cost = 0.0;
};

/// Validates a SelectionInput: ids in range, peers distinct, self excluded,
/// k >= 0, frequencies finite and nonnegative.
Status ValidateInput(const SelectionInput& input);

/// Evaluates paper Eq. 1 for Pastry's distance estimate d_uv = b - lcp(u,v):
/// Σ_v f_v (1 + min_{w ∈ N ∪ aux} (b - lcp(v, w))), with the convention
/// d(v, ∅) = b. O(|V| · (|N| + |aux|)) reference implementation used by
/// tests and for reporting; selectors compute the same value internally via
/// the trie decomposition.
double EvaluatePastryCost(const SelectionInput& input,
                          const std::vector<uint64_t>& aux);

/// Evaluates paper Eq. 1 for Chord's distance estimate
/// d_wv = bitlen((v - w) mod 2^b): Σ_v f_v (1 + min_{w ∈ N ∪ aux} d_wv),
/// with d(v, ∅) = b. Neighbors clockwise past v contribute bitlen close to b
/// and lose the min automatically, matching the Chord routing policy.
double EvaluateChordCost(const SelectionInput& input,
                         const std::vector<uint64_t>& aux);

/// Evaluates paper Eq. 1 for Kademlia's distance estimate
/// d_wv = bitlen(w XOR v): Σ_v f_v (1 + min_{w ∈ N ∪ aux} d_wv), with
/// d(v, ∅) = b. Since bitlen(w XOR v) = b - lcp(w, v), this is the Pastry
/// estimate re-derived in the XOR metric — the identity that lets the
/// trie-shaped selection machinery serve both geometries (see
/// docs/ALGORITHMS.md).
double EvaluateKademliaCost(const SelectionInput& input,
                            const std::vector<uint64_t>& aux);

/// True iff every delay bound in `input.peers` is met by N ∪ aux under the
/// Pastry distance estimate.
bool PastryQosSatisfied(const SelectionInput& input,
                        const std::vector<uint64_t>& aux);

/// True iff every delay bound in `input.peers` is met by N ∪ aux under the
/// Chord distance estimate.
bool ChordQosSatisfied(const SelectionInput& input,
                       const std::vector<uint64_t>& aux);

/// True iff every delay bound in `input.peers` is met by N ∪ aux under the
/// Kademlia XOR distance estimate.
bool KademliaQosSatisfied(const SelectionInput& input,
                          const std::vector<uint64_t>& aux);

}  // namespace peercache::auxsel

#endif  // PEERCACHE_AUXSEL_SELECTION_TYPES_H_
