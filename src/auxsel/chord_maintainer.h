#ifndef PEERCACHE_AUXSEL_CHORD_MAINTAINER_H_
#define PEERCACHE_AUXSEL_CHORD_MAINTAINER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "auxsel/chord_fast.h"
#include "auxsel/maintainer.h"
#include "auxsel/selection_types.h"
#include "common/status.h"

namespace peercache::auxsel {

/// Persistent Chord auxiliary maintainer: the Sec. V-B jump tables
/// (`ChordFastPlan`) kept alive across churn rounds.
///
/// Deltas are O(log n) bookkeeping against a sorted frequency map; the
/// expensive work happens once per `Reselect()` and is tiered by what the
/// round's deltas actually invalidated:
///
///  * nothing changed          — return the cached selection;
///  * frequency-only deltas    — the ring geometry (successor order, core
///    split, every jump pointer p_j(r)) is still valid: refresh just the
///    weight planes in O(n·b) and re-run the DP;
///  * membership / core deltas — the successor ring itself changed: rebuild
///    the plan from scratch (what the one-shot selector pays every round).
///
/// A frequency delta that adds or removes a *non-core* peer changes the
/// successor set and therefore counts as a membership delta; the same delta
/// on a core-flagged peer only moves weight (the core stays a successor at
/// the same position), so it rides the cheap path.
class ChordAuxMaintainer {
 public:
  ChordAuxMaintainer(int bits, int k, uint64_t self_id);

  uint64_t self_id() const { return self_id_; }
  int k() const { return k_; }
  int bits() const { return bits_; }

  Status OnPeerJoin(uint64_t id, double frequency);
  Status OnPeerLeave(uint64_t id);
  Status OnFrequencyDelta(uint64_t id, double frequency);
  Result<size_t> SetCores(std::vector<uint64_t> core_ids);

  Result<Selection> Reselect();

  SelectionInput FreshInput() const;
  double total_frequency() const;

  size_t tracked_peers() const { return freq_.size(); }
  /// True when the next Reselect must rebuild the ring geometry (test
  /// accessor for the reuse tiers).
  bool structure_dirty() const { return structure_dirty_; }

 private:
  bool IsCore(uint64_t id) const;

  int bits_;
  int k_;
  uint64_t self_id_;
  std::map<uint64_t, double> freq_;  ///< Tracked peers, frequency > 0.
  std::vector<uint64_t> cores_;      ///< Sorted, self excluded.
  ChordFastPlan plan_;
  bool have_plan_ = false;
  bool structure_dirty_ = true;
  bool weights_dirty_ = false;
  Selection cached_;
  bool have_selection_ = false;
};

static_assert(Maintainer<ChordAuxMaintainer>);

}  // namespace peercache::auxsel

#endif  // PEERCACHE_AUXSEL_CHORD_MAINTAINER_H_
