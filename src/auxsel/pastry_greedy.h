#ifndef PEERCACHE_AUXSEL_PASTRY_GREEDY_H_
#define PEERCACHE_AUXSEL_PASTRY_GREEDY_H_

#include <cstdint>
#include <vector>

#include "auxsel/selection_types.h"
#include "common/status.h"
#include "trie/binary_trie.h"

namespace peercache::auxsel {

/// One marginal gain: choosing `id` as the next auxiliary pointer inside a
/// subtree reduces the subtree's Eq. 1 cost by `gain`.
struct GainEntry {
  double gain = 0.0;
  uint64_t id = 0;
};

/// The optimal O(n·k) greedy selector of paper Sec. IV-B, in incremental
/// form (Sec. IV-C).
///
/// Every trie vertex caches the marginal-gain sequence of optimally placing
/// 1, 2, ..., k pointers in its subtree (sorted nonincreasing — this is the
/// paper's property (P)/Lemma 4.1: optimal pointer sets are nested and have
/// diminishing returns). A parent's sequence is the 2-way merge of its
/// children's sequences, with the child's incoming-edge penalty credited to
/// the first pointer placed in a subtree that contains no core neighbor
/// (paper Eq. 4 in prefix-sum form). The root's first j entries therefore
/// witness the optimal j-pointer selection for every j <= k simultaneously.
///
/// Mutations (peer join/leave, popularity change — Sec. IV-C) recompute only
/// the gain lists on the root path of the touched leaf: O(b·k) per update.
class PastryGainTree {
 public:
  /// Creates an empty gain tree over `bits`-bit ids with pointer budget k.
  PastryGainTree(int bits, int k);

  /// Convenience constructor state: populates from a validated input.
  static Result<PastryGainTree> FromInput(const SelectionInput& input);

  int k() const { return k_; }
  const trie::BinaryTrie& trie() const { return trie_; }

  /// Adds a peer (or core neighbor). O(b·k).
  Status AddPeer(uint64_t id, double frequency, bool is_core = false);
  /// Removes a peer entirely. O(b·k).
  Status RemovePeer(uint64_t id);
  /// Updates a peer's observed frequency. O(b·k).
  Status UpdateFrequency(uint64_t id, double frequency);
  /// Flags a peer as a core neighbor (or clears the flag). O(b·k).
  Status SetCore(uint64_t id, bool is_core);
  /// Flags a peer as preselected: it counts as a neighbor but is excluded
  /// from further candidacy (used by the QoS forcing pass). O(b·k).
  Status SetPreselected(uint64_t id, bool preselected);

  /// The optimal auxiliary set: ids of the root's gain list (size
  /// min(k, #candidates)), best first.
  std::vector<uint64_t> SelectAuxiliary() const;

  /// Gain list cached at a vertex (as exported to its parent: the first
  /// entry includes the vertex's incoming-edge credit). Test/QoS accessor.
  const std::vector<GainEntry>& GainsAt(int vertex) const {
    return lists_[static_cast<size_t>(vertex)];
  }

  /// Total gain of the selected set: Cost(∅) - Cost(selected).
  double TotalGain() const;

  /// Recomputes every vertex from scratch and verifies the cached lists
  /// match. Test helper; O(n·k).
  Status CheckConsistency();

 private:
  void EnsureCapacity();
  /// Recomputes both children of `parent` (whose incoming edges may have
  /// changed after a structural mutation), then the path from `parent` to
  /// the root. With a kNil parent, recomputes from `fallback_leaf` instead.
  void RefreshChildrenThenPath(int parent, int fallback_leaf);
  /// Recomputes lists_ from `v` up to the root.
  void RecomputePath(int v);
  /// Recomputes one vertex's exported list from its children (or leaf).
  void RecomputeVertex(int v);
  void RecomputeAll();

  trie::BinaryTrie trie_;
  int k_;
  std::vector<std::vector<GainEntry>> lists_;
};

/// One-shot greedy selection (paper Sec. IV-B): builds a gain tree from the
/// input and reads off the top-k set. Guaranteed cost-equal to
/// SelectPastryDp; O(n·k) plus trie construction.
Result<Selection> SelectPastryGreedy(const SelectionInput& input);

}  // namespace peercache::auxsel

#endif  // PEERCACHE_AUXSEL_PASTRY_GREEDY_H_
