#include "auxsel/pastry_qos.h"

#include <algorithm>
#include <vector>

#include "auxsel/pastry_greedy.h"
#include "auxsel/pastry_trie_builder.h"

namespace peercache::auxsel {

Result<Selection> SelectPastryGreedyQos(const SelectionInput& input) {
  auto tree_r = PastryGainTree::FromInput(input);
  if (!tree_r.ok()) return tree_r.status();
  PastryGainTree& tree = tree_r.value();

  // Delay bounds live in the input, not in FromInput's leaves; install them
  // so constraint vertices can be derived from the trie.
  std::vector<int> marked = QosConstraintVertices(tree.trie(), input);
  // Deepest first: a forced pointer deep in a subtree also satisfies every
  // shallower mark on the same root path.
  std::sort(marked.begin(), marked.end(), [&tree](int a, int b) {
    return tree.trie().Depth(a) > tree.trie().Depth(b);
  });

  std::vector<uint64_t> forced;
  for (int v : marked) {
    if (tree.trie().SubtreeHasNeighbor(v)) continue;
    const std::vector<GainEntry>& gains = tree.GainsAt(v);
    if (gains.empty()) {
      return Status::Infeasible(
          "a QoS-constrained subtree has no neighbor and no candidates");
    }
    uint64_t id = gains.front().id;
    forced.push_back(id);
    if (static_cast<int>(forced.size()) > input.k) {
      return Status::Infeasible("delay bounds require more than k pointers");
    }
    // Preselecting counts the pointer as a neighbor and removes it from
    // candidacy; gain lists along its path refresh in O(b·k).
    if (Status s = tree.SetPreselected(id, true); !s.ok()) return s;
  }

  Selection sel;
  sel.chosen = forced;
  const int remaining = input.k - static_cast<int>(forced.size());
  std::vector<uint64_t> top_up = tree.SelectAuxiliary();
  for (int i = 0; i < remaining && i < static_cast<int>(top_up.size()); ++i) {
    sel.chosen.push_back(top_up[static_cast<size_t>(i)]);
  }
  std::sort(sel.chosen.begin(), sel.chosen.end());
  sel.cost = EvaluatePastryCost(input, sel.chosen);
  if (!PastryQosSatisfied(input, sel.chosen)) {
    return Status::Internal("QoS forcing pass left a bound unsatisfied");
  }
  return sel;
}

}  // namespace peercache::auxsel
