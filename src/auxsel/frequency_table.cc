#include "auxsel/frequency_table.h"

#include <cassert>

namespace peercache::auxsel {

FrequencyTable::FrequencyTable(size_t capacity)
    : capacity_(capacity), bounded_(capacity == 0 ? 1 : capacity) {}

void FrequencyTable::Record(uint64_t peer_id, uint64_t weight) {
  total_ += weight;
  if (capacity_ == 0) {
    exact_[peer_id] += static_cast<double>(weight);
  } else {
    bounded_.Offer(peer_id, weight);
  }
}

void FrequencyTable::Forget(uint64_t peer_id) {
  if (capacity_ == 0) exact_.erase(peer_id);
}

void FrequencyTable::Decay(double factor) {
  assert(factor > 0 && factor <= 1);
  if (capacity_ != 0) return;
  for (auto& [id, f] : exact_) f *= factor;
}

size_t FrequencyTable::distinct() const {
  return capacity_ == 0 ? exact_.size() : bounded_.size();
}

std::vector<PeerFreq> FrequencyTable::Snapshot(uint64_t exclude_self) const {
  std::vector<PeerFreq> out;
  if (capacity_ == 0) {
    out.reserve(exact_.size());
    for (const auto& [id, f] : exact_) {
      if (id == exclude_self) continue;
      out.push_back(PeerFreq{id, f, -1});
    }
  } else {
    for (const TopNEntry& e : bounded_.Entries()) {
      if (e.key == exclude_self) continue;
      out.push_back(PeerFreq{e.key, static_cast<double>(e.count), -1});
    }
  }
  return out;
}

void FrequencyTable::Clear() {
  exact_.clear();
  bounded_.Clear();
  total_ = 0;
}

}  // namespace peercache::auxsel
