#include "auxsel/frequency_table.h"

#include <algorithm>
#include <cassert>

namespace peercache::auxsel {

FrequencyTable::FrequencyTable(size_t capacity)
    : capacity_(capacity), bounded_(capacity == 0 ? 1 : capacity) {}

void FrequencyTable::Record(uint64_t peer_id, uint64_t weight) {
  total_ += weight;
  dirty_.insert(peer_id);
  if (capacity_ == 0) {
    exact_[peer_id] += static_cast<double>(weight);
  } else {
    bounded_.Offer(peer_id, weight);
  }
}

bool FrequencyTable::Forget(uint64_t peer_id) {
  dirty_.insert(peer_id);
  if (capacity_ == 0) {
    exact_.erase(peer_id);
    return true;
  }
  // Bounded mode: zero the Space-Saving slot so the departed peer becomes
  // the next eviction victim, and report that a true removal did not apply.
  return !bounded_.Reset(peer_id);
}

void FrequencyTable::Decay(double factor) {
  assert(factor > 0 && factor <= 1);
  if (capacity_ != 0) return;
  for (auto& [id, f] : exact_) {
    f *= factor;
    dirty_.insert(id);
  }
}

size_t FrequencyTable::distinct() const {
  return capacity_ == 0 ? exact_.size() : bounded_.size();
}

double FrequencyTable::ObservedWeight(uint64_t peer_id) const {
  if (capacity_ == 0) {
    auto found = exact_.find(peer_id);
    return found == exact_.end() ? 0.0 : found->second;
  }
  return static_cast<double>(bounded_.EstimatedCount(peer_id));
}

std::vector<uint64_t> FrequencyTable::DrainDirty() {
  std::vector<uint64_t> out(dirty_.begin(), dirty_.end());
  dirty_.clear();
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<PeerFreq> FrequencyTable::Snapshot(uint64_t exclude_self) const {
  std::vector<PeerFreq> out;
  if (capacity_ == 0) {
    out.reserve(exact_.size());
    for (const auto& [id, f] : exact_) {
      if (id == exclude_self) continue;
      out.push_back(PeerFreq{id, f, -1});
    }
  } else {
    for (const TopNEntry& e : bounded_.Entries()) {
      if (e.key == exclude_self) continue;
      out.push_back(PeerFreq{e.key, static_cast<double>(e.count), -1});
    }
  }
  return out;
}

void FrequencyTable::Clear() {
  exact_.clear();
  bounded_.Clear();
  dirty_.clear();
  total_ = 0;
}

}  // namespace peercache::auxsel
