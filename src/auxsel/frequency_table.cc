#include "auxsel/frequency_table.h"

#include <algorithm>
#include <cassert>

namespace peercache::auxsel {

FrequencyTable::FrequencyTable(size_t capacity, const FreqSketchParams& sketch)
    : mode_(sketch.enabled()
                ? Mode::kSketch
                : (capacity > 0 ? Mode::kBounded : Mode::kExact)),
      capacity_(capacity),
      sketch_params_(sketch),
      bounded_(capacity == 0 ? 1 : capacity),
      top_(sketch.enabled() ? sketch.top_capacity : 1),
      cm_(sketch.enabled() ? sketch.cm_width : 2,
          sketch.enabled() ? sketch.cm_depth : 1, sketch.seed) {}

void FrequencyTable::Record(uint64_t peer_id, uint64_t weight) {
  total_ += weight;
  dirty_.insert(peer_id);
  uint64_t evicted = 0;
  switch (mode_) {
    case Mode::kExact:
      exact_[peer_id] += static_cast<double>(weight);
      break;
    case Mode::kBounded:
      // An eviction silently zeroes the victim's estimate; dirty it so
      // maintainers replace the stale weight next drain.
      if (bounded_.Offer(peer_id, weight, &evicted)) dirty_.insert(evicted);
      break;
    case Mode::kSketch:
      cm_.Add(peer_id, weight);
      if (top_.Offer(peer_id, weight, &evicted)) dirty_.insert(evicted);
      break;
  }
}

bool FrequencyTable::Forget(uint64_t peer_id) {
  dirty_.insert(peer_id);
  switch (mode_) {
    case Mode::kExact:
      exact_.erase(peer_id);
      return true;
    case Mode::kBounded:
      // Zero the Space-Saving slot so the departed peer becomes the next
      // eviction victim, and report that a true removal did not apply.
      return !bounded_.Reset(peer_id);
    case Mode::kSketch: {
      // Zero the summary slot and compensate the count-min counters so the
      // peer's estimate — and hence ObservedWeight — reads zero. Records
      // after this start from zero again (absolute, not stale, weights).
      const bool tracked = top_.Reset(peer_id);
      cm_.Forget(peer_id);
      return !tracked;
    }
  }
  return true;  // unreachable
}

void FrequencyTable::Decay(double factor) {
  assert(factor > 0 && factor <= 1);
  if (mode_ != Mode::kExact) return;
  for (auto& [id, f] : exact_) {
    f *= factor;
    dirty_.insert(id);
  }
}

size_t FrequencyTable::distinct() const {
  switch (mode_) {
    case Mode::kExact:
      return exact_.size();
    case Mode::kBounded:
      return bounded_.size();
    case Mode::kSketch:
      return top_.size();
  }
  return 0;  // unreachable
}

double FrequencyTable::ObservedWeight(uint64_t peer_id) const {
  switch (mode_) {
    case Mode::kExact: {
      auto found = exact_.find(peer_id);
      return found == exact_.end() ? 0.0 : found->second;
    }
    case Mode::kBounded:
      return static_cast<double>(bounded_.EstimatedCount(peer_id));
    case Mode::kSketch: {
      // Both the summary count and the sketch estimate overestimate an
      // insert-only stream, so their minimum is a tighter overestimate; it
      // is exact whenever the summary never evicted.
      const uint64_t est = cm_.Estimate(peer_id);
      if (!top_.Contains(peer_id)) return static_cast<double>(est);
      return static_cast<double>(
          std::min(top_.EstimatedCount(peer_id), est));
    }
  }
  return 0.0;  // unreachable
}

std::vector<uint64_t> FrequencyTable::DrainDirty() {
  std::vector<uint64_t> out(dirty_.begin(), dirty_.end());
  dirty_.clear();
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<PeerFreq> FrequencyTable::Snapshot(uint64_t exclude_self) const {
  std::vector<PeerFreq> out;
  switch (mode_) {
    case Mode::kExact:
      out.reserve(exact_.size());
      for (const auto& [id, f] : exact_) {
        if (id == exclude_self) continue;
        out.push_back(PeerFreq{id, f, -1});
      }
      break;
    case Mode::kBounded:
      for (const TopNEntry& e : bounded_.Entries()) {
        if (e.key == exclude_self) continue;
        out.push_back(PeerFreq{e.key, static_cast<double>(e.count), -1});
      }
      break;
    case Mode::kSketch:
      for (const FlatTopEntry& e : top_.Entries()) {
        if (e.key == exclude_self) continue;
        const uint64_t w = std::min(e.count, cm_.Estimate(e.key));
        if (w == 0) continue;
        out.push_back(PeerFreq{e.key, static_cast<double>(w), -1});
      }
      break;
  }
  return out;
}

void FrequencyTable::Clear() {
  exact_.clear();
  bounded_.Clear();
  top_.Clear();
  cm_.Clear();
  dirty_.clear();
  total_ = 0;
}

size_t FrequencyTable::SummaryMemoryBytes() const {
  switch (mode_) {
    case Mode::kExact:
      return kTableOverheadBytes + exact_.size() * kExactEntryBytes;
    case Mode::kBounded:
      return kTableOverheadBytes + capacity_ * kBoundedSlotBytes;
    case Mode::kSketch:
      return kTableOverheadBytes + top_.MemoryBytes() + cm_.MemoryBytes();
  }
  return 0;  // unreachable
}

}  // namespace peercache::auxsel
