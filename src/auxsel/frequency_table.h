#ifndef PEERCACHE_AUXSEL_FREQUENCY_TABLE_H_
#define PEERCACHE_AUXSEL_FREQUENCY_TABLE_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "auxsel/selection_types.h"
#include "common/count_min.h"
#include "common/top_n.h"

namespace peercache::auxsel {

/// Configuration for the bounded-memory sketch mode of FrequencyTable:
/// a flat space-saving summary holds the `top_capacity` heavy hitters and a
/// count-min sketch absorbs the tail. top_capacity == 0 disables the mode.
struct FreqSketchParams {
  size_t top_capacity = 0;  ///< Heavy-hitter slots; 0 = sketch mode off.
  size_t cm_width = 64;     ///< Counters per sketch row (rounded up to 2^k).
  int cm_depth = 4;         ///< Independent sketch rows.
  uint64_t seed = 0x5eedUL; ///< Salts the sketch's row hashes.

  bool enabled() const { return top_capacity > 0; }
};

/// Per-node access-frequency observer (paper Sec. III, "Implementation
/// Considerations"): every query a node originates records the responsible
/// peer that answered it; the accumulated table feeds the auxiliary-neighbor
/// selection.
///
/// Three modes:
///  * exact (capacity == 0, sketch off): exact counts in a hash map, with
///    optional exponential decay so the table tracks shifting popularity;
///  * bounded (capacity > 0): the Space-Saving top-n summary the paper
///    suggests for storage-limited nodes — the resulting selection may be
///    slightly suboptimal because tail peers are dropped (studied in
///    bench/ablation_topn);
///  * sketch (sketch.enabled()): a compact space-saving summary for the
///    heavy hitters backed by a count-min sketch for the tail. A tracked
///    peer's weight is min(summary count, sketch estimate) — both
///    overestimate an insert-only stream, so the min is a tighter
///    overestimate, and it equals the exact count whenever the summary never
///    evicted (top_capacity >= distinct peers). Memory is fixed at
///    configuration time regardless of how many peers are observed
///    (quantified in bench/freq_sketch; error model in docs/ALGORITHMS.md).
///
/// The table also keeps a dirty set of peers whose weight changed since the
/// last `DrainDirty()`, which is what lets an incremental maintainer
/// (auxsel/maintainer.h) apply only the per-round frequency deltas instead
/// of re-reading the whole table. Summary evictions dirty the victim too:
/// its estimate silently dropped to zero, and a maintainer that missed the
/// eviction would otherwise keep the stale weight forever.
class FrequencyTable {
 public:
  /// capacity == 0 keeps exact counts for every peer ever seen. When
  /// `sketch.enabled()`, the sketch mode takes precedence over `capacity`.
  explicit FrequencyTable(size_t capacity = 0,
                          const FreqSketchParams& sketch = {});

  /// Records one query answered by `peer_id`.
  void Record(uint64_t peer_id, uint64_t weight = 1);

  /// Drops a peer from the table (e.g., observed to have left the overlay).
  /// Returns true when the entry was fully removed (exact mode, or the
  /// peer was never tracked). In bounded and sketch modes the summary has no
  /// true deletion; the entry's count is zeroed (making it the next eviction
  /// victim rather than pinning the slot forever) — and in sketch mode the
  /// count-min counters are compensated so the peer's estimate reads zero —
  /// then Forget returns false so the caller knows to push a frequency-zero
  /// update into any selector state derived from this table. Either way,
  /// subsequent Records start from zero: a drain after Forget always yields
  /// absolute weights, never the pre-Forget count.
  bool Forget(uint64_t peer_id);

  /// Multiplies every exact count by `factor` in (0, 1]; lets long-running
  /// nodes favor recent popularity. No-op in bounded and sketch modes.
  void Decay(double factor);

  /// Number of distinct peers currently tracked.
  size_t distinct() const;

  /// Total recorded weight.
  uint64_t total() const { return total_; }

  /// Current weight estimate for one peer (0 if untracked).
  double ObservedWeight(uint64_t peer_id) const;

  /// Returns the sorted ids whose weight changed since the last drain, and
  /// clears the dirty set. Pair with `ObservedWeight` to turn the table's
  /// mutations into selector deltas.
  std::vector<uint64_t> DrainDirty();

  /// Exports the table as selector input peers. Never includes
  /// `exclude_self`. In sketch mode the entries are the heavy-hitter
  /// summary with zero-weight slots skipped, ordered by weight descending
  /// with ties broken by ascending id — deterministic at any thread count.
  std::vector<PeerFreq> Snapshot(uint64_t exclude_self) const;

  void Clear();

  bool sketch_enabled() const { return sketch_params_.enabled(); }
  const FreqSketchParams& sketch_params() const { return sketch_params_; }

  /// Modeled per-node footprint of the frequency summary, in bytes. The
  /// model is platform-invariant so telemetry stays bit-identical across
  /// toolchains: exact mode costs kExactEntryBytes per distinct peer,
  /// bounded mode kBoundedSlotBytes per configured slot, sketch mode the
  /// flat summary slots plus the count-min counter matrix; all plus a fixed
  /// kTableOverheadBytes. The dirty buffer is excluded: it is the shared
  /// maintainer delta feed, identical across modes and drained every round.
  size_t SummaryMemoryBytes() const;

  /// Model constants for SummaryMemoryBytes (documented in
  /// docs/OBSERVABILITY.md).
  static constexpr size_t kExactEntryBytes = 48;
  static constexpr size_t kBoundedSlotBytes = 88;
  static constexpr size_t kTableOverheadBytes = 64;

 private:
  enum class Mode { kExact, kBounded, kSketch };

  Mode mode_;
  size_t capacity_;
  FreqSketchParams sketch_params_;
  std::unordered_map<uint64_t, double> exact_;
  SpaceSaving bounded_;
  SpaceSavingFlat top_;
  CountMinSketch cm_;
  std::unordered_set<uint64_t> dirty_;
  uint64_t total_ = 0;
};

}  // namespace peercache::auxsel

#endif  // PEERCACHE_AUXSEL_FREQUENCY_TABLE_H_
