#ifndef PEERCACHE_AUXSEL_FREQUENCY_TABLE_H_
#define PEERCACHE_AUXSEL_FREQUENCY_TABLE_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "auxsel/selection_types.h"
#include "common/top_n.h"

namespace peercache::auxsel {

/// Per-node access-frequency observer (paper Sec. III, "Implementation
/// Considerations"): every query a node originates records the responsible
/// peer that answered it; the accumulated table feeds the auxiliary-neighbor
/// selection.
///
/// Two modes:
///  * unbounded (capacity == 0): exact counts in a hash map, with optional
///    exponential decay so the table tracks shifting popularity;
///  * bounded (capacity > 0): the Space-Saving top-n summary the paper
///    suggests for storage-limited nodes — the resulting selection may be
///    slightly suboptimal because tail peers are dropped (studied in
///    bench/ablation_topn).
///
/// The table also keeps a dirty set of peers whose weight changed since the
/// last `DrainDirty()`, which is what lets an incremental maintainer
/// (auxsel/maintainer.h) apply only the per-round frequency deltas instead
/// of re-reading the whole table.
class FrequencyTable {
 public:
  /// capacity == 0 keeps exact counts for every peer ever seen.
  explicit FrequencyTable(size_t capacity = 0);

  /// Records one query answered by `peer_id`.
  void Record(uint64_t peer_id, uint64_t weight = 1);

  /// Drops a peer from the table (e.g., observed to have left the overlay).
  /// Returns true when the entry was fully removed (unbounded mode, or the
  /// peer was never tracked). In bounded mode Space-Saving has no deletion;
  /// the entry's count is zeroed instead — making it the next eviction
  /// victim rather than pinning the slot forever — and Forget returns
  /// false so the caller knows to push a frequency-zero update into any
  /// selector state derived from this table.
  bool Forget(uint64_t peer_id);

  /// Multiplies every exact count by `factor` in (0, 1]; lets long-running
  /// nodes favor recent popularity. No-op in bounded mode.
  void Decay(double factor);

  /// Number of distinct peers currently tracked.
  size_t distinct() const;

  /// Total recorded weight.
  uint64_t total() const { return total_; }

  /// Current weight estimate for one peer (0 if untracked).
  double ObservedWeight(uint64_t peer_id) const;

  /// Returns the sorted ids whose weight changed since the last drain, and
  /// clears the dirty set. Pair with `ObservedWeight` to turn the table's
  /// mutations into selector deltas.
  std::vector<uint64_t> DrainDirty();

  /// Exports the table as selector input peers. Never includes
  /// `exclude_self`.
  std::vector<PeerFreq> Snapshot(uint64_t exclude_self) const;

  void Clear();

 private:
  size_t capacity_;
  std::unordered_map<uint64_t, double> exact_;
  SpaceSaving bounded_;
  std::unordered_set<uint64_t> dirty_;
  uint64_t total_ = 0;
};

}  // namespace peercache::auxsel

#endif  // PEERCACHE_AUXSEL_FREQUENCY_TABLE_H_
