#ifndef PEERCACHE_AUXSEL_MAINTAINER_H_
#define PEERCACHE_AUXSEL_MAINTAINER_H_

#include <concepts>
#include <cstdint>
#include <vector>

#include "auxsel/selection_types.h"
#include "common/status.h"

namespace peercache::auxsel {

/// Compile-time contract for per-node persistent auxiliary-selection state
/// (paper Sec. IV-C): the incremental counterpart of the one-shot selectors,
/// mirroring how `overlay::Overlay` abstracts the DHT backends.
///
/// A maintainer lives as long as its node and survives churn rounds. The
/// experiment engine feeds it *deltas* — peers joining, peers departing,
/// observed-frequency changes drained from the node's FrequencyTable, and
/// core-neighbor set replacements after stabilization — and asks for a
/// fresh `Reselect()` once per recompute round. The contract every backend
/// must honor:
///
///  * Deltas are cheap: O(b·k) per Pastry mutation (gain-tree root-path
///    recompute), O(1) bookkeeping per Chord mutation with the expensive
///    work deferred to `Reselect` (jump-table weight refresh in O(n·b), or
///    a full rebuild only when membership/cores changed).
///  * `Reselect()` is cost-equal to running the from-scratch selector
///    (`SelectPastryGreedy` / `SelectChordFast`) on `FreshInput()` — the
///    engine audits exactly this on deterministic rounds, and the
///    differential tests replay randomized delta sequences against it.
///  * With no deltas since the last call, `Reselect()` returns the cached
///    selection without recomputing anything.
///  * All frequencies are absolute values (the table's current estimate),
///    not increments, so a delta stream is idempotent per (id, value) pair
///    and the maintainer never drifts from the table it shadows.
///
/// Operation semantics:
///  * `OnPeerJoin(id, freq)` — peer becomes known with frequency `freq`;
///    joining an already-tracked peer updates its frequency. Self and
///    nonpositive-frequency non-cores are ignored.
///  * `OnPeerLeave(id)` — peer departed: its frequency contribution is
///    dropped. If the peer is currently a core neighbor it remains a
///    zero-frequency neighbor until `SetCores` removes it (the DHT's core
///    tables, not the selector, decide core membership).
///  * `OnFrequencyDelta(id, freq)` — the observed frequency is now `freq`;
///    `freq <= 0` on a non-core removes the peer (the bounded
///    FrequencyTable's Forget fallback arrives this way).
///  * `SetCores(ids)` — replaces the core-neighbor set; returns how many
///    per-peer core flags actually changed.
///  * `FreshInput()` — the maintainer's logical state as a deterministic
///    (id-sorted) SelectionInput, for audits and differential tests.
template <typename M>
concept Maintainer = requires(M m, const M& cm, uint64_t id, double freq,
                              std::vector<uint64_t> cores) {
  { cm.self_id() } -> std::convertible_to<uint64_t>;
  { cm.k() } -> std::convertible_to<int>;
  { cm.bits() } -> std::convertible_to<int>;
  { m.OnPeerJoin(id, freq) } -> std::same_as<Status>;
  { m.OnPeerLeave(id) } -> std::same_as<Status>;
  { m.OnFrequencyDelta(id, freq) } -> std::same_as<Status>;
  { m.SetCores(std::move(cores)) } -> std::same_as<Result<size_t>>;
  { m.Reselect() } -> std::same_as<Result<Selection>>;
  { cm.FreshInput() } -> std::same_as<SelectionInput>;
  { cm.total_frequency() } -> std::same_as<double>;
};

}  // namespace peercache::auxsel

#endif  // PEERCACHE_AUXSEL_MAINTAINER_H_
