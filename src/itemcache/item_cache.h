#ifndef PEERCACHE_ITEMCACHE_ITEM_CACHE_H_
#define PEERCACHE_ITEMCACHE_ITEM_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace peercache::itemcache {

/// A per-node item cache with TTL expiry — the classic DHT acceleration the
/// paper positions peer caching against (Sec. I): cached copies go stale the
/// moment the authoritative item changes, and the cache only helps the
/// specific items it holds.
///
/// Values are modeled as opaque version counters: a cached version older
/// than the authoritative one is a stale answer.
class ItemCache {
 public:
  /// Creates a cache holding at most `capacity` entries (0 = unbounded)
  /// with the given TTL in simulation seconds.
  ItemCache(size_t capacity, double ttl_seconds);

  /// Result of a cache probe.
  struct Probe {
    bool hit = false;
    uint64_t version = 0;  ///< Cached version when hit.
  };

  /// Looks `key` up at time `now`; expired entries miss (and are evicted).
  Probe Lookup(uint64_t key, double now);

  /// Stores the authoritative version fetched at `now`. Evicts the entry
  /// closest to expiry when at capacity.
  void Store(uint64_t key, uint64_t version, double now);

  /// Drops a specific key (e.g., on an invalidation message).
  void Invalidate(uint64_t key);

  void Clear();
  size_t size() const { return entries_.size(); }
  double ttl() const { return ttl_; }

  // Statistics (monotone counters).
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  struct Entry {
    uint64_t version;
    double expires_at;
  };

  size_t capacity_;
  double ttl_;
  std::unordered_map<uint64_t, Entry> entries_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

/// The authoritative item store: per-item version counters that advance on
/// every update. Stale-answer accounting compares cached versions against
/// this.
class AuthoritativeItems {
 public:
  explicit AuthoritativeItems(size_t n_items) : versions_(n_items, 0) {}

  size_t n_items() const { return versions_.size(); }
  uint64_t Version(size_t item) const { return versions_[item]; }
  /// An update (e.g., a mobile host moved): bumps the version.
  void Update(size_t item) { ++versions_[item]; }
  uint64_t total_updates() const {
    uint64_t total = 0;
    for (uint64_t v : versions_) total += v;
    return total;
  }

 private:
  std::vector<uint64_t> versions_;
};

}  // namespace peercache::itemcache

#endif  // PEERCACHE_ITEMCACHE_ITEM_CACHE_H_
