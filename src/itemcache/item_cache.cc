#include "itemcache/item_cache.h"

#include <cassert>

namespace peercache::itemcache {

ItemCache::ItemCache(size_t capacity, double ttl_seconds)
    : capacity_(capacity), ttl_(ttl_seconds) {
  assert(ttl_seconds > 0);
}

ItemCache::Probe ItemCache::Lookup(uint64_t key, double now) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return {};
  }
  if (it->second.expires_at <= now) {
    entries_.erase(it);
    ++misses_;
    return {};
  }
  ++hits_;
  return Probe{true, it->second.version};
}

void ItemCache::Store(uint64_t key, uint64_t version, double now) {
  if (capacity_ != 0 && entries_.size() >= capacity_ &&
      entries_.find(key) == entries_.end()) {
    // Evict the entry closest to expiry (cheapest reasonable policy for a
    // TTL cache; LRU would need an access list for little modeling gain).
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.expires_at < victim->second.expires_at) victim = it;
    }
    entries_.erase(victim);
  }
  entries_[key] = Entry{version, now + ttl_};
}

void ItemCache::Invalidate(uint64_t key) { entries_.erase(key); }

void ItemCache::Clear() { entries_.clear(); }

}  // namespace peercache::itemcache
