#ifndef PEERCACHE_ITEMCACHE_STRATEGY_COMPARE_H_
#define PEERCACHE_ITEMCACHE_STRATEGY_COMPARE_H_

#include <cstddef>
#include <cstdint>

#include "common/status.h"

namespace peercache::itemcache {

/// Costs of one acceleration strategy under an item-update workload.
struct StrategyCosts {
  double avg_hops = 0;         ///< Average overlay hops per lookup.
  double stale_fraction = 0;   ///< Fraction of answers that were stale.
  double update_messages = 0;  ///< Overlay messages per item update
                               ///< (replica maintenance).
  double extra_state = 0;      ///< Extra per-node state (items or pointers).
};

/// Workload for the three-way comparison. Models the paper's motivating
/// scenario (Sec. I): a name service where peers are stable but items
/// (bindings) update frequently.
struct StrategyCompareConfig {
  int bits = 32;
  int n_nodes = 256;
  size_t n_items = 1024;
  double alpha = 1.2;
  uint64_t seed = 1;
  double duration_s = 3600;
  double query_rate = 50;          ///< Lookups per second, systemwide.
  double item_update_period_s = 120;  ///< Mean time between updates of EACH
                                      ///< item... divided by n_items gives
                                      ///< the systemwide update rate.
  double cache_ttl_s = 60;         ///< Item-cache TTL.
  size_t cache_capacity = 64;      ///< Item-cache entries per node.
  int aux_k = 8;                   ///< Peer-cache pointer budget.
  int replicas_per_hot_item = 8;   ///< Replication degree of hot items.
  size_t replicated_items = 64;    ///< How many top items are replicated.
};

/// Side-by-side costs of the three strategies on identical workloads:
///
///  * item caching — per-node TTL caches; hits are 0-hop but can be stale;
///  * replication  — the hottest items are eagerly replicated at the nodes
///    clockwise-preceding their owner (a Beehive-style placement: lookups
///    terminate early at any replica); every item update must refresh every
///    replica (update_messages), answers are never stale;
///  * peer caching — this paper: k auxiliary pointers per node; answers are
///    always authoritative, updates cost nothing extra.
struct StrategyComparison {
  StrategyCosts item_cache;
  StrategyCosts replication;
  StrategyCosts peer_cache;
  StrategyCosts baseline;  ///< Plain routing, no acceleration.
};

Result<StrategyComparison> CompareStrategies(
    const StrategyCompareConfig& config);

}  // namespace peercache::itemcache

#endif  // PEERCACHE_ITEMCACHE_STRATEGY_COMPARE_H_
