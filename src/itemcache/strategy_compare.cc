#include "itemcache/strategy_compare.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "auxsel/chord_fast.h"
#include "auxsel/selection_types.h"
#include "chord/chord_network.h"
#include "common/random.h"
#include "common/zipf.h"
#include "itemcache/item_cache.h"
#include "workload/workload.h"

namespace peercache::itemcache {

namespace {

using chord::ChordNetwork;
using chord::ChordParams;

/// Replica placement for the hottest items: the owner plus the next
/// `replicas - 1` nodes counterclockwise (so queries routing clockwise
/// toward the key hit a replica before the owner).
class ReplicaIndex {
 public:
  ReplicaIndex(const ChordNetwork& net, const workload::ItemSpace& items,
               const std::vector<size_t>& hot_items, int replicas) {
    std::vector<uint64_t> ring = net.LiveNodeIds();  // sorted
    for (size_t item : hot_items) {
      auto owner = net.ResponsibleNode(items.ItemKey(item));
      if (!owner.ok()) continue;
      auto it = std::lower_bound(ring.begin(), ring.end(), owner.value());
      size_t idx = static_cast<size_t>(it - ring.begin());
      for (int r = 0; r < replicas; ++r) {
        size_t pos = (idx + ring.size() - static_cast<size_t>(r)) %
                     ring.size();
        holders_[item].insert(ring[pos]);
        per_node_items_[ring[pos]] += 1;
      }
    }
  }

  bool Holds(uint64_t node, size_t item) const {
    auto it = holders_.find(item);
    return it != holders_.end() && it->second.count(node) > 0;
  }

  size_t ReplicaCount(size_t item) const {
    auto it = holders_.find(item);
    return it == holders_.end() ? 0 : it->second.size();
  }

  double AvgExtraStatePerNode(size_t n_nodes) const {
    double total = 0;
    for (const auto& [node, count] : per_node_items_) total += count;
    return n_nodes == 0 ? 0 : total / static_cast<double>(n_nodes);
  }

 private:
  std::unordered_map<size_t, std::unordered_set<uint64_t>> holders_;
  std::unordered_map<uint64_t, int> per_node_items_;
};

/// Hops until the query reaches any node holding the answer: walks the
/// route and stops at the first replica holder.
int HopsToReplica(const ChordNetwork& net, const ReplicaIndex& replicas,
                  uint64_t origin, uint64_t key, size_t item, bool* found) {
  auto route = net.Lookup(origin, key);
  *found = false;
  if (!route.ok() || !route->success) return 0;
  *found = true;
  int hop = 0;
  for (uint64_t node : route->path) {
    if (replicas.Holds(node, item)) return hop;
    ++hop;
  }
  return route->hops;
}

}  // namespace

Result<StrategyComparison> CompareStrategies(
    const StrategyCompareConfig& config) {
  ChordParams params;
  params.bits = config.bits;
  ChordNetwork net(params);
  Rng rng(MixHash64(config.seed ^ 0x57a7));
  const uint64_t space =
      config.bits == 64 ? ~uint64_t{0} : (uint64_t{1} << config.bits);
  std::vector<uint64_t> nodes =
      rng.SampleDistinct(space, static_cast<size_t>(config.n_nodes));
  for (uint64_t id : nodes) {
    if (Status s = net.AddNode(id); !s.ok()) return s;
  }
  net.StabilizeAll();

  workload::ItemSpace items(config.bits, config.n_items,
                            MixHash64(config.seed ^ 0x17e8));
  ZipfDistribution zipf(config.n_items, config.alpha);
  AuthoritativeItems truth(config.n_items);

  // Peer caching setup: learn frequencies, install optimal auxiliaries.
  {
    Rng warm(MixHash64(config.seed ^ 0x3aa3));
    for (int q = 0; q < 40 * config.n_nodes; ++q) {
      uint64_t origin =
          nodes[static_cast<size_t>(warm.UniformU64(nodes.size()))];
      size_t item = zipf.Sample(warm) - 1;
      auto owner = net.ResponsibleNode(items.ItemKey(item));
      if (owner.ok() && owner.value() != origin) {
        net.GetNode(origin)->frequencies.Record(owner.value());
      }
    }
  }
  std::unordered_map<uint64_t, std::vector<uint64_t>> optimal_aux;
  for (uint64_t id : nodes) {
    auxsel::SelectionInput input;
    input.bits = config.bits;
    input.self_id = id;
    input.k = config.aux_k;
    input.core_ids = net.CoreNeighborIds(id);
    input.peers = net.GetNode(id)->frequencies.Snapshot(id);
    auto sel = auxsel::SelectChordFast(input);
    if (sel.ok()) optimal_aux[id] = sel->chosen;
  }

  // Replication setup: the globally hottest items.
  std::vector<size_t> hot_items;
  for (size_t r = 1; r <= config.replicated_items && r <= config.n_items;
       ++r) {
    hot_items.push_back(r - 1);  // rank r item index under the identity list
  }
  ReplicaIndex replicas(net, items, hot_items, config.replicas_per_hot_item);

  // Item caches.
  std::unordered_map<uint64_t, ItemCache> caches;
  for (uint64_t id : nodes) {
    caches.emplace(id, ItemCache(config.cache_capacity, config.cache_ttl_s));
  }

  StrategyComparison out;
  uint64_t base_hops = 0, base_lookups = 0;
  uint64_t ic_hops = 0, ic_answers = 0, ic_stale = 0;
  uint64_t rep_hops = 0, rep_lookups = 0;
  uint64_t pc_hops = 0, pc_lookups = 0;
  uint64_t updates = 0;

  Rng query_rng(MixHash64(config.seed ^ 0x9e11));
  Rng update_rng(MixHash64(config.seed ^ 0x1e57));
  double now = 0;
  const double update_rate =
      static_cast<double>(config.n_items) / config.item_update_period_s;
  double next_update = update_rng.Exponential(1.0 / update_rate);

  while (now < config.duration_s) {
    now += query_rng.Exponential(1.0 / config.query_rate);
    while (next_update < now) {
      truth.Update(static_cast<size_t>(
          update_rng.UniformU64(config.n_items)));
      ++updates;
      next_update += update_rng.Exponential(1.0 / update_rate);
    }

    const uint64_t origin =
        nodes[static_cast<size_t>(query_rng.UniformU64(nodes.size()))];
    const size_t item = zipf.Sample(query_rng) - 1;
    const uint64_t key = items.ItemKey(item);

    // Baseline: plain routing (auxiliaries cleared).
    (void)net.SetAuxiliaries(origin, {});
    if (auto route = net.Lookup(origin, key); route.ok() && route->success) {
      base_hops += static_cast<uint64_t>(route->hops);
      ++base_lookups;
    }

    // Item caching: probe local cache, else route and fill.
    {
      ItemCache& cache = caches.at(origin);
      auto probe = cache.Lookup(key, now);
      if (probe.hit) {
        ++ic_answers;
        if (probe.version != truth.Version(item)) ++ic_stale;
      } else if (auto route = net.Lookup(origin, key);
                 route.ok() && route->success) {
        ic_hops += static_cast<uint64_t>(route->hops);
        ++ic_answers;
        cache.Store(key, truth.Version(item), now);
      }
    }

    // Replication: route, stop early at any replica holder.
    {
      bool found = false;
      int hops = HopsToReplica(net, replicas, origin, key, item, &found);
      if (found) {
        rep_hops += static_cast<uint64_t>(hops);
        ++rep_lookups;
      }
    }

    // Peer caching: route with the optimal auxiliaries installed.
    {
      auto it = optimal_aux.find(origin);
      (void)net.SetAuxiliaries(origin,
                               it == optimal_aux.end() ? std::vector<uint64_t>{}
                                                       : it->second);
      if (auto route = net.Lookup(origin, key);
          route.ok() && route->success) {
        pc_hops += static_cast<uint64_t>(route->hops);
        ++pc_lookups;
      }
    }
  }

  auto avg = [](uint64_t total, uint64_t count) {
    return count == 0 ? 0.0
                      : static_cast<double>(total) / static_cast<double>(count);
  };

  out.baseline.avg_hops = avg(base_hops, base_lookups);

  out.item_cache.avg_hops = avg(ic_hops, ic_answers);
  out.item_cache.stale_fraction =
      ic_answers == 0 ? 0.0
                      : static_cast<double>(ic_stale) /
                            static_cast<double>(ic_answers);
  out.item_cache.extra_state = static_cast<double>(config.cache_capacity);

  out.replication.avg_hops = avg(rep_hops, rep_lookups);
  // Every update of a replicated item refreshes all its replicas.
  double weighted_replicas = 0;
  for (size_t item : hot_items) {
    weighted_replicas += static_cast<double>(replicas.ReplicaCount(item));
  }
  out.replication.update_messages =
      config.n_items == 0
          ? 0
          : weighted_replicas / static_cast<double>(config.n_items);
  out.replication.extra_state =
      replicas.AvgExtraStatePerNode(static_cast<size_t>(config.n_nodes));

  out.peer_cache.avg_hops = avg(pc_hops, pc_lookups);
  out.peer_cache.extra_state = static_cast<double>(config.aux_k);

  (void)updates;
  return out;
}

}  // namespace peercache::itemcache
