// Latency-SLO sweep: tail lookup latency (p50/p90/p99/p99.9) of the
// unconstrained optimal selection versus the QoS-constrained selection
// (paper Secs. IV-D, V-C) on all three overlays, under a heterogeneous
// link-latency scenario.
//
// The default scenario is a deterministic "satellite" ping matrix: a small
// fraction of nodes (1 in 16) sit behind expensive links — every link
// touching a satellite costs --satellite-rtt ms, while links between
// ordinary nodes draw a hash-uniform RTT from a moderate band. Items homed
// on satellites drag the latency tail: the routing metric knows nothing
// about link cost, so an unconstrained route to a satellite pays several
// ordinary hops before the final expensive one.
//
// The QoS run derives per-peer delay bounds from the latency model:
// observed peers whose base RTT from the selecting node exceeds
// --qos-rtt-threshold (set between the ordinary band and the satellite
// RTT) are bounded to --qos-delay-bound estimated hops, forcing the
// selector to hold them as (near-)direct pointers. Queries to satellites
// then pay the expensive link exactly once instead of a full route on top
// of it — trading a little average-hops efficiency for tail latency, which
// this sweep quantifies against a p99 budget.
//
// The emitted document carries no wall-clock fields at all: regenerated
// output is byte-identical at any thread count apart from the echoed
// `threads` config knob (CI diffs threads 1 vs 4 after stripping it, like
// every other telemetry document), and
// tests/experiments/latency_percentiles_golden_test.cc replays rows
// against results/latency_percentiles.json.

#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "experiments/generic_experiment.h"
#include "latency_scenario.h"

namespace {

using peercache::CeilLog2;
using peercache::JsonWriter;
using peercache::Result;
using peercache::Status;
using peercache::bench::BenchArgs;
using peercache::bench::BuildSatelliteMatrix;
using namespace peercache::experiments;

struct SloArgs {
  BenchArgs bench;
  double p99_budget_ms = 540.0;
  double satellite_rtt_ms = 200.0;
  double qos_rtt_threshold_ms = 150.0;
  int qos_delay_bound = 0;

  static SloArgs Parse(int argc, char** argv) {
    // Split off the driver-specific flags, then hand the rest to the shared
    // parser (which owns the latency/fault/trace knobs).
    SloArgs args;
    std::vector<char*> rest;
    rest.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--p99-budget") == 0 && i + 1 < argc) {
        args.p99_budget_ms = std::atof(argv[++i]);
      } else if (std::strcmp(argv[i], "--satellite-rtt") == 0 &&
                 i + 1 < argc) {
        args.satellite_rtt_ms = std::atof(argv[++i]);
      } else if (std::strcmp(argv[i], "--qos-rtt-threshold") == 0 &&
                 i + 1 < argc) {
        args.qos_rtt_threshold_ms = std::atof(argv[++i]);
      } else if (std::strcmp(argv[i], "--qos-delay-bound") == 0 &&
                 i + 1 < argc) {
        args.qos_delay_bound = std::atoi(argv[++i]);
      } else {
        rest.push_back(argv[i]);
      }
    }
    args.bench = BenchArgs::Parse(static_cast<int>(rest.size()), rest.data());
    return args;
  }
};

ExperimentConfig MakeConfig(const SloArgs& args, const std::string& system,
                            SelectorKind selector) {
  const int n = args.bench.quick ? 128 : 256;
  ExperimentConfig cfg;
  cfg.seed = args.bench.base_seed;
  cfg.n_nodes = n;
  // log n + 4 slots: enough headroom that the QoS run can afford its forced
  // satellite pointers without starving the frequency-optimal picks.
  cfg.k = CeilLog2(static_cast<uint64_t>(n)) + 4;
  cfg.alpha = 1.2;
  cfg.n_items = static_cast<size_t>(n);
  cfg.n_popularity_lists = system == "chord" ? 5 : 1;
  cfg.warmup_queries_per_node = args.bench.quick ? 100 : 300;
  cfg.measure_queries_per_node = args.bench.quick ? 100 : 200;
  cfg.threads = args.bench.threads;
  args.bench.ApplyObservability(cfg);
  if (!cfg.latency.enabled()) {
    // Default satellite scenario: the matrix (attached per run, it depends
    // on the sampled node set) carries the base RTTs; jitter turns the
    // model on and decorrelates retransmissions.
    cfg.latency.jitter_ms = 1.0;
    cfg.latency.timeout_ms = 30.0;
  }
  if (selector == SelectorKind::kQos) {
    cfg.qos_rtt_threshold_ms = args.qos_rtt_threshold_ms;
    cfg.qos_delay_bound = args.qos_delay_bound;
  }
  return cfg;
}

/// One (system, selector) measurement plus the figures the table and the
/// JSON document report.
struct SloRow {
  std::string system;
  const char* selector = "";
  ExperimentConfig config;
  RunResult result;
};

template <typename Policy>
Status RunSystem(const SloArgs& args, const std::string& system,
                 std::vector<SloRow>& rows) {
  for (const SelectorKind selector :
       {SelectorKind::kOptimal, SelectorKind::kQos}) {
    SloRow row;
    row.system = system;
    row.selector = SelectorKindName(selector);
    row.config = MakeConfig(args, system, selector);
    if (row.config.latency_matrix.empty() &&
        !(row.config.latency.base_rtt_ms > 0.0 ||
          row.config.latency.coord_scale_ms > 0.0)) {
      // No user-supplied latency geometry: attach the satellite matrix over
      // this policy's sampled node set.
      const SeedPlan seeds = Policy::MakeSeedPlan(row.config.seed);
      row.config.latency_matrix = BuildSatelliteMatrix(
          SampleNodeIds(row.config, seeds.ids), row.config.bits,
          args.satellite_rtt_ms);
    }
    Result<RunResult> run = RunStable<Policy>(row.config, selector);
    if (!run.ok()) return run.status();
    row.result = std::move(run).value();
    rows.push_back(std::move(row));
  }
  return Status::Ok();
}

}  // namespace

int main(int argc, char** argv) {
  const SloArgs args = SloArgs::Parse(argc, argv);

  std::vector<SloRow> rows;
  if (Status s = RunSystem<ChordPolicy>(args, "chord", rows); !s.ok()) {
    std::fprintf(stderr, "chord failed: %s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = RunSystem<PastryPolicy>(args, "pastry", rows); !s.ok()) {
    std::fprintf(stderr, "pastry failed: %s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = RunSystem<KademliaPolicy>(args, "kademlia", rows); !s.ok()) {
    std::fprintf(stderr, "kademlia failed: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("Latency SLO sweep (p99 budget %.1f ms, QoS bound %d for "
              "RTT > %.1f ms)\n",
              args.p99_budget_ms, args.qos_delay_bound,
              args.qos_rtt_threshold_ms);
  std::printf("%-9s %-8s %9s %10s %10s %10s %11s %7s\n", "system", "selector",
              "avg hops", "p50 ms", "p90 ms", "p99 ms", "p99.9 ms", "budget");
  std::printf(
      "--------------------------------------------------------------------"
      "--------\n");
  for (const SloRow& row : rows) {
    const peercache::LogHistogram& h = row.result.latency_histogram;
    std::printf("%-9s %-8s %9.3f %10.3f %10.3f %10.3f %11.3f %7s\n",
                row.system.c_str(), row.selector, row.result.avg_hops,
                h.Percentile(0.50), h.Percentile(0.90), h.Percentile(0.99),
                h.Percentile(0.999),
                h.Percentile(0.99) <= args.p99_budget_ms ? "met" : "MISSED");
  }
  // Headline: does the QoS-bounded selection beat the unconstrained optimal
  // on tail latency for each overlay?
  for (size_t i = 0; i + 1 < rows.size(); i += 2) {
    const double opt = rows[i].result.latency_histogram.Percentile(0.99);
    const double qos = rows[i + 1].result.latency_histogram.Percentile(0.99);
    std::printf("%s: qos p99 %.3f ms vs optimal p99 %.3f ms (%+.1f%%)\n",
                rows[i].system.c_str(), qos, opt,
                opt > 0.0 ? 100.0 * (qos - opt) / opt : 0.0);
  }

  if (!args.bench.json_out.empty()) {
    JsonWriter w;
    w.BeginObject();
    w.Key("schema_version");
    w.Int(kTelemetrySchemaVersion);
    w.Key("generator");
    w.String("latency_percentiles");
    w.Key("kind");
    w.String("latency_slo");
    w.Key("base_seed");
    w.UInt(args.bench.base_seed);
    w.Key("quick");
    w.Bool(args.bench.quick);
    w.Key("p99_budget_ms");
    w.Double(args.p99_budget_ms);
    w.Key("rows");
    w.BeginArray();
    for (const SloRow& row : rows) {
      const peercache::LogHistogram& h = row.result.latency_histogram;
      w.BeginObject();
      w.Key("system");
      w.String(row.system);
      w.Key("selector");
      w.String(row.selector);
      w.Key("config");
      WriteConfigJson(w, row.config);
      w.Key("avg_hops");
      w.Double(row.result.avg_hops);
      w.Key("success_rate");
      w.Double(row.result.success_rate);
      w.Key("latency");
      WriteLatencyJson(w, h);
      w.Key("meets_p99_budget");
      w.Bool(h.Percentile(0.99) <= args.p99_budget_ms);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    Status st = WriteStringToFile(args.bench.json_out, w.TakeString() + "\n");
    if (!st.ok()) {
      std::fprintf(stderr, "json-out failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("latency telemetry written to %s\n",
                args.bench.json_out.c_str());
  }
  return 0;
}
