// Reproduces paper Figure 5: Chord, percentage reduction in average lookup
// hops versus the frequency-oblivious baseline, as the overlay size n varies
// with k = log2(n), in a stable system and under heavy churn.
//
// Paper's setup: zipf(1.2) item popularity, five popularity lists assigned
// to nodes at random; churn = exponential 900 s mean alive/dead durations,
// 4 queries/s, stabilization every 25 s, auxiliary recomputation every
// 62.5 s. Paper's reported trend: improvement grows with n, up to ~57%
// stable and ~25% under churn at n = 1024.

#include <cstdio>

#include "bench_util.h"
#include "experiments/generic_experiment.h"

namespace {

using peercache::CeilLog2;
using peercache::bench::AveragedRow;
using peercache::bench::BenchArgs;
using peercache::bench::FigureRow;
using peercache::bench::PrintFigureHeader;
using peercache::bench::PrintFigureRow;
using namespace peercache::experiments;

const char* PaperReference(int n, bool churn) {
  if (!churn) {
    switch (n) {
      case 128:
        return "~40%";
      case 256:
        return "~45%";
      case 512:
        return "~52%";
      case 1024:
        return "~57%";
    }
  } else {
    switch (n) {
      case 128:
        return "~10%";
      case 256:
        return "~15%";
      case 512:
        return "~20%";
      case 1024:
        return "~25%";
    }
  }
  return "-";
}

ExperimentConfig MakeConfig(uint64_t seed, int n,
                            const peercache::bench::BenchArgs& args) {
  ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.n_nodes = n;
  cfg.k = CeilLog2(static_cast<uint64_t>(n));
  cfg.alpha = 1.2;
  cfg.n_items = static_cast<size_t>(n);
  cfg.n_popularity_lists = 5;  // per-node rankings, paper's Chord setup
  cfg.warmup_queries_per_node = args.quick ? 100 : 300;
  cfg.measure_queries_per_node = args.quick ? 100 : 200;
  cfg.threads = args.threads;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  peercache::bench::FigureJson json("fig5_chord_vary_n", "chord", args);
  const int sizes[] = {128, 256, 512, 1024};

  PrintFigureHeader("Figure 5 — Chord: improvement vs n (k = log2 n), stable",
                    "n");
  for (int n : sizes) {
    if (args.quick && n > 256) continue;
    auto compare = [&](uint64_t seed) {
      return CompareStable<ChordPolicy>(MakeConfig(seed, n, args));
    };
    char label[64];
    std::snprintf(label, sizeof(label), "n=%-5d stable", n);
    FigureRow row = AveragedRow(args, compare, label,
                                PaperReference(n, /*churn=*/false));
    PrintFigureRow(row);
    json.AddRow(row, "stable", MakeConfig(args.base_seed, n, args));
  }

  PrintFigureHeader(
      "\nFigure 5 — Chord: improvement vs n (k = log2 n), high churn", "n");
  for (int n : sizes) {
    if (args.quick && n > 256) continue;
    auto compare = [&](uint64_t seed) {
      ChurnConfig churn;  // paper's parameters by default
      churn.warmup_s = args.quick ? 1200 : 3600;
      churn.measure_s = args.quick ? 1200 : 3600;
      return CompareChurn<ChordPolicy>(MakeConfig(seed, n, args), churn);
    };
    char label[64];
    std::snprintf(label, sizeof(label), "n=%-5d churn", n);
    FigureRow row = AveragedRow(args, compare, label,
                                PaperReference(n, /*churn=*/true));
    PrintFigureRow(row);
    json.AddRow(row, "churn", MakeConfig(args.base_seed, n, args));
  }
  return json.WriteIfRequested(args);
}
