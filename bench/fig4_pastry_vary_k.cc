// Reproduces paper Figure 4: Pastry, percentage reduction in average lookup
// hops versus the frequency-oblivious baseline, as the auxiliary budget k
// varies over {log n, 2 log n, 3 log n} at n = 1024.
//
// Paper's reported trend: improvement *increases* with k (from ~50% to ~60%
// at alpha=1.2) — an artifact of FreePastry's locality-aware routing, which
// our simulator reproduces: among equal prefix progress, the proximity-
// closest candidate is taken, so extra oblivious entries rarely shorten
// routes while optimal entries keep adding long prefix jumps.

#include <cstdio>

#include "bench_util.h"
#include "experiments/generic_experiment.h"

namespace {

using peercache::bench::AveragedRow;
using peercache::bench::BenchArgs;
using peercache::bench::FigureRow;
using peercache::bench::PrintFigureHeader;
using peercache::bench::PrintFigureRow;
using namespace peercache::experiments;

const char* PaperReference(int multiple, double alpha) {
  if (alpha >= 1.0) {
    switch (multiple) {
      case 1:
        return "~50%";
      case 2:
        return "~56%";
      case 3:
        return "~60%";
    }
  } else {
    switch (multiple) {
      case 1:
        return "~27%";
      case 2:
        return "~31%";
      case 3:
        return "~34%";
    }
  }
  return "-";
}

ExperimentConfig MakeConfig(uint64_t seed, int k, double alpha,
                            const BenchArgs& args) {
  const int n = 1024;
  ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.n_nodes = n;
  cfg.k = k;
  cfg.alpha = alpha;
  cfg.n_items = static_cast<size_t>(n);
  cfg.n_popularity_lists = 1;
  cfg.warmup_queries_per_node = args.quick ? 100 : 300;
  cfg.measure_queries_per_node = args.quick ? 100 : 200;
  cfg.threads = args.threads;
  args.ApplyObservability(cfg);
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  peercache::bench::FigureJson json("fig4_pastry_vary_k", "pastry", args);
  peercache::bench::TraceLog traces("pastry");
  const int log_n = 10;
  PrintFigureHeader("Figure 4 — Pastry: improvement vs k (n = 1024)",
                    "k / alpha");
  for (double alpha : {1.2, 0.91}) {
    for (int multiple = 1; multiple <= 3; ++multiple) {
      if (args.quick && multiple == 2) continue;
      const int k = multiple * log_n;
      auto compare = [&](uint64_t seed) {
        return CompareStable<PastryPolicy>(MakeConfig(seed, k, alpha, args));
      };
      char label[64];
      std::snprintf(label, sizeof(label), "k=%dlogn=%-3d a=%.2f", multiple, k,
                    alpha);
      FigureRow row =
          AveragedRow(args, compare, label, PaperReference(multiple, alpha));
      PrintFigureRow(row);
      traces.AddRow(row);
      json.AddRow(row, "stable", MakeConfig(args.base_seed, k, alpha, args));
    }
  }
  const int json_rc = json.WriteIfRequested(args);
  const int trace_rc = traces.WriteIfRequested(args);
  return json_rc != 0 ? json_rc : trace_rc;
}
