// Selection-phase scaling of the parallel experiment engine: runs the
// stable-mode experiment at several thread counts and reports wall-clock
// time and speedup per phase. The per-node auxiliary-selection loop is the
// dominant cost at large n (the paper's O(nkb) Pastry greedy and
// O(n(b + k·log b)·log n) Chord jump-table DP run once per node), and every
// thread count produces bit-identical results — the speedup is free.
//
//   $ ./parallel_scaling                 # chord + pastry, n = 2048
//   $ ./parallel_scaling --n 4096 --threads-list 1,2,4,8
//
// The acceptance bar this driver demonstrates: >= 2x selection-phase
// speedup at 4 threads for n >= 2048.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/bits.h"
#include "common/json_writer.h"
#include "common/logging.h"
#include "experiments/generic_experiment.h"
#include "experiments/json_report.h"

using namespace peercache;
using namespace peercache::experiments;

namespace {

struct Args {
  int n = 2048;
  int warmup = 200;
  int measure = 50;
  uint64_t seed = 1;
  std::vector<int> threads_list = {1, 2, 4};
  std::string json_out;

  static Args Parse(int argc, char** argv) {
    Args a;
    for (int i = 1; i < argc; ++i) {
      auto next = [&](const char* flag) -> const char* {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "%s needs a value\n", flag);
          std::exit(2);
        }
        return argv[++i];
      };
      if (!std::strcmp(argv[i], "--n")) {
        a.n = std::atoi(next("--n"));
      } else if (!std::strcmp(argv[i], "--seed")) {
        a.seed = static_cast<uint64_t>(std::atoll(next("--seed")));
      } else if (!std::strcmp(argv[i], "--warmup")) {
        a.warmup = std::atoi(next("--warmup"));
      } else if (!std::strcmp(argv[i], "--measure")) {
        a.measure = std::atoi(next("--measure"));
      } else if (!std::strcmp(argv[i], "--threads-list")) {
        a.threads_list.clear();
        std::string list = next("--threads-list");
        for (size_t pos = 0; pos < list.size();) {
          size_t comma = list.find(',', pos);
          if (comma == std::string::npos) comma = list.size();
          a.threads_list.push_back(std::atoi(list.substr(pos).c_str()));
          pos = comma + 1;
        }
      } else if (!std::strcmp(argv[i], "--json-out")) {
        a.json_out = next("--json-out");
      } else if (!std::strcmp(argv[i], "--log-level")) {
        LogLevel level;
        if (!ParseLogLevel(next("--log-level"), &level)) {
          std::fprintf(stderr, "unknown log level\n");
          std::exit(2);
        }
        SetLogLevel(level);
      } else {
        std::fprintf(stderr,
                     "usage: %s [--n N] [--seed S] [--warmup Q] [--measure Q]"
                     " [--threads-list 1,2,4] [--json-out FILE]"
                     " [--log-level LEVEL]\n",
                     argv[0]);
        std::exit(2);
      }
    }
    return a;
  }
};

ExperimentConfig MakeConfig(const Args& args, int threads, int lists) {
  ExperimentConfig cfg;
  cfg.seed = args.seed;
  cfg.n_nodes = args.n;
  cfg.k = CeilLog2(static_cast<uint64_t>(args.n));
  cfg.alpha = 1.2;
  cfg.n_items = static_cast<size_t>(args.n);
  cfg.n_popularity_lists = lists;
  cfg.warmup_queries_per_node = args.warmup;
  cfg.measure_queries_per_node = args.measure;
  cfg.threads = threads;
  return cfg;
}

template <typename RunFn>
int RunSystem(const char* name, const Args& args, int lists,
              const RunFn& run, JsonWriter& json) {
  std::printf("%s, n=%d, k=%d, optimal selector\n", name, args.n,
              CeilLog2(static_cast<uint64_t>(args.n)));
  std::printf("%8s %12s %9s %12s %12s %10s\n", "threads", "selection",
              "speedup", "warmup", "measure", "avg hops");

  double serial_selection = 0.0;
  double serial_hops = 0.0;
  bool bar_met = true;
  for (size_t i = 0; i < args.threads_list.size(); ++i) {
    const int threads = args.threads_list[i];
    auto result = run(MakeConfig(args, threads, lists));
    if (!result.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    if (i == 0) {
      serial_selection = result->selection_seconds;
      serial_hops = result->avg_hops;
    } else if (result->avg_hops != serial_hops) {
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: threads=%d avg_hops %.17g != "
                   "%.17g\n",
                   threads, result->avg_hops, serial_hops);
      return 1;
    }
    const double speedup = result->selection_seconds > 0
                               ? serial_selection / result->selection_seconds
                               : 0.0;
    if (threads >= 4 && speedup < 2.0) bar_met = false;
    std::printf("%8d %11.3fs %8.2fx %11.3fs %11.3fs %10.3f\n", threads,
                result->selection_seconds, speedup, result->warmup_seconds,
                result->measure_seconds, result->avg_hops);
    json.BeginObject();
    json.Key("system");
    json.String(name);
    json.Key("threads");
    json.Int(threads);
    json.Key("selection_seconds");
    json.Double(result->selection_seconds);
    json.Key("selection_speedup");
    json.Double(speedup);
    json.Key("warmup_seconds");
    json.Double(result->warmup_seconds);
    json.Key("measure_seconds");
    json.Double(result->measure_seconds);
    json.Key("avg_hops");
    json.Double(result->avg_hops);
    json.EndObject();
  }
  std::printf("selection-phase speedup bar (>=2x at >=4 threads): %s\n\n",
              bar_met ? "met" : "NOT met");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = Args::Parse(argc, argv);

  JsonWriter json;
  json.BeginObject();
  json.Key("schema_version");
  json.Int(kTelemetrySchemaVersion);
  json.Key("generator");
  json.String("parallel_scaling");
  json.Key("kind");
  json.String("scaling");
  json.Key("n");
  json.Int(args.n);
  json.Key("seed");
  json.UInt(args.seed);
  json.Key("rows");
  json.BeginArray();

  int rc = RunSystem("chord stable", args, /*lists=*/5,
                     [](const ExperimentConfig& cfg) {
                       return RunStable<ChordPolicy>(cfg, SelectorKind::kOptimal);
                     },
                     json);
  if (rc == 0) {
    rc = RunSystem("pastry stable", args, /*lists=*/1,
                   [](const ExperimentConfig& cfg) {
                     return RunStable<PastryPolicy>(cfg, SelectorKind::kOptimal);
                   },
                   json);
  }
  if (rc != 0) return rc;

  json.EndArray();
  json.EndObject();
  if (!args.json_out.empty()) {
    Status st = WriteStringToFile(args.json_out, json.TakeString() + "\n");
    if (!st.ok()) {
      std::fprintf(stderr, "json-out failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("telemetry written to %s\n", args.json_out.c_str());
  }
  return 0;
}
