// Reproduces paper Figure 6: Chord, percentage reduction in average lookup
// hops versus the frequency-oblivious baseline, as the auxiliary budget k
// varies over {log n, 2 log n, 3 log n} at n = 1024, stable and under churn.
//
// Paper's reported trend: improvement *decreases* with k (churn: ~26% at
// k = log n down to ~17% at k = 3 log n) — with more pointers, random
// choices get luckier, and under churn a larger auxiliary set accumulates
// more stale entries between recomputations.

#include <cstdio>

#include "bench_util.h"
#include "experiments/generic_experiment.h"

namespace {

using peercache::bench::AveragedRow;
using peercache::bench::BenchArgs;
using peercache::bench::FigureRow;
using peercache::bench::PrintFigureHeader;
using peercache::bench::PrintFigureRow;
using namespace peercache::experiments;

const char* PaperReference(int multiple, bool churn) {
  if (!churn) {
    switch (multiple) {
      case 1:
        return "~57%";
      case 2:
        return "~50%";
      case 3:
        return "~45%";
    }
  } else {
    switch (multiple) {
      case 1:
        return "~26%";
      case 2:
        return "~21%";
      case 3:
        return "~17%";
    }
  }
  return "-";
}

ExperimentConfig MakeConfig(uint64_t seed, int k,
                            const peercache::bench::BenchArgs& args) {
  ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.n_nodes = 1024;
  cfg.k = k;
  cfg.alpha = 1.2;
  cfg.n_items = 1024;
  cfg.n_popularity_lists = 5;
  cfg.warmup_queries_per_node = args.quick ? 100 : 300;
  cfg.measure_queries_per_node = args.quick ? 100 : 200;
  cfg.threads = args.threads;
  args.ApplyObservability(cfg);
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  peercache::bench::FigureJson json("fig6_chord_vary_k", "chord", args);
  peercache::bench::TraceLog traces("chord");
  const int log_n = 10;

  PrintFigureHeader("Figure 6 — Chord: improvement vs k (n = 1024), stable",
                    "k");
  for (int multiple = 1; multiple <= 3; ++multiple) {
    if (args.quick && multiple == 2) continue;
    auto compare = [&](uint64_t seed) {
      return CompareStable<ChordPolicy>(MakeConfig(seed, multiple * log_n, args));
    };
    char label[64];
    std::snprintf(label, sizeof(label), "k=%dlogn=%-3d stable", multiple,
                  multiple * log_n);
    FigureRow row = AveragedRow(args, compare, label,
                                PaperReference(multiple, /*churn=*/false));
    PrintFigureRow(row);
    traces.AddRow(row);
    json.AddRow(row, "stable",
                MakeConfig(args.base_seed, multiple * log_n, args));
  }

  PrintFigureHeader(
      "\nFigure 6 — Chord: improvement vs k (n = 1024), high churn", "k");
  for (int multiple = 1; multiple <= 3; ++multiple) {
    if (args.quick && multiple == 2) continue;
    // Committed rows predate the incremental maintainer path: pin the
    // legacy full-rebuild rounds (see fig5_chord_vary_n.cc).
    auto churn_config = [&](uint64_t seed) {
      ExperimentConfig cfg = MakeConfig(seed, multiple * log_n, args);
      cfg.freq_mode = FreqMode::kPool;
      return cfg;
    };
    auto compare = [&](uint64_t seed) {
      ChurnConfig churn;
      churn.warmup_s = args.quick ? 1200 : 3600;
      churn.measure_s = args.quick ? 1200 : 3600;
      return CompareChurn<ChordPolicy>(churn_config(seed), churn);
    };
    char label[64];
    std::snprintf(label, sizeof(label), "k=%dlogn=%-3d churn", multiple,
                  multiple * log_n);
    FigureRow row = AveragedRow(args, compare, label,
                                PaperReference(multiple, /*churn=*/true));
    PrintFigureRow(row);
    traces.AddRow(row);
    json.AddRow(row, "churn", churn_config(args.base_seed));
  }
  const int json_rc = json.WriteIfRequested(args);
  const int trace_rc = traces.WriteIfRequested(args);
  return json_rc != 0 ? json_rc : trace_rc;
}
