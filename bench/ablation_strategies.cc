// Reproduces the paper's *motivating* trade-off (Sec. I / Sec. II-C, the
// argument against item caching and Beehive-style replication): as items
// update faster, item caches serve more stale answers and replication pays
// more maintenance messages, while pointer caching keeps fresh 1-2-hop
// lookups at zero update cost.

#include <cstdio>

#include "bench_util.h"
#include "itemcache/strategy_compare.h"

int main(int argc, char** argv) {
  using peercache::itemcache::CompareStrategies;
  using peercache::itemcache::StrategyCompareConfig;
  peercache::bench::BenchArgs args =
      peercache::bench::BenchArgs::Parse(argc, argv);

  // Strategy comparisons have their own result shape (no three-policy
  // Comparison), so this binary emits its own row schema.
  peercache::JsonWriter json;
  json.BeginObject();
  json.Key("schema_version");
  json.Int(peercache::experiments::kTelemetrySchemaVersion);
  json.Key("generator");
  json.String("ablation_strategies");
  json.Key("kind");
  json.String("strategy_ablation");
  json.Key("base_seed");
  json.UInt(args.base_seed);
  json.Key("rows");
  json.BeginArray();

  std::printf(
      "Ablation — acceleration strategies vs item update period\n"
      "(Chord n=256, 1024 items, zipf 1.2; item cache TTL 60 s, cap 64;\n"
      " replication: top-64 items x 8 replicas; peer cache k=8)\n\n");
  std::printf("%-18s %10s %12s %12s %12s %14s\n", "update period",
              "baseline", "item-cache", "item stale", "replication",
              "peer-cache");
  std::printf("%s\n", std::string(84, '-').c_str());

  for (double period : {30.0, 120.0, 600.0, 3600.0}) {
    StrategyCompareConfig cfg;
    cfg.seed = args.base_seed;
    cfg.item_update_period_s = period;
    cfg.duration_s = args.quick ? 600 : 3600;
    auto cmp = CompareStrategies(cfg);
    if (!cmp.ok()) {
      std::fprintf(stderr, "failed: %s\n", cmp.status().ToString().c_str());
      return 1;
    }
    std::printf("%11.0f s/item %7.2f hp %9.2f hp %11.1f%% %9.2f hp %11.2f hp\n",
                period, cmp->baseline.avg_hops, cmp->item_cache.avg_hops,
                100 * cmp->item_cache.stale_fraction,
                cmp->replication.avg_hops, cmp->peer_cache.avg_hops);
    json.BeginObject();
    json.Key("update_period_s");
    json.Double(period);
    json.Key("baseline_hops");
    json.Double(cmp->baseline.avg_hops);
    json.Key("item_cache_hops");
    json.Double(cmp->item_cache.avg_hops);
    json.Key("item_cache_stale_fraction");
    json.Double(cmp->item_cache.stale_fraction);
    json.Key("replication_hops");
    json.Double(cmp->replication.avg_hops);
    json.Key("peer_cache_hops");
    json.Double(cmp->peer_cache.avg_hops);
    json.EndObject();
  }
  std::printf(
      "\n(item-cache hops exclude its 0-hop hits; its cost is staleness."
      "\n replication update cost: every item update fans out to every "
      "replica.)\n");

  json.EndArray();
  json.EndObject();
  if (!args.json_out.empty()) {
    peercache::Status st = peercache::experiments::WriteStringToFile(
        args.json_out, json.TakeString() + "\n");
    if (!st.ok()) {
      std::fprintf(stderr, "json-out failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("telemetry written to %s\n", args.json_out.c_str());
  }
  return 0;
}
