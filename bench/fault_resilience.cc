// Fault-resilience sweep (docs/RESILIENCE.md): routes the stable n = 1024
// Chord, Pastry and Kademlia workloads under increasing per-attempt
// message-drop probability, with the resilient retry policy on and off, and
// reports the delivery rate and the retry overhead (extra hop-budget spent
// on failed attempts).
//
// The headline claim this driver demonstrates — and the fault-injection
// test suite asserts — is that at a 20% per-attempt drop rate the retry
// policy keeps lookup success at or above 99%, while the no-retry baseline
// degrades to roughly the per-route survival probability (~0.8^hops).
//
//   $ ./fault_resilience                 # full sweep (n = 1024)
//   $ ./fault_resilience --quick         # n = 256 smoke run
//   $ ./fault_resilience --json-out f.json
//   $ ./fault_resilience --corpus-out results/fault_corpus.json
//
// --corpus-out regenerates the committed fault-corpus document replayed by
// tests/experiments/fault_corpus_test.cc; its bytes are thread-count
// invariant, so regeneration is safe on any machine.

#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/bits.h"
#include "common/json_writer.h"
#include "experiments/fault_corpus.h"
#include "experiments/generic_experiment.h"

namespace {

using peercache::CeilLog2;
using peercache::JsonWriter;
using peercache::Result;
using peercache::Status;
using peercache::bench::BenchArgs;
using namespace peercache::experiments;

ExperimentConfig MakeConfig(const BenchArgs& args, int n, double drop_prob,
                            bool retry) {
  ExperimentConfig cfg;
  cfg.seed = args.base_seed;
  cfg.n_nodes = n;
  cfg.k = CeilLog2(static_cast<uint64_t>(n));
  cfg.n_items = static_cast<size_t>(n);
  cfg.warmup_queries_per_node = args.quick ? 100 : 200;
  cfg.measure_queries_per_node = args.quick ? 100 : 200;
  cfg.threads = args.threads;
  cfg.faults = args.faults;
  cfg.faults.drop_prob = drop_prob;
  cfg.faults.retry = retry;
  return cfg;
}

struct SweepRow {
  std::string system;
  double drop_prob = 0.0;
  bool retry = true;
  RunResult run;
};

template <typename Policy>
Status RunPoint(const BenchArgs& args, const char* system, int n,
                double drop_prob, bool retry, std::vector<SweepRow>& rows) {
  Result<RunResult> run =
      RunStable<Policy>(MakeConfig(args, n, drop_prob, retry),
                        SelectorKind::kOptimal);
  if (!run.ok()) return run.status();
  SweepRow row;
  row.system = system;
  row.drop_prob = drop_prob;
  row.retry = retry;
  row.run = std::move(*run);
  const ResilienceStats& r = row.run.resilience;
  std::printf("%-7s drop=%.2f retry=%-3s  delivered %6llu/%6llu (%6.2f%%)  "
              "retries %7llu  budget-exhausted %5llu\n",
              system, drop_prob, retry ? "on" : "off",
              static_cast<unsigned long long>(r.delivered),
              static_cast<unsigned long long>(r.lookups),
              100.0 * r.SuccessRate(),
              static_cast<unsigned long long>(r.retries),
              static_cast<unsigned long long>(r.budget_exhausted));
  rows.push_back(std::move(row));
  return Status::Ok();
}

}  // namespace

int main(int argc, char** argv) {
  // --corpus-out is this driver's extra knob; strip it before the shared
  // parser sees the argument list.
  std::string corpus_out;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--corpus-out") == 0 && i + 1 < argc) {
      corpus_out = argv[++i];
    } else {
      rest.push_back(argv[i]);
    }
  }
  BenchArgs args = BenchArgs::Parse(static_cast<int>(rest.size()),
                                    rest.data());

  if (!corpus_out.empty()) {
    Result<std::string> doc = FaultCorpusDocument(args.threads);
    if (!doc.ok()) {
      std::fprintf(stderr, "corpus generation failed: %s\n",
                   doc.status().ToString().c_str());
      return 1;
    }
    Status st = WriteStringToFile(corpus_out, *doc + "\n");
    if (!st.ok()) {
      std::fprintf(stderr, "corpus-out failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("fault corpus written to %s\n", corpus_out.c_str());
    return 0;
  }

  const int n = args.quick ? 256 : 1024;
  const double sweep[] = {0.05, 0.1, 0.2, 0.3};
  std::printf("Fault resilience — stable n=%d, k=log2(n), optimal policy\n",
              n);
  std::vector<SweepRow> rows;
  for (double p : sweep) {
    for (bool retry : {true, false}) {
      if (Status s = RunPoint<ChordPolicy>(args, "chord", n, p, retry, rows);
          !s.ok()) {
        std::fprintf(stderr, "chord run failed: %s\n", s.ToString().c_str());
        return 1;
      }
      if (Status s = RunPoint<PastryPolicy>(args, "pastry", n, p, retry,
                                            rows);
          !s.ok()) {
        std::fprintf(stderr, "pastry run failed: %s\n", s.ToString().c_str());
        return 1;
      }
      if (Status s = RunPoint<KademliaPolicy>(args, "kademlia", n, p, retry,
                                              rows);
          !s.ok()) {
        std::fprintf(stderr, "kademlia run failed: %s\n",
                     s.ToString().c_str());
        return 1;
      }
    }
  }

  // The acceptance gate: at 20% drops the retry policy must deliver at
  // least 99% of lookups, and it must beat the no-retry baseline by a wide
  // margin on both overlays.
  int failures = 0;
  for (const SweepRow& with : rows) {
    if (with.drop_prob != 0.2 || !with.retry) continue;
    const double retry_rate = with.run.resilience.SuccessRate();
    double baseline_rate = 1.0;
    for (const SweepRow& without : rows) {
      if (without.system == with.system && without.drop_prob == 0.2 &&
          !without.retry) {
        baseline_rate = without.run.resilience.SuccessRate();
      }
    }
    const bool ok = retry_rate >= 0.99 && retry_rate > baseline_rate + 0.05;
    std::printf("%-7s drop=0.20: retry %.4f vs no-retry %.4f  [%s]\n",
                with.system.c_str(), retry_rate, baseline_rate,
                ok ? "OK" : "FAIL");
    if (!ok) ++failures;
  }

  if (!args.json_out.empty()) {
    JsonWriter w;
    w.BeginObject();
    w.Key("schema_version");
    w.Int(kTelemetrySchemaVersion);
    w.Key("generator");
    w.String("fault_resilience");
    w.Key("kind");
    w.String("fault_sweep");
    w.Key("n_nodes");
    w.Int(n);
    w.Key("rows");
    w.BeginArray();
    for (const SweepRow& row : rows) {
      w.BeginObject();
      w.Key("system");
      w.String(row.system);
      w.Key("drop_prob");
      w.Double(row.drop_prob);
      w.Key("retry");
      w.Bool(row.retry);
      w.Key("avg_hops");
      w.Double(row.run.avg_hops);
      w.Key("resilience");
      WriteResilienceJson(w, row.run.resilience);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    Status st = WriteStringToFile(args.json_out, w.TakeString() + "\n");
    if (!st.ok()) {
      std::fprintf(stderr, "json-out failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("sweep telemetry written to %s\n", args.json_out.c_str());
  }
  return failures == 0 ? 0 : 1;
}
