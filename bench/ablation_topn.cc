// Ablation (paper Sec. III, implementation considerations): how much
// solution quality is lost when a node tracks only the top-n most frequent
// peers with a Space-Saving summary instead of exact counts?
//
// Runs the stable Chord experiment with decreasing frequency-table
// capacities. The expected shape: zipf concentration makes small summaries
// nearly free — most of the benefit of auxiliary caching survives even with
// a capacity of a few dozen entries.

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "experiments/generic_experiment.h"

namespace {

using peercache::bench::AveragedRow;
using peercache::bench::BenchArgs;
using peercache::bench::FigureRow;
using namespace peercache::experiments;

ExperimentConfig MakeConfig(uint64_t seed, size_t capacity,
                            const BenchArgs& args) {
  ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.n_nodes = 512;
  cfg.k = 9;
  cfg.alpha = 1.2;
  cfg.n_items = 512;
  cfg.n_popularity_lists = 5;
  cfg.frequency_capacity = capacity;
  cfg.warmup_queries_per_node = args.quick ? 100 : 300;
  cfg.measure_queries_per_node = args.quick ? 100 : 200;
  cfg.threads = args.threads;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  peercache::bench::FigureJson json("ablation_topn", "chord", args);

  std::printf(
      "Ablation — frequency-table capacity (Space-Saving top-n) vs lookup "
      "improvement\nChord stable, n=512, k=9, alpha=1.2\n");
  std::printf("%-12s %12s %12s %14s\n", "capacity", "oblivious", "optimal",
              "improvement");
  std::printf("%s\n", std::string(56, '-').c_str());

  for (size_t capacity : {size_t{8}, size_t{16}, size_t{32}, size_t{64},
                          size_t{128}, size_t{0}}) {
    auto compare = [&](uint64_t seed) {
      return CompareStable<ChordPolicy>(MakeConfig(seed, capacity, args));
    };
    char cap_label[32];
    if (capacity == 0) {
      std::snprintf(cap_label, sizeof(cap_label), "exact");
    } else {
      std::snprintf(cap_label, sizeof(cap_label), "%zu", capacity);
    }
    FigureRow row = AveragedRow(args, compare, cap_label, "-");
    if (!row.detail.has_value()) continue;
    std::printf("%-12s %9.3f hp %9.3f hp %12.1f %%\n", cap_label,
                row.oblivious_hops, row.optimal_hops, row.improvement_pct);
    json.AddRow(row, "stable", MakeConfig(args.base_seed, capacity, args));
  }
  return json.WriteIfRequested(args);
}
