// Routing-layer microbenchmark: raw lookups per second through each
// overlay's LookupInto hot path, over stable tables and over churned
// (stale) tables where dead entries force the ping-before-forward liveness
// probes. This is the harness that holds the NodeStore flat-array layout
// (common/node_store.h) to its promise: the measurement phase must be no
// slower than the seed's map/set storage.
//
//   $ ./lookup_throughput                # default sizes
//   $ ./lookup_throughput --quick        # smaller overlay, fewer lookups
//   $ ./lookup_throughput --batch        # add batched-engine rows
//   $ ./lookup_throughput --json-out throughput.json
//
// Lookup outcomes are folded into a checksum printed with every row; it
// depends only on (seed, config), so two builds can be compared for both
// speed and routing equivalence. `--batch` appends extra rows (mode
// suffix "-batched") that route the identical query stream through the
// prefetch-pipelined cursor engine of experiments/batch_engine.h — their
// checksums must match the unbatched rows'. The default document shape
// (four rows) is unchanged so existing schema checks keep passing.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/route_result.h"
#include "experiments/batch_engine.h"
#include "experiments/generic_experiment.h"
#include "experiments/json_report.h"

namespace {

using namespace peercache;
using namespace peercache::experiments;

struct ThroughputRow {
  std::string system;
  std::string mode;  // "stable" | "churn"
  int n_nodes = 0;
  uint64_t lookups = 0;
  double seconds = 0;
  double lookups_per_sec = 0;
  double mean_hops = 0;
  double success_rate = 0;
  uint64_t checksum = 0;
};

/// Routes `lookups` uniform-random queries from uniform-random live
/// origins through one reused RouteResult and times the loop. When
/// `batched` is set, the identical query stream goes through the window-16
/// batched cursor engine instead; outcomes (and so the checksum) are
/// engine-independent.
template <typename Policy>
ThroughputRow MeasureCase(const char* mode, bool churned, int n_nodes,
                          uint64_t lookups, uint64_t seed,
                          bool batched = false) {
  ExperimentConfig cfg;
  cfg.n_nodes = n_nodes;
  cfg.seed = seed;
  const SeedPlan seeds = Policy::MakeSeedPlan(seed);
  typename Policy::Network net = Policy::MakeNetwork(cfg, seeds);
  for (uint64_t id : SampleNodeIds(cfg, seeds.ids)) {
    if (auto s = net.AddNode(id); !s.ok()) {
      std::fprintf(stderr, "AddNode failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }
  }
  net.StabilizeAll();

  if (churned) {
    // Crash a quarter of the membership after tables were built, then
    // stabilize only half of the survivors: the unstabilized half routes
    // over stale tables and pays the dead-entry liveness probes the churn
    // experiments exercise.
    const std::vector<uint64_t> members = net.LiveNodeIds();
    for (size_t i = 0; i < members.size(); i += 4) {
      if (net.live_count() > 2) (void)net.RemoveNode(members[i]);
    }
    const std::vector<uint64_t> survivors = net.LiveNodeIds();
    for (size_t i = 0; i < survivors.size() / 2; ++i) {
      (void)net.StabilizeNode(survivors[i]);
    }
  }

  const std::vector<uint64_t> live = net.LiveNodeIds();
  const uint64_t space = uint64_t{1} << cfg.bits;
  Rng rng(SplitSeed(seeds.measure, 0x10095));

  ThroughputRow row;
  row.system = Policy::kName;
  row.mode = mode;
  row.n_nodes = n_nodes;
  row.lookups = lookups;

  uint64_t sum_hops = 0, successes = 0;
  if (batched) {
    // The same (origin, key) stream, pre-drawn so the timed region is the
    // batched engine alone.
    std::vector<LookupJob> jobs(lookups);
    for (auto& job : jobs) {
      job.origin = live[static_cast<size_t>(rng.UniformU64(live.size()))];
      job.key = rng.UniformU64(space);
    }
    std::vector<BatchLookupResult> results(jobs.size());
    const auto start = std::chrono::steady_clock::now();
    RunBatchedLookups(net, jobs, /*window=*/16, results);
    row.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    const BatchSummary summary = FoldChecksum(results);
    sum_hops = summary.sum_hops;
    successes = summary.successes;
    row.checksum = summary.checksum;
  } else {
    overlay::RouteResult route;  // reused: steady state allocates nothing
    const auto start = std::chrono::steady_clock::now();
    for (uint64_t q = 0; q < lookups; ++q) {
      const uint64_t origin =
          live[static_cast<size_t>(rng.UniformU64(live.size()))];
      const uint64_t key = rng.UniformU64(space);
      if (auto s = net.LookupInto(origin, key, route); !s.ok()) continue;
      sum_hops += static_cast<uint64_t>(route.hops);
      successes += route.success ? 1 : 0;
      row.checksum = MixHash64(row.checksum ^ route.destination ^
                               (static_cast<uint64_t>(route.hops) << 32));
    }
    row.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  }
  row.lookups_per_sec =
      row.seconds > 0 ? static_cast<double>(lookups) / row.seconds : 0;
  row.mean_hops = lookups > 0
                      ? static_cast<double>(sum_hops) /
                            static_cast<double>(lookups)
                      : 0;
  row.success_rate = lookups > 0
                         ? static_cast<double>(successes) /
                               static_cast<double>(lookups)
                         : 0;
  return row;
}

void PrintRow(const ThroughputRow& row) {
  std::printf("%-8s %-8s n=%-6d %9.0f lookups/s  mean_hops=%.3f "
              "success=%5.1f%%  checksum=%016llx\n",
              row.system.c_str(), row.mode.c_str(), row.n_nodes,
              row.lookups_per_sec, row.mean_hops, 100.0 * row.success_rate,
              static_cast<unsigned long long>(row.checksum));
}

void AddRowJson(JsonWriter& w, const ThroughputRow& row) {
  w.BeginObject();
  w.Key("system");
  w.String(row.system);
  w.Key("mode");
  w.String(row.mode);
  w.Key("n_nodes");
  w.Int(row.n_nodes);
  w.Key("lookups");
  w.UInt(row.lookups);
  w.Key("seconds");
  w.Double(row.seconds);
  w.Key("lookups_per_sec");
  w.Double(row.lookups_per_sec);
  w.Key("mean_hops");
  w.Double(row.mean_hops);
  w.Key("success_rate");
  w.Double(row.success_rate);
  w.Key("checksum");
  w.String([&] {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(row.checksum));
    return std::string(buf);
  }());
  w.EndObject();
}

}  // namespace

int main(int argc, char** argv) {
  peercache::bench::BenchArgs args =
      peercache::bench::BenchArgs::Parse(argc, argv);
  const int n = args.quick ? 256 : 1024;
  const uint64_t lookups = args.quick ? 50'000 : 400'000;

  std::printf("lookup throughput: n=%d, %llu lookups per case, seed=%llu\n\n",
              n, static_cast<unsigned long long>(lookups),
              static_cast<unsigned long long>(args.base_seed));

  std::vector<ThroughputRow> rows;
  rows.push_back(MeasureCase<ChordPolicy>("stable", false, n, lookups,
                                          args.base_seed));
  rows.push_back(MeasureCase<ChordPolicy>("churn", true, n, lookups,
                                          args.base_seed));
  rows.push_back(MeasureCase<PastryPolicy>("stable", false, n, lookups,
                                           args.base_seed));
  rows.push_back(MeasureCase<PastryPolicy>("churn", true, n, lookups,
                                           args.base_seed));
  if (args.batch) {
    rows.push_back(MeasureCase<ChordPolicy>("stable-batched", false, n,
                                            lookups, args.base_seed,
                                            /*batched=*/true));
    rows.push_back(MeasureCase<ChordPolicy>("churn-batched", true, n, lookups,
                                            args.base_seed,
                                            /*batched=*/true));
    rows.push_back(MeasureCase<PastryPolicy>("stable-batched", false, n,
                                             lookups, args.base_seed,
                                             /*batched=*/true));
    rows.push_back(MeasureCase<PastryPolicy>("churn-batched", true, n,
                                             lookups, args.base_seed,
                                             /*batched=*/true));
  }
  for (const ThroughputRow& row : rows) PrintRow(row);

  if (!args.json_out.empty()) {
    JsonWriter w;
    w.BeginObject();
    w.Key("schema_version");
    w.Int(kTelemetrySchemaVersion);
    w.Key("generator");
    w.String("lookup_throughput");
    w.Key("kind");
    w.String("microbench");
    w.Key("base_seed");
    w.UInt(args.base_seed);
    w.Key("quick");
    w.Bool(args.quick);
    w.Key("rows");
    w.BeginArray();
    for (const ThroughputRow& row : rows) AddRowJson(w, row);
    w.EndArray();
    w.EndObject();
    Status st = WriteStringToFile(args.json_out, w.TakeString() + "\n");
    if (!st.ok()) {
      std::fprintf(stderr, "json-out failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("\nthroughput telemetry written to %s\n",
                args.json_out.c_str());
  }
  return 0;
}
