// Kademlia backend sweep: percentage reduction in average lookup hops
// versus the frequency-oblivious baseline, as the overlay size n varies
// with k = log2(n), in a stable system and under heavy churn.
//
// The paper evaluates Chord and Pastry only; this driver extends the same
// experiment to the XOR-metric overlay the generic engine gained with the
// Kademlia backend. Setup mirrors the Pastry figures (zipf(1.2) popularity,
// one shared popularity list): Kademlia's prefix-class routing makes hop
// counts directly comparable to Pastry's, so any divergence in the
// improvement trend isolates the effect of the routing geometry rather
// than the workload. Unlike the legacy Chord/Pastry figures, the churn
// rows here use the default incremental (observed-frequency) maintainer
// path — the backend never had a full-rebuild era to stay comparable with.

#include <cstdio>

#include "bench_util.h"
#include "experiments/generic_experiment.h"

namespace {

using peercache::CeilLog2;
using peercache::bench::AveragedRow;
using peercache::bench::BenchArgs;
using peercache::bench::FigureRow;
using peercache::bench::PrintFigureHeader;
using peercache::bench::PrintFigureRow;
using namespace peercache::experiments;

ExperimentConfig MakeConfig(uint64_t seed, int n,
                            const peercache::bench::BenchArgs& args) {
  ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.n_nodes = n;
  cfg.k = CeilLog2(static_cast<uint64_t>(n));
  cfg.alpha = 1.2;
  cfg.n_items = static_cast<size_t>(n);
  cfg.n_popularity_lists = 1;  // one global ranking, as in the Pastry setup
  cfg.warmup_queries_per_node = args.quick ? 100 : 300;
  cfg.measure_queries_per_node = args.quick ? 100 : 200;
  cfg.threads = args.threads;
  args.ApplyObservability(cfg);
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  peercache::bench::FigureJson json("kademlia_vary_n", "kademlia", args);
  peercache::bench::TraceLog traces("kademlia");
  const int sizes[] = {128, 256, 512, 1024};

  PrintFigureHeader(
      "Kademlia: improvement vs n (k = log2 n), stable", "n");
  for (int n : sizes) {
    if (args.quick && n > 256) continue;
    auto compare = [&](uint64_t seed) {
      return CompareStable<KademliaPolicy>(MakeConfig(seed, n, args));
    };
    char label[64];
    std::snprintf(label, sizeof(label), "n=%-5d stable", n);
    FigureRow row = AveragedRow(args, compare, label, "-");
    PrintFigureRow(row);
    traces.AddRow(row);
    json.AddRow(row, "stable", MakeConfig(args.base_seed, n, args));
  }

  PrintFigureHeader(
      "\nKademlia: improvement vs n (k = log2 n), high churn", "n");
  for (int n : sizes) {
    if (args.quick && n > 256) continue;
    auto compare = [&](uint64_t seed) {
      ChurnConfig churn;  // paper's parameters by default
      churn.warmup_s = args.quick ? 1200 : 3600;
      churn.measure_s = args.quick ? 1200 : 3600;
      return CompareChurn<KademliaPolicy>(MakeConfig(seed, n, args), churn);
    };
    char label[64];
    std::snprintf(label, sizeof(label), "n=%-5d churn", n);
    FigureRow row = AveragedRow(args, compare, label, "-");
    PrintFigureRow(row);
    traces.AddRow(row);
    json.AddRow(row, "churn", MakeConfig(args.base_seed, n, args));
  }
  const int json_rc = json.WriteIfRequested(args);
  const int trace_rc = traces.WriteIfRequested(args);
  return json_rc != 0 ? json_rc : trace_rc;
}
