// Ablation — workload sensitivity the paper leaves unspecified: how does
// the improvement depend on the size of the item universe relative to the
// overlay size? Fewer items concentrate more query mass on fewer peers,
// making k pointers cover a larger fraction of the traffic.

#include <cstdio>

#include "bench_util.h"
#include "experiments/chord_experiment.h"
#include "experiments/pastry_experiment.h"

int main(int argc, char** argv) {
  using namespace peercache::experiments;
  peercache::bench::BenchArgs args =
      peercache::bench::BenchArgs::Parse(argc, argv);
  const int n = args.quick ? 256 : 512;
  const int k = args.quick ? 8 : 9;

  std::printf(
      "Ablation — item-universe size vs improvement (n=%d, k=%d, zipf "
      "1.2)\n",
      n, k);
  std::printf("%-12s %16s %16s\n", "items/nodes", "chord improv",
              "pastry improv");
  std::printf("%s\n", std::string(46, '-').c_str());

  for (double ratio : {0.25, 0.5, 1.0, 4.0, 16.0}) {
    double chord_impr = 0, pastry_impr = 0;
    int runs = 0;
    for (int s = 0; s < args.seeds; ++s) {
      ExperimentConfig cfg;
      cfg.seed = args.base_seed + static_cast<uint64_t>(s);
      cfg.n_nodes = n;
      cfg.k = k;
      cfg.alpha = 1.2;
      cfg.n_items = static_cast<size_t>(ratio * n);
      cfg.warmup_queries_per_node = args.quick ? 100 : 300;
      cfg.measure_queries_per_node = args.quick ? 100 : 200;

      cfg.n_popularity_lists = 5;
      auto chord = CompareChordStable(cfg);
      cfg.n_popularity_lists = 1;
      auto pastry = ComparePastryStable(cfg);
      if (!chord.ok() || !pastry.ok()) continue;
      chord_impr += chord->improvement_pct;
      pastry_impr += pastry->improvement_pct;
      ++runs;
    }
    if (runs == 0) continue;
    std::printf("%-12.2f %14.1f %% %14.1f %%\n", ratio, chord_impr / runs,
                pastry_impr / runs);
  }
  return 0;
}
