// Ablation — workload sensitivity the paper leaves unspecified: how does
// the improvement depend on the size of the item universe relative to the
// overlay size? Fewer items concentrate more query mass on fewer peers,
// making k pointers cover a larger fraction of the traffic.

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "experiments/generic_experiment.h"

namespace {

using peercache::bench::AveragedRow;
using peercache::bench::BenchArgs;
using peercache::bench::FigureRow;
using namespace peercache::experiments;

ExperimentConfig MakeConfig(uint64_t seed, int n, int k, double ratio,
                            int lists, const BenchArgs& args) {
  ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.n_nodes = n;
  cfg.k = k;
  cfg.alpha = 1.2;
  cfg.n_items = static_cast<size_t>(ratio * n);
  cfg.n_popularity_lists = lists;
  cfg.warmup_queries_per_node = args.quick ? 100 : 300;
  cfg.measure_queries_per_node = args.quick ? 100 : 200;
  cfg.threads = args.threads;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  peercache::bench::FigureJson json("ablation_items", "chord+pastry", args);
  const int n = args.quick ? 256 : 512;
  const int k = args.quick ? 8 : 9;

  std::printf(
      "Ablation — item-universe size vs improvement (n=%d, k=%d, zipf "
      "1.2)\n",
      n, k);
  std::printf("%-12s %16s %16s\n", "items/nodes", "chord improv",
              "pastry improv");
  std::printf("%s\n", std::string(46, '-').c_str());

  for (double ratio : {0.25, 0.5, 1.0, 4.0, 16.0}) {
    char label[64];
    std::snprintf(label, sizeof(label), "chord items/n=%.2f", ratio);
    FigureRow chord = AveragedRow(
        args,
        [&](uint64_t seed) {
          return CompareStable<ChordPolicy>(MakeConfig(seed, n, k, ratio, 5, args));
        },
        label, "-");
    std::snprintf(label, sizeof(label), "pastry items/n=%.2f", ratio);
    FigureRow pastry = AveragedRow(
        args,
        [&](uint64_t seed) {
          return CompareStable<PastryPolicy>(MakeConfig(seed, n, k, ratio, 1, args));
        },
        label, "-");
    if (!chord.detail.has_value() || !pastry.detail.has_value()) continue;
    std::printf("%-12.2f %14.1f %% %14.1f %%\n", ratio, chord.improvement_pct,
                pastry.improvement_pct);
    json.AddRow(chord, "stable",
                MakeConfig(args.base_seed, n, k, ratio, 5, args));
    json.AddRow(pastry, "stable",
                MakeConfig(args.base_seed, n, k, ratio, 1, args));
  }
  return json.WriteIfRequested(args);
}
