// Microbenchmarks for the selection algorithms themselves, validating the
// paper's complexity claims empirically:
//   * Pastry: O(n·k²) DP vs the O(n·k) greedy (paper Secs. IV-A/IV-B)
//   * Pastry: O(b·k) incremental update vs full recompute (Sec. IV-C)
//   * Chord: O(n²·k) naive DP vs the accelerated concave DP (Secs. V-A/V-B)

#include <benchmark/benchmark.h>

#include <vector>

#include "auxsel/chord_dp.h"
#include "auxsel/chord_fast.h"
#include "auxsel/pastry_dp.h"
#include "auxsel/pastry_greedy.h"
#include "common/random.h"

namespace {

using namespace peercache;
using namespace peercache::auxsel;

SelectionInput MakeInput(int n, int k, uint64_t seed) {
  SelectionInput input;
  input.bits = 32;
  input.k = k;
  Rng rng(seed);
  auto ids = rng.SampleDistinct(uint64_t{1} << 32,
                                static_cast<size_t>(n) + 13);
  input.self_id = ids[0];
  for (int i = 0; i < n; ++i) {
    input.peers.push_back(PeerFreq{
        ids[static_cast<size_t>(i + 1)],
        static_cast<double>(rng.UniformU64(1000)) + 1.0, -1});
  }
  for (int i = 0; i < 12; ++i) {
    input.core_ids.push_back(ids[static_cast<size_t>(n + 1 + i)]);
  }
  return input;
}

void BM_PastryDp(benchmark::State& state) {
  SelectionInput input = MakeInput(static_cast<int>(state.range(0)), 16, 7);
  for (auto _ : state) {
    auto sel = SelectPastryDp(input);
    benchmark::DoNotOptimize(sel);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PastryDp)->RangeMultiplier(2)->Range(128, 4096)->Complexity();

void BM_PastryGreedy(benchmark::State& state) {
  SelectionInput input = MakeInput(static_cast<int>(state.range(0)), 16, 7);
  for (auto _ : state) {
    auto sel = SelectPastryGreedy(input);
    benchmark::DoNotOptimize(sel);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PastryGreedy)->RangeMultiplier(2)->Range(128, 4096)->Complexity();

void BM_PastryIncrementalUpdate(benchmark::State& state) {
  SelectionInput input = MakeInput(static_cast<int>(state.range(0)), 16, 7);
  auto tree = PastryGainTree::FromInput(input);
  Rng rng(99);
  size_t i = 0;
  for (auto _ : state) {
    const auto& peer = input.peers[i++ % input.peers.size()];
    // Re-weight one peer: the paper's O(b·k) incremental maintenance.
    benchmark::DoNotOptimize(tree->UpdateFrequency(
        peer.id, static_cast<double>(rng.UniformU64(1000))));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PastryIncrementalUpdate)
    ->RangeMultiplier(4)
    ->Range(256, 16384)
    ->Complexity();

void BM_PastryFullRebuild(benchmark::State& state) {
  SelectionInput input = MakeInput(static_cast<int>(state.range(0)), 16, 7);
  for (auto _ : state) {
    auto tree = PastryGainTree::FromInput(input);
    benchmark::DoNotOptimize(tree);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PastryFullRebuild)
    ->RangeMultiplier(4)
    ->Range(256, 16384)
    ->Complexity();

void BM_ChordDpNaive(benchmark::State& state) {
  SelectionInput input = MakeInput(static_cast<int>(state.range(0)), 16, 7);
  for (auto _ : state) {
    auto sel = SelectChordDp(input);
    benchmark::DoNotOptimize(sel);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ChordDpNaive)->RangeMultiplier(2)->Range(128, 2048)->Complexity();

void BM_ChordFast(benchmark::State& state) {
  SelectionInput input = MakeInput(static_cast<int>(state.range(0)), 16, 7);
  for (auto _ : state) {
    auto sel = SelectChordFast(input);
    benchmark::DoNotOptimize(sel);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ChordFast)->RangeMultiplier(2)->Range(128, 8192)->Complexity();

}  // namespace

BENCHMARK_MAIN();
