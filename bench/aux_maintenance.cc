// Microbenchmark for the persistent auxiliary maintainers (paper Secs.
// IV-C, V-B): per recompute round, incremental delta application plus
// Reselect() versus the from-scratch selector on the same logical state.
//
// Two delta regimes per overlay and size:
//
//  * stable — membership is fixed; each round re-weights existing peers
//    (observed-frequency drift). Pastry pays O(b·k) per delta on the live
//    gain tree; Chord refreshes the weight planes of its cached jump tables
//    instead of rebuilding the ring geometry. This is the regime where
//    incremental maintenance must beat the full rebuild at n >= 1024.
//  * churn — joins, leaves, and periodic core-set replacement. Chord's
//    structural deltas force plan rebuilds, so the two paths converge; the
//    row demonstrates cost equality holds even when reuse degrades.
//
// Every round asserts the incremental cost equals the fresh selector's cost
// (the engine's audit invariant); any mismatch fails the binary.
//
//   $ ./aux_maintenance                  # full sizes, bar enforced
//   $ ./aux_maintenance --quick --json-out aux.json

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "auxsel/chord_fast.h"
#include "auxsel/chord_maintainer.h"
#include "auxsel/pastry_greedy.h"
#include "auxsel/pastry_maintainer.h"
#include "auxsel/selection_types.h"
#include "common/bits.h"
#include "common/json_writer.h"
#include "common/logging.h"
#include "common/random.h"
#include "experiments/json_report.h"

using namespace peercache;
using namespace peercache::auxsel;

namespace {

constexpr int kBits = 20;  ///< Id length; 2^20 ids keeps draws collision-light.

struct Args {
  bool quick = false;
  uint64_t seed = 1;
  int rounds = 12;
  int deltas = 32;
  std::string json_out;

  static Args Parse(int argc, char** argv) {
    Args a;
    for (int i = 1; i < argc; ++i) {
      auto next = [&](const char* flag) -> const char* {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "%s needs a value\n", flag);
          std::exit(2);
        }
        return argv[++i];
      };
      if (!std::strcmp(argv[i], "--quick")) {
        a.quick = true;
      } else if (!std::strcmp(argv[i], "--seed")) {
        a.seed = static_cast<uint64_t>(std::atoll(next("--seed")));
      } else if (!std::strcmp(argv[i], "--rounds")) {
        a.rounds = std::atoi(next("--rounds"));
      } else if (!std::strcmp(argv[i], "--deltas")) {
        a.deltas = std::atoi(next("--deltas"));
      } else if (!std::strcmp(argv[i], "--json-out")) {
        a.json_out = next("--json-out");
      } else if (!std::strcmp(argv[i], "--log-level")) {
        LogLevel level;
        if (!ParseLogLevel(next("--log-level"), &level)) {
          std::fprintf(stderr, "unknown log level\n");
          std::exit(2);
        }
        SetLogLevel(level);
      } else {
        std::fprintf(stderr,
                     "usage: %s [--quick] [--seed S] [--rounds R]"
                     " [--deltas D] [--json-out FILE] [--log-level LEVEL]\n",
                     argv[0]);
        std::exit(2);
      }
    }
    if (a.quick) a.rounds = std::min(a.rounds, 6);
    return a;
  }
};

struct ScenarioRow {
  const char* system;
  const char* scenario;
  int n;
  int k;
  int rounds;
  int deltas_per_round;
  double inc_ms_per_round;
  double full_ms_per_round;
  double speedup;
  bool cost_equal;
};

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// One (peer id, absolute frequency) mutation; frequency 0 means departure.
struct Delta {
  uint64_t id;
  double freq;
  bool leave;
};

/// Runs `rounds` recompute rounds over one node's maintainer, timing the
/// incremental path (delta application + Reselect) against the fresh path
/// (FreshInput export + one-shot selector — exactly what a full-rebuild
/// round pays), and checking cost equality after every round.
template <typename M, typename FreshFn>
ScenarioRow RunScenario(const char* system, const char* scenario, int n,
                        bool churny, const Args& args, FreshFn fresh) {
  const int k = CeilLog2(static_cast<uint64_t>(n));
  // Seed stream: distinct per (system, scenario, n) but reproducible.
  uint64_t stream = static_cast<uint64_t>(n) * 31 + (churny ? 17 : 0);
  for (const char* p = system; *p; ++p) stream = stream * 131 + *p;
  Rng rng(SplitSeed(args.seed, stream));

  const uint64_t bound = uint64_t{1} << kBits;
  std::set<uint64_t> used;
  auto fresh_id = [&] {
    for (;;) {
      const uint64_t id = rng.UniformU64(bound);
      if (used.insert(id).second) return id;
    }
  };

  const uint64_t self = fresh_id();
  M m(kBits, k, self);
  std::vector<uint64_t> alive;
  alive.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const uint64_t id = fresh_id();
    const double f = 1.0 + static_cast<double>(rng.UniformU64(1000));
    if (!m.OnPeerJoin(id, f).ok()) std::abort();
    alive.push_back(id);
  }
  std::vector<uint64_t> cores;
  for (int i = 0; i < k; ++i) cores.push_back(alive[rng.UniformU64(alive.size())]);
  if (!m.SetCores(cores).ok()) std::abort();
  // Warm to steady state: both paths start from an installed selection.
  if (!m.Reselect().ok()) std::abort();

  ScenarioRow row{system,      scenario, n,   k,    args.rounds,
                  args.deltas, 0.0,      0.0, 0.0, true};
  for (int round = 0; round < args.rounds; ++round) {
    // Draw the round's deltas up front so timing covers only application.
    std::vector<Delta> deltas;
    deltas.reserve(static_cast<size_t>(args.deltas));
    for (int d = 0; d < args.deltas; ++d) {
      if (!churny) {
        // Stable membership: re-weight an existing peer (never to zero).
        const uint64_t id = alive[rng.UniformU64(alive.size())];
        deltas.push_back(
            {id, 1.0 + static_cast<double>(rng.UniformU64(1000)), false});
      } else {
        const uint64_t op = rng.UniformU64(4);
        if (op == 0) {  // join
          const uint64_t id = fresh_id();
          alive.push_back(id);
          deltas.push_back(
              {id, 1.0 + static_cast<double>(rng.UniformU64(1000)), false});
        } else if (op == 1 && alive.size() > static_cast<size_t>(k) + 2) {
          const size_t at = rng.UniformU64(alive.size());
          deltas.push_back({alive[at], 0.0, true});
          alive[at] = alive.back();
          alive.pop_back();
        } else {  // frequency drift
          const uint64_t id = alive[rng.UniformU64(alive.size())];
          deltas.push_back(
              {id, 1.0 + static_cast<double>(rng.UniformU64(1000)), false});
        }
      }
    }
    std::vector<uint64_t> new_cores;
    if (churny && round % 4 == 3) {  // periodic stabilization: cores move
      for (int i = 0; i < k; ++i) {
        new_cores.push_back(alive[rng.UniformU64(alive.size())]);
      }
    }

    const auto inc_start = std::chrono::steady_clock::now();
    for (const Delta& d : deltas) {
      const Status s = d.leave ? m.OnPeerLeave(d.id)
                               : m.OnFrequencyDelta(d.id, d.freq);
      if (!s.ok()) std::abort();
    }
    if (!new_cores.empty() && !m.SetCores(new_cores).ok()) std::abort();
    auto inc = m.Reselect();
    row.inc_ms_per_round += MillisSince(inc_start);
    if (!inc.ok()) {
      std::fprintf(stderr, "incremental Reselect failed: %s\n",
                   inc.status().ToString().c_str());
      std::exit(1);
    }

    const auto full_start = std::chrono::steady_clock::now();
    const SelectionInput input = m.FreshInput();
    auto ref = fresh(input);
    row.full_ms_per_round += MillisSince(full_start);
    if (!ref.ok()) {
      std::fprintf(stderr, "fresh selector failed: %s\n",
                   ref.status().ToString().c_str());
      std::exit(1);
    }

    const double tol = 1e-7 * (1.0 + std::abs(ref->cost));
    if (std::abs(inc->cost - ref->cost) > tol) {
      row.cost_equal = false;
      std::fprintf(stderr,
                   "COST MISMATCH %s %s n=%d round %d: incremental %.17g vs "
                   "fresh %.17g\n",
                   system, scenario, n, round, inc->cost, ref->cost);
    }
  }
  row.inc_ms_per_round /= args.rounds;
  row.full_ms_per_round /= args.rounds;
  row.speedup = row.inc_ms_per_round > 0.0
                    ? row.full_ms_per_round / row.inc_ms_per_round
                    : 0.0;
  return row;
}

void PrintRow(const ScenarioRow& r) {
  std::printf("%-8s %-8s %6d %4d %7d %8d %12.3f %12.3f %8.2fx %6s\n",
              r.system, r.scenario, r.n, r.k, r.rounds, r.deltas_per_round,
              r.inc_ms_per_round, r.full_ms_per_round, r.speedup,
              r.cost_equal ? "yes" : "NO");
}

}  // namespace

int main(int argc, char** argv) {
  Args args = Args::Parse(argc, argv);
  std::vector<int> sizes = args.quick ? std::vector<int>{256}
                                      : std::vector<int>{256, 1024, 2048};

  std::printf(
      "aux_maintenance — incremental maintainer vs from-scratch selector, "
      "per recompute round\n");
  std::printf("%-8s %-8s %6s %4s %7s %8s %12s %12s %9s %6s\n", "system",
              "deltas", "n", "k", "rounds", "ops/rnd", "incr ms/rnd",
              "full ms/rnd", "speedup", "cost=");

  std::vector<ScenarioRow> rows;
  for (int n : sizes) {
    for (bool churny : {false, true}) {
      const char* scenario = churny ? "churn" : "stable";
      rows.push_back(RunScenario<PastryAuxMaintainer>(
          "pastry", scenario, n, churny, args,
          [](const SelectionInput& in) { return SelectPastryGreedy(in); }));
      PrintRow(rows.back());
      rows.push_back(RunScenario<ChordAuxMaintainer>(
          "chord", scenario, n, churny, args,
          [](const SelectionInput& in) { return SelectChordFast(in); }));
      PrintRow(rows.back());
    }
  }

  bool costs_ok = true;
  bool bar_met = true;
  for (const ScenarioRow& r : rows) {
    costs_ok = costs_ok && r.cost_equal;
    if (!args.quick && r.n >= 1024 && !std::strcmp(r.scenario, "stable") &&
        r.speedup <= 1.0) {
      bar_met = false;
    }
  }
  if (!args.quick) {
    std::printf(
        "\nstable-membership bar (incremental beats full rebuild at "
        "n >= 1024): %s\n",
        bar_met ? "met" : "NOT met");
  }
  std::printf("cost equality (incremental == fresh on every round): %s\n",
              costs_ok ? "ok" : "FAILED");

  if (!args.json_out.empty()) {
    JsonWriter json;
    json.BeginObject();
    json.Key("schema_version");
    json.Int(experiments::kTelemetrySchemaVersion);
    json.Key("generator");
    json.String("aux_maintenance");
    json.Key("kind");
    json.String("microbench");
    json.Key("seed");
    json.UInt(args.seed);
    json.Key("quick");
    json.Bool(args.quick);
    json.Key("bits");
    json.Int(kBits);
    json.Key("rows");
    json.BeginArray();
    for (const ScenarioRow& r : rows) {
      json.BeginObject();
      json.Key("system");
      json.String(r.system);
      json.Key("scenario");
      json.String(r.scenario);
      json.Key("n");
      json.Int(r.n);
      json.Key("k");
      json.Int(r.k);
      json.Key("rounds");
      json.Int(r.rounds);
      json.Key("deltas_per_round");
      json.Int(r.deltas_per_round);
      json.Key("incremental_ms_per_round");
      json.Double(r.inc_ms_per_round);
      json.Key("full_ms_per_round");
      json.Double(r.full_ms_per_round);
      json.Key("speedup");
      json.Double(r.speedup);
      json.Key("cost_equal");
      json.Bool(r.cost_equal);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
    Status st =
        experiments::WriteStringToFile(args.json_out, json.TakeString() + "\n");
    if (!st.ok()) {
      std::fprintf(stderr, "json-out failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("telemetry written to %s\n", args.json_out.c_str());
  }
  return costs_ok ? 0 : 1;
}
