// Kademlia backend sweep: percentage reduction in average lookup hops
// versus the frequency-oblivious baseline, as the auxiliary budget k
// varies over {log n, 2 log n, 3 log n} at n = 1024, in a stable system.
//
// Companion to kademlia_vary_n.cc (see the header comment there for why
// the setup mirrors the Pastry figures). The Chord/Pastry versions of this
// sweep (fig4/fig6) show improvement *decreasing* with k — more pointers
// let random choices get luckier — and the XOR geometry is expected to
// follow the same trend since its distance classes coincide with Pastry's
// prefix slices.

#include <cstdio>

#include "bench_util.h"
#include "experiments/generic_experiment.h"

namespace {

using peercache::bench::AveragedRow;
using peercache::bench::BenchArgs;
using peercache::bench::FigureRow;
using peercache::bench::PrintFigureHeader;
using peercache::bench::PrintFigureRow;
using namespace peercache::experiments;

ExperimentConfig MakeConfig(uint64_t seed, int k,
                            const peercache::bench::BenchArgs& args) {
  ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.n_nodes = 1024;
  cfg.k = k;
  cfg.alpha = 1.2;
  cfg.n_items = 1024;
  cfg.n_popularity_lists = 1;
  cfg.warmup_queries_per_node = args.quick ? 100 : 300;
  cfg.measure_queries_per_node = args.quick ? 100 : 200;
  cfg.threads = args.threads;
  args.ApplyObservability(cfg);
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  peercache::bench::FigureJson json("kademlia_vary_k", "kademlia", args);
  peercache::bench::TraceLog traces("kademlia");
  const int log_n = 10;

  PrintFigureHeader(
      "Kademlia: improvement vs k (n = 1024), stable", "k");
  for (int multiple = 1; multiple <= 3; ++multiple) {
    if (args.quick && multiple == 2) continue;
    auto compare = [&](uint64_t seed) {
      return CompareStable<KademliaPolicy>(
          MakeConfig(seed, multiple * log_n, args));
    };
    char label[64];
    std::snprintf(label, sizeof(label), "k=%dlogn=%-3d stable", multiple,
                  multiple * log_n);
    FigureRow row = AveragedRow(args, compare, label, "-");
    PrintFigureRow(row);
    traces.AddRow(row);
    json.AddRow(row, "stable",
                MakeConfig(args.base_seed, multiple * log_n, args));
  }
  const int json_rc = json.WriteIfRequested(args);
  const int trace_rc = traces.WriteIfRequested(args);
  return json_rc != 0 ? json_rc : trace_rc;
}
