// Ablation (paper Secs. IV-D, V-C): what does QoS admission cost?
//
// On random skewed instances, a growing fraction of peers receives a tight
// delay bound. We report the optimal unconstrained Eq. 1 cost, the optimal
// cost subject to the bounds, and how often the bounds are infeasible with
// k pointers. The expected shape: tighter/wider constraint sets push the
// constrained optimum away from the unconstrained one and eventually become
// infeasible.

#include <cstdio>

#include "auxsel/chord_qos.h"
#include "auxsel/chord_dp.h"
#include "auxsel/pastry_greedy.h"
#include "auxsel/pastry_qos.h"
#include "auxsel/selection_types.h"
#include "bench_util.h"
#include "common/random.h"
#include "common/zipf.h"

namespace {

using namespace peercache;
using namespace peercache::auxsel;

SelectionInput MakeInstance(Rng& rng, int n, int k, double bound_fraction,
                            int bound) {
  SelectionInput input;
  input.bits = 32;
  input.k = k;
  ZipfDistribution zipf(static_cast<size_t>(n), 1.2);
  auto ids =
      rng.SampleDistinct(uint64_t{1} << 32, static_cast<size_t>(n) + 11);
  input.self_id = ids[0];
  for (int i = 0; i < n; ++i) {
    PeerFreq p;
    p.id = ids[static_cast<size_t>(i + 1)];
    p.frequency = zipf.Pmf(static_cast<size_t>(i) + 1) * 1e6;
    if (rng.Bernoulli(bound_fraction)) p.delay_bound = bound;
    input.peers.push_back(p);
  }
  for (int i = 0; i < 10; ++i) {
    input.core_ids.push_back(ids[static_cast<size_t>(n + 1 + i)]);
  }
  return input;
}

}  // namespace

int main(int argc, char** argv) {
  peercache::bench::BenchArgs args =
      peercache::bench::BenchArgs::Parse(argc, argv);
  const int n = args.quick ? 100 : 300;
  const int k = 12;
  const int kTrials = args.quick ? 10 : 40;

  // This ablation measures selector costs, not lookup runs, so it emits its
  // own row schema instead of the shared figure document.
  peercache::JsonWriter json;
  json.BeginObject();
  json.Key("schema_version");
  json.Int(peercache::experiments::kTelemetrySchemaVersion);
  json.Key("generator");
  json.String("ablation_qos");
  json.Key("kind");
  json.String("qos_ablation");
  json.Key("n");
  json.Int(n);
  json.Key("k");
  json.Int(k);
  json.Key("trials");
  json.Int(kTrials);
  json.Key("base_seed");
  json.UInt(args.base_seed);
  json.Key("rows");
  json.BeginArray();

  std::printf(
      "Ablation — QoS-constrained vs unconstrained selection "
      "(n=%d, k=%d, zipf 1.2)\n",
      n, k);
  std::printf("%-10s %-8s %14s %14s %12s %12s\n", "system", "bound",
              "frac bounded", "uncon cost", "QoS cost", "infeasible");
  std::printf("%s\n", std::string(76, '-').c_str());

  for (const char* system : {"pastry", "chord"}) {
    for (int bound : {4, 8}) {
      for (double frac : {0.01, 0.02, 0.03}) {
        double uncon_total = 0, qos_total = 0;
        int feasible = 0, infeasible = 0;
        Rng rng(args.base_seed * 977 + static_cast<uint64_t>(bound));
        for (int t = 0; t < kTrials; ++t) {
          SelectionInput input = MakeInstance(rng, n, k, frac, bound);
          if (system[0] == 'p') {
            auto uncon = SelectPastryGreedy(input);
            auto qos = SelectPastryGreedyQos(input);
            if (!uncon.ok()) continue;
            if (!qos.ok()) {
              ++infeasible;
              continue;
            }
            uncon_total += uncon->cost;
            qos_total += qos->cost;
            ++feasible;
          } else {
            auto uncon = SelectChordDp(input);
            auto qos = SelectChordDpQos(input);
            if (!uncon.ok()) continue;
            if (!qos.ok()) {
              ++infeasible;
              continue;
            }
            uncon_total += uncon->cost;
            qos_total += qos->cost;
            ++feasible;
          }
        }
        if (feasible > 0) {
          uncon_total /= feasible;
          qos_total /= feasible;
        }
        std::printf("%-10s %-8d %13.0f%% %14.0f %12.0f %9d/%d\n", system,
                    bound, 100 * frac, uncon_total, qos_total, infeasible,
                    kTrials);
        json.BeginObject();
        json.Key("system");
        json.String(system);
        json.Key("bound");
        json.Int(bound);
        json.Key("bounded_fraction");
        json.Double(frac);
        json.Key("unconstrained_cost");
        json.Double(uncon_total);
        json.Key("qos_cost");
        json.Double(qos_total);
        json.Key("feasible");
        json.Int(feasible);
        json.Key("infeasible");
        json.Int(infeasible);
        json.EndObject();
      }
    }
  }

  json.EndArray();
  json.EndObject();
  if (!args.json_out.empty()) {
    peercache::Status st = peercache::experiments::WriteStringToFile(
        args.json_out, json.TakeString() + "\n");
    if (!st.ok()) {
      std::fprintf(stderr, "json-out failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("telemetry written to %s\n", args.json_out.c_str());
  }
  return 0;
}
