// Bounded-memory frequency-summary sweep: for each overlay, runs the
// stable-mode optimal policy with exact frequency tables and with
// space-saving + count-min sketch tables at several memory tiers, plus
// popularity-drift workloads (rank-shuffle, flash-crowd) and a
// heterogeneous-budget companion sweep (the global auxiliary budget n*k
// redistributed across Pareto node capacities, after Sarshar &
// Roychowdhury, arXiv:cs/0210010). Every variant's installed auxiliary
// sets are re-priced under the exact baseline's captured frequencies, so
// the Eq. 1 column compares selection quality on the true observed
// popularity rather than on each table's own (truncated) view — see
// bench/freq_sketch_scenario.h.
//
//   $ ./freq_sketch                          # full sweep, all overlays
//   $ ./freq_sketch --quick                  # baseline + headline tier only
//   $ ./freq_sketch --json-out results/freq_sketch.json
//
// `--threads T` shards the per-node phases; every reported field except
// the "timing" sub-object is identical at any thread count
// (tests/experiments/freq_sketch_golden_test.cc replays the committed
// stable rows at threads 1 and 4).
//
// The run enforces the headline acceptance gates at generation time: on
// every overlay the headline tier must fit in 1/16 of the exact per-node
// summary bytes while staying within 2% mean hops and 5% Eq. 1 cost of
// exact on the stable workload. A violation still prints and writes the
// document, but the process exits nonzero — a gate-failing document is not
// meant to be committed.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "experiments/json_report.h"
#include "freq_sketch_scenario.h"

namespace {

using namespace peercache;
using namespace peercache::bench;
using namespace peercache::experiments;

void PrintRow(const FreqSketchRow& row) {
  std::printf(
      "%-9s %-15s %-12s g=%.2f  hops=%6.4f (%+.2f%%)  eq1=%7.4f (%+.2f%%)  "
      "%8.1f B/node (x%.3f)  tracked=%.1f\n",
      row.system.c_str(), row.variant.c_str(), row.workload.c_str(),
      row.budget_gamma, row.mean_hops, row.hops_delta_pct, row.eq1_cost,
      row.cost_delta_pct, row.freq_bytes_per_node, row.memory_ratio,
      row.freq_tracked_per_node);
}

void AddRowJson(JsonWriter& w, const FreqSketchRow& row) {
  w.BeginObject();
  w.Key("system");
  w.String(row.system);
  w.Key("variant");
  w.String(row.variant);
  w.Key("workload");
  w.String(row.workload);
  w.Key("budget_gamma");
  w.Double(row.budget_gamma);
  w.Key("top_capacity");
  w.UInt(row.top_capacity);
  w.Key("cm_width");
  w.UInt(row.cm_width);
  w.Key("cm_depth");
  w.Int(row.cm_depth);
  w.Key("mean_hops");
  w.Double(row.mean_hops);
  w.Key("success_rate");
  w.Double(row.success_rate);
  w.Key("eq1_cost");
  w.Double(row.eq1_cost);
  w.Key("freq_bytes_per_node");
  w.Double(row.freq_bytes_per_node);
  w.Key("freq_tracked_per_node");
  w.Double(row.freq_tracked_per_node);
  w.Key("memory_ratio");
  w.Double(row.memory_ratio);
  w.Key("hops_delta_pct");
  w.Double(row.hops_delta_pct);
  w.Key("cost_delta_pct");
  w.Double(row.cost_delta_pct);
  // Wall-clock block: determinism comparisons (CI's threads-1-vs-4 diff)
  // strip this sub-object, like phase_seconds elsewhere.
  w.Key("timing");
  w.BeginObject();
  w.Key("warmup_seconds");
  w.Double(row.warmup_seconds);
  w.Key("selection_seconds");
  w.Double(row.selection_seconds);
  w.Key("measure_seconds");
  w.Double(row.measure_seconds);
  w.EndObject();
  w.EndObject();
}

/// Checks the stable-workload headline tier against the acceptance gates.
/// Returns false (and prints why) on a violation.
bool CheckGates(const FreqSketchRow& headline) {
  bool ok = true;
  if (headline.memory_ratio > kFreqSketchMemoryGate) {
    std::fprintf(stderr,
                 "GATE: %s headline memory ratio %.4f exceeds %.4f\n",
                 headline.system.c_str(), headline.memory_ratio,
                 kFreqSketchMemoryGate);
    ok = false;
  }
  if (headline.hops_delta_pct > kFreqSketchHopsGatePct ||
      headline.hops_delta_pct < -kFreqSketchHopsGatePct) {
    std::fprintf(stderr, "GATE: %s headline hops delta %+.2f%% exceeds %.1f%%\n",
                 headline.system.c_str(), headline.hops_delta_pct,
                 kFreqSketchHopsGatePct);
    ok = false;
  }
  if (headline.cost_delta_pct > kFreqSketchCostGatePct ||
      headline.cost_delta_pct < -kFreqSketchCostGatePct) {
    std::fprintf(stderr,
                 "GATE: %s headline Eq.1 cost delta %+.2f%% exceeds %.1f%%\n",
                 headline.system.c_str(), headline.cost_delta_pct,
                 kFreqSketchCostGatePct);
    ok = false;
  }
  return ok;
}

template <typename Policy>
bool SweepSystem(const BenchArgs& args, std::vector<FreqSketchRow>& rows) {
  const uint64_t seed = args.base_seed;
  const int threads = args.threads;

  // Stable workload: exact baseline, then every sketch tier.
  FreqSketchBaseline base = MeasureFreqSketchBaseline<Policy>(
      seed, threads, workload::DriftKind::kNone);
  PrintRow(base.row);
  rows.push_back(base.row);

  bool gates_ok = true;
  for (int t = 0; t < kFreqSketchTierCount; ++t) {
    if (args.quick && t != kFreqSketchHeadlineTier) continue;
    const FreqSketchTier& tier = kFreqSketchTiers[t];
    FreqSketchRow row = MeasureFreqSketchVariant<Policy>(
        seed, threads, base, tier.label, TierParams(tier),
        workload::DriftKind::kNone, 0.0);
    PrintRow(row);
    if (t == kFreqSketchHeadlineTier) gates_ok = CheckGates(row);
    rows.push_back(std::move(row));
  }

  if (!args.quick) {
    // Heterogeneous budgets: same workload and exact tables, global budget
    // n*k redistributed toward high-capacity nodes. Priced under the same
    // baseline captures (frequencies are selection-independent).
    for (double gamma : {0.75, 1.5}) {
      char label[32];
      std::snprintf(label, sizeof(label), "budget-g%.2f", gamma);
      FreqSketchRow row = MeasureFreqSketchVariant<Policy>(
          seed, threads, base, label, {}, workload::DriftKind::kNone, gamma);
      PrintRow(row);
      rows.push_back(std::move(row));
    }

    // Drift workloads: exact vs the headline tier under each drift kind,
    // priced under that drift's own exact captures.
    for (workload::DriftKind kind : {workload::DriftKind::kRankShuffle,
                                     workload::DriftKind::kFlashCrowd}) {
      FreqSketchBaseline drift_base =
          MeasureFreqSketchBaseline<Policy>(seed, threads, kind);
      PrintRow(drift_base.row);
      rows.push_back(drift_base.row);
      const FreqSketchTier& tier = kFreqSketchTiers[kFreqSketchHeadlineTier];
      FreqSketchRow row = MeasureFreqSketchVariant<Policy>(
          seed, threads, drift_base, tier.label, TierParams(tier), kind, 0.0);
      PrintRow(row);
      rows.push_back(std::move(row));
    }
  }
  return gates_ok;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);

  std::printf(
      "freq sketch sweep: n=%d, items=%zu, lists=%d, warmup=%d, measure=%d, "
      "seed=%llu, threads=%d%s\n\n",
      kFreqSketchNodes, kFreqSketchItems, kFreqSketchLists, kFreqSketchWarmup,
      kFreqSketchMeasure, static_cast<unsigned long long>(args.base_seed),
      args.threads, args.quick ? " (quick)" : "");

  std::vector<FreqSketchRow> rows;
  bool gates_ok = true;
  gates_ok &= SweepSystem<ChordPolicy>(args, rows);
  gates_ok &= SweepSystem<PastryPolicy>(args, rows);
  gates_ok &= SweepSystem<KademliaPolicy>(args, rows);

  if (!args.json_out.empty()) {
    JsonWriter w;
    w.BeginObject();
    w.Key("schema_version");
    w.Int(kTelemetrySchemaVersion);
    w.Key("generator");
    w.String("freq_sketch");
    w.Key("kind");
    w.String("freq_sketch");
    w.Key("base_seed");
    w.UInt(args.base_seed);
    w.Key("quick");
    w.Bool(args.quick);
    w.Key("n_nodes");
    w.Int(kFreqSketchNodes);
    w.Key("n_items");
    w.UInt(kFreqSketchItems);
    w.Key("warmup_queries_per_node");
    w.Int(kFreqSketchWarmup);
    w.Key("measure_queries_per_node");
    w.Int(kFreqSketchMeasure);
    w.Key("drift_period");
    w.Int(kFreqSketchDriftPeriod);
    w.Key("rows");
    w.BeginArray();
    for (const FreqSketchRow& row : rows) AddRowJson(w, row);
    w.EndArray();
    w.EndObject();
    Status st = WriteStringToFile(args.json_out, w.TakeString() + "\n");
    if (!st.ok()) {
      std::fprintf(stderr, "json-out failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("\nfreq-sketch telemetry written to %s\n",
                args.json_out.c_str());
  }

  if (!gates_ok) {
    std::fprintf(stderr,
                 "\nheadline gate violation: do not commit this document\n");
    return 1;
  }
  return 0;
}
