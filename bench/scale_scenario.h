#ifndef PEERCACHE_BENCH_SCALE_SCENARIO_H_
#define PEERCACHE_BENCH_SCALE_SCENARIO_H_

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <type_traits>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "experiments/batch_engine.h"
#include "experiments/generic_experiment.h"
#include "experiments/overlay_policy.h"
#include "pastry/pastry_network.h"

/// The scale-frontier scenario shared by bench/scale_frontier and
/// tests/experiments/scale_frontier_golden_test: build one overlay at
/// n = 2^log2_n via BulkAdd + StabilizeAll, route the same precomputed
/// job list twice — once through the unbatched LookupInto reference loop,
/// once through the batched cursor engine — and report throughput, memory
/// footprint, and routing outcomes. The two passes must agree on every
/// routing outcome (checksum equality is asserted by both callers), so the
/// committed document certifies the batched engine against the reference
/// semantics at every scale point.
namespace peercache::bench {

/// In-flight lookup window of the batched pass. 16 suspended routes keep
/// roughly one table-slice miss per route in flight without thrashing the
/// L1 with cursor state.
inline constexpr int kScaleWindow = 16;

/// Pastry row-fill sampling for the frontier builds (PastryParams::
/// stabilize_sample): exact per-row scans are O(n) per node and quadratic
/// per build, which is prohibitive at 2^20 nodes. 16 evenly spaced probes
/// per row keep build time O(n * bits * 16) at a small cost in row-entry
/// proximity. Fixed here so the bench and the golden replay agree.
inline constexpr int kScaleStabilizeSample = 16;

struct ScaleRow {
  std::string system;
  int log2_n = 0;
  uint64_t n_nodes = 0;
  uint64_t lookups = 0;
  // Deterministic outcome fields (byte-compared by the golden test).
  double mean_hops = 0;
  double success_rate = 0;
  uint64_t checksum = 0;       ///< lookup_throughput's job-order fold.
  double predicted_hops = 0;   ///< 0.5 * log2(n), the O(log n) yardstick.
  double hops_vs_predicted = 0;
  // Memory accounting. table_bytes/arena_bytes are deterministic;
  // bytes_per_node folds in stdlib-dependent hash-index overhead and is
  // excluded from golden byte-comparison.
  double bytes_per_node = 0;
  uint64_t table_bytes = 0;
  uint64_t arena_bytes = 0;
  // Wall-clock fields (the row's "timing" sub-object; never compared).
  double build_seconds = 0;
  double unbatched_seconds = 0;
  double batched_seconds = 0;
  double unbatched_lookups_per_sec = 0;
  double batched_lookups_per_sec = 0;
  double batch_speedup = 0;
  bool checksums_agree = false;
};

/// Draws the job list exactly as bench/lookup_throughput draws its query
/// stream (same RNG stream constant), so the unbatched pass is the
/// reference loop's behaviour verbatim.
inline std::vector<experiments::LookupJob> MakeScaleJobs(
    const std::vector<uint64_t>& live, int bits, uint64_t measure_seed,
    uint64_t lookups) {
  Rng rng(SplitSeed(measure_seed, 0x10095));
  const uint64_t space = uint64_t{1} << bits;
  std::vector<experiments::LookupJob> jobs(lookups);
  for (uint64_t q = 0; q < lookups; ++q) {
    jobs[q].origin = live[static_cast<size_t>(rng.UniformU64(live.size()))];
    jobs[q].key = rng.UniformU64(space);
  }
  return jobs;
}

/// Network construction for the frontier: the policy's standard config
/// mapping, except Pastry gets the sampled row fill (exact scans are
/// quadratic per build at this scale).
template <typename Policy>
typename Policy::Network MakeScaleNetwork(
    const experiments::ExperimentConfig& cfg,
    const experiments::SeedPlan& seeds) {
  if constexpr (std::is_same_v<Policy, experiments::PastryPolicy>) {
    pastry::PastryParams params;
    params.bits = cfg.bits;
    params.frequency_capacity = cfg.frequency_capacity;
    params.leaf_set_half = cfg.leaf_set_half;
    params.stabilize_sample = kScaleStabilizeSample;
    return typename Policy::Network(params, seeds.coords);
  } else {
    return Policy::MakeNetwork(cfg, seeds);
  }
}

/// One frontier point: build, route the job list unbatched then batched,
/// fold both checksums, capture memory. `pool` may be null (serial batched
/// pass); outcomes are identical either way.
template <typename Policy>
ScaleRow MeasureScalePoint(int log2_n, uint64_t lookups, uint64_t seed,
                           ThreadPool* pool) {
  using Clock = std::chrono::steady_clock;
  auto seconds_since = [](Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };

  experiments::ExperimentConfig cfg;
  cfg.n_nodes = 1 << log2_n;
  cfg.seed = seed;
  const experiments::SeedPlan seeds = Policy::MakeSeedPlan(seed);
  typename Policy::Network net = MakeScaleNetwork<Policy>(cfg, seeds);

  ScaleRow row;
  row.system = Policy::kName;
  row.log2_n = log2_n;
  row.n_nodes = uint64_t{1} << log2_n;
  row.lookups = lookups;

  const auto build_start = Clock::now();
  const std::vector<uint64_t> node_ids =
      experiments::SampleNodeIds(cfg, seeds.ids);
  if (auto s = net.BulkAdd(node_ids); !s.ok()) {
    std::fprintf(stderr, "BulkAdd failed: %s\n", s.ToString().c_str());
    std::abort();
  }
  net.StabilizeAll();
  row.build_seconds = seconds_since(build_start);

  const std::vector<uint64_t> live = net.LiveNodeIds();
  const std::vector<experiments::LookupJob> jobs =
      MakeScaleJobs(live, cfg.bits, seeds.measure, lookups);

  // Unbatched reference pass: bench/lookup_throughput's loop verbatim.
  uint64_t ref_checksum = 0, ref_hops = 0, ref_successes = 0;
  {
    overlay::RouteResult route;
    const auto start = Clock::now();
    for (const experiments::LookupJob& job : jobs) {
      if (auto s = net.LookupInto(job.origin, job.key, route); !s.ok()) {
        continue;
      }
      ref_hops += static_cast<uint64_t>(route.hops);
      ref_successes += route.success ? 1 : 0;
      ref_checksum = MixHash64(ref_checksum ^ route.destination ^
                               (static_cast<uint64_t>(route.hops) << 32));
    }
    row.unbatched_seconds = seconds_since(start);
  }

  // Batched pass over the same jobs.
  std::vector<experiments::BatchLookupResult> results(jobs.size());
  {
    const auto start = Clock::now();
    if (pool != nullptr) {
      experiments::RunBatchedLookups(*pool, net, jobs, kScaleWindow, results);
    } else {
      experiments::RunBatchedLookups(net, jobs, kScaleWindow, results);
    }
    row.batched_seconds = seconds_since(start);
  }
  const experiments::BatchSummary batched = experiments::FoldChecksum(results);

  row.checksum = ref_checksum;
  row.checksums_agree = batched.checksum == ref_checksum &&
                        batched.sum_hops == ref_hops &&
                        batched.successes == ref_successes;
  row.mean_hops = lookups > 0 ? static_cast<double>(ref_hops) /
                                    static_cast<double>(lookups)
                              : 0;
  row.success_rate = lookups > 0 ? static_cast<double>(ref_successes) /
                                       static_cast<double>(lookups)
                                 : 0;
  row.predicted_hops = 0.5 * log2_n;
  row.hops_vs_predicted =
      row.predicted_hops > 0 ? row.mean_hops / row.predicted_hops : 0;
  row.unbatched_lookups_per_sec =
      row.unbatched_seconds > 0
          ? static_cast<double>(lookups) / row.unbatched_seconds
          : 0;
  row.batched_lookups_per_sec =
      row.batched_seconds > 0
          ? static_cast<double>(lookups) / row.batched_seconds
          : 0;
  row.batch_speedup = row.unbatched_lookups_per_sec > 0
                          ? row.batched_lookups_per_sec /
                                row.unbatched_lookups_per_sec
                          : 0;

  const overlay::StoreMemoryStats mem = net.MemoryUsage();
  row.bytes_per_node = mem.bytes_per_node;
  row.table_bytes = mem.table_bytes;
  row.arena_bytes = mem.arena_bytes;
  return row;
}

}  // namespace peercache::bench

#endif  // PEERCACHE_BENCH_SCALE_SCENARIO_H_
