// Shared construction of the heterogeneous "satellite" latency scenario
// used by bench/latency_percentiles.cc and replayed byte-for-byte by
// tests/experiments/latency_percentiles_golden_test.cc. Header-only so the
// driver and the golden test cannot drift apart.

#ifndef PEERCACHE_BENCH_LATENCY_SCENARIO_H_
#define PEERCACHE_BENCH_LATENCY_SCENARIO_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/latency.h"
#include "common/random.h"

namespace peercache::bench {

/// Domain-separation salt of the ordinary-pair RTT hash stream (unrelated
/// to the latency model's own coordinate/jitter salts).
inline constexpr uint64_t kPairRttSalt = 0x70616972'2e727474ULL;  // "pair.rtt"

/// Satellites are the nodes in the top 1/16 of the id space (leading 4 bits
/// all set). Clustering them in one prefix arc is deliberate: a pointer at
/// a satellite only attracts keys homed in that arc, so forcing direct
/// satellite pointers (the QoS run) cannot leak expensive hops into routes
/// for ordinary keys — the comparison isolates the destination tail.
inline bool IsLatencySatellite(uint64_t id, int bits) {
  const uint64_t arc = (uint64_t{1} << bits) >> 4;
  return (id & ((uint64_t{1} << bits) - 1)) >= 15 * arc;
}

/// Builds the satellite scenario's pairwise RTTs over the run's node set:
/// 0 on the diagonal, `satellite_rtt` for links touching a satellite, and a
/// symmetric hash-uniform draw from [5, 105) ms otherwise.
inline latency::PingMatrix BuildSatelliteMatrix(
    const std::vector<uint64_t>& ids, int bits, double satellite_rtt) {
  latency::PingMatrix m;
  m.ids = ids;
  const size_t n = ids.size();
  m.rtt_ms.assign(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double rtt;
      if (IsLatencySatellite(ids[i], bits) ||
          IsLatencySatellite(ids[j], bits)) {
        rtt = satellite_rtt;
      } else {
        const uint64_t lo = std::min(ids[i], ids[j]);
        const uint64_t hi = std::max(ids[i], ids[j]);
        const uint64_t h = MixHash64(lo ^ MixHash64(hi ^ kPairRttSalt));
        rtt = 5.0 + 100.0 * (static_cast<double>(h >> 11) * 0x1.0p-53);
      }
      m.rtt_ms[i * n + j] = rtt;
      m.rtt_ms[j * n + i] = rtt;
    }
  }
  return m;
}

}  // namespace peercache::bench

#endif  // PEERCACHE_BENCH_LATENCY_SCENARIO_H_
