#ifndef PEERCACHE_BENCH_FREQ_SKETCH_SCENARIO_H_
#define PEERCACHE_BENCH_FREQ_SKETCH_SCENARIO_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "auxsel/frequency_table.h"
#include "auxsel/selection_types.h"
#include "experiments/experiment_config.h"
#include "experiments/generic_experiment.h"
#include "experiments/overlay_policy.h"
#include "workload/drift.h"

/// The sketch-accuracy scenario shared by bench/freq_sketch and
/// tests/experiments/freq_sketch_golden_test: one stable-mode optimal run
/// per (overlay, frequency-summary variant), all at identical workload
/// seeds, comparing what bounded-memory sketch tables cost against exact
/// tables along three axes — modeled per-node summary memory, measured
/// mean hops, and the Eq. 1 objective of the installed auxiliary sets.
///
/// The Eq. 1 column needs care: a sketch table's snapshot is its truncated
/// top-capacity summary, so the selector's own normalized cost prediction
/// is computed over less tail mass than an exact run's and the two numbers
/// are not comparable. Instead every variant's chosen sets are re-priced
/// under the EXACT baseline's captured frequencies
/// (ExperimentConfig::capture_freq_snapshots): eq1_cost is the mean over
/// nodes of Eq1(exact freqs, variant's chosen) / sum(exact freqs) — the
/// frequency-weighted route length the variant's selections achieve on the
/// true observed popularity. Destination frequencies are
/// routing-independent, so one exact run's captures price every
/// same-workload variant.
namespace peercache::bench {

/// Scenario sizing, pinned so the bench and the golden replay agree. The
/// warmup is long enough that exact tables track several hundred distinct
/// destinations per node — the regime where a 1/16-memory summary is a
/// real compression, not a no-op.
inline constexpr int kFreqSketchNodes = 1024;
inline constexpr size_t kFreqSketchItems = 8192;
inline constexpr int kFreqSketchLists = 5;
inline constexpr int kFreqSketchWarmup = 3000;
inline constexpr int kFreqSketchMeasure = 400;
/// Queries per node per drift epoch: 3400 total queries -> ~13 epochs, so
/// a drift run crosses many rank-shuffles / flash spikes.
inline constexpr int kFreqSketchDriftPeriod = 250;

/// Acceptance gates asserted over the committed document (golden test) and
/// the CI smoke run: the headline tier must fit in 1/16 of the exact
/// per-node summary while keeping mean hops within 2% and the
/// cross-evaluated Eq. 1 cost within 5% of exact, on every overlay.
inline constexpr double kFreqSketchMemoryGate = 1.0 / 16.0;
inline constexpr double kFreqSketchHopsGatePct = 2.0;
inline constexpr double kFreqSketchCostGatePct = 5.0;

/// Sketch sizing tiers swept by the bench. Modeled bytes per node:
/// 64 + top_capacity * 24 + cm_width * cm_depth * 4
/// (FrequencyTable::SummaryMemoryBytes). The last tier is the headline —
/// the one the 1/16 memory gate and the golden replay pin.
struct FreqSketchTier {
  const char* label;
  size_t top_capacity;
  size_t cm_width;
  int cm_depth;
};

inline constexpr FreqSketchTier kFreqSketchTiers[] = {
    {"sketch-quarter", 96, 128, 4},  // ~1/4 of exact
    {"sketch-eighth", 48, 64, 4},    // ~1/8
    {"sketch-16th", 42, 16, 2},      // headline: <= 1/16
};
inline constexpr int kFreqSketchTierCount =
    static_cast<int>(sizeof(kFreqSketchTiers) / sizeof(kFreqSketchTiers[0]));
inline constexpr int kFreqSketchHeadlineTier = kFreqSketchTierCount - 1;

inline auxsel::FreqSketchParams TierParams(const FreqSketchTier& tier) {
  auxsel::FreqSketchParams p;
  p.top_capacity = tier.top_capacity;
  p.cm_width = tier.cm_width;
  p.cm_depth = tier.cm_depth;
  return p;
}

/// One row of the sweep. Everything except the timing fields is a pure
/// function of (seed, config) at any thread count.
struct FreqSketchRow {
  std::string system;
  std::string variant;   ///< "exact", a tier label, or "budget-g<gamma>".
  std::string workload;  ///< "stable", "rank-shuffle", or "flash-crowd".
  double budget_gamma = 0.0;
  uint64_t top_capacity = 0;
  uint64_t cm_width = 0;
  int cm_depth = 0;
  // Deterministic outcome fields (byte-compared by the golden test).
  double mean_hops = 0.0;
  double success_rate = 0.0;
  /// Mean per-node Eq. 1 cost of this run's installed auxiliaries under
  /// the matching exact baseline's captured frequencies, normalized per
  /// node by total captured frequency (a frequency-weighted route length).
  double eq1_cost = 0.0;
  double freq_bytes_per_node = 0.0;
  double freq_tracked_per_node = 0.0;
  // Derived against the matching exact baseline (0 for baseline rows).
  double memory_ratio = 0.0;
  double hops_delta_pct = 0.0;
  double cost_delta_pct = 0.0;
  // Wall-clock fields (the row's "timing" sub-object; never compared).
  double warmup_seconds = 0.0;
  double selection_seconds = 0.0;
  double measure_seconds = 0.0;
};

inline const char* FreqSketchWorkloadName(workload::DriftKind kind) {
  return kind == workload::DriftKind::kNone ? "stable"
                                            : workload::DriftKindName(kind);
}

inline experiments::ExperimentConfig MakeFreqSketchConfig(
    uint64_t seed, int threads, const auxsel::FreqSketchParams& sketch,
    workload::DriftKind drift_kind, double budget_gamma) {
  experiments::ExperimentConfig cfg;
  cfg.n_nodes = kFreqSketchNodes;
  cfg.n_items = kFreqSketchItems;
  cfg.n_popularity_lists = kFreqSketchLists;
  cfg.warmup_queries_per_node = kFreqSketchWarmup;
  cfg.measure_queries_per_node = kFreqSketchMeasure;
  cfg.seed = seed;
  cfg.threads = threads;
  cfg.freq_sketch = sketch;
  cfg.budget_gamma = budget_gamma;
  if (drift_kind != workload::DriftKind::kNone) {
    cfg.drift.kind = drift_kind;
    cfg.drift.period = kFreqSketchDriftPeriod;
  }
  return cfg;
}

/// Eq. 1 under the overlay's own distance estimate.
template <typename Policy>
double EvalPolicyCost(const auxsel::SelectionInput& input,
                      const std::vector<uint64_t>& aux) {
  if constexpr (std::is_same_v<Policy, experiments::ChordPolicy>) {
    return auxsel::EvaluateChordCost(input, aux);
  } else if constexpr (std::is_same_v<Policy, experiments::PastryPolicy>) {
    return auxsel::EvaluatePastryCost(input, aux);
  } else {
    return auxsel::EvaluateKademliaCost(input, aux);
  }
}

/// Mean normalized Eq. 1 cost of `chosen` (RunResult::node_auxiliaries,
/// sorted by node id) under the reference captures (ascending node id).
/// Nodes missing from either side, or with zero captured mass, are
/// skipped; accumulation runs in ascending-id order so the float result is
/// deterministic.
template <typename Policy>
double CrossEq1Cost(
    const std::vector<experiments::FreqSnapshotCapture>& reference,
    const std::vector<std::pair<uint64_t, std::vector<uint64_t>>>& chosen,
    int bits) {
  double sum = 0.0;
  uint64_t nodes = 0;
  size_t c = 0;
  for (const experiments::FreqSnapshotCapture& ref : reference) {
    while (c < chosen.size() && chosen[c].first < ref.node_id) ++c;
    if (c == chosen.size()) break;
    if (chosen[c].first != ref.node_id) continue;
    double total = 0.0;
    for (const auxsel::PeerFreq& p : ref.peers) total += p.frequency;
    if (total <= 0.0) continue;
    auxsel::SelectionInput input;
    input.bits = bits;
    input.self_id = ref.node_id;
    input.peers = ref.peers;
    input.core_ids = ref.core_ids;
    sum += EvalPolicyCost<Policy>(input, chosen[c].second) / total;
    ++nodes;
  }
  return nodes > 0 ? sum / static_cast<double>(nodes) : 0.0;
}

/// An exact-table baseline run plus its captured frequency reference. One
/// baseline prices every same-workload variant.
struct FreqSketchBaseline {
  FreqSketchRow row;
  std::vector<experiments::FreqSnapshotCapture> reference;
};

template <typename Policy>
FreqSketchRow RowFromRun(const experiments::RunResult& run,
                         const char* variant, workload::DriftKind drift_kind,
                         double budget_gamma,
                         const auxsel::FreqSketchParams& sketch) {
  FreqSketchRow row;
  row.system = Policy::kName;
  row.variant = variant;
  row.workload = FreqSketchWorkloadName(drift_kind);
  row.budget_gamma = budget_gamma;
  row.top_capacity = sketch.top_capacity;
  row.cm_width = sketch.enabled() ? sketch.cm_width : 0;
  row.cm_depth = sketch.enabled() ? sketch.cm_depth : 0;
  row.mean_hops = run.avg_hops;
  row.success_rate = run.success_rate;
  row.freq_bytes_per_node = run.freq_summary_bytes_mean;
  row.freq_tracked_per_node = run.freq_tracked_mean;
  row.warmup_seconds = run.warmup_seconds;
  row.selection_seconds = run.selection_seconds;
  row.measure_seconds = run.measure_seconds;
  return row;
}

template <typename Policy>
experiments::RunResult RunOrDie(const experiments::ExperimentConfig& cfg) {
  Result<experiments::RunResult> run =
      experiments::RunStable<Policy>(cfg, experiments::SelectorKind::kOptimal);
  if (!run.ok()) {
    std::fprintf(stderr, "freq_sketch run failed (%s): %s\n", Policy::kName,
                 run.status().ToString().c_str());
    std::abort();
  }
  return std::move(*run);
}

/// The exact-table baseline of one (overlay, workload): runs with snapshot
/// capture on, prices its own selections under its own captures.
template <typename Policy>
FreqSketchBaseline MeasureFreqSketchBaseline(uint64_t seed, int threads,
                                             workload::DriftKind drift_kind) {
  experiments::ExperimentConfig cfg =
      MakeFreqSketchConfig(seed, threads, {}, drift_kind, 0.0);
  cfg.capture_freq_snapshots = true;
  experiments::RunResult run = RunOrDie<Policy>(cfg);
  FreqSketchBaseline base;
  base.row = RowFromRun<Policy>(run, "exact", drift_kind, 0.0, {});
  base.reference = std::move(run.freq_snapshots);
  base.row.eq1_cost = CrossEq1Cost<Policy>(base.reference,
                                           run.node_auxiliaries, cfg.bits);
  return base;
}

/// One non-baseline row (a sketch tier or a heterogeneous-budget run),
/// priced under the baseline's captures and compared against its columns.
template <typename Policy>
FreqSketchRow MeasureFreqSketchVariant(uint64_t seed, int threads,
                                       const FreqSketchBaseline& base,
                                       const char* variant,
                                       const auxsel::FreqSketchParams& sketch,
                                       workload::DriftKind drift_kind,
                                       double budget_gamma) {
  const experiments::ExperimentConfig cfg =
      MakeFreqSketchConfig(seed, threads, sketch, drift_kind, budget_gamma);
  const experiments::RunResult run = RunOrDie<Policy>(cfg);
  FreqSketchRow row =
      RowFromRun<Policy>(run, variant, drift_kind, budget_gamma, sketch);
  row.eq1_cost =
      CrossEq1Cost<Policy>(base.reference, run.node_auxiliaries, cfg.bits);
  if (base.row.freq_bytes_per_node > 0.0) {
    row.memory_ratio = row.freq_bytes_per_node / base.row.freq_bytes_per_node;
  }
  if (base.row.mean_hops > 0.0) {
    row.hops_delta_pct =
        100.0 * (row.mean_hops - base.row.mean_hops) / base.row.mean_hops;
  }
  if (base.row.eq1_cost > 0.0) {
    row.cost_delta_pct =
        100.0 * (row.eq1_cost - base.row.eq1_cost) / base.row.eq1_cost;
  }
  return row;
}

}  // namespace peercache::bench

#endif  // PEERCACHE_BENCH_FREQ_SKETCH_SCENARIO_H_
