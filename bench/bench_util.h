#ifndef PEERCACHE_BENCH_BENCH_UTIL_H_
#define PEERCACHE_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/bits.h"
#include "common/fault.h"
#include "common/latency.h"
#include "common/logging.h"
#include "common/profiler.h"
#include "experiments/experiment_config.h"
#include "experiments/json_report.h"

namespace peercache::bench {

/// Command-line knobs shared by the figure harnesses.
///
///   --quick        shrink workloads for a fast smoke run
///   --seeds N      average improvements over N seeds (default 1)
///   --seed  S      base seed (default 1)
///   --threads T    size of the persistent worker pool the experiment
///                  phases shard node ranges across (0 = all hardware
///                  threads, 1 = serial; measured numbers are identical
///                  for every value)
///   --batch        where supported (lookup_throughput), add rows routed
///                  through the batched prefetch-pipelined lookup engine
///   --json-out F   write the figure as a schema-versioned JSON document
///   --log-level L  debug|info|warning|error (default warning)
///
/// Fault-injection knobs (docs/RESILIENCE.md; all default off):
///
///   --fault-drop P     per-forwarding-attempt message-drop probability
///   --fault-fail P     per-(lookup, node) fail-stop probability
///   --fault-stale P    per-(lookup, dead entry) stale-window probability
///   --fault-seed S     seed of the deterministic fault process
///   --fault-retries N  failed attempts tolerated per node visit
///   --no-fault-retries abort lookups on the first failed attempt
///
/// Latency-model knobs (docs/OBSERVABILITY.md; all default off) — drivers
/// apply them to each run config via `ApplyObservability`:
///
///   --latency-base MS    per-hop propagation floor (enables the model)
///   --latency-scale MS   ms per unit of synthetic-coordinate distance
///   --latency-jitter MS  uniform per-attempt jitter upper bound
///   --latency-timeout MS time charged per failed forwarding attempt
///   --latency-seed S     seed of the coordinate/jitter hash space
///   --latency-matrix F   measured pairwise RTTs (ping-matrix text format)
///   --profile            enable the phase profiler ('profile' JSON block)
///   --trace-out FILE     write sampled route traces as JSONL
///   --trace-sample P     trace every P-th measured query per node
///                        (default 0 = off, or 100 with --trace-out)
struct BenchArgs {
  bool quick = false;
  int seeds = 1;
  uint64_t base_seed = 1;
  int threads = 0;
  bool batch = false;
  std::string json_out;
  fault::FaultConfig faults;
  latency::LatencyConfig latency;
  latency::PingMatrix latency_matrix;
  std::string trace_out;
  int trace_sample = 0;

  static BenchArgs Parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--quick") == 0) {
        args.quick = true;
      } else if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
        args.seeds = std::atoi(argv[++i]);
      } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        args.base_seed = static_cast<uint64_t>(std::atoll(argv[++i]));
      } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
        args.threads = std::atoi(argv[++i]);
      } else if (std::strcmp(argv[i], "--batch") == 0) {
        args.batch = true;
      } else if (std::strcmp(argv[i], "--json-out") == 0 && i + 1 < argc) {
        args.json_out = argv[++i];
      } else if (std::strcmp(argv[i], "--fault-drop") == 0 && i + 1 < argc) {
        args.faults.drop_prob = std::atof(argv[++i]);
      } else if (std::strcmp(argv[i], "--fault-fail") == 0 && i + 1 < argc) {
        args.faults.fail_prob = std::atof(argv[++i]);
      } else if (std::strcmp(argv[i], "--fault-stale") == 0 && i + 1 < argc) {
        args.faults.stale_prob = std::atof(argv[++i]);
      } else if (std::strcmp(argv[i], "--fault-seed") == 0 && i + 1 < argc) {
        args.faults.seed = static_cast<uint64_t>(std::atoll(argv[++i]));
      } else if (std::strcmp(argv[i], "--fault-retries") == 0 &&
                 i + 1 < argc) {
        args.faults.max_retries = std::atoi(argv[++i]);
      } else if (std::strcmp(argv[i], "--no-fault-retries") == 0) {
        args.faults.retry = false;
      } else if (std::strcmp(argv[i], "--latency-base") == 0 && i + 1 < argc) {
        args.latency.base_rtt_ms = std::atof(argv[++i]);
      } else if (std::strcmp(argv[i], "--latency-scale") == 0 &&
                 i + 1 < argc) {
        args.latency.coord_scale_ms = std::atof(argv[++i]);
      } else if (std::strcmp(argv[i], "--latency-jitter") == 0 &&
                 i + 1 < argc) {
        args.latency.jitter_ms = std::atof(argv[++i]);
      } else if (std::strcmp(argv[i], "--latency-timeout") == 0 &&
                 i + 1 < argc) {
        args.latency.timeout_ms = std::atof(argv[++i]);
      } else if (std::strcmp(argv[i], "--latency-seed") == 0 && i + 1 < argc) {
        args.latency.seed = static_cast<uint64_t>(std::atoll(argv[++i]));
      } else if (std::strcmp(argv[i], "--latency-matrix") == 0 &&
                 i + 1 < argc) {
        Result<latency::PingMatrix> m = latency::LoadPingMatrixFile(argv[++i]);
        if (!m.ok()) {
          std::fprintf(stderr, "latency-matrix failed: %s\n",
                       m.status().ToString().c_str());
          std::exit(1);
        }
        args.latency_matrix = std::move(m).value();
      } else if (std::strcmp(argv[i], "--profile") == 0) {
        Profiler::Global().Enable(true);
      } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
        args.trace_out = argv[++i];
      } else if (std::strcmp(argv[i], "--trace-sample") == 0 && i + 1 < argc) {
        args.trace_sample = std::atoi(argv[++i]);
      } else if (std::strcmp(argv[i], "--log-level") == 0 && i + 1 < argc) {
        LogLevel level;
        if (!ParseLogLevel(argv[++i], &level)) {
          std::fprintf(stderr, "unknown log level: %s\n", argv[i]);
          std::exit(2);
        }
        SetLogLevel(level);
      } else {
        std::fprintf(stderr,
                     "usage: %s [--quick] [--seeds N] [--seed S] [--threads T]"
                     " [--batch] [--json-out FILE] [--fault-drop P]"
                     " [--fault-fail P]"
                     " [--fault-stale P] [--fault-seed S] [--fault-retries N]"
                     " [--no-fault-retries] [--latency-base MS]"
                     " [--latency-scale MS] [--latency-jitter MS]"
                     " [--latency-timeout MS] [--latency-seed S]"
                     " [--latency-matrix FILE] [--profile] [--trace-out FILE]"
                     " [--trace-sample P] [--log-level LEVEL]\n",
                     argv[0]);
        std::exit(2);
      }
    }
    if (args.seeds < 1) args.seeds = 1;
    if (args.trace_sample == 0 && !args.trace_out.empty()) {
      args.trace_sample = 100;
    }
    return args;
  }

  /// Copies the observability knobs (latency model, ping matrix, trace
  /// sampling) into one run's config. Figure drivers call this from their
  /// MakeConfig so every row honors the shared command line.
  void ApplyObservability(experiments::ExperimentConfig& cfg) const {
    cfg.latency = latency;
    cfg.latency_matrix = latency_matrix;
    if (trace_sample > 0) cfg.trace_sample_period = trace_sample;
  }
};

/// One row of a figure table. Two improvement columns are reported:
///  * `improvement_pct`, the paper's metric (vs the frequency-oblivious
///    baseline), and
///  * `improvement_vs_none_pct` (vs core-only routing), because our
///    oblivious baseline is measurably stronger than the paper's (its
///    random per-slice pointers already act as extra fingers); against
///    core-only routing the optimal selection matches the paper's headline
///    factors closely. See EXPERIMENTS.md.
struct FigureRow {
  std::string label;
  double none_hops = 0;
  double oblivious_hops = 0;
  double optimal_hops = 0;
  double improvement_pct = 0;
  double improvement_vs_none_pct = 0;
  double success_rate = 1.0;
  std::string paper_reference;  ///< What the paper reports for this point.
  /// Full telemetry of the last successful seed (per-phase timings, hop
  /// percentiles, aux-hit rates, cost-audit residuals). The averaged
  /// columns above stay seed-averaged; this is the drill-down sample.
  std::optional<experiments::Comparison> detail;
};

inline void PrintFigureHeader(const char* title, const char* label_name) {
  std::printf("%s\n", title);
  std::printf("%-22s %9s %9s %9s %9s %9s %8s   %s\n", label_name, "core-only",
              "oblivious", "optimal", "impr/obl", "impr/core", "success",
              "paper(impr/obl)");
  std::printf(
      "-----------------------------------------------------------------"
      "-----------------------------------------\n");
}

inline void PrintFigureRow(const FigureRow& row) {
  std::printf("%-22s %8.3f %9.3f %9.3f %8.1f%% %8.1f%% %7.1f%%   %s\n",
              row.label.c_str(), row.none_hops, row.oblivious_hops,
              row.optimal_hops, row.improvement_pct,
              row.improvement_vs_none_pct, 100.0 * row.success_rate,
              row.paper_reference.c_str());
}

/// Averages a comparison metric over several seeds.
template <typename CompareFn>
FigureRow AveragedRow(const BenchArgs& args, CompareFn compare,
                      std::string label, std::string paper_reference) {
  FigureRow row;
  row.label = std::move(label);
  row.paper_reference = std::move(paper_reference);
  row.success_rate = 0.0;
  int ok_runs = 0;
  for (int s = 0; s < args.seeds; ++s) {
    auto cmp = compare(args.base_seed + static_cast<uint64_t>(s));
    if (!cmp.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   cmp.status().ToString().c_str());
      continue;
    }
    ++ok_runs;
    row.none_hops += cmp->none.avg_hops;
    row.oblivious_hops += cmp->oblivious.avg_hops;
    row.optimal_hops += cmp->optimal.avg_hops;
    row.success_rate += cmp->optimal.success_rate;
    row.detail = std::move(*cmp);
  }
  if (ok_runs > 0) {
    row.none_hops /= ok_runs;
    row.oblivious_hops /= ok_runs;
    row.optimal_hops /= ok_runs;
    row.success_rate /= ok_runs;
    row.improvement_pct = experiments::ImprovementPct(row.oblivious_hops,
                                                      row.optimal_hops);
    row.improvement_vs_none_pct =
        experiments::ImprovementPct(row.none_hops, row.optimal_hops);
  }
  return row;
}

/// Accumulates the sampled route traces carried by each row's detail
/// comparison and writes them as JSONL on request — the bench-driver
/// counterpart of sim_cli's --trace-out. Traces only exist when a sampling
/// period is active (--trace-sample, or --trace-out's default of 100).
class TraceLog {
 public:
  explicit TraceLog(std::string system) : system_(std::move(system)) {}

  /// Appends every sampled trace of the row's detail comparison (the last
  /// successful seed). No-op for rows without detail.
  void AddRow(const FigureRow& row) {
    if (!row.detail.has_value()) return;
    const std::pair<const char*, const experiments::RunResult*> runs[] = {
        {"none", &row.detail->none},
        {"oblivious", &row.detail->oblivious},
        {"optimal", &row.detail->optimal}};
    for (const auto& [policy, run] : runs) {
      for (const RouteTrace& trace : run->traces) {
        lines_ += experiments::TraceJsonLine(system_, policy, trace);
        lines_ += '\n';
        ++count_;
      }
    }
  }

  /// Returns a process exit code: 0 on success or when no output was
  /// requested, 1 when the write failed.
  int WriteIfRequested(const BenchArgs& args) {
    if (args.trace_out.empty()) return 0;
    Status st = experiments::WriteStringToFile(args.trace_out, lines_);
    if (!st.ok()) {
      std::fprintf(stderr, "trace-out failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("%zu route traces written to %s\n", count_,
                args.trace_out.c_str());
    return 0;
  }

 private:
  std::string system_;
  std::string lines_;
  size_t count_ = 0;
};

/// Accumulates figure rows into a schema-versioned JSON document:
///
///   {"schema_version": 1, "generator": ..., "kind": "figure",
///    "system": ..., "seeds": N, "base_seed": S, "quick": bool,
///    "rows": [{"label": ..., "mode": ..., "config": {...},
///              averaged columns..., "detail": <comparison|null>}]}
///
/// Rows are added unconditionally (cheap); `WriteIfRequested` is a no-op
/// unless `--json-out` was passed. The per-row `config` is the one used
/// for the row's base seed; `detail` carries the last seed's full
/// telemetry (phase timings, hop p50/p95/p99, aux-hit rate, Eq. 1 audit).
class FigureJson {
 public:
  FigureJson(const std::string& generator, const std::string& system,
             const BenchArgs& args) {
    writer_.BeginObject();
    writer_.Key("schema_version");
    writer_.Int(experiments::kTelemetrySchemaVersion);
    writer_.Key("generator");
    writer_.String(generator);
    writer_.Key("kind");
    writer_.String("figure");
    writer_.Key("system");
    writer_.String(system);
    writer_.Key("seeds");
    writer_.Int(args.seeds);
    writer_.Key("base_seed");
    writer_.UInt(args.base_seed);
    writer_.Key("quick");
    writer_.Bool(args.quick);
    writer_.Key("rows");
    writer_.BeginArray();
  }

  void AddRow(const FigureRow& row, const std::string& mode,
              const experiments::ExperimentConfig& config) {
    writer_.BeginObject();
    writer_.Key("label");
    writer_.String(row.label);
    writer_.Key("mode");
    writer_.String(mode);
    writer_.Key("config");
    experiments::WriteConfigJson(writer_, config);
    writer_.Key("none_hops");
    writer_.Double(row.none_hops);
    writer_.Key("oblivious_hops");
    writer_.Double(row.oblivious_hops);
    writer_.Key("optimal_hops");
    writer_.Double(row.optimal_hops);
    writer_.Key("improvement_pct");
    writer_.Double(row.improvement_pct);
    writer_.Key("improvement_vs_none_pct");
    writer_.Double(row.improvement_vs_none_pct);
    writer_.Key("success_rate");
    writer_.Double(row.success_rate);
    writer_.Key("paper_reference");
    writer_.String(row.paper_reference);
    writer_.Key("detail");
    if (row.detail.has_value()) {
      experiments::WriteComparisonJson(writer_, *row.detail);
    } else {
      writer_.Null();
    }
    writer_.EndObject();
  }

  /// Returns a process exit code: 0 on success or when no output was
  /// requested, 1 when the write failed.
  int WriteIfRequested(const BenchArgs& args) {
    if (args.json_out.empty()) return 0;
    writer_.EndArray();
    // Phase-profiler report (--profile), absent by default so committed
    // figure documents are unaffected.
    if (Profiler::Global().enabled()) {
      writer_.Key("profile");
      Profiler::Global().WriteJson(writer_);
    }
    writer_.EndObject();
    Status st = experiments::WriteStringToFile(args.json_out,
                                               writer_.TakeString() + "\n");
    if (!st.ok()) {
      std::fprintf(stderr, "json-out failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("figure telemetry written to %s\n", args.json_out.c_str());
    return 0;
  }

 private:
  JsonWriter writer_;
};

}  // namespace peercache::bench

#endif  // PEERCACHE_BENCH_BENCH_UTIL_H_
