#ifndef PEERCACHE_BENCH_BENCH_UTIL_H_
#define PEERCACHE_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/bits.h"
#include "experiments/experiment_config.h"

namespace peercache::bench {

/// Command-line knobs shared by the figure harnesses.
///
///   --quick        shrink workloads for a fast smoke run
///   --seeds N      average improvements over N seeds (default 1)
///   --seed  S      base seed (default 1)
///   --threads T    worker threads for the per-node experiment loops
///                  (0 = all hardware threads, 1 = serial; measured
///                  numbers are identical for every value)
struct BenchArgs {
  bool quick = false;
  int seeds = 1;
  uint64_t base_seed = 1;
  int threads = 0;

  static BenchArgs Parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--quick") == 0) {
        args.quick = true;
      } else if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
        args.seeds = std::atoi(argv[++i]);
      } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        args.base_seed = static_cast<uint64_t>(std::atoll(argv[++i]));
      } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
        args.threads = std::atoi(argv[++i]);
      } else {
        std::fprintf(
            stderr, "usage: %s [--quick] [--seeds N] [--seed S] [--threads T]\n",
            argv[0]);
        std::exit(2);
      }
    }
    if (args.seeds < 1) args.seeds = 1;
    return args;
  }
};

/// One row of a figure table. Two improvement columns are reported:
///  * `improvement_pct`, the paper's metric (vs the frequency-oblivious
///    baseline), and
///  * `improvement_vs_none_pct` (vs core-only routing), because our
///    oblivious baseline is measurably stronger than the paper's (its
///    random per-slice pointers already act as extra fingers); against
///    core-only routing the optimal selection matches the paper's headline
///    factors closely. See EXPERIMENTS.md.
struct FigureRow {
  std::string label;
  double none_hops = 0;
  double oblivious_hops = 0;
  double optimal_hops = 0;
  double improvement_pct = 0;
  double improvement_vs_none_pct = 0;
  double success_rate = 1.0;
  std::string paper_reference;  ///< What the paper reports for this point.
};

inline void PrintFigureHeader(const char* title, const char* label_name) {
  std::printf("%s\n", title);
  std::printf("%-22s %9s %9s %9s %9s %9s %8s   %s\n", label_name, "core-only",
              "oblivious", "optimal", "impr/obl", "impr/core", "success",
              "paper(impr/obl)");
  std::printf(
      "-----------------------------------------------------------------"
      "-----------------------------------------\n");
}

inline void PrintFigureRow(const FigureRow& row) {
  std::printf("%-22s %8.3f %9.3f %9.3f %8.1f%% %8.1f%% %7.1f%%   %s\n",
              row.label.c_str(), row.none_hops, row.oblivious_hops,
              row.optimal_hops, row.improvement_pct,
              row.improvement_vs_none_pct, 100.0 * row.success_rate,
              row.paper_reference.c_str());
}

/// Averages a comparison metric over several seeds.
template <typename CompareFn>
FigureRow AveragedRow(const BenchArgs& args, CompareFn compare,
                      std::string label, std::string paper_reference) {
  FigureRow row;
  row.label = std::move(label);
  row.paper_reference = std::move(paper_reference);
  row.success_rate = 0.0;
  int ok_runs = 0;
  for (int s = 0; s < args.seeds; ++s) {
    auto cmp = compare(args.base_seed + static_cast<uint64_t>(s));
    if (!cmp.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   cmp.status().ToString().c_str());
      continue;
    }
    ++ok_runs;
    row.none_hops += cmp->none.avg_hops;
    row.oblivious_hops += cmp->oblivious.avg_hops;
    row.optimal_hops += cmp->optimal.avg_hops;
    row.success_rate += cmp->optimal.success_rate;
  }
  if (ok_runs > 0) {
    row.none_hops /= ok_runs;
    row.oblivious_hops /= ok_runs;
    row.optimal_hops /= ok_runs;
    row.success_rate /= ok_runs;
    row.improvement_pct = experiments::ImprovementPct(row.oblivious_hops,
                                                      row.optimal_hops);
    row.improvement_vs_none_pct =
        experiments::ImprovementPct(row.none_hops, row.optimal_hops);
  }
  return row;
}

}  // namespace peercache::bench

#endif  // PEERCACHE_BENCH_BENCH_UTIL_H_
