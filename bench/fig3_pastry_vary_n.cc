// Reproduces paper Figure 3: Pastry, percentage reduction in average lookup
// hops versus the frequency-oblivious baseline, as the overlay size n varies
// with k = log2(n) auxiliary neighbors, for zipf parameters 1.2 and 0.91.
//
// Paper's reported trend: improvement grows with n; ~49% at n=2048 with
// alpha=1.2; up to ~29% with alpha=0.91.

#include <cstdio>

#include "bench_util.h"
#include "experiments/generic_experiment.h"

namespace {

using peercache::CeilLog2;
using peercache::bench::AveragedRow;
using peercache::bench::BenchArgs;
using peercache::bench::FigureRow;
using peercache::bench::PrintFigureHeader;
using peercache::bench::PrintFigureRow;
using namespace peercache::experiments;

const char* PaperReference(int n, double alpha) {
  if (alpha >= 1.0) {
    switch (n) {
      case 256:
        return "~40%";
      case 512:
        return "~44%";
      case 1024:
        return "~47%";
      case 2048:
        return "~49%";
    }
  } else {
    switch (n) {
      case 256:
        return "~22%";
      case 512:
        return "~25%";
      case 1024:
        return "~27%";
      case 2048:
        return "~29%";
    }
  }
  return "-";
}

ExperimentConfig MakeConfig(uint64_t seed, int n, double alpha,
                            const BenchArgs& args) {
  ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.n_nodes = n;
  cfg.k = CeilLog2(static_cast<uint64_t>(n));
  cfg.alpha = alpha;
  cfg.n_items = static_cast<size_t>(n);
  cfg.n_popularity_lists = 1;  // identical ranking at all nodes
  cfg.warmup_queries_per_node = args.quick ? 100 : 300;
  cfg.measure_queries_per_node = args.quick ? 100 : 200;
  cfg.threads = args.threads;
  args.ApplyObservability(cfg);
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  peercache::bench::FigureJson json("fig3_pastry_vary_n", "pastry", args);
  peercache::bench::TraceLog traces("pastry");
  PrintFigureHeader(
      "Figure 3 — Pastry: improvement vs n (k = log2 n, identical ranking)",
      "n / alpha");
  const int sizes[] = {256, 512, 1024, 2048};
  for (double alpha : {1.2, 0.91}) {
    for (int n : sizes) {
      if (args.quick && n > 512) continue;
      auto compare = [&](uint64_t seed) {
        return CompareStable<PastryPolicy>(MakeConfig(seed, n, alpha, args));
      };
      char label[64];
      std::snprintf(label, sizeof(label), "n=%-5d alpha=%.2f", n, alpha);
      FigureRow row =
          AveragedRow(args, compare, label, PaperReference(n, alpha));
      PrintFigureRow(row);
      traces.AddRow(row);
      json.AddRow(row, "stable", MakeConfig(args.base_seed, n, alpha, args));
    }
  }
  const int json_rc = json.WriteIfRequested(args);
  const int trace_rc = traces.WriteIfRequested(args);
  return json_rc != 0 ? json_rc : trace_rc;
}
