// Message-driven cluster runtime (docs/RUNTIME.md): the end-to-end gate for
// the wire protocol + bus + actor + persistent peer-cache stack. One process
// hosts an n-actor overlay cluster on the MessageBus, drives a Zipf lookup
// workload through framed LOOKUP_REQ/STEP/DONE chains, hard-crashes a
// fraction of the actors (control-plane LEAVE frames, state forgotten where
// the overlay supports it), keeps serving during the outage, then restarts
// the crashed actors warm from the crash-safe PeerCache file and audits that
// the recovered auxiliary state is byte-identical to what was persisted
// before the crash.
//
// Exit gates (CI cluster-smoke):
//   * every round's delivery rate (DONE frames received / lookups issued)
//     must be >= 0.99;
//   * the post-restart selection audit must find zero mismatches between
//     each recovered actor's installed auxiliaries and its pre-crash state.
//
// Telemetry: one schema-versioned JSON document with `resilience` and
// `latency` blocks. Every field except the `timing` sub-object is a pure
// function of (seed, config) at any thread count — strip `timing` (like
// phase_seconds elsewhere) and diff runs byte for byte.
//
//   cluster_runtime [--system chord|pastry|kademlia] [--n N] [--lookups M]
//                   [--kill-frac F] [--cache-file PATH] [--quick]
//                   [--threads T] [--seed S] [--json-out FILE]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "bench_util.h"
#include "common/fault.h"
#include "common/latency.h"
#include "common/random.h"
#include "common/stats.h"
#include "experiments/generic_experiment.h"
#include "experiments/json_report.h"
#include "experiments/overlay_policy.h"
#include "experiments/parallel_engine.h"
#include "net/actor_node.h"
#include "net/bus.h"
#include "net/peer_cache.h"
#include "net/wire.h"

namespace peercache {
namespace {

using experiments::ExperimentConfig;
using experiments::SeedPlan;

struct ClusterArgs {
  std::string system = "chord";
  int n = 10000;
  int lookups = 0;  // per round; 0 = one per actor
  double kill_frac = 0.1;
  std::string cache_file = "cluster_runtime_cache.bin";
};

/// Outcome of one lookup round driven over the bus.
struct RoundStats {
  std::string name;
  uint64_t issued = 0;
  uint64_t delivered = 0;  ///< DONE frames that reached the client mailbox
  uint64_t successes = 0;  ///< routes delivered at the responsible node
  uint64_t sum_hops = 0;   ///< over successful routes
  uint64_t checksum = 0;   ///< folded in lookup-id order
  uint64_t bus_posted = 0;
  uint64_t bus_delivered = 0;
  uint64_t bus_ticks = 0;

  double DeliveryRate() const {
    return issued == 0 ? 1.0
                       : static_cast<double>(delivered) /
                             static_cast<double>(issued);
  }
  double SuccessRate() const {
    return issued == 0 ? 1.0
                       : static_cast<double>(successes) /
                             static_cast<double>(issued);
  }
  double AvgHops() const {
    return successes == 0 ? 0.0
                          : static_cast<double>(sum_hops) /
                                static_cast<double>(successes);
  }
};

struct RecoveryStats {
  uint64_t killed = 0;
  uint64_t recovered = 0;      ///< warm restarts served from the cache file
  uint64_t cold_restarts = 0;  ///< record evicted or torn; rejoined empty
  uint64_t audited = 0;
  uint64_t aux_mismatches = 0;
  uint64_t restored_observations = 0;  ///< frequency weight replayed
};

double Seconds(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       since)
      .count();
}

/// Round-trips a control message through the wire format before applying
/// it, so the control plane exercises Encode/Decode like the data plane.
template <typename Net>
Status ApplyControlFrame(Net& net, const net::AnyMessage& msg) {
  Result<net::AnyMessage> decoded =
      net::Decode(std::span<const uint8_t>(net::Encode(msg)));
  if (!decoded.ok()) return decoded.status();
  return net::ActorHost<Net>::ApplyControl(net, decoded.value());
}

/// Issues `origins.size()` lookups over a fresh bus and folds the DONE
/// stream, in lookup-id order, into round telemetry plus the run-wide
/// resilience and latency accumulators.
template <typename Net>
Status RunLookupRound(const Net& net, const std::string& name,
                      const std::vector<std::pair<uint64_t, uint64_t>>& jobs,
                      const fault::FaultPlan& faults,
                      const latency::LatencyModel& latency, int threads,
                      uint64_t bus_seed, experiments::ResilienceStats& res,
                      LogHistogram& latency_hist, RoundStats& round) {
  typename net::ActorHost<Net>::Config host_config;
  host_config.faults = &faults;
  host_config.latency = &latency;
  net::ActorHost<Net> host(net, host_config);

  ThreadPool pool(threads);
  net::BusConfig bus_config;
  bus_config.seed = bus_seed;
  net::MessageBus bus(bus_config, &pool);
  for (size_t i = 0; i < jobs.size(); ++i) {
    bus.Post(net::kClientAddress, jobs[i].first, 0.0,
             host.MakeLookupReq(i, jobs[i].first, jobs[i].second));
  }
  std::vector<net::LookupDone> dones(jobs.size());
  std::vector<bool> seen(jobs.size(), false);
  bus.Run([&](const net::Envelope& env, std::vector<net::Outbound>& out) {
    if (env.dst != net::kClientAddress) {
      host.HandleMessage(env, out);
      return;
    }
    // The client mailbox is one destination, so this branch runs serially.
    Result<net::AnyMessage> decoded =
        net::Decode(std::span<const uint8_t>(env.payload));
    if (!decoded.ok() ||
        !std::holds_alternative<net::LookupDone>(decoded.value())) {
      return;
    }
    net::LookupDone& done = std::get<net::LookupDone>(decoded.value());
    if (done.lookup_id < dones.size() && !seen[done.lookup_id]) {
      const uint64_t id = done.lookup_id;
      dones[id] = std::move(done);
      seen[id] = true;
    }
  });

  round.name = name;
  round.issued = jobs.size();
  round.bus_posted = bus.posted();
  round.bus_delivered = bus.delivered();
  round.bus_ticks = bus.last_tick();
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (!seen[i]) continue;
    ++round.delivered;
    overlay::RouteResult result;
    if (!net::UnpackDone(dones[i], result, nullptr).ok()) continue;
    res.Accumulate(result);
    latency_hist.Add(result.latency_ms);
    if (result.success) {
      ++round.successes;
      round.sum_hops += static_cast<uint64_t>(result.hops);
    }
    round.checksum =
        MixHash64(round.checksum ^ result.destination ^
                  (static_cast<uint64_t>(result.hops) << 32));
  }
  return Status::Ok();
}

/// Draws one round's (origin, key) jobs: origins uniformly from `origins`,
/// keys from the node's Zipf list.
std::vector<std::pair<uint64_t, uint64_t>> DrawJobs(
    workload::QueryWorkload& queries, const std::vector<uint64_t>& origins,
    size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<uint64_t, uint64_t>> jobs(count);
  for (auto& job : jobs) {
    job.first = origins[static_cast<size_t>(rng.UniformU64(origins.size()))];
    job.second = queries.SampleKey(job.first, rng);
  }
  return jobs;
}

/// Top-k-by-observed-frequency auxiliary choice (count desc, id asc) — the
/// deterministic selection the runtime persists and audits. The full
/// cost-model selectors stay on the simulator path; the runtime needs a
/// selection that is a pure function of the frequency table so the
/// post-restart audit has an exact target.
std::vector<uint64_t> TopKByFrequency(
    const auxsel::FrequencyTable& frequencies, uint64_t self, int k) {
  std::vector<auxsel::PeerFreq> snapshot = frequencies.Snapshot(self);
  std::sort(snapshot.begin(), snapshot.end(),
            [](const auxsel::PeerFreq& a, const auxsel::PeerFreq& b) {
              if (a.frequency != b.frequency) return a.frequency > b.frequency;
              return a.id < b.id;
            });
  if (snapshot.size() > static_cast<size_t>(k)) {
    snapshot.resize(static_cast<size_t>(k));
  }
  std::vector<uint64_t> out;
  out.reserve(snapshot.size());
  for (const auxsel::PeerFreq& p : snapshot) out.push_back(p.id);
  return out;
}

/// Sorted (count desc, id asc) frequency pairs for one persisted record.
std::vector<std::pair<uint64_t, uint64_t>> FrequencyPairs(
    const auxsel::FrequencyTable& frequencies, uint64_t self) {
  std::vector<auxsel::PeerFreq> snapshot = frequencies.Snapshot(self);
  std::sort(snapshot.begin(), snapshot.end(),
            [](const auxsel::PeerFreq& a, const auxsel::PeerFreq& b) {
              if (a.frequency != b.frequency) return a.frequency > b.frequency;
              return a.id < b.id;
            });
  std::vector<std::pair<uint64_t, uint64_t>> out;
  out.reserve(snapshot.size());
  for (const auxsel::PeerFreq& p : snapshot) {
    out.emplace_back(p.id, static_cast<uint64_t>(p.frequency));
  }
  return out;
}

/// The run: build + warmup + select + persist, three lookup rounds around a
/// crash/restart cycle, recovery audit, JSON document. Returns false when an
/// exit gate failed.
template <typename Policy>
bool RunCluster(const bench::BenchArgs& bench_args, const ClusterArgs& cargs,
                std::string& json_doc) {
  using Net = typename Policy::Network;
  const auto t_start = std::chrono::steady_clock::now();

  ExperimentConfig config;
  config.n_nodes = cargs.n;
  config.k = 10;
  config.seed = bench_args.base_seed;
  config.threads = bench_args.threads;
  const SeedPlan seeds = Policy::MakeSeedPlan(config.seed);

  Net net = Policy::MakeNetwork(config, seeds);
  const std::vector<uint64_t> ids =
      experiments::SampleNodeIds(config, seeds.ids);
  if (Status st = net.BulkAdd(ids); !st.ok()) {
    std::fprintf(stderr, "BulkAdd failed: %s\n", st.ToString().c_str());
    return false;
  }
  net.StabilizeAll();
  const double build_seconds = Seconds(t_start);

  // Warmup: every actor learns its query-answering peers (batched
  // ResponsibleCursor engine; byte-identical at any thread count).
  const auto t_warm = std::chrono::steady_clock::now();
  const int threads = bench_args.threads <= 0 ? 1 : bench_args.threads;
  experiments::WorkloadBundle workload(config, seeds, ids);
  {
    ThreadPool pool(threads);
    Status st = experiments::internal::ParallelWarmup(
        pool, net, ids, workload.queries(), seeds.warmup,
        config.warmup_queries_per_node);
    if (!st.ok()) {
      std::fprintf(stderr, "warmup failed: %s\n", st.ToString().c_str());
      return false;
    }
  }

  // Select + persist: install top-k auxiliaries and write every actor's
  // record (auxiliaries + the frequency observations that produced them)
  // into the crash-safe cache file.
  net::PeerCacheConfig cache_config;
  cache_config.slot_count = static_cast<uint32_t>(4 * cargs.n + 64);
  cache_config.aux_capacity = static_cast<uint32_t>(config.k);
  cache_config.freq_capacity = 32;
  cache_config.salt = SplitSeed(config.seed, 0x70636373);  // "pccs"
  Result<net::PeerCache> cache_result =
      net::PeerCache::Create(cargs.cache_file, cache_config);
  if (!cache_result.ok()) {
    std::fprintf(stderr, "PeerCache::Create failed: %s\n",
                 cache_result.status().ToString().c_str());
    return false;
  }
  net::PeerCache cache = std::move(cache_result).value();
  std::vector<std::vector<uint64_t>> installed(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    const auto* node = net.GetNode(ids[i]);
    installed[i] = TopKByFrequency(node->frequencies, ids[i], config.k);
    if (Status st = net.SetAuxiliaries(ids[i], installed[i]); !st.ok()) {
      std::fprintf(stderr, "SetAuxiliaries failed: %s\n",
                   st.ToString().c_str());
      return false;
    }
    net::PeerRecord record;
    record.node_id = ids[i];
    record.auxiliaries = installed[i];
    record.frequencies = FrequencyPairs(node->frequencies, ids[i]);
    if (Status st = cache.Put(record); !st.ok()) {
      std::fprintf(stderr, "PeerCache::Put failed: %s\n",
                   st.ToString().c_str());
      return false;
    }
  }
  if (Status st = cache.Sync(); !st.ok()) {
    std::fprintf(stderr, "PeerCache::Sync failed: %s\n",
                 st.ToString().c_str());
    return false;
  }
  const double warmup_seconds = Seconds(t_warm);

  // The runtime's deterministic network conditions: a light fault plan (so
  // routes exercise retries and stale-entry eviction during the outage) and
  // the latency model that doubles as the bus delivery clock. Command-line
  // fault/latency knobs override the defaults.
  fault::FaultConfig fault_config = bench_args.faults;
  if (!fault::FaultPlan(fault_config).enabled()) {
    fault_config.drop_prob = 0.02;
    fault_config.stale_prob = 0.5;
    fault_config.max_retries = 4;
    fault_config.seed = SplitSeed(config.seed, 0x666c74);  // "flt"
  }
  const fault::FaultPlan faults(fault_config);
  latency::LatencyConfig latency_config = bench_args.latency;
  if (!latency::LatencyModel(latency_config).enabled()) {
    latency_config.base_rtt_ms = 12.0;
    latency_config.coord_scale_ms = 40.0;
    latency_config.jitter_ms = 3.0;
    latency_config.timeout_ms = 50.0;
    latency_config.seed = SplitSeed(config.seed, 0x6c6174);  // "lat"
  }
  const latency::LatencyModel latency(latency_config);

  const size_t lookups_per_round =
      cargs.lookups > 0 ? static_cast<size_t>(cargs.lookups) : ids.size();
  experiments::ResilienceStats resilience;
  LogHistogram latency_hist;
  std::vector<RoundStats> rounds(3);

  // Round 1: healthy cluster.
  const auto t_rounds = std::chrono::steady_clock::now();
  Status st = RunLookupRound(net, "healthy",
                             DrawJobs(workload.queries(), ids,
                                      lookups_per_round,
                                      SplitSeed(seeds.measure, 1)),
                             faults, latency, threads,
                             SplitSeed(config.seed, 0x627573),  // "bus"
                             resilience, latency_hist, rounds[0]);
  if (!st.ok()) return false;

  // Hard crash: a deterministic kill set leaves over control-plane frames,
  // forgetting in-memory state where the overlay supports it. No
  // stabilization yet — survivors route over tables that still name the
  // dead, exactly the stale-entry regime the resilient path is for.
  RecoveryStats recovery;
  std::vector<uint64_t> killed;
  {
    Rng rng(SplitSeed(config.seed, 0xdead));
    std::vector<uint64_t> pool_ids = ids;
    const size_t n_kill =
        static_cast<size_t>(cargs.kill_frac *
                            static_cast<double>(pool_ids.size()));
    for (size_t i = 0; i < n_kill && !pool_ids.empty(); ++i) {
      const size_t pick =
          static_cast<size_t>(rng.UniformU64(pool_ids.size()));
      killed.push_back(pool_ids[pick]);
      pool_ids[pick] = pool_ids.back();
      pool_ids.pop_back();
    }
    std::sort(killed.begin(), killed.end());
    for (uint64_t id : killed) {
      if (Status s = ApplyControlFrame(net, net::Leave{id, 1}); !s.ok()) {
        std::fprintf(stderr, "LEAVE failed: %s\n", s.ToString().c_str());
        return false;
      }
    }
  }
  recovery.killed = killed.size();

  // Round 2: outage — lookups from the survivors while the dead linger in
  // every routing table.
  st = RunLookupRound(net, "outage",
                      DrawJobs(workload.queries(), net.LiveNodeIds(),
                               lookups_per_round, SplitSeed(seeds.measure, 2)),
                      faults, latency, threads,
                      SplitSeed(config.seed, 0x62757333),
                      resilience, latency_hist, rounds[1]);
  if (!st.ok()) return false;

  // Restart: rejoin every crashed actor (control-plane JOIN), stabilize the
  // cluster, then warm the rejoined actors from the cache file and audit
  // the recovered state against what was installed before the crash.
  for (uint64_t id : killed) {
    if (Status s = ApplyControlFrame(net, net::Join{id}); !s.ok()) {
      std::fprintf(stderr, "JOIN failed: %s\n", s.ToString().c_str());
      return false;
    }
  }
  if (Status s = ApplyControlFrame(net, net::Stabilize{net::kAllNodes});
      !s.ok()) {
    std::fprintf(stderr, "STABILIZE failed: %s\n", s.ToString().c_str());
    return false;
  }
  // id -> position in `ids` (sample order), for the audit against the
  // pre-crash installation.
  std::vector<std::pair<uint64_t, size_t>> id_index;
  id_index.reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) id_index.emplace_back(ids[i], i);
  std::sort(id_index.begin(), id_index.end());
  Result<net::PeerCache> reopened = net::PeerCache::Open(cargs.cache_file);
  if (!reopened.ok()) {
    std::fprintf(stderr, "PeerCache::Open failed: %s\n",
                 reopened.status().ToString().c_str());
    return false;
  }
  const net::PeerCache recovered_cache = std::move(reopened).value();
  for (uint64_t id : killed) {
    net::PeerRecord record;
    if (!recovered_cache.Get(id, record)) {
      ++recovery.cold_restarts;  // evicted by a slot collision at persist
      continue;
    }
    auto* node = net.GetNode(id);
    node->frequencies.Clear();  // pastry retains state across RemoveNode
    for (const auto& [peer, count] : record.frequencies) {
      node->frequencies.Record(peer, count);
      recovery.restored_observations += count;
    }
    if (Status s = net.SetAuxiliaries(id, record.auxiliaries); !s.ok()) {
      std::fprintf(stderr, "recovery SetAuxiliaries failed: %s\n",
                   s.ToString().c_str());
      return false;
    }
    ++recovery.recovered;
    // Selection audit: the recovered auxiliaries must equal the pre-crash
    // installation byte for byte (disk round trip changed nothing).
    const auto it = std::lower_bound(
        id_index.begin(), id_index.end(),
        std::make_pair(id, size_t{0}),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    ++recovery.audited;
    if (it == id_index.end() || it->first != id ||
        record.auxiliaries != installed[it->second]) {
      ++recovery.aux_mismatches;
    }
  }

  // Round 3: recovered cluster, full membership again.
  st = RunLookupRound(net, "recovered",
                      DrawJobs(workload.queries(), ids, lookups_per_round,
                               SplitSeed(seeds.measure, 3)),
                      faults, latency, threads,
                      SplitSeed(config.seed, 0x62757334),
                      resilience, latency_hist, rounds[2]);
  if (!st.ok()) return false;
  const double rounds_seconds = Seconds(t_rounds);

  // Exit gates.
  bool ok = true;
  for (const RoundStats& r : rounds) {
    if (r.DeliveryRate() < 0.99) {
      std::fprintf(stderr, "GATE FAILED: round %s delivery %.4f < 0.99\n",
                   r.name.c_str(), r.DeliveryRate());
      ok = false;
    }
  }
  if (recovery.aux_mismatches != 0) {
    std::fprintf(stderr,
                 "GATE FAILED: %llu recovered auxiliary sets differ from "
                 "their pre-crash state\n",
                 static_cast<unsigned long long>(recovery.aux_mismatches));
    ok = false;
  }

  // Telemetry document.
  JsonWriter w;
  w.BeginObject();
  w.Key("schema_version");
  w.Int(experiments::kTelemetrySchemaVersion);
  w.Key("generator");
  w.String("cluster_runtime");
  w.Key("kind");
  w.String("cluster_runtime");
  w.Key("system");
  w.String(Policy::kName);
  w.Key("config");
  w.BeginObject();
  w.Key("n_nodes");
  w.Int(config.n_nodes);
  w.Key("bits");
  w.Int(config.bits);
  w.Key("k");
  w.Int(config.k);
  w.Key("seed");
  w.UInt(config.seed);
  w.Key("warmup_queries_per_node");
  w.Int(config.warmup_queries_per_node);
  w.Key("lookups_per_round");
  w.UInt(lookups_per_round);
  w.Key("kill_fraction");
  w.Double(cargs.kill_frac);
  w.Key("fault_drop");
  w.Double(fault_config.drop_prob);
  w.Key("fault_stale");
  w.Double(fault_config.stale_prob);
  w.Key("latency_base_ms");
  w.Double(latency_config.base_rtt_ms);
  w.Key("cache_slots");
  w.UInt(cache_config.slot_count);
  w.Key("cache_aux_capacity");
  w.UInt(cache_config.aux_capacity);
  w.Key("cache_freq_capacity");
  w.UInt(cache_config.freq_capacity);
  w.EndObject();
  w.Key("actors");
  w.UInt(ids.size());
  w.Key("rounds");
  w.BeginArray();
  for (const RoundStats& r : rounds) {
    w.BeginObject();
    w.Key("name");
    w.String(r.name);
    w.Key("lookups");
    w.UInt(r.issued);
    w.Key("delivered");
    w.UInt(r.delivered);
    w.Key("delivery_rate");
    w.Double(r.DeliveryRate());
    w.Key("success_rate");
    w.Double(r.SuccessRate());
    w.Key("avg_hops");
    w.Double(r.AvgHops());
    w.Key("checksum");
    w.UInt(r.checksum);
    w.Key("bus");
    w.BeginObject();
    w.Key("posted");
    w.UInt(r.bus_posted);
    w.Key("delivered");
    w.UInt(r.bus_delivered);
    w.Key("ticks");
    w.UInt(r.bus_ticks);
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.Key("resilience");
  experiments::WriteResilienceJson(w, resilience);
  w.Key("latency");
  experiments::WriteLatencyJson(w, latency_hist);
  w.Key("recovery");
  w.BeginObject();
  w.Key("killed");
  w.UInt(recovery.killed);
  w.Key("recovered_from_cache");
  w.UInt(recovery.recovered);
  w.Key("cold_restarts");
  w.UInt(recovery.cold_restarts);
  w.Key("audited");
  w.UInt(recovery.audited);
  w.Key("aux_mismatches");
  w.UInt(recovery.aux_mismatches);
  w.Key("restored_observations");
  w.UInt(recovery.restored_observations);
  w.Key("cache_used");
  w.UInt(recovered_cache.stats().used);
  w.Key("cache_rejected");
  w.UInt(recovered_cache.stats().rejected);
  w.EndObject();
  // Wall-clock: the one non-deterministic sub-object. Byte-diff tooling
  // strips it, like phase_seconds elsewhere.
  w.Key("timing");
  w.BeginObject();
  w.Key("build_seconds");
  w.Double(build_seconds);
  w.Key("warmup_seconds");
  w.Double(warmup_seconds);
  w.Key("rounds_seconds");
  w.Double(rounds_seconds);
  w.EndObject();
  w.EndObject();
  json_doc = w.TakeString();

  std::printf("cluster_runtime system=%s actors=%zu threads=%d\n",
              Policy::kName, ids.size(), threads);
  for (const RoundStats& r : rounds) {
    std::printf(
        "  round %-9s lookups=%llu delivery=%.4f success=%.4f "
        "avg_hops=%.3f checksum=%016llx\n",
        r.name.c_str(), static_cast<unsigned long long>(r.issued),
        r.DeliveryRate(), r.SuccessRate(), r.AvgHops(),
        static_cast<unsigned long long>(r.checksum));
  }
  std::printf(
      "  recovery killed=%llu warm=%llu cold=%llu audit_mismatches=%llu\n",
      static_cast<unsigned long long>(recovery.killed),
      static_cast<unsigned long long>(recovery.recovered),
      static_cast<unsigned long long>(recovery.cold_restarts),
      static_cast<unsigned long long>(recovery.aux_mismatches));
  std::printf("  %s\n", ok ? "GATES PASSED" : "GATES FAILED");
  return ok;
}

}  // namespace
}  // namespace peercache

int main(int argc, char** argv) {
  using namespace peercache;
  // Split off this binary's own flags, hand the rest to BenchArgs.
  ClusterArgs cargs;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--system") == 0 && i + 1 < argc) {
      cargs.system = argv[++i];
    } else if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
      cargs.n = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--lookups") == 0 && i + 1 < argc) {
      cargs.lookups = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--kill-frac") == 0 && i + 1 < argc) {
      cargs.kill_frac = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--cache-file") == 0 && i + 1 < argc) {
      cargs.cache_file = argv[++i];
    } else {
      rest.push_back(argv[i]);
    }
  }
  bench::BenchArgs args =
      bench::BenchArgs::Parse(static_cast<int>(rest.size()), rest.data());
  if (args.quick && cargs.n == 10000) cargs.n = 1000;

  std::string json_doc;
  bool ok = false;
  if (cargs.system == "chord") {
    ok = RunCluster<experiments::ChordPolicy>(args, cargs, json_doc);
  } else if (cargs.system == "pastry") {
    ok = RunCluster<experiments::PastryPolicy>(args, cargs, json_doc);
  } else if (cargs.system == "kademlia") {
    ok = RunCluster<experiments::KademliaPolicy>(args, cargs, json_doc);
  } else {
    std::fprintf(stderr, "unknown --system %s\n", cargs.system.c_str());
    return 2;
  }
  if (!json_doc.empty() && !args.json_out.empty()) {
    Status st = experiments::WriteStringToFile(args.json_out, json_doc);
    if (!st.ok()) {
      std::fprintf(stderr, "json-out failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  return ok ? 0 : 1;
}
