// Million-node scale frontier: sweeps each overlay from 2^14 to 2^20 nodes
// and reports, per (overlay, n) point, lookups per second for the
// unbatched LookupInto reference loop and the batched prefetch-pipelined
// cursor engine, bytes per node out of the NodeStore/FlatTableArena
// accounting, and mean hops against the 0.5*log2(n) yardstick. The batched
// and unbatched passes route the identical job list and must agree on
// every outcome (the run aborts on a checksum mismatch), so the committed
// results/scale_frontier.json doubles as a certification artifact for the
// batched engine — tests/experiments/scale_frontier_golden_test.cc replays
// its n=2^14 rows byte-for-byte.
//
//   $ ./scale_frontier                      # full sweep, n up to 2^20
//   $ ./scale_frontier --quick              # n=2^16 only (CI scale-smoke)
//   $ ./scale_frontier --json-out results/scale_frontier.json
//
// `--threads T` shards the batched pass's job list across T workers
// (0 = all hardware threads, 1 = serial); per-job results land in global
// job order, so every reported field except the "timing" sub-object is
// identical at any thread count.
//
// Regeneration note (Kademlia bucket cap): the committed sweep runs with
// KademliaParams::bucket_capacity = 0 (unbounded, the historical layout
// the golden replay pins). Capping materialized bucket entries shrinks
// the Kademlia point dramatically — measured at n=2^20, bits=32:
// 4413.06 bytes/node unbounded -> 1341.06 at capacity 64 -> 829.06 at
// capacity 32 (live table_bytes 2.25 GiB -> 768 MiB -> 512 MiB), with
// stable routing exact at any cap (one-entry-per-class floor; see
// docs/RUNTIME.md §6). To sweep a capped frontier, set bucket_capacity
// in KademliaPolicy::MakeNetwork and write a NEW results file — the
// golden test replays the committed unbounded rows byte-for-byte.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "experiments/json_report.h"
#include "scale_scenario.h"

namespace {

using namespace peercache;
using namespace peercache::bench;
using namespace peercache::experiments;

void PrintRow(const ScaleRow& row) {
  std::printf(
      "%-9s n=2^%-2d %9.0f -> %9.0f lookups/s (x%.2f)  hops=%6.3f "
      "(%.2fx log-pred)  %7.1f B/node  build %.1fs\n",
      row.system.c_str(), row.log2_n, row.unbatched_lookups_per_sec,
      row.batched_lookups_per_sec, row.batch_speedup, row.mean_hops,
      row.hops_vs_predicted, row.bytes_per_node, row.build_seconds);
}

void AddRowJson(JsonWriter& w, const ScaleRow& row) {
  w.BeginObject();
  w.Key("system");
  w.String(row.system);
  w.Key("log2_n");
  w.Int(row.log2_n);
  w.Key("n_nodes");
  w.UInt(row.n_nodes);
  w.Key("lookups");
  w.UInt(row.lookups);
  w.Key("mean_hops");
  w.Double(row.mean_hops);
  w.Key("success_rate");
  w.Double(row.success_rate);
  w.Key("predicted_hops");
  w.Double(row.predicted_hops);
  w.Key("hops_vs_predicted");
  w.Double(row.hops_vs_predicted);
  w.Key("checksum");
  w.String([&] {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(row.checksum));
    return std::string(buf);
  }());
  w.Key("memory");
  w.BeginObject();
  w.Key("bytes_per_node");
  w.Double(row.bytes_per_node);
  w.Key("table_bytes");
  w.UInt(row.table_bytes);
  w.Key("arena_bytes");
  w.UInt(row.arena_bytes);
  w.EndObject();
  // Wall-clock block: determinism comparisons (CI's threads-1-vs-4 diff)
  // strip this sub-object, like phase_seconds elsewhere.
  w.Key("timing");
  w.BeginObject();
  w.Key("build_seconds");
  w.Double(row.build_seconds);
  w.Key("unbatched_seconds");
  w.Double(row.unbatched_seconds);
  w.Key("batched_seconds");
  w.Double(row.batched_seconds);
  w.Key("unbatched_lookups_per_sec");
  w.Double(row.unbatched_lookups_per_sec);
  w.Key("batched_lookups_per_sec");
  w.Double(row.batched_lookups_per_sec);
  w.Key("batch_speedup");
  w.Double(row.batch_speedup);
  w.EndObject();
  w.EndObject();
}

template <typename Policy>
void SweepSystem(const std::vector<int>& exps, uint64_t lookups,
                 uint64_t seed, ThreadPool* pool,
                 std::vector<ScaleRow>& rows) {
  for (int e : exps) {
    ScaleRow row = MeasureScalePoint<Policy>(e, lookups, seed, pool);
    if (!row.checksums_agree) {
      std::fprintf(stderr,
                   "FATAL: batched/unbatched outcome mismatch at %s n=2^%d\n",
                   row.system.c_str(), e);
      std::exit(1);
    }
    PrintRow(row);
    rows.push_back(std::move(row));
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  const std::vector<int> exps =
      args.quick ? std::vector<int>{16} : std::vector<int>{14, 16, 18, 20};
  const uint64_t lookups = args.quick ? uint64_t{1} << 15 : uint64_t{1} << 17;
  ThreadPool pool(args.threads);

  std::printf("scale frontier: n in {");
  for (size_t i = 0; i < exps.size(); ++i) {
    std::printf("%s2^%d", i ? ", " : "", exps[i]);
  }
  std::printf("}, %llu lookups/point, window=%d, seed=%llu, threads=%d\n\n",
              static_cast<unsigned long long>(lookups), kScaleWindow,
              static_cast<unsigned long long>(args.base_seed),
              pool.num_threads());

  std::vector<ScaleRow> rows;
  SweepSystem<ChordPolicy>(exps, lookups, args.base_seed, &pool, rows);
  SweepSystem<PastryPolicy>(exps, lookups, args.base_seed, &pool, rows);
  SweepSystem<KademliaPolicy>(exps, lookups, args.base_seed, &pool, rows);

  if (!args.json_out.empty()) {
    JsonWriter w;
    w.BeginObject();
    w.Key("schema_version");
    w.Int(kTelemetrySchemaVersion);
    w.Key("generator");
    w.String("scale_frontier");
    w.Key("kind");
    w.String("scale_frontier");
    w.Key("base_seed");
    w.UInt(args.base_seed);
    w.Key("quick");
    w.Bool(args.quick);
    w.Key("window");
    w.Int(kScaleWindow);
    w.Key("stabilize_sample");
    w.Int(kScaleStabilizeSample);
    w.Key("rows");
    w.BeginArray();
    for (const ScaleRow& row : rows) AddRowJson(w, row);
    w.EndArray();
    w.EndObject();
    Status st = WriteStringToFile(args.json_out, w.TakeString() + "\n");
    if (!st.ok()) {
      std::fprintf(stderr, "json-out failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("\nscale-frontier telemetry written to %s\n",
                args.json_out.c_str());
  }
  return 0;
}
