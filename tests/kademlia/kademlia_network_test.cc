// Unit tests for the Kademlia overlay simulator: membership lifecycle,
// XOR-minimizer key ownership (cross-checked against brute force — the
// responsible node is NOT a numeric neighbor), bucket structure and
// capacity truncation, exact greedy routing on fresh tables (including the
// truncation-safety theorem at bucket_size = 1), stale-table degradation,
// auxiliary shortcuts and hop-kind accounting, and the trace contract.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/bits.h"
#include "common/random.h"
#include "common/route_result.h"
#include "common/status.h"
#include "common/trace.h"
#include "kademlia/kademlia_network.h"

namespace peercache::kademlia {
namespace {

KademliaParams SmallParams(int bits = 10) {
  KademliaParams params;
  params.bits = bits;
  return params;
}

/// Brute-force ground truth: the live id minimizing id XOR key.
uint64_t XorClosest(const std::vector<uint64_t>& live, uint64_t key) {
  uint64_t best = live.front();
  for (uint64_t id : live) {
    if ((id ^ key) < (best ^ key)) best = id;
  }
  return best;
}

TEST(KademliaNetwork, MembershipLifecycle) {
  KademliaNetwork net(SmallParams());
  ASSERT_TRUE(net.AddNode(5).ok());
  ASSERT_TRUE(net.AddNode(9).ok());
  EXPECT_TRUE(net.IsAlive(5));
  EXPECT_EQ(net.live_count(), 2u);
  EXPECT_EQ(net.AddNode(5).code(), StatusCode::kInvalidArgument)
      << "duplicate live id";
  EXPECT_EQ(net.AddNode(uint64_t{1} << 10).code(),
            StatusCode::kInvalidArgument)
      << "id out of range for the 10-bit space";
  EXPECT_EQ(net.RemoveNode(77).code(), StatusCode::kNotFound);
  ASSERT_TRUE(net.RemoveNode(5).ok());
  EXPECT_FALSE(net.IsAlive(5));
  EXPECT_EQ(net.RemoveNode(5).code(), StatusCode::kNotFound)
      << "already dead";
  ASSERT_TRUE(net.RejoinNode(5).ok());
  EXPECT_TRUE(net.IsAlive(5));
  EXPECT_EQ(net.RejoinNode(5).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(net.RejoinNode(1234).code(), StatusCode::kNotFound);
}

TEST(KademliaNetwork, ResponsibleNodeMatchesBruteForce) {
  Rng rng(0x4ad901);
  for (int trial = 0; trial < 20; ++trial) {
    KademliaNetwork net(SmallParams(12));
    auto ids = rng.SampleDistinct(uint64_t{1} << 12, 40);
    for (uint64_t id : ids) ASSERT_TRUE(net.AddNode(id).ok());
    const std::vector<uint64_t> live = net.LiveNodeIds();
    for (int q = 0; q < 50; ++q) {
      const uint64_t key = rng.UniformU64(uint64_t{1} << 12);
      auto got = net.ResponsibleNode(key);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(got.value(), XorClosest(live, key)) << "key " << key;
    }
  }
}

TEST(KademliaNetwork, ResponsibleNodeIsNotANumericNeighbor) {
  // key = 8, nodes {1, 7}: numerically 7 is adjacent to 8, but
  // 8 XOR 7 = 15 while 8 XOR 1 = 9, so the XOR owner is 1. Any
  // ring-distance shortcut in ResponsibleNode would get this wrong.
  KademliaNetwork net(SmallParams(4));
  ASSERT_TRUE(net.AddNode(1).ok());
  ASSERT_TRUE(net.AddNode(7).ok());
  auto got = net.ResponsibleNode(8);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), 1u);
}

TEST(KademliaNetwork, ResponsibleNodeFailsOnEmptyOverlay) {
  KademliaNetwork net(SmallParams());
  EXPECT_FALSE(net.ResponsibleNode(3).ok());
}

TEST(KademliaNetwork, BucketsHoldTheRightPrefixClasses) {
  Rng rng(0x4ad902);
  KademliaNetwork net(SmallParams(10));
  auto ids = rng.SampleDistinct(uint64_t{1} << 10, 60);
  for (uint64_t id : ids) ASSERT_TRUE(net.AddNode(id).ok());
  net.StabilizeAll();
  for (uint64_t id : net.LiveNodeIds()) {
    const KademliaNode* node = net.GetNode(id);
    ASSERT_NE(node, nullptr);
    for (size_t i = 0; i < net.BucketCount(*node); ++i) {
      const auto bucket = net.Bucket(*node, i);
      EXPECT_LE(bucket.size(), 8u);  // default bucket_size
      EXPECT_TRUE(std::is_sorted(bucket.begin(), bucket.end()));
      for (uint64_t w : bucket) {
        EXPECT_EQ(static_cast<size_t>(CommonPrefixLength(id, w, 10)), i)
            << "node " << id << " bucket " << i << " entry " << w;
      }
    }
  }
}

TEST(KademliaNetwork, TruncationKeepsTheXorClosestPerBucket) {
  KademliaParams params = SmallParams(6);
  params.bucket_size = 2;
  KademliaNetwork net(params);
  // Node 0's bucket 0 (ids with the top bit set, cpl 0): all of 32..39.
  // Only the two XOR-closest to 0 — i.e. numerically smallest here — stay.
  ASSERT_TRUE(net.AddNode(0).ok());
  for (uint64_t id = 32; id < 40; ++id) ASSERT_TRUE(net.AddNode(id).ok());
  ASSERT_TRUE(net.StabilizeNode(0).ok());
  const KademliaNode* node = net.GetNode(0);
  ASSERT_NE(node, nullptr);
  ASSERT_GT(net.BucketCount(*node), 0u);
  const auto bucket0 = net.Bucket(*node, 0);
  EXPECT_EQ(std::vector<uint64_t>(bucket0.begin(), bucket0.end()),
            (std::vector<uint64_t>{32, 33}));
}

TEST(KademliaNetwork, StableLookupsAreExact) {
  Rng rng(0x4ad903);
  KademliaNetwork net(SmallParams(12));
  auto ids = rng.SampleDistinct(uint64_t{1} << 12, 80);
  for (uint64_t id : ids) ASSERT_TRUE(net.AddNode(id).ok());
  net.StabilizeAll();
  for (int q = 0; q < 200; ++q) {
    const uint64_t origin =
        ids[static_cast<size_t>(rng.UniformU64(ids.size()))];
    const uint64_t key = rng.UniformU64(uint64_t{1} << 12);
    auto route = net.Lookup(origin, key);
    ASSERT_TRUE(route.ok()) << route.status();
    EXPECT_TRUE(route->success);
    auto truth = net.ResponsibleNode(key);
    ASSERT_TRUE(truth.ok());
    EXPECT_EQ(route->destination, truth.value());
  }
}

TEST(KademliaNetwork, TruncatedBucketsStillRouteExactly) {
  // The truncation-safety theorem: bucket capacity 1 throws away almost
  // every entry, yet greedy XOR descent still reaches the global minimizer
  // because no useful distance class ever empties.
  Rng rng(0x4ad904);
  KademliaParams params = SmallParams(12);
  params.bucket_size = 1;
  KademliaNetwork net(params);
  auto ids = rng.SampleDistinct(uint64_t{1} << 12, 100);
  for (uint64_t id : ids) ASSERT_TRUE(net.AddNode(id).ok());
  net.StabilizeAll();
  for (int q = 0; q < 200; ++q) {
    const uint64_t origin =
        ids[static_cast<size_t>(rng.UniformU64(ids.size()))];
    const uint64_t key = rng.UniformU64(uint64_t{1} << 12);
    auto route = net.Lookup(origin, key);
    ASSERT_TRUE(route.ok());
    EXPECT_TRUE(route->success) << "origin " << origin << " key " << key;
  }
}

TEST(KademliaNetwork, TraceRecordsStrictXorDescent) {
  Rng rng(0x4ad905);
  KademliaNetwork net(SmallParams(12));
  auto ids = rng.SampleDistinct(uint64_t{1} << 12, 60);
  for (uint64_t id : ids) ASSERT_TRUE(net.AddNode(id).ok());
  net.StabilizeAll();
  for (int q = 0; q < 50; ++q) {
    const uint64_t origin =
        ids[static_cast<size_t>(rng.UniformU64(ids.size()))];
    const uint64_t key = rng.UniformU64(uint64_t{1} << 12);
    RouteTrace trace;
    auto route = net.Lookup(origin, key, &trace);
    ASSERT_TRUE(route.ok());
    EXPECT_EQ(trace.origin, origin);
    EXPECT_EQ(trace.key, key);
    EXPECT_EQ(trace.hops, route->hops);
    uint64_t pos = origin;
    for (const HopRecord& r : trace.path) {
      EXPECT_EQ(r.from, pos);
      EXPECT_LT(r.to ^ key, r.from ^ key) << "hop must shrink XOR distance";
      EXPECT_EQ(r.remaining, r.to ^ key);
      EXPECT_EQ(r.kind, HopEntryKind::kBucket) << "no auxiliaries installed";
      pos = r.to;
    }
    EXPECT_EQ(pos, route->destination);
  }
}

TEST(KademliaNetwork, AuxiliaryShortcutIsUsedAndCounted) {
  // bucket_size = 1 makes node 0's bucket 0 retain only 0x800 (XOR-closest
  // to 0), so an auxiliary pointing at 0x900 is strictly better for keys
  // near 0x900 and must win the greedy min as an auxiliary hop.
  KademliaParams params = SmallParams(12);
  params.bucket_size = 1;
  KademliaNetwork net(params);
  ASSERT_TRUE(net.AddNode(0).ok());
  ASSERT_TRUE(net.AddNode(0x800).ok());
  ASSERT_TRUE(net.AddNode(0x900).ok());
  net.StabilizeAll();
  ASSERT_TRUE(net.SetAuxiliaries(0, {0x900}).ok());
  RouteTrace trace;
  auto route = net.Lookup(0, 0x901, &trace);
  ASSERT_TRUE(route.ok());
  EXPECT_TRUE(route->success);
  EXPECT_EQ(route->destination, 0x900u);
  EXPECT_EQ(route->hops, 1);
  EXPECT_EQ(route->aux_hops, 1);
  ASSERT_EQ(trace.path.size(), 1u);
  EXPECT_EQ(trace.path[0].kind, HopEntryKind::kAuxiliary);
}

TEST(KademliaNetwork, StaleTablesSkipDeadEntriesAtUseTime) {
  Rng rng(0x4ad906);
  KademliaNetwork net(SmallParams(12));
  auto ids = rng.SampleDistinct(uint64_t{1} << 12, 60);
  for (uint64_t id : ids) ASSERT_TRUE(net.AddNode(id).ok());
  net.StabilizeAll();
  // Crash a third of the overlay with NO re-stabilization: survivors'
  // buckets still name the dead, but ping-before-forward skips them.
  std::vector<uint64_t> live;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i % 3 == 0) {
      ASSERT_TRUE(net.RemoveNode(ids[i]).ok());
    } else {
      live.push_back(ids[i]);
    }
  }
  for (int q = 0; q < 100; ++q) {
    const uint64_t origin =
        live[static_cast<size_t>(rng.UniformU64(live.size()))];
    const uint64_t key = rng.UniformU64(uint64_t{1} << 12);
    auto route = net.Lookup(origin, key);
    ASSERT_TRUE(route.ok());
    EXPECT_TRUE(net.IsAlive(route->destination))
        << "a lookup must never end at a dead node";
  }
}

TEST(KademliaNetwork, CoreNeighborIdsAreSortedAndDeduplicated) {
  Rng rng(0x4ad907);
  KademliaNetwork net(SmallParams(10));
  auto ids = rng.SampleDistinct(uint64_t{1} << 10, 30);
  for (uint64_t id : ids) ASSERT_TRUE(net.AddNode(id).ok());
  net.StabilizeAll();
  const uint64_t self = ids[0];
  std::vector<uint64_t> cores = net.CoreNeighborIds(self);
  EXPECT_FALSE(cores.empty());
  EXPECT_TRUE(std::is_sorted(cores.begin(), cores.end()));
  EXPECT_TRUE(std::adjacent_find(cores.begin(), cores.end()) == cores.end());
  EXPECT_TRUE(std::find(cores.begin(), cores.end(), self) == cores.end());
  EXPECT_TRUE(net.CoreNeighborIds(9999).empty()) << "unknown node";
}

TEST(KademliaNetwork, StabilizePrunesDeadAuxiliaries) {
  KademliaNetwork net(SmallParams(8));
  ASSERT_TRUE(net.AddNode(1).ok());
  ASSERT_TRUE(net.AddNode(2).ok());
  ASSERT_TRUE(net.AddNode(3).ok());
  ASSERT_TRUE(net.SetAuxiliaries(1, {2, 3}).ok());
  ASSERT_TRUE(net.RemoveNode(3).ok());
  ASSERT_TRUE(net.StabilizeNode(1).ok());
  const KademliaNode* node = net.GetNode(1);
  ASSERT_NE(node, nullptr);
  const auto aux = net.Auxiliaries(*node);
  EXPECT_EQ(std::vector<uint64_t>(aux.begin(), aux.end()),
            (std::vector<uint64_t>{2}));
  EXPECT_EQ(net.SetAuxiliaries(3, {}).code(), StatusCode::kNotFound)
      << "cannot install auxiliaries on a dead node";
}

TEST(KademliaNetwork, RejoinKeepsFrequenciesDropsAuxiliaries) {
  KademliaNetwork net(SmallParams(8));
  ASSERT_TRUE(net.AddNode(1).ok());
  ASSERT_TRUE(net.AddNode(2).ok());
  KademliaNode* node = net.GetNode(1);
  ASSERT_NE(node, nullptr);
  node->frequencies.Record(2);
  ASSERT_TRUE(net.SetAuxiliaries(1, {2}).ok());
  ASSERT_TRUE(net.RemoveNode(1).ok());
  ASSERT_TRUE(net.RejoinNode(1).ok());
  node = net.GetNode(1);
  EXPECT_TRUE(net.Auxiliaries(*node).empty()) << "auxiliaries are lost on crash";
  EXPECT_EQ(node->frequencies.distinct(), 1u) << "frequency history survives";
}

TEST(KademliaNetwork, ForgetStateClearsEverything) {
  KademliaNetwork net(SmallParams(8));
  ASSERT_TRUE(net.AddNode(1).ok());
  ASSERT_TRUE(net.AddNode(2).ok());
  net.GetNode(1)->frequencies.Record(2);
  ASSERT_TRUE(net.RemoveNode(1, /*forget_state=*/true).ok());
  ASSERT_TRUE(net.RejoinNode(1).ok());
  EXPECT_EQ(net.GetNode(1)->frequencies.distinct(), 0u);
}

TEST(KademliaNetwork, LookupFromDeadOriginFails) {
  KademliaNetwork net(SmallParams(8));
  ASSERT_TRUE(net.AddNode(1).ok());
  ASSERT_TRUE(net.AddNode(2).ok());
  ASSERT_TRUE(net.RemoveNode(2).ok());
  EXPECT_EQ(net.Lookup(2, 5).status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(net.Lookup(42, 5).status().code(), StatusCode::kUnavailable);
}

TEST(KademliaNetwork, SingleNodeAnswersEverythingItself) {
  KademliaNetwork net(SmallParams(8));
  ASSERT_TRUE(net.AddNode(7).ok());
  for (uint64_t key : {uint64_t{0}, uint64_t{7}, uint64_t{255}}) {
    auto route = net.Lookup(7, key);
    ASSERT_TRUE(route.ok());
    EXPECT_TRUE(route->success);
    EXPECT_EQ(route->destination, 7u);
    EXPECT_EQ(route->hops, 0);
  }
}

TEST(KademliaNetwork, BucketCapacityCapsMaterializedEntries) {
  Rng rng(0xca9);
  const std::vector<uint64_t> ids = rng.SampleDistinct(uint64_t{1} << 10, 256);

  KademliaParams unbounded = SmallParams();
  KademliaNetwork full(unbounded);
  ASSERT_TRUE(full.BulkAdd(ids).ok());
  full.StabilizeAll();

  KademliaParams capped_params = SmallParams();
  capped_params.bucket_capacity = 12;
  KademliaNetwork capped(capped_params);
  ASSERT_TRUE(capped.BulkAdd(ids).ok());
  capped.StabilizeAll();

  for (uint64_t id : ids) {
    const KademliaNode& fnode = *full.GetNode(id);
    const KademliaNode& cnode = *capped.GetNode(id);
    EXPECT_LE(capped.BucketEntries(cnode).size(), 12u);
    // Every non-empty class survives (the exactness floor), and each kept
    // class is a subset of the unbounded class: the budget drops entries,
    // never whole distance classes and never entries it didn't have.
    ASSERT_EQ(capped.BucketCount(cnode), full.BucketCount(fnode));
    for (size_t i = 0; i < full.BucketCount(fnode); ++i) {
      const auto fb = full.Bucket(fnode, i);
      const auto cb = capped.Bucket(cnode, i);
      if (!fb.empty()) {
        EXPECT_FALSE(cb.empty());
      }
      for (uint64_t entry : cb) {
        EXPECT_TRUE(std::find(fb.begin(), fb.end(), entry) != fb.end());
      }
    }
  }
  // The cap is the point: strictly fewer live routing-table bytes than the
  // unbounded tables (arena chunks are allocated in fixed blocks, so the
  // used-word count is the honest measure).
  EXPECT_LT(capped.MemoryUsage().table_bytes, full.MemoryUsage().table_bytes);
}

TEST(KademliaNetwork, BucketCapacityKeepsStableRoutingExact) {
  Rng rng(0xcab);
  const std::vector<uint64_t> ids = rng.SampleDistinct(uint64_t{1} << 10, 300);
  KademliaParams params = SmallParams();
  params.bucket_capacity = 10;  // one entry per class at bits = 10
  KademliaNetwork net(params);
  ASSERT_TRUE(net.BulkAdd(ids).ok());
  net.StabilizeAll();
  for (int i = 0; i < 400; ++i) {
    const uint64_t origin = ids[rng.UniformU64(ids.size())];
    const uint64_t key = rng.UniformU64(uint64_t{1} << 10);
    auto route = net.Lookup(origin, key);
    ASSERT_TRUE(route.ok());
    EXPECT_TRUE(route->success);
    EXPECT_EQ(route->destination, XorClosest(ids, key));
  }
}

TEST(KademliaNetwork, HopBudgetCapsTheRoute) {
  KademliaParams params = SmallParams(8);
  params.max_route_hops = 0;  // any forward at all overruns the budget
  KademliaNetwork net(params);
  ASSERT_TRUE(net.AddNode(0).ok());
  ASSERT_TRUE(net.AddNode(255).ok());
  net.StabilizeAll();
  auto route = net.Lookup(0, 255);
  ASSERT_TRUE(route.ok());
  EXPECT_FALSE(route->success);
  EXPECT_EQ(route->hops, 0);
}

}  // namespace
}  // namespace peercache::kademlia
