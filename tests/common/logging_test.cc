#include "common/logging.h"

#include <gtest/gtest.h>

namespace peercache {
namespace {

TEST(Logging, LevelRoundTrips) {
  LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(prev);
}

TEST(Logging, MacroCompilesAndFilters) {
  LogLevel prev = GetLogLevel();
  // Below-threshold messages must not evaluate their stream expressions.
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto count = [&evaluations]() {
    ++evaluations;
    return 1;
  };
  PEERCACHE_LOG(kDebug) << "dropped " << count();
  EXPECT_EQ(evaluations, 0) << "suppressed log must not evaluate operands";
  PEERCACHE_LOG(kError) << "emitted " << count();
  EXPECT_EQ(evaluations, 1);
  SetLogLevel(prev);
}

// The macro expands to an if/else; a bare `if (...) PEERCACHE_LOG(...) << x;
// else ...` must bind the user's else to the user's if. This test fails to
// compile (or takes the wrong branch) if the macro reintroduces the
// dangling-else hazard.
TEST(Logging, MacroIsDanglingElseSafe) {
  LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  bool else_taken = false;
  if (true)
    PEERCACHE_LOG(kInfo) << "suppressed";
  else
    else_taken = true;
  EXPECT_FALSE(else_taken);

  bool then_taken = false;
  if (false)
    PEERCACHE_LOG(kInfo) << "never";
  else
    then_taken = true;
  EXPECT_TRUE(then_taken);
  SetLogLevel(prev);
}

TEST(Logging, ParseLogLevelAcceptsCanonicalNames) {
  LogLevel level = LogLevel::kError;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("info", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("warning", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
}

TEST(Logging, ParseLogLevelRejectsUnknownAndLeavesOutputAlone) {
  LogLevel level = LogLevel::kInfo;
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_FALSE(ParseLogLevel("", &level));
  EXPECT_FALSE(ParseLogLevel("Debug", &level));  // case-sensitive
  EXPECT_EQ(level, LogLevel::kInfo);
}

TEST(Logging, LogLevelNameRoundTripsThroughParse) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarning,
                         LogLevel::kError}) {
    LogLevel parsed = LogLevel::kDebug;
    EXPECT_TRUE(ParseLogLevel(LogLevelName(level), &parsed));
    EXPECT_EQ(parsed, level);
  }
}

TEST(Logging, DefaultLevelIsWarning) {
  // The library must be silent for INFO unless opted in. (The default is
  // set at namespace scope; this test documents the contract.)
  // Note: other tests may have changed the level; just verify the setter
  // takes effect rather than asserting process-global state.
  SetLogLevel(LogLevel::kWarning);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
}

}  // namespace
}  // namespace peercache
