#include "common/logging.h"

#include <gtest/gtest.h>

namespace peercache {
namespace {

TEST(Logging, LevelRoundTrips) {
  LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(prev);
}

TEST(Logging, MacroCompilesAndFilters) {
  LogLevel prev = GetLogLevel();
  // Below-threshold messages must not evaluate their stream expressions.
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto count = [&evaluations]() {
    ++evaluations;
    return 1;
  };
  PEERCACHE_LOG(kDebug) << "dropped " << count();
  EXPECT_EQ(evaluations, 0) << "suppressed log must not evaluate operands";
  PEERCACHE_LOG(kError) << "emitted " << count();
  EXPECT_EQ(evaluations, 1);
  SetLogLevel(prev);
}

TEST(Logging, DefaultLevelIsWarning) {
  // The library must be silent for INFO unless opted in. (The default is
  // set at namespace scope; this test documents the contract.)
  // Note: other tests may have changed the level; just verify the setter
  // takes effect rather than asserting process-global state.
  SetLogLevel(LogLevel::kWarning);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
}

}  // namespace
}  // namespace peercache
