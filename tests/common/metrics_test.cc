#include "common/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "common/thread_pool.h"

namespace peercache {
namespace {

TEST(MetricsShard, CountersAccumulate) {
  MetricsShard shard;
  EXPECT_EQ(shard.counter("lookups"), 0u);
  shard.Count("lookups");
  shard.Count("lookups", 4);
  EXPECT_EQ(shard.counter("lookups"), 5u);
  EXPECT_EQ(shard.counter("other"), 0u);
  EXPECT_FALSE(shard.empty());
}

TEST(MetricsShard, GaugeKeepsLatestValue) {
  MetricsShard shard;
  shard.SetGauge("queue_depth", 3.0);
  shard.SetGauge("queue_depth", 7.5);
  EXPECT_DOUBLE_EQ(shard.gauge("queue_depth"), 7.5);
  EXPECT_DOUBLE_EQ(shard.gauge("missing"), 0.0);
}

TEST(MetricsShard, ObserveFeedsOnlineStats) {
  MetricsShard shard;
  shard.Observe("latency", 1.0);
  shard.Observe("latency", 3.0);
  const OnlineStats* stats = shard.stats("latency");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->count(), 2u);
  EXPECT_DOUBLE_EQ(stats->mean(), 2.0);
  EXPECT_EQ(shard.stats("missing"), nullptr);
}

TEST(MetricsShard, MergeStatsMatchesPerSampleObserveBitForBit) {
  // Hot loops batch samples locally and flush with MergeStats; the result
  // must be indistinguishable from Observe-ing each sample in order.
  MetricsShard observed;
  OnlineStats local;
  for (int i = 0; i < 1000; ++i) {
    const double x = 0.1 * i + 0.3;
    observed.Observe("hops", x);
    local.Add(x);
  }
  MetricsShard batched;
  batched.MergeStats("hops", local);
  const OnlineStats* a = observed.stats("hops");
  const OnlineStats* b = batched.stats("hops");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->count(), b->count());
  EXPECT_EQ(a->mean(), b->mean());
  EXPECT_EQ(a->stddev(), b->stddev());
  EXPECT_EQ(a->sum(), b->sum());
  EXPECT_EQ(a->min(), b->min());
  EXPECT_EQ(a->max(), b->max());
}

TEST(MetricsShard, MergeStatsWithNoSamplesCreatesNoInstrument) {
  MetricsShard shard;
  shard.MergeStats("hops", OnlineStats{});
  EXPECT_EQ(shard.stats("hops"), nullptr);
  EXPECT_TRUE(shard.empty());
}

TEST(MetricsShard, ObserveHistogramUsesFirstMaxValue) {
  MetricsShard shard;
  shard.ObserveHistogram("hops", 3, /*max_value=*/8);
  shard.ObserveHistogram("hops", 100);  // overflows the 8-bucket histogram
  const Histogram* hist = shard.histogram("hops");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->max_value(), 8);
  EXPECT_EQ(hist->count(), 2u);
  EXPECT_EQ(hist->overflow(), 1u);
}

TEST(MetricsShard, TimersAdd) {
  MetricsShard shard;
  shard.AddTimerSeconds("phase", 0.5);
  shard.AddTimerSeconds("phase", 0.25);
  EXPECT_DOUBLE_EQ(shard.timer_seconds("phase"), 0.75);
}

TEST(MetricsShard, ScopedTimerRecordsNonNegativeTime) {
  MetricsShard shard;
  { ScopedTimer timer(shard, "scope"); }
  EXPECT_GE(shard.timer_seconds("scope"), 0.0);
  EXPECT_FALSE(shard.empty());
}

TEST(MetricsShard, MergeCombinesEveryInstrumentKind) {
  MetricsShard a, b;
  a.Count("c", 2);
  b.Count("c", 3);
  a.SetGauge("g", 1.0);
  b.SetGauge("g", 9.0);
  a.Observe("s", 1.0);
  b.Observe("s", 3.0);
  a.ObserveHistogram("h", 1, 4);
  b.ObserveHistogram("h", 2, 4);
  a.AddTimerSeconds("t", 0.5);
  b.AddTimerSeconds("t", 0.5);

  a.Merge(b);
  EXPECT_EQ(a.counter("c"), 5u);
  EXPECT_DOUBLE_EQ(a.gauge("g"), 9.0);  // later shard wins
  EXPECT_EQ(a.stats("s")->count(), 2u);
  EXPECT_DOUBLE_EQ(a.stats("s")->mean(), 2.0);
  EXPECT_EQ(a.histogram("h")->count(), 2u);
  EXPECT_DOUBLE_EQ(a.timer_seconds("t"), 1.0);
}

TEST(MetricsShard, WriteJsonSortsKeysAndCoversAllSections) {
  MetricsShard shard;
  shard.Count("zeta");
  shard.Count("alpha");
  shard.SetGauge("g", 1.5);
  shard.Observe("s", 2.0);
  shard.ObserveHistogram("h", 1, 4);
  shard.AddTimerSeconds("t", 0.1);

  JsonWriter w;
  shard.WriteJson(w);
  const std::string json = w.TakeString();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"timers_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"stats\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  // std::map iteration puts "alpha" before "zeta" regardless of insert order.
  EXPECT_LT(json.find("\"alpha\""), json.find("\"zeta\""));
}

// Fills one shard per index with index-dependent values, writing shards
// concurrently at several thread counts. Because each (index, value) stream
// is identical and Merged() folds shards in index order, the merged snapshot
// must serialize to byte-identical JSON at every thread count.
TEST(MetricsRegistry, MergedSnapshotIsThreadCountInvariant) {
  constexpr size_t kShards = 16;
  auto run = [](int threads) {
    MetricsRegistry registry(kShards);
    ThreadPool pool(threads);
    pool.ParallelFor(0, kShards, 1, [&](size_t i) {
      MetricsShard& shard = registry.shard(i);
      for (size_t q = 0; q <= i; ++q) {
        shard.Count("queries");
        // Values with non-terminating binary expansions so that any
        // merge-order change would show up in the low-order bits.
        shard.Observe("hops", 0.1 * static_cast<double>(i + q) + 0.3);
        shard.ObserveHistogram("hops.hist", static_cast<int>((i + q) % 7), 8);
        shard.AddTimerSeconds("work", 1e-3 / static_cast<double>(i + 1));
      }
    });
    JsonWriter w;
    registry.Merged().WriteJson(w);
    return w.TakeString();
  };

  const std::string serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(4));

  // Sanity: the merged snapshot actually saw all the samples.
  EXPECT_NE(serial.find("\"queries\""), std::string::npos);
}

TEST(MetricsRegistry, ZeroShardsClampsToOne) {
  MetricsRegistry registry(0);
  EXPECT_EQ(registry.shard_count(), 1u);
}

TEST(MetricsShard, ObserveLatencyFeedsLogHistogram) {
  MetricsShard shard;
  EXPECT_EQ(shard.latency_histogram("rtt"), nullptr);
  shard.ObserveLatency("rtt", 12.0);
  shard.ObserveLatency("rtt", 120.0);
  const LogHistogram* h = shard.latency_histogram("rtt");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 2u);
  EXPECT_DOUBLE_EQ(h->min(), 12.0);
  EXPECT_DOUBLE_EQ(h->max(), 120.0);
}

TEST(MetricsShard, MergeLatencyMatchesPerSampleObserve) {
  MetricsShard observed;
  LogHistogram local;
  for (int i = 0; i < 500; ++i) {
    const double x = 0.7 * i + 0.2;
    observed.ObserveLatency("rtt", x);
    local.Add(x);
  }
  MetricsShard batched;
  batched.MergeLatency("rtt", local);
  const LogHistogram* a = observed.latency_histogram("rtt");
  const LogHistogram* b = batched.latency_histogram("rtt");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->count(), b->count());
  EXPECT_EQ(a->sum(), b->sum());
  for (double q : {0.5, 0.9, 0.99}) {
    EXPECT_EQ(a->Percentile(q), b->Percentile(q)) << "q=" << q;
  }
}

// The latency_histograms JSON section appears only when a LogHistogram
// instrument exists — latency-off documents keep their historical bytes.
TEST(MetricsShard, LatencySectionIsConditional) {
  MetricsShard off;
  off.Count("queries");
  JsonWriter w_off;
  off.WriteJson(w_off);
  EXPECT_EQ(w_off.TakeString().find("latency_histograms"), std::string::npos);

  MetricsShard on;
  on.ObserveLatency("rtt", 5.0);
  JsonWriter w_on;
  on.WriteJson(w_on);
  EXPECT_NE(w_on.TakeString().find("\"latency_histograms\""),
            std::string::npos);
}

// Stress the shard fan-in: many shards, every instrument kind interleaved,
// folded by Merged() — the result must match a serial shard fed the same
// stream, field for field and bit for bit.
TEST(MetricsRegistry, MergedManyShardsMatchesSerialReference) {
  constexpr size_t kShards = 64;
  constexpr int kPerShard = 200;
  MetricsRegistry registry(kShards);
  MetricsShard serial;
  for (size_t s = 0; s < kShards; ++s) {
    MetricsShard& shard = registry.shard(s);
    for (int i = 0; i < kPerShard; ++i) {
      const double x = 0.1 * static_cast<double>(s * kPerShard + i) + 0.3;
      shard.Count("events");
      serial.Count("events");
      shard.AddTimerSeconds("work", x * 1e-6);
      serial.AddTimerSeconds("work", x * 1e-6);
      shard.Observe("hops", x);
      serial.Observe("hops", x);
      shard.ObserveLatency("rtt", x);
      serial.ObserveLatency("rtt", x);
      shard.ObserveHistogram("hops.hist", static_cast<int>(i % 11), 16);
      serial.ObserveHistogram("hops.hist", static_cast<int>(i % 11), 16);
    }
  }
  const MetricsShard merged = registry.Merged();
  // Integer-derived state (counts, bucket tallies, and the percentiles
  // computed from them plus exact min/max) is identical; compensated float
  // sums associate differently across the shard fold, so those compare to
  // within a few ulps.
  EXPECT_EQ(merged.counter("events"),
            static_cast<uint64_t>(kShards) * kPerShard);
  EXPECT_EQ(merged.counter("events"), serial.counter("events"));
  EXPECT_NEAR(merged.timer_seconds("work"), serial.timer_seconds("work"),
              1e-12 * serial.timer_seconds("work"));
  ASSERT_NE(merged.stats("hops"), nullptr);
  EXPECT_EQ(merged.stats("hops")->count(), serial.stats("hops")->count());
  EXPECT_EQ(merged.stats("hops")->min(), serial.stats("hops")->min());
  EXPECT_EQ(merged.stats("hops")->max(), serial.stats("hops")->max());
  EXPECT_NEAR(merged.stats("hops")->sum(), serial.stats("hops")->sum(),
              1e-12 * serial.stats("hops")->sum());
  EXPECT_NEAR(merged.stats("hops")->stddev(), serial.stats("hops")->stddev(),
              1e-9 * serial.stats("hops")->stddev());
  ASSERT_NE(merged.latency_histogram("rtt"), nullptr);
  EXPECT_EQ(merged.latency_histogram("rtt")->count(),
            serial.latency_histogram("rtt")->count());
  EXPECT_NEAR(merged.latency_histogram("rtt")->sum(),
              serial.latency_histogram("rtt")->sum(),
              1e-12 * serial.latency_histogram("rtt")->sum());
  for (double q : {0.5, 0.99, 0.999}) {
    EXPECT_EQ(merged.latency_histogram("rtt")->Percentile(q),
              serial.latency_histogram("rtt")->Percentile(q));
  }
  ASSERT_NE(merged.histogram("hops.hist"), nullptr);
  EXPECT_EQ(merged.histogram("hops.hist")->count(),
            serial.histogram("hops.hist")->count());
  EXPECT_EQ(merged.histogram("hops.hist")->sum(),
            serial.histogram("hops.hist")->sum());
}

}  // namespace
}  // namespace peercache
