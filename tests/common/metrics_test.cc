#include "common/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "common/thread_pool.h"

namespace peercache {
namespace {

TEST(MetricsShard, CountersAccumulate) {
  MetricsShard shard;
  EXPECT_EQ(shard.counter("lookups"), 0u);
  shard.Count("lookups");
  shard.Count("lookups", 4);
  EXPECT_EQ(shard.counter("lookups"), 5u);
  EXPECT_EQ(shard.counter("other"), 0u);
  EXPECT_FALSE(shard.empty());
}

TEST(MetricsShard, GaugeKeepsLatestValue) {
  MetricsShard shard;
  shard.SetGauge("queue_depth", 3.0);
  shard.SetGauge("queue_depth", 7.5);
  EXPECT_DOUBLE_EQ(shard.gauge("queue_depth"), 7.5);
  EXPECT_DOUBLE_EQ(shard.gauge("missing"), 0.0);
}

TEST(MetricsShard, ObserveFeedsOnlineStats) {
  MetricsShard shard;
  shard.Observe("latency", 1.0);
  shard.Observe("latency", 3.0);
  const OnlineStats* stats = shard.stats("latency");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->count(), 2u);
  EXPECT_DOUBLE_EQ(stats->mean(), 2.0);
  EXPECT_EQ(shard.stats("missing"), nullptr);
}

TEST(MetricsShard, MergeStatsMatchesPerSampleObserveBitForBit) {
  // Hot loops batch samples locally and flush with MergeStats; the result
  // must be indistinguishable from Observe-ing each sample in order.
  MetricsShard observed;
  OnlineStats local;
  for (int i = 0; i < 1000; ++i) {
    const double x = 0.1 * i + 0.3;
    observed.Observe("hops", x);
    local.Add(x);
  }
  MetricsShard batched;
  batched.MergeStats("hops", local);
  const OnlineStats* a = observed.stats("hops");
  const OnlineStats* b = batched.stats("hops");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->count(), b->count());
  EXPECT_EQ(a->mean(), b->mean());
  EXPECT_EQ(a->stddev(), b->stddev());
  EXPECT_EQ(a->sum(), b->sum());
  EXPECT_EQ(a->min(), b->min());
  EXPECT_EQ(a->max(), b->max());
}

TEST(MetricsShard, MergeStatsWithNoSamplesCreatesNoInstrument) {
  MetricsShard shard;
  shard.MergeStats("hops", OnlineStats{});
  EXPECT_EQ(shard.stats("hops"), nullptr);
  EXPECT_TRUE(shard.empty());
}

TEST(MetricsShard, ObserveHistogramUsesFirstMaxValue) {
  MetricsShard shard;
  shard.ObserveHistogram("hops", 3, /*max_value=*/8);
  shard.ObserveHistogram("hops", 100);  // overflows the 8-bucket histogram
  const Histogram* hist = shard.histogram("hops");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->max_value(), 8);
  EXPECT_EQ(hist->count(), 2u);
  EXPECT_EQ(hist->overflow(), 1u);
}

TEST(MetricsShard, TimersAdd) {
  MetricsShard shard;
  shard.AddTimerSeconds("phase", 0.5);
  shard.AddTimerSeconds("phase", 0.25);
  EXPECT_DOUBLE_EQ(shard.timer_seconds("phase"), 0.75);
}

TEST(MetricsShard, ScopedTimerRecordsNonNegativeTime) {
  MetricsShard shard;
  { ScopedTimer timer(shard, "scope"); }
  EXPECT_GE(shard.timer_seconds("scope"), 0.0);
  EXPECT_FALSE(shard.empty());
}

TEST(MetricsShard, MergeCombinesEveryInstrumentKind) {
  MetricsShard a, b;
  a.Count("c", 2);
  b.Count("c", 3);
  a.SetGauge("g", 1.0);
  b.SetGauge("g", 9.0);
  a.Observe("s", 1.0);
  b.Observe("s", 3.0);
  a.ObserveHistogram("h", 1, 4);
  b.ObserveHistogram("h", 2, 4);
  a.AddTimerSeconds("t", 0.5);
  b.AddTimerSeconds("t", 0.5);

  a.Merge(b);
  EXPECT_EQ(a.counter("c"), 5u);
  EXPECT_DOUBLE_EQ(a.gauge("g"), 9.0);  // later shard wins
  EXPECT_EQ(a.stats("s")->count(), 2u);
  EXPECT_DOUBLE_EQ(a.stats("s")->mean(), 2.0);
  EXPECT_EQ(a.histogram("h")->count(), 2u);
  EXPECT_DOUBLE_EQ(a.timer_seconds("t"), 1.0);
}

TEST(MetricsShard, WriteJsonSortsKeysAndCoversAllSections) {
  MetricsShard shard;
  shard.Count("zeta");
  shard.Count("alpha");
  shard.SetGauge("g", 1.5);
  shard.Observe("s", 2.0);
  shard.ObserveHistogram("h", 1, 4);
  shard.AddTimerSeconds("t", 0.1);

  JsonWriter w;
  shard.WriteJson(w);
  const std::string json = w.TakeString();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"timers_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"stats\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  // std::map iteration puts "alpha" before "zeta" regardless of insert order.
  EXPECT_LT(json.find("\"alpha\""), json.find("\"zeta\""));
}

// Fills one shard per index with index-dependent values, writing shards
// concurrently at several thread counts. Because each (index, value) stream
// is identical and Merged() folds shards in index order, the merged snapshot
// must serialize to byte-identical JSON at every thread count.
TEST(MetricsRegistry, MergedSnapshotIsThreadCountInvariant) {
  constexpr size_t kShards = 16;
  auto run = [](int threads) {
    MetricsRegistry registry(kShards);
    ThreadPool pool(threads);
    pool.ParallelFor(0, kShards, 1, [&](size_t i) {
      MetricsShard& shard = registry.shard(i);
      for (size_t q = 0; q <= i; ++q) {
        shard.Count("queries");
        // Values with non-terminating binary expansions so that any
        // merge-order change would show up in the low-order bits.
        shard.Observe("hops", 0.1 * static_cast<double>(i + q) + 0.3);
        shard.ObserveHistogram("hops.hist", static_cast<int>((i + q) % 7), 8);
        shard.AddTimerSeconds("work", 1e-3 / static_cast<double>(i + 1));
      }
    });
    JsonWriter w;
    registry.Merged().WriteJson(w);
    return w.TakeString();
  };

  const std::string serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(4));

  // Sanity: the merged snapshot actually saw all the samples.
  EXPECT_NE(serial.find("\"queries\""), std::string::npos);
}

TEST(MetricsRegistry, ZeroShardsClampsToOne) {
  MetricsRegistry registry(0);
  EXPECT_EQ(registry.shard_count(), 1u);
}

}  // namespace
}  // namespace peercache
