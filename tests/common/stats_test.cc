#include "common/stats.h"

#include <gtest/gtest.h>

namespace peercache {
namespace {

TEST(OnlineStats, Empty) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, KnownValues) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MergeMatchesCombined) {
  OnlineStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    double x = i * 0.7 - 3;
    (i % 2 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, empty;
  a.Add(3.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

// 10 million adds of 0.1: a naive accumulator drifts by ~1e-4 by this point
// (0.1 is not representable in binary), the compensated sum stays exact to
// the last ulp of the true total.
TEST(OnlineStats, CompensatedSumNoDriftOverTenMillionSamples) {
  OnlineStats s;
  constexpr int kSamples = 10'000'000;
  for (int i = 0; i < kSamples; ++i) s.Add(0.1);
  const double expected = 0.1 * kSamples;
  EXPECT_NEAR(s.sum(), expected, 1e-7);
  EXPECT_NEAR(s.sum(), 1e6, 1e-7);
}

// The compensation must survive Merge too: merging many small shards whose
// sums are each tiny relative to the running total is exactly the case where
// naive addition loses low-order bits.
TEST(OnlineStats, CompensatedSumSurvivesSharding) {
  OnlineStats merged;
  constexpr int kShards = 1000;
  constexpr int kPerShard = 10'000;
  for (int shard = 0; shard < kShards; ++shard) {
    OnlineStats s;
    for (int i = 0; i < kPerShard; ++i) s.Add(0.1);
    merged.Merge(s);
  }
  EXPECT_EQ(merged.count(), static_cast<uint64_t>(kShards) * kPerShard);
  EXPECT_NEAR(merged.sum(), 1e6, 1e-7);
}

// Mixed magnitudes: adding 1.0 then 1e100 then 1.0 then -1e100 loses both
// 1.0s in a naive sum; Neumaier compensation recovers them.
TEST(OnlineStats, CompensatedSumHandlesCancellation) {
  OnlineStats s;
  s.Add(1.0);
  s.Add(1e100);
  s.Add(1.0);
  s.Add(-1e100);
  EXPECT_DOUBLE_EQ(s.sum(), 2.0);
}

TEST(Histogram, BasicCountsAndMean) {
  Histogram h(10);
  h.Add(1);
  h.Add(1);
  h.Add(4);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.BucketCount(1), 2u);
  EXPECT_EQ(h.BucketCount(4), 1u);
  EXPECT_DOUBLE_EQ(h.Mean(), 2.0);
}

TEST(Histogram, Percentiles) {
  Histogram h(20);
  for (int v = 1; v <= 100; ++v) h.Add(v % 10);
  EXPECT_EQ(h.Percentile(0.0), 0);
  EXPECT_EQ(h.Percentile(0.5), 4);
  EXPECT_EQ(h.Percentile(1.0), 9);
}

TEST(Histogram, Overflow) {
  Histogram h(4);
  h.Add(100);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.Mean(), 100.0);  // sum is exact even when bucketed out
}

TEST(Histogram, PercentileOfEmptyIsZero) {
  Histogram h(8);
  EXPECT_EQ(h.Percentile(0.0), 0);
  EXPECT_EQ(h.Percentile(0.5), 0);
  EXPECT_EQ(h.Percentile(1.0), 0);
}

// q = 0 asks for the smallest observed value, not bucket 0.
TEST(Histogram, PercentileZeroIsMinimum) {
  Histogram h(8);
  h.Add(3);
  h.Add(5);
  EXPECT_EQ(h.Percentile(0.0), 3);
}

// q = 1 asks for the largest observed value.
TEST(Histogram, PercentileOneIsMaximum) {
  Histogram h(8);
  h.Add(3);
  h.Add(5);
  EXPECT_EQ(h.Percentile(1.0), 5);
}

TEST(Histogram, PercentileSingleValue) {
  Histogram h(8);
  h.Add(4);
  EXPECT_EQ(h.Percentile(0.0), 4);
  EXPECT_EQ(h.Percentile(0.5), 4);
  EXPECT_EQ(h.Percentile(1.0), 4);
}

// When every sample overflowed, the only honest answer is the sentinel one
// past the largest tracked bucket.
TEST(Histogram, PercentileAllOverflow) {
  Histogram h(4);
  h.Add(50);
  h.Add(60);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.Percentile(0.5), 5);  // == max_value() + 1
  EXPECT_EQ(h.Percentile(0.5), h.max_value() + 1);
}

TEST(Histogram, PercentileMixedOverflow) {
  Histogram h(4);
  h.Add(1);
  h.Add(50);
  EXPECT_EQ(h.Percentile(0.5), 1);
  EXPECT_EQ(h.Percentile(1.0), 5);  // overflow sentinel
}

TEST(Histogram, SumTracksExactTotal) {
  Histogram h(4);
  h.Add(1);
  h.Add(2);
  h.Add(100);  // overflow still contributes its exact value
  EXPECT_EQ(h.sum(), 103);
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a(5), b(5);
  a.Add(1);
  b.Add(1);
  b.Add(2);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.BucketCount(1), 2u);
  EXPECT_EQ(a.BucketCount(2), 1u);
}

TEST(Histogram, SummaryMentionsCount) {
  Histogram h(5);
  h.Add(2);
  EXPECT_NE(h.Summary().find("count=1"), std::string::npos);
}

}  // namespace
}  // namespace peercache
