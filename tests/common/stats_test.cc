#include "common/stats.h"

#include <gtest/gtest.h>

namespace peercache {
namespace {

TEST(OnlineStats, Empty) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, KnownValues) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MergeMatchesCombined) {
  OnlineStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    double x = i * 0.7 - 3;
    (i % 2 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, empty;
  a.Add(3.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

// 10 million adds of 0.1: a naive accumulator drifts by ~1e-4 by this point
// (0.1 is not representable in binary), the compensated sum stays exact to
// the last ulp of the true total.
TEST(OnlineStats, CompensatedSumNoDriftOverTenMillionSamples) {
  OnlineStats s;
  constexpr int kSamples = 10'000'000;
  for (int i = 0; i < kSamples; ++i) s.Add(0.1);
  const double expected = 0.1 * kSamples;
  EXPECT_NEAR(s.sum(), expected, 1e-7);
  EXPECT_NEAR(s.sum(), 1e6, 1e-7);
}

// The compensation must survive Merge too: merging many small shards whose
// sums are each tiny relative to the running total is exactly the case where
// naive addition loses low-order bits.
TEST(OnlineStats, CompensatedSumSurvivesSharding) {
  OnlineStats merged;
  constexpr int kShards = 1000;
  constexpr int kPerShard = 10'000;
  for (int shard = 0; shard < kShards; ++shard) {
    OnlineStats s;
    for (int i = 0; i < kPerShard; ++i) s.Add(0.1);
    merged.Merge(s);
  }
  EXPECT_EQ(merged.count(), static_cast<uint64_t>(kShards) * kPerShard);
  EXPECT_NEAR(merged.sum(), 1e6, 1e-7);
}

// Mixed magnitudes: adding 1.0 then 1e100 then 1.0 then -1e100 loses both
// 1.0s in a naive sum; Neumaier compensation recovers them.
TEST(OnlineStats, CompensatedSumHandlesCancellation) {
  OnlineStats s;
  s.Add(1.0);
  s.Add(1e100);
  s.Add(1.0);
  s.Add(-1e100);
  EXPECT_DOUBLE_EQ(s.sum(), 2.0);
}

TEST(Histogram, BasicCountsAndMean) {
  Histogram h(10);
  h.Add(1);
  h.Add(1);
  h.Add(4);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.BucketCount(1), 2u);
  EXPECT_EQ(h.BucketCount(4), 1u);
  EXPECT_DOUBLE_EQ(h.Mean(), 2.0);
}

TEST(Histogram, Percentiles) {
  Histogram h(20);
  for (int v = 1; v <= 100; ++v) h.Add(v % 10);
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 0.0);
  // 100 samples, 10 each of 0..9: the continuous rank 49.5 sits exactly
  // between the last 4 and the first 5.
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 4.5);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 9.0);
  // The legacy nearest-rank form (serialized into committed telemetry)
  // stays integral: smallest v with >= q of the mass at or below it.
  EXPECT_EQ(h.PercentileRank(0.5), 4);
  EXPECT_EQ(h.PercentileRank(0.99), 9);
  EXPECT_EQ(h.PercentileRank(1.0), 9);
}

// The interpolated value moves linearly between adjacent samples: with
// {1, 2, 3, 4} the median is 2.5 and p75 lands at rank 2.25.
TEST(Histogram, PercentileInterpolatesBetweenSamples) {
  Histogram h(8);
  for (int v : {1, 2, 3, 4}) h.Add(v);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 2.5);
  EXPECT_DOUBLE_EQ(h.Percentile(0.75), 3.25);
}

TEST(Histogram, PercentileRankEdgeCases) {
  Histogram empty(4);
  EXPECT_EQ(empty.PercentileRank(0.5), 0);
  Histogram h(4);
  h.Add(2);
  h.Add(3);
  // q = 0 clamps to the first sample rather than reporting bucket 0.
  EXPECT_EQ(h.PercentileRank(0.0), 2);
  h.Add(50);  // overflow mass reports as the sentinel max_value() + 1
  EXPECT_EQ(h.PercentileRank(1.0), h.max_value() + 1);
}

TEST(Histogram, Overflow) {
  Histogram h(4);
  h.Add(100);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.Mean(), 100.0);  // sum is exact even when bucketed out
}

TEST(Histogram, PercentileOfEmptyIsZero) {
  Histogram h(8);
  EXPECT_EQ(h.Percentile(0.0), 0);
  EXPECT_EQ(h.Percentile(0.5), 0);
  EXPECT_EQ(h.Percentile(1.0), 0);
}

// q = 0 asks for the smallest observed value, not bucket 0.
TEST(Histogram, PercentileZeroIsMinimum) {
  Histogram h(8);
  h.Add(3);
  h.Add(5);
  EXPECT_EQ(h.Percentile(0.0), 3);
}

// q = 1 asks for the largest observed value.
TEST(Histogram, PercentileOneIsMaximum) {
  Histogram h(8);
  h.Add(3);
  h.Add(5);
  EXPECT_EQ(h.Percentile(1.0), 5);
}

TEST(Histogram, PercentileSingleValue) {
  Histogram h(8);
  h.Add(4);
  EXPECT_EQ(h.Percentile(0.0), 4);
  EXPECT_EQ(h.Percentile(0.5), 4);
  EXPECT_EQ(h.Percentile(1.0), 4);
}

// When every sample overflowed, the only honest answer is the sentinel one
// past the largest tracked bucket.
TEST(Histogram, PercentileAllOverflow) {
  Histogram h(4);
  h.Add(50);
  h.Add(60);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.Percentile(0.5), 5);  // == max_value() + 1
  EXPECT_EQ(h.Percentile(0.5), h.max_value() + 1);
}

TEST(Histogram, PercentileMixedOverflow) {
  Histogram h(4);
  h.Add(1);
  h.Add(50);
  // Interpolation splits the median between the sample at 1 and the
  // overflow sentinel at max_value() + 1 = 5.
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 5.0);  // overflow sentinel
  EXPECT_EQ(h.PercentileRank(0.5), 1);       // nearest-rank stays sharp
}

TEST(Histogram, SumTracksExactTotal) {
  Histogram h(4);
  h.Add(1);
  h.Add(2);
  h.Add(100);  // overflow still contributes its exact value
  EXPECT_EQ(h.sum(), 103);
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a(5), b(5);
  a.Add(1);
  b.Add(1);
  b.Add(2);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.BucketCount(1), 2u);
  EXPECT_EQ(a.BucketCount(2), 1u);
}

TEST(Histogram, SummaryMentionsCount) {
  Histogram h(5);
  h.Add(2);
  EXPECT_NE(h.Summary().find("count=1"), std::string::npos);
}

TEST(LogHistogram, EmptyReportsZeros) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 0.0);
}

// A single sample answers every quantile exactly — the within-bucket
// interpolation is clamped to the observed [min, max].
TEST(LogHistogram, SingleSampleAnswersEveryQuantile) {
  LogHistogram h;
  h.Add(42.5);
  for (double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.Percentile(q), 42.5) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(h.Mean(), 42.5);
  EXPECT_DOUBLE_EQ(h.min(), 42.5);
  EXPECT_DOUBLE_EQ(h.max(), 42.5);
}

// p0 and p100 are sharp: exactly the observed extremes, never a bucket
// boundary below the minimum or above the maximum.
TEST(LogHistogram, ExtremeQuantilesAreObservedMinMax) {
  LogHistogram h;
  for (double v : {0.7, 3.0, 19.0, 250.0}) h.Add(v);
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 0.7);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 250.0);
}

// Quantiles are monotone in q and land inside the bucket holding the rank:
// 1000 samples of 1..1000 keep every checked quantile within one bucket
// width (~19%) of the exact order statistic.
TEST(LogHistogram, QuantilesTrackOrderStatistics) {
  LogHistogram h;
  for (int v = 1; v <= 1000; ++v) h.Add(static_cast<double>(v));
  double prev = 0.0;
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    const double p = h.Percentile(q);
    const double exact = q * 1000.0;
    EXPECT_GE(p, prev) << "q=" << q;
    EXPECT_NEAR(p, exact, 0.2 * exact) << "q=" << q;
    prev = p;
  }
}

// Negative inputs (a defensive impossibility for latencies) clamp to 0
// instead of corrupting the bucket index.
TEST(LogHistogram, NegativeValuesClampToZero) {
  LogHistogram h;
  h.Add(-3.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.0);
}

// Sharded Merge must be indistinguishable from serial accumulation: counts,
// extremes, compensated sum, and every reported quantile.
TEST(LogHistogram, MergeMatchesSerial) {
  LogHistogram serial, a, b, c;
  for (int i = 0; i < 3000; ++i) {
    const double v = 0.5 + (i % 701) * 1.7;
    serial.Add(v);
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).Add(v);
  }
  a.Merge(b);
  a.Merge(c);
  EXPECT_EQ(a.count(), serial.count());
  EXPECT_DOUBLE_EQ(a.min(), serial.min());
  EXPECT_DOUBLE_EQ(a.max(), serial.max());
  EXPECT_DOUBLE_EQ(a.sum(), serial.sum());
  for (double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_DOUBLE_EQ(a.Percentile(q), serial.Percentile(q)) << "q=" << q;
  }
}

TEST(LogHistogram, MergeWithEmpty) {
  LogHistogram a, empty;
  a.Add(7.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.min(), 7.0);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.Percentile(0.5), 7.0);
}

}  // namespace
}  // namespace peercache
