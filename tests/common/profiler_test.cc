// Phase profiler (docs/OBSERVABILITY.md): disabled spans cost nothing and
// record nothing; enabled spans accumulate by name into a sorted,
// structurally deterministic report.

#include "common/profiler.h"

#include <thread>

#include <gtest/gtest.h>

namespace peercache {
namespace {

// The profiler is a process-global singleton: every test restores the
// disabled/empty state it found.
class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Profiler::Global().Reset();
    Profiler::Global().Enable(true);
  }
  void TearDown() override {
    Profiler::Global().Enable(false);
    Profiler::Global().Reset();
  }
};

TEST_F(ProfilerTest, DisabledScopedProfileRecordsNothing) {
  Profiler::Global().Enable(false);
  { ScopedProfile span("ignored.phase"); }
  EXPECT_TRUE(Profiler::Global().Report().empty());
}

TEST_F(ProfilerTest, SpansAccumulateByNameInSortedOrder) {
  { ScopedProfile span("zeta"); }
  { ScopedProfile span("alpha"); }
  { ScopedProfile span("alpha"); }
  const std::vector<Profiler::Span> report = Profiler::Global().Report();
  ASSERT_EQ(report.size(), 2u);
  EXPECT_EQ(report[0].name, "alpha");
  EXPECT_EQ(report[0].calls, 2u);
  EXPECT_GE(report[0].seconds, 0.0);
  EXPECT_EQ(report[1].name, "zeta");
  EXPECT_EQ(report[1].calls, 1u);
}

TEST_F(ProfilerTest, RecordMergesAcrossThreads) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 250;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        Profiler::Global().Record("shared.phase", 0.001);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const std::vector<Profiler::Span> report = Profiler::Global().Report();
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report[0].calls, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_NEAR(report[0].seconds, 0.001 * kThreads * kPerThread, 1e-9);
}

TEST_F(ProfilerTest, ResetDropsSpansButKeepsEnabled) {
  Profiler::Global().Record("a", 1.0);
  Profiler::Global().Reset();
  EXPECT_TRUE(Profiler::Global().Report().empty());
  EXPECT_TRUE(Profiler::Global().enabled());
}

TEST_F(ProfilerTest, WriteJsonEmitsSortedSpanObjects) {
  Profiler::Global().Record("b.phase", 0.5);
  Profiler::Global().Record("a.phase", 0.25);
  Profiler::Global().Record("a.phase", 0.25);
  JsonWriter w;
  Profiler::Global().WriteJson(w);
  const std::string json = w.TakeString();
  EXPECT_EQ(json,
            "{\"a.phase\":{\"calls\":2,\"seconds\":0.5},"
            "\"b.phase\":{\"calls\":1,\"seconds\":0.5}}");
}

}  // namespace
}  // namespace peercache
