#include "common/ring_id.h"

#include <gtest/gtest.h>

namespace peercache {
namespace {

TEST(IdSpace, Basics) {
  IdSpace space(8);
  EXPECT_EQ(space.bits(), 8);
  EXPECT_EQ(space.size(), 256u);
  EXPECT_TRUE(space.Contains(255));
  EXPECT_FALSE(space.Contains(256));
  EXPECT_EQ(space.Add(200, 100), 44u);
}

TEST(IdSpace, ClockwiseDistance) {
  IdSpace space(8);
  EXPECT_EQ(space.ClockwiseDistance(10, 20), 10u);
  EXPECT_EQ(space.ClockwiseDistance(20, 10), 246u);
  EXPECT_EQ(space.ClockwiseDistance(7, 7), 0u);
}

TEST(IdSpace, ChordHopEstimate) {
  IdSpace space(8);
  EXPECT_EQ(space.ChordHopEstimate(0, 0), 0);
  EXPECT_EQ(space.ChordHopEstimate(0, 1), 1);
  EXPECT_EQ(space.ChordHopEstimate(0, 2), 2);
  EXPECT_EQ(space.ChordHopEstimate(0, 3), 2);
  EXPECT_EQ(space.ChordHopEstimate(0, 128), 8);
  // Asymmetric (paper remark after Eq. 6).
  EXPECT_EQ(space.ChordHopEstimate(1, 0), 8);
}

TEST(IdSpace, PastryHopEstimate) {
  IdSpace space(4);
  EXPECT_EQ(space.PastryHopEstimate(0b1011, 0b1111), 3);  // paper's example
  EXPECT_EQ(space.PastryHopEstimate(0b1011, 0b1011), 0);
  // Symmetric.
  EXPECT_EQ(space.PastryHopEstimate(0b0001, 0b1000),
            space.PastryHopEstimate(0b1000, 0b0001));
}

TEST(IdSpace, ClockwiseRanges) {
  IdSpace space(8);
  EXPECT_TRUE(space.InClockwiseRangeExclIncl(10, 20, 20));
  EXPECT_FALSE(space.InClockwiseRangeExclIncl(10, 10, 20));
  EXPECT_TRUE(space.InClockwiseRangeExclIncl(250, 3, 5));  // wraps
  EXPECT_FALSE(space.InClockwiseRangeExclIncl(250, 6, 5));
  // from == to: whole ring.
  EXPECT_TRUE(space.InClockwiseRangeExclIncl(9, 200, 9));

  EXPECT_TRUE(space.InClockwiseRangeExclExcl(10, 15, 20));
  EXPECT_FALSE(space.InClockwiseRangeExclExcl(10, 20, 20));
  EXPECT_FALSE(space.InClockwiseRangeExclExcl(10, 10, 20));
  EXPECT_TRUE(space.InClockwiseRangeExclExcl(9, 200, 9));
  EXPECT_FALSE(space.InClockwiseRangeExclExcl(9, 9, 9));
}

TEST(IdSpace, ToBinaryString) {
  IdSpace space(8);
  EXPECT_EQ(space.ToBinaryString(0b10100001), "10100001");
  EXPECT_EQ(space.ToBinaryString(0), "00000000");
}

TEST(IdSpace, SixtyFourBitSpace) {
  IdSpace space(64);
  EXPECT_EQ(space.ClockwiseDistance(~uint64_t{0}, 0), 1u);
  EXPECT_EQ(space.ChordHopEstimate(~uint64_t{0}, 0), 1);
  EXPECT_TRUE(space.Contains(~uint64_t{0}));
}

}  // namespace
}  // namespace peercache
