#include "common/status.h"

#include <gtest/gtest.h>

#include <sstream>

namespace peercache {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("peer 7");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "peer 7");
  EXPECT_EQ(s.ToString(), "NotFound: peer 7");
}

TEST(Status, StreamInsertion) {
  std::ostringstream os;
  os << Status::Infeasible("bounds");
  EXPECT_EQ(os.str(), "Infeasible: bounds");
}

TEST(Status, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(Status::Internal("x"), Status::Internal("x"));
  EXPECT_FALSE(Status::Internal("x") == Status::Internal("y"));
}

TEST(Status, AllCodeNamesDistinct) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInfeasible), "Infeasible");
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

TEST(Result, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace peercache
