#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace peercache {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformU64RespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformU64(17), 17u);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.UniformU64(1), 0u);
  }
}

TEST(Rng, UniformU64IsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.UniformU64(kBuckets)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, 5 * std::sqrt(kDraws / kBuckets));
  }
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.01);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(13);
  double sum = 0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    double x = rng.Exponential(900.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kDraws, 900.0, 10.0);
}

TEST(Rng, SampleDistinctProducesDistinctValues) {
  Rng rng(19);
  auto v = rng.SampleDistinct(1000, 500);
  EXPECT_EQ(v.size(), 500u);
  std::set<uint64_t> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 500u);
  for (uint64_t x : v) EXPECT_LT(x, 1000u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(MixHash64, DeterministicAndSpread) {
  EXPECT_EQ(MixHash64(1), MixHash64(1));
  std::set<uint64_t> outs;
  for (uint64_t i = 0; i < 1000; ++i) outs.insert(MixHash64(i));
  EXPECT_EQ(outs.size(), 1000u);
}

}  // namespace
}  // namespace peercache
