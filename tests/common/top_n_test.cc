#include "common/top_n.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/random.h"
#include "common/zipf.h"

namespace peercache {
namespace {

TEST(SpaceSaving, ExactWhenUnderCapacity) {
  SpaceSaving ss(10);
  ss.Offer(1);
  ss.Offer(2);
  ss.Offer(1);
  ss.Offer(3, 5);
  EXPECT_EQ(ss.size(), 3u);
  EXPECT_EQ(ss.stream_length(), 8u);
  EXPECT_EQ(ss.EstimatedCount(1), 2u);
  EXPECT_EQ(ss.EstimatedCount(2), 1u);
  EXPECT_EQ(ss.EstimatedCount(3), 5u);
  EXPECT_EQ(ss.EstimatedCount(99), 0u);
  auto entries = ss.Entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].key, 3u);  // descending by count
  EXPECT_EQ(entries[0].error, 0u);
}

TEST(SpaceSaving, EvictionInheritsMinCount) {
  SpaceSaving ss(2);
  ss.Offer(1, 10);
  ss.Offer(2, 5);
  ss.Offer(3);  // evicts key 2 (count 5): new count 6, error 5
  EXPECT_EQ(ss.size(), 2u);
  EXPECT_EQ(ss.EstimatedCount(2), 0u);
  EXPECT_EQ(ss.EstimatedCount(3), 6u);
  auto entries = ss.Entries();
  auto it = std::find_if(entries.begin(), entries.end(),
                         [](const TopNEntry& e) { return e.key == 3; });
  ASSERT_NE(it, entries.end());
  EXPECT_EQ(it->error, 5u);
}

TEST(SpaceSaving, OverestimationBoundHolds) {
  // For every tracked key: true <= estimate <= true + error, and
  // error <= N/m.
  SpaceSaving ss(50);
  Rng rng(1234);
  ZipfDistribution zipf(500, 1.1);
  std::map<uint64_t, uint64_t> truth;
  constexpr int kDraws = 30000;
  for (int i = 0; i < kDraws; ++i) {
    uint64_t key = zipf.Sample(rng);
    ++truth[key];
    ss.Offer(key);
  }
  for (const TopNEntry& e : ss.Entries()) {
    uint64_t t = truth[e.key];
    EXPECT_LE(t, e.count) << "key " << e.key;
    EXPECT_LE(e.count, t + e.error) << "key " << e.key;
    EXPECT_LE(e.error, static_cast<uint64_t>(kDraws) / 50) << "key " << e.key;
  }
}

TEST(SpaceSaving, GuaranteedHeavyHittersPresent) {
  // Every key with true frequency > N/m must be tracked.
  SpaceSaving ss(20);
  Rng rng(77);
  ZipfDistribution zipf(300, 1.3);
  std::map<uint64_t, uint64_t> truth;
  constexpr uint64_t kDraws = 40000;
  for (uint64_t i = 0; i < kDraws; ++i) {
    uint64_t key = zipf.Sample(rng);
    ++truth[key];
    ss.Offer(key);
  }
  for (const auto& [key, count] : truth) {
    if (count > kDraws / 20) {
      EXPECT_GT(ss.EstimatedCount(key), 0u) << "heavy hitter " << key;
    }
  }
}

TEST(SpaceSaving, EntriesSortedDescending) {
  SpaceSaving ss(8);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) ss.Offer(rng.UniformU64(30));
  auto entries = ss.Entries();
  for (size_t i = 1; i < entries.size(); ++i) {
    EXPECT_GE(entries[i - 1].count, entries[i].count);
  }
}

TEST(SpaceSaving, CapacityOne) {
  SpaceSaving ss(1);
  ss.Offer(1);
  ss.Offer(2);
  ss.Offer(2);
  EXPECT_EQ(ss.size(), 1u);
  EXPECT_EQ(ss.EstimatedCount(2), 3u);  // 1 (inherited) + 2
}

TEST(SpaceSaving, ResetZeroesEntryAndMakesItTheEvictionVictim) {
  SpaceSaving ss(2);
  ss.Offer(1, 10);
  ss.Offer(2, 20);
  EXPECT_TRUE(ss.Reset(1));
  EXPECT_EQ(ss.EstimatedCount(1), 0u);
  EXPECT_EQ(ss.size(), 2u) << "slot stays occupied";
  // A new key must replace the reset entry (count 0), not the other
  // minimum, and inherit error 0 as if the slot were empty.
  ss.Offer(3, 4);
  EXPECT_EQ(ss.EstimatedCount(1), 0u);
  EXPECT_EQ(ss.EstimatedCount(2), 20u);
  EXPECT_EQ(ss.EstimatedCount(3), 4u);
  for (const TopNEntry& e : ss.Entries()) {
    if (e.key == 3) {
      EXPECT_EQ(e.error, 0u);
    }
  }
}

TEST(SpaceSaving, ResetUntrackedReturnsFalse) {
  SpaceSaving ss(2);
  ss.Offer(1);
  EXPECT_FALSE(ss.Reset(99));
  EXPECT_EQ(ss.EstimatedCount(1), 1u);
}

TEST(SpaceSaving, ClearResets) {
  SpaceSaving ss(4);
  ss.Offer(1);
  ss.Clear();
  EXPECT_EQ(ss.size(), 0u);
  EXPECT_EQ(ss.stream_length(), 0u);
  EXPECT_EQ(ss.EstimatedCount(1), 0u);
}

}  // namespace
}  // namespace peercache
