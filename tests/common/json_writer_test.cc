#include "common/json_writer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

namespace peercache {
namespace {

TEST(JsonWriter, EmptyObjectAndArray) {
  JsonWriter w;
  w.BeginObject();
  w.EndObject();
  EXPECT_EQ(w.str(), "{}");

  JsonWriter a;
  a.BeginArray();
  a.EndArray();
  EXPECT_EQ(a.str(), "[]");
}

TEST(JsonWriter, ObjectWithScalars) {
  JsonWriter w;
  w.BeginObject();
  w.Key("i");
  w.Int(-3);
  w.Key("u");
  w.UInt(18446744073709551615ull);
  w.Key("b");
  w.Bool(true);
  w.Key("z");
  w.Null();
  w.Key("s");
  w.String("hi");
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"i\":-3,\"u\":18446744073709551615,\"b\":true,\"z\":null,"
            "\"s\":\"hi\"}");
}

TEST(JsonWriter, NestedContainersGetCommasRight) {
  JsonWriter w;
  w.BeginObject();
  w.Key("rows");
  w.BeginArray();
  w.BeginObject();
  w.Key("a");
  w.Int(1);
  w.EndObject();
  w.BeginObject();
  w.Key("a");
  w.Int(2);
  w.EndObject();
  w.EndArray();
  w.Key("n");
  w.Int(2);
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"rows\":[{\"a\":1},{\"a\":2}],\"n\":2}");
}

TEST(JsonWriter, ArrayOfScalars) {
  JsonWriter w;
  w.BeginArray();
  w.Int(1);
  w.Int(2);
  w.Int(3);
  w.EndArray();
  EXPECT_EQ(w.str(), "[1,2,3]");
}

TEST(JsonWriter, EscapesControlAndSpecialCharacters) {
  JsonWriter w;
  w.BeginArray();
  w.String("a\"b\\c\n\t\x01");
  w.EndArray();
  EXPECT_EQ(w.str(), "[\"a\\\"b\\\\c\\n\\t\\u0001\"]");
}

TEST(JsonWriter, DoubleFormattingRoundTrips) {
  for (double v : {0.0, 1.0, -1.5, 0.1, 1.0 / 3.0, 1e-300, 1e300,
                   3.141592653589793, 1234567890.123456}) {
    const std::string s = JsonWriter::FormatDouble(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
  }
}

TEST(JsonWriter, DoubleUsesShortestFormWhenExact) {
  EXPECT_EQ(JsonWriter::FormatDouble(0.1), "0.1");
  EXPECT_EQ(JsonWriter::FormatDouble(2.0), "2");
}

// JSON has no NaN/Infinity literals; emit null so consumers stay strict.
TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginArray();
  w.Double(std::numeric_limits<double>::quiet_NaN());
  w.Double(std::numeric_limits<double>::infinity());
  w.Double(-std::numeric_limits<double>::infinity());
  w.EndArray();
  EXPECT_EQ(w.str(), "[null,null,null]");
}

TEST(JsonWriter, IdenticalCallSequencesAreByteIdentical) {
  auto build = [] {
    JsonWriter w;
    w.BeginObject();
    w.Key("x");
    w.Double(0.30000000000000004);  // 0.1 + 0.2
    w.Key("list");
    w.BeginArray();
    w.Double(1.0 / 3.0);
    w.EndArray();
    w.EndObject();
    return w.TakeString();
  };
  EXPECT_EQ(build(), build());
}

TEST(JsonWriter, TakeStringMovesDocument) {
  JsonWriter w;
  w.BeginObject();
  w.EndObject();
  EXPECT_EQ(w.TakeString(), "{}");
}

}  // namespace
}  // namespace peercache
