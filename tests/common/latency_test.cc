// Deterministic link-latency model (docs/OBSERVABILITY.md): stateless
// coordinate hashing, ping-matrix round-trips, and jitter that depends only
// on (seed, key, endpoints, attempt) — never on RNG streams or call order.

#include "common/latency.h"

#include <cmath>

#include <gtest/gtest.h>

namespace peercache::latency {
namespace {

LatencyConfig SyntheticConfig() {
  LatencyConfig cfg;
  cfg.base_rtt_ms = 2.0;
  cfg.coord_scale_ms = 80.0;
  cfg.jitter_ms = 3.0;
  cfg.timeout_ms = 25.0;
  cfg.seed = 7;
  return cfg;
}

TEST(LatencyConfig, EnabledWhenAnyCostKnobIsSet) {
  LatencyConfig off;
  EXPECT_FALSE(off.enabled());
  off.timeout_ms = 30.0;  // timeout alone never turns the model on
  EXPECT_FALSE(off.enabled());
  LatencyConfig base;
  base.base_rtt_ms = 1.0;
  EXPECT_TRUE(base.enabled());
  LatencyConfig jitter;
  jitter.jitter_ms = 0.5;
  EXPECT_TRUE(jitter.enabled());
}

// Coordinates are a pure function of (seed, node id): two independently
// constructed models agree everywhere, and the values stay in [0, 1)^2.
// There is no setup pass whose iteration order (or thread count) could
// perturb them — this is the determinism contract of the model.
TEST(LatencyModel, CoordinatesAreStatelessAndInRange) {
  const LatencyModel a(SyntheticConfig());
  const LatencyModel b(SyntheticConfig());
  for (uint64_t node = 0; node < 200; ++node) {
    const auto [xa, ya] = a.Coordinate(node * 0x9e3779b9u + 11);
    const auto [xb, yb] = b.Coordinate(node * 0x9e3779b9u + 11);
    EXPECT_EQ(xa, xb);
    EXPECT_EQ(ya, yb);
    EXPECT_GE(xa, 0.0);
    EXPECT_LT(xa, 1.0);
    EXPECT_GE(ya, 0.0);
    EXPECT_LT(ya, 1.0);
  }
}

TEST(LatencyModel, CoordinateDependsOnSeed) {
  LatencyConfig other = SyntheticConfig();
  other.seed = 8;
  const LatencyModel a(SyntheticConfig());
  const LatencyModel b(other);
  int differing = 0;
  for (uint64_t node = 1; node <= 32; ++node) {
    if (a.Coordinate(node) != b.Coordinate(node)) ++differing;
  }
  EXPECT_GT(differing, 16);
}

TEST(LatencyModel, BaseRttIsSymmetricWithZeroDiagonal) {
  const LatencyModel m(SyntheticConfig());
  EXPECT_DOUBLE_EQ(m.BaseRttMs(42, 42), 0.0);
  for (uint64_t a = 1; a <= 16; ++a) {
    for (uint64_t b = a + 1; b <= 17; ++b) {
      EXPECT_EQ(m.BaseRttMs(a, b), m.BaseRttMs(b, a));
      EXPECT_GE(m.BaseRttMs(a, b), SyntheticConfig().base_rtt_ms);
    }
  }
}

// The synthetic RTT is exactly base + scale * euclidean(coord_a, coord_b).
TEST(LatencyModel, BaseRttMatchesCoordinateGeometry) {
  const LatencyConfig cfg = SyntheticConfig();
  const LatencyModel m(cfg);
  const auto [xa, ya] = m.Coordinate(5);
  const auto [xb, yb] = m.Coordinate(9);
  const double dist =
      std::sqrt((xa - xb) * (xa - xb) + (ya - yb) * (ya - yb));
  EXPECT_EQ(m.BaseRttMs(5, 9), cfg.base_rtt_ms + cfg.coord_scale_ms * dist);
}

// Per-attempt jitter: reproducible for the same (key, from, to, attempt),
// bounded by jitter_ms, and decorrelated across retransmission attempts.
TEST(LatencyModel, JitterIsDeterministicBoundedAndPerAttempt) {
  const LatencyConfig cfg = SyntheticConfig();
  const LatencyModel m(cfg);
  const double base = m.BaseRttMs(3, 4);
  const double first = m.HopLatencyMs(100, 3, 4, 0);
  EXPECT_EQ(first, m.HopLatencyMs(100, 3, 4, 0));
  EXPECT_GE(first, base);
  EXPECT_LT(first, base + cfg.jitter_ms);
  const double retry = m.HopLatencyMs(100, 3, 4, 1);
  EXPECT_NE(first, retry);
  EXPECT_EQ(m.FailedAttemptMs(), cfg.timeout_ms);
}

TEST(LatencyModel, InertByDefault) {
  const LatencyModel m;
  EXPECT_FALSE(m.enabled());
  EXPECT_DOUBLE_EQ(m.HopLatencyMs(1, 2, 3, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.FailedAttemptMs(), 0.0);
}

PingMatrix SmallMatrix() {
  PingMatrix m;
  m.ids = {30, 10, 20};  // deliberately unsorted
  m.rtt_ms = {0.0, 12.5, 200.0,  //
              12.5, 0.0, 0.1,    //
              200.0, 0.1, 0.0};
  return m;
}

// Emit -> Load -> Emit is a fixed point: the text form round-trips both the
// parsed fields and the exact bytes (shortest round-trip double formatting).
TEST(PingMatrix, EmitLoadRoundTripIsByteExact) {
  const PingMatrix m = SmallMatrix();
  const std::string text = EmitPingMatrix(m);
  Result<PingMatrix> loaded = LoadPingMatrix(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().ids, m.ids);
  EXPECT_EQ(loaded.value().rtt_ms, m.rtt_ms);
  EXPECT_EQ(EmitPingMatrix(loaded.value()), text);
}

TEST(PingMatrix, LoadRejectsMalformedInput) {
  EXPECT_FALSE(LoadPingMatrix("").ok());
  EXPECT_FALSE(LoadPingMatrix("not-a-matrix v9\n").ok());
  // Header fine, but a row is short one entry.
  EXPECT_FALSE(LoadPingMatrix("peercache-ping-matrix v1\nn 2\nids 1 2\n"
                              "row 0 0 5\nrow 1 5\n")
                   .ok());
}

// Pairs present in the matrix use the measured RTT; a node the matrix does
// not know falls back to the synthetic coordinate geometry.
TEST(LatencyModel, MatrixOverridesKnownPairsOnly) {
  const LatencyConfig cfg = SyntheticConfig();
  const LatencyModel with(cfg, SmallMatrix());
  const LatencyModel synthetic(cfg);
  EXPECT_DOUBLE_EQ(with.BaseRttMs(10, 30), 12.5);
  EXPECT_DOUBLE_EQ(with.BaseRttMs(20, 30), 200.0);
  EXPECT_DOUBLE_EQ(with.BaseRttMs(10, 20), 0.1);
  // 99 is unknown to the matrix: both endpoints resolve synthetically.
  EXPECT_EQ(with.BaseRttMs(99, 7), synthetic.BaseRttMs(99, 7));
}

}  // namespace
}  // namespace peercache::latency
