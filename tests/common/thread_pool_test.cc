#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace peercache {
namespace {

TEST(ThreadPoolTest, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1);
  EXPECT_EQ(ResolveThreads(0), ThreadPool::DefaultThreads());
  EXPECT_EQ(ResolveThreads(-3), ThreadPool::DefaultThreads());
  EXPECT_EQ(ResolveThreads(1), 1);
  EXPECT_EQ(ResolveThreads(7), 7);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 7}) {
    ThreadPool pool(threads);
    for (size_t grain : {size_t{1}, size_t{3}, size_t{16}}) {
      constexpr size_t kBegin = 5;
      constexpr size_t kEnd = 505;
      std::vector<std::atomic<int>> hits(kEnd);
      for (auto& h : hits) h.store(0);
      pool.ParallelFor(kBegin, kEnd, grain,
                       [&](size_t i) { hits[i].fetch_add(1); });
      for (size_t i = 0; i < kEnd; ++i) {
        EXPECT_EQ(hits[i].load(), i >= kBegin ? 1 : 0)
            << "index " << i << " threads=" << threads << " grain=" << grain;
      }
    }
  }
}

TEST(ThreadPoolTest, EmptyAndInvertedRangesRunNothing) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, 0, 1, [&](size_t) { calls.fetch_add(1); });
  pool.ParallelFor(10, 10, 4, [&](size_t) { calls.fetch_add(1); });
  pool.ParallelFor(10, 3, 1, [&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, GrainLargerThanRangeIsOneChunk) {
  ThreadPool pool(4);
  std::vector<int> hits(8, 0);  // unsynchronized: must run inline
  pool.ParallelFor(0, 8, 100, [&](size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 8);
}

TEST(ThreadPoolTest, GrainZeroTreatedAsOne) {
  ThreadPool pool(2);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(0, 100, 0, [&](size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 99u * 100 / 2);
}

TEST(ThreadPoolTest, PropagatesExceptionFromSerialPath) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.ParallelFor(0, 10, 1,
                                [](size_t i) {
                                  if (i == 3) throw std::runtime_error("boom");
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, PropagatesLowestChunkExceptionFromWorkers) {
  ThreadPool pool(4);
  for (int round = 0; round < 10; ++round) {
    try {
      pool.ParallelFor(0, 64, 1, [](size_t i) {
        if (i == 7) throw std::runtime_error("seven");
        if (i == 50) throw std::runtime_error("fifty");
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "seven") << "lowest-chunk exception must win";
    }
  }
}

TEST(ThreadPoolTest, PoolIsReusableAfterException) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.ParallelFor(0, 8, 1, [](size_t) { throw std::logic_error("x"); }),
      std::logic_error);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, 32, 1, [&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 32);
}

TEST(ThreadPoolTest, ManySmallLoopsDoNotDeadlock) {
  ThreadPool pool(4);
  std::atomic<uint64_t> total{0};
  for (int r = 0; r < 200; ++r) {
    pool.ParallelFor(0, 16, 1, [&](size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 200u * 16);
}

}  // namespace
}  // namespace peercache
