#include "common/flat_table_arena.h"

#include <cstdint>
#include <vector>

#include "gtest/gtest.h"

namespace peercache::overlay {
namespace {

std::vector<uint64_t> ToVector(std::span<const uint64_t> s) {
  return {s.begin(), s.end()};
}

TEST(FlatTableArena, DefaultListIsEmptyWithNoBlock) {
  FlatTableArena arena;
  FlatList list;
  EXPECT_TRUE(arena.View(list).empty());
  EXPECT_EQ(list.capacity, 0u);
  EXPECT_EQ(arena.used_bytes(), 0u);
  EXPECT_EQ(arena.allocated_bytes(), 0u);
}

TEST(FlatTableArena, AssignEmptyNeverAllocates) {
  // Regression: assigning zero words to a block-less list must not touch
  // chunk storage (the arena may have no chunks at all yet).
  FlatTableArena arena;
  FlatList list;
  arena.Assign(list, {});
  EXPECT_TRUE(arena.View(list).empty());
  EXPECT_EQ(arena.allocated_bytes(), 0u);

  // Emptying a list that has a block keeps the block (capacity unchanged).
  arena.Assign(list, {1, 2, 3});
  const uint32_t cap = list.capacity;
  arena.Assign(list, {});
  EXPECT_TRUE(arena.View(list).empty());
  EXPECT_EQ(list.capacity, cap);
}

TEST(FlatTableArena, AssignRoundTripsAndGrows) {
  FlatTableArena arena;
  FlatList list;
  arena.Assign(list, {5, 6, 7});
  EXPECT_EQ(ToVector(arena.View(list)), (std::vector<uint64_t>{5, 6, 7}));
  EXPECT_GE(list.capacity, FlatTableArena::kMinCapacity);

  // Growing past the capacity migrates the live words to a bigger block.
  std::vector<uint64_t> big(100);
  for (size_t i = 0; i < big.size(); ++i) big[i] = i * 11;
  arena.Assign(list, big);
  EXPECT_EQ(ToVector(arena.View(list)), big);
  EXPECT_GE(list.capacity, 100u);
  // Power-of-two capacity aligned to itself: the slice cannot straddle a
  // chunk boundary.
  EXPECT_EQ(list.capacity & (list.capacity - 1), 0u);
  EXPECT_EQ(list.offset % list.capacity, 0u);
}

TEST(FlatTableArena, ListsNeverAlias) {
  FlatTableArena arena;
  std::vector<FlatList> lists(64);
  for (size_t i = 0; i < lists.size(); ++i) {
    std::vector<uint64_t> values(1 + i % 7, i);
    arena.Assign(lists[i], values);
  }
  // Pairwise block-range disjointness over allocated capacities.
  for (size_t a = 0; a < lists.size(); ++a) {
    for (size_t b = a + 1; b < lists.size(); ++b) {
      const uint64_t a_lo = lists[a].offset, a_hi = a_lo + lists[a].capacity;
      const uint64_t b_lo = lists[b].offset, b_hi = b_lo + lists[b].capacity;
      EXPECT_TRUE(a_hi <= b_lo || b_hi <= a_lo)
          << "lists " << a << " and " << b << " overlap";
    }
  }
  // And contents survived unclobbered.
  for (size_t i = 0; i < lists.size(); ++i) {
    for (uint64_t w : arena.View(lists[i])) EXPECT_EQ(w, i);
  }
}

TEST(FlatTableArena, PushBackAndEraseKeepOrder) {
  FlatTableArena arena;
  FlatList list;
  for (uint64_t v : {4, 8, 15, 8, 16, 23, 42}) arena.PushBack(list, v);
  arena.EraseValue(list, 8);
  EXPECT_EQ(ToVector(arena.View(list)),
            (std::vector<uint64_t>{4, 15, 16, 23, 42}));
  arena.EraseIf(list, [](uint64_t w) { return w > 20; });
  EXPECT_EQ(ToVector(arena.View(list)), (std::vector<uint64_t>{4, 15, 16}));
  arena.Clear(list);
  EXPECT_TRUE(arena.View(list).empty());
  EXPECT_GT(list.capacity, 0u) << "Clear keeps the block for reuse";
}

TEST(FlatTableArena, ReleaseRecyclesBlocksUnderChurn) {
  FlatTableArena arena;
  FlatList list;
  std::vector<uint64_t> values(20, 9);
  arena.Assign(list, values);
  const uint32_t offset = list.offset;
  const size_t footprint = arena.allocated_bytes();

  arena.Release(list);
  EXPECT_EQ(list.capacity, 0u);
  EXPECT_EQ(arena.free_blocks(), 1u);

  // A same-class allocation reuses the freed block: no new chunk, same
  // offset, and the free list drains.
  FlatList other;
  arena.Assign(other, values);
  EXPECT_EQ(other.offset, offset);
  EXPECT_EQ(arena.free_blocks(), 0u);
  EXPECT_EQ(arena.allocated_bytes(), footprint);
}

TEST(FlatTableArena, UsedBytesTracksLiveCapacity) {
  FlatTableArena arena;
  FlatList a, b;
  arena.Assign(a, {1, 2, 3, 4});  // capacity 4
  arena.Assign(b, {1, 2, 3, 4, 5});  // capacity 8
  EXPECT_EQ(arena.used_bytes(), (4 + 8) * sizeof(uint64_t));
  arena.Release(a);
  EXPECT_EQ(arena.used_bytes(), 8 * sizeof(uint64_t));
  EXPECT_GE(arena.allocated_bytes(), arena.used_bytes());
}

TEST(FlatTableArena, PrefetchIsSafeOnAnyList) {
  FlatTableArena arena;
  FlatList empty;
  arena.Prefetch(empty);  // no block: must not touch chunk storage
  FlatList list;
  std::vector<uint64_t> values(40, 1);
  arena.Assign(list, values);
  arena.Prefetch(list);  // multi-line slice
  SUCCEED();
}

}  // namespace
}  // namespace peercache::overlay
