#include "common/bits.h"

#include <gtest/gtest.h>

namespace peercache {
namespace {

TEST(Bits, BitLength) {
  EXPECT_EQ(BitLength(0), 0);
  EXPECT_EQ(BitLength(1), 1);
  EXPECT_EQ(BitLength(2), 2);
  EXPECT_EQ(BitLength(3), 2);
  EXPECT_EQ(BitLength(4), 3);
  EXPECT_EQ(BitLength(5), 3);
  EXPECT_EQ(BitLength(255), 8);
  EXPECT_EQ(BitLength(256), 9);
  EXPECT_EQ(BitLength(~uint64_t{0}), 64);
}

TEST(Bits, CommonPrefixLength) {
  EXPECT_EQ(CommonPrefixLength(0b1011, 0b1111, 4), 1);  // paper's example
  EXPECT_EQ(CommonPrefixLength(0b1011, 0b1011, 4), 4);
  EXPECT_EQ(CommonPrefixLength(0b0000, 0b1000, 4), 0);
  EXPECT_EQ(CommonPrefixLength(0b1010, 0b1011, 4), 3);
  EXPECT_EQ(CommonPrefixLength(0, ~uint64_t{0}, 64), 0);
  EXPECT_EQ(CommonPrefixLength(5, 5, 64), 64);
}

TEST(Bits, CommonPrefixLengthSymmetric) {
  for (uint64_t a = 0; a < 32; ++a) {
    for (uint64_t b = 0; b < 32; ++b) {
      EXPECT_EQ(CommonPrefixLength(a, b, 5), CommonPrefixLength(b, a, 5));
    }
  }
}

TEST(Bits, IdBit) {
  // 0b1010 in a 4-bit space: bits from the top are 1,0,1,0.
  EXPECT_EQ(IdBit(0b1010, 4, 0), 1);
  EXPECT_EQ(IdBit(0b1010, 4, 1), 0);
  EXPECT_EQ(IdBit(0b1010, 4, 2), 1);
  EXPECT_EQ(IdBit(0b1010, 4, 3), 0);
}

TEST(Bits, LowBitMask) {
  EXPECT_EQ(LowBitMask(0), 0u);
  EXPECT_EQ(LowBitMask(1), 1u);
  EXPECT_EQ(LowBitMask(8), 255u);
  EXPECT_EQ(LowBitMask(64), ~uint64_t{0});
}

TEST(Bits, Logs) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(1024));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_EQ(FloorLog2(1), 0);
  EXPECT_EQ(FloorLog2(1023), 9);
  EXPECT_EQ(FloorLog2(1024), 10);
  EXPECT_EQ(CeilLog2(1), 0);
  EXPECT_EQ(CeilLog2(1023), 10);
  EXPECT_EQ(CeilLog2(1024), 10);
  EXPECT_EQ(CeilLog2(1025), 11);
}

}  // namespace
}  // namespace peercache
