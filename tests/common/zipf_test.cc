#include "common/zipf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace peercache {
namespace {

TEST(Zipf, PmfSumsToOne) {
  for (double alpha : {0.0, 0.91, 1.2, 2.0}) {
    ZipfDistribution zipf(1000, alpha);
    double sum = 0;
    for (size_t r = 1; r <= 1000; ++r) sum += zipf.Pmf(r);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "alpha=" << alpha;
  }
}

TEST(Zipf, PmfDecreasesWithRank) {
  ZipfDistribution zipf(100, 1.2);
  for (size_t r = 1; r < 100; ++r) {
    EXPECT_GT(zipf.Pmf(r), zipf.Pmf(r + 1));
  }
}

TEST(Zipf, AlphaZeroIsUniform) {
  ZipfDistribution zipf(50, 0.0);
  for (size_t r = 1; r <= 50; ++r) {
    EXPECT_NEAR(zipf.Pmf(r), 1.0 / 50, 1e-12);
  }
}

TEST(Zipf, PmfRatioMatchesExponent) {
  ZipfDistribution zipf(100, 1.2);
  EXPECT_NEAR(zipf.Pmf(1) / zipf.Pmf(2), std::pow(2.0, 1.2), 1e-9);
  EXPECT_NEAR(zipf.Pmf(2) / zipf.Pmf(4), std::pow(2.0, 1.2), 1e-9);
}

TEST(Zipf, SampleMatchesPmf) {
  ZipfDistribution zipf(64, 1.2);
  Rng rng(97);
  constexpr int kDraws = 200000;
  std::vector<int> counts(65, 0);
  for (int i = 0; i < kDraws; ++i) {
    size_t r = zipf.Sample(rng);
    ASSERT_GE(r, 1u);
    ASSERT_LE(r, 64u);
    ++counts[r];
  }
  for (size_t r = 1; r <= 8; ++r) {
    double expected = zipf.Pmf(r) * kDraws;
    EXPECT_NEAR(counts[r], expected, 5 * std::sqrt(expected) + 5)
        << "rank " << r;
  }
}

TEST(Zipf, SingleRank) {
  ZipfDistribution zipf(1, 1.2);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(zipf.Pmf(1), 1.0);
  EXPECT_EQ(zipf.Sample(rng), 1u);
}

}  // namespace
}  // namespace peercache
