#include "common/node_store.h"

#include <cstdint>
#include <vector>

#include "gtest/gtest.h"

namespace peercache::overlay {
namespace {

struct TestNode {
  int tag = 0;
  explicit TestNode(int t) : tag(t) {}
};

TEST(NodeStore, EmplaceCreatesOnceAndReturnsExisting) {
  NodeStore<TestNode> store;
  auto [first, inserted] = store.Emplace(42, 7);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(first->tag, 7);

  auto [again, reinserted] = store.Emplace(42, 99);
  EXPECT_FALSE(reinserted);
  EXPECT_EQ(again, first);
  EXPECT_EQ(again->tag, 7);  // original construction args win
  EXPECT_EQ(store.size(), 1u);
}

TEST(NodeStore, LivenessIsSeparateFromExistence) {
  NodeStore<TestNode> store;
  store.Emplace(5, 0);
  EXPECT_FALSE(store.IsAlive(5));  // exists but not yet marked
  EXPECT_FALSE(store.IsAlive(6));  // never added

  store.MarkAlive(5);
  EXPECT_TRUE(store.IsAlive(5));
  EXPECT_EQ(store.live_count(), 1u);

  store.MarkDead(5);
  EXPECT_FALSE(store.IsAlive(5));
  EXPECT_EQ(store.live_count(), 0u);
  EXPECT_NE(store.Get(5), nullptr);  // record survives death
}

TEST(NodeStore, MarkAliveAndDeadAreIdempotent) {
  NodeStore<TestNode> store;
  store.Emplace(9, 0);
  store.MarkAlive(9);
  store.MarkAlive(9);
  EXPECT_EQ(store.live_count(), 1u);
  store.MarkDead(9);
  store.MarkDead(9);
  EXPECT_EQ(store.live_count(), 0u);
}

TEST(NodeStore, LiveIdsStaySortedUnderArbitraryChurn) {
  NodeStore<TestNode> store;
  const std::vector<uint64_t> ids = {90, 10, 50, 70, 30, 20, 80};
  for (uint64_t id : ids) {
    store.Emplace(id, 0);
    store.MarkAlive(id);
  }
  EXPECT_EQ(store.live_ids(),
            (std::vector<uint64_t>{10, 20, 30, 50, 70, 80, 90}));

  store.MarkDead(50);
  store.MarkDead(10);
  EXPECT_EQ(store.live_ids(), (std::vector<uint64_t>{20, 30, 70, 80, 90}));

  store.MarkAlive(10);  // rejoin
  EXPECT_EQ(store.live_ids(), (std::vector<uint64_t>{10, 20, 30, 70, 80, 90}));
  // Parallel slot array stays consistent with the id array.
  for (size_t i = 0; i < store.live_ids().size(); ++i) {
    EXPECT_EQ(&store.at_slot(store.live_slot(i)),
              store.Get(store.live_ids()[i]));
  }
}

TEST(NodeStore, BinarySearchesMatchSortedSemantics) {
  NodeStore<TestNode> store;
  for (uint64_t id : {10, 20, 30}) {
    store.Emplace(id, 0);
    store.MarkAlive(id);
  }
  EXPECT_EQ(store.LowerBoundLive(20), 1u);
  EXPECT_EQ(store.UpperBoundLive(20), 2u);
  EXPECT_EQ(store.LowerBoundLive(15), 1u);
  EXPECT_EQ(store.UpperBoundLive(35), 3u);

  EXPECT_EQ(store.FirstLiveAtOrAfter(20), 20u);
  EXPECT_EQ(store.FirstLiveAtOrAfter(21), 30u);
  EXPECT_EQ(store.FirstLiveAtOrAfter(31), 10u);  // wraps
}

TEST(NodeStore, BulkMarkAliveMatchesIncrementalMarkAlive) {
  // The merge-based bulk path must leave the live arrays exactly as the
  // one-at-a-time sorted insertions would.
  const std::vector<uint64_t> first = {90, 10, 50};
  const std::vector<uint64_t> second = {70, 30, 50, 20};  // 50 already live

  NodeStore<TestNode> bulk;
  NodeStore<TestNode> incremental;
  for (uint64_t id : first) {
    bulk.Emplace(id, 0);
    incremental.Emplace(id, 0);
    incremental.MarkAlive(id);
  }
  bulk.BulkMarkAlive(first);
  EXPECT_EQ(bulk.live_ids(), incremental.live_ids());

  for (uint64_t id : second) {
    bulk.Emplace(id, 0);
    incremental.Emplace(id, 0);
    incremental.MarkAlive(id);
  }
  bulk.BulkMarkAlive(second);
  EXPECT_EQ(bulk.live_ids(), incremental.live_ids());
  for (size_t i = 0; i < bulk.live_ids().size(); ++i) {
    EXPECT_EQ(&bulk.at_slot(bulk.live_slot(i)),
              bulk.Get(bulk.live_ids()[i]));
  }
}

TEST(NodeStore, ReserveDoesNotDisturbContents) {
  NodeStore<TestNode> store;
  store.Emplace(3, 30);
  store.MarkAlive(3);
  TestNode* before = store.Get(3);
  store.Reserve(5000);
  EXPECT_EQ(store.Get(3), before);
  EXPECT_EQ(store.live_ids(), (std::vector<uint64_t>{3}));
  for (uint64_t id = 0; id < 100; ++id) store.Emplace(1000 + id, 0);
  EXPECT_EQ(store.size(), 101u);
}

TEST(NodeStore, MemoryUsageAccountsSlabsIndexAndArena) {
  NodeStore<TestNode> store;
  StoreMemoryStats empty = store.MemoryUsage();
  EXPECT_EQ(empty.node_bytes, 0u);
  EXPECT_EQ(empty.bytes_per_node, 0.0);

  for (uint64_t id = 0; id < 10; ++id) {
    auto [node, inserted] = store.Emplace(id, 0);
    (void)node;
    store.MarkAlive(id);
  }
  FlatList list;
  store.tables().Assign(list, {1, 2, 3, 4, 5});
  StoreMemoryStats s = store.MemoryUsage();
  EXPECT_EQ(s.node_bytes,
            NodeStore<TestNode>::kSlabNodes * sizeof(TestNode));
  EXPECT_GT(s.index_bytes, 0u);
  EXPECT_EQ(s.table_bytes, store.tables().used_bytes());
  EXPECT_EQ(s.arena_bytes, store.tables().allocated_bytes());
  const double total = static_cast<double>(s.node_bytes + s.index_bytes +
                                           s.arena_bytes);
  EXPECT_DOUBLE_EQ(s.bytes_per_node, total / 10.0);
}

TEST(NodeStore, PointersStayValidAcrossGrowth) {
  NodeStore<TestNode> store;
  store.Emplace(0, 0);
  TestNode* first = store.Get(0);
  // Force many appends; a vector-backed store would reallocate and
  // invalidate `first`, the deque must not.
  for (uint64_t id = 1; id < 10000; ++id) {
    store.Emplace(id, static_cast<int>(id));
  }
  EXPECT_EQ(store.Get(0), first);
  EXPECT_EQ(first->tag, 0);
}

}  // namespace
}  // namespace peercache::overlay
