// End-to-end tests of the incremental churn-maintenance path
// (FreqMode::kObserved): persistent per-node maintainers must survive an
// entire churned run with the full-rebuild audit enabled on every round,
// stay thread-count invariant, populate the maintain.* telemetry, and
// leave the legacy FreqMode::kPool rounds byte-compatible and metric-free.

#include <gtest/gtest.h>

#include <cstdint>

#include "experiments/generic_experiment.h"

namespace peercache::experiments {
namespace {

ExperimentConfig MaintConfig(uint64_t seed) {
  ExperimentConfig cfg;
  cfg.n_nodes = 32;
  cfg.k = 5;
  cfg.alpha = 1.2;
  cfg.n_items = 128;
  cfg.seed = seed;
  cfg.threads = 1;
  cfg.freq_mode = FreqMode::kObserved;
  cfg.maintenance_audit_period = 1;  // audit every recompute round
  return cfg;
}

ChurnConfig ShortChurn() {
  ChurnConfig churn;
  churn.warmup_s = 400;
  churn.measure_s = 400;
  return churn;
}

uint64_t TotalAudited(const RunResult& result) {
  uint64_t total = 0;
  for (const MaintenanceRoundStats& r : result.maintenance_rounds) {
    total += r.audited_nodes;
  }
  return total;
}

TEST(Maintenance, ChordChurnSurvivesAuditOnEveryRound) {
  auto result =
      RunChurn<ChordPolicy>(MaintConfig(0x51), ShortChurn(),
                            SelectorKind::kOptimal);
  ASSERT_TRUE(result.ok()) << result.status();
  // 800 s at one recomputation per 62.5 s: every round ran and audited.
  EXPECT_GE(result->maintenance_rounds.size(), 10u);
  EXPECT_GT(TotalAudited(*result), 0u);
  for (const MaintenanceRoundStats& r : result->maintenance_rounds) {
    EXPECT_GT(r.live_nodes, 0u);
    EXPECT_EQ(r.audited_nodes, r.live_nodes)
        << "audit period 1 must cross-check every live node every round";
  }
  EXPECT_EQ(result->metrics.counter("maintain.rounds"),
            result->maintenance_rounds.size());
  EXPECT_EQ(result->metrics.counter("maintain.audited_nodes"),
            TotalAudited(*result));
  EXPECT_GT(result->metrics.counter("maintain.freq_deltas") +
                result->metrics.counter("maintain.peer_joins"),
            0u)
      << "a churned run must have observed some frequency traffic";
}

TEST(Maintenance, PastryChurnSurvivesAuditOnEveryRound) {
  auto result = RunChurn<PastryPolicy>(MaintConfig(0x52), ShortChurn(),
                                       SelectorKind::kOptimal);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GE(result->maintenance_rounds.size(), 10u);
  for (const MaintenanceRoundStats& r : result->maintenance_rounds) {
    EXPECT_EQ(r.audited_nodes, r.live_nodes);
  }
  EXPECT_GT(result->metrics.counter("maintain.peer_leaves") +
                result->metrics.counter("maintain.core_deltas"),
            0u)
      << "churn must surface membership deltas to the maintainers";
}

TEST(Maintenance, ObservedModeIsThreadCountInvariant) {
  ExperimentConfig cfg = MaintConfig(0x53);
  cfg.maintenance_audit_period = 4;
  cfg.threads = 1;
  auto serial = RunChurn<ChordPolicy>(cfg, ShortChurn(),
                                      SelectorKind::kOptimal);
  cfg.threads = 4;
  auto parallel = RunChurn<ChordPolicy>(cfg, ShortChurn(),
                                        SelectorKind::kOptimal);
  ASSERT_TRUE(serial.ok() && parallel.ok());
  EXPECT_EQ(serial->queries, parallel->queries);
  EXPECT_DOUBLE_EQ(serial->avg_hops, parallel->avg_hops);
  EXPECT_EQ(serial->node_auxiliaries, parallel->node_auxiliaries);
  // Every deterministic maintenance field matches round by round; only the
  // wall clock may differ.
  ASSERT_EQ(serial->maintenance_rounds.size(),
            parallel->maintenance_rounds.size());
  for (size_t i = 0; i < serial->maintenance_rounds.size(); ++i) {
    const MaintenanceRoundStats& a = serial->maintenance_rounds[i];
    const MaintenanceRoundStats& b = parallel->maintenance_rounds[i];
    EXPECT_DOUBLE_EQ(a.sim_time_s, b.sim_time_s) << "round " << i;
    EXPECT_EQ(a.live_nodes, b.live_nodes) << "round " << i;
    EXPECT_EQ(a.bootstrapped, b.bootstrapped) << "round " << i;
    EXPECT_EQ(a.peer_joins, b.peer_joins) << "round " << i;
    EXPECT_EQ(a.peer_leaves, b.peer_leaves) << "round " << i;
    EXPECT_EQ(a.freq_deltas, b.freq_deltas) << "round " << i;
    EXPECT_EQ(a.core_deltas, b.core_deltas) << "round " << i;
    EXPECT_EQ(a.audited_nodes, b.audited_nodes) << "round " << i;
  }
}

TEST(Maintenance, AuditPeriodGatesWhichRoundsAreChecked) {
  ExperimentConfig cfg = MaintConfig(0x54);
  cfg.maintenance_audit_period = 4;
  auto result = RunChurn<ChordPolicy>(cfg, ShortChurn(),
                                      SelectorKind::kOptimal);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_GE(result->maintenance_rounds.size(), 5u);
  for (size_t i = 0; i < result->maintenance_rounds.size(); ++i) {
    const MaintenanceRoundStats& r = result->maintenance_rounds[i];
    if (i % 4 == 0) {
      EXPECT_EQ(r.audited_nodes, r.live_nodes) << "round " << i;
    } else {
      EXPECT_EQ(r.audited_nodes, 0u) << "round " << i;
    }
  }

  cfg.maintenance_audit_period = 0;
  auto unaudited = RunChurn<ChordPolicy>(cfg, ShortChurn(),
                                         SelectorKind::kOptimal);
  ASSERT_TRUE(unaudited.ok());
  EXPECT_EQ(TotalAudited(*unaudited), 0u);
  // Audits only check invariants; they must not change the run.
  EXPECT_DOUBLE_EQ(result->avg_hops, unaudited->avg_hops);
  EXPECT_EQ(result->node_auxiliaries, unaudited->node_auxiliaries);
}

TEST(Maintenance, PoolModeProducesNoMaintenanceTelemetry) {
  ExperimentConfig cfg = MaintConfig(0x55);
  cfg.freq_mode = FreqMode::kPool;
  auto result = RunChurn<ChordPolicy>(cfg, ShortChurn(),
                                      SelectorKind::kOptimal);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->maintenance_rounds.empty());
  EXPECT_EQ(result->metrics.counter("maintain.rounds"), 0u);
  EXPECT_GT(result->queries, 0u);
}

TEST(Maintenance, NonOptimalPoliciesIgnoreFreqMode) {
  ExperimentConfig cfg = MaintConfig(0x56);
  auto oblivious = RunChurn<ChordPolicy>(cfg, ShortChurn(),
                                         SelectorKind::kOblivious);
  ASSERT_TRUE(oblivious.ok());
  EXPECT_TRUE(oblivious->maintenance_rounds.empty());
  auto none = RunChurn<ChordPolicy>(cfg, ShortChurn(), SelectorKind::kNone);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->maintenance_rounds.empty());
}

TEST(Maintenance, FreqModeNamesRoundTrip) {
  EXPECT_STREQ(FreqModeName(FreqMode::kPool), "pool");
  EXPECT_STREQ(FreqModeName(FreqMode::kObserved), "observed");
}

}  // namespace
}  // namespace peercache::experiments
