#include <gtest/gtest.h>

#include "experiments/generic_experiment.h"

namespace peercache::experiments {
namespace {

ExperimentConfig SmallConfig() {
  ExperimentConfig cfg;
  cfg.n_nodes = 128;
  cfg.k = 7;  // log2(128)
  cfg.alpha = 1.2;
  cfg.n_items = 512;
  cfg.warmup_queries_per_node = 150;
  cfg.measure_queries_per_node = 80;
  cfg.seed = 20260708;
  return cfg;
}

TEST(ChordExperiment, StableOptimalBeatsOblivious) {
  ExperimentConfig cfg = SmallConfig();
  cfg.n_popularity_lists = 5;
  auto cmp = CompareStable<ChordPolicy>(cfg);
  ASSERT_TRUE(cmp.ok()) << cmp.status();
  EXPECT_DOUBLE_EQ(cmp->oblivious.success_rate, 1.0);
  EXPECT_DOUBLE_EQ(cmp->optimal.success_rate, 1.0);
  EXPECT_GT(cmp->improvement_pct, 10.0)
      << "optimal should clearly beat oblivious on zipf(1.2)";
  EXPECT_LT(cmp->improvement_pct, 100.0);
}

TEST(ChordExperiment, AuxiliariesBeatBareOverlay) {
  ExperimentConfig cfg = SmallConfig();
  auto none = RunStable<ChordPolicy>(cfg, SelectorKind::kNone);
  auto oblivious = RunStable<ChordPolicy>(cfg, SelectorKind::kOblivious);
  auto optimal = RunStable<ChordPolicy>(cfg, SelectorKind::kOptimal);
  ASSERT_TRUE(none.ok() && oblivious.ok() && optimal.ok());
  EXPECT_LT(oblivious->avg_hops, none->avg_hops)
      << "even random auxiliaries help";
  EXPECT_LT(optimal->avg_hops, oblivious->avg_hops);
}

TEST(ChordExperiment, ImprovementGrowsWithSkew) {
  // Paper Sec. VI: gains grow with the zipf parameter.
  ExperimentConfig cfg = SmallConfig();
  cfg.alpha = 0.5;
  auto mild = CompareStable<ChordPolicy>(cfg);
  cfg.alpha = 1.5;
  auto heavy = CompareStable<ChordPolicy>(cfg);
  ASSERT_TRUE(mild.ok() && heavy.ok());
  EXPECT_GT(heavy->improvement_pct, mild->improvement_pct);
}

TEST(ChordExperiment, ChurnRunsAndStillImproves) {
  ExperimentConfig cfg = SmallConfig();
  cfg.n_popularity_lists = 5;
  ChurnConfig churn;
  churn.warmup_s = 1200;
  churn.measure_s = 1200;
  auto cmp = CompareChurn<ChordPolicy>(cfg, churn);
  ASSERT_TRUE(cmp.ok()) << cmp.status();
  EXPECT_GT(cmp->optimal.queries, 1000u);
  EXPECT_GT(cmp->optimal.success_rate, 0.9)
      << "churned overlay should still answer most queries";
  EXPECT_GT(cmp->improvement_pct, 0.0);
}

TEST(ChordExperiment, DeterministicForSeed) {
  ExperimentConfig cfg = SmallConfig();
  auto a = RunStable<ChordPolicy>(cfg, SelectorKind::kOptimal);
  auto b = RunStable<ChordPolicy>(cfg, SelectorKind::kOptimal);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->avg_hops, b->avg_hops);
  cfg.seed = 999;
  auto c = RunStable<ChordPolicy>(cfg, SelectorKind::kOptimal);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->avg_hops, c->avg_hops) << "different seed, different run";
}

TEST(PastryExperiment, StableOptimalBeatsOblivious) {
  ExperimentConfig cfg = SmallConfig();
  cfg.n_popularity_lists = 1;  // identical ranking, paper's Pastry setup
  auto cmp = CompareStable<PastryPolicy>(cfg);
  ASSERT_TRUE(cmp.ok()) << cmp.status();
  EXPECT_DOUBLE_EQ(cmp->oblivious.success_rate, 1.0);
  EXPECT_DOUBLE_EQ(cmp->optimal.success_rate, 1.0);
  EXPECT_GT(cmp->improvement_pct, 5.0);
  EXPECT_LT(cmp->improvement_pct, 100.0);
}

TEST(PastryExperiment, LowerAlphaLowersImprovement) {
  // Paper Fig. 3: alpha = 0.91 gains are clearly below alpha = 1.2 gains.
  ExperimentConfig cfg = SmallConfig();
  cfg.alpha = 1.2;
  auto high = CompareStable<PastryPolicy>(cfg);
  cfg.alpha = 0.5;  // wider gap than 0.91 to keep the test robust
  auto low = CompareStable<PastryPolicy>(cfg);
  ASSERT_TRUE(high.ok() && low.ok());
  EXPECT_GT(high->improvement_pct, low->improvement_pct);
}

TEST(PastryExperiment, DeterministicForSeed) {
  ExperimentConfig cfg = SmallConfig();
  auto a = RunStable<PastryPolicy>(cfg, SelectorKind::kOptimal);
  auto b = RunStable<PastryPolicy>(cfg, SelectorKind::kOptimal);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->avg_hops, b->avg_hops);
}


TEST(PastryExperiment, ChurnRunsAndStillImproves) {
  ExperimentConfig cfg = SmallConfig();
  cfg.n_popularity_lists = 1;
  ChurnConfig churn;
  churn.warmup_s = 1200;
  churn.measure_s = 1200;
  auto cmp = CompareChurn<PastryPolicy>(cfg, churn);
  ASSERT_TRUE(cmp.ok()) << cmp.status();
  EXPECT_GT(cmp->optimal.queries, 1000u);
  EXPECT_GT(cmp->optimal.success_rate, 0.9);
  EXPECT_GT(cmp->improvement_pct, 0.0);
}

TEST(PastryExperiment, ChurnDeterministicForSeed) {
  ExperimentConfig cfg = SmallConfig();
  ChurnConfig churn;
  churn.warmup_s = 600;
  churn.measure_s = 600;
  auto a = RunChurn<PastryPolicy>(cfg, churn, SelectorKind::kOptimal);
  auto b = RunChurn<PastryPolicy>(cfg, churn, SelectorKind::kOptimal);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->avg_hops, b->avg_hops);
  EXPECT_EQ(a->queries, b->queries);
}

TEST(Experiments, ImprovementPctFormula) {
  EXPECT_DOUBLE_EQ(ImprovementPct(4.0, 2.0), 50.0);
  EXPECT_DOUBLE_EQ(ImprovementPct(4.0, 4.0), 0.0);
  EXPECT_DOUBLE_EQ(ImprovementPct(0.0, 1.0), 0.0);
}

}  // namespace
}  // namespace peercache::experiments
