// Seeded fault-corpus differential test (docs/RESILIENCE.md): regenerating
// the committed corpus document (results/fault_corpus.json, written by
// `fault_resilience --corpus-out`) must reproduce it byte-identically at
// thread counts 1 and 4. The document replays eight fault scenarios —
// drops, fail-stops, stale windows, a no-retry baseline, and a tight retry
// budget — through both overlays and serializes only deterministic fields
// (config, headline averages, and the full `resilience` block), so a single
// string comparison pins the whole resilient-routing pipeline, including
// its thread-count invariance, to the committed behavior.

#include <fstream>
#include <sstream>
#include <string>

#include "experiments/fault_corpus.h"
#include "gtest/gtest.h"

namespace peercache::experiments {
namespace {

std::string ReadCommittedCorpus() {
  const std::string path =
      std::string(PEERCACHE_RESULTS_DIR) + "/fault_corpus.json";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing committed corpus " << path
                         << " — regenerate with fault_resilience "
                            "--corpus-out results/fault_corpus.json";
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class FaultCorpusDifferential : public ::testing::TestWithParam<int> {};

TEST_P(FaultCorpusDifferential, RegeneratesCommittedBytes) {
  const std::string golden = ReadCommittedCorpus();
  ASSERT_FALSE(golden.empty());
  Result<std::string> doc = FaultCorpusDocument(/*threads=*/GetParam());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  // The committed file ends with a newline the writer does not emit.
  EXPECT_EQ(*doc + "\n", golden)
      << "fault corpus diverged at threads=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Threads, FaultCorpusDifferential,
                         ::testing::Values(1, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "threads" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace peercache::experiments
