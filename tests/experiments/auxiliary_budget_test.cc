// Heterogeneous auxiliary-budget tests: ComputeAuxiliaryBudgets must
// conserve the global budget n*k, stay within per-node caps, and be a pure
// function of (config, ids) regardless of id arrival order.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <numeric>
#include <vector>

#include "common/random.h"
#include "experiments/experiment_config.h"

namespace peercache::experiments {
namespace {

std::vector<uint64_t> SampleIds(size_t n, uint64_t seed) {
  Rng rng(seed);
  return rng.SampleDistinct(uint64_t{1} << 32, n);
}

TEST(AuxiliaryBudgets, GammaZeroIsUniform) {
  ExperimentConfig config;
  config.k = 7;
  config.budget_gamma = 0.0;
  const auto ids = SampleIds(33, 11);
  const std::vector<int> budgets = ComputeAuxiliaryBudgets(config, ids);
  ASSERT_EQ(budgets.size(), ids.size());
  for (int b : budgets) EXPECT_EQ(b, 7);
}

TEST(AuxiliaryBudgets, GlobalBudgetIsConserved) {
  ExperimentConfig config;
  config.k = 10;
  for (double gamma : {0.5, 0.75, 1.0, 1.5, 3.0}) {
    config.budget_gamma = gamma;
    const auto ids = SampleIds(128, 21);
    const std::vector<int> budgets = ComputeAuxiliaryBudgets(config, ids);
    ASSERT_EQ(budgets.size(), ids.size());
    const int total = std::accumulate(budgets.begin(), budgets.end(), 0);
    EXPECT_EQ(total, static_cast<int>(ids.size()) * config.k)
        << "gamma " << gamma << " leaked budget";
    for (int b : budgets) {
      EXPECT_GE(b, 0);
      EXPECT_LE(b, static_cast<int>(ids.size()) - 1)
          << "a node cannot point at more peers than exist";
    }
  }
}

TEST(AuxiliaryBudgets, ResultIsIndependentOfIdOrder) {
  ExperimentConfig config;
  config.k = 10;
  config.budget_gamma = 1.5;
  std::vector<uint64_t> ids = SampleIds(64, 31);
  const std::vector<int> forward = ComputeAuxiliaryBudgets(config, ids);

  std::vector<uint64_t> shuffled = ids;
  Rng rng(99);
  for (size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.UniformU64(i)]);
  }
  ASSERT_NE(shuffled, ids) << "shuffle degenerated";
  const std::vector<int> permuted = ComputeAuxiliaryBudgets(config, shuffled);

  std::map<uint64_t, int> by_id;
  for (size_t i = 0; i < ids.size(); ++i) by_id[ids[i]] = forward[i];
  for (size_t i = 0; i < shuffled.size(); ++i) {
    EXPECT_EQ(permuted[i], by_id[shuffled[i]])
        << "budget of id " << shuffled[i] << " depends on arrival order";
  }
}

TEST(AuxiliaryBudgets, HeavierGammaConcentratesTheBudget) {
  ExperimentConfig config;
  config.k = 10;
  const auto ids = SampleIds(256, 41);
  config.budget_gamma = 0.5;
  const std::vector<int> mild = ComputeAuxiliaryBudgets(config, ids);
  config.budget_gamma = 2.0;
  const std::vector<int> heavy = ComputeAuxiliaryBudgets(config, ids);
  EXPECT_GT(*std::max_element(heavy.begin(), heavy.end()),
            *std::max_element(mild.begin(), mild.end()))
      << "raising gamma should hand the top node a larger budget";
}

TEST(AuxiliaryBudgets, CapBindsOnTinyNetworks) {
  // n=4, k=3: the global budget 12 exactly saturates the n-1 cap on every
  // node, so an extreme gamma cannot concentrate further.
  ExperimentConfig config;
  config.k = 3;
  config.budget_gamma = 8.0;
  const auto ids = SampleIds(4, 51);
  const std::vector<int> budgets = ComputeAuxiliaryBudgets(config, ids);
  for (int b : budgets) EXPECT_EQ(b, 3);
}

TEST(AuxiliaryBudgets, BudgetSeedChangesTheAssignment) {
  ExperimentConfig config;
  config.k = 10;
  config.budget_gamma = 1.5;
  const auto ids = SampleIds(64, 61);
  const std::vector<int> a = ComputeAuxiliaryBudgets(config, ids);
  config.budget_seed += 1;
  const std::vector<int> b = ComputeAuxiliaryBudgets(config, ids);
  EXPECT_NE(a, b) << "capacities must derive from budget_seed";
}

}  // namespace
}  // namespace peercache::experiments
