// The parallel experiment engine's core guarantee: thread count is not an
// experimental variable. `threads = N` must reproduce `threads = 1`
// bit-for-bit — identical per-node auxiliary selections and identical
// measured hop statistics — because every node draws from its own RNG
// stream (SplitSeed) and partial results merge in node order.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "experiments/generic_experiment.h"

namespace peercache::experiments {
namespace {

ExperimentConfig BaseConfig(uint64_t seed) {
  ExperimentConfig cfg;
  cfg.n_nodes = 96;
  cfg.k = 7;
  cfg.alpha = 1.2;
  cfg.n_items = 384;
  cfg.warmup_queries_per_node = 60;
  cfg.measure_queries_per_node = 40;
  cfg.seed = seed;
  return cfg;
}

void ExpectIdenticalRuns(const RunResult& serial, const RunResult& parallel) {
  // Hop-count statistics, down to individual histogram buckets.
  EXPECT_EQ(serial.queries, parallel.queries);
  EXPECT_DOUBLE_EQ(serial.success_rate, parallel.success_rate);
  EXPECT_DOUBLE_EQ(serial.avg_hops, parallel.avg_hops);
  EXPECT_EQ(serial.hop_histogram.count(), parallel.hop_histogram.count());
  EXPECT_EQ(serial.hop_histogram.overflow(), parallel.hop_histogram.overflow());
  for (int h = 0; h <= 64; ++h) {
    EXPECT_EQ(serial.hop_histogram.BucketCount(h),
              parallel.hop_histogram.BucketCount(h))
        << "hop bucket " << h;
  }

  // Per-node auxiliary sets, in order.
  ASSERT_EQ(serial.node_auxiliaries.size(), parallel.node_auxiliaries.size());
  for (size_t i = 0; i < serial.node_auxiliaries.size(); ++i) {
    EXPECT_EQ(serial.node_auxiliaries[i].first,
              parallel.node_auxiliaries[i].first);
    EXPECT_EQ(serial.node_auxiliaries[i].second,
              parallel.node_auxiliaries[i].second)
        << "auxiliaries differ at node 0x" << std::hex
        << serial.node_auxiliaries[i].first;
  }
}

class ParallelDeterminismTest : public ::testing::TestWithParam<SelectorKind> {
};

TEST_P(ParallelDeterminismTest, ChordStableMatchesSerial) {
  ExperimentConfig cfg = BaseConfig(0xc0de);
  cfg.n_popularity_lists = 5;
  cfg.threads = 1;
  auto serial = RunStable<ChordPolicy>(cfg, GetParam());
  cfg.threads = 4;
  auto parallel = RunStable<ChordPolicy>(cfg, GetParam());
  ASSERT_TRUE(serial.ok() && parallel.ok());
  ExpectIdenticalRuns(*serial, *parallel);
}

TEST_P(ParallelDeterminismTest, PastryStableMatchesSerial) {
  ExperimentConfig cfg = BaseConfig(0xfeed);
  cfg.threads = 1;
  auto serial = RunStable<PastryPolicy>(cfg, GetParam());
  cfg.threads = 4;
  auto parallel = RunStable<PastryPolicy>(cfg, GetParam());
  ASSERT_TRUE(serial.ok() && parallel.ok());
  ExpectIdenticalRuns(*serial, *parallel);
}

TEST_P(ParallelDeterminismTest, KademliaStableMatchesSerial) {
  ExperimentConfig cfg = BaseConfig(0x4ade);
  cfg.threads = 1;
  auto serial = RunStable<KademliaPolicy>(cfg, GetParam());
  cfg.threads = 4;
  auto parallel = RunStable<KademliaPolicy>(cfg, GetParam());
  ASSERT_TRUE(serial.ok() && parallel.ok());
  ExpectIdenticalRuns(*serial, *parallel);
}

INSTANTIATE_TEST_SUITE_P(AllSelectors, ParallelDeterminismTest,
                         ::testing::Values(SelectorKind::kNone,
                                           SelectorKind::kOblivious,
                                           SelectorKind::kOptimal),
                         [](const auto& info) {
                           return std::string(SelectorKindName(info.param));
                         });

TEST(ParallelDeterminism, ChordChurnMatchesSerial) {
  ExperimentConfig cfg = BaseConfig(0xabba);
  cfg.n_popularity_lists = 5;
  ChurnConfig churn;
  churn.warmup_s = 400;
  churn.measure_s = 400;
  cfg.threads = 1;
  auto serial = RunChurn<ChordPolicy>(cfg, churn, SelectorKind::kOptimal);
  cfg.threads = 4;
  auto parallel = RunChurn<ChordPolicy>(cfg, churn, SelectorKind::kOptimal);
  ASSERT_TRUE(serial.ok() && parallel.ok());
  ExpectIdenticalRuns(*serial, *parallel);
}

TEST(ParallelDeterminism, PastryChurnMatchesSerial) {
  ExperimentConfig cfg = BaseConfig(0xdada);
  ChurnConfig churn;
  churn.warmup_s = 400;
  churn.measure_s = 400;
  cfg.threads = 1;
  auto serial = RunChurn<PastryPolicy>(cfg, churn, SelectorKind::kOptimal);
  cfg.threads = 4;
  auto parallel = RunChurn<PastryPolicy>(cfg, churn, SelectorKind::kOptimal);
  ASSERT_TRUE(serial.ok() && parallel.ok());
  ExpectIdenticalRuns(*serial, *parallel);
}

TEST(ParallelDeterminism, KademliaChurnMatchesSerial) {
  ExperimentConfig cfg = BaseConfig(0x4adc);
  ChurnConfig churn;
  churn.warmup_s = 400;
  churn.measure_s = 400;
  cfg.threads = 1;
  auto serial = RunChurn<KademliaPolicy>(cfg, churn, SelectorKind::kOptimal);
  cfg.threads = 4;
  auto parallel = RunChurn<KademliaPolicy>(cfg, churn, SelectorKind::kOptimal);
  ASSERT_TRUE(serial.ok() && parallel.ok());
  ExpectIdenticalRuns(*serial, *parallel);
}

TEST(ParallelDeterminism, DefaultThreadCountAlsoMatches) {
  ExperimentConfig cfg = BaseConfig(0x5eed);
  cfg.threads = 1;
  auto serial = RunStable<ChordPolicy>(cfg, SelectorKind::kOptimal);
  cfg.threads = 0;  // hardware concurrency, whatever this host has
  auto parallel = RunStable<ChordPolicy>(cfg, SelectorKind::kOptimal);
  ASSERT_TRUE(serial.ok() && parallel.ok());
  ExpectIdenticalRuns(*serial, *parallel);
}

TEST(ParallelDeterminism, DifferentSeedsStillDiffer) {
  // Guard against the per-node streams accidentally collapsing runs onto
  // one trajectory: different experiment seeds must still give different
  // measurements.
  ExperimentConfig a = BaseConfig(1);
  ExperimentConfig b = BaseConfig(2);
  a.threads = 4;
  b.threads = 4;
  auto ra = RunStable<ChordPolicy>(a, SelectorKind::kOptimal);
  auto rb = RunStable<ChordPolicy>(b, SelectorKind::kOptimal);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_NE(ra->avg_hops, rb->avg_hops);
}

}  // namespace
}  // namespace peercache::experiments
