// Observability layer guarantees: sampled route traces and the merged
// metrics snapshot are part of the engine's determinism contract (threads=1
// and threads=4 serialize byte-identically once wall-clock timers are
// excluded), traces are internally consistent routes, and the Eq. 1 cost
// audit lines up with the aggregate hop accounting.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/json_writer.h"
#include "common/trace.h"
#include "experiments/generic_experiment.h"
#include "experiments/cost_audit.h"
#include "experiments/json_report.h"

namespace peercache::experiments {
namespace {

ExperimentConfig BaseConfig(uint64_t seed) {
  ExperimentConfig cfg;
  cfg.n_nodes = 96;
  cfg.k = 7;
  cfg.alpha = 1.2;
  cfg.n_items = 384;
  cfg.warmup_queries_per_node = 60;
  cfg.measure_queries_per_node = 40;
  cfg.trace_sample_period = 10;
  cfg.seed = seed;
  return cfg;
}

std::string SerializedMetricsNoTimers(const RunResult& result) {
  JsonWriter w;
  result.metrics.WriteJson(w, /*include_timers=*/false);
  return w.TakeString();
}

std::string SerializedTraces(const std::string& system,
                             const RunResult& result) {
  std::string out;
  for (const RouteTrace& trace : result.traces) {
    out += TraceJsonLine(system, "optimal", trace);
    out += '\n';
  }
  return out;
}

std::string SerializedAudit(const RunResult& result) {
  JsonWriter w;
  w.BeginArray();
  for (const CostAuditEntry& e : result.cost_audit) {
    w.BeginObject();
    w.Key("node");
    w.UInt(e.node_id);
    w.Key("predicted");
    w.Double(e.predicted_hops);
    w.Key("measured");
    w.Double(e.measured_hops);
    w.Key("queries");
    w.UInt(e.measured_queries);
    w.EndObject();
  }
  w.EndArray();
  return w.TakeString();
}

TEST(Observability, ChordTelemetryIsThreadCountInvariant) {
  ExperimentConfig cfg = BaseConfig(0xa0);
  cfg.n_popularity_lists = 5;
  cfg.threads = 1;
  auto serial = RunStable<ChordPolicy>(cfg, SelectorKind::kOptimal);
  cfg.threads = 4;
  auto parallel = RunStable<ChordPolicy>(cfg, SelectorKind::kOptimal);
  ASSERT_TRUE(serial.ok() && parallel.ok());

  EXPECT_EQ(SerializedMetricsNoTimers(*serial),
            SerializedMetricsNoTimers(*parallel));
  EXPECT_EQ(SerializedTraces("chord", *serial),
            SerializedTraces("chord", *parallel));
  EXPECT_EQ(SerializedAudit(*serial), SerializedAudit(*parallel));
  EXPECT_EQ(serial->total_route_hops, parallel->total_route_hops);
  EXPECT_EQ(serial->aux_route_hops, parallel->aux_route_hops);
  EXPECT_DOUBLE_EQ(serial->aux_hit_rate, parallel->aux_hit_rate);
  EXPECT_FALSE(serial->traces.empty());
}

TEST(Observability, PastryTelemetryIsThreadCountInvariant) {
  ExperimentConfig cfg = BaseConfig(0xa1);
  cfg.threads = 1;
  auto serial = RunStable<PastryPolicy>(cfg, SelectorKind::kOptimal);
  cfg.threads = 4;
  auto parallel = RunStable<PastryPolicy>(cfg, SelectorKind::kOptimal);
  ASSERT_TRUE(serial.ok() && parallel.ok());

  EXPECT_EQ(SerializedMetricsNoTimers(*serial),
            SerializedMetricsNoTimers(*parallel));
  EXPECT_EQ(SerializedTraces("pastry", *serial),
            SerializedTraces("pastry", *parallel));
  EXPECT_EQ(SerializedAudit(*serial), SerializedAudit(*parallel));
  EXPECT_FALSE(serial->traces.empty());
}

void ExpectWellFormedTraces(const RunResult& result, bool chord) {
  ASSERT_FALSE(result.traces.empty());
  for (const RouteTrace& trace : result.traces) {
    if (!trace.success) continue;
    EXPECT_EQ(trace.path.size(), static_cast<size_t>(trace.hops));
    if (trace.path.empty()) {
      // Zero-hop lookup: the origin owned the key.
      EXPECT_EQ(trace.destination, trace.origin);
      continue;
    }
    EXPECT_EQ(trace.path.front().from, trace.origin);
    EXPECT_EQ(trace.path.back().to, trace.destination);
    for (size_t i = 0; i + 1 < trace.path.size(); ++i) {
      EXPECT_EQ(trace.path[i].to, trace.path[i + 1].from) << "broken chain";
    }
    for (const HopRecord& hop : trace.path) {
      if (chord) {
        EXPECT_NE(hop.kind, HopEntryKind::kRoutingRow);
        EXPECT_NE(hop.kind, HopEntryKind::kLeafSet);
      } else {
        EXPECT_NE(hop.kind, HopEntryKind::kFinger);
        EXPECT_NE(hop.kind, HopEntryKind::kSuccessor);
      }
    }
  }
}

TEST(Observability, ChordTracesAreConsistentRoutes) {
  ExperimentConfig cfg = BaseConfig(0xcc);
  cfg.n_popularity_lists = 5;
  auto result = RunStable<ChordPolicy>(cfg, SelectorKind::kOptimal);
  ASSERT_TRUE(result.ok());
  ExpectWellFormedTraces(*result, /*chord=*/true);
}

TEST(Observability, PastryTracesAreConsistentRoutes) {
  ExperimentConfig cfg = BaseConfig(0xdd);
  auto result = RunStable<PastryPolicy>(cfg, SelectorKind::kOptimal);
  ASSERT_TRUE(result.ok());
  ExpectWellFormedTraces(*result, /*chord=*/false);
}

TEST(Observability, TracingIsOffByDefault) {
  ExperimentConfig cfg = BaseConfig(0xee);
  cfg.trace_sample_period = 0;
  auto result = RunStable<ChordPolicy>(cfg, SelectorKind::kOptimal);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->traces.empty());
}

TEST(Observability, AuxAccountingMatchesMetricsCounters) {
  ExperimentConfig cfg = BaseConfig(0xff);
  cfg.n_popularity_lists = 5;
  auto result = RunStable<ChordPolicy>(cfg, SelectorKind::kOptimal);
  ASSERT_TRUE(result.ok());

  EXPECT_EQ(result->metrics.counter("lookup.route_hops"),
            result->total_route_hops);
  EXPECT_EQ(result->metrics.counter("lookup.aux_hops"),
            result->aux_route_hops);
  EXPECT_EQ(result->metrics.counter("lookup.queries"), result->queries);
  ASSERT_GT(result->total_route_hops, 0u);
  EXPECT_DOUBLE_EQ(result->aux_hit_rate,
                   static_cast<double>(result->aux_route_hops) /
                       static_cast<double>(result->total_route_hops));
  // An optimal selection on a zipf workload routes a visible share of
  // traffic through the auxiliaries — that is the paper's whole point.
  EXPECT_GT(result->aux_hit_rate, 0.0);
}

TEST(Observability, CoreOnlyRunHasNoAuxHops) {
  ExperimentConfig cfg = BaseConfig(0xab);
  auto result = RunStable<ChordPolicy>(cfg, SelectorKind::kNone);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->aux_route_hops, 0u);
  EXPECT_DOUBLE_EQ(result->aux_hit_rate, 0.0);
}

TEST(Observability, CostAuditCoversEveryNodeExactlyOnce) {
  ExperimentConfig cfg = BaseConfig(0xba);
  cfg.n_popularity_lists = 5;
  auto result = RunStable<ChordPolicy>(cfg, SelectorKind::kOptimal);
  ASSERT_TRUE(result.ok());

  ASSERT_EQ(result->cost_audit.size(), static_cast<size_t>(cfg.n_nodes));
  for (size_t i = 0; i + 1 < result->cost_audit.size(); ++i) {
    EXPECT_LT(result->cost_audit[i].node_id,
              result->cost_audit[i + 1].node_id);
  }
  for (const CostAuditEntry& e : result->cost_audit) {
    EXPECT_GT(e.measured_queries, 0u);
    EXPECT_TRUE(std::isfinite(e.predicted_hops));
    EXPECT_GE(e.measured_hops, 0.0);
  }
  const CostAuditSummary summary = SummarizeCostAudit(result->cost_audit);
  EXPECT_EQ(summary.nodes, static_cast<uint64_t>(cfg.n_nodes));
  EXPECT_EQ(summary.residual.count(), static_cast<uint64_t>(cfg.n_nodes));
}

// The oblivious selector publishes no Eq. 1 prediction, so no audit rows.
TEST(Observability, NoAuditWithoutPrediction) {
  ExperimentConfig cfg = BaseConfig(0xcd);
  auto result = RunStable<ChordPolicy>(cfg, SelectorKind::kOblivious);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->cost_audit.empty());
}

TEST(Observability, SummarizeCostAuditSkipsUnusableEntries) {
  std::vector<CostAuditEntry> entries;
  entries.push_back({1, 2.0, 1.5, 10});                   // usable
  entries.push_back({2, std::nan(""), 1.0, 10});          // no prediction
  entries.push_back({3, 2.0, 0.0, 0});                    // no measurements
  const CostAuditSummary summary = SummarizeCostAudit(entries);
  EXPECT_EQ(summary.nodes, 1u);
  EXPECT_DOUBLE_EQ(summary.residual.mean(), -0.5);
  EXPECT_DOUBLE_EQ(summary.abs_residual.mean(), 0.5);
}

TEST(Observability, ChurnRunProducesTelemetry) {
  ExperimentConfig cfg = BaseConfig(0xce);
  cfg.n_popularity_lists = 5;
  ChurnConfig churn;
  churn.warmup_s = 400;
  churn.measure_s = 400;
  auto result = RunChurn<ChordPolicy>(cfg, churn, SelectorKind::kOptimal);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->traces.empty());
  EXPECT_GT(result->total_route_hops, 0u);
  EXPECT_FALSE(result->cost_audit.empty());
  EXPECT_EQ(result->metrics.counter("lookup.queries"), result->queries);
}

ExperimentConfig LatencyConfigOn(uint64_t seed) {
  ExperimentConfig cfg = BaseConfig(seed);
  cfg.n_popularity_lists = 5;
  cfg.latency.base_rtt_ms = 2.0;
  cfg.latency.coord_scale_ms = 60.0;
  cfg.latency.jitter_ms = 3.0;
  cfg.latency.timeout_ms = 20.0;
  return cfg;
}

// Switching the latency model on must not move a single packet: routing,
// selection, and every hop-count statistic are untouched — the model only
// annotates the hops that already happened.
TEST(Observability, LatencyModelDoesNotPerturbRouting) {
  ExperimentConfig off = BaseConfig(0xd0);
  off.n_popularity_lists = 5;
  auto plain = RunStable<ChordPolicy>(off, SelectorKind::kOptimal);
  auto timed = RunStable<ChordPolicy>(LatencyConfigOn(0xd0),
                                      SelectorKind::kOptimal);
  ASSERT_TRUE(plain.ok() && timed.ok());
  EXPECT_FALSE(plain->latency_enabled);
  EXPECT_TRUE(timed->latency_enabled);
  EXPECT_EQ(plain->avg_hops, timed->avg_hops);
  EXPECT_EQ(plain->total_route_hops, timed->total_route_hops);
  EXPECT_EQ(plain->aux_route_hops, timed->aux_route_hops);
  EXPECT_EQ(SerializedAudit(*plain), SerializedAudit(*timed));
  // Every measured lookup landed one sample in the latency histogram.
  EXPECT_EQ(timed->latency_histogram.count(), timed->queries);
  EXPECT_EQ(plain->latency_histogram.count(), 0u);
}

// The latency histogram and the per-hop spans in the traces join the
// determinism contract: byte-identical at threads 1 and 4.
TEST(Observability, LatencyTelemetryIsThreadCountInvariant) {
  ExperimentConfig cfg = LatencyConfigOn(0xd1);
  cfg.threads = 1;
  auto serial = RunStable<ChordPolicy>(cfg, SelectorKind::kOptimal);
  cfg.threads = 4;
  auto parallel = RunStable<ChordPolicy>(cfg, SelectorKind::kOptimal);
  ASSERT_TRUE(serial.ok() && parallel.ok());
  EXPECT_EQ(serial->latency_histogram.count(),
            parallel->latency_histogram.count());
  EXPECT_EQ(serial->latency_histogram.sum(), parallel->latency_histogram.sum());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(serial->latency_histogram.Percentile(q),
              parallel->latency_histogram.Percentile(q))
        << "q=" << q;
  }
  // Traces carry per-hop latency_ms spans; the serialized lines (latency
  // fields included) must agree byte for byte.
  EXPECT_EQ(SerializedTraces("chord", *serial),
            SerializedTraces("chord", *parallel));
  bool saw_hop_span = false;
  for (const RouteTrace& trace : serial->traces) {
    for (const HopRecord& hop : trace.path) {
      if (hop.latency_ms > 0.0) saw_hop_span = true;
    }
    if (!trace.path.empty() && trace.success) {
      double total = 0.0;
      for (const HopRecord& hop : trace.path) total += hop.latency_ms;
      EXPECT_LE(total, trace.latency_ms + 1e-9);  // failed attempts add more
    }
  }
  EXPECT_TRUE(saw_hop_span);
}

// The run-level latency block and the latency_* config keys are emitted
// only for latency-enabled runs; a latency-off document keeps its
// historical bytes (no new keys anywhere).
TEST(Observability, LatencyJsonIsConditional) {
  ExperimentConfig off = BaseConfig(0xd2);
  off.n_popularity_lists = 5;
  auto cmp_off = CompareStable<ChordPolicy>(off);
  ASSERT_TRUE(cmp_off.ok());
  const std::string doc_off =
      ComparisonDocument("observability_test", "chord", "stable", off,
                         *cmp_off);
  EXPECT_EQ(doc_off.find("\"latency\""), std::string::npos);
  EXPECT_EQ(doc_off.find("latency_base_rtt_ms"), std::string::npos);
  EXPECT_EQ(doc_off.find("latency_histograms"), std::string::npos);

  const ExperimentConfig on = LatencyConfigOn(0xd2);
  auto cmp_on = CompareStable<ChordPolicy>(on);
  ASSERT_TRUE(cmp_on.ok());
  const std::string doc_on =
      ComparisonDocument("observability_test", "chord", "stable", on, *cmp_on);
  EXPECT_NE(doc_on.find("\"latency_base_rtt_ms\":2"), std::string::npos);
  EXPECT_NE(doc_on.find("\"latency\":{\"count\":"), std::string::npos);
  EXPECT_NE(doc_on.find("\"p999_ms\""), std::string::npos);
  EXPECT_NE(doc_on.find("\"latency_histograms\""), std::string::npos);
}

// Churn runs accrue latency through the same per-hop path, including the
// timeout cost of failed forwarding attempts.
TEST(Observability, ChurnRunAccruesLatency) {
  ExperimentConfig cfg = LatencyConfigOn(0xd3);
  ChurnConfig churn;
  churn.warmup_s = 400;
  churn.measure_s = 400;
  auto result = RunChurn<ChordPolicy>(cfg, churn, SelectorKind::kOptimal);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->latency_enabled);
  EXPECT_EQ(result->latency_histogram.count(), result->queries);
  EXPECT_GT(result->latency_histogram.max(), 0.0);
}

// Sketch-mode telemetry follows the latency rule: a sketch-off document
// keeps its historical bytes (no freq_sketch / drift / budget keys
// anywhere), a sketch-on document gains the conditional block.
TEST(Observability, FreqSketchJsonIsConditional) {
  ExperimentConfig off = BaseConfig(0xd4);
  off.n_popularity_lists = 5;
  auto cmp_off = CompareStable<ChordPolicy>(off);
  ASSERT_TRUE(cmp_off.ok());
  const std::string doc_off =
      ComparisonDocument("observability_test", "chord", "stable", off,
                         *cmp_off);
  EXPECT_EQ(doc_off.find("freq_sketch"), std::string::npos);
  EXPECT_EQ(doc_off.find("drift_"), std::string::npos);
  EXPECT_EQ(doc_off.find("budget_gamma"), std::string::npos);

  ExperimentConfig on = off;
  on.freq_sketch.top_capacity = 16;
  on.freq_sketch.cm_width = 32;
  on.freq_sketch.cm_depth = 2;
  auto cmp_on = CompareStable<ChordPolicy>(on);
  ASSERT_TRUE(cmp_on.ok());
  const std::string doc_on =
      ComparisonDocument("observability_test", "chord", "stable", on, *cmp_on);
  EXPECT_NE(doc_on.find("\"freq_sketch_top_capacity\":16"), std::string::npos);
  EXPECT_NE(doc_on.find("\"freq_sketch\":{\"top_capacity\":16"),
            std::string::npos);
  EXPECT_NE(doc_on.find("\"summary_bytes_per_node\""), std::string::npos);
  EXPECT_NE(doc_on.find("\"tracked_per_node\""), std::string::npos);
  // Schema version is unchanged: the block is additive and conditional.
  EXPECT_EQ(doc_on.find("{\"schema_version\":1,"), 0u);
}

// A sketch-mode run joins the determinism contract: all telemetry except
// wall-clock timers is byte-identical at threads 1 and 4.
TEST(Observability, FreqSketchTelemetryIsThreadCountInvariant) {
  ExperimentConfig cfg = BaseConfig(0xd5);
  cfg.n_popularity_lists = 5;
  cfg.freq_sketch.top_capacity = 16;
  cfg.freq_sketch.cm_width = 32;
  cfg.freq_sketch.cm_depth = 2;
  cfg.drift.kind = workload::DriftKind::kRankShuffle;
  cfg.drift.period = 20;
  cfg.threads = 1;
  auto serial = RunStable<ChordPolicy>(cfg, SelectorKind::kOptimal);
  cfg.threads = 4;
  auto parallel = RunStable<ChordPolicy>(cfg, SelectorKind::kOptimal);
  ASSERT_TRUE(serial.ok() && parallel.ok());
  EXPECT_TRUE(serial->freq_sketch_enabled);
  EXPECT_EQ(SerializedMetricsNoTimers(*serial),
            SerializedMetricsNoTimers(*parallel));
  EXPECT_EQ(SerializedTraces("chord", *serial),
            SerializedTraces("chord", *parallel));
  EXPECT_EQ(SerializedAudit(*serial), SerializedAudit(*parallel));
  EXPECT_DOUBLE_EQ(serial->freq_summary_bytes_mean,
                   parallel->freq_summary_bytes_mean);
  EXPECT_DOUBLE_EQ(serial->freq_tracked_mean, parallel->freq_tracked_mean);
  // Sketch tables track at most top_capacity peers each.
  EXPECT_LE(serial->freq_tracked_mean, 16.0);
  EXPECT_GT(serial->freq_tracked_mean, 0.0);
}

TEST(Observability, ComparisonDocumentHasSchemaEnvelope) {
  ExperimentConfig cfg = BaseConfig(0xde);
  cfg.n_popularity_lists = 5;
  auto cmp = CompareStable<ChordPolicy>(cfg);
  ASSERT_TRUE(cmp.ok());
  const std::string doc =
      ComparisonDocument("observability_test", "chord", "stable", cfg, *cmp);
  EXPECT_EQ(doc.find("{\"schema_version\":1,"), 0u);
  EXPECT_NE(doc.find("\"generator\":\"observability_test\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"runs\":{\"none\":"), std::string::npos);
  EXPECT_NE(doc.find("\"aux_hit_rate\""), std::string::npos);
  EXPECT_NE(doc.find("\"cost_audit\""), std::string::npos);
  EXPECT_NE(doc.find("\"phase_seconds\""), std::string::npos);
  EXPECT_NE(doc.find("\"hop_histogram\""), std::string::npos);
}

}  // namespace
}  // namespace peercache::experiments
