// Failure-injection tests: the Chord overlay under adversarial membership
// changes, partial stabilization, and stale auxiliary state.

#include <gtest/gtest.h>

#include <algorithm>

#include "chord/chord_network.h"
#include "common/random.h"

namespace peercache::chord {
namespace {

TEST(ChordChurn, FrequenciesSurviveCrashAndRejoin) {
  ChordParams params;
  params.bits = 16;
  ChordNetwork net(params);
  ASSERT_TRUE(net.AddNode(100).ok());
  ASSERT_TRUE(net.AddNode(2000).ok());
  ASSERT_TRUE(net.AddNode(40000).ok());
  net.GetNode(100)->frequencies.Record(2000);
  net.GetNode(100)->frequencies.Record(2000);

  ASSERT_TRUE(net.RemoveNode(100).ok());
  ASSERT_TRUE(net.RejoinNode(100).ok());
  EXPECT_EQ(net.GetNode(100)->frequencies.total(), 2u)
      << "history retained across restart (a DNS server keeps its stats)";
  EXPECT_TRUE(net.AuxiliarySpan(100).empty())
      << "auxiliaries are routing state and are lost on crash";
}

TEST(ChordChurn, ForgetStateClearsEverything) {
  ChordParams params;
  params.bits = 16;
  ChordNetwork net(params);
  ASSERT_TRUE(net.AddNode(100).ok());
  ASSERT_TRUE(net.AddNode(2000).ok());
  net.GetNode(100)->frequencies.Record(2000);
  ASSERT_TRUE(net.RemoveNode(100, /*forget_state=*/true).ok());
  ASSERT_TRUE(net.RejoinNode(100).ok());
  EXPECT_EQ(net.GetNode(100)->frequencies.total(), 0u);
}

TEST(ChordChurn, FlappingNodeNeverCorruptsRouting) {
  Rng rng(1111);
  ChordParams params;
  params.bits = 16;
  ChordNetwork net(params);
  auto ids = rng.SampleDistinct(uint64_t{1} << 16, 40);
  for (uint64_t id : ids) ASSERT_TRUE(net.AddNode(id).ok());
  net.StabilizeAll();
  // One node flaps rapidly while others route around it.
  const uint64_t flapper = ids[7];
  for (int round = 0; round < 30; ++round) {
    ASSERT_TRUE(net.RemoveNode(flapper).ok());
    for (int t = 0; t < 10; ++t) {
      uint64_t origin;
      do {
        origin = ids[static_cast<size_t>(rng.UniformU64(ids.size()))];
      } while (!net.IsAlive(origin));
      auto route = net.Lookup(origin, rng.UniformU64(uint64_t{1} << 16));
      ASSERT_TRUE(route.ok());
      EXPECT_TRUE(net.IsAlive(route->destination));
    }
    ASSERT_TRUE(net.RejoinNode(flapper).ok());
  }
  net.StabilizeAll();
  for (int t = 0; t < 100; ++t) {
    uint64_t key = rng.UniformU64(uint64_t{1} << 16);
    auto route = net.Lookup(ids[0], key);
    ASSERT_TRUE(route.ok());
    EXPECT_TRUE(route->success);
  }
}

TEST(ChordChurn, PartialStabilizationStillRoutes) {
  // Only half the survivors stabilize after a crash wave; lookups must
  // still terminate and mostly succeed (others route around dead entries).
  Rng rng(2222);
  ChordParams params;
  params.bits = 16;
  ChordNetwork net(params);
  auto ids = rng.SampleDistinct(uint64_t{1} << 16, 100);
  for (uint64_t id : ids) ASSERT_TRUE(net.AddNode(id).ok());
  net.StabilizeAll();
  for (size_t i = 0; i < ids.size(); i += 5) {
    ASSERT_TRUE(net.RemoveNode(ids[i]).ok());
  }
  int stabilized = 0;
  for (uint64_t id : net.LiveNodeIds()) {
    if (++stabilized % 2 == 0) ASSERT_TRUE(net.StabilizeNode(id).ok());
  }
  int successes = 0;
  const int kTrials = 400;
  for (int t = 0; t < kTrials; ++t) {
    uint64_t origin;
    do {
      origin = ids[static_cast<size_t>(rng.UniformU64(ids.size()))];
    } while (!net.IsAlive(origin));
    auto route = net.Lookup(origin, rng.UniformU64(uint64_t{1} << 16));
    ASSERT_TRUE(route.ok());
    successes += route->success;
  }
  EXPECT_GT(successes, kTrials * 8 / 10);
}

TEST(ChordChurn, JoinVisibleOnlyAfterOthersStabilize) {
  ChordNetwork net{ChordParams{.bits = 16}};
  ASSERT_TRUE(net.AddNode(1000).ok());
  ASSERT_TRUE(net.AddNode(30000).ok());
  net.StabilizeAll();
  // A node joins between them; 1000's tables don't know it yet.
  ASSERT_TRUE(net.AddNode(20000).ok());
  auto route = net.Lookup(1000, 20005);
  ASSERT_TRUE(route.ok());
  // Ground truth says the new node owns key 20005; stale tables at 1000 may
  // or may not reach it, but after stabilization they must.
  net.StabilizeAll();
  route = net.Lookup(1000, 20005);
  ASSERT_TRUE(route.ok());
  EXPECT_TRUE(route->success);
  EXPECT_EQ(route->destination, 20000u);
}

TEST(ChordChurn, NeverRemoveBelowTwoNodesGuardIsCallersJob) {
  // The network itself allows removing down to one node; routing from the
  // lone survivor must still terminate.
  ChordNetwork net{ChordParams{.bits = 8}};
  ASSERT_TRUE(net.AddNode(1).ok());
  ASSERT_TRUE(net.AddNode(128).ok());
  ASSERT_TRUE(net.RemoveNode(128).ok());
  auto route = net.Lookup(1, 200);
  ASSERT_TRUE(route.ok());
  EXPECT_TRUE(route->success);
  EXPECT_EQ(route->destination, 1u);
  EXPECT_EQ(route->hops, 0);
}

}  // namespace
}  // namespace peercache::chord
