#include "chord/chord_network.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/bits.h"
#include "common/random.h"

namespace peercache::chord {
namespace {

ChordNetwork MakeNetwork(int bits, const std::vector<uint64_t>& ids) {
  ChordParams params;
  params.bits = bits;
  ChordNetwork net(params);
  for (uint64_t id : ids) {
    EXPECT_TRUE(net.AddNode(id).ok());
  }
  net.StabilizeAll();
  return net;
}

TEST(ChordNetwork, AddRemoveRejoin) {
  ChordParams params;
  params.bits = 8;
  ChordNetwork net(params);
  ASSERT_TRUE(net.AddNode(10).ok());
  ASSERT_TRUE(net.AddNode(200).ok());
  EXPECT_EQ(net.live_count(), 2u);
  EXPECT_FALSE(net.AddNode(10).ok()) << "duplicate live id";
  EXPECT_FALSE(net.AddNode(256).ok()) << "out of range";

  ASSERT_TRUE(net.RemoveNode(10).ok());
  EXPECT_FALSE(net.IsAlive(10));
  EXPECT_FALSE(net.RemoveNode(10).ok()) << "already dead";
  ASSERT_TRUE(net.RejoinNode(10).ok());
  EXPECT_TRUE(net.IsAlive(10));
  EXPECT_FALSE(net.RejoinNode(10).ok()) << "already alive";
}

TEST(ChordNetwork, ResponsibleNodeIsPredecessor) {
  ChordNetwork net = MakeNetwork(8, {10, 100, 200});
  // Paper variant: a key belongs to the last node at-or-before it.
  EXPECT_EQ(net.ResponsibleNode(10).value(), 10u);
  EXPECT_EQ(net.ResponsibleNode(11).value(), 10u);
  EXPECT_EQ(net.ResponsibleNode(99).value(), 10u);
  EXPECT_EQ(net.ResponsibleNode(100).value(), 100u);
  EXPECT_EQ(net.ResponsibleNode(255).value(), 200u);
  EXPECT_EQ(net.ResponsibleNode(5).value(), 200u) << "wraps to the largest id";
}

TEST(ChordNetwork, FingersMatchPaperVariant) {
  ChordNetwork net = MakeNetwork(8, {0, 3, 5, 9, 17, 33, 65, 129});
  const ChordNode* zero = net.GetNode(0);
  ASSERT_NE(zero, nullptr);
  // Finger i = smallest node in (2^i, 2^{i+1}]: i=0 -> (1,2]: none;
  // i=1 -> (2,4]: 3; i=2 -> (4,8]: 5; i=3 -> (8,16]: 9; i=4 -> (16,32]: 17;
  // i=5 -> (32,64]: 33; i=6 -> (64,128]: 65; i=7 -> (128,256]: 129.
  const auto finger_span = net.Fingers(*zero);
  std::set<uint64_t> fingers(finger_span.begin(), finger_span.end());
  EXPECT_EQ(fingers, (std::set<uint64_t>{3, 5, 9, 17, 33, 65, 129}));
}

TEST(ChordNetwork, LookupAlwaysSucceedsWhenStable) {
  Rng rng(123);
  auto ids = rng.SampleDistinct(uint64_t{1} << 16, 100);
  ChordParams params;
  params.bits = 16;
  ChordNetwork net(params);
  for (uint64_t id : ids) ASSERT_TRUE(net.AddNode(id).ok());
  net.StabilizeAll();
  for (int t = 0; t < 500; ++t) {
    uint64_t key = rng.UniformU64(uint64_t{1} << 16);
    uint64_t origin = ids[static_cast<size_t>(rng.UniformU64(ids.size()))];
    auto route = net.Lookup(origin, key);
    ASSERT_TRUE(route.ok());
    EXPECT_TRUE(route->success) << "key " << key << " from " << origin;
    EXPECT_EQ(route->destination, net.ResponsibleNode(key).value());
  }
}

TEST(ChordNetwork, LookupHopsBoundedByBits) {
  Rng rng(77);
  auto ids = rng.SampleDistinct(uint64_t{1} << 20, 256);
  ChordParams params;
  params.bits = 20;
  ChordNetwork net(params);
  for (uint64_t id : ids) ASSERT_TRUE(net.AddNode(id).ok());
  net.StabilizeAll();
  for (int t = 0; t < 500; ++t) {
    uint64_t key = rng.UniformU64(uint64_t{1} << 20);
    uint64_t origin = ids[static_cast<size_t>(rng.UniformU64(ids.size()))];
    auto route = net.Lookup(origin, key);
    ASSERT_TRUE(route.ok());
    EXPECT_LE(route->hops, 20) << "steady-state bound of log-ish hops";
  }
}

TEST(ChordNetwork, AuxiliaryPointerShortensRoute) {
  // Ring 0,1,2,4,8,...: routing from 0 to far targets takes several hops;
  // an auxiliary pointer directly at the target makes it one hop.
  std::vector<uint64_t> ids;
  for (int i = 0; i <= 7; ++i) ids.push_back(uint64_t{1} << i);
  ids.push_back(0);
  ChordNetwork net = MakeNetwork(8, ids);
  const uint64_t target = 129;  // owned by 128's... 128 is the predecessor
  auto before = net.Lookup(0, target);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(before->success);
  ASSERT_TRUE(net.SetAuxiliaries(0, {128}).ok());
  auto after = net.Lookup(0, target);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->success);
  EXPECT_LE(after->hops, before->hops);
  EXPECT_EQ(after->hops, 1);
}

TEST(ChordNetwork, AuxiliariesHelpOnAggregate) {
  // Adding entries helps on aggregate under the unchanged greedy policy
  // (individual lookups may occasionally lengthen: a longer first jump can
  // land at a node with worse onward fingers).
  Rng rng(5150);
  auto ids = rng.SampleDistinct(uint64_t{1} << 16, 64);
  ChordParams params;
  params.bits = 16;
  ChordNetwork net(params);
  for (uint64_t id : ids) ASSERT_TRUE(net.AddNode(id).ok());
  net.StabilizeAll();
  const uint64_t origin = ids[0];
  std::vector<uint64_t> keys;
  int64_t before = 0;
  for (int t = 0; t < 200; ++t) {
    keys.push_back(rng.UniformU64(uint64_t{1} << 16));
    before += net.Lookup(origin, keys.back())->hops;
  }
  // Install random auxiliaries at the origin.
  std::vector<uint64_t> aux(ids.begin() + 1, ids.begin() + 9);
  ASSERT_TRUE(net.SetAuxiliaries(origin, aux).ok());
  int64_t after = 0;
  for (uint64_t key : keys) {
    auto route = net.Lookup(origin, key);
    ASSERT_TRUE(route.ok());
    EXPECT_TRUE(route->success);
    after += route->hops;
  }
  EXPECT_LE(after, before);
}

TEST(ChordNetwork, StabilizationPrunesDeadAuxiliaries) {
  ChordNetwork net = MakeNetwork(8, {1, 50, 100, 150, 200});
  ASSERT_TRUE(net.SetAuxiliaries(1, {100, 150}).ok());
  ASSERT_TRUE(net.RemoveNode(150).ok());
  ASSERT_TRUE(net.StabilizeNode(1).ok());
  const auto aux = net.AuxiliarySpan(1);
  EXPECT_EQ(std::vector<uint64_t>(aux.begin(), aux.end()),
            (std::vector<uint64_t>{100}));
}

TEST(ChordNetwork, RoutingSkipsDeadEntriesAfterCrash) {
  ChordNetwork net = MakeNetwork(8, {0, 64, 128, 192, 200, 210});
  // Crash a node without stabilizing anyone: others' tables are stale.
  ASSERT_TRUE(net.RemoveNode(192).ok());
  auto route = net.Lookup(0, 201);
  ASSERT_TRUE(route.ok());
  // 200 is the live predecessor of 201.
  EXPECT_TRUE(route->success);
  EXPECT_EQ(route->destination, 200u);
}

TEST(ChordNetwork, ChurnedLookupsRecoverAfterStabilization) {
  Rng rng(864);
  auto ids = rng.SampleDistinct(uint64_t{1} << 16, 80);
  ChordParams params;
  params.bits = 16;
  ChordNetwork net(params);
  for (uint64_t id : ids) ASSERT_TRUE(net.AddNode(id).ok());
  net.StabilizeAll();
  // Crash a third of the overlay.
  for (size_t i = 0; i < ids.size(); i += 3) {
    ASSERT_TRUE(net.RemoveNode(ids[i]).ok());
  }
  net.StabilizeAll();
  int successes = 0;
  const int kTrials = 300;
  for (int t = 0; t < kTrials; ++t) {
    uint64_t key = rng.UniformU64(uint64_t{1} << 16);
    uint64_t origin;
    do {
      origin = ids[static_cast<size_t>(rng.UniformU64(ids.size()))];
    } while (!net.IsAlive(origin));
    auto route = net.Lookup(origin, key);
    ASSERT_TRUE(route.ok());
    successes += route->success;
  }
  EXPECT_EQ(successes, kTrials) << "post-stabilization lookups must succeed";
}

TEST(ChordNetwork, CoreNeighborIdsDeduplicated) {
  ChordNetwork net = MakeNetwork(8, {0, 2, 3, 4, 5});
  auto cores = net.CoreNeighborIds(0);
  std::set<uint64_t> dedup(cores.begin(), cores.end());
  EXPECT_EQ(dedup.size(), cores.size());
  EXPECT_TRUE(std::is_sorted(cores.begin(), cores.end()));
  EXPECT_FALSE(cores.empty());
}

}  // namespace
}  // namespace peercache::chord
